/**
 * @file
 * FIFO sizing lab: builds the paper's Fig. 8(f) three-kernel
 * example, solves the LP, shows the resulting delays and depths
 * under both equalization strategies, and demonstrates with the
 * simulator what sizing buys: LP depths stream stall-free, shallow
 * depths back-pressure the producers (watch the stall cycles and
 * TTFT), and a FIFO smaller than its consumer's burst deadlocks
 * outright.
 */

#include <cstdio>

#include "dataflow/graph.h"
#include "sim/simulator.h"
#include "token/fifo_sizing.h"

using namespace streamtensor;

namespace {

/** Kernel0 fans out to Kernel1 and Kernel2; Kernel1 feeds
 *  Kernel2 (Fig. 8f). */
token::FifoSizingProblem
figure8f()
{
    token::FifoSizingProblem p;
    // D, total cycles for 64 tokens.
    p.addNode({40.0, 40.0 + 63.0 * 1.0});  // kernel0: II=1
    p.addNode({120.0, 120.0 + 63.0 * 1.0}); // kernel1: late start
    p.addNode({20.0, 20.0 + 63.0 * 2.0});  // kernel2: II=2
    p.addEdge(0, 1, 64); // delay[0][1]
    p.addEdge(0, 2, 64); // delay[0][2]
    p.addEdge(1, 2, 64); // delay[1][2]
    return p;
}

/** The same graph as a component graph for simulation. */
dataflow::ComponentGraph
componentGraph(const std::vector<int64_t> &depths)
{
    dataflow::ComponentGraph g;
    ir::ITensorType tok(ir::DataType::I8, {1}, {64}, {1},
                        ir::AffineMap::identity(1));
    auto mk = [&](const char *name, double d, double cycles) {
        dataflow::Component c;
        c.kind = dataflow::ComponentKind::Kernel;
        c.name = name;
        c.initial_delay = d;
        c.total_cycles = cycles;
        return g.addComponent(c);
    };
    int64_t k0 = mk("kernel0", 40.0, 103.0);
    int64_t k1 = mk("kernel1", 120.0, 183.0);
    int64_t k2 = mk("kernel2", 20.0, 146.0);
    auto ch = [&](int64_t s, int64_t d, int64_t depth) {
        dataflow::Channel c;
        c.src = s;
        c.dst = d;
        c.type = tok;
        c.tokens = 64;
        c.depth = depth;
        g.addChannel(c);
    };
    ch(k0, k1, depths[0]);
    ch(k0, k2, depths[1]);
    ch(k1, k2, depths[2]);
    return g;
}

void
report(const char *tag, const token::FifoSizingResult &r)
{
    std::printf("%s\n  delays: ", tag);
    for (double d : r.delays)
        std::printf("%7.1f ", d);
    std::printf("\n  depths: ");
    for (int64_t d : r.depths)
        std::printf("%7lld ", static_cast<long long>(d));
    std::printf("\n  objective=%.1f via %s\n\n", r.objective,
                r.used_lp ? "LP" : "potentials");
}

} // namespace

int
main()
{
    token::FifoSizingProblem problem = figure8f();

    token::FifoSizingOptions normal;
    auto sized_normal = token::sizeFifos(problem, normal);
    report("Normal equalization", sized_normal);

    token::FifoSizingOptions conservative;
    conservative.equalization =
        token::Equalization::Conservative;
    auto sized_cons = token::sizeFifos(problem, conservative);
    report("Conservative equalization", sized_cons);

    // Simulate with LP depths vs deliberately undersized FIFOs.
    auto good = componentGraph(sized_normal.depths);
    auto bad = componentGraph({2, 2, 2});
    auto good_result = sim::simulateGroup(good, 0);
    sim::SimOptions tight;
    tight.max_cycles = 1e7;
    auto bad_result = sim::simulateGroup(bad, 0, tight);

    auto stalls = [](const sim::SimResult &r) {
        double s = 0.0;
        for (const auto &c : r.components)
            s += c.stall_cycles;
        return s;
    };
    auto report_run = [&](const char *tag,
                          const sim::SimResult &r) {
        const char *status = r.deadlock    ? "DEADLOCK"
                             : r.timed_out ? "TIMED OUT"
                                           : "ok";
        std::printf("%s: %s, %.0f cycles, TTFT %.0f cycles, "
                    "%.0f stall cycles\n",
                    tag, status, r.cycles, r.first_output_cycle,
                    stalls(r));
    };
    report_run("LP-sized run ", good_result);
    report_run("depth-2 run  ", bad_result);

    // A FIFO smaller than its consumer's burst can never satisfy a
    // single firing: the consumer wedges and the wedge propagates
    // upstream -- the failure mode LP sizing exists to rule out.
    // kernel2's out edge carries 4 tokens, so it fires 4 times and
    // ingests 16 kernel0/kernel1 tokens per firing; depth 8 < 16.
    {
        dataflow::ComponentGraph g;
        ir::ITensorType tok(ir::DataType::I8, {1}, {64}, {1},
                            ir::AffineMap::identity(1));
        ir::ITensorType out_tok(ir::DataType::I8, {1}, {4}, {1},
                                ir::AffineMap::identity(1));
        dataflow::Component k;
        k.kind = dataflow::ComponentKind::Kernel;
        k.name = "k0";
        k.initial_delay = 40.0;
        k.total_cycles = 103.0;
        int64_t k0 = g.addComponent(k);
        k.name = "k2";
        k.initial_delay = 20.0;
        k.total_cycles = 146.0;
        int64_t k2 = g.addComponent(k);
        k.name = "sink";
        k.initial_delay = 1.0;
        k.total_cycles = 9.0;
        int64_t snk = g.addComponent(k);
        dataflow::Channel c;
        c.src = k0;
        c.dst = k2;
        c.type = tok;
        c.tokens = 64;
        c.depth = 8; // burst is 16
        g.addChannel(c);
        c.src = k2;
        c.dst = snk;
        c.type = out_tok;
        c.tokens = 4;
        c.depth = 2;
        g.addChannel(c);
        auto wedged = sim::simulateGroup(g, 0, tight);
        std::printf("burst>depth run: %s (%zu components wedged)\n",
                    wedged.deadlock ? "DEADLOCK (as expected)"
                                    : "ok",
                    wedged.blocked_components.size());
    }
    return 0;
}
