/**
 * @file
 * Design-space explorer example: sweeps the Linalg tiling
 * hyperparameters with the black-box tuner (the paper's Optuna
 * loop, §5.1) using kernel-fusion memory cost + estimated latency
 * as the feedback signal, on a Qwen decode block.
 */

#include <cstdio>

#include "dse/blackbox_tuner.h"
#include "models/block_builder.h"
#include "runtime/executor.h"

using namespace streamtensor;

int
main()
{
    models::LlmConfig config = models::qwenConfig();
    hls::FpgaPlatform platform = hls::u55c();

    dse::BlackboxTuner tuner(/*seed=*/42);
    int64_t p_tile =
        tuner.addParam("default_tile_size", {8, 16, 32, 64});
    int64_t p_unroll =
        tuner.addParam("overall_unroll_size",
                       {64, 128, 256, 512, 1024});

    std::printf("trial | tile unroll |  block ms | on-chip MiB | "
                "score\n");
    for (int trial = 0; trial < 12; ++trial) {
        auto cfg = tuner.ask();
        compiler::CompileOptions options;
        options.tiling.default_tile_size = cfg[p_tile];
        options.tiling.overall_unroll_size = cfg[p_unroll];

        runtime::LlmExecutor executor(config, platform, options);
        const runtime::CompiledBlock &blk =
            executor.block(models::decodeShapes(64));
        double block_ms = blk.totalCycles() /
                          (platform.freq_mhz * 1e3);
        double mem_mib =
            static_cast<double>(
                blk.compile.design.fusedIntermediateBytes() +
                blk.compile.design.components
                    .totalLocalBufferBytes()) /
            (1024.0 * 1024.0);
        // Feedback: latency, with a penalty when the design spills
        // past the on-chip budget.
        double score = block_ms;
        if (mem_mib > platform.on_chip_memory_mib)
            score *= 10.0;
        tuner.tell(cfg, score);
        std::printf("%5d | %4lld %6lld | %9.3f | %11.2f | %.3f\n",
                    trial, static_cast<long long>(cfg[p_tile]),
                    static_cast<long long>(cfg[p_unroll]),
                    block_ms, mem_mib, score);
    }

    auto best = tuner.best();
    std::printf("\nbest: tile=%lld unroll=%lld (score %.3f after "
                "%lld trials)\n",
                static_cast<long long>(best[p_tile]),
                static_cast<long long>(best[p_unroll]),
                tuner.bestScore(),
                static_cast<long long>(tuner.numTrials()));
    return 0;
}
