/**
 * @file
 * Quickstart: compile a two-layer MLP into a stream-based dataflow
 * accelerator, inspect every artifact of the pipeline, and run the
 * cycle-level simulator.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "compiler/compiler.h"
#include "ir/printer.h"
#include "linalg/builders.h"
#include "sim/simulator.h"

using namespace streamtensor;

int
main()
{
    // ---- 1. Describe the workload as a linalg graph. ----
    linalg::Graph graph("mlp");
    int64_t x = graph.addTensor(
        ir::TensorType(ir::DataType::I8, {64, 256}), "x",
        linalg::TensorRole::Input);
    int64_t w1 = graph.addTensor(
        ir::TensorType(ir::DataType::I4, {256, 512}), "w1",
        linalg::TensorRole::Parameter);
    int64_t w2 = graph.addTensor(
        ir::TensorType(ir::DataType::I4, {512, 256}), "w2",
        linalg::TensorRole::Parameter);

    int64_t h = linalg::matmul(graph, x, w1, ir::DataType::I8,
                               "fc1");
    int64_t a = linalg::ewiseUnary(graph, h, linalg::EwiseFn::Gelu,
                                   "gelu");
    int64_t y = linalg::matmul(graph, a, w2, ir::DataType::I8,
                               "fc2");
    graph.tensor(y).role = linalg::TensorRole::Output;

    std::printf("==== Linalg graph ====\n%s\n", graph.str().c_str());

    // ---- 2. Compile for the paper's U55C platform. ----
    hls::FpgaPlatform platform = hls::u55c();
    compiler::CompileOptions options;
    options.tiling.default_tile_size = 16;
    options.tiling.overall_unroll_size = 128;
    compiler::CompileResult result =
        compiler::compile(std::move(graph), platform, options);

    std::printf("==== Dataflow components ====\n%s\n",
                result.design.components.str().c_str());
    std::printf("fusion groups: %zu, converter bytes: %lld\n",
                result.design.plan.groups.size(),
                static_cast<long long>(
                    result.design.components
                        .totalConverterBytes()));
    std::printf(
        "intermediate bytes: %lld original -> %lld fused\n\n",
        static_cast<long long>(
            result.design.original_intermediate_bytes),
        static_cast<long long>(
            result.design.fusedIntermediateBytes()));

    std::printf("==== Stream-level IR (bufferized) ====\n%s\n",
                ir::printModule(*result.module).c_str());

    // ---- 3. Simulate the accelerator. ----
    auto sims = sim::simulateAll(result.design.components);
    for (size_t g = 0; g < sims.size(); ++g) {
        const sim::SimResult &s = sims[g];
        const char *status = s.deadlock    ? "DEADLOCK"
                             : s.timed_out ? "TIMED OUT"
                                           : "completed";
        std::printf("group %zu: %s in %.0f cycles, "
                    "TTFT %.0f cycles (%lld sim events)\n",
                    g, status, s.cycles, s.first_output_cycle,
                    static_cast<long long>(s.events));
    }

    // ---- 4. Peek at the generated HLS C++. ----
    std::printf("\n==== Generated HLS (first 40 lines) ====\n");
    int lines = 0;
    for (char c : result.code.hls_cpp) {
        std::putchar(c);
        if (c == '\n' && ++lines >= 40)
            break;
    }
    std::printf("...\n");
    return 0;
}
