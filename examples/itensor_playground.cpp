/**
 * @file
 * Iterative-tensor playground: reproduces paper Fig. 5 — three
 * itensor views of the same tensor<8x8xf32>, their stream orders,
 * type-equality checks, and the converter Algorithm 1 infers for
 * the mismatched pair (the 8x2 ping-pong buffer).
 */

#include <cstdio>

#include "dse/converter_gen.h"
#include "ir/itensor_type.h"

using namespace streamtensor;

namespace {

void
printStream(const char *tag, const ir::ITensorType &t)
{
    std::printf("%s = %s\n  tokens=%lld revisit=%lld\n  order:",
                tag, t.str().c_str(),
                static_cast<long long>(t.numTokens()),
                static_cast<long long>(t.revisitFactor()));
    auto offsets = t.streamOffsets();
    for (size_t i = 0; i < offsets.size() && i < 8; ++i) {
        std::printf(" [%lld,%lld]",
                    static_cast<long long>(offsets[i][0]),
                    static_cast<long long>(offsets[i][1]));
    }
    if (offsets.size() > 8)
        std::printf(" ...");
    std::printf("\n\n");
}

} // namespace

int
main()
{
    using ir::AffineExpr;
    using ir::AffineMap;

    // Fig. 5(a): row-major 2x2 tiles.
    ir::ITensorType a(ir::DataType::F32, {2, 2}, {4, 4}, {2, 2},
                      AffineMap::identity(2));
    // Fig. 5(b): transposed 4x2 tiles.
    ir::ITensorType b(ir::DataType::F32, {4, 2}, {4, 2}, {2, 4},
                      AffineMap(2, {AffineExpr::dim(1),
                                    AffineExpr::dim(0)}));
    // Fig. 5(c): 4x2 tiles with a revisit dim d1.
    ir::ITensorType c(ir::DataType::F32, {4, 2}, {4, 2, 2},
                      {2, 1, 4},
                      AffineMap(3, {AffineExpr::dim(2),
                                    AffineExpr::dim(0)}));

    printStream("itensor(a)", a);
    printStream("itensor(b)", b);
    printStream("itensor(c)", c);

    std::printf("b == b (Case1, direct FIFO)    : %s\n",
                b == b ? "yes" : "no");
    std::printf("b == c (Case2, needs converter): %s\n",
                b == c ? "yes" : "no");

    dse::ConverterSpec spec = dse::inferConverter(b, c);
    std::printf("\nAlgorithm 1 for b -> c:\n  buffer shape: [");
    for (size_t i = 0; i < spec.buffer_shape.size(); ++i)
        std::printf("%s%lld", i ? "," : "",
                    static_cast<long long>(spec.buffer_shape[i]));
    std::printf("] (%lld bytes ping-pong)\n",
                static_cast<long long>(spec.bufferBytes()));
    std::printf("  shared outer loops: %lld (buffer reused %lldx)\n",
                static_cast<long long>(spec.before_loop),
                static_cast<long long>(spec.reuse_factor));
    return 0;
}
