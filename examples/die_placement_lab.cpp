/**
 * @file
 * Die placement lab: makes placement load-bearing visible.
 *
 * Compiles the figure-5-style MLP pipeline (matmul -> gelu ->
 * matmul, with a layout converter between the transposed matmul
 * layouts) for a U55C whose inter-die links carry a real cost,
 * under both partitioners: the ILP finds a zero-crossing placement
 * while the greedy topological wavefront cuts the pipeline three
 * times — and the crossing-aware FIFO sizing + simulators turn
 * those crossings into extra predicted cycles, deeper crossing
 * FIFOs, and crossing-attributed stall. Sweeping the link latency
 * shows the crossings-vs-cycles tradeoff quoted in the README.
 */

#include <cstdio>

#include "compiler/compiler.h"
#include "linalg/builders.h"
#include "sim/simulator.h"

using namespace streamtensor;

namespace {

struct Row
{
    int64_t crossings = 0;
    double cycles = 0.0;
    double ttft = 0.0;
    double crossing_stall = 0.0;
    int64_t crossing_fifo_tokens = 0;
};

Row
compileAndSimulate(const hls::FpgaPlatform &platform,
                   partition::PartitionStrategy strategy)
{
    compiler::CompileOptions options;
    options.partition.strategy = strategy;
    auto result = compiler::compile(linalg::mlpPipeline(), platform,
                                    options);
    Row row;
    row.crossings = result.totalCrossings();
    const auto &cg = result.design.components;
    for (int64_t c = 0; c < cg.numChannels(); ++c)
        if (cg.channel(c).inter_die && !cg.channel(c).folded)
            row.crossing_fifo_tokens += cg.channel(c).depth;
    for (const auto &s : sim::simulateAll(cg)) {
        row.cycles += s.cycles;
        row.ttft += s.first_output_cycle;
        row.crossing_stall += s.crossing_stall_cycles;
    }
    return row;
}

} // namespace

int
main()
{
    std::printf("Die placement lab: figure-5 MLP pipeline on "
                "U55C (3 SLRs)\n");
    std::printf("ILP vs greedy partitioning under a priced "
                "inter-die link\n\n");
    std::printf("%9s  %-7s %9s %10s %9s %12s %11s\n", "link_lat",
                "part", "crossings", "cycles", "TTFT",
                "xing_stall", "xfifo_toks");

    for (double latency : {0.0, 16.0, 64.0, 256.0}) {
        for (auto strategy : {partition::PartitionStrategy::Auto,
                              partition::PartitionStrategy::Greedy}) {
            hls::FpgaPlatform platform = hls::u55c();
            platform.inter_die_latency_cycles = latency;
            platform.inter_die_ii_penalty = latency > 0 ? 1.0 : 0.0;
            Row row = compileAndSimulate(platform, strategy);
            std::printf(
                "%9.0f  %-7s %9lld %10.0f %9.0f %12.0f %11lld\n",
                latency,
                strategy == partition::PartitionStrategy::Auto
                    ? "ilp"
                    : "greedy",
                static_cast<long long>(row.crossings), row.cycles,
                row.ttft, row.crossing_stall,
                static_cast<long long>(row.crossing_fifo_tokens));
        }
    }

    std::printf("\nThe ILP keeps the whole pipeline on one die "
                "(0 crossings): its cycles are\n"
                "invariant to the link cost. Greedy cuts the "
                "pipeline 3 times; each cut adds\n"
                "link latency into the critical path (and II "
                "penalty onto its endpoints), so\n"
                "its cycles climb with the link cost while FIFO "
                "sizing deepens the crossing\n"
                "FIFOs to keep the stall at the pipeline fill, "
                "not per token.\n");
    return 0;
}
