/**
 * @file
 * Serving lab: sweep offered traffic through the
 * continuous-batching scheduler with real compiled + simulated
 * GPT-2 block costs — and at every sweep point serve the *same*
 * trace under both KV admission policies with the *same* KV
 * budget. Reserved admission holds each request's final bucketed
 * context from admission to completion; the paged pool admits on
 * current need, shares prompt-prefix pages, and preempts under
 * pressure. The gap between the two "served req/s" columns is the
 * capacity the conservative reservation was wasting.
 *
 * The second half is the fault sweep: the same traffic against a
 * replicated fleet of four, once fault-free and once with one
 * replica killed a quarter of the way through the run (recovering
 * at three quarters). Goodput, p99, and availability side by side
 * show what a crash actually costs when failover re-prefills the
 * evacuated requests on the survivors.
 *
 * `--scale` switches to the million-request sweep mode instead:
 * a generator-fed Poisson trace through a four-replica fleet on
 * the analytic cost model with streaming metrics (no per-request
 * records) — the scale harness exercised end to end, with wall
 * throughput, sketch percentiles, and peak RSS printed. Runs in
 * seconds.
 *
 * `--coldstart` switches to the weight-streaming sweep: the same
 * traffic served from a cold replica whose weights stream in from
 * each storage tier, with and without compute/stream overlap, and
 * a fleet whose crash recovery is charged each tier's full
 * re-stream. The per-tier rows show what the storage bill does to
 * first-token latency and to availability after a crash.
 *
 *   ./build/examples/serving_lab [num_requests] [max_batch]
 *   ./build/examples/serving_lab --scale [num_requests]
 *   ./build/examples/serving_lab --coldstart [num_requests]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include <sys/resource.h>

#include "serving/cost_model.h"
#include "serving/fleet.h"
#include "serving/scheduler.h"
#include "serving/trace.h"
#include "serving/weights.h"

using namespace streamtensor;

namespace {

/** The million-request sweep: same shape as the scale suite and
 *  BM_ServeMillionRequestSweep, run as a printable report. */
int
scaleSweep(int64_t num_requests)
{
    serving::TraceOptions trace_options;
    trace_options.num_requests = num_requests;
    trace_options.seed = 42;
    trace_options.mean_interarrival_ms = 2.5;
    trace_options.min_input_len = 4;
    trace_options.max_input_len = 64;
    trace_options.min_output_len = 1;
    trace_options.max_output_len = 16;

    serving::FleetOptions options;
    options.num_replicas = 4;
    options.replica.max_batch = 8;
    options.replica.kv_budget_tokens = 4096;
    options.replica.max_steps =
        std::numeric_limits<int64_t>::max();
    options.replica.metrics.keep_records =
        serving::MetricsOptions::KeepRecords::Never;

    std::printf("Scale sweep: %lld Poisson requests, 4 replicas, "
                "analytic step costs, streaming metrics\n",
                static_cast<long long>(num_requests));

    serving::TraceGenerator trace(serving::TraceShape::Poisson,
                                  trace_options);
    serving::AnalyticCostModel cost;
    serving::FleetScheduler fleet(options, cost);
    auto wall_start = std::chrono::steady_clock::now();
    serving::FleetResult result = fleet.run(trace);
    double wall_s =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count();

    const serving::FleetMetrics &m = result.metrics;
    struct rusage usage{};
    getrusage(RUSAGE_SELF, &usage); // ru_maxrss is KiB on Linux
    std::printf("\n  completed        %lld\n",
                static_cast<long long>(m.completed));
    std::printf("  wall time        %.2f s  (%.0f req/s)\n",
                wall_s,
                static_cast<double>(num_requests) / wall_s);
    std::printf("  simulated rate   %.1f req/s over %.1f s\n",
                m.servedRequestsPerSecond(), m.makespan_ms / 1e3);
    std::printf("  latency p50/p99  %.1f / %.1f ms (sketch, "
                "%lld retained items for %lld samples)\n",
                m.latencyPercentileMs(50.0),
                m.latencyPercentileMs(99.0),
                static_cast<long long>(
                    m.latency_sketch.retainedItems()),
                static_cast<long long>(m.latency_sketch.count()));
    std::printf("  peak RSS         %.1f MB\n",
                static_cast<double>(usage.ru_maxrss) / 1024.0);
    return 0;
}

/** The weight-streaming sweep: cold starts and crash recovery
 *  priced per storage tier, same shape as bench/weight_streaming
 *  but as a printable report. */
int
coldStartSweep(int64_t num_requests)
{
    runtime::LlmExecutor executor(models::gpt2Config(),
                                  hls::u55c());
    auto artifact =
        serving::ModelArtifact::fromConfig(executor.config());

    serving::TraceOptions trace_options;
    trace_options.num_requests = num_requests;
    trace_options.seed = 23;
    trace_options.mean_interarrival_ms = 8.0;
    trace_options.min_input_len = 8;
    trace_options.max_input_len = 128;
    trace_options.min_output_len = 4;
    trace_options.max_output_len = 24;
    auto trace = serving::poissonTrace(trace_options);

    std::printf("Cold-start sweep: GPT-2 (%.1f MiB packed), "
                "%lld requests, 8 stream readers, 2 MiB chunks\n\n",
                static_cast<double>(artifact.total_bytes) /
                    (1024.0 * 1024.0),
                static_cast<long long>(trace.size()));

    auto serveCold = [&](const serving::WeightStreamPlan &plan,
                         bool overlap) {
        serving::SchedulerOptions options;
        options.max_batch = 8;
        options.kv_budget_tokens = 2048;
        if (!plan.empty()) {
            options.cold_start.plan = plan;
            options.cold_start.overlap = overlap;
        }
        serving::ExecutorCostModel cost(executor);
        serving::Scheduler scheduler(options, cost);
        return scheduler.run(trace).metrics;
    };
    auto warm = serveCold({}, false);

    std::printf("%-6s %9s | %9s | %10s %10s | %9s %8s\n", "tier",
                "stream", "warm ttft", "cold ttft", "cold ttft",
                "stall", "overlap");
    std::printf("%-6s %9s | %9s | %10s %10s | %9s %8s\n", "",
                "ms", "ms", "off ms", "on ms", "on ms", "hidden");
    for (const auto &tier : serving::allTiers()) {
        serving::WeightStreamOptions stream_options;
        stream_options.tier = tier;
        auto plan = serving::WeightStreamer(stream_options)
                        .plan(artifact);
        auto off = serveCold(plan, false);
        auto on = serveCold(plan, true);
        std::printf("%-6s %9.1f | %9.1f | %10.1f %10.1f | "
                    "%9.1f %7.0f%%\n",
                    tier.name.c_str(), plan.streamMs(),
                    warm.ttftMeanMs(), off.ttftMeanMs(),
                    on.ttftMeanMs(), on.weight_stall_ms,
                    100.0 * on.weightOverlapFraction());
    }

    // ---- Crash recovery priced per tier ------------------------
    std::printf("\nCrash recovery: 2 replicas, replica 0 down at "
                "t=120 ms, recovery re-streams the artifact\n\n");
    std::printf("%-6s %10s %10s %13s %9s\n", "tier", "reload ms",
                "makespan", "availability", "uptime");
    for (const auto &tier : serving::allTiers()) {
        serving::WeightStreamOptions stream_options;
        stream_options.tier = tier;
        double reload_ms =
            serving::WeightStreamer(stream_options)
                .plan(artifact)
                .streamMs();
        serving::FleetOptions options;
        options.num_replicas = 2;
        options.replica.max_batch = 8;
        options.replica.kv_budget_tokens = 2048;
        options.max_retries = 3;
        options.retry_backoff_ms = 5.0;
        options.recovery_reload_ms = reload_ms;
        options.faults.events.push_back(
            {120.0, 0, serving::FaultKind::Crash, 1.0});
        options.faults.events.push_back(
            {240.0, 0, serving::FaultKind::Recover, 1.0});
        serving::ExecutorCostModel cost(executor);
        serving::FleetScheduler fleet(options, cost);
        auto m = fleet.run(trace).metrics;
        std::printf("%-6s %10.1f %10.1f %12.1f%% %8.1f%%\n",
                    tier.name.c_str(), reload_ms, m.makespan_ms,
                    100.0 * m.availability(),
                    100.0 * m.uptimeFraction());
    }
    std::printf("\nRecovery is not free: the replica rejoins only "
                "after its tier re-delivers every weight byte, so "
                "the storage bill shows up as fleet downtime.\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--scale") == 0)
        return scaleSweep(argc > 2 ? std::atoll(argv[2])
                                   : 1000000);
    if (argc > 1 && std::strcmp(argv[1], "--coldstart") == 0)
        return coldStartSweep(argc > 2 ? std::atoll(argv[2]) : 48);
    int64_t num_requests = argc > 1 ? std::atoll(argv[1]) : 48;
    int64_t max_batch = argc > 2 ? std::atoll(argv[2]) : 6;
    const int64_t kv_budget = 384; // 24 pages of 16 tokens

    runtime::LlmExecutor executor(models::gpt2Config(),
                                  hls::u55c());
    std::printf("Serving lab: GPT-2 on %s, max batch %lld, "
                "KV budget %lld tokens (both policies), "
                "%lld requests per sweep point\n\n",
                executor.platform().name.c_str(),
                static_cast<long long>(max_batch),
                static_cast<long long>(kv_budget),
                static_cast<long long>(num_requests));
    std::printf("%-12s %8s | %8s %8s %8s | %8s %8s %8s %8s %8s\n",
                "trace", "offered", "reserved", "batch", "p99",
                "paged", "batch", "p99", "preempt", "prefix");
    std::printf("%-12s %8s | %8s %8s %8s | %8s %8s %8s %8s %8s\n",
                "", "req/s", "req/s", "", "ms", "req/s", "",
                "ms", "", "hit");

    auto sweepPoint = [&](const char *name, bool bursty,
                          double mean_interarrival_ms) {
        serving::TraceOptions trace_options;
        trace_options.num_requests = num_requests;
        trace_options.seed = 29;
        trace_options.mean_interarrival_ms =
            mean_interarrival_ms;
        trace_options.min_input_len = 8;
        trace_options.max_input_len = 32;
        trace_options.min_output_len = 4;
        trace_options.max_output_len = 16;
        // Chat-style traffic: a shared 48-token system prompt
        // (4 groups) plus a short user turn, medium generations.
        // Narrow length spread keeps decode contexts in few shape
        // buckets, so freed batch slots actually merge into the
        // same accelerator trigger.
        trace_options.num_prefix_groups = 4;
        trace_options.shared_prefix_len = 48;
        auto trace = bursty ? serving::burstyTrace(trace_options)
                            : serving::poissonTrace(trace_options);

        auto serve = [&](serving::KvAdmission admission) {
            serving::SchedulerOptions options;
            options.max_batch = max_batch;
            options.kv_budget_tokens = kv_budget;
            options.admission = admission;
            serving::ExecutorCostModel cost(executor);
            serving::Scheduler scheduler(options, cost);
            auto result = scheduler.run(trace);
            if (cost.sawDeadlock())
                std::printf(
                    "  WARNING: a costed block deadlocked\n");
            return result.metrics;
        };
        auto reserved = serve(serving::KvAdmission::Reserve);
        auto paged = serve(serving::KvAdmission::Paged);

        double offered = 1e3 / mean_interarrival_ms;
        std::printf("%-12s %8.2f | %8.2f %8.2f %8.1f | %8.2f "
                    "%8.2f %8.1f %8lld %7.0f%%\n",
                    name, offered, reserved.requestsPerSecond(),
                    reserved.meanBatchSize(),
                    reserved.latencyPercentileMs(99.0),
                    paged.requestsPerSecond(),
                    paged.meanBatchSize(),
                    paged.latencyPercentileMs(99.0),
                    static_cast<long long>(paged.preemptions),
                    100.0 * paged.prefixHitRate());
    };

    sweepPoint("poisson/300", false, 300.0);
    sweepPoint("poisson/80", false, 80.0);
    sweepPoint("poisson/40", false, 40.0);
    sweepPoint("poisson/10", false, 10.0);
    sweepPoint("bursty/40", true, 40.0);
    sweepPoint("bursty/20", true, 20.0);

    std::printf("\nSame KV budget, same traces: the paged pool "
                "turns reserved-but-unused KV into batch slots.\n"
                "Bucketed shapes compiled once and reused across "
                "the sweep: %lld compiles total.\n",
                static_cast<long long>(executor.compileCount()));

    // ---- Fault sweep: a fleet of four loses one replica --------
    const int num_replicas = 4;
    serving::TraceOptions fleet_trace_options;
    fleet_trace_options.num_requests = num_requests * 2;
    fleet_trace_options.seed = 29;
    fleet_trace_options.mean_interarrival_ms = 10.0;
    fleet_trace_options.min_input_len = 8;
    fleet_trace_options.max_input_len = 192;
    fleet_trace_options.min_output_len = 4;
    fleet_trace_options.max_output_len = 32;
    auto fleet_trace =
        serving::poissonTrace(fleet_trace_options);

    serving::FleetOptions fleet_options;
    fleet_options.num_replicas = num_replicas;
    fleet_options.replica.max_batch = max_batch;
    fleet_options.replica.kv_budget_tokens = 2048;
    fleet_options.balancer = serving::LbPolicy::LeastKvLoad;
    fleet_options.max_retries = 3;
    fleet_options.retry_backoff_ms = 5.0;

    auto serveFleet = [&](serving::FaultPlan faults) {
        auto options = fleet_options;
        options.faults = std::move(faults);
        serving::ExecutorCostModel cost(executor);
        serving::FleetScheduler fleet(options, cost);
        return fleet.run(fleet_trace).metrics;
    };

    // Measure the fault-free fleet first; the kill instant is a
    // quarter of *its* makespan, the recovery three quarters.
    auto calm = serveFleet({});
    serving::FaultPlan plan;
    plan.events.push_back({0.25 * calm.makespan_ms, 0,
                           serving::FaultKind::Crash, 1.0});
    plan.events.push_back({0.75 * calm.makespan_ms, 0,
                           serving::FaultKind::Recover, 1.0});
    auto faulted = serveFleet(std::move(plan));

    std::printf("\nFault sweep: %d replicas, %lld requests, "
                "replica 0 killed at t=%.0f ms (25%% of the "
                "no-fault makespan), back at t=%.0f ms\n\n",
                num_replicas,
                static_cast<long long>(fleet_trace.size()),
                0.25 * calm.makespan_ms, 0.75 * calm.makespan_ms);
    std::printf("%-10s %10s %10s %12s %10s %10s %8s\n", "fleet",
                "goodput", "p99 ms", "availability", "uptime",
                "failovers", "lost");
    auto fleetRow = [](const char *name,
                       const serving::FleetMetrics &m) {
        std::printf("%-10s %10.2f %10.1f %11.1f%% %9.1f%% "
                    "%10lld %8lld\n",
                    name, m.servedRequestsPerSecond(),
                    m.latencyPercentileMs(99.0),
                    100.0 * m.availability(),
                    100.0 * m.uptimeFraction(),
                    static_cast<long long>(m.failovers),
                    static_cast<long long>(m.requests_lost));
    };
    fleetRow("no-fault", calm);
    fleetRow("crash-one", faulted);
    std::printf("\nEvery request evacuated by the crash "
                "re-prefilled on a survivor and still emitted "
                "its full output: availability holds while "
                "goodput and p99 pay for the lost quarter of "
                "the fleet.\n");
    return 0;
}
