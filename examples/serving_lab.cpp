/**
 * @file
 * Serving lab: sweep offered traffic through the
 * continuous-batching scheduler with real compiled + simulated
 * GPT-2 block costs, and watch throughput saturate while tail
 * latency grows — the classic open-loop serving curve, produced
 * entirely in simulated time.
 *
 *   ./build/examples/serving_lab [num_requests] [max_batch]
 */

#include <cstdio>
#include <cstdlib>

#include "serving/cost_model.h"
#include "serving/scheduler.h"
#include "serving/trace.h"

using namespace streamtensor;

int
main(int argc, char **argv)
{
    int64_t num_requests = argc > 1 ? std::atoll(argv[1]) : 48;
    int64_t max_batch = argc > 2 ? std::atoll(argv[2]) : 6;

    runtime::LlmExecutor executor(models::gpt2Config(),
                                  hls::u55c());
    std::printf("Serving lab: GPT-2 on %s, max batch %lld, "
                "%lld requests per sweep point\n\n",
                executor.platform().name.c_str(),
                static_cast<long long>(max_batch),
                static_cast<long long>(num_requests));
    std::printf("%-12s %9s %9s %9s %10s %10s %7s %6s\n",
                "trace", "offered", "served", "mean", "TTFT p95",
                "p99 lat", "util", "shapes");
    std::printf("%-12s %9s %9s %9s %10s %10s %7s %6s\n", "",
                "req/s", "req/s", "batch", "ms", "ms", "", "");

    auto sweepPoint = [&](const char *name, bool bursty,
                          double mean_interarrival_ms) {
        serving::TraceOptions trace_options;
        trace_options.num_requests = num_requests;
        trace_options.seed = 29;
        trace_options.mean_interarrival_ms =
            mean_interarrival_ms;
        trace_options.min_input_len = 8;
        trace_options.max_input_len = 160;
        trace_options.min_output_len = 4;
        trace_options.max_output_len = 24;
        auto trace = bursty ? serving::burstyTrace(trace_options)
                            : serving::poissonTrace(trace_options);

        serving::SchedulerOptions options;
        options.max_batch = max_batch;
        options.kv_budget_tokens = 4096;
        serving::ExecutorCostModel cost(executor);
        serving::Scheduler scheduler(options, cost);
        auto result = scheduler.run(trace);
        const auto &m = result.metrics;

        double offered = 1e3 / mean_interarrival_ms;
        std::printf("%-12s %9.2f %9.2f %9.2f %10.1f %10.1f "
                    "%6.0f%% %6lld\n",
                    name, offered, m.requestsPerSecond(),
                    m.meanBatchSize(), m.ttftP95Ms(),
                    m.latencyPercentileMs(99.0),
                    100.0 * m.utilization(),
                    static_cast<long long>(
                        executor.compileCount()));
        if (cost.sawDeadlock())
            std::printf("  WARNING: a costed block deadlocked\n");
    };

    sweepPoint("poisson/300", false, 300.0);
    sweepPoint("poisson/80", false, 80.0);
    sweepPoint("poisson/40", false, 40.0);
    sweepPoint("poisson/10", false, 10.0);
    sweepPoint("bursty/40", true, 40.0);
    sweepPoint("bursty/20", true, 20.0);

    std::printf("\nBucketed shapes compiled once and reused "
                "across the sweep: %lld compiles total.\n",
                static_cast<long long>(executor.compileCount()));
    return 0;
}
