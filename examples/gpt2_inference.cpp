/**
 * @file
 * GPT-2 end-to-end inference example: compiles one transformer
 * block for prefill and decode, runs the executor, and reports the
 * serving metrics the paper's Table 4 is built from.
 *
 *   ./build/examples/gpt2_inference [input_len] [output_len]
 */

#include <cstdio>
#include <cstdlib>

#include "runtime/executor.h"

using namespace streamtensor;

int
main(int argc, char **argv)
{
    int64_t input_len = argc > 1 ? std::atoll(argv[1]) : 32;
    int64_t output_len = argc > 2 ? std::atoll(argv[2]) : 32;

    models::LlmConfig config = models::gpt2Config();
    hls::FpgaPlatform platform = hls::u55c();

    std::printf("Model: %s (%lld layers, hidden %lld, FFN %lld, "
                "%lld heads)\n",
                config.name.c_str(),
                static_cast<long long>(config.layers),
                static_cast<long long>(config.hidden),
                static_cast<long long>(config.ffn_hidden),
                static_cast<long long>(config.heads));
    std::printf("Platform: %s @ %.0f MHz, %.0f GB/s HBM, "
                "%.0f MiB on-chip\n\n",
                platform.name.c_str(), platform.freq_mhz,
                platform.memory_bandwidth_gbps,
                platform.on_chip_memory_mib);

    runtime::LlmExecutor executor(config, platform);
    runtime::LlmRunResult r = executor.run(input_len, output_len);

    std::printf("[%lld:%lld] request\n",
                static_cast<long long>(input_len),
                static_cast<long long>(output_len));
    std::printf("  block prefill latency : %8.3f ms\n",
                r.block_prefill_ms);
    std::printf("  block decode latency  : %8.3f ms\n",
                r.block_decode_ms);
    std::printf("  TTFT                  : %8.2f ms\n", r.ttft_ms);
    std::printf("  decode                : %8.3f ms/token\n",
                r.decode_ms_per_token);
    std::printf("  total latency         : %8.2f ms\n",
                r.total_latency_ms);
    std::printf("  speed                 : %8.2f token/s\n",
                r.tokens_per_s);
    std::printf("  avg power             : %8.2f W\n",
                r.avg_power_w);
    std::printf("  energy                : %8.2f J "
                "(%.3f token/J)\n",
                r.energy_j, r.tokens_per_joule);
    if (r.deadlock)
        std::printf("  WARNING: simulation deadlocked\n");

    // Compilation statistics for this block.
    const runtime::CompiledBlock &blk =
        executor.block(models::decodeShapes(
            input_len + std::max<int64_t>(output_len / 2, 1)));
    std::printf("\nDecode-block compile stats:\n");
    std::printf("  fused groups          : %zu\n",
                blk.compile.design.plan.groups.size());
    std::printf("  components            : %lld\n",
                static_cast<long long>(
                    blk.compile.design.components
                        .numComponents()));
    std::printf("  equalization          : %s\n",
                token::equalizationName(
                    blk.compile.used_equalization)
                    .c_str());
    std::printf("  compile time          : %.3f s\n",
                blk.compile.times.total());
    return 0;
}
