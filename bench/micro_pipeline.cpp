/**
 * @file
 * Micro-benchmarks (google-benchmark) of the end-to-end pipeline:
 * full compilation of a transformer block and cycle-level
 * simulation throughput.
 */

#include <benchmark/benchmark.h>

#include "compiler/compiler.h"
#include "models/block_builder.h"
#include "sim/simulator.h"

using namespace streamtensor;

namespace {

void
BM_CompileDecodeBlock(benchmark::State &state)
{
    for (auto _ : state) {
        auto graph = models::buildTransformerBlock(
            models::gpt2Config(), models::decodeShapes(192));
        auto result = compiler::compile(std::move(graph),
                                        hls::u55c(), {});
        benchmark::DoNotOptimize(
            result.design.components.numComponents());
    }
}
BENCHMARK(BM_CompileDecodeBlock)->Unit(benchmark::kMillisecond);

void
BM_CompilePrefillBlock(benchmark::State &state)
{
    for (auto _ : state) {
        auto graph = models::buildTransformerBlock(
            models::gpt2Config(),
            models::prefillShapes(state.range(0)));
        auto result = compiler::compile(std::move(graph),
                                        hls::u55c(), {});
        benchmark::DoNotOptimize(
            result.design.components.numComponents());
    }
}
BENCHMARK(BM_CompilePrefillBlock)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

/** Attach simulator throughput counters: simulated cycles per wall
 *  second (the headline metric of the leap-ahead rewrite) and heap
 *  events per simulation. */
void
addSimCounters(benchmark::State &state,
               const std::vector<sim::SimResult> &sims)
{
    double cycles = 0.0;
    double events = 0.0;
    for (const auto &s : sims) {
        cycles += s.cycles;
        events += static_cast<double>(s.events);
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        cycles * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
    state.counters["sim_events"] = events;
}

void
BM_SimulateDecodeBlock(benchmark::State &state)
{
    auto graph = models::buildTransformerBlock(
        models::gpt2Config(), models::decodeShapes(192));
    auto result =
        compiler::compile(std::move(graph), hls::u55c(), {});
    std::vector<sim::SimResult> sims;
    for (auto _ : state) {
        sims = sim::simulateAll(result.design.components);
        benchmark::DoNotOptimize(sims[0].cycles);
    }
    addSimCounters(state, sims);
}
BENCHMARK(BM_SimulateDecodeBlock)->Unit(benchmark::kMillisecond);

void
BM_SimulatePrefillBlock(benchmark::State &state)
{
    auto graph = models::buildTransformerBlock(
        models::gpt2Config(),
        models::prefillShapes(state.range(0)));
    auto result =
        compiler::compile(std::move(graph), hls::u55c(), {});
    std::vector<sim::SimResult> sims;
    for (auto _ : state) {
        sims = sim::simulateAll(result.design.components);
        benchmark::DoNotOptimize(sims[0].cycles);
    }
    addSimCounters(state, sims);
}
BENCHMARK(BM_SimulatePrefillBlock)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
