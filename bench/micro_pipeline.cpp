/**
 * @file
 * Micro-benchmarks (google-benchmark) of the end-to-end pipeline:
 * full compilation of a transformer block and cycle-level
 * simulation throughput.
 */

#include <benchmark/benchmark.h>

#include "compiler/compiler.h"
#include "models/block_builder.h"
#include "sim/simulator.h"

using namespace streamtensor;

namespace {

void
BM_CompileDecodeBlock(benchmark::State &state)
{
    for (auto _ : state) {
        auto graph = models::buildTransformerBlock(
            models::gpt2Config(), models::decodeShapes(192));
        auto result = compiler::compile(std::move(graph),
                                        hls::u55c(), {});
        benchmark::DoNotOptimize(
            result.design.components.numComponents());
    }
}
BENCHMARK(BM_CompileDecodeBlock)->Unit(benchmark::kMillisecond);

void
BM_CompilePrefillBlock(benchmark::State &state)
{
    for (auto _ : state) {
        auto graph = models::buildTransformerBlock(
            models::gpt2Config(),
            models::prefillShapes(state.range(0)));
        auto result = compiler::compile(std::move(graph),
                                        hls::u55c(), {});
        benchmark::DoNotOptimize(
            result.design.components.numComponents());
    }
}
BENCHMARK(BM_CompilePrefillBlock)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

void
BM_SimulateDecodeBlock(benchmark::State &state)
{
    auto graph = models::buildTransformerBlock(
        models::gpt2Config(), models::decodeShapes(192));
    auto result =
        compiler::compile(std::move(graph), hls::u55c(), {});
    for (auto _ : state) {
        auto sims = sim::simulateAll(result.design.components);
        benchmark::DoNotOptimize(sims[0].cycles);
    }
}
BENCHMARK(BM_SimulateDecodeBlock)->Unit(benchmark::kMillisecond);

void
BM_SimulatePrefillBlock(benchmark::State &state)
{
    auto graph = models::buildTransformerBlock(
        models::gpt2Config(),
        models::prefillShapes(state.range(0)));
    auto result =
        compiler::compile(std::move(graph), hls::u55c(), {});
    for (auto _ : state) {
        auto sims = sim::simulateAll(result.design.components);
        benchmark::DoNotOptimize(sims[0].cycles);
    }
}
BENCHMARK(BM_SimulatePrefillBlock)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
