/**
 * @file
 * Micro-benchmarks (google-benchmark) of the end-to-end pipeline:
 * full compilation of a transformer block and cycle-level
 * simulation throughput.
 */

#include <benchmark/benchmark.h>

#include "compiler/compiler.h"
#include "models/block_builder.h"
#include "sim/simulator.h"

using namespace streamtensor;

namespace {

void
BM_CompileDecodeBlock(benchmark::State &state)
{
    for (auto _ : state) {
        auto graph = models::buildTransformerBlock(
            models::gpt2Config(), models::decodeShapes(192));
        auto result = compiler::compile(std::move(graph),
                                        hls::u55c(), {});
        benchmark::DoNotOptimize(
            result.design.components.numComponents());
    }
}
BENCHMARK(BM_CompileDecodeBlock)->Unit(benchmark::kMillisecond);

void
BM_CompilePrefillBlock(benchmark::State &state)
{
    for (auto _ : state) {
        auto graph = models::buildTransformerBlock(
            models::gpt2Config(),
            models::prefillShapes(state.range(0)));
        auto result = compiler::compile(std::move(graph),
                                        hls::u55c(), {});
        benchmark::DoNotOptimize(
            result.design.components.numComponents());
    }
}
BENCHMARK(BM_CompilePrefillBlock)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

/** Attach simulator throughput counters: simulated cycles per wall
 *  second (the headline metric of the leap-ahead rewrite) and heap
 *  events per simulation. */
void
addSimCounters(benchmark::State &state,
               const std::vector<sim::SimResult> &sims)
{
    double cycles = 0.0;
    double events = 0.0;
    for (const auto &s : sims) {
        cycles += s.cycles;
        events += static_cast<double>(s.events);
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        cycles * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
    state.counters["sim_events"] = events;
}

void
BM_SimulateDecodeBlock(benchmark::State &state)
{
    auto graph = models::buildTransformerBlock(
        models::gpt2Config(), models::decodeShapes(192));
    auto result =
        compiler::compile(std::move(graph), hls::u55c(), {});
    std::vector<sim::SimResult> sims;
    for (auto _ : state) {
        sims = sim::simulateAll(result.design.components);
        benchmark::DoNotOptimize(sims[0].cycles);
    }
    addSimCounters(state, sims);
}
BENCHMARK(BM_SimulateDecodeBlock)->Unit(benchmark::kMillisecond);

void
BM_SimulatePrefillBlock(benchmark::State &state)
{
    auto graph = models::buildTransformerBlock(
        models::gpt2Config(),
        models::prefillShapes(state.range(0)));
    auto result =
        compiler::compile(std::move(graph), hls::u55c(), {});
    std::vector<sim::SimResult> sims;
    for (auto _ : state) {
        sims = sim::simulateAll(result.design.components);
        benchmark::DoNotOptimize(sims[0].cycles);
    }
    addSimCounters(state, sims);
}
BENCHMARK(BM_SimulatePrefillBlock)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

/** Die partitioning cost on the compiled decode block: one
 *  partitionGroup pass per group (the Die_Partition stage), with
 *  the realised crossing count as a counter. */
void
BM_DiePartitionDecodeBlock(benchmark::State &state)
{
    auto graph = models::buildTransformerBlock(
        models::gpt2Config(), models::decodeShapes(192));
    auto result =
        compiler::compile(std::move(graph), hls::u55c(), {});
    auto &cg = result.design.components;
    partition::PartitionOptions options;
    if (state.range(0) == 0)
        options.strategy = partition::PartitionStrategy::Greedy;
    int64_t crossings = 0;
    for (auto _ : state) {
        crossings = 0;
        for (int64_t g = 0; g < cg.numGroups(); ++g) {
            auto part = partition::partitionGroup(cg, g,
                                                  hls::u55c(),
                                                  options);
            crossings += part.crossings;
        }
        benchmark::DoNotOptimize(crossings);
    }
    state.counters["crossings"] =
        static_cast<double>(crossings);
}
BENCHMARK(BM_DiePartitionDecodeBlock)
    ->Arg(0) // greedy
    ->Arg(1) // auto (ILP within guard)
    ->Unit(benchmark::kMicrosecond);

/** Crossing-aware simulation: the decode block compiled for a
 *  platform with a priced inter-die link (greedy placement, so
 *  crossings exist), simulated by the leap-ahead engine. The
 *  crossings counter pairs with sim_cycles_per_s to show what the
 *  link model costs the simulator. */
void
BM_SimulateCrossingAwareDecodeBlock(benchmark::State &state)
{
    hls::FpgaPlatform linked = hls::u55c();
    linked.inter_die_latency_cycles =
        static_cast<double>(state.range(0));
    linked.inter_die_ii_penalty = state.range(0) > 0 ? 1.0 : 0.0;
    compiler::CompileOptions options;
    options.partition.strategy =
        partition::PartitionStrategy::Greedy;
    auto graph = models::buildTransformerBlock(
        models::gpt2Config(), models::decodeShapes(192));
    auto result =
        compiler::compile(std::move(graph), linked, options);
    std::vector<sim::SimResult> sims;
    for (auto _ : state) {
        sims = sim::simulateAll(result.design.components);
        benchmark::DoNotOptimize(sims[0].cycles);
    }
    addSimCounters(state, sims);
    double crossings = 0.0;
    for (const auto &s : sims)
        crossings += static_cast<double>(s.crossing_channels);
    state.counters["crossings"] = crossings;
}
BENCHMARK(BM_SimulateCrossingAwareDecodeBlock)
    ->Arg(0)
    ->Arg(8)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
