/**
 * @file
 * Reproduces paper Table 4: StreamTensor vs the Allo [15] and
 * DFX [29] FPGA LLM accelerators on GPT-2. Latency (ms), TTFT
 * (ms), and decoding speed (token/s) across [input:output]
 * configurations, with Ours/Baseline ratios and geometric means.
 */

#include <cstdio>

#include "baselines/fpga_baselines.h"
#include "bench_common.h"
#include "runtime/executor.h"

using namespace streamtensor;

int
main()
{
    models::LlmConfig config = models::gpt2Config();
    runtime::LlmExecutor ours(config, hls::u55c());
    auto allo = baselines::alloSpec();
    auto dfx = baselines::dfxSpec();

    std::printf("Table 4: GPT-2 on FPGA — Ours (U55C, simulated) "
                "vs Allo / DFX (analytic U280 models)\n\n");
    std::printf("%-10s | %9s %8s %8s | %9s %8s %8s | %9s %8s %8s\n",
                "[In:Out]", "Ours(ms)", "TTFT", "tok/s",
                "Allo(ms)", "TTFT", "tok/s", "DFX(ms)", "TTFT",
                "tok/s");

    std::vector<double> lat_allo, ttft_allo, spd_allo;
    std::vector<double> lat_dfx, ttft_dfx, spd_dfx;

    for (auto [in_len, out_len] : bench::table4Sweep()) {
        auto r = ours.run(in_len, out_len);
        auto a = baselines::evaluateFpgaBaseline(allo, config,
                                                 in_len, out_len);
        auto d = baselines::evaluateFpgaBaseline(dfx, config,
                                                 in_len, out_len);
        std::printf("[%3lld:%3lld] | %9.2f %8.2f %8.2f | "
                    "%9.2f %8.2f %8.2f | %9.2f %8.2f %8.2f\n",
                    static_cast<long long>(in_len),
                    static_cast<long long>(out_len),
                    r.total_latency_ms, r.ttft_ms, r.tokens_per_s,
                    a.total_latency_ms, a.ttft_ms, a.tokens_per_s,
                    d.total_latency_ms, d.ttft_ms, d.tokens_per_s);
        lat_allo.push_back(r.total_latency_ms /
                           a.total_latency_ms);
        ttft_allo.push_back(r.ttft_ms / a.ttft_ms);
        spd_allo.push_back(r.tokens_per_s / a.tokens_per_s);
        lat_dfx.push_back(r.total_latency_ms / d.total_latency_ms);
        ttft_dfx.push_back(r.ttft_ms / d.ttft_ms);
        spd_dfx.push_back(r.tokens_per_s / d.tokens_per_s);
        if (r.deadlock)
            std::printf("  WARNING: simulation deadlocked\n");
    }

    std::printf("\nGeo. mean ratios Ours/Allo:  latency %.2fx, "
                "TTFT %.2fx, speed %.2fx\n",
                bench::geoMean(lat_allo), bench::geoMean(ttft_allo),
                bench::geoMean(spd_allo));
    std::printf("Geo. mean ratios Ours/DFX :  latency %.2fx, "
                "TTFT %.2fx, speed %.2fx\n",
                bench::geoMean(lat_dfx), bench::geoMean(ttft_dfx),
                bench::geoMean(spd_dfx));
    std::printf("\nPaper reference (Table 4 geo means): "
                "Ours/Allo 0.76x latency, 0.40x TTFT, 1.06x speed;"
                "\n                                     "
                "Ours/DFX 0.52x latency, 0.19x TTFT, 1.17x speed\n");
    return 0;
}
