/**
 * @file
 * Reproduces paper Fig. 10a: on-chip memory for intermediate
 * results within a single LLM layer, before vs after stream-based
 * kernel fusion (model parameters excluded, as in the paper).
 * Original = every inter-kernel tensor buffered on chip; after
 * fusion = converter ping-pong buffers + inter-kernel FIFOs.
 */

#include <cstdio>

#include "compiler/compiler.h"
#include "models/block_builder.h"

using namespace streamtensor;

int
main()
{
    std::printf("Fig. 10a: intermediate results per layer (MB), "
                "prefill seq=256\n\n");
    std::printf("%-8s %12s %14s %10s\n", "Model", "Original",
                "Kernel Fusion", "Fraction");
    for (const auto &cfg : models::allConfigs()) {
        auto graph = models::buildTransformerBlock(
            cfg, models::prefillShapes(256));
        auto result = compiler::compile(std::move(graph),
                                        hls::u55c(), {});
        double orig =
            result.design.original_intermediate_bytes / 1048576.0;
        double fused =
            result.design.fusedIntermediateBytes() / 1048576.0;
        std::printf("%-8s %9.2f MB %11.2f MB %9.1f%%\n",
                    cfg.name.c_str(), orig, fused,
                    100.0 * fused / orig);
    }
    std::printf("\nPaper reference: fusion reduces intermediate "
                "memory to 14.8%%-16.8%% of the original;\n"
                "Llama produces the most intermediate results.\n"
                "(Our converter sizing keeps the reduction "
                "direction and the Llama ordering; the absolute\n"
                "fraction is larger because inter-kernel loop "
                "orders are not yet co-permuted — see "
                "EXPERIMENTS.md.)\n");
    return 0;
}
