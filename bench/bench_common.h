/**
 * @file
 * Shared helpers for the paper-table benchmark binaries.
 */

#ifndef STREAMTENSOR_BENCH_BENCH_COMMON_H
#define STREAMTENSOR_BENCH_BENCH_COMMON_H

#include <cmath>
#include <cstdio>
#include <vector>

namespace bench {

/** The paper's [input:output] sweep of Tables 4 and 5. */
inline std::vector<std::pair<int64_t, int64_t>>
table4Sweep()
{
    return {{32, 32}, {64, 64}, {128, 128}, {256, 256}};
}

/** The paper's Fig. 9 sweep: {32,64,128} x {32,64,128}. */
inline std::vector<std::pair<int64_t, int64_t>>
fig9Sweep()
{
    std::vector<std::pair<int64_t, int64_t>> out;
    for (int64_t in : {32, 64, 128})
        for (int64_t len : {32, 64, 128})
            out.push_back({in, len});
    return out;
}

/** Geometric mean. */
inline double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / values.size());
}

} // namespace bench

#endif // STREAMTENSOR_BENCH_BENCH_COMMON_H
