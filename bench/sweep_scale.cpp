/**
 * @file
 * Million-request sweep micro-benchmarks (google-benchmark): the
 * scale harness this repo's serving experiments sweep with. The
 * headline benchmark serves one million Poisson requests through a
 * four-replica fleet on the analytic cost model with streaming
 * metrics (no per-request records), and reports wall-clock
 * requests/s plus the simulated quality counters (p99 from the
 * sketch) and the process peak RSS — the numbers behind the
 * "Million-request sweeps" table in the README. The smaller
 * paired variants measure the event cores against each other
 * (Heap vs LegacyScan) and serial vs parallel replica stepping at
 * a size the O(n)-per-round legacy core can still finish quickly.
 */

#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include "serving/cost_model.h"
#include "serving/fleet.h"
#include "serving/trace.h"

using namespace streamtensor;

namespace {

double
peakRssMb()
{
    struct rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    // ru_maxrss is KiB on Linux.
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

serving::TraceOptions
sweepTrace(int64_t num_requests)
{
    serving::TraceOptions options;
    options.num_requests = num_requests;
    options.seed = 42;
    // ~85% of the 4-replica fleet's measured service rate: heavy
    // queueing (a real tail to estimate) without divergence.
    options.mean_interarrival_ms = 2.5;
    options.min_input_len = 4;
    options.max_input_len = 64;
    options.min_output_len = 1;
    options.max_output_len = 16;
    return options;
}

serving::FleetOptions
sweepFleet(serving::FleetEventCore core, int64_t step_threads)
{
    serving::FleetOptions options;
    options.num_replicas = 4;
    options.replica.max_batch = 8;
    options.replica.kv_budget_tokens = 4096;
    options.replica.max_steps =
        std::numeric_limits<int64_t>::max();
    // Streaming metrics: the whole point of the sweep harness is
    // O(sketch) memory at millions of requests.
    options.replica.metrics.keep_records =
        serving::MetricsOptions::KeepRecords::Never;
    options.event_core = core;
    options.step_threads = step_threads;
    return options;
}

serving::FleetResult
runSweep(int64_t num_requests, serving::FleetEventCore core,
         int64_t step_threads)
{
    serving::TraceGenerator trace(serving::TraceShape::Poisson,
                                  sweepTrace(num_requests));
    serving::AnalyticCostModel cost;
    serving::FleetScheduler fleet(sweepFleet(core, step_threads),
                                  cost);
    return fleet.run(trace);
}

/** The headline: 1M requests, heap core, streaming metrics. */
void
BM_ServeMillionRequestSweep(benchmark::State &state)
{
    int64_t num_requests = state.range(0);
    serving::FleetResult result;
    for (auto _ : state)
        result = runSweep(num_requests,
                          serving::FleetEventCore::Heap, 1);
    const serving::FleetMetrics &m = result.metrics;
    state.counters["wall_req_per_s"] = benchmark::Counter(
        static_cast<double>(num_requests) *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
    state.counters["sim_req_per_s"] = m.servedRequestsPerSecond();
    state.counters["completed"] =
        static_cast<double>(m.completed);
    state.counters["p99_ms"] = m.latencyPercentileMs(99.0);
    state.counters["sketch_items"] =
        static_cast<double>(m.latency_sketch.retainedItems());
    state.counters["peak_rss_mb"] = peakRssMb();
}
BENCHMARK(BM_ServeMillionRequestSweep)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/** Event cores head to head. On calm traffic the two sit within
 *  noise of each other — per-round phase work is bounded by
 *  replica count either way, and the heap's advantage (next-round
 *  selection independent of retry-buffer depth and per-entry
 *  deadline scans) only bites under deep fault backlogs. This
 *  pairing is the regression guard that keeps the default core's
 *  constant factors honest against the oracle's wall clock. */
void
BM_SweepEventCore(benchmark::State &state)
{
    auto core =
        static_cast<serving::FleetEventCore>(state.range(0));
    int64_t num_requests = state.range(1);
    serving::FleetResult result;
    for (auto _ : state)
        result = runSweep(num_requests, core, 1);
    state.counters["completed"] =
        static_cast<double>(result.metrics.completed);
}
BENCHMARK(BM_SweepEventCore)
    ->ArgsProduct(
        {{static_cast<int64_t>(serving::FleetEventCore::Heap),
          static_cast<int64_t>(
              serving::FleetEventCore::LegacyScan)},
         {20000, 100000}})
    ->Unit(benchmark::kMillisecond);

/** Serial vs parallel replica stepping on the heap core. Results
 *  are bit-identical by contract; only the wall clock moves. On
 *  the analytic model a step costs microseconds, so this measures
 *  the pool-dispatch overhead envelope — the knob pays off only
 *  with heavyweight concurrentSafe() cost oracles. */
void
BM_SweepStepThreads(benchmark::State &state)
{
    int64_t threads = state.range(0);
    serving::FleetResult result;
    for (auto _ : state)
        result = runSweep(200000,
                          serving::FleetEventCore::Heap, threads);
    state.counters["completed"] =
        static_cast<double>(result.metrics.completed);
}
BENCHMARK(BM_SweepStepThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
