/**
 * @file
 * Reproduces paper Fig. 10b: wall-clock breakdown of generating
 * RTL from PyTorch — parallel HLS synthesis, downstream-tool
 * profiling, parameter packing, and StreamTensor compilation.
 * The vendor stages come from the deterministic time model in
 * hls/rtl_time (the real flow is gated on Vitis); the
 * StreamTensor stage is measured live.
 */

#include <cstdio>

#include "compiler/compiler.h"
#include "hls/rtl_time.h"
#include "models/block_builder.h"
#include "support/stopwatch.h"

using namespace streamtensor;

int
main()
{
    std::printf("Fig. 10b: RTL generation time breakdown (s)\n\n");
    std::printf("%-8s %10s %10s %9s %9s %9s\n", "Model",
                "HLS(par)", "Profiling", "Packing", "Compile",
                "Total");
    for (const auto &cfg : models::allConfigs()) {
        Stopwatch watch;
        auto graph = models::buildTransformerBlock(
            cfg, models::prefillShapes(128));
        auto result = compiler::compile(std::move(graph),
                                        hls::u55c(), {});
        // Decode block compiles too (the deployed design serves
        // both phases).
        auto decode_graph = models::buildTransformerBlock(
            cfg, models::decodeShapes(192));
        auto decode_result = compiler::compile(
            std::move(decode_graph), hls::u55c(), {});
        double compile_s = watch.elapsedSeconds();

        auto breakdown = hls::estimateRtlTime(
            result.design.components, cfg.totalParamBytes(),
            compile_s);
        std::printf("%-8s %10.1f %10.1f %9.1f %9.2f %9.1f\n",
                    cfg.name.c_str(), breakdown.hls_seconds,
                    breakdown.profiling_seconds,
                    breakdown.param_packing_seconds,
                    breakdown.compile_seconds, breakdown.total());
        (void)decode_result;
    }
    std::printf("\nPaper reference totals: GPT-2 1547.9s, Qwen "
                "1436.3s, Llama 1501.0s, Gemma 1251.7s;\nHLS "
                "dominates, StreamTensor compilation and packing "
                "are small fractions.\n");
    return 0;
}
