/**
 * @file
 * Reproduces paper Table 5: StreamTensor vs NVIDIA A100 and
 * 2080Ti (roofline + launch-overhead models) on GPT-2.
 */

#include <cstdio>

#include "baselines/gpu_model.h"
#include "bench_common.h"
#include "runtime/executor.h"

using namespace streamtensor;

int
main()
{
    models::LlmConfig config = models::gpt2Config();
    runtime::LlmExecutor ours(config, hls::u55c());
    auto a100 = baselines::a100();
    auto ti = baselines::rtx2080ti();

    std::printf("Table 5: GPT-2 — Ours (U55C, simulated) vs "
                "NVIDIA GPUs (analytic models)\n\n");
    std::printf("%-10s | %9s %8s %8s | %9s %8s %8s | %9s %8s %8s\n",
                "[In:Out]", "Ours(ms)", "TTFT", "tok/s",
                "A100(ms)", "TTFT", "tok/s", "2080Ti", "TTFT",
                "tok/s");

    std::vector<double> lat_a, ttft_a, spd_a;
    std::vector<double> lat_t, ttft_t, spd_t;

    for (auto [in_len, out_len] : bench::table4Sweep()) {
        auto r = ours.run(in_len, out_len);
        auto a = baselines::evaluateGpu(a100, config, in_len,
                                        out_len);
        auto t = baselines::evaluateGpu(ti, config, in_len,
                                        out_len);
        std::printf("[%3lld:%3lld] | %9.2f %8.2f %8.2f | "
                    "%9.2f %8.2f %8.2f | %9.2f %8.2f %8.2f\n",
                    static_cast<long long>(in_len),
                    static_cast<long long>(out_len),
                    r.total_latency_ms, r.ttft_ms, r.tokens_per_s,
                    a.total_latency_ms, a.ttft_ms, a.tokens_per_s,
                    t.total_latency_ms, t.ttft_ms, t.tokens_per_s);
        lat_a.push_back(r.total_latency_ms / a.total_latency_ms);
        ttft_a.push_back(r.ttft_ms / a.ttft_ms);
        spd_a.push_back(r.tokens_per_s / a.tokens_per_s);
        lat_t.push_back(r.total_latency_ms / t.total_latency_ms);
        ttft_t.push_back(r.ttft_ms / t.ttft_ms);
        spd_t.push_back(r.tokens_per_s / t.tokens_per_s);
    }

    std::printf("\nGeo. mean ratios Ours/A100  : latency %.2fx, "
                "TTFT %.2fx, speed %.2fx\n",
                bench::geoMean(lat_a), bench::geoMean(ttft_a),
                bench::geoMean(spd_a));
    std::printf("Geo. mean ratios Ours/2080Ti: latency %.2fx, "
                "TTFT %.2fx, speed %.2fx\n",
                bench::geoMean(lat_t), bench::geoMean(ttft_t),
                bench::geoMean(spd_t));
    std::printf("\nPaper reference (Table 5 geo means): "
                "Ours/A100 0.64x latency, 10.65x TTFT, 1.89x "
                "speed;\n                                     "
                "Ours/2080Ti 0.25x latency, 3.67x TTFT, 4.73x "
                "speed\n");
    return 0;
}
