/**
 * @file
 * Weight-streaming micro-benchmarks (google-benchmark): the
 * storage→HBM leg of cold starts and crash recovery. Counters
 * report the *simulated* serving quality — cold-start TTFT per
 * storage tier with and without compute/stream overlap, the
 * stream window itself, and fleet availability when recovery is
 * charged a tier-dependent reload — while the benchmark time
 * measures how fast planning and the event loops themselves run.
 * Every benchmark name carries "Weight" so CI can carve the JSON
 * into BENCH_weights.json by name.
 */

#include <benchmark/benchmark.h>

#include "serving/cost_model.h"
#include "serving/fleet.h"
#include "serving/trace.h"
#include "serving/weights.h"

using namespace streamtensor;

namespace {

runtime::LlmExecutor &
gpt2Executor()
{
    static runtime::LlmExecutor executor(models::gpt2Config(),
                                         hls::u55c());
    return executor;
}

const serving::ModelArtifact &
gpt2Artifact()
{
    static serving::ModelArtifact artifact =
        serving::ModelArtifact::fromConfig(models::gpt2Config());
    return artifact;
}

serving::StorageTierProfile
tierByIndex(int64_t index)
{
    return serving::allTiers()[static_cast<size_t>(index)];
}

std::vector<serving::Request>
coldTraffic()
{
    serving::TraceOptions options;
    options.num_requests = 48;
    options.seed = 23;
    options.mean_interarrival_ms = 8.0;
    options.min_input_len = 8;
    options.max_input_len = 128;
    options.min_output_len = 4;
    options.max_output_len = 24;
    return serving::poissonTrace(options);
}

/** Cold-start serving per tier: args are (tier index, overlap).
 *  Counters put the before/after on one row — warm TTFT, cold
 *  TTFT, the stream window, and the fraction of it the schedule
 *  hid. */
void
BM_WeightColdStartTtft(benchmark::State &state)
{
    auto tier = tierByIndex(state.range(0));
    bool overlap = state.range(1) != 0;
    serving::WeightStreamOptions stream_options;
    stream_options.tier = tier;
    auto plan = serving::WeightStreamer(stream_options)
                    .plan(gpt2Artifact());
    auto trace = coldTraffic();

    auto serve = [&](bool cold) {
        serving::ExecutorCostModel cost(gpt2Executor());
        serving::SchedulerOptions options;
        options.max_batch = 8;
        options.kv_budget_tokens = 2048;
        if (cold) {
            options.cold_start.plan = plan;
            options.cold_start.overlap = overlap;
        }
        serving::Scheduler scheduler(options, cost);
        return scheduler.run(trace);
    };

    auto warm = serve(false);
    serving::ServingMetrics metrics;
    for (auto _ : state) {
        auto result = serve(true);
        metrics = std::move(result.metrics);
        double makespan = metrics.makespan_ms;
        benchmark::DoNotOptimize(makespan);
    }
    state.SetLabel(tier.name);
    state.counters["ttft_warm_ms"] = warm.metrics.ttftMeanMs();
    state.counters["ttft_cold_ms"] = metrics.ttftMeanMs();
    state.counters["stream_ms"] = metrics.weight_stream_ms;
    state.counters["stall_ms"] = metrics.weight_stall_ms;
    state.counters["overlap_fraction"] =
        metrics.weightOverlapFraction();
}
BENCHMARK(BM_WeightColdStartTtft)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

/** Crash-recovery with a tier-dependent reload window: replica 0
 *  crashes mid-run and its recovery re-streams the artifact. */
void
BM_WeightReloadRecovery(benchmark::State &state)
{
    auto tier = tierByIndex(state.range(0));
    serving::WeightStreamOptions stream_options;
    stream_options.tier = tier;
    double reload_ms = serving::WeightStreamer(stream_options)
                           .plan(gpt2Artifact())
                           .streamMs();
    auto trace = coldTraffic();

    serving::FleetOptions options;
    options.num_replicas = 2;
    options.replica.max_batch = 8;
    options.replica.kv_budget_tokens = 2048;
    options.max_retries = 3;
    options.retry_backoff_ms = 5.0;
    options.recovery_reload_ms = reload_ms;
    options.faults.events.push_back(
        {120.0, 0, serving::FaultKind::Crash, 1.0});
    options.faults.events.push_back(
        {240.0, 0, serving::FaultKind::Recover, 1.0});

    serving::FleetMetrics metrics;
    for (auto _ : state) {
        serving::ExecutorCostModel cost(gpt2Executor());
        serving::FleetScheduler fleet(options, cost);
        auto result = fleet.run(trace);
        metrics = std::move(result.metrics);
        double makespan = metrics.makespan_ms;
        benchmark::DoNotOptimize(makespan);
    }
    state.SetLabel(tier.name);
    state.counters["availability"] = metrics.availability();
    state.counters["uptime_fraction"] = metrics.uptimeFraction();
    state.counters["reload_ms"] = metrics.reload_ms_total;
    state.counters["makespan_ms"] = metrics.makespan_ms;
}
BENCHMARK(BM_WeightReloadRecovery)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

/** Plan construction itself: manifest chunking + per-reader
 *  prefix sums, the hot path of every swap/recovery decision. */
void
BM_WeightStreamPlanBuild(benchmark::State &state)
{
    serving::WeightStreamOptions options;
    options.num_readers = state.range(0);
    serving::WeightStreamer streamer(options);
    for (auto _ : state) {
        auto plan = streamer.plan(gpt2Artifact());
        benchmark::DoNotOptimize(plan.end_ms);
    }
    state.counters["readers"] =
        static_cast<double>(state.range(0));
}
BENCHMARK(BM_WeightStreamPlanBuild)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
