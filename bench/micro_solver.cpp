/**
 * @file
 * Micro-benchmarks (google-benchmark) of the algorithmic
 * substrates: the simplex LP on FIFO-sizing-shaped instances, the
 * branch-and-bound ILP on die-assignment instances, converter
 * inference (Algorithm 1), and fusion exploration (Algorithm 2).
 */

#include <benchmark/benchmark.h>

#include "dse/converter_gen.h"
#include "dse/fusion.h"
#include "solver/ilp.h"
#include "solver/lp.h"
#include "token/fifo_sizing.h"

using namespace streamtensor;

namespace {

/** Chain-with-skips sizing problem of n kernels. */
token::FifoSizingProblem
chainProblem(int64_t n)
{
    token::FifoSizingProblem p;
    for (int64_t i = 0; i < n; ++i)
        p.addNode({50.0 + 10.0 * (i % 7), 2000.0 + 100.0 * i});
    for (int64_t i = 0; i + 1 < n; ++i)
        p.addEdge(i, i + 1, 256);
    for (int64_t i = 0; i + 2 < n; i += 3)
        p.addEdge(i, i + 2, 256);
    return p;
}

void
BM_FifoSizingLp(benchmark::State &state)
{
    auto problem = chainProblem(state.range(0));
    for (auto _ : state) {
        auto result = token::sizeFifos(problem);
        benchmark::DoNotOptimize(result.objective);
    }
}
BENCHMARK(BM_FifoSizingLp)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(128)
    ->Arg(256);

void
BM_SimplexDense(benchmark::State &state)
{
    int64_t n = state.range(0);
    solver::LpProblem lp(n);
    for (int64_t j = 0; j < n; ++j)
        lp.setObjective(j, 1.0);
    for (int64_t i = 0; i < n; ++i) {
        std::vector<double> row(n, 0.0);
        for (int64_t j = 0; j <= i; ++j)
            row[j] = 1.0;
        lp.addConstraint(row, solver::Relation::GE,
                         100.0 * (i + 1));
    }
    for (auto _ : state) {
        auto sol = solver::solveLp(lp);
        benchmark::DoNotOptimize(sol.objective);
    }
}
BENCHMARK(BM_SimplexDense)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

/** Tasks x 3 dies binary assignment with balance constraint. */
solver::IlpProblem
dieAssignmentIlp(int64_t tasks)
{
    int64_t dies = 3;
    solver::IlpProblem ilp(tasks * dies);
    for (int64_t i = 0; i < tasks; ++i) {
        std::vector<int64_t> vars;
        std::vector<double> ones(dies, 1.0);
        for (int64_t d = 0; d < dies; ++d) {
            ilp.setBinary(i * dies + d);
            vars.push_back(i * dies + d);
        }
        ilp.lp().addSparseConstraint(vars, ones,
                                     solver::Relation::EQ, 1.0);
    }
    for (int64_t d = 0; d < dies; ++d) {
        std::vector<int64_t> vars;
        std::vector<double> ones;
        for (int64_t i = 0; i < tasks; ++i) {
            vars.push_back(i * dies + d);
            ones.push_back(1.0);
        }
        ilp.lp().addSparseConstraint(
            vars, ones, solver::Relation::LE,
            static_cast<double>((tasks + dies - 1) / dies));
        // Prefer low dies via objective weights.
        for (int64_t i = 0; i < tasks; ++i)
            ilp.lp().setObjective(i * dies + d,
                                  0.1 * d + 0.01 * i);
    }
    return ilp;
}

void
BM_IlpDiePartition(benchmark::State &state)
{
    auto ilp = dieAssignmentIlp(state.range(0));
    for (auto _ : state) {
        auto sol = solver::solveIlp(ilp);
        benchmark::DoNotOptimize(sol.objective);
    }
}
BENCHMARK(BM_IlpDiePartition)->Arg(6)->Arg(9)->Arg(12);

/** Same branch-and-bound with parent-basis warm starts disabled:
 *  the spread against BM_IlpDiePartition is the warm-start win. */
void
BM_IlpDiePartitionColdNodes(benchmark::State &state)
{
    auto ilp = dieAssignmentIlp(state.range(0));
    solver::IlpOptions options;
    options.warm_start = false;
    for (auto _ : state) {
        auto sol = solver::solveIlp(ilp, options);
        benchmark::DoNotOptimize(sol.objective);
    }
}
BENCHMARK(BM_IlpDiePartitionColdNodes)->Arg(6)->Arg(9)->Arg(12);

void
BM_ConverterInference(benchmark::State &state)
{
    ir::TensorType tensor(ir::DataType::I8, {256, 256});
    auto src = ir::makeTiledITensor(tensor, {16, 16});
    auto res = ir::makePermutedITensor(tensor, {16, 16}, {1, 0});
    for (auto _ : state) {
        auto spec = dse::inferConverter(src, res);
        benchmark::DoNotOptimize(spec.before_loop);
    }
}
BENCHMARK(BM_ConverterInference);

void
BM_FusionExploration(benchmark::State &state)
{
    int64_t n = state.range(0);
    ir::TensorType tensor(ir::DataType::I8, {64, 64});
    auto a = ir::makeTiledITensor(tensor, {16, 16});
    auto b = ir::makePermutedITensor(tensor, {16, 16}, {1, 0});
    dse::FusionGraph graph;
    for (int64_t i = 0; i < n; ++i)
        graph.addNode();
    for (int64_t i = 0; i + 1 < n; ++i)
        graph.addEdge(i, i + 1, i % 2 ? a : b, i % 3 ? a : b);
    for (auto _ : state) {
        auto plan = dse::exploreFusion(graph, 1 << 20);
        benchmark::DoNotOptimize(plan.groups.size());
    }
}
BENCHMARK(BM_FusionExploration)->Arg(16)->Arg(64);

} // namespace

BENCHMARK_MAIN();
