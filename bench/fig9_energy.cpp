/**
 * @file
 * Reproduces paper Fig. 9: energy efficiency (tokens/J) of
 * StreamTensor vs the A100 on the emerging LLMs (Qwen, Llama,
 * Gemma) across the [32,64,128] x [32,64,128] sweep. Also echoes
 * Table 7 (model configurations) for provenance.
 */

#include <algorithm>
#include <cstdio>

#include "baselines/gpu_model.h"
#include "bench_common.h"
#include "runtime/executor.h"

using namespace streamtensor;

int
main()
{
    std::printf("Table 7: model configurations\n");
    std::printf("%-8s %7s %7s %11s %6s %9s %11s\n", "Model",
                "Layers", "Hidden", "FFN Hidden", "Heads",
                "KV Heads", "Activation");
    for (const auto &cfg : models::allConfigs()) {
        std::printf("%-8s %7lld %7lld %11lld %6lld %9lld %11s\n",
                    cfg.name.c_str(),
                    static_cast<long long>(cfg.layers),
                    static_cast<long long>(cfg.hidden),
                    static_cast<long long>(cfg.ffn_hidden),
                    static_cast<long long>(cfg.heads),
                    static_cast<long long>(cfg.kv_heads),
                    cfg.activation == models::Activation::Gelu
                        ? "GELU"
                        : "SiLU");
    }

    std::printf("\nFig. 9: energy efficiency (tokens/J), Ours vs "
                "A100\n");
    auto a100 = baselines::a100();
    for (const auto &cfg : models::allConfigs()) {
        if (cfg.name == "GPT-2")
            continue; // Fig. 9 covers the emerging LLMs.
        runtime::LlmExecutor ours(cfg, hls::u55c());
        std::printf("\n%s\n%-10s %10s %10s %8s\n", cfg.name.c_str(),
                    "[In:Out]", "Ours", "A100", "Ratio");
        std::vector<double> ratios;
        for (auto [in_len, out_len] : bench::fig9Sweep()) {
            auto r = ours.run(in_len, out_len);
            auto a = baselines::evaluateGpu(a100, cfg, in_len,
                                            out_len);
            double ratio =
                r.tokens_per_joule / a.tokens_per_joule;
            ratios.push_back(ratio);
            std::printf("[%3lld:%3lld] %10.3f %10.3f %7.2fx%s\n",
                        static_cast<long long>(in_len),
                        static_cast<long long>(out_len),
                        r.tokens_per_joule, a.tokens_per_joule,
                        ratio,
                        r.deadlock ? "  (DEADLOCK)" : "");
        }
        std::printf("max ratio: %.2fx (paper: Qwen up to 1.99x, "
                    "Gemma up to 1.59x, Llama below the A100)\n",
                    *std::max_element(ratios.begin(),
                                      ratios.end()));
    }
    return 0;
}
