/**
 * @file
 * Reproduces paper Fig. 10c: StreamTensor's own compilation-time
 * breakdown per stage (Linalg_Opt, Linalg_Tiling, Kernel_Fusion,
 * Dataflow_Opt, HLS_Opt, Die_Partition, Fifo_Sizing,
 * Memory_Alloc, Bufferization, Code_Gen), measured live for each
 * model; the paper's Resource_Alloc bar is the sum of the
 * Die_Partition/Fifo_Sizing/Memory_Alloc stages.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "compiler/compiler.h"
#include "models/block_builder.h"

using namespace streamtensor;

int
main()
{
    std::printf("Fig. 10c: StreamTensor compile-time breakdown "
                "(ms), prefill seq=256 block\n\n");

    std::vector<std::string> stage_names;
    std::map<std::string, std::map<std::string, double>> table;

    for (const auto &cfg : models::allConfigs()) {
        auto graph = models::buildTransformerBlock(
            cfg, models::prefillShapes(256));
        auto result = compiler::compile(std::move(graph),
                                        hls::u55c(), {});
        for (const auto &[stage, seconds] : result.times.stages) {
            if (table.empty() ||
                table.begin()->second.count(stage) == 0) {
                bool known = false;
                for (const auto &s : stage_names)
                    known |= s == stage;
                if (!known)
                    stage_names.push_back(stage);
            }
            table[cfg.name][stage] = seconds * 1e3;
        }
    }

    std::printf("%-16s", "Stage");
    for (const auto &cfg : models::allConfigs())
        std::printf("%10s", cfg.name.c_str());
    std::printf("\n");
    for (const auto &stage : stage_names) {
        std::printf("%-16s", stage.c_str());
        for (const auto &cfg : models::allConfigs())
            std::printf("%10.2f", table[cfg.name][stage]);
        std::printf("\n");
    }
    std::printf("%-16s", "Total");
    for (const auto &cfg : models::allConfigs()) {
        double total = 0.0;
        for (const auto &stage : stage_names)
            total += table[cfg.name][stage];
        std::printf("%10.2f", total);
    }
    std::printf("\n\nPaper reference: totals 26.8s-63.4s with "
                "high-level stages fast and low-level stages\n"
                "(bufferization, HLS opt, codegen) dominant; our "
                "from-scratch pipeline keeps the same stage\n"
                "ordering at smaller absolute scale.\n");
    return 0;
}
