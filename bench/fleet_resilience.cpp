/**
 * @file
 * Fleet-resilience micro-benchmarks (google-benchmark): the
 * replicated serving tier under scripted faults. Counters report
 * the *simulated* serving quality — availability, failovers,
 * completed requests/s, p99 latency — while the benchmark time
 * measures how fast the fleet's discrete-event loop itself runs.
 * The three variants share one trace and differ only in the fault
 * plan: no faults, one replica crashing at ~25% of the no-fault
 * makespan (with a later recovery), and one replica slowed 3x
 * over the middle half of the run.
 */

#include <benchmark/benchmark.h>

#include "serving/cost_model.h"
#include "serving/fleet.h"
#include "serving/trace.h"

using namespace streamtensor;

namespace {

runtime::LlmExecutor &
gpt2Executor()
{
    static runtime::LlmExecutor executor(models::gpt2Config(),
                                         hls::u55c());
    return executor;
}

std::vector<serving::Request>
fleetTraffic()
{
    serving::TraceOptions options;
    options.num_requests = 96;
    options.seed = 17;
    options.mean_interarrival_ms = 10.0;
    options.min_input_len = 8;
    options.max_input_len = 192;
    options.min_output_len = 4;
    options.max_output_len = 32;
    return serving::poissonTrace(options);
}

/** No-fault makespan of fleetTraffic() on the two-replica fleet
 *  shape, measured once; the fault plans below are anchored to it
 *  (crash at 25%, recover / un-slow at 75%). Executor-backed
 *  steps run hundreds of simulated ms, so fault windows must span
 *  several steps to bite — a window shorter than one in-flight
 *  step is invisible by design (launched steps keep their
 *  cost). */
constexpr double kNominalMakespanMs = 7700.0;

serving::FleetOptions
fleetOptions(int num_replicas)
{
    serving::FleetOptions options;
    options.num_replicas = num_replicas;
    options.replica.max_batch = 8;
    options.replica.kv_budget_tokens = 2048;
    options.balancer = serving::LbPolicy::LeastKvLoad;
    options.max_retries = 3;
    options.retry_backoff_ms = 5.0;
    return options;
}

void
serveFleet(benchmark::State &state, serving::FleetOptions options)
{
    serving::FleetMetrics metrics;
    auto trace = fleetTraffic();
    for (auto _ : state) {
        serving::ExecutorCostModel cost(gpt2Executor());
        serving::FleetScheduler fleet(options, cost);
        auto result = fleet.run(trace);
        metrics = std::move(result.metrics);
        // A local copy: DoNotOptimize's read-write asm operand
        // clobbers the field itself at -O2 when handed the member
        // lvalue directly, corrupting the counters read after the
        // loop.
        double makespan = metrics.makespan_ms;
        benchmark::DoNotOptimize(makespan);
    }
    state.counters["availability"] = metrics.availability();
    state.counters["uptime_fraction"] = metrics.uptimeFraction();
    state.counters["served_req_per_s"] =
        metrics.servedRequestsPerSecond();
    state.counters["p99_latency_ms"] =
        metrics.latencyPercentileMs(99.0);
    state.counters["failovers"] =
        static_cast<double>(metrics.failovers);
    state.counters["requests_lost"] =
        static_cast<double>(metrics.requests_lost);
    state.counters["aborted_steps"] =
        static_cast<double>(metrics.aborted_steps);
}

void
BM_ServeReplicatedNoFault(benchmark::State &state)
{
    serveFleet(state,
               fleetOptions(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_ServeReplicatedNoFault)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_ServeReplicatedCrashOne(benchmark::State &state)
{
    auto options =
        fleetOptions(static_cast<int>(state.range(0)));
    options.faults.events.push_back(
        {0.25 * kNominalMakespanMs, 0, serving::FaultKind::Crash,
         1.0});
    options.faults.events.push_back(
        {0.75 * kNominalMakespanMs, 0,
         serving::FaultKind::Recover, 1.0});
    serveFleet(state, options);
}
BENCHMARK(BM_ServeReplicatedCrashOne)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_ServeReplicatedSlowOne(benchmark::State &state)
{
    auto options =
        fleetOptions(static_cast<int>(state.range(0)));
    options.faults.events.push_back(
        {0.25 * kNominalMakespanMs, 0,
         serving::FaultKind::SlowStart, 3.0});
    options.faults.events.push_back(
        {0.75 * kNominalMakespanMs, 0,
         serving::FaultKind::SlowEnd, 1.0});
    serveFleet(state, options);
}
BENCHMARK(BM_ServeReplicatedSlowOne)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
