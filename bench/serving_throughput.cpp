/**
 * @file
 * Serving-layer micro-benchmarks (google-benchmark): the
 * continuous-batching scheduler driven by executor-backed step
 * costs over Poisson and bursty arrival traces. Counters report
 * the *simulated* serving quality — completed requests/s and p99
 * request latency — while the benchmark time measures how fast
 * the discrete-event serving simulator itself runs (the compile
 * cache is warmed by the first iteration; steady-state iterations
 * are pure scheduling).
 */

#include <benchmark/benchmark.h>

#include "serving/cost_model.h"
#include "serving/scheduler.h"
#include "serving/trace.h"

using namespace streamtensor;

namespace {

runtime::LlmExecutor &
gpt2Executor()
{
    static runtime::LlmExecutor executor(models::gpt2Config(),
                                         hls::u55c());
    return executor;
}

serving::TraceOptions
trafficOptions()
{
    serving::TraceOptions options;
    options.num_requests = 96;
    options.seed = 17;
    options.mean_interarrival_ms = 20.0;
    options.min_input_len = 8;
    options.max_input_len = 192;
    options.min_output_len = 4;
    options.max_output_len = 32;
    return options;
}

void
serveTrace(benchmark::State &state,
           const std::vector<serving::Request> &trace,
           serving::KvAdmission admission =
               serving::KvAdmission::Paged,
           int64_t kv_budget_tokens = 4096)
{
    serving::SchedulerOptions options;
    options.max_batch = state.range(0);
    options.kv_budget_tokens = kv_budget_tokens;
    options.admission = admission;

    serving::ServingMetrics metrics;
    for (auto _ : state) {
        serving::ExecutorCostModel cost(gpt2Executor());
        serving::Scheduler scheduler(options, cost);
        auto result = scheduler.run(trace);
        metrics = std::move(result.metrics);
        // A local copy: DoNotOptimize's read-write asm operand
        // clobbers the field itself at -O2 when handed the member
        // lvalue directly, corrupting the counters read after the
        // loop.
        double makespan = metrics.makespan_ms;
        benchmark::DoNotOptimize(makespan);
    }
    state.counters["served_req_per_s"] =
        metrics.requestsPerSecond();
    state.counters["p99_latency_ms"] =
        metrics.latencyPercentileMs(99.0);
    state.counters["ttft_p95_ms"] = metrics.ttftP95Ms();
    state.counters["mean_batch"] = metrics.meanBatchSize();
    state.counters["accel_util"] = metrics.utilization();
    state.counters["preemptions"] =
        static_cast<double>(metrics.preemptions);
    state.counters["prefix_hit_rate"] = metrics.prefixHitRate();
    state.counters["page_util"] = metrics.pageUtilization();
}

// Chat-style saturated traffic at a tight KV budget: a shared
// 48-token system prompt (4 groups), short user turns, short
// generations. This is the regime where block-granular admission
// pays — the reserved policy's headroom for worst-case contexts
// becomes live batch slots. Same trace and budget for both
// policies; compare served_req_per_s across the pair.
serving::TraceOptions
saturatedPrefixTraffic()
{
    serving::TraceOptions options;
    options.num_requests = 48;
    options.seed = 29;
    options.mean_interarrival_ms = 10.0;
    options.min_input_len = 8;
    options.max_input_len = 32;
    options.min_output_len = 4;
    options.max_output_len = 16;
    options.num_prefix_groups = 4;
    options.shared_prefix_len = 48;
    return options;
}

constexpr int64_t kTightKvBudget = 384; // 24 pages of 16 tokens

void
BM_ServePoissonTrace(benchmark::State &state)
{
    auto trace = serving::poissonTrace(trafficOptions());
    serveTrace(state, trace);
}
BENCHMARK(BM_ServePoissonTrace)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void
BM_ServeBurstyTrace(benchmark::State &state)
{
    auto options = trafficOptions();
    options.burst_factor = 10.0;
    options.burst_period_ms = 1000.0;
    auto trace = serving::burstyTrace(options);
    serveTrace(state, trace);
}
BENCHMARK(BM_ServeBurstyTrace)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void
BM_ServeSaturatedReserved(benchmark::State &state)
{
    auto trace =
        serving::poissonTrace(saturatedPrefixTraffic());
    serveTrace(state, trace, serving::KvAdmission::Reserve,
               kTightKvBudget);
}
BENCHMARK(BM_ServeSaturatedReserved)
    ->Arg(6)
    ->Unit(benchmark::kMillisecond);

void
BM_ServeSaturatedPaged(benchmark::State &state)
{
    auto trace =
        serving::poissonTrace(saturatedPrefixTraffic());
    serveTrace(state, trace, serving::KvAdmission::Paged,
               kTightKvBudget);
}
BENCHMARK(BM_ServeSaturatedPaged)
    ->Arg(6)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
