/**
 * @file
 * Serving-layer micro-benchmarks (google-benchmark): the
 * continuous-batching scheduler driven by executor-backed step
 * costs over Poisson and bursty arrival traces. Counters report
 * the *simulated* serving quality — completed requests/s and p99
 * request latency — while the benchmark time measures how fast
 * the discrete-event serving simulator itself runs (the compile
 * cache is warmed by the first iteration; steady-state iterations
 * are pure scheduling).
 */

#include <benchmark/benchmark.h>

#include "serving/cost_model.h"
#include "serving/scheduler.h"
#include "serving/trace.h"

using namespace streamtensor;

namespace {

runtime::LlmExecutor &
gpt2Executor()
{
    static runtime::LlmExecutor executor(models::gpt2Config(),
                                         hls::u55c());
    return executor;
}

serving::TraceOptions
trafficOptions()
{
    serving::TraceOptions options;
    options.num_requests = 96;
    options.seed = 17;
    options.mean_interarrival_ms = 20.0;
    options.min_input_len = 8;
    options.max_input_len = 192;
    options.min_output_len = 4;
    options.max_output_len = 32;
    return options;
}

void
serveTrace(benchmark::State &state,
           const std::vector<serving::Request> &trace)
{
    serving::SchedulerOptions options;
    options.max_batch = state.range(0);
    options.kv_budget_tokens = 4096;

    serving::ServingMetrics metrics;
    for (auto _ : state) {
        serving::ExecutorCostModel cost(gpt2Executor());
        serving::Scheduler scheduler(options, cost);
        auto result = scheduler.run(trace);
        metrics = std::move(result.metrics);
        benchmark::DoNotOptimize(metrics.makespan_ms);
    }
    state.counters["served_req_per_s"] =
        metrics.requestsPerSecond();
    state.counters["p99_latency_ms"] =
        metrics.latencyPercentileMs(99.0);
    state.counters["ttft_p95_ms"] = metrics.ttftP95Ms();
    state.counters["mean_batch"] = metrics.meanBatchSize();
    state.counters["accel_util"] = metrics.utilization();
}

void
BM_ServePoissonTrace(benchmark::State &state)
{
    auto trace = serving::poissonTrace(trafficOptions());
    serveTrace(state, trace);
}
BENCHMARK(BM_ServePoissonTrace)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void
BM_ServeBurstyTrace(benchmark::State &state)
{
    auto options = trafficOptions();
    options.burst_factor = 10.0;
    options.burst_period_ms = 1000.0;
    auto trace = serving::burstyTrace(options);
    serveTrace(state, trace);
}
BENCHMARK(BM_ServeBurstyTrace)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
