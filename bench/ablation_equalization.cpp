/**
 * @file
 * Ablation (paper §5.3.3): Normal vs Conservative equalization.
 * Conservative scales every kernel's II to the slowest kernel's
 * throughput, minimising FIFO depths at the cost of execution
 * overlap. Reports total FIFO storage and simulated block latency
 * for the GPT-2 and Llama decode blocks.
 */

#include <cstdio>

#include "compiler/compiler.h"
#include "models/block_builder.h"
#include "sim/simulator.h"
#include "support/math_util.h"

using namespace streamtensor;

namespace {

void
runOne(const models::LlmConfig &cfg, token::Equalization eq)
{
    compiler::CompileOptions options;
    options.equalization = eq;
    options.auto_conservative = false;
    auto graph = models::buildTransformerBlock(
        cfg, models::decodeShapes(192));
    auto result =
        compiler::compile(std::move(graph), hls::u55c(), options);
    auto sims = sim::simulateAll(result.design.components);
    double cycles = 0.0;
    bool deadlock = false;
    bool timed_out = false;
    for (const auto &s : sims) {
        cycles += s.cycles;
        deadlock |= s.deadlock;
        timed_out |= s.timed_out;
    }
    int64_t fifo_kb =
        ceilDiv(result.design.components.totalFifoBits(), 8) /
        1024;
    int64_t total_depth = 0;
    for (const auto &sized : result.sizing)
        total_depth += sized.totalDepth();
    std::printf("%-8s %-13s %10lld %12lld %12.0f %s\n",
                cfg.name.c_str(),
                token::equalizationName(eq).c_str(),
                static_cast<long long>(total_depth),
                static_cast<long long>(fifo_kb), cycles,
                deadlock    ? "DEADLOCK"
                : timed_out ? "TIMEOUT (cycles truncated)"
                            : "ok");
}

} // namespace

int
main()
{
    std::printf("Ablation: FIFO equalization strategy (decode "
                "block, kv=192)\n\n");
    std::printf("%-8s %-13s %10s %12s %12s %s\n", "Model",
                "Strategy", "SumDepth", "FIFO KiB", "Cycles",
                "Status");
    for (const auto &cfg :
         {models::gpt2Config(), models::llamaConfig()}) {
        runOne(cfg, token::Equalization::Normal);
        runOne(cfg, token::Equalization::Conservative);
    }
    std::printf("\nExpected: Conservative shrinks total FIFO "
                "storage and (possibly) lengthens the block;\n"
                "the paper uses it when intermediate results "
                "pressure on-chip memory (the Llama case).\n");
    return 0;
}
