/**
 * @file
 * Ablation (paper §5.2.2): sweep the fusion budget C_max and
 * report how many fused groups Algorithm 2 produces, the total
 * converter memory, and the external-memory tensor traffic that
 * remains between groups. With C_max at the platform's on-chip
 * size, a whole transformer block fuses into one accelerator (the
 * paper's headline deployment); shrinking C_max splits it.
 */

#include <cstdio>

#include "compiler/compiler.h"
#include "models/block_builder.h"

using namespace streamtensor;

int
main()
{
    std::printf("Ablation: kernel-fusion budget sweep "
                "(GPT-2 prefill seq=128 block)\n\n");
    std::printf("%12s %8s %14s %16s\n", "C_max", "Groups",
                "Converter KiB", "Cross-group MB");
    for (int64_t c_max_kib :
         {16, 64, 256, 1024, 4096, 16384, 41984}) {
        compiler::CompileOptions options;
        options.c_max = c_max_kib * 1024;
        auto graph = models::buildTransformerBlock(
            models::gpt2Config(), models::prefillShapes(128));
        auto result = compiler::compile(std::move(graph),
                                        hls::u55c(), options);

        // Cross-group traffic: tensors stored+reloaded through
        // external memory because their endpoints split.
        double cross_mb = 0.0;
        const auto &cg = result.design.components;
        for (int64_t id = 0; id < cg.numComponents(); ++id) {
            const auto &c = cg.component(id);
            if (c.kind == dataflow::ComponentKind::StoreDma &&
                c.tensor_id >= 0) {
                cross_mb += c.total_points / 1048576.0;
            }
        }
        std::printf("%9lld KiB %8zu %14lld %16.2f\n",
                    static_cast<long long>(c_max_kib),
                    result.design.plan.groups.size(),
                    static_cast<long long>(
                        cg.totalConverterBytes() / 1024),
                    cross_mb);
    }
    std::printf("\nExpected: larger budgets monotonically merge "
                "kernels until the whole block is one group\n"
                "and cross-group external traffic collapses to "
                "the block outputs.\n");
    return 0;
}
