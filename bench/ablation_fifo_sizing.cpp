/**
 * @file
 * Ablation (paper §5.3.4): FIFO sizing policy. Compares the
 * LP-derived depths against naive uniform depths on a
 * reconvergent multi-rate graph (where undersized FIFOs deadlock)
 * and on the GPT-2 decode block (where undersized weight FIFOs
 * destroy the prefetch overlap and inflate latency).
 */

#include <cstdio>

#include "compiler/compiler.h"
#include "models/block_builder.h"
#include "sim/simulator.h"

using namespace streamtensor;

namespace {

/** Reconvergent multi-rate graph: a source fans out to a direct
 *  edge and a slow two-stage path that reconverge at a join that
 *  consumes 16-token bursts from the direct edge. */
dataflow::ComponentGraph
reconvergentGraph(int64_t direct_depth)
{
    dataflow::ComponentGraph g;
    ir::ITensorType tok(ir::DataType::I8, {1}, {64}, {1},
                        ir::AffineMap::identity(1));
    auto mk = [&](const char *name, double d, double cycles) {
        dataflow::Component c;
        c.kind = dataflow::ComponentKind::Kernel;
        c.name = name;
        c.initial_delay = d;
        c.total_cycles = cycles;
        return g.addComponent(c);
    };
    int64_t src = mk("src", 20.0, 100.0);
    int64_t slow = mk("slow", 900.0, 1200.0);
    int64_t join = mk("join", 10.0, 300.0);
    int64_t drain = mk("drain", 5.0, 30.0);
    auto ch = [&](int64_t s, int64_t d, int64_t tokens,
                  int64_t depth) {
        dataflow::Channel c;
        c.src = s;
        c.dst = d;
        c.type = tok;
        c.tokens = tokens;
        c.depth = depth;
        g.addChannel(c);
    };
    // The join fires 4 times (its out edge carries 4 tokens),
    // pulling 16-token bursts from the direct edge and 1 token
    // per firing from the slow path.
    ch(src, slow, 4, 2);
    ch(src, join, 64, direct_depth);
    ch(slow, join, 4, 2);
    ch(join, drain, 4, 2);
    return g;
}

} // namespace

int
main()
{
    std::printf("Ablation: FIFO sizing policy\n\n");
    std::printf("-- Reconvergent multi-rate graph --\n");
    for (int64_t depth : {4, 16, 64}) {
        auto g = reconvergentGraph(depth);
        sim::SimOptions opts;
        opts.max_cycles = 1e6;
        auto r = sim::simulateGroup(g, 0, opts);
        std::printf("direct-edge depth %3lld: %s (%.0f cycles)\n",
                    static_cast<long long>(depth),
                    r.deadlock    ? "DEADLOCK"
                    : r.timed_out ? "TIMEOUT"
                                  : "completes",
                    r.cycles);
    }
    std::printf("(the sink needs a 16-token burst while the slow "
                "path holds back the producer:\n depths below the "
                "LP/burst floor deadlock)\n\n");

    std::printf("-- GPT-2 decode block (kv=192) --\n");
    std::printf("%-22s %10s %10s %s\n", "Policy", "FIFO KiB",
                "Cycles", "Status");
    for (int64_t uniform : {0, 2, 4, 8}) {
        auto graph = models::buildTransformerBlock(
            models::gpt2Config(), models::decodeShapes(192));
        auto result = compiler::compile(std::move(graph),
                                        hls::u55c(), {});
        if (uniform > 0) {
            // Discard the LP result: hard-set every unfolded
            // FIFO to a uniform depth (the manual-sizing strawman
            // of paper §1.3.4).
            auto &cg = result.design.components;
            for (int64_t c = 0; c < cg.numChannels(); ++c)
                if (!cg.channel(c).folded)
                    cg.channel(c).depth = uniform;
        }
        sim::SimOptions opts;
        opts.max_cycles = 5e7;
        auto sims =
            sim::simulateAll(result.design.components, opts);
        double cycles = 0.0;
        bool deadlock = false;
        bool timed_out = false;
        for (const auto &s : sims) {
            cycles += s.cycles;
            deadlock |= s.deadlock;
            timed_out |= s.timed_out;
        }
        char label[64];
        if (uniform > 0)
            std::snprintf(label, sizeof(label),
                          "uniform depth %lld",
                          static_cast<long long>(uniform));
        else
            std::snprintf(label, sizeof(label), "LP (paper)");
        std::printf("%-22s %10lld %10.0f %s\n", label,
                    static_cast<long long>(
                        result.design.components.totalFifoBits() /
                        8 / 1024),
                    cycles,
                    deadlock    ? "DEADLOCK"
                    : timed_out ? "TIMEOUT (cycles truncated)"
                                : "ok");
    }
    std::printf("\nExpected: uniform shallow FIFOs deadlock on "
                "the residual fork/join (back-pressure\ncascade, "
                "paper §1.3.4) or stall; the LP depths run "
                "overlap-free.\n");
    return 0;
}
