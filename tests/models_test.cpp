/** @file Unit tests for the LLM model zoo (paper Table 7). */

#include <gtest/gtest.h>

#include <algorithm>

#include "support/error.h"

#include "models/block_builder.h"
#include "models/bucketing.h"
#include "models/llm_config.h"

using namespace streamtensor;
using namespace streamtensor::models;

TEST(Config, Table7Values)
{
    auto gpt2 = gpt2Config();
    EXPECT_EQ(gpt2.layers, 24);
    EXPECT_EQ(gpt2.hidden, 1024);
    EXPECT_EQ(gpt2.ffn_hidden, 4096);
    EXPECT_EQ(gpt2.heads, 16);
    EXPECT_EQ(gpt2.kv_heads, 16);
    EXPECT_EQ(gpt2.activation, Activation::Gelu);

    auto qwen = qwenConfig();
    EXPECT_EQ(qwen.layers, 24);
    EXPECT_EQ(qwen.hidden, 896);
    EXPECT_EQ(qwen.ffn_hidden, 4864);
    EXPECT_EQ(qwen.heads, 14);
    EXPECT_EQ(qwen.kv_heads, 2);
    EXPECT_EQ(qwen.activation, Activation::Silu);

    auto llama = llamaConfig();
    EXPECT_EQ(llama.layers, 22);
    EXPECT_EQ(llama.hidden, 2048);
    EXPECT_EQ(llama.ffn_hidden, 5632);
    EXPECT_EQ(llama.heads, 32);
    EXPECT_EQ(llama.kv_heads, 4);

    auto gemma = gemmaConfig();
    EXPECT_EQ(gemma.layers, 26);
    EXPECT_EQ(gemma.hidden, 1152);
    EXPECT_EQ(gemma.ffn_hidden, 6912);
    EXPECT_EQ(gemma.heads, 4);
    EXPECT_EQ(gemma.kv_heads, 1);
}

TEST(Config, GroupSizes)
{
    EXPECT_EQ(gpt2Config().groupSize(), 1);
    EXPECT_EQ(qwenConfig().groupSize(), 7);
    EXPECT_EQ(llamaConfig().groupSize(), 8);
    EXPECT_EQ(gemmaConfig().groupSize(), 4);
}

TEST(Config, BlockParamsGpt2)
{
    // GPT-2: attn 4*H^2, FFN 2*H*4H = 8H^2, norms 2H.
    auto cfg = gpt2Config();
    int64_t h = cfg.hidden;
    EXPECT_EQ(cfg.blockParams(), 4 * h * h + 8 * h * h + 2 * h);
    // W4: half a byte per param.
    EXPECT_EQ(cfg.blockParamBytes(),
              (cfg.blockParams() + 1) / 2);
}

TEST(Config, FlopsGrowWithContext)
{
    auto cfg = qwenConfig();
    EXPECT_GT(cfg.blockFlops(1, 128), cfg.blockFlops(1, 64));
    EXPECT_GT(cfg.blockFlops(32, 32), cfg.blockFlops(1, 32));
}

TEST(BlockBuilder, Gpt2DecodeGraphShape)
{
    auto g = buildTransformerBlock(gpt2Config(), decodeShapes(48));
    // 14 ops: norm, qkv, qk, softmax, pv, o, res, norm, fc1,
    // gelu, fc2, res (no rope for GPT-2).
    EXPECT_EQ(g.topoOrder().size(), 14u);
    EXPECT_EQ(g.inputTensors().size(), 1u);
    // block_out + k_new + v_new.
    EXPECT_EQ(g.outputTensors().size(), 3u);
}

TEST(BlockBuilder, RopeModelsAddTwoOps)
{
    auto gelu = buildTransformerBlock(gpt2Config(),
                                      decodeShapes(48));
    auto rope = buildTransformerBlock(qwenConfig(),
                                      decodeShapes(48));
    // SiLU FFN adds ops too (gate/up/mul): 14 + 2 (rope) + 2.
    EXPECT_EQ(rope.topoOrder().size(),
              gelu.topoOrder().size() + 4);
}

TEST(BlockBuilder, GqaShapesFactorHeads)
{
    auto cfg = qwenConfig();
    auto g = buildTransformerBlock(cfg, decodeShapes(64));
    // Find the q tensor: [kv_heads, group, S, hd].
    bool found = false;
    for (int64_t i = 0; i < g.numTensors(); ++i) {
        if (g.tensor(i).name != "q_proj")
            continue;
        found = true;
        EXPECT_EQ(g.tensor(i).type.shape(),
                  (std::vector<int64_t>{cfg.kv_heads,
                                        cfg.groupSize(), 1,
                                        cfg.head_dim}));
    }
    EXPECT_TRUE(found);
}

TEST(BlockBuilder, KvCachesAreInputsAtContextLength)
{
    auto cfg = llamaConfig();
    auto g = buildTransformerBlock(cfg, decodeShapes(96));
    int64_t caches = 0;
    for (int64_t i = 0; i < g.numTensors(); ++i) {
        if (g.tensor(i).role != linalg::TensorRole::KvCache)
            continue;
        ++caches;
        EXPECT_EQ(g.tensor(i).type.shape(),
                  (std::vector<int64_t>{cfg.kv_heads, 96,
                                        cfg.head_dim}));
    }
    EXPECT_EQ(caches, 2);
}

TEST(BlockBuilder, WeightsCarryParameterRole)
{
    auto g = buildTransformerBlock(gemmaConfig(),
                                   prefillShapes(32));
    int64_t params = 0;
    for (int64_t i = 0; i < g.numTensors(); ++i)
        if (g.tensor(i).role == linalg::TensorRole::Parameter)
            ++params;
    // 2 norms + wq/wk/wv/wo + fc1/fc2 = 8 parameters for GELU.
    EXPECT_EQ(params, 8);
}

TEST(BlockBuilder, PrefillAndDecodeShareStructure)
{
    auto cfg = gpt2Config();
    auto prefill =
        buildTransformerBlock(cfg, prefillShapes(64));
    auto decode = buildTransformerBlock(cfg, decodeShapes(64));
    EXPECT_EQ(prefill.topoOrder().size(),
              decode.topoOrder().size());
}

TEST(BlockBuilder, AllModelsBuildAcrossShapes)
{
    for (const auto &cfg : allConfigs()) {
        for (int64_t seq : {1, 32, 128}) {
            BlockShapes shapes{seq, std::max<int64_t>(seq, 48)};
            auto g = buildTransformerBlock(cfg, shapes);
            EXPECT_GT(g.numOps(), 10) << cfg.name;
            EXPECT_NO_THROW(g.topoOrder()) << cfg.name;
        }
    }
}

TEST(BlockBuilder, RejectsBadShapes)
{
    EXPECT_THROW(
        buildTransformerBlock(gpt2Config(), BlockShapes{0, 8}),
        FatalError);
}

TEST(BlockShapes, TotalOrderForCacheKeys)
{
    BlockShapes a{1, 48};
    BlockShapes b{1, 96};
    BlockShapes c{48, 48};
    EXPECT_LT(a, b);
    EXPECT_LT(a, c);
    EXPECT_TRUE(a == (BlockShapes{1, 48}));
    EXPECT_TRUE(a != b);
    EXPECT_FALSE(a < a);
}

TEST(Bucketing, LadderIsSortedAlignedAndCapped)
{
    BucketPolicy policy;
    auto boundaries = bucketBoundaries(policy);
    ASSERT_FALSE(boundaries.empty());
    EXPECT_EQ(boundaries.back(), policy.max_len);
    for (size_t i = 0; i < boundaries.size(); ++i) {
        if (i > 0) {
            EXPECT_GT(boundaries[i], boundaries[i - 1]);
        }
        if (boundaries[i] != policy.max_len) {
            EXPECT_EQ(boundaries[i] % policy.align, 0);
        }
    }
    // Geometric growth keeps the ladder (and so the compile
    // cache) tiny even for a 1k context.
    EXPECT_LE(boundaries.size(), 16u);
}

TEST(Bucketing, BucketLenRoundsUpIdempotentlyAndMonotonically)
{
    BucketPolicy policy;
    auto boundaries = bucketBoundaries(policy);
    int64_t prev = 0;
    for (int64_t len = 1; len <= policy.max_len; ++len) {
        int64_t bucket = bucketLen(len, policy);
        EXPECT_GE(bucket, len);
        EXPECT_GE(bucket, prev); // monotone
        EXPECT_EQ(bucketLen(bucket, policy), bucket); // idempotent
        EXPECT_TRUE(std::find(boundaries.begin(),
                              boundaries.end(),
                              bucket) != boundaries.end());
        prev = bucket;
    }
}

TEST(Bucketing, BucketedShapesQuantiseBothPhases)
{
    BucketPolicy policy;
    EXPECT_EQ(bucketedPrefillShapes(10, policy),
              prefillShapes(16));
    EXPECT_EQ(bucketedPrefillShapes(16, policy),
              prefillShapes(16));
    EXPECT_EQ(bucketedPrefillShapes(17, policy),
              prefillShapes(32));
    EXPECT_EQ(bucketedDecodeShapes(100, policy),
              decodeShapes(128));
}

TEST(Bucketing, RejectsOutOfRangeAndMalformedPolicies)
{
    BucketPolicy policy;
    EXPECT_THROW(bucketLen(0, policy), FatalError);
    EXPECT_THROW(bucketLen(policy.max_len + 1, policy),
                 FatalError);
    BucketPolicy shrinking;
    shrinking.growth_num = 1;
    shrinking.growth_den = 2;
    EXPECT_THROW(bucketBoundaries(shrinking), FatalError);
}
