/** @file Unit + property suite for the paged KV pool. The unit
 *  half pins the sharing/caching/eviction mechanics one at a time;
 *  the property half drives 100 seeded random op sequences against
 *  a shadow model and audits, after every single operation, page
 *  conservation, held-page arithmetic, physical-occupancy
 *  recomputation from the shadow's sharing structure, and the
 *  pool's own internal recount (KvPool::validate). */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <vector>

#include "serving/kv_pool.h"
#include "support/error.h"

using namespace streamtensor;
using serving::KvPool;
using serving::KvPoolOptions;

namespace {

KvPool
makePool(int64_t total_pages, int64_t page_tokens = 16)
{
    KvPoolOptions options;
    options.page_tokens = page_tokens;
    options.total_pages = total_pages;
    return KvPool(options);
}

} // namespace

TEST(KvPool, PagesForIsCeilingDivision)
{
    KvPool pool = makePool(8, 16);
    EXPECT_EQ(pool.pagesFor(0), 0);
    EXPECT_EQ(pool.pagesFor(1), 1);
    EXPECT_EQ(pool.pagesFor(16), 1);
    EXPECT_EQ(pool.pagesFor(17), 2);
    EXPECT_EQ(pool.pagesFor(128), 8);
}

TEST(KvPool, GrowAllocatesOnDemandAndNeverShrinks)
{
    KvPool pool = makePool(8, 16);
    pool.bind(1, 0, 0);
    ASSERT_TRUE(pool.grow(1, 20)); // 2 pages
    EXPECT_EQ(pool.heldPages(1), 2);
    EXPECT_EQ(pool.activePages(), 2);
    EXPECT_EQ(pool.freePages(), 6);
    ASSERT_TRUE(pool.grow(1, 21)); // still 2 pages
    EXPECT_EQ(pool.heldPages(1), 2);
    ASSERT_TRUE(pool.grow(1, 33)); // 3 pages
    EXPECT_EQ(pool.heldPages(1), 3);
    ASSERT_TRUE(pool.grow(1, 10)); // never shrinks
    EXPECT_EQ(pool.heldPages(1), 3);
    pool.release(1);
    EXPECT_EQ(pool.activePages(), 0);
    EXPECT_EQ(pool.freePages(), 8);
    EXPECT_EQ(pool.heldPages(1), 0);
    pool.validate();
}

TEST(KvPool, GrowFailureIsAtomic)
{
    KvPool pool = makePool(4, 16);
    pool.bind(1, 0, 0);
    ASSERT_TRUE(pool.grow(1, 48)); // 3 of 4 pages
    pool.bind(2, 0, 0);
    ASSERT_TRUE(pool.grow(2, 16)); // last page
    // Seq 2 needs one more page than exists: nothing may move.
    EXPECT_FALSE(pool.grow(2, 33));
    EXPECT_EQ(pool.heldPages(2), 1);
    EXPECT_EQ(pool.activePages(), 4);
    EXPECT_EQ(pool.freePages(), 0);
    pool.validate();
}

TEST(KvPool, PrefixPagesShareOnePhysicalCopy)
{
    // Prefix of 40 tokens covers 2 full pages (the third page
    // straddles the prefix boundary and stays private — page-
    // granular copy-on-write).
    KvPool pool = makePool(16, 16);
    pool.bind(1, /*prefix_id=*/7, /*prefix_len=*/40);
    ASSERT_TRUE(pool.grow(1, 64)); // 4 pages: 2 shared + 2 private
    EXPECT_EQ(pool.activePages(), 4);
    EXPECT_EQ(pool.stats().prefix_miss_pages, 2);

    pool.bind(2, 7, 40);
    ASSERT_TRUE(pool.grow(2, 64));
    EXPECT_EQ(pool.heldPages(2), 4);
    // Physical: 2 shared + 2 private each = 6, not 8.
    EXPECT_EQ(pool.activePages(), 6);
    EXPECT_EQ(pool.stats().prefix_hit_pages, 2);

    // A different prefix group shares nothing.
    pool.bind(3, 8, 40);
    ASSERT_TRUE(pool.grow(3, 64));
    EXPECT_EQ(pool.activePages(), 10);
    pool.validate();
}

TEST(KvPool, SharedPagesFreeOnlyAtRefcountZero)
{
    KvPool pool = makePool(8, 16);
    pool.bind(1, 3, 32);
    pool.bind(2, 3, 32);
    ASSERT_TRUE(pool.grow(1, 48));
    ASSERT_TRUE(pool.grow(2, 48));
    EXPECT_EQ(pool.activePages(), 4); // 2 shared + 1 + 1

    // Releasing one holder must keep the shared pages active.
    pool.release(1);
    EXPECT_EQ(pool.activePages(), 3);
    EXPECT_EQ(pool.heldPages(2), 3);
    EXPECT_EQ(pool.cachedPages(), 0);

    // Releasing the last holder retains them as cached, not free.
    pool.release(2);
    EXPECT_EQ(pool.activePages(), 0);
    EXPECT_EQ(pool.cachedPages(), 2);
    EXPECT_EQ(pool.freePages(), 6);
    pool.validate();
}

TEST(KvPool, CachedPrefixPagesReviveAsHits)
{
    KvPool pool = makePool(8, 16);
    pool.bind(1, 5, 32);
    ASSERT_TRUE(pool.grow(1, 40));
    pool.release(1);
    ASSERT_EQ(pool.cachedPages(), 2);
    int64_t misses_before = pool.stats().prefix_miss_pages;

    // Same prefix returns: both prefix pages revive from cache.
    pool.bind(2, 5, 32);
    ASSERT_TRUE(pool.grow(2, 40));
    EXPECT_EQ(pool.stats().prefix_hit_pages, 2);
    EXPECT_EQ(pool.stats().prefix_miss_pages, misses_before);
    EXPECT_EQ(pool.cachedPages(), 0);
    EXPECT_EQ(pool.activePages(), 3);
    pool.validate();
}

TEST(KvPool, EvictionReclaimsOldestCachedFirst)
{
    KvPool pool = makePool(4, 16);
    // Two one-page prefixes cached in order: 5 then 6.
    pool.bind(1, 5, 16);
    ASSERT_TRUE(pool.grow(1, 16));
    pool.release(1);
    pool.bind(2, 6, 16);
    ASSERT_TRUE(pool.grow(2, 16));
    pool.release(2);
    ASSERT_EQ(pool.cachedPages(), 2);
    ASSERT_EQ(pool.freePages(), 2);

    // A 3-page private grow needs one eviction: the oldest
    // retained prefix (5) goes; 6 must still revive as a hit.
    pool.bind(3, 0, 0);
    ASSERT_TRUE(pool.grow(3, 48));
    EXPECT_EQ(pool.stats().evicted_cached_pages, 1);
    pool.bind(4, 6, 16);
    ASSERT_TRUE(pool.grow(4, 16));
    EXPECT_EQ(pool.stats().prefix_hit_pages, 1);
    pool.bind(5, 5, 16);
    EXPECT_FALSE(pool.grow(5, 16)); // pool exhausted, 5 is gone
    pool.validate();
}

TEST(KvPool, CachedPagesCountAsAvailable)
{
    KvPool pool = makePool(4, 16);
    pool.bind(1, 9, 64);
    ASSERT_TRUE(pool.grow(1, 64));
    pool.release(1);
    ASSERT_EQ(pool.cachedPages(), 4);
    ASSERT_EQ(pool.freePages(), 0);
    EXPECT_EQ(pool.availablePages(), 4);

    // Caching must never refuse an allocation the plain pool
    // could have served: a full-pool private grow still succeeds.
    pool.bind(2, 0, 0);
    ASSERT_TRUE(pool.grow(2, 64));
    EXPECT_EQ(pool.activePages(), 4);
    EXPECT_EQ(pool.cachedPages(), 0);
    pool.validate();
}

TEST(KvPool, MissingPagesPlansAdmission)
{
    KvPool pool = makePool(8, 16);
    pool.bind(1, 4, 32);
    ASSERT_TRUE(pool.grow(1, 48));
    // A sibling of the same prefix only needs its private page.
    pool.bind(2, 4, 32);
    EXPECT_EQ(pool.missingPages(2, 48), 1);
    // A stranger needs all three.
    pool.bind(3, 0, 0);
    EXPECT_EQ(pool.missingPages(3, 48), 3);
    // Lookup only: nothing was allocated.
    EXPECT_EQ(pool.heldPages(2), 0);
    EXPECT_EQ(pool.heldPages(3), 0);
    pool.validate();
}

TEST(KvPool, ChecksDomains)
{
    KvPool pool = makePool(4, 16);
    EXPECT_THROW(pool.bind(1, -1, 0), FatalError);
    pool.bind(2, 0, 0);
    EXPECT_THROW(pool.bind(2, 0, 0), FatalError);
    EXPECT_THROW(pool.grow(99, 16), FatalError);
    EXPECT_THROW(pool.release(99), FatalError);
}

// ---------------------------------------------------------------
// 100-seed shadow-model property suite. Each seed drives a random
// op sequence (bind+grow, grow, release) and audits after EVERY
// op: conservation, held arithmetic, physical occupancy
// recomputed from the shadow's sharing structure, grow outcome
// bounds, and the pool's internal recount.
// ---------------------------------------------------------------

namespace {

struct ShadowSeq
{
    int64_t prefix_id = 0;
    int64_t prefix_len = 0;
    int64_t tokens = 0;
};

class PoolProperty : public ::testing::TestWithParam<uint64_t>
{};

void
auditAgainstShadow(const KvPool &pool,
                   const std::map<int64_t, ShadowSeq> &shadow)
{
    pool.validate();

    // Page conservation: the three states partition the pool.
    EXPECT_EQ(pool.activePages() + pool.cachedPages() +
                  pool.freePages(),
              pool.totalPages());

    // Held pages follow the ceiling arithmetic per sequence.
    for (const auto &[id, seq] : shadow)
        EXPECT_EQ(pool.heldPages(id), pool.pagesFor(seq.tokens))
            << "seq " << id;

    // Physical occupancy: Σ private pages plus, per prefix group,
    // one copy of the widest member's fully-covered prefix pages.
    int64_t priv = 0;
    std::map<int64_t, int64_t> group_shared;
    for (const auto &[id, seq] : shadow) {
        (void)id;
        int64_t held = pool.pagesFor(seq.tokens);
        int64_t shared =
            seq.prefix_id
                ? std::min(held, seq.prefix_len /
                                     pool.pageTokens())
                : 0;
        priv += held - shared;
        if (seq.prefix_id) {
            auto &best = group_shared[seq.prefix_id];
            best = std::max(best, shared);
        }
    }
    int64_t shared_total = 0;
    for (const auto &[gid, n] : group_shared) {
        (void)gid;
        shared_total += n;
    }
    EXPECT_EQ(pool.activePages(), priv + shared_total);
}

} // namespace

TEST_P(PoolProperty, ShadowModelAgreesEveryOp)
{
    const uint64_t seed = GetParam();
    std::mt19937_64 rng(seed);
    auto draw = [&](uint64_t lo, uint64_t hi) {
        return static_cast<int64_t>(lo + rng() % (hi - lo + 1));
    };

    const int64_t page_tokens = 16;
    const int64_t total_pages = draw(6, 40);
    KvPool pool = makePool(total_pages, page_tokens);
    const int64_t num_groups = draw(1, 3);
    // A single sequence wider than the pool is a caller error
    // (ST_CHECK), not back-pressure; keep demands in domain.
    const int64_t cap_tokens = total_pages * page_tokens;

    std::map<int64_t, ShadowSeq> shadow;
    int64_t next_id = 1;
    int64_t failed_grows = 0;
    for (int op = 0; op < 400; ++op) {
        uint64_t kind = rng() % 10;
        if (kind < 4 || shadow.empty()) {
            // Bind a new sequence and grow it to its prompt.
            ShadowSeq seq;
            if (rng() % 2) {
                seq.prefix_id = draw(1, num_groups);
                seq.prefix_len = page_tokens * draw(1, 3);
            }
            int64_t prompt = std::min(
                seq.prefix_len + draw(1, 60), cap_tokens);
            int64_t id = next_id++;
            pool.bind(id, seq.prefix_id, seq.prefix_len);
            int64_t missing = pool.missingPages(id, prompt);
            int64_t free_before = pool.freePages();
            int64_t avail_before = pool.availablePages();
            bool grew = pool.grow(id, prompt);
            // Outcome bounds: demand within the free list must
            // succeed; demand beyond everything reclaimable must
            // fail.
            if (missing <= free_before)
                EXPECT_TRUE(grew);
            if (missing > avail_before)
                EXPECT_FALSE(grew);
            if (grew) {
                seq.tokens = prompt;
                shadow[id] = seq;
            } else {
                ++failed_grows;
                pool.release(id);
                EXPECT_EQ(pool.heldPages(id), 0);
            }
        } else if (kind < 8) {
            // Grow a random resident sequence by a few tokens.
            auto it = shadow.begin();
            std::advance(it,
                         static_cast<int64_t>(
                             rng() % shadow.size()));
            int64_t target = std::min(
                it->second.tokens + draw(1, 24), cap_tokens);
            int64_t missing =
                pool.missingPages(it->first, target);
            int64_t held_before = pool.heldPages(it->first);
            int64_t free_before = pool.freePages();
            int64_t avail_before = pool.availablePages();
            bool grew = pool.grow(it->first, target);
            if (missing <= free_before)
                EXPECT_TRUE(grew);
            if (missing > avail_before)
                EXPECT_FALSE(grew);
            if (grew) {
                it->second.tokens = target;
            } else {
                ++failed_grows;
                // Atomic: failed growth moved nothing.
                EXPECT_EQ(pool.heldPages(it->first),
                          held_before);
            }
        } else {
            // Release a random resident sequence; its pages must
            // no longer be charged to it.
            auto it = shadow.begin();
            std::advance(it,
                         static_cast<int64_t>(
                             rng() % shadow.size()));
            pool.release(it->first);
            EXPECT_EQ(pool.heldPages(it->first), 0);
            shadow.erase(it);
        }
        auditAgainstShadow(pool, shadow);
    }

    // Drain: with every sequence released no page may stay
    // referenced — only cached prefix retentions and free pages.
    for (const auto &[id, seq] : shadow) {
        (void)seq;
        pool.release(id);
    }
    shadow.clear();
    auditAgainstShadow(pool, shadow);
    EXPECT_EQ(pool.activePages(), 0);

    // The suite is only meaningful if pressure occurred somewhere;
    // most seeds overflow a 6-40 page pool within 400 ops.
    if (total_pages <= 12)
        EXPECT_GT(failed_grows, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolProperty,
                         ::testing::Range<uint64_t>(0, 100));

TEST(KvPoolDeterminism, IdenticalOpSequencesReplayIdentically)
{
    auto run = [](KvPool &pool) {
        pool.bind(1, 2, 32);
        pool.grow(1, 50);
        pool.bind(2, 2, 32);
        pool.grow(2, 40);
        pool.release(1);
        pool.bind(3, 0, 0);
        pool.grow(3, 90);
        pool.release(2);
        pool.release(3);
    };
    KvPool a = makePool(10, 16);
    KvPool b = makePool(10, 16);
    run(a);
    run(b);
    EXPECT_EQ(a.activePages(), b.activePages());
    EXPECT_EQ(a.cachedPages(), b.cachedPages());
    EXPECT_EQ(a.freePages(), b.freePages());
    EXPECT_EQ(a.stats().prefix_hit_pages,
              b.stats().prefix_hit_pages);
    EXPECT_EQ(a.stats().prefix_miss_pages,
              b.stats().prefix_miss_pages);
    EXPECT_EQ(a.stats().evicted_cached_pages,
              b.stats().evicted_cached_pages);
    EXPECT_EQ(a.stats().peak_active_pages,
              b.stats().peak_active_pages);
}
