/** @file Unit + property tests for the cycle-level dataflow
 *  simulator. */

#include <gtest/gtest.h>

#include "sim/simulator.h"

using namespace streamtensor;
using dataflow::Channel;
using dataflow::Component;
using dataflow::ComponentGraph;
using dataflow::ComponentKind;

namespace {

ir::ITensorType
tokenType(int64_t n)
{
    return ir::ITensorType(ir::DataType::I8, {1}, {n}, {1},
                           ir::AffineMap::identity(1));
}

int64_t
addKernel(ComponentGraph &g, const char *name, double d,
          double cycles)
{
    Component c;
    c.kind = ComponentKind::Kernel;
    c.name = name;
    c.initial_delay = d;
    c.total_cycles = cycles;
    return g.addComponent(c);
}

void
addChannel(ComponentGraph &g, int64_t src, int64_t dst,
           int64_t tokens, int64_t depth, bool folded = false)
{
    Channel ch;
    ch.src = src;
    ch.dst = dst;
    ch.type = tokenType(tokens);
    ch.tokens = tokens;
    ch.depth = depth;
    ch.folded = folded;
    g.addChannel(ch);
}

} // namespace

TEST(Sim, TwoKernelPipelineMakespan)
{
    ComponentGraph g;
    int64_t a = addKernel(g, "a", 10.0, 10.0 + 63.0);
    int64_t b = addKernel(g, "b", 5.0, 5.0 + 63.0);
    addChannel(g, a, b, 64, 64);
    auto r = sim::simulateGroup(g, 0);
    ASSERT_FALSE(r.deadlock);
    // b consumes a's tokens as they arrive: last token at
    // a's finish (73) and b fires right then.
    EXPECT_NEAR(r.cycles, 73.0, 2.0);
}

TEST(Sim, WorkConservation)
{
    ComponentGraph g;
    int64_t a = addKernel(g, "a", 1.0, 65.0);
    int64_t b = addKernel(g, "b", 1.0, 129.0);
    addChannel(g, a, b, 64, 8);
    auto r = sim::simulateGroup(g, 0);
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(r.channels[0].pushes, 64);
    EXPECT_EQ(r.channels[0].pops, 64);
}

TEST(Sim, BackPressureStallsProducer)
{
    ComponentGraph g;
    // Fast producer, slow consumer, tiny FIFO: producer stalls.
    int64_t a = addKernel(g, "a", 1.0, 65.0);    // II ~1
    int64_t b = addKernel(g, "b", 1.0, 641.0);   // II ~10
    addChannel(g, a, b, 64, 2);
    auto r = sim::simulateGroup(g, 0);
    ASSERT_FALSE(r.deadlock);
    EXPECT_GT(r.components[0].stall_cycles, 0.0);
    // Consumer-bound makespan.
    EXPECT_GE(r.cycles, 600.0);
}

TEST(Sim, MaxOccupancyBoundedByDepth)
{
    ComponentGraph g;
    int64_t a = addKernel(g, "a", 1.0, 65.0);
    int64_t b = addKernel(g, "b", 1.0, 641.0);
    addChannel(g, a, b, 64, 5);
    auto r = sim::simulateGroup(g, 0);
    EXPECT_LE(r.channels[0].max_occupancy, 5);
}

TEST(Sim, BurstLargerThanCapacityDeadlocks)
{
    ComponentGraph g;
    int64_t a = addKernel(g, "a", 1.0, 65.0);
    int64_t b = addKernel(g, "b", 1.0, 65.0);
    int64_t sink = addKernel(g, "sink", 1.0, 9.0);
    // b fires 4 times (its out edge has 4 tokens) and needs 16
    // tokens of a's output per firing, but capacity is 8.
    addChannel(g, a, b, 64, 8);
    addChannel(g, b, sink, 4, 2);
    sim::SimOptions opts;
    opts.max_cycles = 1e6;
    auto r = sim::simulateGroup(g, 0, opts);
    EXPECT_TRUE(r.deadlock);
    EXPECT_FALSE(r.timed_out);
    EXPECT_FALSE(r.blocked_components.empty());
}

TEST(Sim, TimeoutIsNotDeadlock)
{
    // A healthy two-kernel pipeline cut off mid-flight: the result
    // reports timed_out, not deadlock, and names no blocked
    // components (nothing is wedged, max_cycles is merely tight).
    ComponentGraph g;
    int64_t a = addKernel(g, "a", 1.0, 1.0 + 1023.0 * 10.0);
    int64_t b = addKernel(g, "b", 2.0, 2.0 + 1023.0 * 10.0);
    addChannel(g, a, b, 1024, 8);
    sim::SimOptions opts;
    opts.max_cycles = 500.0;
    auto r = sim::simulateGroup(g, 0, opts);
    EXPECT_TRUE(r.timed_out);
    EXPECT_FALSE(r.deadlock);
    EXPECT_TRUE(r.blocked_components.empty());
    // Progress up to the cap is still reported.
    EXPECT_GT(r.components[0].firings, 0);
    EXPECT_LE(r.cycles, 500.0);
}

TEST(Sim, SimulateAllThreadedMatchesSequential)
{
    // Three independent single-group pipelines; per-group
    // simulation is pure, so the threaded fan-out must be bitwise
    // identical to the sequential path.
    ComponentGraph g;
    for (int64_t grp = 0; grp < 3; ++grp) {
        Component a;
        a.kind = ComponentKind::Kernel;
        a.name = "a";
        a.group = grp;
        a.initial_delay = 1.0 + grp;
        a.total_cycles = a.initial_delay + 63.0 * (1.0 + grp);
        int64_t ia = g.addComponent(a);
        Component b = a;
        b.name = "b";
        b.initial_delay = 2.0 + grp;
        b.total_cycles = b.initial_delay + 63.0;
        int64_t ib = g.addComponent(b);
        addChannel(g, ia, ib, 64, 4);
    }
    sim::SimOptions sequential;
    sequential.threads = 1;
    sim::SimOptions threaded;
    threaded.threads = 3;
    auto seq = sim::simulateAll(g, sequential);
    auto par = sim::simulateAll(g, threaded);
    ASSERT_EQ(seq.size(), par.size());
    for (size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(seq[i].deadlock, par[i].deadlock);
        EXPECT_EQ(seq[i].cycles, par[i].cycles);
        EXPECT_EQ(seq[i].first_output_cycle,
                  par[i].first_output_cycle);
        EXPECT_EQ(seq[i].events, par[i].events);
    }
}

TEST(Sim, FoldedChannelCarriesBurst)
{
    ComponentGraph g;
    int64_t a = addKernel(g, "a", 1.0, 65.0);
    int64_t b = addKernel(g, "b", 1.0, 65.0);
    int64_t sink = addKernel(g, "sink", 1.0, 9.0);
    // Same burst shape, but folded: capacity = burst, so it runs.
    addChannel(g, a, b, 64, 2, /*folded=*/true);
    addChannel(g, b, sink, 4, 2);
    auto r = sim::simulateGroup(g, 0);
    EXPECT_FALSE(r.deadlock);
}

TEST(Sim, ReconvergentDiamondCompletes)
{
    ComponentGraph g;
    int64_t src = addKernel(g, "src", 5.0, 69.0);
    int64_t fast = addKernel(g, "fast", 2.0, 66.0);
    int64_t slow = addKernel(g, "slow", 500.0, 564.0);
    int64_t join = addKernel(g, "join", 1.0, 65.0);
    addChannel(g, src, fast, 64, 2);
    addChannel(g, src, slow, 64, 2);
    addChannel(g, fast, join, 64, 64); // sized for the skew
    addChannel(g, slow, join, 64, 2);
    auto r = sim::simulateGroup(g, 0);
    ASSERT_FALSE(r.deadlock);
    EXPECT_GE(r.cycles, 500.0);
}

TEST(Sim, FirstOutputCycleTracksStoreDma)
{
    ComponentGraph g;
    int64_t a = addKernel(g, "a", 10.0, 74.0);
    Component store;
    store.kind = ComponentKind::StoreDma;
    store.name = "store";
    store.initial_delay = 1.0;
    store.total_cycles = 65.0;
    int64_t s = g.addComponent(store);
    addChannel(g, a, s, 64, 4);
    auto r = sim::simulateGroup(g, 0);
    ASSERT_FALSE(r.deadlock);
    EXPECT_GT(r.first_output_cycle, 0.0);
    EXPECT_LE(r.first_output_cycle, r.cycles);
}

TEST(Sim, SourceOnlyGraphFinishes)
{
    ComponentGraph g;
    Component load;
    load.kind = ComponentKind::LoadDma;
    load.name = "load";
    load.initial_delay = 3.0;
    load.total_cycles = 35.0;
    int64_t l = g.addComponent(load);
    Component store;
    store.kind = ComponentKind::StoreDma;
    store.name = "store";
    store.initial_delay = 1.0;
    store.total_cycles = 33.0;
    int64_t s = g.addComponent(store);
    addChannel(g, l, s, 32, 4);
    auto r = sim::simulateGroup(g, 0);
    EXPECT_FALSE(r.deadlock);
    EXPECT_EQ(r.components[0].firings, 32);
}

TEST(Sim, EmptyGroup)
{
    ComponentGraph g;
    auto results = sim::simulateAll(g);
    EXPECT_TRUE(results.empty());
}

// ---- Property: deeper FIFOs never increase the makespan ----

class DepthMonotonicity : public ::testing::TestWithParam<int>
{};

TEST_P(DepthMonotonicity, DeeperNeverSlower)
{
    uint64_t s = 0xbeef + GetParam();
    auto rnd = [&]() {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        return s * 0x2545f4914f6cdd1dull;
    };
    // Random 4-stage chain.
    double prev_cycles = -1.0;
    std::vector<double> delays, totals;
    for (int i = 0; i < 4; ++i) {
        delays.push_back(1.0 + rnd() % 50);
        totals.push_back(delays.back() + 64.0 +
                         (rnd() % 8) * 64.0);
    }
    for (int64_t depth : {2, 4, 16, 64}) {
        ComponentGraph g;
        std::vector<int64_t> ids;
        for (int i = 0; i < 4; ++i)
            ids.push_back(addKernel(g, "k", delays[i], totals[i]));
        for (int i = 0; i + 1 < 4; ++i)
            addChannel(g, ids[i], ids[i + 1], 64, depth);
        auto r = sim::simulateGroup(g, 0);
        ASSERT_FALSE(r.deadlock);
        if (prev_cycles >= 0.0) {
            EXPECT_LE(r.cycles, prev_cycles + 1e-6);
        }
        prev_cycles = r.cycles;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DepthMonotonicity,
                         ::testing::Range(0, 20));

// ---- Waiter registration under multi-channel blocking ----

TEST(Sim, MultiChannelBlockingFanInCompletes)
{
    // A consumer fed by one fast and one slow producer through
    // depth-2 FIFOs blocks on both channels across many
    // re-examinations; registration must stay deduplicated and the
    // run must finish with conserved token counts.
    ComponentGraph g;
    int64_t fast = addKernel(g, "fast", 1.0, 65.0);
    int64_t slow = addKernel(g, "slow", 40.0, 40.0 + 8.0 * 64.0);
    int64_t join = addKernel(g, "join", 1.0, 65.0);
    addChannel(g, fast, join, 64, 2);
    addChannel(g, slow, join, 64, 2);
    auto r = sim::simulateGroup(g, 0);
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(r.channels[0].pushes, 64);
    EXPECT_EQ(r.channels[0].pops, 64);
    EXPECT_EQ(r.channels[1].pushes, 64);
    EXPECT_EQ(r.channels[1].pops, 64);
    // The joiner is rate-limited by the slow producer.
    EXPECT_GE(r.cycles, 40.0 + 8.0 * 63.0);
    for (const auto &c : r.channels)
        EXPECT_LE(c.max_occupancy, 2);
}

TEST(Sim, ReconvergentDiamondBackpressureStats)
{
    // a fans out to b and c which reconverge at d; shallow FIFOs
    // force repeated space- and data-blocking on every component.
    ComponentGraph g;
    int64_t a = addKernel(g, "a", 1.0, 65.0);
    int64_t b = addKernel(g, "b", 2.0, 66.0);
    int64_t c = addKernel(g, "c", 30.0, 30.0 + 2.0 * 64.0);
    int64_t d = addKernel(g, "d", 1.0, 65.0);
    addChannel(g, a, b, 64, 2);
    addChannel(g, a, c, 64, 2);
    addChannel(g, b, d, 64, 2);
    addChannel(g, c, d, 64, 2);
    auto r = sim::simulateGroup(g, 0);
    ASSERT_FALSE(r.deadlock);
    for (const auto &ch : r.channels) {
        EXPECT_EQ(ch.pushes, 64);
        EXPECT_EQ(ch.pops, 64);
        EXPECT_LE(ch.max_occupancy, 2);
    }
    // a is back-pressured by c's slow drain, so it stalls.
    EXPECT_GT(r.components[0].stall_cycles, 0.0);
}
