/** @file Weight-streaming unit tests: artifact manifests against
 *  the model configs' own byte accounting, the storage-tier chunk
 *  time model, and WeightStreamPlan determinism / watermark
 *  invariants. All instants are simulated and pure arithmetic, so
 *  every assertion is exact or bit-reproducible. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "models/llm_config.h"
#include "serving/storage_tier.h"
#include "serving/weights.h"
#include "support/error.h"

using namespace streamtensor;
using serving::ModelArtifact;
using serving::StorageTierProfile;
using serving::WeightStreamOptions;
using serving::WeightStreamPlan;
using serving::WeightStreamer;

TEST(ModelArtifactTest, MatchesConfigParamBytesForAllModels)
{
    // The manifest is derived tensor-by-tensor; its totals must
    // land exactly on the configs' own parameter accounting.
    for (const auto &cfg : models::allConfigs()) {
        auto artifact = ModelArtifact::fromConfig(cfg);
        EXPECT_EQ(artifact.model, cfg.name);
        ASSERT_EQ(artifact.layers.size(),
                  static_cast<size_t>(cfg.layers))
            << cfg.name;
        EXPECT_EQ(artifact.total_bytes, cfg.totalParamBytes())
            << cfg.name;
        int64_t sum = 0;
        for (const auto &layer : artifact.layers) {
            int64_t layer_sum = 0;
            for (const auto &t : layer.tensors) {
                EXPECT_GE(t.bytes, 1) << cfg.name << " " << t.name;
                layer_sum += t.bytes;
            }
            EXPECT_EQ(layer_sum, layer.bytes) << cfg.name;
            sum += layer.bytes;
        }
        EXPECT_EQ(sum, artifact.total_bytes) << cfg.name;
    }
}

TEST(ModelArtifactTest, SiluModelsCarryGateUpDown)
{
    auto llama =
        ModelArtifact::fromConfig(models::llamaConfig());
    auto names = [](const serving::LayerManifest &layer) {
        std::vector<std::string> out;
        for (const auto &t : layer.tensors)
            out.push_back(t.name);
        return out;
    };
    auto ln = names(llama.layers[0]);
    EXPECT_NE(std::find(ln.begin(), ln.end(), "w_gate"),
              ln.end());
    EXPECT_EQ(std::find(ln.begin(), ln.end(), "w_fc1"), ln.end());

    auto gpt2 = ModelArtifact::fromConfig(models::gpt2Config());
    auto gn = names(gpt2.layers[0]);
    EXPECT_NE(std::find(gn.begin(), gn.end(), "w_fc1"), gn.end());
    EXPECT_EQ(std::find(gn.begin(), gn.end(), "w_gate"),
              gn.end());
}

TEST(StorageTierTest, ChunkServiceBandwidthBound)
{
    // One reader on GP3: per-reader 250 MiB/s is the binding
    // ceiling (aggregate/1 = 1000), so a 2 MiB chunk takes
    // first_byte + 2 MiB / 250 MiB/s = 0.5 + 8 ms; the IOPS floor
    // (1/16000 s) is far below.
    StorageTierProfile gp3 = serving::gp3Tier();
    double ms = serving::chunkServiceMs(gp3, 2 * 1024 * 1024, 1);
    EXPECT_DOUBLE_EQ(ms, 0.5 + 8.0);

    // Eight readers: fair share 125 MiB/s binds instead, so the
    // same chunk takes 0.5 + 16 ms per reader.
    double ms8 = serving::chunkServiceMs(gp3, 2 * 1024 * 1024, 8);
    EXPECT_DOUBLE_EQ(ms8, 0.5 + 16.0);
}

TEST(StorageTierTest, ChunkServiceIopsBound)
{
    // Tiny chunks at high reader counts hit the IOPS floor:
    // readers * 1000 / iops dominates the near-zero transfer.
    StorageTierProfile io2 = serving::io2Tier();
    double floor_ms = 64.0 * 1000.0 / io2.iops;
    double ms = serving::chunkServiceMs(io2, 1, 64);
    EXPECT_GE(ms, floor_ms);
    EXPECT_DOUBLE_EQ(ms, floor_ms);
}

TEST(StorageTierTest, PresetsValidateAndDiffer)
{
    for (const auto &tier : serving::allTiers()) {
        EXPECT_NO_THROW(serving::validateStorageTier(tier));
        EXPECT_FALSE(tier.name.empty());
    }
    // The presets model genuinely different hardware: S3 pays
    // orders of magnitude more first-byte latency than block
    // storage.
    EXPECT_GT(serving::s3Tier().first_byte_ms,
              10.0 * serving::gp3Tier().first_byte_ms);
    EXPECT_GT(serving::io2Tier().aggregate_mib_s,
              serving::gp3Tier().aggregate_mib_s);
}

TEST(WeightStreamTest, WatermarkMonotoneAndBoundsStream)
{
    auto artifact =
        ModelArtifact::fromConfig(models::gpt2Config());
    WeightStreamer streamer;
    auto plan = streamer.plan(artifact, 10.0);

    ASSERT_FALSE(plan.empty());
    ASSERT_EQ(plan.layer_ready_ms.size(),
              artifact.layers.size());
    EXPECT_DOUBLE_EQ(plan.start_ms, 10.0);
    EXPECT_EQ(plan.bytes_total, artifact.total_bytes);
    EXPECT_GT(plan.chunks, 0);
    EXPECT_EQ(plan.readers, 8);

    double prev = plan.start_ms;
    for (double ready : plan.layer_ready_ms) {
        EXPECT_GE(ready, prev); // prefix-max: non-decreasing
        prev = ready;
    }
    EXPECT_DOUBLE_EQ(plan.layer_ready_ms.back(), plan.end_ms);
    EXPECT_GT(plan.streamMs(), 0.0);
}

TEST(WeightStreamTest, PlanBitIdenticalAcrossReruns)
{
    auto artifact =
        ModelArtifact::fromConfig(models::qwenConfig());
    WeightStreamer streamer;
    auto a = streamer.plan(artifact);
    auto b = streamer.plan(artifact);
    EXPECT_DOUBLE_EQ(a.end_ms, b.end_ms);
    ASSERT_EQ(a.layer_ready_ms.size(), b.layer_ready_ms.size());
    for (size_t l = 0; l < a.layer_ready_ms.size(); ++l)
        EXPECT_DOUBLE_EQ(a.layer_ready_ms[l],
                         b.layer_ready_ms[l]);
}

TEST(WeightStreamTest, TierOrderingIo2BeatsGp3BeatsS3)
{
    // At the default 8-reader / 2 MiB configuration the tiers
    // must order by effective bandwidth: io2 < gp3 < s3 stream
    // time, on every model.
    for (const auto &cfg : models::allConfigs()) {
        auto artifact = ModelArtifact::fromConfig(cfg);
        auto streamFor = [&](const StorageTierProfile &tier) {
            WeightStreamOptions o;
            o.tier = tier;
            return WeightStreamer(o).plan(artifact).streamMs();
        };
        double gp3 = streamFor(serving::gp3Tier());
        double io2 = streamFor(serving::io2Tier());
        double s3 = streamFor(serving::s3Tier());
        EXPECT_LT(io2, gp3) << cfg.name;
        EXPECT_LT(gp3, s3) << cfg.name;
    }
}

TEST(WeightStreamTest, S3NeedsConcurrency)
{
    // S3-class tiers are latency- and per-stream-limited: more
    // readers hide first-byte latency and beat the per-stream
    // ceiling, so 32 readers must finish well ahead of 4.
    auto artifact =
        ModelArtifact::fromConfig(models::gpt2Config());
    auto streamFor = [&](int64_t readers) {
        WeightStreamOptions o;
        o.tier = serving::s3Tier();
        o.num_readers = readers;
        return WeightStreamer(o).plan(artifact).streamMs();
    };
    EXPECT_LT(streamFor(32), 0.5 * streamFor(4));
}

TEST(WeightStreamTest, ThreadPoolSizeDoesNotChangeThePlan)
{
    // The reader fan-out is computation only; a single-reader
    // plan (serial by construction) and an 8-reader plan restated
    // at 1 reader must agree, and repeated 8-reader plans are
    // already pinned bit-identical above. Here: the assignment is
    // a pure function of (manifest, options) — capping readers at
    // the chunk count never leaves idle contenders.
    serving::LayerManifest layer;
    layer.tensors.push_back({"w", 3 * 1024 * 1024});
    layer.bytes = 3 * 1024 * 1024;
    ModelArtifact tiny;
    tiny.model = "tiny";
    tiny.layers = {layer};
    tiny.total_bytes = layer.bytes;

    WeightStreamOptions o;
    o.num_readers = 64; // only 2 chunks exist
    auto plan = WeightStreamer(o).plan(tiny);
    EXPECT_EQ(plan.readers, 2);
    EXPECT_EQ(plan.chunks, 2);
}

TEST(WeightStreamTest, GatedComputeOverlapNeverWorse)
{
    auto artifact =
        ModelArtifact::fromConfig(models::gpt2Config());
    WeightStreamer streamer;
    auto plan = streamer.plan(artifact);

    for (double compute : {1.0, 25.0, 400.0, 5000.0}) {
        double off = plan.gatedComputeEndMs(0.0, compute, false);
        double on = plan.gatedComputeEndMs(0.0, compute, true);
        // Overlap pays at most the wait-for-everything cost and
        // at least the pure compute cost.
        EXPECT_LE(on, off);
        EXPECT_GE(on, compute);
        EXPECT_DOUBLE_EQ(off,
                         std::max(0.0, plan.end_ms) + compute);
    }

    // With more than one layer there is real overlap to win:
    // compute on early layers hides later layers' streaming.
    ASSERT_GT(plan.layer_ready_ms.size(), 1u);
    double compute = plan.streamMs();
    EXPECT_LT(plan.gatedComputeEndMs(0.0, compute, true),
              plan.gatedComputeEndMs(0.0, compute, false));
}

TEST(WeightStreamTest, GatedComputeWarmAndPostStream)
{
    auto artifact =
        ModelArtifact::fromConfig(models::gpt2Config());
    auto plan = WeightStreamer().plan(artifact);

    // An empty plan gates nothing.
    WeightStreamPlan warm;
    EXPECT_TRUE(warm.empty());
    EXPECT_DOUBLE_EQ(warm.gatedComputeEndMs(7.0, 3.0, true),
                     10.0);
    EXPECT_DOUBLE_EQ(warm.gatedComputeEndMs(7.0, 3.0, false),
                     10.0);

    // Once the stream has finished, gating is exactly
    // start + compute in both modes.
    double late = plan.end_ms + 100.0;
    EXPECT_DOUBLE_EQ(plan.gatedComputeEndMs(late, 12.0, true),
                     late + 12.0);
    EXPECT_DOUBLE_EQ(plan.gatedComputeEndMs(late, 12.0, false),
                     late + 12.0);
}

TEST(WeightStreamTest, DomainChecks)
{
    WeightStreamOptions bad_readers;
    bad_readers.num_readers = 0;
    EXPECT_THROW(WeightStreamer{bad_readers}, streamtensor::FatalError);

    WeightStreamOptions bad_chunk;
    bad_chunk.chunk_bytes = 0;
    EXPECT_THROW(WeightStreamer{bad_chunk}, streamtensor::FatalError);

    StorageTierProfile bad_tier;
    bad_tier.aggregate_mib_s = 0.0;
    EXPECT_THROW(serving::validateStorageTier(bad_tier),
                 streamtensor::FatalError);

    WeightStreamer streamer;
    ModelArtifact empty;
    EXPECT_THROW(streamer.plan(empty), streamtensor::FatalError);
}
