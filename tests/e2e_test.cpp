/** @file Integration tests: the full PyTorch-block-to-simulated-
 *  accelerator path, cross-module invariants. */

#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "linalg/builders.h"
#include "models/block_builder.h"
#include "runtime/executor.h"
#include "serving/cost_model.h"
#include "serving/fleet.h"
#include "serving/scheduler.h"
#include "serving/weights.h"
#include "sim/simulator.h"

using namespace streamtensor;

TEST(EndToEnd, AllModelsCompileAndSimulateDecode)
{
    for (const auto &cfg : models::allConfigs()) {
        auto graph = models::buildTransformerBlock(
            cfg, models::decodeShapes(64));
        auto result =
            compiler::compile(std::move(graph), hls::u55c(), {});
        auto sims = sim::simulateAll(result.design.components);
        for (const auto &s : sims) {
            EXPECT_FALSE(s.deadlock) << cfg.name;
            EXPECT_FALSE(s.timed_out) << cfg.name;
            EXPECT_GT(s.cycles, 0.0) << cfg.name;
        }
    }
}

TEST(EndToEnd, SimObservedOccupancyWithinFifoDepths)
{
    // The LP sized every FIFO so that no back-pressure occurs; the
    // simulator must never observe occupancy above the depth.
    auto graph = models::buildTransformerBlock(
        models::gpt2Config(), models::decodeShapes(48));
    auto result =
        compiler::compile(std::move(graph), hls::u55c(), {});
    const auto &cg = result.design.components;
    auto sims = sim::simulateAll(cg);
    auto channels = cg.groupChannels(0);
    for (size_t c = 0; c < channels.size(); ++c) {
        const auto &ch = cg.channel(channels[c]);
        int64_t cap = ch.folded ? cg.channelBurst(channels[c])
                                : ch.depth;
        EXPECT_LE(sims[0].channels[c].max_occupancy, cap);
    }
}

TEST(EndToEnd, PrefillScalesWithSequenceLength)
{
    runtime::LlmExecutor executor(models::gpt2Config(),
                                  hls::u55c());
    const auto &small =
        executor.block(models::prefillShapes(32));
    const auto &large =
        executor.block(models::prefillShapes(128));
    EXPECT_GT(large.totalCycles(), small.totalCycles() * 2.0);
}

TEST(EndToEnd, DecodeIsWeightBoundNotComputeBound)
{
    // Doubling the unroll budget must barely move decode-block
    // latency (weight streaming dominates).
    compiler::CompileOptions base;
    compiler::CompileOptions wide;
    wide.tiling.overall_unroll_size *= 2;
    runtime::LlmExecutor a(models::gpt2Config(), hls::u55c(),
                           base);
    runtime::LlmExecutor b(models::gpt2Config(), hls::u55c(),
                           wide);
    double ca = a.block(models::decodeShapes(96)).totalCycles();
    double cb = b.block(models::decodeShapes(96)).totalCycles();
    EXPECT_GT(cb, 0.6 * ca);
}

TEST(EndToEnd, FusionReducesIntermediateMemory)
{
    for (const auto &cfg : models::allConfigs()) {
        auto graph = models::buildTransformerBlock(
            cfg, models::prefillShapes(128));
        auto result =
            compiler::compile(std::move(graph), hls::u55c(), {});
        EXPECT_LT(result.design.fusedIntermediateBytes(),
                  result.design.original_intermediate_bytes)
            << cfg.name;
    }
}

TEST(EndToEnd, DeterministicCompilation)
{
    auto compileOnce = [] {
        auto graph = models::buildTransformerBlock(
            models::qwenConfig(), models::decodeShapes(64));
        return compiler::compile(std::move(graph), hls::u55c(),
                                 {});
    };
    auto a = compileOnce();
    auto b = compileOnce();
    ASSERT_EQ(a.design.components.numChannels(),
              b.design.components.numChannels());
    for (int64_t c = 0; c < a.design.components.numChannels();
         ++c) {
        EXPECT_EQ(a.design.components.channel(c).depth,
                  b.design.components.channel(c).depth);
    }
}

TEST(EndToEnd, GeneratedHlsMentionsEveryKernel)
{
    auto graph = models::buildTransformerBlock(
        models::gpt2Config(), models::decodeShapes(48));
    auto result =
        compiler::compile(std::move(graph), hls::u55c(), {});
    const auto &cg = result.design.components;
    for (int64_t i = 0; i < cg.numComponents(); ++i) {
        const auto &c = cg.component(i);
        if (c.kind != dataflow::ComponentKind::Kernel)
            continue;
        EXPECT_NE(result.code.hls_cpp.find(c.name),
                  std::string::npos)
            << c.name;
    }
}

namespace {

/** The fixed traffic trace of the golden serving test. */
std::vector<serving::Request>
goldenTrace()
{
    auto make = [](int64_t id, double arrival_ms,
                   int64_t input_len, int64_t output_len) {
        serving::Request r;
        r.id = id;
        r.arrival_ms = arrival_ms;
        r.input_len = input_len;
        r.output_len = output_len;
        return r;
    };
    return {make(0, 0.0, 24, 8),  make(1, 0.0, 48, 4),
            make(2, 5.0, 16, 6),  make(3, 30.0, 96, 4),
            make(4, 30.0, 32, 8), make(5, 200.0, 24, 2)};
}

} // namespace

TEST(EndToEnd, GoldenServingTraceThroughFullStack)
{
    // A small fixed trace through the complete
    // compile -> simulate -> serve stack (GPT-2 on the U55C with
    // executor-backed step costs). Golden values were captured
    // from this deterministic pipeline; tight tolerances catch
    // any behavioural drift in the compiler, simulator, executor
    // batching, or scheduler.
    runtime::LlmExecutor executor(models::gpt2Config(),
                                  hls::u55c());
    serving::ExecutorCostModel cost(executor);
    serving::SchedulerOptions options;
    options.max_batch = 4;
    options.kv_budget_tokens = 512;
    options.record_steps = true;
    serving::Scheduler scheduler(options, cost);

    auto result = scheduler.run(goldenTrace());
    const auto &m = result.metrics;

    EXPECT_FALSE(cost.sawDeadlock());
    EXPECT_FALSE(result.hit_step_limit);
    EXPECT_TRUE(result.rejected.empty());
    EXPECT_EQ(m.completed, 6);
    EXPECT_EQ(m.total_output_tokens, 32);

    // Bucketing keeps the compile cache tiny: six requests, many
    // contexts, few shapes.
    EXPECT_LE(executor.compileCount(), 12);

    // Golden step count and timing metrics (captured values;
    // tolerance 0.1% relative).
#define EXPECT_REL_NEAR(actual, expected)                         \
    EXPECT_NEAR(actual, expected, (expected) * 1e-3 + 1e-9)
    EXPECT_EQ(m.steps, 12);
    EXPECT_REL_NEAR(m.makespan_ms, 384.983819007);
    EXPECT_REL_NEAR(m.requestsPerSecond(), 15.585070602);
    EXPECT_REL_NEAR(m.ttftMeanMs(), 161.219440755);
    EXPECT_REL_NEAR(m.ttftP95Ms(), 265.477007479);
    EXPECT_REL_NEAR(m.latencyPercentileMs(50.0), 265.477007479);
    EXPECT_REL_NEAR(m.latencyPercentileMs(99.0), 365.067899249);
    EXPECT_REL_NEAR(m.tbtMeanMs(), 29.743654158);
    EXPECT_REL_NEAR(m.busy_ms, m.makespan_ms);
    // The trace keeps the accelerator saturated end to end.
    EXPECT_DOUBLE_EQ(m.utilization(), 1.0);
#undef EXPECT_REL_NEAR

    // The golden schedule replays bit-identically on a fresh
    // executor (repeated-run determinism of the whole stack).
    runtime::LlmExecutor executor2(models::gpt2Config(),
                                   hls::u55c());
    serving::ExecutorCostModel cost2(executor2);
    serving::Scheduler scheduler2(options, cost2);
    auto result2 = scheduler2.run(goldenTrace());
    EXPECT_DOUBLE_EQ(result2.metrics.makespan_ms, m.makespan_ms);
    ASSERT_EQ(result2.steps.size(), result.steps.size());
    for (size_t i = 0; i < result.steps.size(); ++i) {
        EXPECT_EQ(result2.steps[i].prefill_ids,
                  result.steps[i].prefill_ids);
        EXPECT_EQ(result2.steps[i].decode_ids,
                  result.steps[i].decode_ids);
        EXPECT_DOUBLE_EQ(result2.steps[i].step_ms,
                         result.steps[i].step_ms);
    }
}

TEST(EndToEnd, DecodeBucketBoundaryCompilesNoExtraShape)
{
    // Context-length convention regression (scheduler.h): a
    // sequence with g generated tokens attends input + g tokens.
    // R0 (input 15, output 2) decodes at context 16 — exactly on
    // the first bucket boundary — and must share R1's (input 8)
    // decode bucket. The old input + g + 1 convention pushed R0
    // to the 32-bucket one step early, splitting the step group
    // and compiling a third (spurious) shape.
    runtime::LlmExecutor executor(models::gpt2Config(),
                                  hls::u55c());
    serving::ExecutorCostModel cost(executor);
    serving::SchedulerOptions options;
    options.max_batch = 2;
    options.kv_budget_tokens = 512;
    options.record_steps = true;
    serving::Scheduler scheduler(options, cost);

    serving::Request a;
    a.id = 0;
    a.input_len = 15;
    a.output_len = 2;
    serving::Request b;
    b.id = 1;
    b.input_len = 8;
    b.output_len = 2;
    auto result = scheduler.run({a, b});

    EXPECT_EQ(result.metrics.completed, 2);
    ASSERT_EQ(result.steps.size(), 2u);
    EXPECT_EQ(result.steps[1].decode_ids,
              (std::vector<int64_t>{0, 1}));
    // Exactly two shapes ever compile: prefill@16 and decode@16.
    EXPECT_EQ(executor.compileCount(), 2);
}

TEST(EndToEnd, GoldenPagedVsReservedSaturation)
{
    // The tentpole's before/after, pinned through the full
    // compile -> simulate -> serve stack: six prefix-sharing
    // requests (input 40 of which 32 shared, output 24) against
    // the same 192-token KV budget. Reserve holds bucketLen(63) =
    // 80 tokens each and serializes two-wide; the paged pool (12
    // pages) fits five concurrently — each needs at most 4 pages
    // and the two prefix pages are one physical copy — so the
    // same hardware serves ~12% more requests per second.
    auto run = [](serving::KvAdmission admission) {
        runtime::LlmExecutor executor(models::gpt2Config(),
                                      hls::u55c());
        serving::ExecutorCostModel cost(executor);
        serving::SchedulerOptions options;
        options.max_batch = 5;
        options.kv_budget_tokens = 192;
        options.admission = admission;
        options.record_steps = true;
        serving::Scheduler scheduler(options, cost);
        std::vector<serving::Request> trace;
        for (int64_t i = 0; i < 6; ++i) {
            serving::Request r;
            r.id = i;
            r.arrival_ms = 0.0;
            r.input_len = 40;
            r.output_len = 24;
            r.prefix_id = 1;
            r.prefix_len = 32;
            trace.push_back(r);
        }
        return scheduler.run(trace);
    };
    auto paged = run(serving::KvAdmission::Paged);
    auto reserve = run(serving::KvAdmission::Reserve);

#define EXPECT_REL_NEAR(actual, expected)                          \
    EXPECT_NEAR(actual, expected, (expected) * 1e-3 + 1e-9)
    // Both drain the whole trace — the policies trade time, not
    // completions.
    EXPECT_EQ(paged.metrics.completed, 6);
    EXPECT_EQ(reserve.metrics.completed, 6);

    // Reserve: two-wide (80 + 80 <= 192 < 240), 72 steps.
    EXPECT_EQ(reserve.steps[0].prefill_ids,
              (std::vector<int64_t>{0, 1}));
    EXPECT_EQ(reserve.metrics.steps, 72);
    EXPECT_REL_NEAR(reserve.metrics.makespan_ms, 723.993501956);
    EXPECT_REL_NEAR(reserve.metrics.requestsPerSecond(),
                    8.287367198);

    // Paged: five-wide on the same budget, no preemption (demand
    // tops out at exactly the 12-page pool), 48 steps.
    EXPECT_EQ(paged.steps[0].prefill_ids,
              (std::vector<int64_t>{0, 1, 2, 3, 4}));
    EXPECT_EQ(paged.metrics.steps, 48);
    EXPECT_EQ(paged.metrics.preemptions, 0);
    EXPECT_EQ(paged.metrics.peak_pages_active, 12);
    EXPECT_REL_NEAR(paged.metrics.makespan_ms, 647.432527780);
    EXPECT_REL_NEAR(paged.metrics.requestsPerSecond(),
                    9.267374966);
    // One request allocates the two prefix pages; five share
    // them: 10 hits / 12 prefix-page touches.
    EXPECT_DOUBLE_EQ(paged.metrics.prefixHitRate(), 10.0 / 12.0);
    EXPECT_REL_NEAR(paged.metrics.pageUtilization(),
                    0.572916667);

    // The headline delta, pinned: paged serves strictly more
    // requests per second from the same KV budget.
    EXPECT_GT(paged.metrics.requestsPerSecond(),
              1.11 * reserve.metrics.requestsPerSecond());
#undef EXPECT_REL_NEAR
}

TEST(EndToEnd, PaperHeadline_WholeBlockFusesOnU55c)
{
    // Paper §6.1: "we successfully fuse an entire transformer
    // block onto a single FPGA" — for all four models.
    for (const auto &cfg : models::allConfigs()) {
        auto graph = models::buildTransformerBlock(
            cfg, models::decodeShapes(96));
        auto result =
            compiler::compile(std::move(graph), hls::u55c(), {});
        EXPECT_EQ(result.design.plan.groups.size(), 1u)
            << cfg.name;
        EXPECT_TRUE(result.memory.feasible) << cfg.name;
    }
}

// ---- Die placement is load-bearing: the figure-5-style MLP
// ---- pipeline (matmul -> gelu -> matmul with a layout converter
// ---- between the transposed matmul layouts) compiled ILP-vs-
// ---- greedy under a priced inter-die link. The ILP finds a
// ---- zero-crossing placement, greedy cuts the pipeline three
// ---- times, and with a nonzero link cost those crossings turn
// ---- into a pinned cycle delta — placement changes predicted
// ---- performance, not just a report. ----

namespace {

double
pipelineCycles(const compiler::CompileResult &result)
{
    double cycles = 0.0;
    for (const auto &s : sim::simulateAll(result.design.components))
        cycles += s.cycles;
    return cycles;
}

} // namespace

TEST(EndToEnd, GoldenIlpVsGreedyCycleDeltaUnderLinkCost)
{
#define EXPECT_REL_NEAR(value, golden)                             \
    EXPECT_NEAR(value, golden, std::abs(golden) * 1e-3)
    hls::FpgaPlatform linked = hls::u55c();
    linked.inter_die_latency_cycles = 256.0;
    linked.inter_die_ii_penalty = 1.0;

    compiler::CompileOptions ilp_options;
    compiler::CompileOptions greedy_options;
    greedy_options.partition.strategy =
        partition::PartitionStrategy::Greedy;

    auto ilp = compiler::compile(linalg::mlpPipeline(), linked,
                                 ilp_options);
    auto greedy = compiler::compile(linalg::mlpPipeline(), linked,
                                    greedy_options);
    EXPECT_EQ(ilp.totalCrossings(), 0);
    EXPECT_EQ(greedy.totalCrossings(), 3);

    double ilp_cycles = pipelineCycles(ilp);
    double greedy_cycles = pipelineCycles(greedy);
    // Golden values (deterministic compile + sim):
    EXPECT_REL_NEAR(ilp_cycles, 4135.0);
    EXPECT_REL_NEAR(greedy_cycles, 4900.0);
    EXPECT_GT(greedy_cycles, ilp_cycles + 700.0);

    // With the link cost zeroed, the same two placements cost
    // identical cycles — the delta is entirely the link model.
    auto free_ilp = compiler::compile(linalg::mlpPipeline(),
                                      hls::u55c(), ilp_options);
    auto free_greedy = compiler::compile(
        linalg::mlpPipeline(), hls::u55c(), greedy_options);
    EXPECT_EQ(free_greedy.totalCrossings(), 3);
    EXPECT_DOUBLE_EQ(pipelineCycles(free_ilp),
                     pipelineCycles(free_greedy));
    EXPECT_REL_NEAR(pipelineCycles(free_ilp), 4135.0);
#undef EXPECT_REL_NEAR
}

TEST(EndToEnd, CrossingMetricsSurfaceThroughRuntimeAndServing)
{
    // A platform with a priced link: the transformer decode block
    // partitions greedily (group larger than the ILP guard), so
    // crossings and crossing-attributed stall flow through
    // LlmExecutor::run/step into the serving cost model.
    hls::FpgaPlatform linked = hls::u55c();
    linked.inter_die_latency_cycles = 8.0;
    runtime::LlmExecutor executor(models::gpt2Config(), linked);
    auto run = executor.run(24, 4);
    EXPECT_FALSE(run.deadlock);
    EXPECT_GT(run.crossings, 0);
    EXPECT_GE(run.crossing_stall_ms, 0.0);

    auto step = executor.step(
        {{models::decodeShapes(32), 2}});
    EXPECT_GT(step.crossings, 0);
    EXPECT_GE(step.crossing_stall_ms, 0.0);

    serving::ExecutorCostModel cost(executor);
    double ms = cost.stepMs(
        {{models::decodeShapes(32), 2}});
    EXPECT_GT(ms, 0.0);
    EXPECT_GT(cost.lastStepCrossings(), 0);
    EXPECT_GE(cost.crossingStallMs(), 0.0);
}

TEST(EndToEnd, GoldenFaultedFleetTrace)
{
    // The fault-tolerance acceptance pin: a fixed two-replica
    // fleet served through the complete compile -> simulate ->
    // serve stack (GPT-2 on the U55C, executor-backed step
    // costs), under a fixed fault plan — replica 0 crashes
    // mid-run and recovers; replica 1 rides out a window of
    // inter-die link degradation costed by an executor compiled
    // against an inflated link latency. Availability and tail
    // latency under faults are golden values at 0.1% relative
    // tolerance; the whole faulted run must replay
    // bit-identically.
    runtime::LlmExecutor executor(models::gpt2Config(),
                                  hls::u55c());
    serving::ExecutorCostModel cost(executor);
    hls::FpgaPlatform degraded_platform = hls::u55c();
    degraded_platform.inter_die_latency_cycles = 256.0;
    degraded_platform.inter_die_ii_penalty = 1.0;
    runtime::LlmExecutor degraded_executor(models::gpt2Config(),
                                           degraded_platform);
    serving::ExecutorCostModel degraded_cost(degraded_executor);

    serving::FleetOptions options;
    options.num_replicas = 2;
    options.replica.max_batch = 4;
    options.replica.kv_budget_tokens = 512;
    options.replica.record_steps = true;
    options.balancer = serving::LbPolicy::LeastKvLoad;
    options.max_retries = 3;
    options.retry_backoff_ms = 5.0;
    options.faults.events.push_back(
        {60.0, 0, serving::FaultKind::Crash, 1.0});
    options.faults.events.push_back(
        {180.0, 0, serving::FaultKind::Recover, 1.0});
    options.faults.events.push_back(
        {40.0, 1, serving::FaultKind::DegradeStart, 1.0});
    options.faults.events.push_back(
        {160.0, 1, serving::FaultKind::DegradeEnd, 1.0});

    auto run = [&]() {
        serving::FleetScheduler fleet(options, cost,
                                      &degraded_cost);
        return fleet.run(goldenTrace());
    };
    auto result = run();
    const auto &fm = result.metrics;

    EXPECT_FALSE(result.hit_step_limit);
    EXPECT_TRUE(result.rejected.empty());

    // Every request survives the crash: the evacuated ones fail
    // over to replica 1 and still emit their full output.
    EXPECT_EQ(fm.completed, 6);
    EXPECT_EQ(fm.requests_lost, 0);
    EXPECT_EQ(fm.crashes, 1);
    EXPECT_EQ(fm.recoveries, 1);
    EXPECT_EQ(fm.degrades, 1);
    EXPECT_GE(fm.failovers, 1);
    EXPECT_EQ(fm.total_output_tokens, 32);
    EXPECT_DOUBLE_EQ(fm.availability(), 1.0);

    // Golden tail numbers under the fault plan (captured values;
    // tolerance 0.1% relative).
#define EXPECT_REL_NEAR(actual, expected)                         \
    EXPECT_NEAR(actual, expected, (expected) * 1e-3 + 1e-9)
    EXPECT_REL_NEAR(fm.makespan_ms, 344.697151181);
    EXPECT_REL_NEAR(fm.latencyPercentileMs(99.0), 329.760211362);
    EXPECT_REL_NEAR(fm.latencyPercentileMs(50.0), 254.238256868);
    EXPECT_REL_NEAR(fm.uptimeFraction(), 0.825934158);
    EXPECT_REL_NEAR(fm.servedRequestsPerSecond(), 17.406584242);
#undef EXPECT_REL_NEAR

    // Bit-identical replay of the faulted fleet, down to every
    // step composition on both replicas.
    auto again = run();
    EXPECT_DOUBLE_EQ(again.metrics.makespan_ms, fm.makespan_ms);
    EXPECT_EQ(again.metrics.failovers, fm.failovers);
    ASSERT_EQ(again.replicas.size(), result.replicas.size());
    for (size_t r = 0; r < result.replicas.size(); ++r) {
        const auto &a = result.replicas[r].steps;
        const auto &b = again.replicas[r].steps;
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i) {
            EXPECT_DOUBLE_EQ(a[i].start_ms, b[i].start_ms);
            EXPECT_DOUBLE_EQ(a[i].step_ms, b[i].step_ms);
            EXPECT_EQ(a[i].prefill_ids, b[i].prefill_ids);
            EXPECT_EQ(a[i].decode_ids, b[i].decode_ids);
        }
    }
}

TEST(EndToEnd, GoldenColdStartTrace)
{
    // Cold-start acceptance pin: the golden trace through the
    // full compile -> stream -> serve stack. Weights stream from
    // the GP3 tier while the executor-costed scheduler serves;
    // with overlap on, early steps gate on the per-layer
    // watermark instead of the whole artifact. TTFT and stream
    // window are golden values at 0.1% relative tolerance, and
    // the cold run must replay bit-identically.
    auto artifact = serving::ModelArtifact::fromConfig(
        models::gpt2Config());
    serving::WeightStreamOptions stream_options;
    stream_options.tier = serving::gp3Tier();
    auto plan =
        serving::WeightStreamer(stream_options).plan(artifact);

    auto run = [&](bool cold, bool overlap) {
        runtime::LlmExecutor executor(models::gpt2Config(),
                                      hls::u55c());
        serving::ExecutorCostModel cost(executor);
        serving::SchedulerOptions options;
        options.max_batch = 4;
        options.kv_budget_tokens = 512;
        options.record_steps = true;
        if (cold) {
            options.cold_start.plan = plan;
            options.cold_start.overlap = overlap;
        }
        serving::Scheduler scheduler(options, cost);
        return scheduler.run(goldenTrace());
    };

    auto warm = run(false, false);
    auto on = run(true, true);
    auto off = run(true, false);

#define EXPECT_REL_NEAR(actual, expected)                         \
    EXPECT_NEAR(actual, expected, (expected) * 1e-3 + 1e-9)
    // The stream window is pure storage arithmetic: the GP3 plan
    // for the GPT-2 artifact at 8 readers / 2 MiB chunks.
    EXPECT_REL_NEAR(plan.streamMs(), 154.5234375);
    EXPECT_EQ(on.metrics.weight_bytes_streamed,
              artifact.total_bytes);
    EXPECT_REL_NEAR(on.metrics.weight_stream_ms,
                    plan.streamMs());

    // All three modes serve the full trace.
    EXPECT_EQ(warm.metrics.completed, 6);
    EXPECT_EQ(on.metrics.completed, 6);
    EXPECT_EQ(off.metrics.completed, 6);

    // Golden cold-start numbers (captured values).
    EXPECT_REL_NEAR(on.metrics.ttftMeanMs(), 244.638534326);
    EXPECT_REL_NEAR(on.metrics.makespan_ms, 468.402912579);
    EXPECT_REL_NEAR(on.metrics.weight_stall_ms, 83.419093571);
    EXPECT_REL_NEAR(off.metrics.ttftMeanMs(), 315.742878255);
    EXPECT_REL_NEAR(off.metrics.weight_stall_ms, 154.5234375);

    // Overlap strictly beats wait-for-everything, and neither
    // beats warm.
    EXPECT_LT(on.metrics.ttftMeanMs(), off.metrics.ttftMeanMs());
    EXPECT_LT(on.metrics.weight_stall_ms,
              off.metrics.weight_stall_ms);
    EXPECT_LE(on.metrics.makespan_ms, off.metrics.makespan_ms);
    EXPECT_GT(on.metrics.ttftMeanMs(),
              warm.metrics.ttftMeanMs());
    EXPECT_GT(on.metrics.weightOverlapFraction(),
              off.metrics.weightOverlapFraction());
#undef EXPECT_REL_NEAR

    // Bit-identical replay, step by step.
    auto again = run(true, true);
    EXPECT_DOUBLE_EQ(again.metrics.makespan_ms,
                     on.metrics.makespan_ms);
    ASSERT_EQ(again.steps.size(), on.steps.size());
    for (size_t i = 0; i < on.steps.size(); ++i) {
        EXPECT_DOUBLE_EQ(again.steps[i].start_ms,
                         on.steps[i].start_ms);
        EXPECT_DOUBLE_EQ(again.steps[i].step_ms,
                         on.steps[i].step_ms);
        EXPECT_DOUBLE_EQ(again.steps[i].weights_wait_ms,
                         on.steps[i].weights_wait_ms);
        EXPECT_EQ(again.steps[i].prefill_ids,
                  on.steps[i].prefill_ids);
        EXPECT_EQ(again.steps[i].decode_ids,
                  on.steps[i].decode_ids);
    }
}

TEST(EndToEnd, GoldenFleetRecoveryReload)
{
    // Crash-recovery reload through the full stack: replica 0's
    // recovery is charged the GP3 re-stream window, so the fleet
    // runs longer on one replica than the instant-recovery
    // baseline. Availability arithmetic is asserted exactly from
    // its definition; timing goldens at 0.1% relative tolerance.
    auto artifact = serving::ModelArtifact::fromConfig(
        models::gpt2Config());
    double reload_ms =
        serving::WeightStreamer().plan(artifact).streamMs();

    runtime::LlmExecutor executor(models::gpt2Config(),
                                  hls::u55c());
    serving::ExecutorCostModel cost(executor);
    serving::FleetOptions options;
    options.num_replicas = 2;
    options.replica.max_batch = 4;
    options.replica.kv_budget_tokens = 512;
    options.replica.record_steps = true;
    options.max_retries = 3;
    options.retry_backoff_ms = 5.0;
    options.recovery_reload_ms = reload_ms;
    options.faults.events.push_back(
        {60.0, 0, serving::FaultKind::Crash, 1.0});
    options.faults.events.push_back(
        {120.0, 0, serving::FaultKind::Recover, 1.0});

    serving::FleetScheduler fleet(options, cost);
    auto result = fleet.run(goldenTrace());
    const auto &fm = result.metrics;

    EXPECT_EQ(fm.crashes, 1);
    EXPECT_EQ(fm.recoveries, 1);
    EXPECT_EQ(fm.reloads, 1);
    EXPECT_DOUBLE_EQ(fm.reload_ms_total, reload_ms);
    EXPECT_EQ(fm.completed, 6);
    EXPECT_EQ(fm.requests_lost, 0);

    // Availability is exactly its documented arithmetic.
    EXPECT_DOUBLE_EQ(
        fm.availability(),
        static_cast<double>(fm.completed) /
            static_cast<double>(fm.completed + fm.requests_lost +
                                fm.expired_deadline));
    EXPECT_DOUBLE_EQ(fm.availability(), 1.0);

    // Replica 0 takes no step inside [60, 120 + reload).
    for (const auto &s : result.replicas[0].steps)
        EXPECT_TRUE(s.start_ms < 60.0 ||
                    s.start_ms >= 120.0 + reload_ms)
            << s.start_ms;

#define EXPECT_REL_NEAR(actual, expected)                         \
    EXPECT_NEAR(actual, expected, (expected) * 1e-3 + 1e-9)
    EXPECT_REL_NEAR(fm.makespan_ms, 380.063247645);
    EXPECT_REL_NEAR(fm.uptimeFraction(), 0.717779292);
#undef EXPECT_REL_NEAR

    // Bit-identical replay.
    runtime::LlmExecutor executor2(models::gpt2Config(),
                                   hls::u55c());
    serving::ExecutorCostModel cost2(executor2);
    serving::FleetScheduler fleet2(options, cost2);
    auto again = fleet2.run(goldenTrace());
    EXPECT_DOUBLE_EQ(again.metrics.makespan_ms, fm.makespan_ms);
    EXPECT_EQ(again.metrics.steps, fm.steps);
}
