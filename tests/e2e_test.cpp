/** @file Integration tests: the full PyTorch-block-to-simulated-
 *  accelerator path, cross-module invariants. */

#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "models/block_builder.h"
#include "runtime/executor.h"
#include "sim/simulator.h"

using namespace streamtensor;

TEST(EndToEnd, AllModelsCompileAndSimulateDecode)
{
    for (const auto &cfg : models::allConfigs()) {
        auto graph = models::buildTransformerBlock(
            cfg, models::decodeShapes(64));
        auto result =
            compiler::compile(std::move(graph), hls::u55c(), {});
        auto sims = sim::simulateAll(result.design.components);
        for (const auto &s : sims) {
            EXPECT_FALSE(s.deadlock) << cfg.name;
            EXPECT_FALSE(s.timed_out) << cfg.name;
            EXPECT_GT(s.cycles, 0.0) << cfg.name;
        }
    }
}

TEST(EndToEnd, SimObservedOccupancyWithinFifoDepths)
{
    // The LP sized every FIFO so that no back-pressure occurs; the
    // simulator must never observe occupancy above the depth.
    auto graph = models::buildTransformerBlock(
        models::gpt2Config(), models::decodeShapes(48));
    auto result =
        compiler::compile(std::move(graph), hls::u55c(), {});
    const auto &cg = result.design.components;
    auto sims = sim::simulateAll(cg);
    auto channels = cg.groupChannels(0);
    for (size_t c = 0; c < channels.size(); ++c) {
        const auto &ch = cg.channel(channels[c]);
        int64_t cap = ch.folded ? cg.channelBurst(channels[c])
                                : ch.depth;
        EXPECT_LE(sims[0].channels[c].max_occupancy, cap);
    }
}

TEST(EndToEnd, PrefillScalesWithSequenceLength)
{
    runtime::LlmExecutor executor(models::gpt2Config(),
                                  hls::u55c());
    const auto &small =
        executor.block(models::prefillShapes(32));
    const auto &large =
        executor.block(models::prefillShapes(128));
    EXPECT_GT(large.totalCycles(), small.totalCycles() * 2.0);
}

TEST(EndToEnd, DecodeIsWeightBoundNotComputeBound)
{
    // Doubling the unroll budget must barely move decode-block
    // latency (weight streaming dominates).
    compiler::CompileOptions base;
    compiler::CompileOptions wide;
    wide.tiling.overall_unroll_size *= 2;
    runtime::LlmExecutor a(models::gpt2Config(), hls::u55c(),
                           base);
    runtime::LlmExecutor b(models::gpt2Config(), hls::u55c(),
                           wide);
    double ca = a.block(models::decodeShapes(96)).totalCycles();
    double cb = b.block(models::decodeShapes(96)).totalCycles();
    EXPECT_GT(cb, 0.6 * ca);
}

TEST(EndToEnd, FusionReducesIntermediateMemory)
{
    for (const auto &cfg : models::allConfigs()) {
        auto graph = models::buildTransformerBlock(
            cfg, models::prefillShapes(128));
        auto result =
            compiler::compile(std::move(graph), hls::u55c(), {});
        EXPECT_LT(result.design.fusedIntermediateBytes(),
                  result.design.original_intermediate_bytes)
            << cfg.name;
    }
}

TEST(EndToEnd, DeterministicCompilation)
{
    auto compileOnce = [] {
        auto graph = models::buildTransformerBlock(
            models::qwenConfig(), models::decodeShapes(64));
        return compiler::compile(std::move(graph), hls::u55c(),
                                 {});
    };
    auto a = compileOnce();
    auto b = compileOnce();
    ASSERT_EQ(a.design.components.numChannels(),
              b.design.components.numChannels());
    for (int64_t c = 0; c < a.design.components.numChannels();
         ++c) {
        EXPECT_EQ(a.design.components.channel(c).depth,
                  b.design.components.channel(c).depth);
    }
}

TEST(EndToEnd, GeneratedHlsMentionsEveryKernel)
{
    auto graph = models::buildTransformerBlock(
        models::gpt2Config(), models::decodeShapes(48));
    auto result =
        compiler::compile(std::move(graph), hls::u55c(), {});
    const auto &cg = result.design.components;
    for (int64_t i = 0; i < cg.numComponents(); ++i) {
        const auto &c = cg.component(i);
        if (c.kind != dataflow::ComponentKind::Kernel)
            continue;
        EXPECT_NE(result.code.hls_cpp.find(c.name),
                  std::string::npos)
            << c.name;
    }
}

TEST(EndToEnd, PaperHeadline_WholeBlockFusesOnU55c)
{
    // Paper §6.1: "we successfully fuse an entire transformer
    // block onto a single FPGA" — for all four models.
    for (const auto &cfg : models::allConfigs()) {
        auto graph = models::buildTransformerBlock(
            cfg, models::decodeShapes(96));
        auto result =
            compiler::compile(std::move(graph), hls::u55c(), {});
        EXPECT_EQ(result.design.plan.groups.size(), 1u)
            << cfg.name;
        EXPECT_TRUE(result.memory.feasible) << cfg.name;
    }
}
