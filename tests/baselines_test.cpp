/** @file Unit tests for the GPU and FPGA baseline models. */

#include <gtest/gtest.h>

#include "support/error.h"

#include "baselines/fpga_baselines.h"
#include "baselines/gpu_model.h"

using namespace streamtensor;
using namespace streamtensor::baselines;

TEST(GpuModel, TtftFlatAcrossInputLengths)
{
    // The paper's A100 TTFT is ~8.7 ms regardless of input length
    // (launch-overhead bound); the model must keep it flat within
    // a few percent.
    auto cfg = models::gpt2Config();
    auto gpu = a100();
    auto r32 = evaluateGpu(gpu, cfg, 32, 32);
    auto r256 = evaluateGpu(gpu, cfg, 256, 256);
    EXPECT_LT(r256.ttft_ms / r32.ttft_ms, 1.3);
}

TEST(GpuModel, A100FasterThan2080Ti)
{
    auto cfg = models::gpt2Config();
    auto fast = evaluateGpu(a100(), cfg, 64, 64);
    auto slow = evaluateGpu(rtx2080ti(), cfg, 64, 64);
    EXPECT_LT(fast.total_latency_ms, slow.total_latency_ms);
    EXPECT_GT(fast.tokens_per_s, slow.tokens_per_s);
}

TEST(GpuModel, ContextKneeSlows2080Ti)
{
    // The paper's 2080Ti decode speed halves from [64:64] to
    // [128:128]; the cache-pressure knee reproduces the drop.
    auto cfg = models::gpt2Config();
    auto gpu = rtx2080ti();
    auto small = evaluateGpu(gpu, cfg, 64, 64);
    auto big = evaluateGpu(gpu, cfg, 128, 128);
    EXPECT_LT(big.tokens_per_s, 0.85 * small.tokens_per_s);
}

TEST(GpuModel, EnergyAccountingConsistent)
{
    auto cfg = models::qwenConfig();
    auto r = evaluateGpu(a100(), cfg, 64, 64);
    EXPECT_GT(r.avg_power_w, 0.0);
    EXPECT_LE(r.avg_power_w, a100().tdp_watts);
    EXPECT_NEAR(r.energy_j,
                r.avg_power_w * r.total_latency_ms / 1e3, 1e-9);
    EXPECT_NEAR(r.tokens_per_joule, 64.0 / r.energy_j, 1e-9);
}

TEST(GpuModel, LatencyDecomposition)
{
    auto cfg = models::gpt2Config();
    auto r = evaluateGpu(a100(), cfg, 32, 32);
    EXPECT_NEAR(r.total_latency_ms,
                r.ttft_ms + 32 * r.decode_ms_per_token,
                r.total_latency_ms * 0.05);
}

TEST(GpuModel, RejectsBadLengths)
{
    EXPECT_THROW(
        evaluateGpu(a100(), models::gpt2Config(), 0, 32),
        FatalError);
}

TEST(FpgaBaseline, AlloDecodeNearPaper)
{
    // The paper reports Allo at 204 token/s on GPT-2.
    auto perf = evaluateFpgaBaseline(alloSpec(),
                                     models::gpt2Config(), 32, 32);
    EXPECT_NEAR(perf.tokens_per_s, 204.0, 25.0);
}

TEST(FpgaBaseline, DfxSlowerThanAllo)
{
    // FP16 weights are 4x the W4 traffic.
    auto cfg = models::gpt2Config();
    auto allo = evaluateFpgaBaseline(alloSpec(), cfg, 64, 64);
    auto dfx = evaluateFpgaBaseline(dfxSpec(), cfg, 64, 64);
    EXPECT_GT(allo.tokens_per_s, dfx.tokens_per_s);
    EXPECT_LT(allo.ttft_ms, dfx.ttft_ms);
}

TEST(FpgaBaseline, LatencyScalesLinearly)
{
    auto cfg = models::gpt2Config();
    auto spec = alloSpec();
    auto r1 = evaluateFpgaBaseline(spec, cfg, 32, 32);
    auto r2 = evaluateFpgaBaseline(spec, cfg, 64, 64);
    EXPECT_NEAR(r2.total_latency_ms / r1.total_latency_ms, 2.0,
                0.05);
}

TEST(FpgaBaseline, PrefillSpeedupShortensTtft)
{
    auto cfg = models::gpt2Config();
    auto allo = evaluateFpgaBaseline(alloSpec(), cfg, 128, 32);
    // TTFT = in * decode / speedup < in * decode.
    EXPECT_LT(allo.ttft_ms,
              128 * allo.decode_ms_per_token);
}
