/** @file Unit tests for the compiler facade (paper Fig. 4). */

#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "ir/verifier.h"
#include "linalg/builders.h"
#include "models/block_builder.h"

using namespace streamtensor;
using ir::DataType;
using ir::TensorType;

namespace {

linalg::Graph
mlpGraph()
{
    linalg::Graph g("mlp");
    int64_t x = g.addTensor(TensorType(DataType::I8, {64, 128}),
                            "x", linalg::TensorRole::Input);
    int64_t w1 = g.addTensor(TensorType(DataType::I4, {128, 256}),
                             "w1", linalg::TensorRole::Parameter);
    int64_t h = linalg::matmul(g, x, w1, DataType::I8, "fc1");
    int64_t a =
        linalg::ewiseUnary(g, h, linalg::EwiseFn::Gelu, "gelu");
    int64_t w2 = g.addTensor(TensorType(DataType::I4, {256, 64}),
                             "w2", linalg::TensorRole::Parameter);
    int64_t y = linalg::matmul(g, a, w2, DataType::I8, "fc2");
    g.tensor(y).role = linalg::TensorRole::Output;
    return g;
}

} // namespace

TEST(Compiler, StagesRecordedInPipelineOrder)
{
    auto result = compiler::compile(mlpGraph(), hls::u55c(), {});
    std::vector<std::string> expected{
        "Linalg_Opt",     "Linalg_Tiling", "Kernel_Fusion",
        "Dataflow_Opt",   "HLS_Opt",       "Resource_Alloc",
        "Bufferization",  "Code_Gen"};
    ASSERT_EQ(result.times.stages.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(result.times.stages[i].first, expected[i]);
    EXPECT_GT(result.times.total(), 0.0);
}

TEST(Compiler, ProducesVerifiedModuleAndCode)
{
    auto result = compiler::compile(mlpGraph(), hls::u55c(), {});
    ASSERT_NE(result.module, nullptr);
    EXPECT_TRUE(ir::verifyModule(*result.module).ok());
    EXPECT_FALSE(result.code.hls_cpp.empty());
    EXPECT_FALSE(result.code.host_cpp.empty());
    EXPECT_FALSE(result.code.connectivity.empty());
}

TEST(Compiler, FifoDepthsAssignedEverywhere)
{
    auto result = compiler::compile(mlpGraph(), hls::u55c(), {});
    const auto &cg = result.design.components;
    for (int64_t c = 0; c < cg.numChannels(); ++c) {
        EXPECT_GE(cg.channel(c).depth, 2);
    }
    EXPECT_EQ(result.sizing.size(),
              static_cast<size_t>(cg.numGroups()));
}

TEST(Compiler, MemoryAllocationFeasible)
{
    auto result = compiler::compile(mlpGraph(), hls::u55c(), {});
    EXPECT_TRUE(result.memory.feasible);
    EXPECT_GT(result.memory.totalBytes(), 0);
}

TEST(Compiler, DepthCapLoopShrinksOverBudgetDesigns)
{
    // A platform with almost no on-chip memory forces the
    // feasibility loop to tighten the depth cap.
    hls::FpgaPlatform tiny = hls::u55c();
    tiny.lutram_kib = 16;
    tiny.bram_kib = 64;
    tiny.uram_kib = 64;
    auto result = compiler::compile(mlpGraph(), tiny, {});
    // Depths were clamped (possibly still infeasible, but the
    // compiler must terminate and report).
    EXPECT_GE(result.clamped_fifos, 0);
}

TEST(Compiler, AutoConservativeTriggersUnderPressure)
{
    compiler::CompileOptions options;
    options.auto_conservative = true;
    options.conservative_threshold = 1e-9; // always trigger
    auto result =
        compiler::compile(mlpGraph(), hls::u55c(), options);
    EXPECT_EQ(result.used_equalization,
              token::Equalization::Conservative);
}

TEST(Compiler, ExplicitEqualizationHonored)
{
    compiler::CompileOptions options;
    options.equalization = token::Equalization::Conservative;
    options.auto_conservative = false;
    auto result =
        compiler::compile(mlpGraph(), hls::u55c(), options);
    EXPECT_EQ(result.used_equalization,
              token::Equalization::Conservative);
}

TEST(Compiler, LinalgStatsReported)
{
    // A graph with an elementwise chain: fusion count surfaces.
    linalg::Graph g("chain");
    int64_t x = g.addTensor(TensorType(DataType::I8, {32, 32}),
                            "x", linalg::TensorRole::Input);
    int64_t a =
        linalg::ewiseUnary(g, x, linalg::EwiseFn::Gelu, "a");
    int64_t b =
        linalg::ewiseUnary(g, a, linalg::EwiseFn::Scale, "b");
    g.tensor(b).role = linalg::TensorRole::Output;
    auto result = compiler::compile(std::move(g), hls::u55c(), {});
    EXPECT_EQ(result.elementwise_fused, 1);
}

TEST(Compiler, TransformerBlockEndToEnd)
{
    auto graph = models::buildTransformerBlock(
        models::gpt2Config(), models::decodeShapes(48));
    auto result =
        compiler::compile(std::move(graph), hls::u55c(), {});
    EXPECT_EQ(result.design.plan.groups.size(), 1u);
    EXPECT_TRUE(result.memory.feasible);
    EXPECT_TRUE(ir::verifyModule(*result.module).ok());
    EXPECT_GT(result.fold_stats.channels_folded, 0);
    EXPECT_GT(result.vectorized_components, 0);
}

TEST(Compiler, CustomCmaxSplitsDesign)
{
    compiler::CompileOptions options;
    options.c_max = 1; // nothing with a converter can fuse
    auto result =
        compiler::compile(mlpGraph(), hls::u55c(), options);
    EXPECT_GT(result.design.plan.groups.size(), 1u);
}
