/** @file Unit tests for the compiler facade (paper Fig. 4). */

#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "ir/verifier.h"
#include "linalg/builders.h"
#include "models/block_builder.h"

using namespace streamtensor;
using ir::DataType;
using ir::TensorType;

TEST(Compiler, StagesRecordedInPipelineOrder)
{
    auto result = compiler::compile(linalg::mlpPipeline(), hls::u55c(), {});
    // Die_Partition runs *before* Fifo_Sizing so placement can
    // price crossing edges into the sizing LP.
    std::vector<std::string> expected{
        "Linalg_Opt",  "Linalg_Tiling", "Kernel_Fusion",
        "Dataflow_Opt", "HLS_Opt",      "Die_Partition",
        "Fifo_Sizing",  "Memory_Alloc", "Bufferization",
        "Code_Gen"};
    ASSERT_EQ(result.times.stages.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(result.times.stages[i].first, expected[i]);
    EXPECT_GT(result.times.total(), 0.0);
}

TEST(Compiler, PipelineIsReorderable)
{
    // The stage list is data: drop Code_Gen, verify the result
    // reflects exactly the stages that ran.
    compiler::Pipeline p = compiler::defaultPipeline();
    EXPECT_GE(p.find("Die_Partition"), 0);
    EXPECT_LT(p.find("Die_Partition"), p.find("Fifo_Sizing"));
    ASSERT_TRUE(p.remove("Code_Gen"));
    EXPECT_FALSE(p.remove("Code_Gen")); // already gone
    auto result =
        compiler::compileWith(p, linalg::mlpPipeline(), hls::u55c(), {});
    EXPECT_TRUE(result.code.hls_cpp.empty());
    EXPECT_NE(result.module, nullptr);
    EXPECT_EQ(result.times.stages.size(), 9u);
    EXPECT_EQ(result.times.get("Code_Gen"), 0.0);
}

TEST(Compiler, PipelineInsertBeforeRunsCustomStage)
{
    compiler::Pipeline p = compiler::defaultPipeline();
    int64_t observed_crossings = -1;
    p.insertBefore("Fifo_Sizing", "Inspect_Placement",
                   [&](compiler::StageContext &ctx) {
                       observed_crossings =
                           ctx.result.totalCrossings();
                   });
    auto result =
        compiler::compileWith(p, linalg::mlpPipeline(), hls::u55c(), {});
    // The custom stage ran after partitioning, before sizing.
    EXPECT_EQ(observed_crossings, result.totalCrossings());
    EXPECT_GE(observed_crossings, 0);
    EXPECT_GT(result.times.stages.size(), 10u);
}

TEST(Compiler, CrossingChannelsStampedWithLinkModel)
{
    hls::FpgaPlatform linked = hls::u55c();
    linked.inter_die_latency_cycles = 16.0;
    linked.inter_die_ii_penalty = 1.0;
    auto result = compiler::compile(linalg::mlpPipeline(), linked, {});
    const auto &cg = result.design.components;
    int64_t flagged = 0;
    for (int64_t c = 0; c < cg.numChannels(); ++c) {
        const auto &ch = cg.channel(c);
        bool crosses = cg.component(ch.src).die !=
                       cg.component(ch.dst).die;
        EXPECT_EQ(ch.inter_die, crosses);
        EXPECT_EQ(ch.link_latency, crosses ? 16.0 : 0.0);
        EXPECT_EQ(ch.link_ii_penalty, crosses ? 1.0 : 0.0);
        flagged += ch.inter_die ? 1 : 0;
    }
    EXPECT_EQ(flagged, result.totalCrossings());
}

TEST(Compiler, LinkLatencyDeepensCrossingFifos)
{
    // Same graph, same placement (greedy is deterministic and
    // always spreads across dies); a costly link must never
    // shrink any FIFO and must deepen at least one unfolded
    // crossing channel (the LP prices the link delay into
    // no-stall depths).
    compiler::CompileOptions options;
    options.partition.strategy =
        partition::PartitionStrategy::Greedy;
    hls::FpgaPlatform free_link = hls::u55c();
    hls::FpgaPlatform slow_link = hls::u55c();
    slow_link.inter_die_latency_cycles = 512.0;
    auto a = compiler::compile(linalg::mlpPipeline(), free_link, options);
    auto b = compiler::compile(linalg::mlpPipeline(), slow_link, options);
    const auto &ca = a.design.components;
    const auto &cb = b.design.components;
    ASSERT_EQ(ca.numChannels(), cb.numChannels());
    ASSERT_GT(a.totalCrossings(), 0);
    ASSERT_EQ(a.totalCrossings(), b.totalCrossings());
    bool deepened = false;
    for (int64_t c = 0; c < ca.numChannels(); ++c) {
        EXPECT_GE(cb.channel(c).depth, ca.channel(c).depth);
        if (cb.channel(c).inter_die && !cb.channel(c).folded &&
            ca.component(cb.channel(c).src).kind !=
                dataflow::ComponentKind::Converter)
            deepened |=
                cb.channel(c).depth > ca.channel(c).depth;
    }
    EXPECT_TRUE(deepened);
}

TEST(Compiler, GreedyStrategyForcedByOptions)
{
    compiler::CompileOptions options;
    options.partition.strategy =
        partition::PartitionStrategy::Greedy;
    auto result =
        compiler::compile(linalg::mlpPipeline(), hls::u55c(), options);
    ASSERT_FALSE(result.partitions.empty());
    for (const auto &p : result.partitions)
        EXPECT_FALSE(p.used_ilp);
}

TEST(Compiler, ProducesVerifiedModuleAndCode)
{
    auto result = compiler::compile(linalg::mlpPipeline(), hls::u55c(), {});
    ASSERT_NE(result.module, nullptr);
    EXPECT_TRUE(ir::verifyModule(*result.module).ok());
    EXPECT_FALSE(result.code.hls_cpp.empty());
    EXPECT_FALSE(result.code.host_cpp.empty());
    EXPECT_FALSE(result.code.connectivity.empty());
}

TEST(Compiler, FifoDepthsAssignedEverywhere)
{
    auto result = compiler::compile(linalg::mlpPipeline(), hls::u55c(), {});
    const auto &cg = result.design.components;
    for (int64_t c = 0; c < cg.numChannels(); ++c) {
        EXPECT_GE(cg.channel(c).depth, 2);
    }
    EXPECT_EQ(result.sizing.size(),
              static_cast<size_t>(cg.numGroups()));
}

TEST(Compiler, MemoryAllocationFeasible)
{
    auto result = compiler::compile(linalg::mlpPipeline(), hls::u55c(), {});
    EXPECT_TRUE(result.memory.feasible);
    EXPECT_GT(result.memory.totalBytes(), 0);
}

TEST(Compiler, DepthCapLoopShrinksOverBudgetDesigns)
{
    // A platform with almost no on-chip memory forces the
    // feasibility loop to tighten the depth cap.
    hls::FpgaPlatform tiny = hls::u55c();
    tiny.lutram_kib = 16;
    tiny.bram_kib = 64;
    tiny.uram_kib = 64;
    auto result = compiler::compile(linalg::mlpPipeline(), tiny, {});
    // Depths were clamped (possibly still infeasible, but the
    // compiler must terminate and report).
    EXPECT_GE(result.clamped_fifos, 0);
}

TEST(Compiler, AutoConservativeTriggersUnderPressure)
{
    compiler::CompileOptions options;
    options.auto_conservative = true;
    options.conservative_threshold = 1e-9; // always trigger
    auto result =
        compiler::compile(linalg::mlpPipeline(), hls::u55c(), options);
    EXPECT_EQ(result.used_equalization,
              token::Equalization::Conservative);
}

TEST(Compiler, ExplicitEqualizationHonored)
{
    compiler::CompileOptions options;
    options.equalization = token::Equalization::Conservative;
    options.auto_conservative = false;
    auto result =
        compiler::compile(linalg::mlpPipeline(), hls::u55c(), options);
    EXPECT_EQ(result.used_equalization,
              token::Equalization::Conservative);
}

TEST(Compiler, LinalgStatsReported)
{
    // A graph with an elementwise chain: fusion count surfaces.
    linalg::Graph g("chain");
    int64_t x = g.addTensor(TensorType(DataType::I8, {32, 32}),
                            "x", linalg::TensorRole::Input);
    int64_t a =
        linalg::ewiseUnary(g, x, linalg::EwiseFn::Gelu, "a");
    int64_t b =
        linalg::ewiseUnary(g, a, linalg::EwiseFn::Scale, "b");
    g.tensor(b).role = linalg::TensorRole::Output;
    auto result = compiler::compile(std::move(g), hls::u55c(), {});
    EXPECT_EQ(result.elementwise_fused, 1);
}

TEST(Compiler, TransformerBlockEndToEnd)
{
    auto graph = models::buildTransformerBlock(
        models::gpt2Config(), models::decodeShapes(48));
    auto result =
        compiler::compile(std::move(graph), hls::u55c(), {});
    EXPECT_EQ(result.design.plan.groups.size(), 1u);
    EXPECT_TRUE(result.memory.feasible);
    EXPECT_TRUE(ir::verifyModule(*result.module).ok());
    EXPECT_GT(result.fold_stats.channels_folded, 0);
    EXPECT_GT(result.vectorized_components, 0);
}

TEST(Compiler, CustomCmaxSplitsDesign)
{
    compiler::CompileOptions options;
    options.c_max = 1; // nothing with a converter can fuse
    auto result =
        compiler::compile(linalg::mlpPipeline(), hls::u55c(), options);
    EXPECT_GT(result.design.plan.groups.size(), 1u);
}
