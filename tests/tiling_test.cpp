/** @file Unit + property tests for the Linalg tiling space
 *  (paper §5.1) and the black-box tuner. */

#include <gtest/gtest.h>

#include "dse/blackbox_tuner.h"
#include "dse/tiling_space.h"
#include "linalg/builders.h"
#include "support/math_util.h"

using namespace streamtensor;
using ir::DataType;
using ir::TensorType;

namespace {

linalg::Graph
twoMatmuls()
{
    linalg::Graph g("two");
    int64_t x = g.addTensor(TensorType(DataType::I8, {32, 64}),
                            "x", linalg::TensorRole::Input);
    int64_t w1 = g.addTensor(TensorType(DataType::I4, {64, 128}),
                             "w1", linalg::TensorRole::Parameter);
    int64_t h = linalg::matmul(g, x, w1, DataType::I8, "mm1");
    int64_t w2 = g.addTensor(TensorType(DataType::I4, {128, 32}),
                             "w2", linalg::TensorRole::Parameter);
    int64_t y = linalg::matmul(g, h, w2, DataType::I8, "mm2");
    g.tensor(y).role = linalg::TensorRole::Output;
    return g;
}

} // namespace

TEST(Tiling, TileSizesDivideExtents)
{
    auto g = twoMatmuls();
    dse::TilingOptions opts;
    opts.default_tile_size = 16;
    auto configs = dse::exploreTiling(g, opts);
    for (const auto &[id, cfg] : configs) {
        const auto &op = g.op(id);
        ASSERT_EQ(cfg.tile_sizes.size(), op.loop_extents.size());
        for (size_t l = 0; l < cfg.tile_sizes.size(); ++l) {
            EXPECT_EQ(op.loop_extents[l] % cfg.tile_sizes[l], 0);
            EXPECT_LE(cfg.tile_sizes[l], 16);
        }
    }
}

TEST(Tiling, NonDividingDefaultSnapsToDivisor)
{
    linalg::Graph g("odd");
    int64_t x = g.addTensor(TensorType(DataType::I8, {6, 9}), "x",
                            linalg::TensorRole::Input);
    int64_t y =
        linalg::ewiseUnary(g, x, linalg::EwiseFn::Gelu, "gelu");
    g.tensor(y).role = linalg::TensorRole::Output;
    dse::TilingOptions opts;
    opts.default_tile_size = 4;
    auto configs = dse::exploreTiling(g, opts);
    const auto &cfg = configs.begin()->second;
    EXPECT_EQ(cfg.tile_sizes[0], 3); // largest divisor of 6 <= 4
    EXPECT_EQ(cfg.tile_sizes[1], 3); // largest divisor of 9 <= 4
}

TEST(Tiling, UnrollBudgetRespected)
{
    auto g = twoMatmuls();
    dse::TilingOptions opts;
    opts.overall_unroll_size = 64;
    opts.max_unroll_per_kernel = 32;
    auto configs = dse::exploreTiling(g, opts);
    int64_t spent = 0;
    for (const auto &[id, cfg] : configs) {
        spent += cfg.unroll;
        EXPECT_LE(cfg.unroll, 32);
        EXPECT_TRUE(isPowerOf2(cfg.unroll));
    }
    EXPECT_LE(spent, 64);
}

TEST(Tiling, IntensityDrivenBalance)
{
    // The heavier matmul (mm1: 32x128x64 vs mm2: 32x32x128)
    // receives at least the unroll of the lighter one.
    auto g = twoMatmuls();
    dse::TilingOptions opts;
    opts.overall_unroll_size = 128;
    opts.max_unroll_per_kernel = 64;
    auto configs = dse::exploreTiling(g, opts);
    EXPECT_GE(configs[0].unroll, configs[1].unroll);
    double lat0 = dse::estimateLatency(g.op(0), configs[0]);
    double lat1 = dse::estimateLatency(g.op(1), configs[1]);
    // Balanced to within one doubling.
    EXPECT_LE(std::max(lat0, lat1) / std::min(lat0, lat1), 4.1);
}

TEST(Tiling, PermutationMovesReductionOutward)
{
    auto g = twoMatmuls();
    auto configs = dse::exploreTiling(g, {});
    // matmul loops (m, n, k): permutation lists k (reduction)
    // first, then the parallel loops in order.
    EXPECT_EQ(configs[0].permutation,
              (std::vector<int64_t>{2, 0, 1}));
}

TEST(Tiling, VectorLanesDivideTokenAndUnroll)
{
    auto g = twoMatmuls();
    dse::TilingOptions opts;
    opts.overall_unroll_size = 512;
    opts.max_unroll_per_kernel = 256;
    auto configs = dse::exploreTiling(g, opts);
    for (const auto &[id, cfg] : configs) {
        int64_t token = 1;
        const auto &op = g.op(id);
        for (size_t l = 0; l < op.iterators.size(); ++l)
            if (op.iterators[l] == linalg::IteratorKind::Parallel)
                token *= cfg.tile_sizes[l];
        EXPECT_LE(cfg.vector_lanes, cfg.unroll);
        EXPECT_EQ(token % cfg.vector_lanes, 0);
    }
}

TEST(Tiling, InterTileTrips)
{
    auto g = twoMatmuls();
    auto configs = dse::exploreTiling(g, {});
    auto trips = configs[0].interTileTrips(g.op(0));
    ASSERT_EQ(trips.size(), 3u);
    for (size_t l = 0; l < trips.size(); ++l) {
        EXPECT_EQ(trips[l] * configs[0].tile_sizes[l],
                  g.op(0).loop_extents[l]);
    }
}

// ---- Black-box tuner ----

TEST(Tuner, DeterministicForFixedSeed)
{
    dse::BlackboxTuner a(7), b(7);
    a.addParam("x", {1, 2, 3});
    b.addParam("x", {1, 2, 3});
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.ask(), b.ask());
}

TEST(Tuner, TracksBest)
{
    dse::BlackboxTuner tuner(11);
    int64_t p = tuner.addParam("x", {1, 2, 4, 8});
    for (int i = 0; i < 30; ++i) {
        auto cfg = tuner.ask();
        // Score: distance from 4 — the tuner should find x=4.
        tuner.tell(cfg, std::abs(static_cast<double>(cfg[p]) - 4));
    }
    EXPECT_EQ(tuner.best()[p], 4);
    EXPECT_EQ(tuner.bestScore(), 0.0);
    EXPECT_EQ(tuner.numTrials(), 30);
}

TEST(Tuner, ValuesComeFromChoices)
{
    dse::BlackboxTuner tuner(13);
    tuner.addParam("a", {5, 10});
    tuner.addParam("b", {7});
    for (int i = 0; i < 20; ++i) {
        auto cfg = tuner.ask();
        EXPECT_TRUE(cfg[0] == 5 || cfg[0] == 10);
        EXPECT_EQ(cfg[1], 7);
        tuner.tell(cfg, 1.0);
    }
}

TEST(Tuner, ErrorsWithoutTrials)
{
    dse::BlackboxTuner tuner;
    tuner.addParam("a", {1});
    EXPECT_THROW(tuner.best(), FatalError);
}

// ---- ILP unroll allocation (solver-backed strategy) ----

TEST(Tiling, IlpUnrollRespectsBudgetAndLevels)
{
    auto g = twoMatmuls();
    dse::TilingOptions opts;
    opts.default_tile_size = 16;
    opts.overall_unroll_size = 24;
    opts.max_unroll_per_kernel = 16;
    opts.unroll_strategy = dse::UnrollStrategy::Ilp;
    auto configs = dse::exploreTiling(g, opts);
    int64_t spent = 0;
    for (const auto &[id, cfg] : configs) {
        EXPECT_GE(cfg.unroll, 1);
        EXPECT_LE(cfg.unroll, opts.max_unroll_per_kernel);
        EXPECT_LE(cfg.unroll, g.op(id).numPoints());
        // Power-of-two level.
        EXPECT_EQ(cfg.unroll & (cfg.unroll - 1), 0);
        spent += cfg.unroll;
    }
    EXPECT_LE(spent, opts.overall_unroll_size);
}

TEST(Tiling, IlpUnrollNeverWorseThanHeap)
{
    auto g = twoMatmuls();
    for (int64_t budget : {6, 10, 24, 48}) {
        dse::TilingOptions opts;
        opts.overall_unroll_size = budget;
        opts.max_unroll_per_kernel = 32;

        opts.unroll_strategy = dse::UnrollStrategy::Heap;
        auto heap = dse::exploreTiling(g, opts);
        opts.unroll_strategy = dse::UnrollStrategy::Ilp;
        auto ilp = dse::exploreTiling(g, opts);

        auto makespan = [&](std::map<int64_t, dse::TileConfig> &c) {
            double worst = 0.0;
            for (auto &[id, cfg] : c)
                worst = std::max(
                    worst, dse::estimateLatency(g.op(id), cfg));
            return worst;
        };
        EXPECT_LE(makespan(ilp), makespan(heap) + 1e-6)
            << "budget=" << budget;
    }
}

TEST(Tiling, IlpUnrollFallsBackPastVarCap)
{
    // With the binary-variable cap forced to zero the ILP is
    // skipped and the heap allocation must be produced instead.
    auto g = twoMatmuls();
    dse::TilingOptions opts;
    opts.unroll_strategy = dse::UnrollStrategy::Ilp;
    opts.max_ilp_unroll_vars = 0;
    auto ilp_capped = dse::exploreTiling(g, opts);
    opts.unroll_strategy = dse::UnrollStrategy::Heap;
    auto heap = dse::exploreTiling(g, opts);
    ASSERT_EQ(ilp_capped.size(), heap.size());
    for (const auto &[id, cfg] : heap)
        EXPECT_EQ(ilp_capped.at(id).unroll, cfg.unroll);
}
