/** @file QuantileSketch accuracy and determinism suite. The
 *  accuracy tests measure *rank* error — the position of the
 *  sketch's answer inside the sorted exact data versus the
 *  nearest-rank target — which is the error the sketch actually
 *  bounds (value error is unbounded for adversarial value gaps).
 *  100 seeded streams across uniform / exponential / clustered
 *  shapes must stay inside the documented 2%-of-n contract
 *  (quantile_sketch.h); small streams (below one compaction) must
 *  be exact; merging must match the documented determinism. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "serving/metrics.h"
#include "serving/quantile_sketch.h"
#include "support/error.h"

using namespace streamtensor;
using serving::QuantileSketch;

namespace {

/** Seed-varied stream: shape and size both derive from the seed so
 *  the suite covers uniform, heavy-tailed, and near-duplicate data
 *  at sizes from well below one compaction to many cascades. */
std::vector<double>
seededStream(uint64_t seed)
{
    std::mt19937_64 rng(seed * 1000003 + 17);
    size_t n = 200 + static_cast<size_t>((seed * 977) % 40000);
    std::vector<double> values;
    values.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        double u = static_cast<double>(rng() >> 11) * 0x1.0p-53;
        switch (seed % 3) {
        case 0: // uniform
            values.push_back(u * 1000.0);
            break;
        case 1: // heavy tail (exponential-ish)
            values.push_back(-std::log(1.0 - u) * 50.0);
            break;
        default: // clustered: many ties plus a sparse tail
            values.push_back(
                i % 7 == 0 ? 500.0 + u * 500.0
                           : static_cast<double>(seed % 5));
            break;
        }
    }
    return values;
}

/** Rank error of @p answer against the sorted exact data, as a
 *  fraction of n. The sketch returns a retained input value, so
 *  its rank range in the data is [first occurrence, last
 *  occurrence]; error is the distance from that range to the
 *  nearest-rank target. */
double
rankError(const std::vector<double> &sorted, double p,
          double answer)
{
    auto n = static_cast<double>(sorted.size());
    double target = std::max(std::ceil(p / 100.0 * n), 1.0);
    auto lo = std::lower_bound(sorted.begin(), sorted.end(),
                               answer) -
              sorted.begin();
    auto hi = std::upper_bound(sorted.begin(), sorted.end(),
                               answer) -
              sorted.begin();
    double lo_rank = static_cast<double>(lo) + 1.0;
    double hi_rank = static_cast<double>(hi);
    double err = 0.0;
    if (target < lo_rank)
        err = lo_rank - target;
    else if (target > hi_rank)
        err = target - hi_rank;
    return err / n;
}

class SketchAccuracy : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(SketchAccuracy, RankErrorWithinContract)
{
    std::vector<double> values = seededStream(GetParam());
    QuantileSketch sketch;
    for (double v : values)
        sketch.add(v);
    ASSERT_EQ(sketch.count(),
              static_cast<int64_t>(values.size()));

    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sketch.minValue(), sorted.front());
    EXPECT_EQ(sketch.maxValue(), sorted.back());

    for (double p : {1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
        auto answer = sketch.quantile(p);
        ASSERT_TRUE(answer.has_value());
        // Documented contract: <= 2% of n. Observed in practice
        // well under 1%; the assert holds the published bound.
        EXPECT_LE(rankError(sorted, p, *answer), 0.02)
            << "p=" << p << " n=" << values.size();
    }
    // The extremes are exact, not estimates.
    EXPECT_EQ(sketch.quantile(0.0), sorted.front());
    EXPECT_EQ(sketch.quantile(100.0), sorted.back());
}

TEST_P(SketchAccuracy, DeterministicRebuildAndMerge)
{
    std::vector<double> values = seededStream(GetParam());
    QuantileSketch once, again;
    for (double v : values) {
        once.add(v);
        again.add(v);
    }
    // Same stream twice -> identical summaries (no RNG anywhere).
    for (double p : {50.0, 90.0, 99.0})
        EXPECT_EQ(once.quantile(p), again.quantile(p));

    // A fixed-order merge of a fixed split is deterministic too,
    // and stays within the rank contract.
    QuantileSketch left, right, merged;
    for (size_t i = 0; i < values.size(); ++i)
        (i % 2 == 0 ? left : right).add(values[i]);
    merged.merge(left);
    merged.merge(right);
    EXPECT_EQ(merged.count(),
              static_cast<int64_t>(values.size()));
    QuantileSketch merged_again;
    merged_again.merge(left);
    merged_again.merge(right);
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    for (double p : {50.0, 90.0, 99.0}) {
        EXPECT_EQ(merged.quantile(p), merged_again.quantile(p));
        ASSERT_TRUE(merged.quantile(p).has_value());
        EXPECT_LE(rankError(sorted, p, *merged.quantile(p)), 0.02);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SketchAccuracy,
                         ::testing::Range<uint64_t>(0, 100));

TEST(QuantileSketch, EmptyAndSingleton)
{
    QuantileSketch sketch;
    EXPECT_TRUE(sketch.empty());
    EXPECT_EQ(sketch.count(), 0);
    EXPECT_FALSE(sketch.quantile(50.0).has_value());

    sketch.add(42.0);
    EXPECT_FALSE(sketch.empty());
    for (double p : {0.0, 50.0, 100.0})
        EXPECT_EQ(sketch.quantile(p), 42.0);
}

TEST(QuantileSketch, ExactBelowOneCompaction)
{
    // Fewer than k items: nothing has been compacted away, so the
    // sketch must agree with percentile() exactly at every rank.
    std::mt19937_64 rng(7);
    std::vector<double> values;
    QuantileSketch sketch; // default k = 512
    for (int i = 0; i < 511; ++i) {
        double v = static_cast<double>(rng() >> 40);
        values.push_back(v);
        sketch.add(v);
    }
    for (double p : {0.0, 1.0, 25.0, 50.0, 75.0, 99.0, 100.0})
        EXPECT_EQ(sketch.quantile(p),
                  serving::percentile(values, p));
}

TEST(QuantileSketch, MergeEmptyAndCapacityMismatch)
{
    QuantileSketch a, b;
    a.add(1.0);
    a.merge(b); // empty right side: no-op
    EXPECT_EQ(a.count(), 1);
    b.merge(a);
    EXPECT_EQ(b.count(), 1);
    EXPECT_EQ(b.quantile(50.0), 1.0);

    QuantileSketch small(16);
    EXPECT_THROW(small.merge(a), FatalError);
}

TEST(QuantileSketch, BoundedMemoryOnLongStreams)
{
    // 200k inserts must retain O(k log(n/k)) items, far below n.
    QuantileSketch sketch;
    std::mt19937_64 rng(11);
    for (int i = 0; i < 200000; ++i)
        sketch.add(static_cast<double>(rng() >> 30));
    EXPECT_EQ(sketch.count(), 200000);
    EXPECT_LT(sketch.retainedItems(), 8192);
}

} // namespace
