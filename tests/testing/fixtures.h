/** @file Shared test fixtures: tiny iTensor types and linalg graphs
 *  used across multiple suites. Keep these small and deterministic —
 *  every helper mirrors a figure or running example from the paper so
 *  expected token counts are easy to derive by hand. */

#ifndef STREAMTENSOR_TESTS_TESTING_FIXTURES_H
#define STREAMTENSOR_TESTS_TESTING_FIXTURES_H

#include <cstdint>
#include <map>

#include "dse/tiling_space.h"
#include "ir/itensor_type.h"
#include "linalg/builders.h"

namespace streamtensor {
namespace fixtures {

/** 2x2 tiles of tensor<8x8xf32>, row-major iteration: the default
 *  "small tiled tensor" used by builder/verifier tests. */
inline ir::ITensorType
tileType()
{
    return ir::makeTiledITensor(
        ir::TensorType(ir::DataType::F32, {8, 8}), {2, 2});
}

/** Fig. 5(a): 2x2 tiles of tensor<8x8xf32>, row-major. */
inline ir::ITensorType
figure5a()
{
    return ir::ITensorType(ir::DataType::F32, {2, 2}, {4, 4}, {2, 2},
                           ir::AffineMap::identity(2));
}

/** Fig. 5(b): 4x2 tiles, transposed iteration. */
inline ir::ITensorType
figure5b()
{
    return ir::ITensorType(
        ir::DataType::F32, {4, 2}, {4, 2}, {2, 4},
        ir::AffineMap(2, {ir::AffineExpr::dim(1),
                          ir::AffineExpr::dim(0)}));
}

/** Fig. 5(c): 4x2 tiles with revisit dim d1. */
inline ir::ITensorType
figure5c()
{
    return ir::ITensorType(
        ir::DataType::F32, {4, 2}, {4, 2, 2}, {2, 1, 4},
        ir::AffineMap(3, {ir::AffineExpr::dim(2),
                          ir::AffineExpr::dim(0)}));
}

/** One i8 x i4 matmul with an input, a parameter, and an output —
 *  the smallest graph the linalg-to-dataflow conversion accepts. */
inline linalg::Graph
singleMatmul(int64_t m = 32, int64_t k = 64, int64_t n = 128)
{
    linalg::Graph g("mm");
    int64_t x = g.addTensor(ir::TensorType(ir::DataType::I8, {m, k}),
                            "x", linalg::TensorRole::Input);
    int64_t w = g.addTensor(ir::TensorType(ir::DataType::I4, {k, n}),
                            "w", linalg::TensorRole::Parameter);
    int64_t y = linalg::matmul(g, x, w, ir::DataType::I8, "mm");
    g.tensor(y).role = linalg::TensorRole::Output;
    return g;
}

/** Uniform 16x16 tiling for every op in the graph. */
inline std::map<int64_t, dse::TileConfig>
tile16(const linalg::Graph &g)
{
    dse::TilingOptions opts;
    opts.default_tile_size = 16;
    return dse::exploreTiling(g, opts);
}

} // namespace fixtures
} // namespace streamtensor

#endif // STREAMTENSOR_TESTS_TESTING_FIXTURES_H
