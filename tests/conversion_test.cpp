/** @file Unit tests for Linalg-to-dataflow conversion and itensor
 *  inference (paper §4.1). */

#include <gtest/gtest.h>

#include "support/error.h"

#include "dataflow/conversion.h"
#include "linalg/builders.h"

#include "testing/fixtures.h"

using namespace streamtensor;
using ir::DataType;
using ir::TensorType;

using fixtures::singleMatmul;
using fixtures::tile16;

TEST(Conversion, MatmulOutputType)
{
    auto g = singleMatmul();
    auto configs = tile16(g);
    auto out = dataflow::inferBoundaryIT(g, g.op(0), configs[0],
                                         -1);
    // Output iterates only the parallel loops (m, n): 2x8 tiles.
    EXPECT_EQ(out.numTokens(), (32 / 16) * (128 / 16));
    EXPECT_EQ(out.revisitFactor(), 1);
    EXPECT_EQ(out.dataShape(), (std::vector<int64_t>{32, 128}));
    EXPECT_EQ(out.elementShape(), (std::vector<int64_t>{16, 16}));
}

TEST(Conversion, MatmulInputARevisitsPerNTile)
{
    auto g = singleMatmul();
    auto configs = tile16(g);
    auto a = dataflow::inferBoundaryIT(g, g.op(0), configs[0], 0);
    // A[m,k] is re-streamed for every n tile: 8 revisits.
    EXPECT_EQ(a.revisitFactor(), 128 / 16);
    EXPECT_EQ(a.numTokens(),
              (32 / 16) * (128 / 16) * (64 / 16));
    EXPECT_EQ(a.numUniqueTokens(), (32 / 16) * (64 / 16));
    EXPECT_EQ(a.dataShape(), (std::vector<int64_t>{32, 64}));
}

TEST(Conversion, MatmulInputBRevisitsPerMTile)
{
    auto g = singleMatmul();
    auto configs = tile16(g);
    auto b = dataflow::inferBoundaryIT(g, g.op(0), configs[0], 1);
    EXPECT_EQ(b.revisitFactor(), 32 / 16);
    EXPECT_EQ(b.dataShape(), (std::vector<int64_t>{64, 128}));
    EXPECT_EQ(b.dtype(), DataType::I4);
}

TEST(Conversion, StreamOrderMatchesLoopNest)
{
    auto g = singleMatmul(32, 32, 32);
    dse::TileConfig cfg;
    cfg.tile_sizes = {16, 16, 16};
    auto out = dataflow::inferBoundaryIT(g, g.op(0), cfg, -1);
    auto offsets = out.streamOffsets();
    // Loop order (m, n): row-major over output tiles.
    ASSERT_EQ(offsets.size(), 4u);
    EXPECT_EQ(offsets[0], (std::vector<int64_t>{0, 0}));
    EXPECT_EQ(offsets[1], (std::vector<int64_t>{0, 16}));
    EXPECT_EQ(offsets[2], (std::vector<int64_t>{16, 0}));
}

TEST(Conversion, BroadcastOperandBecomesConstantMap)
{
    linalg::Graph g("norm");
    int64_t x = g.addTensor(TensorType(DataType::I8, {8, 64}), "x",
                            linalg::TensorRole::Input);
    int64_t w = g.addTensor(TensorType(DataType::F32, {64}), "w",
                            linalg::TensorRole::Parameter);
    int64_t y = linalg::layerNorm(g, x, w, "ln");
    g.tensor(y).role = linalg::TensorRole::Output;
    auto configs = tile16(g);
    auto wt = dataflow::inferBoundaryIT(g, g.op(0), configs[0], 1);
    // The weight is indexed only by the inner loop.
    EXPECT_EQ(wt.dataShape(), (std::vector<int64_t>{64}));
    EXPECT_GE(wt.revisitFactor(), 1);
}

TEST(Conversion, KernelSpecsForWholeGraph)
{
    auto g = singleMatmul();
    auto configs = tile16(g);
    auto kernels = dataflow::convertToKernels(g, configs);
    ASSERT_EQ(kernels.size(), 1u);
    const auto &spec = kernels[0];
    EXPECT_EQ(spec.op_id, 0);
    EXPECT_EQ(spec.input_types.size(), 2u);
    EXPECT_EQ(spec.total_points, 32 * 64 * 128);
    EXPECT_EQ(spec.points_per_token,
              32 * 64 * 128 / spec.output_type.numTokens());
    EXPECT_GT(spec.local_buffer_bytes, 0);
}

TEST(Conversion, ProducerConsumerSameTensorSameDataSpace)
{
    // Two chained matmuls: producer output and consumer input of
    // the shared tensor must reference the same data space.
    linalg::Graph g("chain");
    int64_t x = g.addTensor(TensorType(DataType::I8, {32, 64}),
                            "x", linalg::TensorRole::Input);
    int64_t w1 = g.addTensor(TensorType(DataType::I4, {64, 32}),
                             "w1", linalg::TensorRole::Parameter);
    int64_t h = linalg::matmul(g, x, w1, DataType::I8, "mm1");
    int64_t w2 = g.addTensor(TensorType(DataType::I4, {32, 16}),
                             "w2", linalg::TensorRole::Parameter);
    int64_t y = linalg::matmul(g, h, w2, DataType::I8, "mm2");
    g.tensor(y).role = linalg::TensorRole::Output;
    auto configs = tile16(g);
    auto kernels = dataflow::convertToKernels(g, configs);
    ASSERT_EQ(kernels.size(), 2u);
    EXPECT_TRUE(kernels[0].output_type.sameDataSpace(
        kernels[1].input_types[0]));
}

TEST(Conversion, MissingConfigIsFatal)
{
    auto g = singleMatmul();
    std::map<int64_t, dse::TileConfig> empty;
    EXPECT_THROW(dataflow::convertToKernels(g, empty), FatalError);
}
