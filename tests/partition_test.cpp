/** @file Unit tests for die partitioning (ILP) and memory
 *  allocation (paper §5.3 items 2-3). */

#include <gtest/gtest.h>

#include "dataflow/fusion_apply.h"
#include "hls/profiling.h"
#include "linalg/builders.h"
#include "partition/die_partition.h"
#include "partition/memory_alloc.h"

using namespace streamtensor;
using ir::DataType;
using ir::TensorType;

namespace {

dataflow::AcceleratorDesign
chainDesign(int64_t n)
{
    linalg::Graph g("chain");
    int64_t t = g.addTensor(TensorType(DataType::I8, {32, 32}),
                            "x", linalg::TensorRole::Input);
    for (int64_t i = 0; i < n; ++i) {
        t = linalg::ewiseUnary(g, t, linalg::EwiseFn::Gelu,
                               "e" + std::to_string(i));
    }
    g.tensor(t).role = linalg::TensorRole::Output;
    auto configs = dse::exploreTiling(g, {});
    auto design = dataflow::buildAccelerator(g, configs, 1 << 30);
    hls::profileComponents(design.components, hls::u55c());
    return design;
}

} // namespace

TEST(DiePartition, EveryComponentAssigned)
{
    auto design = chainDesign(6);
    auto result = partition::partitionGroup(design.components, 0,
                                            hls::u55c());
    for (int64_t id : design.components.groupComponents(0)) {
        int64_t die = design.components.component(id).die;
        EXPECT_GE(die, 0);
        EXPECT_LT(die, hls::u55c().num_dies);
    }
    EXPECT_GE(result.crossings, 0);
}

TEST(DiePartition, IlpKeepsChainsContiguousish)
{
    auto design = chainDesign(4);
    partition::PartitionOptions opts;
    opts.max_ilp_components = 64;
    auto result = partition::partitionGroup(design.components, 0,
                                            hls::u55c(), opts);
    // A pipeline should not cross dies more than (dies - 1) times
    // when balance pressure is mild.
    EXPECT_LE(result.crossings, hls::u55c().num_dies + 2);
}

TEST(DiePartition, GreedyFallbackOnLargeGroups)
{
    auto design = chainDesign(10);
    partition::PartitionOptions opts;
    opts.max_ilp_components = 2; // force greedy
    auto result = partition::partitionGroup(design.components, 0,
                                            hls::u55c(), opts);
    EXPECT_FALSE(result.used_ilp);
}

TEST(DiePartition, SingleDieTrivial)
{
    auto design = chainDesign(3);
    hls::FpgaPlatform mono = hls::u55c();
    mono.num_dies = 1;
    auto result = partition::partitionGroup(design.components, 0,
                                            mono);
    EXPECT_EQ(result.crossings, 0);
}

TEST(MemoryAlloc, SmallBuffersPreferLutram)
{
    auto design = chainDesign(3);
    auto alloc =
        partition::allocateMemory(design.components, hls::u55c());
    EXPECT_TRUE(alloc.feasible);
    bool saw_lutram = false;
    for (const auto &b : alloc.placements) {
        if (b.bytes <= 1024)
            saw_lutram |= b.kind == ir::MemoryKind::LUTRAM;
        EXPECT_NE(b.kind, ir::MemoryKind::Auto);
    }
    EXPECT_TRUE(saw_lutram);
}

TEST(MemoryAlloc, LargeBuffersLandInUram)
{
    dataflow::ComponentGraph g;
    dataflow::Component big;
    big.kind = dataflow::ComponentKind::Kernel;
    big.name = "big";
    big.local_buffer_bytes = 1 << 20; // 1 MiB
    g.addComponent(big);
    auto alloc = partition::allocateMemory(g, hls::u55c());
    ASSERT_EQ(alloc.placements.size(), 1u);
    EXPECT_EQ(alloc.placements[0].kind, ir::MemoryKind::URAM);
}

TEST(MemoryAlloc, OverflowReportedInfeasible)
{
    dataflow::ComponentGraph g;
    dataflow::Component huge;
    huge.kind = dataflow::ComponentKind::Kernel;
    huge.name = "huge";
    huge.local_buffer_bytes = 1ll << 32; // 4 GiB
    g.addComponent(huge);
    auto alloc = partition::allocateMemory(g, hls::u55c());
    EXPECT_FALSE(alloc.feasible);
}

TEST(MemoryAlloc, TotalsMatchPlacements)
{
    auto design = chainDesign(4);
    auto alloc =
        partition::allocateMemory(design.components, hls::u55c());
    int64_t sum = 0;
    for (const auto &b : alloc.placements)
        if (b.kind != ir::MemoryKind::Auto)
            sum += b.bytes;
    EXPECT_EQ(sum, alloc.totalBytes());
}

TEST(MemoryAlloc, LargestFirstOrdering)
{
    auto design = chainDesign(4);
    auto alloc =
        partition::allocateMemory(design.components, hls::u55c());
    for (size_t i = 1; i < alloc.placements.size(); ++i) {
        EXPECT_GE(alloc.placements[i - 1].bytes,
                  alloc.placements[i].bytes);
    }
}
