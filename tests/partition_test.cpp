/** @file Unit tests for die partitioning (ILP) and memory
 *  allocation (paper §5.3 items 2-3). */

#include <gtest/gtest.h>

#include "dataflow/fusion_apply.h"
#include "hls/profiling.h"
#include "hls/resource.h"
#include "linalg/builders.h"
#include "partition/die_partition.h"
#include "partition/memory_alloc.h"

using namespace streamtensor;
using ir::DataType;
using ir::TensorType;

namespace {

dataflow::AcceleratorDesign
chainDesign(int64_t n)
{
    linalg::Graph g("chain");
    int64_t t = g.addTensor(TensorType(DataType::I8, {32, 32}),
                            "x", linalg::TensorRole::Input);
    for (int64_t i = 0; i < n; ++i) {
        t = linalg::ewiseUnary(g, t, linalg::EwiseFn::Gelu,
                               "e" + std::to_string(i));
    }
    g.tensor(t).role = linalg::TensorRole::Output;
    auto configs = dse::exploreTiling(g, {});
    auto design = dataflow::buildAccelerator(g, configs, 1 << 30);
    hls::profileComponents(design.components, hls::u55c());
    return design;
}

/** A reconvergent design: one input fans out into @p branches
 *  elementwise chains that are summed pairwise — the shape where
 *  greedy's topological wavefront cuts more edges than the ILP. */
dataflow::AcceleratorDesign
branchedDesign(int64_t branches, int64_t depth)
{
    linalg::Graph g("branched");
    int64_t x = g.addTensor(TensorType(DataType::I8, {32, 32}),
                            "x", linalg::TensorRole::Input);
    std::vector<int64_t> tips;
    for (int64_t b = 0; b < branches; ++b) {
        int64_t t = x;
        for (int64_t i = 0; i < depth; ++i) {
            t = linalg::ewiseUnary(
                g, t, linalg::EwiseFn::Gelu,
                "b" + std::to_string(b) + "_e" +
                    std::to_string(i));
        }
        tips.push_back(t);
    }
    int64_t acc = tips[0];
    for (size_t b = 1; b < tips.size(); ++b) {
        acc = linalg::ewiseBinary(g, acc, tips[b],
                                  linalg::EwiseFn::Add,
                                  "sum" + std::to_string(b));
    }
    g.tensor(acc).role = linalg::TensorRole::Output;
    auto configs = dse::exploreTiling(g, {});
    auto design = dataflow::buildAccelerator(g, configs, 1 << 30);
    hls::profileComponents(design.components, hls::u55c());
    return design;
}

/** Assignment validity: every group member placed on a real die,
 *  per-die LUTs within the platform's per-die capacity, and the
 *  per-die tallies consistent with the assignment. */
void
expectValidPartition(const dataflow::ComponentGraph &g,
                     int64_t group,
                     const partition::PartitionResult &result,
                     const hls::FpgaPlatform &platform)
{
    ASSERT_EQ(result.die_luts.size(),
              static_cast<size_t>(platform.num_dies));
    double capacity =
        static_cast<double>(platform.dieResources().luts);
    double placed = 0.0;
    for (int64_t id : g.groupComponents(group)) {
        int64_t die = g.component(id).die;
        EXPECT_GE(die, 0);
        EXPECT_LT(die, platform.num_dies);
        EXPECT_EQ(result.die_of[id], die);
        placed += hls::estimateComponent(g.component(id)).luts;
    }
    double tallied = 0.0;
    for (double luts : result.die_luts) {
        EXPECT_LE(luts, capacity);
        tallied += luts;
    }
    EXPECT_NEAR(placed, tallied, 1e-6);
}

} // namespace

TEST(DiePartition, EveryComponentAssigned)
{
    auto design = chainDesign(6);
    auto result = partition::partitionGroup(design.components, 0,
                                            hls::u55c());
    for (int64_t id : design.components.groupComponents(0)) {
        int64_t die = design.components.component(id).die;
        EXPECT_GE(die, 0);
        EXPECT_LT(die, hls::u55c().num_dies);
    }
    EXPECT_GE(result.crossings, 0);
}

TEST(DiePartition, IlpKeepsChainsContiguousish)
{
    auto design = chainDesign(4);
    partition::PartitionOptions opts;
    opts.max_ilp_components = 64;
    auto result = partition::partitionGroup(design.components, 0,
                                            hls::u55c(), opts);
    // A pipeline should not cross dies more than (dies - 1) times
    // when balance pressure is mild.
    EXPECT_LE(result.crossings, hls::u55c().num_dies + 2);
}

TEST(DiePartition, GreedyFallbackOnLargeGroups)
{
    auto design = chainDesign(10);
    partition::PartitionOptions opts;
    opts.max_ilp_components = 2; // force greedy
    auto result = partition::partitionGroup(design.components, 0,
                                            hls::u55c(), opts);
    EXPECT_FALSE(result.used_ilp);
}

TEST(DiePartition, GreedyStrategyForcesFallback)
{
    auto design = chainDesign(4);
    partition::PartitionOptions opts;
    opts.strategy = partition::PartitionStrategy::Greedy;
    opts.max_ilp_components = 64; // would otherwise use the ILP
    auto result = partition::partitionGroup(design.components, 0,
                                            hls::u55c(), opts);
    EXPECT_FALSE(result.used_ilp);
    expectValidPartition(design.components, 0, result,
                         hls::u55c());
}

// ---- ILP-vs-greedy differential: on every group small enough
// ---- for the ILP, greedy's crossings must be >= the ILP's, and
// ---- both assignments must be valid (every component placed,
// ---- per-die capacity respected).

TEST(DiePartition, GreedyNeverBeatsIlpOnChains)
{
    // A fabric whose per-die slice fits each fixture whole, so
    // capacity validity is meaningful for both partitioners.
    hls::FpgaPlatform roomy = hls::u55c();
    roomy.lut_count *= 8;
    for (int64_t n : {2, 3, 5, 7, 9}) {
        auto design = chainDesign(n);
        partition::PartitionOptions ilp_opts;
        ilp_opts.max_ilp_components = 64;
        auto ilp = partition::partitionGroup(
            design.components, 0, roomy, ilp_opts);
        expectValidPartition(design.components, 0, ilp, roomy);

        partition::PartitionOptions greedy_opts;
        greedy_opts.strategy = partition::PartitionStrategy::Greedy;
        auto greedy = partition::partitionGroup(
            design.components, 0, roomy, greedy_opts);
        EXPECT_FALSE(greedy.used_ilp);
        expectValidPartition(design.components, 0, greedy, roomy);
        EXPECT_GE(greedy.crossings, ilp.crossings)
            << "chain " << n;
    }
}

TEST(DiePartition, GreedyNeverBeatsIlpOnBranchedGraphs)
{
    hls::FpgaPlatform roomy = hls::u55c();
    roomy.lut_count *= 8;
    for (int64_t branches : {2, 3}) {
        for (int64_t depth : {1, 2, 3}) {
            auto design = branchedDesign(branches, depth);
            partition::PartitionOptions ilp_opts;
            ilp_opts.max_ilp_components = 64;
            auto ilp = partition::partitionGroup(
                design.components, 0, roomy, ilp_opts);
            expectValidPartition(design.components, 0, ilp,
                                 roomy);

            partition::PartitionOptions greedy_opts;
            greedy_opts.strategy =
                partition::PartitionStrategy::Greedy;
            auto greedy = partition::partitionGroup(
                design.components, 0, roomy, greedy_opts);
            expectValidPartition(design.components, 0, greedy,
                                 roomy);
            EXPECT_GE(greedy.crossings, ilp.crossings)
                << branches << "x" << depth;
        }
    }
}

TEST(DiePartition, CapacityRowsSpreadBindingLoad)
{
    // On the real U55C the three fat gelu kernels of chainDesign(3)
    // exceed one die's LUT slice; with capacity rows enabled the
    // ILP must not pile them onto one die even when that would
    // minimise crossings.
    auto design = chainDesign(3);
    partition::PartitionOptions opts;
    opts.max_ilp_components = 64;
    opts.enforce_die_capacity = true;
    auto result = partition::partitionGroup(design.components, 0,
                                            hls::u55c(), opts);
    double capacity =
        static_cast<double>(hls::u55c().dieResources().luts);
    ASSERT_FALSE(result.die_luts.empty());
    for (double luts : result.die_luts)
        EXPECT_LE(luts, capacity);
}

TEST(DiePartition, CrossingChannelsCarryPlatformLinkCost)
{
    auto design = branchedDesign(3, 2);
    hls::FpgaPlatform linked = hls::u55c();
    linked.inter_die_latency_cycles = 24.0;
    linked.inter_die_ii_penalty = 2.0;
    auto result = partition::partitionGroup(design.components, 0,
                                            linked);
    const auto &cg = design.components;
    int64_t flagged = 0;
    for (int64_t ch_id : cg.groupChannels(0)) {
        const auto &ch = cg.channel(ch_id);
        bool crosses = cg.component(ch.src).die !=
                       cg.component(ch.dst).die;
        EXPECT_EQ(ch.inter_die, crosses);
        EXPECT_EQ(ch.link_latency, crosses ? 24.0 : 0.0);
        EXPECT_EQ(ch.link_ii_penalty, crosses ? 2.0 : 0.0);
        flagged += crosses ? 1 : 0;
    }
    EXPECT_EQ(flagged, result.crossings);

    // Re-partitioning onto one die clears every stale link cost.
    hls::FpgaPlatform mono = linked;
    mono.num_dies = 1;
    auto single = partition::partitionGroup(design.components, 0,
                                            mono);
    EXPECT_EQ(single.crossings, 0);
    for (int64_t ch_id : cg.groupChannels(0)) {
        EXPECT_FALSE(cg.channel(ch_id).inter_die);
        EXPECT_EQ(cg.channel(ch_id).link_latency, 0.0);
        EXPECT_EQ(cg.channel(ch_id).link_ii_penalty, 0.0);
    }
}

TEST(DiePartition, SingleDieTrivial)
{
    auto design = chainDesign(3);
    hls::FpgaPlatform mono = hls::u55c();
    mono.num_dies = 1;
    auto result = partition::partitionGroup(design.components, 0,
                                            mono);
    EXPECT_EQ(result.crossings, 0);
}

TEST(MemoryAlloc, SmallBuffersPreferLutram)
{
    auto design = chainDesign(3);
    auto alloc =
        partition::allocateMemory(design.components, hls::u55c());
    EXPECT_TRUE(alloc.feasible);
    bool saw_lutram = false;
    for (const auto &b : alloc.placements) {
        if (b.bytes <= 1024)
            saw_lutram |= b.kind == ir::MemoryKind::LUTRAM;
        EXPECT_NE(b.kind, ir::MemoryKind::Auto);
    }
    EXPECT_TRUE(saw_lutram);
}

TEST(MemoryAlloc, LargeBuffersLandInUram)
{
    dataflow::ComponentGraph g;
    dataflow::Component big;
    big.kind = dataflow::ComponentKind::Kernel;
    big.name = "big";
    big.local_buffer_bytes = 1 << 20; // 1 MiB
    g.addComponent(big);
    auto alloc = partition::allocateMemory(g, hls::u55c());
    ASSERT_EQ(alloc.placements.size(), 1u);
    EXPECT_EQ(alloc.placements[0].kind, ir::MemoryKind::URAM);
}

TEST(MemoryAlloc, OverflowReportedInfeasible)
{
    dataflow::ComponentGraph g;
    dataflow::Component huge;
    huge.kind = dataflow::ComponentKind::Kernel;
    huge.name = "huge";
    huge.local_buffer_bytes = 1ll << 32; // 4 GiB
    g.addComponent(huge);
    auto alloc = partition::allocateMemory(g, hls::u55c());
    EXPECT_FALSE(alloc.feasible);
}

TEST(MemoryAlloc, TotalsMatchPlacements)
{
    auto design = chainDesign(4);
    auto alloc =
        partition::allocateMemory(design.components, hls::u55c());
    int64_t sum = 0;
    for (const auto &b : alloc.placements)
        if (b.kind != ir::MemoryKind::Auto)
            sum += b.bytes;
    EXPECT_EQ(sum, alloc.totalBytes());
}

TEST(MemoryAlloc, LargestFirstOrdering)
{
    auto design = chainDesign(4);
    auto alloc =
        partition::allocateMemory(design.components, hls::u55c());
    for (size_t i = 1; i < alloc.placements.size(); ++i) {
        EXPECT_GE(alloc.placements[i - 1].bytes,
                  alloc.placements[i].bytes);
    }
}
