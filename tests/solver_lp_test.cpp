/** @file Unit + property tests for the simplex LP solver. */

#include <gtest/gtest.h>

#include <cmath>

#include "solver/lp.h"
#include "support/error.h"

using namespace streamtensor::solver;

TEST(Lp, SimpleMinimization)
{
    // min x + y s.t. x + y >= 4, x >= 1.
    LpProblem lp(2);
    lp.setObjective(0, 1.0);
    lp.setObjective(1, 1.0);
    lp.addConstraint({1.0, 1.0}, Relation::GE, 4.0);
    lp.addConstraint({1.0, 0.0}, Relation::GE, 1.0);
    auto sol = solveLp(lp);
    ASSERT_TRUE(sol.optimal());
    EXPECT_NEAR(sol.objective, 4.0, 1e-6);
}

TEST(Lp, MaximizationViaNegation)
{
    // max 3x + 2y s.t. x + y <= 4, x <= 2  ==  min -3x - 2y.
    LpProblem lp(2);
    lp.setObjective(0, -3.0);
    lp.setObjective(1, -2.0);
    lp.addConstraint({1.0, 1.0}, Relation::LE, 4.0);
    lp.addConstraint({1.0, 0.0}, Relation::LE, 2.0);
    auto sol = solveLp(lp);
    ASSERT_TRUE(sol.optimal());
    EXPECT_NEAR(sol.values[0], 2.0, 1e-6);
    EXPECT_NEAR(sol.values[1], 2.0, 1e-6);
    EXPECT_NEAR(sol.objective, -10.0, 1e-6);
}

TEST(Lp, EqualityConstraints)
{
    // min x + 2y s.t. x + y == 5, y >= 2.
    LpProblem lp(2);
    lp.setObjective(0, 1.0);
    lp.setObjective(1, 2.0);
    lp.addConstraint({1.0, 1.0}, Relation::EQ, 5.0);
    lp.addConstraint({0.0, 1.0}, Relation::GE, 2.0);
    auto sol = solveLp(lp);
    ASSERT_TRUE(sol.optimal());
    EXPECT_NEAR(sol.values[0], 3.0, 1e-6);
    EXPECT_NEAR(sol.values[1], 2.0, 1e-6);
}

TEST(Lp, DetectsInfeasible)
{
    // x <= 1 and x >= 2 cannot hold.
    LpProblem lp(1);
    lp.setObjective(0, 1.0);
    lp.addConstraint({1.0}, Relation::LE, 1.0);
    lp.addConstraint({1.0}, Relation::GE, 2.0);
    auto sol = solveLp(lp);
    EXPECT_EQ(sol.status, LpStatus::Infeasible);
}

TEST(Lp, DetectsUnbounded)
{
    // min -x with x unconstrained above.
    LpProblem lp(1);
    lp.setObjective(0, -1.0);
    lp.addConstraint({1.0}, Relation::GE, 0.0);
    auto sol = solveLp(lp);
    EXPECT_EQ(sol.status, LpStatus::Unbounded);
}

TEST(Lp, NegativeRhsNormalised)
{
    // -x <= -3  ==  x >= 3.
    LpProblem lp(1);
    lp.setObjective(0, 1.0);
    lp.addConstraint({-1.0}, Relation::LE, -3.0);
    auto sol = solveLp(lp);
    ASSERT_TRUE(sol.optimal());
    EXPECT_NEAR(sol.values[0], 3.0, 1e-6);
}

TEST(Lp, SparseConstraintAccumulates)
{
    LpProblem lp(3);
    lp.setObjective(0, 1.0);
    lp.addSparseConstraint({0, 0}, {1.0, 1.0}, Relation::GE, 4.0);
    auto sol = solveLp(lp);
    ASSERT_TRUE(sol.optimal());
    EXPECT_NEAR(sol.values[0], 2.0, 1e-6);
}

TEST(Lp, SparseDuplicateIndicesAccumulateInRow)
{
    // Repeated vars[i] must accumulate into one stored entry, not
    // keep duplicate (last-wins or first-wins) mentions: the row
    // {v:1.0, v:1.0, w:-0.5, v:0.5} is exactly 2.5*v - 0.5*w.
    LpProblem lp(3);
    lp.addSparseConstraint({1, 1, 2, 1}, {1.0, 1.0, -0.5, 0.5},
                           Relation::LE, 9.0);
    const SparseRow &row = lp.constraint(0);
    EXPECT_EQ(row.nnz(), 2);
    EXPECT_DOUBLE_EQ(row.coeff(1), 2.5);
    EXPECT_DOUBLE_EQ(row.coeff(2), -0.5);
    EXPECT_DOUBLE_EQ(row.coeff(0), 0.0);
    // Indices come out sorted.
    ASSERT_EQ(row.index.size(), 2u);
    EXPECT_EQ(row.index[0], 1);
    EXPECT_EQ(row.index[1], 2);
}

TEST(Lp, SparseDuplicatesMatchDenseAdapter)
{
    // The accumulated sparse row must solve identically to the
    // densely summed equivalent.
    LpProblem sparse(2);
    sparse.setObjective(0, 1.0);
    sparse.setObjective(1, 1.0);
    sparse.addSparseConstraint({0, 0, 1}, {1.5, 1.5, 1.0},
                               Relation::GE, 6.0);

    LpProblem dense(2);
    dense.setObjective(0, 1.0);
    dense.setObjective(1, 1.0);
    dense.addConstraint({3.0, 1.0}, Relation::GE, 6.0);

    auto a = solveLp(sparse);
    auto b = solveLp(dense);
    ASSERT_TRUE(a.optimal());
    ASSERT_TRUE(b.optimal());
    EXPECT_NEAR(a.objective, b.objective, 1e-9);
}

TEST(Lp, DuplicatesCancellingToZeroAreInert)
{
    // +1 and -1 mentions of the same var cancel; the row reduces
    // to x1 >= 2 and must not constrain x0.
    LpProblem lp(2);
    lp.setObjective(0, 1.0);
    lp.setObjective(1, 1.0);
    lp.addSparseConstraint({0, 1, 0}, {1.0, 1.0, -1.0},
                           Relation::GE, 2.0);
    EXPECT_DOUBLE_EQ(lp.constraint(0).coeff(0), 0.0);
    auto sol = solveLp(lp);
    ASSERT_TRUE(sol.optimal());
    EXPECT_NEAR(sol.values[0], 0.0, 1e-9);
    EXPECT_NEAR(sol.values[1], 2.0, 1e-6);
}

TEST(Lp, PopConstraintRestoresProblem)
{
    LpProblem lp(1);
    lp.setObjective(0, 1.0);
    lp.addBound(0, Relation::GE, 3.0);
    lp.addBound(0, Relation::GE, 10.0);
    auto tight = solveLp(lp);
    ASSERT_TRUE(tight.optimal());
    EXPECT_NEAR(tight.objective, 10.0, 1e-6);
    lp.popConstraint();
    auto loose = solveLp(lp);
    ASSERT_TRUE(loose.optimal());
    EXPECT_NEAR(loose.objective, 3.0, 1e-6);
}

// ---- Warm starts ----

TEST(Lp, WarmStartMatchesColdAfterAddedBound)
{
    // Solve, append a bound that cuts off the optimum, re-solve
    // warm from the previous basis: the warm result must equal a
    // cold solve of the extended problem.
    LpProblem lp(3);
    for (int j = 0; j < 3; ++j)
        lp.setObjective(j, 1.0 + j);
    lp.addConstraint({1.0, 1.0, 1.0}, Relation::GE, 9.0);
    lp.addConstraint({1.0, 0.0, 0.0}, Relation::LE, 5.0);
    auto first = solveLp(lp);
    ASSERT_TRUE(first.optimal());
    // Cheapest var first: x0=5, x1=4 -> 1*5 + 2*4 = 13.
    EXPECT_NEAR(first.objective, 13.0, 1e-6);
    ASSERT_FALSE(first.basis.empty());

    lp.addBound(0, Relation::LE, 2.0);
    LpOptions warm;
    warm.warm_start = &first.basis;
    auto warmed = solveLp(lp, warm);
    auto cold = solveLp(lp);
    ASSERT_TRUE(warmed.optimal());
    ASSERT_TRUE(cold.optimal());
    EXPECT_NEAR(warmed.objective, cold.objective, 1e-6);
    for (int j = 0; j < 3; ++j)
        EXPECT_NEAR(warmed.values[j], cold.values[j], 1e-6);
}

TEST(Lp, WarmStartDetectsInfeasibleChild)
{
    LpProblem lp(2);
    lp.setObjective(0, 1.0);
    lp.setObjective(1, 1.0);
    lp.addConstraint({1.0, 1.0}, Relation::GE, 4.0);
    lp.addConstraint({1.0, 0.0}, Relation::LE, 3.0);
    lp.addConstraint({0.0, 1.0}, Relation::LE, 3.0);
    auto first = solveLp(lp);
    ASSERT_TRUE(first.optimal());

    // x0 <= 0 and x1 <= 3 cannot reach x0 + x1 >= 4.
    lp.addBound(0, Relation::LE, 0.0);
    lp.addBound(1, Relation::LE, 3.5);
    LpOptions warm;
    warm.warm_start = &first.basis;
    auto warmed = solveLp(lp, warm);
    EXPECT_EQ(warmed.status, solveLp(lp).status);
}

TEST(Lp, WarmStartArtificialRowCannotLeakInfeasibility)
{
    // Regression: a crafted warm basis that leaves an artificial
    // basic in a row with live real coefficients (x1 - x0 >= 0
    // here) must not let phase 2 drive the artificial positive and
    // report an infeasible point as Optimal. Cold optimum: x0 = 3
    // forces x1 = 3, objective 3.
    LpProblem lp(2);
    lp.setObjective(1, 1.0);
    lp.addSparseConstraint({1, 0}, {1.0, -1.0}, Relation::GE, 0.0);
    lp.addBound(0, Relation::GE, 3.0);

    SimplexBasis crafted;
    crafted.basic = {-1, 3}; // row 1's slack; row 0 uninformed.
    LpOptions warm;
    warm.warm_start = &crafted;
    auto warmed = solveLp(lp, warm);
    ASSERT_TRUE(warmed.optimal());
    EXPECT_NEAR(warmed.objective, 3.0, 1e-6);
    EXPECT_GE(warmed.values[1] - warmed.values[0], -1e-7);
}

TEST(Lp, WarmStartFromStaleBasisStillOptimal)
{
    // A basis from an unrelated (smaller) problem must not corrupt
    // the solve: install what fits, fall back where it does not.
    LpProblem small(2);
    small.setObjective(0, 1.0);
    small.setObjective(1, 1.0);
    small.addConstraint({1.0, 1.0}, Relation::GE, 2.0);
    auto sol_small = solveLp(small);
    ASSERT_TRUE(sol_small.optimal());

    LpProblem big(4);
    for (int j = 0; j < 4; ++j)
        big.setObjective(j, 1.0);
    big.addConstraint({1.0, 1.0, 0.0, 0.0}, Relation::GE, 2.0);
    big.addConstraint({0.0, 0.0, 1.0, 1.0}, Relation::GE, 6.0);
    big.addConstraint({0.0, 0.0, 1.0, 0.0}, Relation::EQ, 1.0);
    LpOptions warm;
    warm.warm_start = &sol_small.basis;
    auto warmed = solveLp(big, warm);
    auto cold = solveLp(big);
    ASSERT_TRUE(warmed.optimal());
    EXPECT_NEAR(warmed.objective, cold.objective, 1e-6);
}

TEST(Lp, Fig8fFormulation)
{
    // Paper Fig. 8(f): minimise delay01+delay12+delay02 s.t.
    // delay01 >= D0, delay12 >= D1, delay01+delay12 >= D0+D1,
    // delay02 >= D0. D0=40, D1=120.
    LpProblem lp(3);
    for (int j = 0; j < 3; ++j)
        lp.setObjective(j, 1.0);
    lp.addConstraint({1, 0, 0}, Relation::GE, 40.0);
    lp.addConstraint({0, 1, 0}, Relation::GE, 120.0);
    lp.addConstraint({1, 1, 0}, Relation::GE, 160.0);
    lp.addConstraint({0, 0, 1}, Relation::GE, 40.0);
    auto sol = solveLp(lp);
    ASSERT_TRUE(sol.optimal());
    EXPECT_NEAR(sol.objective, 200.0, 1e-6);
}

TEST(Lp, DegenerateTiesTerminate)
{
    // Many identical constraints: Bland's rule must not cycle.
    LpProblem lp(3);
    for (int j = 0; j < 3; ++j)
        lp.setObjective(j, 1.0);
    for (int i = 0; i < 20; ++i)
        lp.addConstraint({1.0, 1.0, 1.0}, Relation::GE, 10.0);
    auto sol = solveLp(lp);
    ASSERT_TRUE(sol.optimal());
    EXPECT_NEAR(sol.objective, 10.0, 1e-6);
}

// ---- FIFO-sizing edge cases (paper §5.3.4, Eq. 3-5) ----

TEST(Lp, InfeasibleFifoSizingReconvergence)
{
    // Reconvergent diamond: the short path's delay var must absorb
    // the long path's skew (delay02 >= D0+D1 = 160), but a resource
    // cap limits the same FIFO to 50 cycles of buffering. Eq. 4/5
    // then contradict the cap, and sizing must report infeasible
    // rather than emit an undersized (deadlock-prone) FIFO.
    LpProblem lp(3);
    for (int j = 0; j < 3; ++j)
        lp.setObjective(j, 1.0);
    lp.addConstraint({1.0, 0.0, 0.0}, Relation::GE, 40.0);
    lp.addConstraint({0.0, 1.0, 0.0}, Relation::GE, 120.0);
    lp.addConstraint({0.0, 0.0, 1.0}, Relation::GE, 160.0);
    lp.addConstraint({0.0, 0.0, 1.0}, Relation::LE, 50.0);
    auto sol = solveLp(lp);
    EXPECT_EQ(sol.status, LpStatus::Infeasible);
    EXPECT_FALSE(sol.optimal());
}

TEST(Lp, ZeroDepthChannelOptimal)
{
    // A perfectly rate-matched edge needs no skew buffering: the
    // delay lower bound is 0 and the minimiser must settle at
    // exactly 0 (a zero-depth channel), not report unbounded or
    // drift negative.
    LpProblem lp(2);
    lp.setObjective(0, 1.0);
    lp.setObjective(1, 1.0);
    lp.addConstraint({1.0, 0.0}, Relation::GE, 0.0);
    lp.addConstraint({0.0, 1.0}, Relation::GE, 25.0);
    auto sol = solveLp(lp);
    ASSERT_TRUE(sol.optimal());
    EXPECT_NEAR(sol.values[0], 0.0, 1e-9);
    EXPECT_NEAR(sol.values[1], 25.0, 1e-6);
    EXPECT_NEAR(sol.objective, 25.0, 1e-6);
}

TEST(Lp, AllZeroSkewSystemOptimalAtOrigin)
{
    // Degenerate instance where every path is already balanced:
    // all delay lower bounds are 0, so the optimum is the origin
    // with objective 0 — every channel may be elided.
    LpProblem lp(4);
    for (int j = 0; j < 4; ++j)
        lp.setObjective(j, 1.0);
    for (int j = 0; j < 4; ++j) {
        std::vector<double> row(4, 0.0);
        row[j] = 1.0;
        lp.addConstraint(row, Relation::GE, 0.0);
    }
    auto sol = solveLp(lp);
    ASSERT_TRUE(sol.optimal());
    EXPECT_NEAR(sol.objective, 0.0, 1e-9);
    for (double v : sol.values)
        EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(Lp, EqualityPinsChannelToZeroDepth)
{
    // A folded channel is pinned to zero delay via an equality while
    // a sibling edge still needs buffering; the pinned var must not
    // leak slack into the rest of the system.
    LpProblem lp(2);
    lp.setObjective(0, 1.0);
    lp.setObjective(1, 1.0);
    lp.addConstraint({1.0, 0.0}, Relation::EQ, 0.0);
    lp.addConstraint({1.0, 1.0}, Relation::GE, 30.0);
    auto sol = solveLp(lp);
    ASSERT_TRUE(sol.optimal());
    EXPECT_NEAR(sol.values[0], 0.0, 1e-9);
    EXPECT_NEAR(sol.values[1], 30.0, 1e-6);
}

// ---- Property sweep: random feasible GE systems ----

namespace {

uint64_t rng_state = 0x1234abcd;

uint64_t
nextRandom()
{
    rng_state ^= rng_state >> 12;
    rng_state ^= rng_state << 25;
    rng_state ^= rng_state >> 27;
    return rng_state * 0x2545f4914f6cdd1dull;
}

} // namespace

class LpRandomFeasible : public ::testing::TestWithParam<int>
{};

TEST_P(LpRandomFeasible, OptimalAndFeasible)
{
    rng_state = 0xc0ffee + GetParam();
    int n = 2 + nextRandom() % 12;
    int m = 1 + nextRandom() % 18;
    LpProblem lp(n);
    for (int j = 0; j < n; ++j)
        lp.setObjective(j, 1.0 + nextRandom() % 4);
    for (int i = 0; i < m; ++i) {
        std::vector<double> row(n, 0.0);
        int k = 1 + nextRandom() % n;
        for (int t = 0; t < k; ++t)
            row[nextRandom() % n] = 1.0;
        lp.addConstraint(row, Relation::GE,
                         static_cast<double>(nextRandom() % 100000));
    }
    auto sol = solveLp(lp);
    ASSERT_TRUE(sol.optimal());
    for (const auto &c : lp.constraints()) {
        double lhs = c.dot(sol.values);
        EXPECT_GE(lhs, c.rhs - 1e-5 * (1.0 + std::fabs(c.rhs)));
    }
    for (double v : sol.values)
        EXPECT_GE(v, -1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpRandomFeasible,
                         ::testing::Range(0, 40));
