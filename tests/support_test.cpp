/** @file Unit tests for the support substrate. */

#include <gtest/gtest.h>

#include "support/error.h"
#include "support/flat_index.h"
#include "support/logging.h"
#include "support/math_util.h"
#include "support/stopwatch.h"

using namespace streamtensor;

TEST(Error, FatalCarriesLocationAndMessage)
{
    try {
        ST_FATAL("bad config");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("bad config"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("support_test"),
                  std::string::npos);
    }
}

TEST(Error, PanicIsLogicError)
{
    EXPECT_THROW(ST_PANIC("internal"), PanicError);
    EXPECT_THROW(ST_PANIC("internal"), std::logic_error);
}

TEST(Error, AssertPassesAndFails)
{
    EXPECT_NO_THROW(ST_ASSERT(1 + 1 == 2, "math"));
    EXPECT_THROW(ST_ASSERT(1 + 1 == 3, "math"), PanicError);
}

TEST(Error, CheckThrowsFatal)
{
    EXPECT_NO_THROW(ST_CHECK(true, "ok"));
    EXPECT_THROW(ST_CHECK(false, "bad"), FatalError);
}

TEST(MathUtil, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 5), 2);
    EXPECT_EQ(ceilDiv(11, 5), 3);
    EXPECT_EQ(ceilDiv(0, 5), 0);
    EXPECT_EQ(ceilDiv(1, 1), 1);
}

TEST(MathUtil, AlignTo)
{
    EXPECT_EQ(alignTo(13, 8), 16);
    EXPECT_EQ(alignTo(16, 8), 16);
    EXPECT_EQ(alignTo(1, 64), 64);
}

TEST(MathUtil, IsPowerOf2)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(6));
    EXPECT_FALSE(isPowerOf2(-4));
}

TEST(MathUtil, Product)
{
    EXPECT_EQ(product({}), 1);
    EXPECT_EQ(product({4}), 4);
    EXPECT_EQ(product({2, 3, 4}), 24);
}

TEST(MathUtil, LargestDivisorUpTo)
{
    EXPECT_EQ(largestDivisorUpTo(64, 16), 16);
    EXPECT_EQ(largestDivisorUpTo(48, 32), 24);
    EXPECT_EQ(largestDivisorUpTo(7, 4), 1);
    EXPECT_EQ(largestDivisorUpTo(5, 5), 5);
}

TEST(Logging, LevelFiltering)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Silent);
    inform("not shown");
    warn("not shown");
    debug("not shown");
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(before);
}

TEST(FlatIndex, PositionsOfMapsIdsToTheirSlots)
{
    std::vector<int64_t> ids{42, 7, 1000, -3, 0};
    support::FlatIndex idx = support::FlatIndex::positionsOf(ids);
    for (size_t i = 0; i < ids.size(); ++i)
        EXPECT_EQ(idx.at(ids[i]), static_cast<int64_t>(i));
}

TEST(FlatIndex, PositionsOfEmptyListIsUsable)
{
    auto idx = support::FlatIndex::positionsOf({});
    (void)idx; // nothing to look up; construction must not throw
}

TEST(Logging, FormatFixedRendersStableDecimals)
{
    EXPECT_EQ(formatFixed(0.41724), "0.42");
    EXPECT_EQ(formatFixed(0.415), "0.41"); // nearest-even snprintf
    EXPECT_EQ(formatFixed(12.0), "12.00");
    EXPECT_EQ(formatFixed(-3.14159, 3), "-3.142");
    EXPECT_EQ(formatFixed(2.71828, 0), "3");
    EXPECT_EQ(formatFixed(1.5, -2), "2"); // clamped to 0 decimals
}

TEST(Stopwatch, MeasuresForwardTime)
{
    Stopwatch watch;
    double t0 = watch.elapsedSeconds();
    EXPECT_GE(t0, 0.0);
    double t1 = watch.elapsedSeconds();
    EXPECT_GE(t1, t0);
    watch.restart();
    EXPECT_LT(watch.elapsedSeconds(), 1.0);
}

// ---- Thread pool ----

#include <atomic>

#include "support/thread_pool.h"

TEST(ThreadPool, RunsEveryItemExactlyOnce)
{
    support::ThreadPool pool(4);
    constexpr int64_t kItems = 1000;
    std::vector<std::atomic<int>> hits(kItems);
    for (auto &h : hits)
        h.store(0);
    pool.run(kItems, [&](int64_t i) { hits[i].fetch_add(1); });
    for (int64_t i = 0; i < kItems; ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, NestedRunFromJobItemsExecutesInline)
{
    // A job item — whether claimed by a worker or by the
    // participating caller thread — may itself submit a run();
    // the nested call must execute inline rather than re-enter
    // the single-job pool (which would self-lock). Regression:
    // the caller-claimed-item case used to wedge the process.
    support::ThreadPool pool(4);
    std::atomic<int64_t> total{0};
    pool.run(8, [&](int64_t) {
        pool.run(16, [&](int64_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPool, PropagatesFirstException)
{
    support::ThreadPool pool(3);
    EXPECT_THROW(pool.run(64,
                          [&](int64_t i) {
                              if (i == 20)
                                  ST_FATAL("boom");
                          }),
                 FatalError);
    // The pool survives a failed job.
    std::atomic<int64_t> count{0};
    pool.run(10, [&](int64_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, SharedPoolIsUsableAndSmall)
{
    auto &pool = support::ThreadPool::shared();
    EXPECT_GE(pool.parallelism(), 1);
    EXPECT_LE(pool.parallelism(), 8);
    std::atomic<int64_t> count{0};
    pool.run(5, [&](int64_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 5);
}
