/** @file Unit tests for the support substrate. */

#include <gtest/gtest.h>

#include "support/error.h"
#include "support/logging.h"
#include "support/math_util.h"
#include "support/stopwatch.h"

using namespace streamtensor;

TEST(Error, FatalCarriesLocationAndMessage)
{
    try {
        ST_FATAL("bad config");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("bad config"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("support_test"),
                  std::string::npos);
    }
}

TEST(Error, PanicIsLogicError)
{
    EXPECT_THROW(ST_PANIC("internal"), PanicError);
    EXPECT_THROW(ST_PANIC("internal"), std::logic_error);
}

TEST(Error, AssertPassesAndFails)
{
    EXPECT_NO_THROW(ST_ASSERT(1 + 1 == 2, "math"));
    EXPECT_THROW(ST_ASSERT(1 + 1 == 3, "math"), PanicError);
}

TEST(Error, CheckThrowsFatal)
{
    EXPECT_NO_THROW(ST_CHECK(true, "ok"));
    EXPECT_THROW(ST_CHECK(false, "bad"), FatalError);
}

TEST(MathUtil, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 5), 2);
    EXPECT_EQ(ceilDiv(11, 5), 3);
    EXPECT_EQ(ceilDiv(0, 5), 0);
    EXPECT_EQ(ceilDiv(1, 1), 1);
}

TEST(MathUtil, AlignTo)
{
    EXPECT_EQ(alignTo(13, 8), 16);
    EXPECT_EQ(alignTo(16, 8), 16);
    EXPECT_EQ(alignTo(1, 64), 64);
}

TEST(MathUtil, IsPowerOf2)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(6));
    EXPECT_FALSE(isPowerOf2(-4));
}

TEST(MathUtil, Product)
{
    EXPECT_EQ(product({}), 1);
    EXPECT_EQ(product({4}), 4);
    EXPECT_EQ(product({2, 3, 4}), 24);
}

TEST(MathUtil, LargestDivisorUpTo)
{
    EXPECT_EQ(largestDivisorUpTo(64, 16), 16);
    EXPECT_EQ(largestDivisorUpTo(48, 32), 24);
    EXPECT_EQ(largestDivisorUpTo(7, 4), 1);
    EXPECT_EQ(largestDivisorUpTo(5, 5), 5);
}

TEST(Logging, LevelFiltering)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Silent);
    inform("not shown");
    warn("not shown");
    debug("not shown");
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(before);
}

TEST(Stopwatch, MeasuresForwardTime)
{
    Stopwatch watch;
    double t0 = watch.elapsedSeconds();
    EXPECT_GE(t0, 0.0);
    double t1 = watch.elapsedSeconds();
    EXPECT_GE(t1, t0);
    watch.restart();
    EXPECT_LT(watch.elapsedSeconds(), 1.0);
}
