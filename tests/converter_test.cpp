/** @file Unit + property tests for Algorithm 1 (converter
 *  generation, paper §5.2.1). */

#include <gtest/gtest.h>

#include "dse/converter_gen.h"
#include "support/error.h"
#include "support/math_util.h"

using namespace streamtensor;
using ir::AffineExpr;
using ir::AffineMap;
using ir::DataType;
using ir::ITensorType;
using ir::TensorType;

namespace {

ITensorType
figure5b()
{
    return ITensorType(DataType::F32, {4, 2}, {4, 2}, {2, 4},
                       AffineMap(2, {AffineExpr::dim(1),
                                     AffineExpr::dim(0)}));
}

ITensorType
figure5c()
{
    return ITensorType(DataType::F32, {4, 2}, {4, 2, 2}, {2, 1, 4},
                       AffineMap(3, {AffineExpr::dim(2),
                                     AffineExpr::dim(0)}));
}

} // namespace

TEST(Algorithm1, Figure5Produces8x2Buffer)
{
    dse::ConverterSpec spec =
        dse::inferConverter(figure5b(), figure5c());
    EXPECT_EQ(spec.buffer_shape, (std::vector<int64_t>{8, 2}));
    EXPECT_EQ(spec.before_loop, 1);
    EXPECT_EQ(spec.reuse_factor, 4);
    // Two 4x2 tiles, ping-pong doubled: 2 * 8 * 2 * 4 bytes.
    EXPECT_EQ(spec.bufferBytes(), 2 * 8 * 2 * 4);
}

TEST(Algorithm1, IdenticalTypesReduceEverything)
{
    ITensorType t = figure5b();
    dse::ConverterSpec spec = dse::inferConverter(t, t);
    // All dims reducible: buffer shrinks to one element tile.
    EXPECT_EQ(spec.buffer_shape, (std::vector<int64_t>{4, 2}));
    EXPECT_EQ(spec.before_loop, 2);
}

TEST(Algorithm1, CostZeroOnlyForExactMatch)
{
    EXPECT_EQ(dse::converterCostBytes(figure5b(), figure5b()), 0);
    EXPECT_GT(dse::converterCostBytes(figure5b(), figure5c()), 0);
}

TEST(Algorithm1, WorstCaseBuffersWholeTensor)
{
    // Row-major vs column-major tiles share no outer loop: the
    // whole tensor must be buffered (paper: the worst case).
    TensorType tensor(DataType::I8, {64, 64});
    auto row = ir::makeTiledITensor(tensor, {16, 16});
    auto col = ir::makePermutedITensor(tensor, {16, 16}, {1, 0});
    dse::ConverterSpec spec = dse::inferConverter(row, col);
    EXPECT_EQ(spec.buffer_shape, (std::vector<int64_t>{64, 64}));
    EXPECT_EQ(spec.before_loop, 0);
    EXPECT_EQ(spec.reuse_factor, 1);
    EXPECT_EQ(spec.bufferBytes(), 2 * 64 * 64);
}

TEST(Algorithm1, ElementShapeMismatchNotReducible)
{
    TensorType tensor(DataType::I8, {64, 64});
    auto a = ir::makeTiledITensor(tensor, {16, 16});
    auto b = ir::makeTiledITensor(tensor, {8, 8});
    dse::ConverterSpec spec = dse::inferConverter(a, b);
    // Different tile sizes: nothing shared.
    EXPECT_EQ(spec.buffer_shape, (std::vector<int64_t>{64, 64}));
}

TEST(Algorithm1, SharedPrefixReducesLeadingDim)
{
    // Producer and consumer both iterate rows outermost with the
    // same trip/step; the consumer revisits columns.
    TensorType tensor(DataType::I8, {64, 64});
    auto producer = ir::makeTiledITensor(tensor, {16, 16});
    // Consumer: loops (row, revisit, col).
    ITensorType consumer(
        DataType::I8, {16, 16}, {4, 2, 4}, {16, 1, 16},
        AffineMap(3, {AffineExpr::dim(0), AffineExpr::dim(2)}));
    dse::ConverterSpec spec =
        dse::inferConverter(producer, consumer);
    // Row dim shared (pos 0 both), col dim bound to pos 1 vs 2:
    // buffer one row stripe of tiles.
    EXPECT_EQ(spec.buffer_shape, (std::vector<int64_t>{16, 64}));
    EXPECT_EQ(spec.before_loop, 1);
    EXPECT_EQ(spec.reuse_factor, 4);
}

TEST(Algorithm1, PrefixFilterDropsOrphanSharedLoops)
{
    // Data dim 1 shares loop position 1, but loop 0 is NOT shared
    // (different data dims bound): the shared loop has an
    // unshared parent and must be dropped (Algorithm 1 lines
    // 12-14).
    TensorType tensor(DataType::I8, {32, 32});
    ITensorType src(DataType::I8, {8, 8}, {4, 4}, {8, 8},
                    AffineMap::identity(2));
    ITensorType res(DataType::I8, {8, 8}, {4, 4}, {8, 8},
                    AffineMap(2, {AffineExpr::dim(1),
                                  AffineExpr::dim(0)}));
    dse::ConverterSpec spec = dse::inferConverter(src, res);
    EXPECT_EQ(spec.before_loop, 0);
    EXPECT_EQ(spec.buffer_shape, (std::vector<int64_t>{32, 32}));
}

TEST(Algorithm1, RejectsDifferentDataSpaces)
{
    TensorType a(DataType::I8, {64, 64});
    TensorType b(DataType::I8, {32, 32});
    EXPECT_THROW(
        dse::inferConverter(ir::makeTiledITensor(a, {16, 16}),
                            ir::makeTiledITensor(b, {16, 16})),
        FatalError);
}

TEST(Algorithm1, BufferTypeIsPingPong)
{
    dse::ConverterSpec spec =
        dse::inferConverter(figure5b(), figure5c());
    ir::MemRefType type = spec.bufferType();
    EXPECT_TRUE(type.isPingPong());
    EXPECT_EQ(type.shape(), spec.buffer_shape);
}

// ---- Property sweep over random tilings/permutations ----

class ConverterProperty : public ::testing::TestWithParam<int>
{};

TEST_P(ConverterProperty, BufferBoundedAndConsistent)
{
    uint64_t s = 0xdead + GetParam();
    auto rnd = [&]() {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        return s * 0x2545f4914f6cdd1dull;
    };
    std::vector<int64_t> tiles{4, 8, 16};
    int64_t rows = 32 << (rnd() % 2), cols = 32 << (rnd() % 2);
    TensorType tensor(DataType::I8, {rows, cols});
    auto t1 = tiles[rnd() % tiles.size()];
    auto t2 = tiles[rnd() % tiles.size()];
    std::vector<int64_t> perm =
        rnd() % 2 ? std::vector<int64_t>{0, 1}
                  : std::vector<int64_t>{1, 0};
    auto src = ir::makeTiledITensor(tensor, {t1, t1});
    auto res = ir::makePermutedITensor(tensor, {t1, t1}, perm);
    (void)t2;

    dse::ConverterSpec spec = dse::inferConverter(src, res);
    // Buffer never exceeds the data space and never shrinks below
    // one element tile.
    int64_t buf = product(spec.buffer_shape);
    EXPECT_LE(buf, rows * cols);
    EXPECT_GE(buf, t1 * t1);
    // Reuse factor times per-dim reduction stays consistent with
    // the shared prefix.
    EXPECT_GE(spec.reuse_factor, 1);
    if (spec.before_loop == 0) {
        EXPECT_EQ(spec.reuse_factor, 1);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConverterProperty,
                         ::testing::Range(0, 24));
