/** @file Property/invariant suite for RequestQueue + Scheduler:
 *  each seed derives a distinct (trace, scheduler-config) pair and
 *  runs it under BOTH KV admission policies, checking structural
 *  invariants that must hold for *every* run — conservation, FIFO
 *  fairness within a priority class, batch and KV bounds, metrics
 *  consistency against per-request sums — plus the policy-specific
 *  ones: contiguous no-preemption execution under Reserve, and
 *  page conservation / preemption bookkeeping / prefix-sharing
 *  occupancy recomputation under Paged. */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "models/bucketing.h"
#include "serving/cost_model.h"
#include "serving/scheduler.h"
#include "serving/trace.h"

using namespace streamtensor;
using serving::Request;

namespace {

struct SeededRun
{
    std::vector<Request> trace;
    serving::SchedulerOptions options;
    serving::ServingResult result;
};

/** Derive a varied but fully seed-determined scenario. Paged and
 *  Reserve runs share the trace and every other knob. */
SeededRun
runSeed(uint64_t seed, serving::KvAdmission admission)
{
    serving::TraceOptions trace_options;
    trace_options.seed = seed;
    trace_options.num_requests = 24 + static_cast<int64_t>(seed % 25);
    trace_options.mean_interarrival_ms =
        1.0 + static_cast<double>(seed % 7);
    trace_options.min_input_len = 4;
    trace_options.max_input_len = 120;
    trace_options.min_output_len = 1;
    trace_options.max_output_len = 24;
    trace_options.num_priorities = 1 + static_cast<int>(seed % 3);
    if (seed % 3 == 0) {
        // A third of the seeds model shared system prompts so the
        // paged run exercises prefix sharing.
        trace_options.num_prefix_groups =
            1 + static_cast<int64_t>(seed % 2);
        trace_options.shared_prefix_len =
            16 * (1 + static_cast<int64_t>((seed / 3) % 3));
    }

    SeededRun run;
    run.trace = seed % 2 == 0 ? serving::poissonTrace(trace_options)
                              : serving::burstyTrace(trace_options);

    run.options.admission = admission;
    run.options.max_batch = 1 + static_cast<int64_t>(seed % 7);
    run.options.kv_budget_tokens =
        192 + 64 * static_cast<int64_t>(seed % 13);
    run.options.max_queue_depth =
        seed % 4 == 0 ? 6 + static_cast<int64_t>(seed % 9) : 0;
    run.options.record_steps = true;

    serving::AnalyticCostModel cost;
    serving::Scheduler scheduler(run.options, cost);
    run.result = scheduler.run(run.trace);
    return run;
}

/** Reserve-mode reservation: the final bucketed context (the last
 *  decode step attends input + output - 1 tokens). */
int64_t
reservedKv(const Request &r, const models::BucketPolicy &policy)
{
    return models::bucketLen(r.input_len + r.output_len - 1,
                             policy);
}

int64_t
pagesFor(int64_t tokens, int64_t page_tokens)
{
    return (tokens + page_tokens - 1) / page_tokens;
}

std::vector<int64_t>
stepMembers(const serving::StepRecord &s)
{
    std::vector<int64_t> ids = s.prefill_ids;
    ids.insert(ids.end(), s.decode_ids.begin(),
               s.decode_ids.end());
    return ids;
}

class SchedulerProperty : public ::testing::TestWithParam<uint64_t>
{};

void
checkInvariants(const SeededRun &run)
{
    const bool paged =
        run.options.admission == serving::KvAdmission::Paged;
    const auto &result = run.result;
    const auto &metrics = result.metrics;
    ASSERT_FALSE(result.hit_step_limit);
    ASSERT_EQ(metrics.in_flight, 0);

    std::map<int64_t, Request> by_id;
    for (const auto &r : run.trace)
        by_id[r.id] = r;

    // --- Conservation: every request completes or is rejected,
    // exactly once.
    std::set<int64_t> completed_ids, rejected_ids;
    for (const auto &r : metrics.requests)
        EXPECT_TRUE(completed_ids.insert(r.id).second)
            << "request completed twice: " << r.id;
    for (const auto &r : result.rejected)
        EXPECT_TRUE(rejected_ids.insert(r.id).second)
            << "request rejected twice: " << r.id;
    EXPECT_EQ(completed_ids.size() + rejected_ids.size(),
              run.trace.size());
    for (int64_t id : completed_ids)
        EXPECT_EQ(rejected_ids.count(id), 0u)
            << "request both completed and rejected: " << id;
    for (const auto &r : run.trace)
        EXPECT_TRUE(completed_ids.count(r.id) ||
                    rejected_ids.count(r.id))
            << "request lost: " << r.id;

    // Rejections land in (arrival, id) order.
    for (size_t i = 1; i < result.rejected.size(); ++i) {
        const auto &a = result.rejected[i - 1];
        const auto &b = result.rejected[i];
        EXPECT_TRUE(a.arrival_ms < b.arrival_ms ||
                    (a.arrival_ms == b.arrival_ms && a.id < b.id))
            << "rejection order violated: " << a.id << " before "
            << b.id;
    }

    // --- Per-step bounds and bookkeeping.
    const int64_t page_tokens = run.options.page_tokens;
    const int64_t pool_pages =
        paged ? run.options.kv_budget_tokens / page_tokens : 0;
    std::map<int64_t, std::vector<size_t>> appearances;
    std::map<int64_t, size_t> first_prefill_step;
    std::set<int64_t> ever_preempted;
    double recomputed_busy = 0.0;
    int64_t recomputed_batched = 0;
    int64_t recomputed_preemptions = 0;
    int64_t recomputed_page_sum = 0;
    int64_t max_pages_active = 0;
    for (size_t i = 0; i < result.steps.size(); ++i) {
        const auto &s = result.steps[i];
        int64_t batch =
            static_cast<int64_t>(s.prefill_ids.size()) +
            static_cast<int64_t>(s.decode_ids.size());
        EXPECT_GE(batch, 1);
        EXPECT_LE(batch, run.options.max_batch);
        EXPECT_GT(s.step_ms, 0.0);
        EXPECT_LE(s.queue_depth, metrics.max_queue_depth);
        if (i > 0) {
            EXPECT_GE(s.start_ms, result.steps[i - 1].start_ms +
                                      result.steps[i - 1].step_ms -
                                      1e-12);
        }

        // Preemption bookkeeping: a victim ran the previous step,
        // does not run this one, and only preempted sequences may
        // ever re-run a prefill.
        if (!paged) {
            EXPECT_TRUE(s.preempted_ids.empty());
        }
        for (int64_t id : s.preempted_ids) {
            ever_preempted.insert(id);
            ++recomputed_preemptions;
            ASSERT_GT(i, 0u);
            auto prev = stepMembers(result.steps[i - 1]);
            EXPECT_NE(std::find(prev.begin(), prev.end(), id),
                      prev.end())
                << "victim " << id << " was not resident";
            auto cur = stepMembers(s);
            EXPECT_EQ(std::find(cur.begin(), cur.end(), id),
                      cur.end())
                << "victim " << id << " still resident";
        }
        for (int64_t id : s.prefill_ids) {
            auto [it, inserted] =
                first_prefill_step.emplace(id, i);
            (void)it;
            if (!inserted) {
                EXPECT_TRUE(ever_preempted.count(id))
                    << "request re-prefilled without a "
                       "preemption: "
                    << id;
            }
        }

        // KV occupancy, recomputed from the recorded membership
        // and each member's progress (appearances so far =
        // generated tokens).
        if (paged) {
            // Physical pages: each member holds pagesFor(ctx)
            // pages of which floor(prefix_len / page) are shared
            // prefix pages, counted once per prefix group.
            int64_t priv = 0;
            std::map<int64_t, int64_t> group_shared;
            for (int64_t id : stepMembers(s)) {
                const Request &r = by_id.at(id);
                int64_t g = static_cast<int64_t>(
                    appearances[id].size());
                int64_t ctx = r.input_len + g;
                int64_t held = pagesFor(ctx, page_tokens);
                int64_t shared =
                    r.prefix_id
                        ? r.prefix_len / page_tokens
                        : 0;
                priv += held - shared;
                if (r.prefix_id) {
                    auto &best = group_shared[r.prefix_id];
                    best = std::max(best, shared);
                }
            }
            int64_t shared_total = 0;
            for (const auto &[gid, pages] : group_shared) {
                (void)gid;
                shared_total += pages;
            }
            EXPECT_EQ(s.pages_active, priv + shared_total)
                << "active pages drifted at step " << i;
            EXPECT_EQ(s.kv_reserved,
                      s.pages_active * page_tokens);
            EXPECT_EQ(s.pages_active + s.pages_cached +
                          s.pages_free,
                      pool_pages)
                << "page conservation violated at step " << i;
            EXPECT_LE(s.pages_active, pool_pages);
            recomputed_page_sum += s.pages_active;
            max_pages_active =
                std::max(max_pages_active, s.pages_active);
        } else {
            int64_t kv = 0;
            for (int64_t id : stepMembers(s))
                kv += reservedKv(by_id.at(id),
                                 run.options.buckets);
            EXPECT_EQ(kv, s.kv_reserved);
            EXPECT_LE(kv, run.options.kv_budget_tokens);
        }

        for (int64_t id : stepMembers(s))
            appearances[id].push_back(i);
        recomputed_busy += s.step_ms;
        recomputed_batched += batch;
    }

    // --- FIFO fairness within each priority class: *first*
    // prefill order follows (arrival, id) order. (Strict
    // head-of-line admission plus front-of-class readmission keep
    // this true across KV stalls and preemptions.)
    for (const auto &[id_a, step_a] : first_prefill_step) {
        for (const auto &[id_b, step_b] : first_prefill_step) {
            const Request &a = by_id.at(id_a);
            const Request &b = by_id.at(id_b);
            if (a.priority != b.priority)
                continue;
            bool a_earlier =
                a.arrival_ms < b.arrival_ms ||
                (a.arrival_ms == b.arrival_ms && a.id < b.id);
            if (a_earlier) {
                EXPECT_LE(step_a, step_b)
                    << "FIFO violated in class " << a.priority
                    << ": " << id_a << " vs " << id_b;
            }
        }
    }

    // --- Every completed request runs exactly output_len steps
    // (each resident step advances one token, recompute prefills
    // included — preemption costs time, never tokens). Under
    // Reserve those steps are consecutive: no preemption.
    for (int64_t id : completed_ids) {
        const Request &r = by_id.at(id);
        const auto &steps = appearances.at(id);
        ASSERT_EQ(steps.size(),
                  static_cast<size_t>(r.output_len))
            << "token count drifted for request " << id;
        if (!paged) {
            for (size_t i = 1; i < steps.size(); ++i)
                EXPECT_EQ(steps[i], steps[i - 1] + 1)
                    << "request " << id << " paused mid-flight";
        }
    }
    // Rejected requests never ran.
    for (int64_t id : rejected_ids)
        EXPECT_EQ(appearances.count(id), 0u);

    // --- Metrics totals equal per-request / per-step sums.
    EXPECT_EQ(metrics.completed,
              static_cast<int64_t>(metrics.requests.size()));
    EXPECT_EQ(metrics.rejected_queue_full +
                  metrics.rejected_too_long,
              static_cast<int64_t>(result.rejected.size()));
    int64_t token_sum = 0;
    int64_t preemption_sum = 0;
    for (const auto &r : metrics.requests) {
        token_sum += r.output_len;
        preemption_sum += r.preemptions;
        EXPECT_GE(r.ttftMs(), 0.0);
        EXPECT_GE(r.latencyMs(), r.ttftMs());
        EXPECT_EQ(r.preemptions > 0,
                  ever_preempted.count(r.id) > 0);
    }
    EXPECT_EQ(metrics.total_output_tokens, token_sum);
    EXPECT_EQ(metrics.steps,
              static_cast<int64_t>(result.steps.size()));
    EXPECT_DOUBLE_EQ(metrics.busy_ms, recomputed_busy);
    EXPECT_EQ(metrics.total_batched_seqs, recomputed_batched);
    EXPECT_EQ(metrics.preemptions, recomputed_preemptions);
    // Drained run: every preemption belongs to a completed
    // request.
    EXPECT_EQ(metrics.preemptions, preemption_sum);
    if (paged) {
        EXPECT_EQ(metrics.pool_pages, pool_pages);
        EXPECT_EQ(metrics.page_step_sum, recomputed_page_sum);
        EXPECT_GE(metrics.peak_pages_active, max_pages_active);
        EXPECT_LE(metrics.peak_pages_active, pool_pages);
        EXPECT_GE(metrics.pageUtilization(), 0.0);
        EXPECT_LE(metrics.pageUtilization(), 1.0);
        EXPECT_GE(metrics.prefixHitRate(), 0.0);
        EXPECT_LE(metrics.prefixHitRate(), 1.0);
        bool has_prefixes = false;
        for (const auto &r : run.trace)
            has_prefixes |= r.prefix_id != 0;
        if (!has_prefixes) {
            EXPECT_EQ(metrics.prefix_hit_pages, 0);
            EXPECT_EQ(metrics.prefix_miss_pages, 0);
        }
    } else {
        EXPECT_EQ(metrics.preemptions, 0);
        EXPECT_EQ(metrics.pool_pages, 0);
        EXPECT_EQ(metrics.prefix_hit_pages, 0);
        EXPECT_EQ(metrics.page_step_sum, 0);
    }
    if (!result.steps.empty()) {
        const auto &last = result.steps.back();
        EXPECT_DOUBLE_EQ(metrics.makespan_ms,
                         last.start_ms + last.step_ms);
    }
    // Completion order is chronological.
    for (size_t i = 1; i < metrics.requests.size(); ++i)
        EXPECT_GE(metrics.requests[i].finish_ms,
                  metrics.requests[i - 1].finish_ms);
    // Every finish/first-token lands exactly on a step boundary.
    std::set<double> boundaries;
    for (const auto &s : result.steps)
        boundaries.insert(s.start_ms + s.step_ms);
    for (const auto &r : metrics.requests) {
        EXPECT_EQ(boundaries.count(r.first_token_ms), 1u);
        EXPECT_EQ(boundaries.count(r.finish_ms), 1u);
    }
}

} // namespace

TEST_P(SchedulerProperty, InvariantsHoldPaged)
{
    SeededRun run =
        runSeed(GetParam(), serving::KvAdmission::Paged);
    checkInvariants(run);

    // The paged schedule replays bit-identically.
    SeededRun again =
        runSeed(GetParam(), serving::KvAdmission::Paged);
    ASSERT_EQ(again.result.steps.size(),
              run.result.steps.size());
    for (size_t i = 0; i < run.result.steps.size(); ++i) {
        EXPECT_EQ(again.result.steps[i].prefill_ids,
                  run.result.steps[i].prefill_ids);
        EXPECT_EQ(again.result.steps[i].decode_ids,
                  run.result.steps[i].decode_ids);
        EXPECT_EQ(again.result.steps[i].preempted_ids,
                  run.result.steps[i].preempted_ids);
        EXPECT_EQ(again.result.steps[i].pages_active,
                  run.result.steps[i].pages_active);
        EXPECT_DOUBLE_EQ(again.result.steps[i].start_ms,
                         run.result.steps[i].start_ms);
    }
}

TEST_P(SchedulerProperty, InvariantsHoldReserve)
{
    SeededRun run =
        runSeed(GetParam(), serving::KvAdmission::Reserve);
    checkInvariants(run);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty,
                         ::testing::Range<uint64_t>(0, 100));

// The 100 seeds must actually exercise the interesting paged
// machinery somewhere, or the invariants above are vacuous.
TEST(SchedulerPropertyCoverage, SeedsExercisePreemptionAndSharing)
{
    int64_t preemptions = 0;
    int64_t prefix_hits = 0;
    for (uint64_t seed = 0; seed < 100; ++seed) {
        SeededRun run =
            runSeed(seed, serving::KvAdmission::Paged);
        preemptions += run.result.metrics.preemptions;
        prefix_hits += run.result.metrics.prefix_hit_pages;
    }
    EXPECT_GT(preemptions, 0);
    EXPECT_GT(prefix_hits, 0);
}
