/** @file Property/invariant suite for RequestQueue + Scheduler:
 *  each seed derives a distinct (trace, scheduler-config) pair and
 *  checks structural invariants that must hold for *every* run —
 *  conservation, FIFO fairness within a priority class, batch and
 *  KV-budget bounds, contiguous per-request execution, and
 *  metrics-total consistency against per-request sums. */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "models/bucketing.h"
#include "serving/cost_model.h"
#include "serving/scheduler.h"
#include "serving/trace.h"

using namespace streamtensor;
using serving::Request;

namespace {

struct SeededRun
{
    std::vector<Request> trace;
    serving::SchedulerOptions options;
    serving::ServingResult result;
};

/** Derive a varied but fully seed-determined scenario. */
SeededRun
runSeed(uint64_t seed)
{
    serving::TraceOptions trace_options;
    trace_options.seed = seed;
    trace_options.num_requests = 24 + static_cast<int64_t>(seed % 25);
    trace_options.mean_interarrival_ms =
        1.0 + static_cast<double>(seed % 7);
    trace_options.min_input_len = 4;
    trace_options.max_input_len = 120;
    trace_options.min_output_len = 1;
    trace_options.max_output_len = 24;
    trace_options.num_priorities = 1 + static_cast<int>(seed % 3);

    SeededRun run;
    run.trace = seed % 2 == 0 ? serving::poissonTrace(trace_options)
                              : serving::burstyTrace(trace_options);

    run.options.max_batch = 1 + static_cast<int64_t>(seed % 7);
    run.options.kv_budget_tokens =
        192 + 64 * static_cast<int64_t>(seed % 13);
    run.options.max_queue_depth =
        seed % 4 == 0 ? 6 + static_cast<int64_t>(seed % 9) : 0;
    run.options.record_steps = true;

    serving::AnalyticCostModel cost;
    serving::Scheduler scheduler(run.options, cost);
    run.result = scheduler.run(run.trace);
    return run;
}

int64_t
reservedKv(const Request &r, const models::BucketPolicy &policy)
{
    return models::bucketLen(r.input_len + r.output_len, policy);
}

class SchedulerProperty : public ::testing::TestWithParam<uint64_t>
{};

} // namespace

TEST_P(SchedulerProperty, InvariantsHold)
{
    SeededRun run = runSeed(GetParam());
    const auto &result = run.result;
    const auto &metrics = result.metrics;
    ASSERT_FALSE(result.hit_step_limit);

    std::map<int64_t, Request> by_id;
    for (const auto &r : run.trace)
        by_id[r.id] = r;

    // --- Conservation: every request completes or is rejected,
    // exactly once.
    std::set<int64_t> completed_ids, rejected_ids;
    for (const auto &r : metrics.requests)
        EXPECT_TRUE(completed_ids.insert(r.id).second)
            << "request completed twice: " << r.id;
    for (const auto &r : result.rejected)
        EXPECT_TRUE(rejected_ids.insert(r.id).second)
            << "request rejected twice: " << r.id;
    EXPECT_EQ(completed_ids.size() + rejected_ids.size(),
              run.trace.size());
    for (int64_t id : completed_ids)
        EXPECT_EQ(rejected_ids.count(id), 0u)
            << "request both completed and rejected: " << id;
    for (const auto &r : run.trace)
        EXPECT_TRUE(completed_ids.count(r.id) ||
                    rejected_ids.count(r.id))
            << "request lost: " << r.id;

    // --- Per-step bounds and bookkeeping.
    std::map<int64_t, std::vector<size_t>> appearances;
    std::map<int64_t, size_t> prefill_step;
    double recomputed_busy = 0.0;
    int64_t recomputed_batched = 0;
    for (size_t i = 0; i < result.steps.size(); ++i) {
        const auto &s = result.steps[i];
        int64_t batch =
            static_cast<int64_t>(s.prefill_ids.size()) +
            static_cast<int64_t>(s.decode_ids.size());
        EXPECT_GE(batch, 1);
        EXPECT_LE(batch, run.options.max_batch);
        EXPECT_GT(s.step_ms, 0.0);
        EXPECT_LE(s.queue_depth, metrics.max_queue_depth);
        if (i > 0) {
            EXPECT_GE(s.start_ms, result.steps[i - 1].start_ms +
                                      result.steps[i - 1].step_ms -
                                      1e-12);
        }

        // KV bound, recomputed from the recorded membership.
        int64_t kv = 0;
        for (int64_t id : s.prefill_ids) {
            kv += reservedKv(by_id.at(id), run.options.buckets);
            EXPECT_TRUE(prefill_step.emplace(id, i).second)
                << "request prefilled twice: " << id;
        }
        for (int64_t id : s.decode_ids)
            kv += reservedKv(by_id.at(id), run.options.buckets);
        EXPECT_EQ(kv, s.kv_reserved);
        EXPECT_LE(kv, run.options.kv_budget_tokens);

        for (int64_t id : s.prefill_ids)
            appearances[id].push_back(i);
        for (int64_t id : s.decode_ids)
            appearances[id].push_back(i);
        recomputed_busy += s.step_ms;
        recomputed_batched += batch;
    }

    // --- FIFO fairness within each priority class: prefill order
    // follows (arrival, id) order. (Strict head-of-line admission
    // also makes this hold across KV stalls.)
    for (const auto &[id_a, step_a] : prefill_step) {
        for (const auto &[id_b, step_b] : prefill_step) {
            const Request &a = by_id.at(id_a);
            const Request &b = by_id.at(id_b);
            if (a.priority != b.priority)
                continue;
            bool a_earlier =
                a.arrival_ms < b.arrival_ms ||
                (a.arrival_ms == b.arrival_ms && a.id < b.id);
            if (a_earlier) {
                EXPECT_LE(step_a, step_b)
                    << "FIFO violated in class " << a.priority
                    << ": " << id_a << " vs " << id_b;
            }
        }
    }

    // --- No preemption: each completed request runs its prefill
    // plus output_len - 1 decodes in consecutive steps.
    for (int64_t id : completed_ids) {
        const Request &r = by_id.at(id);
        const auto &steps = appearances.at(id);
        ASSERT_EQ(steps.size(),
                  static_cast<size_t>(r.output_len));
        for (size_t i = 1; i < steps.size(); ++i)
            EXPECT_EQ(steps[i], steps[i - 1] + 1)
                << "request " << id << " paused mid-flight";
    }
    // Rejected requests never ran.
    for (int64_t id : rejected_ids)
        EXPECT_EQ(appearances.count(id), 0u);

    // --- Metrics totals equal per-request / per-step sums.
    EXPECT_EQ(metrics.completed,
              static_cast<int64_t>(metrics.requests.size()));
    EXPECT_EQ(metrics.rejected_queue_full +
                  metrics.rejected_too_long,
              static_cast<int64_t>(result.rejected.size()));
    int64_t token_sum = 0;
    for (const auto &r : metrics.requests) {
        token_sum += r.output_len;
        EXPECT_GE(r.ttftMs(), 0.0);
        EXPECT_GE(r.latencyMs(), r.ttftMs());
    }
    EXPECT_EQ(metrics.total_output_tokens, token_sum);
    EXPECT_EQ(metrics.steps,
              static_cast<int64_t>(result.steps.size()));
    EXPECT_DOUBLE_EQ(metrics.busy_ms, recomputed_busy);
    EXPECT_EQ(metrics.total_batched_seqs, recomputed_batched);
    if (!result.steps.empty()) {
        const auto &last = result.steps.back();
        EXPECT_DOUBLE_EQ(metrics.makespan_ms,
                         last.start_ms + last.step_ms);
    }
    // Completion order is chronological.
    for (size_t i = 1; i < metrics.requests.size(); ++i)
        EXPECT_GE(metrics.requests[i].finish_ms,
                  metrics.requests[i - 1].finish_ms);
    // Every finish/first-token lands exactly on a step boundary.
    std::set<double> boundaries;
    for (const auto &s : result.steps)
        boundaries.insert(s.start_ms + s.step_ms);
    for (const auto &r : metrics.requests) {
        EXPECT_EQ(boundaries.count(r.first_token_ms), 1u);
        EXPECT_EQ(boundaries.count(r.finish_ms), 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty,
                         ::testing::Range<uint64_t>(0, 100));
