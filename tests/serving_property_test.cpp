/** @file Property/invariant suite for RequestQueue + Scheduler:
 *  each seed derives a distinct (trace, scheduler-config) pair and
 *  runs it under BOTH KV admission policies, checking structural
 *  invariants that must hold for *every* run — conservation, FIFO
 *  fairness within a priority class, batch and KV bounds, metrics
 *  consistency against per-request sums — plus the policy-specific
 *  ones: contiguous no-preemption execution under Reserve, and
 *  page conservation / preemption bookkeeping / prefix-sharing
 *  occupancy recomputation under Paged. */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <random>
#include <set>

#include "models/bucketing.h"
#include "serving/cost_model.h"
#include "serving/fleet.h"
#include "serving/scheduler.h"
#include "serving/trace.h"

using namespace streamtensor;
using serving::Request;

namespace {

struct SeededRun
{
    std::vector<Request> trace;
    serving::SchedulerOptions options;
    serving::ServingResult result;
};

/** Derive a varied but fully seed-determined scenario. Paged and
 *  Reserve runs share the trace and every other knob. */
SeededRun
runSeed(uint64_t seed, serving::KvAdmission admission)
{
    serving::TraceOptions trace_options;
    trace_options.seed = seed;
    trace_options.num_requests = 24 + static_cast<int64_t>(seed % 25);
    trace_options.mean_interarrival_ms =
        1.0 + static_cast<double>(seed % 7);
    trace_options.min_input_len = 4;
    trace_options.max_input_len = 120;
    trace_options.min_output_len = 1;
    trace_options.max_output_len = 24;
    trace_options.num_priorities = 1 + static_cast<int>(seed % 3);
    if (seed % 3 == 0) {
        // A third of the seeds model shared system prompts so the
        // paged run exercises prefix sharing.
        trace_options.num_prefix_groups =
            1 + static_cast<int64_t>(seed % 2);
        trace_options.shared_prefix_len =
            16 * (1 + static_cast<int64_t>((seed / 3) % 3));
    }

    SeededRun run;
    run.trace = seed % 2 == 0 ? serving::poissonTrace(trace_options)
                              : serving::burstyTrace(trace_options);

    run.options.admission = admission;
    run.options.max_batch = 1 + static_cast<int64_t>(seed % 7);
    run.options.kv_budget_tokens =
        192 + 64 * static_cast<int64_t>(seed % 13);
    run.options.max_queue_depth =
        seed % 4 == 0 ? 6 + static_cast<int64_t>(seed % 9) : 0;
    run.options.record_steps = true;

    serving::AnalyticCostModel cost;
    serving::Scheduler scheduler(run.options, cost);
    run.result = scheduler.run(run.trace);
    return run;
}

/** Reserve-mode reservation: the final bucketed context (the last
 *  decode step attends input + output - 1 tokens). */
int64_t
reservedKv(const Request &r, const models::BucketPolicy &policy)
{
    return models::bucketLen(r.input_len + r.output_len - 1,
                             policy);
}

int64_t
pagesFor(int64_t tokens, int64_t page_tokens)
{
    return (tokens + page_tokens - 1) / page_tokens;
}

std::vector<int64_t>
stepMembers(const serving::StepRecord &s)
{
    std::vector<int64_t> ids = s.prefill_ids;
    ids.insert(ids.end(), s.decode_ids.begin(),
               s.decode_ids.end());
    return ids;
}

class SchedulerProperty : public ::testing::TestWithParam<uint64_t>
{};

void
checkInvariants(const SeededRun &run)
{
    const bool paged =
        run.options.admission == serving::KvAdmission::Paged;
    const auto &result = run.result;
    const auto &metrics = result.metrics;
    ASSERT_FALSE(result.hit_step_limit);
    ASSERT_EQ(metrics.in_flight, 0);

    std::map<int64_t, Request> by_id;
    for (const auto &r : run.trace)
        by_id[r.id] = r;

    // --- Conservation: every request completes or is rejected,
    // exactly once.
    std::set<int64_t> completed_ids, rejected_ids;
    for (const auto &r : metrics.requests)
        EXPECT_TRUE(completed_ids.insert(r.id).second)
            << "request completed twice: " << r.id;
    for (const auto &r : result.rejected)
        EXPECT_TRUE(rejected_ids.insert(r.id).second)
            << "request rejected twice: " << r.id;
    EXPECT_EQ(completed_ids.size() + rejected_ids.size(),
              run.trace.size());
    for (int64_t id : completed_ids)
        EXPECT_EQ(rejected_ids.count(id), 0u)
            << "request both completed and rejected: " << id;
    for (const auto &r : run.trace)
        EXPECT_TRUE(completed_ids.count(r.id) ||
                    rejected_ids.count(r.id))
            << "request lost: " << r.id;

    // Rejections land in (arrival, id) order.
    for (size_t i = 1; i < result.rejected.size(); ++i) {
        const auto &a = result.rejected[i - 1];
        const auto &b = result.rejected[i];
        EXPECT_TRUE(a.arrival_ms < b.arrival_ms ||
                    (a.arrival_ms == b.arrival_ms && a.id < b.id))
            << "rejection order violated: " << a.id << " before "
            << b.id;
    }

    // --- Per-step bounds and bookkeeping.
    const int64_t page_tokens = run.options.page_tokens;
    const int64_t pool_pages =
        paged ? run.options.kv_budget_tokens / page_tokens : 0;
    std::map<int64_t, std::vector<size_t>> appearances;
    std::map<int64_t, size_t> first_prefill_step;
    std::set<int64_t> ever_preempted;
    double recomputed_busy = 0.0;
    int64_t recomputed_batched = 0;
    int64_t recomputed_preemptions = 0;
    int64_t recomputed_page_sum = 0;
    int64_t max_pages_active = 0;
    for (size_t i = 0; i < result.steps.size(); ++i) {
        const auto &s = result.steps[i];
        int64_t batch =
            static_cast<int64_t>(s.prefill_ids.size()) +
            static_cast<int64_t>(s.decode_ids.size());
        EXPECT_GE(batch, 1);
        EXPECT_LE(batch, run.options.max_batch);
        EXPECT_GT(s.step_ms, 0.0);
        EXPECT_LE(s.queue_depth, metrics.max_queue_depth);
        if (i > 0) {
            EXPECT_GE(s.start_ms, result.steps[i - 1].start_ms +
                                      result.steps[i - 1].step_ms -
                                      1e-12);
        }

        // Preemption bookkeeping: a victim ran the previous step,
        // does not run this one, and only preempted sequences may
        // ever re-run a prefill.
        if (!paged) {
            EXPECT_TRUE(s.preempted_ids.empty());
        }
        for (int64_t id : s.preempted_ids) {
            ever_preempted.insert(id);
            ++recomputed_preemptions;
            ASSERT_GT(i, 0u);
            auto prev = stepMembers(result.steps[i - 1]);
            EXPECT_NE(std::find(prev.begin(), prev.end(), id),
                      prev.end())
                << "victim " << id << " was not resident";
            auto cur = stepMembers(s);
            EXPECT_EQ(std::find(cur.begin(), cur.end(), id),
                      cur.end())
                << "victim " << id << " still resident";
        }
        for (int64_t id : s.prefill_ids) {
            auto [it, inserted] =
                first_prefill_step.emplace(id, i);
            (void)it;
            if (!inserted) {
                EXPECT_TRUE(ever_preempted.count(id))
                    << "request re-prefilled without a "
                       "preemption: "
                    << id;
            }
        }

        // KV occupancy, recomputed from the recorded membership
        // and each member's progress (appearances so far =
        // generated tokens).
        if (paged) {
            // Physical pages: each member holds pagesFor(ctx)
            // pages of which floor(prefix_len / page) are shared
            // prefix pages, counted once per prefix group.
            int64_t priv = 0;
            std::map<int64_t, int64_t> group_shared;
            for (int64_t id : stepMembers(s)) {
                const Request &r = by_id.at(id);
                int64_t g = static_cast<int64_t>(
                    appearances[id].size());
                int64_t ctx = r.input_len + g;
                int64_t held = pagesFor(ctx, page_tokens);
                int64_t shared =
                    r.prefix_id
                        ? r.prefix_len / page_tokens
                        : 0;
                priv += held - shared;
                if (r.prefix_id) {
                    auto &best = group_shared[r.prefix_id];
                    best = std::max(best, shared);
                }
            }
            int64_t shared_total = 0;
            for (const auto &[gid, pages] : group_shared) {
                (void)gid;
                shared_total += pages;
            }
            EXPECT_EQ(s.pages_active, priv + shared_total)
                << "active pages drifted at step " << i;
            EXPECT_EQ(s.kv_reserved,
                      s.pages_active * page_tokens);
            EXPECT_EQ(s.pages_active + s.pages_cached +
                          s.pages_free,
                      pool_pages)
                << "page conservation violated at step " << i;
            EXPECT_LE(s.pages_active, pool_pages);
            recomputed_page_sum += s.pages_active;
            max_pages_active =
                std::max(max_pages_active, s.pages_active);
        } else {
            int64_t kv = 0;
            for (int64_t id : stepMembers(s))
                kv += reservedKv(by_id.at(id),
                                 run.options.buckets);
            EXPECT_EQ(kv, s.kv_reserved);
            EXPECT_LE(kv, run.options.kv_budget_tokens);
        }

        for (int64_t id : stepMembers(s))
            appearances[id].push_back(i);
        recomputed_busy += s.step_ms;
        recomputed_batched += batch;
    }

    // --- FIFO fairness within each priority class: *first*
    // prefill order follows (arrival, id) order. (Strict
    // head-of-line admission plus front-of-class readmission keep
    // this true across KV stalls and preemptions.)
    for (const auto &[id_a, step_a] : first_prefill_step) {
        for (const auto &[id_b, step_b] : first_prefill_step) {
            const Request &a = by_id.at(id_a);
            const Request &b = by_id.at(id_b);
            if (a.priority != b.priority)
                continue;
            bool a_earlier =
                a.arrival_ms < b.arrival_ms ||
                (a.arrival_ms == b.arrival_ms && a.id < b.id);
            if (a_earlier) {
                EXPECT_LE(step_a, step_b)
                    << "FIFO violated in class " << a.priority
                    << ": " << id_a << " vs " << id_b;
            }
        }
    }

    // --- Every completed request runs exactly output_len steps
    // (each resident step advances one token, recompute prefills
    // included — preemption costs time, never tokens). Under
    // Reserve those steps are consecutive: no preemption.
    for (int64_t id : completed_ids) {
        const Request &r = by_id.at(id);
        const auto &steps = appearances.at(id);
        ASSERT_EQ(steps.size(),
                  static_cast<size_t>(r.output_len))
            << "token count drifted for request " << id;
        if (!paged) {
            for (size_t i = 1; i < steps.size(); ++i)
                EXPECT_EQ(steps[i], steps[i - 1] + 1)
                    << "request " << id << " paused mid-flight";
        }
    }
    // Rejected requests never ran.
    for (int64_t id : rejected_ids)
        EXPECT_EQ(appearances.count(id), 0u);

    // --- Metrics totals equal per-request / per-step sums.
    EXPECT_EQ(metrics.completed,
              static_cast<int64_t>(metrics.requests.size()));
    EXPECT_EQ(metrics.rejected_queue_full +
                  metrics.rejected_too_long +
                  metrics.expired_deadline +
                  metrics.rejected_drained,
              static_cast<int64_t>(result.rejected.size()));
    int64_t token_sum = 0;
    int64_t preemption_sum = 0;
    for (const auto &r : metrics.requests) {
        token_sum += r.output_len;
        preemption_sum += r.preemptions;
        EXPECT_GE(r.ttftMs(), 0.0);
        EXPECT_GE(r.latencyMs(), r.ttftMs());
        EXPECT_EQ(r.preemptions > 0,
                  ever_preempted.count(r.id) > 0);
    }
    EXPECT_EQ(metrics.total_output_tokens, token_sum);
    EXPECT_EQ(metrics.steps,
              static_cast<int64_t>(result.steps.size()));
    EXPECT_DOUBLE_EQ(metrics.busy_ms, recomputed_busy);
    EXPECT_EQ(metrics.total_batched_seqs, recomputed_batched);
    EXPECT_EQ(metrics.preemptions, recomputed_preemptions);
    // Drained run: every preemption belongs to a completed
    // request.
    EXPECT_EQ(metrics.preemptions, preemption_sum);
    if (paged) {
        EXPECT_EQ(metrics.pool_pages, pool_pages);
        EXPECT_EQ(metrics.page_step_sum, recomputed_page_sum);
        EXPECT_GE(metrics.peak_pages_active, max_pages_active);
        EXPECT_LE(metrics.peak_pages_active, pool_pages);
        EXPECT_GE(metrics.pageUtilization(), 0.0);
        EXPECT_LE(metrics.pageUtilization(), 1.0);
        EXPECT_GE(metrics.prefixHitRate(), 0.0);
        EXPECT_LE(metrics.prefixHitRate(), 1.0);
        bool has_prefixes = false;
        for (const auto &r : run.trace)
            has_prefixes |= r.prefix_id != 0;
        if (!has_prefixes) {
            EXPECT_EQ(metrics.prefix_hit_pages, 0);
            EXPECT_EQ(metrics.prefix_miss_pages, 0);
        }
    } else {
        EXPECT_EQ(metrics.preemptions, 0);
        EXPECT_EQ(metrics.pool_pages, 0);
        EXPECT_EQ(metrics.prefix_hit_pages, 0);
        EXPECT_EQ(metrics.page_step_sum, 0);
    }
    if (!result.steps.empty()) {
        const auto &last = result.steps.back();
        EXPECT_DOUBLE_EQ(metrics.makespan_ms,
                         last.start_ms + last.step_ms);
    }
    // Completion order is chronological.
    for (size_t i = 1; i < metrics.requests.size(); ++i)
        EXPECT_GE(metrics.requests[i].finish_ms,
                  metrics.requests[i - 1].finish_ms);
    // Every finish/first-token lands exactly on a step boundary.
    std::set<double> boundaries;
    for (const auto &s : result.steps)
        boundaries.insert(s.start_ms + s.step_ms);
    for (const auto &r : metrics.requests) {
        EXPECT_EQ(boundaries.count(r.first_token_ms), 1u);
        EXPECT_EQ(boundaries.count(r.finish_ms), 1u);
    }
}

} // namespace

TEST_P(SchedulerProperty, InvariantsHoldPaged)
{
    SeededRun run =
        runSeed(GetParam(), serving::KvAdmission::Paged);
    checkInvariants(run);

    // The paged schedule replays bit-identically.
    SeededRun again =
        runSeed(GetParam(), serving::KvAdmission::Paged);
    ASSERT_EQ(again.result.steps.size(),
              run.result.steps.size());
    for (size_t i = 0; i < run.result.steps.size(); ++i) {
        EXPECT_EQ(again.result.steps[i].prefill_ids,
                  run.result.steps[i].prefill_ids);
        EXPECT_EQ(again.result.steps[i].decode_ids,
                  run.result.steps[i].decode_ids);
        EXPECT_EQ(again.result.steps[i].preempted_ids,
                  run.result.steps[i].preempted_ids);
        EXPECT_EQ(again.result.steps[i].pages_active,
                  run.result.steps[i].pages_active);
        EXPECT_DOUBLE_EQ(again.result.steps[i].start_ms,
                         run.result.steps[i].start_ms);
    }
}

TEST_P(SchedulerProperty, InvariantsHoldReserve)
{
    SeededRun run =
        runSeed(GetParam(), serving::KvAdmission::Reserve);
    checkInvariants(run);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty,
                         ::testing::Range<uint64_t>(0, 100));

// ---------------------------------------------------------------
// Fleet under faults: 100 seeded (trace, fleet-config, fault-plan)
// scenarios, each checked for conservation (every request
// completes, is rejected, expires, or exhausts its retries —
// exactly once), token-exactness across failovers (a completed
// request occupies exactly output_len committed steps fleet-wide,
// the same count the fault-free run gives it), no committed step
// overlapping a replica's down window, metric consistency, and
// bit-identical reruns.
// ---------------------------------------------------------------

namespace {

struct FleetSeededRun
{
    std::vector<Request> trace;
    serving::FleetOptions options;
    serving::FleetResult result;
};

FleetSeededRun
runFleetSeed(uint64_t seed, bool with_faults)
{
    serving::TraceOptions trace_options;
    trace_options.seed = seed;
    trace_options.num_requests =
        32 + static_cast<int64_t>(seed % 33);
    trace_options.mean_interarrival_ms =
        1.0 + static_cast<double>(seed % 5);
    trace_options.min_input_len = 4;
    trace_options.max_input_len = 96;
    trace_options.min_output_len = 1;
    trace_options.max_output_len = 20;
    trace_options.num_priorities = 1 + static_cast<int>(seed % 2);
    if (seed % 3 == 0) {
        trace_options.num_prefix_groups = 2;
        trace_options.shared_prefix_len = 16;
    }
    if (seed % 5 == 0) {
        // A fifth of the seeds carry deadlines so expiry interacts
        // with outages (parked requests expiring mid-crash).
        trace_options.deadline_slack_ms =
            150.0 + 50.0 * static_cast<double>(seed % 4);
    }

    FleetSeededRun run;
    run.trace = seed % 2 == 0
                    ? serving::poissonTrace(trace_options)
                    : serving::burstyTrace(trace_options);

    run.options.num_replicas = 2 + static_cast<int>(seed % 3);
    run.options.replica.max_batch =
        2 + static_cast<int64_t>(seed % 5);
    run.options.replica.kv_budget_tokens =
        192 + 64 * static_cast<int64_t>(seed % 9);
    run.options.replica.max_queue_depth =
        seed % 4 == 0 ? 8 + static_cast<int64_t>(seed % 9) : 0;
    run.options.replica.record_steps = true;
    run.options.balancer =
        static_cast<serving::LbPolicy>(seed % 3);
    run.options.max_retries = 1 + static_cast<int64_t>(seed % 3);
    run.options.retry_backoff_ms =
        1.0 + static_cast<double>(seed % 4);

    if (with_faults) {
        serving::SeededFaultOptions fault_options;
        fault_options.seed = seed * 7 + 1;
        fault_options.num_replicas = run.options.num_replicas;
        fault_options.horizon_ms = 400.0;
        fault_options.crash_prob = 0.6;
        fault_options.slow_prob = 0.5;
        fault_options.drain_prob = 0.35;
        run.options.faults =
            serving::seededFaultPlan(fault_options);
    }

    serving::AnalyticCostModel cost;
    serving::FleetScheduler fleet(run.options, cost);
    run.result = fleet.run(run.trace);
    return run;
}

/** Down windows per replica, replayed from the plan with the
 *  fleet's tolerant semantics (crash on a down replica is a
 *  no-op). */
std::map<int, std::vector<std::pair<double, double>>>
downWindows(const serving::FleetOptions &options)
{
    serving::FaultInjector injector(options.faults);
    std::map<int, std::vector<std::pair<double, double>>> windows;
    std::map<int, bool> up;
    auto events = injector.drainDue(
        std::numeric_limits<double>::infinity());
    for (const auto &e : events) {
        bool &is_up = up.try_emplace(e.replica, true)
                          .first->second;
        if (e.kind == serving::FaultKind::Crash && is_up) {
            is_up = false;
            windows[e.replica].push_back(
                {e.at_ms,
                 std::numeric_limits<double>::infinity()});
        } else if (e.kind == serving::FaultKind::Recover &&
                   !is_up) {
            is_up = true;
            windows[e.replica].back().second = e.at_ms;
        }
    }
    return windows;
}

/** Committed step appearances of every request, fleet-wide. */
std::map<int64_t, int64_t>
fleetAppearances(const serving::FleetResult &result)
{
    std::map<int64_t, int64_t> count;
    for (const auto &replica : result.replicas)
        for (const auto &s : replica.steps)
            for (int64_t id : stepMembers(s))
                ++count[id];
    return count;
}

class FleetProperty : public ::testing::TestWithParam<uint64_t>
{};

void
checkFleetInvariants(const FleetSeededRun &run)
{
    const auto &result = run.result;
    const auto &fm = result.metrics;
    ASSERT_FALSE(result.hit_step_limit);
    ASSERT_EQ(static_cast<int>(result.replicas.size()),
              run.options.num_replicas);

    std::map<int64_t, Request> by_id;
    for (const auto &r : run.trace)
        by_id[r.id] = r;

    // --- Conservation: completed, rejected (any reason), or lost
    // — exactly one terminal outcome per request.
    std::set<int64_t> completed_ids, rejected_ids, lost_ids;
    for (const auto &r : fm.requests)
        EXPECT_TRUE(completed_ids.insert(r.id).second)
            << "request completed twice: " << r.id;
    for (const auto &r : result.rejected)
        EXPECT_TRUE(rejected_ids.insert(r.id).second)
            << "request rejected twice: " << r.id;
    for (const auto &r : result.lost)
        EXPECT_TRUE(lost_ids.insert(r.id).second)
            << "request lost twice: " << r.id;
    EXPECT_EQ(completed_ids.size() + rejected_ids.size() +
                  lost_ids.size(),
              run.trace.size());
    for (const auto &r : run.trace) {
        int outcomes = (completed_ids.count(r.id) ? 1 : 0) +
                       (rejected_ids.count(r.id) ? 1 : 0) +
                       (lost_ids.count(r.id) ? 1 : 0);
        EXPECT_EQ(outcomes, 1)
            << "request without exactly one outcome: " << r.id;
    }

    // --- Token exactness across failovers: a completed request
    // occupies exactly output_len committed steps fleet-wide; an
    // uncompleted one strictly fewer (its aborted work was never
    // committed).
    auto appearances = fleetAppearances(result);
    for (int64_t id : completed_ids)
        EXPECT_EQ(appearances[id], by_id.at(id).output_len)
            << "token count drifted across failovers: " << id;
    for (const auto &[id, count] : appearances)
        if (!completed_ids.count(id))
            EXPECT_LT(count, by_id.at(id).output_len)
                << "uncompleted request over-ran: " << id;

    // --- No committed step on a downed replica: every step
    // record fits outside its replica's down windows (a step may
    // *end* exactly at the crash instant).
    auto windows = downWindows(run.options);
    for (size_t i = 0; i < result.replicas.size(); ++i) {
        auto it = windows.find(static_cast<int>(i));
        if (it == windows.end())
            continue;
        for (const auto &s : result.replicas[i].steps) {
            double end = s.start_ms + s.step_ms;
            for (const auto &[down, recover] : it->second)
                EXPECT_TRUE(end <= down + 1e-9 ||
                            s.start_ms >= recover - 1e-9)
                    << "replica " << i << " stepped at ["
                    << s.start_ms << ", " << end
                    << ") inside down window [" << down << ", "
                    << recover << ")";
        }
    }

    // --- Metric consistency.
    EXPECT_EQ(fm.completed,
              static_cast<int64_t>(fm.requests.size()));
    EXPECT_EQ(fm.requests_lost,
              static_cast<int64_t>(result.lost.size()));
    EXPECT_EQ(fm.rejected_queue_full + fm.rejected_too_long +
                  fm.expired_deadline + fm.rejected_drained,
              static_cast<int64_t>(result.rejected.size()));
    int64_t steps = 0;
    for (const auto &replica : result.replicas) {
        EXPECT_EQ(replica.metrics.in_flight, 0);
        steps += replica.metrics.steps;
    }
    EXPECT_EQ(fm.steps, steps);
    int64_t completed_failovers = 0;
    int64_t deadline_misses = 0;
    for (const auto &r : fm.requests) {
        EXPECT_LE(r.failovers, run.options.max_retries);
        EXPECT_GE(r.replica, 0);
        EXPECT_LT(r.replica, run.options.num_replicas);
        completed_failovers += r.failovers;
        deadline_misses += r.missedDeadline() ? 1 : 0;
    }
    EXPECT_EQ(fm.deadline_misses, deadline_misses);
    EXPECT_GE(fm.failovers, completed_failovers);
    for (const auto &l : result.lost)
        EXPECT_TRUE(l.attempts > run.options.max_retries ||
                    l.attempts ==
                        0) // stranded parked arrivals carry 0
            << "lost with unspent retries: " << l.id;
    EXPECT_GE(fm.availability(), 0.0);
    EXPECT_LE(fm.availability(), 1.0);
    EXPECT_GE(fm.uptimeFraction(), 0.0);
    EXPECT_LE(fm.uptimeFraction(), 1.0 + 1e-12);
    EXPECT_EQ(fm.replica_up_ms.size(),
              static_cast<size_t>(run.options.num_replicas));
    // Merged per-request metrics are in (finish, id) order.
    for (size_t i = 1; i < fm.requests.size(); ++i)
        EXPECT_TRUE(
            fm.requests[i - 1].finish_ms <
                fm.requests[i].finish_ms ||
            (fm.requests[i - 1].finish_ms ==
                 fm.requests[i].finish_ms &&
             fm.requests[i - 1].id < fm.requests[i].id));
}

} // namespace

TEST_P(FleetProperty, InvariantsHoldUnderFaults)
{
    FleetSeededRun run = runFleetSeed(GetParam(), true);
    checkFleetInvariants(run);

    // A completed request's fleet-wide committed step count
    // equals its count in the fault-free run of the same
    // scenario: crashes cost time, never tokens.
    FleetSeededRun calm = runFleetSeed(GetParam(), false);
    checkFleetInvariants(calm);
    auto faulted = fleetAppearances(run.result);
    auto baseline = fleetAppearances(calm.result);
    for (const auto &r : run.result.metrics.requests)
        if (baseline.count(r.id))
            EXPECT_EQ(faulted[r.id], baseline[r.id])
                << "faulted token count diverged: " << r.id;
}

TEST_P(FleetProperty, FaultedRunsReplayBitIdentically)
{
    FleetSeededRun a = runFleetSeed(GetParam(), true);
    FleetSeededRun b = runFleetSeed(GetParam(), true);
    ASSERT_EQ(a.result.replicas.size(), b.result.replicas.size());
    for (size_t i = 0; i < a.result.replicas.size(); ++i) {
        const auto &sa = a.result.replicas[i].steps;
        const auto &sb = b.result.replicas[i].steps;
        ASSERT_EQ(sa.size(), sb.size());
        for (size_t j = 0; j < sa.size(); ++j) {
            EXPECT_EQ(sa[j].prefill_ids, sb[j].prefill_ids);
            EXPECT_EQ(sa[j].decode_ids, sb[j].decode_ids);
            EXPECT_DOUBLE_EQ(sa[j].start_ms, sb[j].start_ms);
            EXPECT_DOUBLE_EQ(sa[j].step_ms, sb[j].step_ms);
        }
    }
    ASSERT_EQ(a.result.metrics.requests.size(),
              b.result.metrics.requests.size());
    for (size_t i = 0; i < a.result.metrics.requests.size(); ++i) {
        EXPECT_EQ(a.result.metrics.requests[i].id,
                  b.result.metrics.requests[i].id);
        EXPECT_DOUBLE_EQ(a.result.metrics.requests[i].finish_ms,
                         b.result.metrics.requests[i].finish_ms);
        EXPECT_EQ(a.result.metrics.requests[i].replica,
                  b.result.metrics.requests[i].replica);
    }
    EXPECT_EQ(a.result.metrics.failovers,
              b.result.metrics.failovers);
    EXPECT_EQ(a.result.metrics.requests_lost,
              b.result.metrics.requests_lost);
    ASSERT_EQ(a.result.lost.size(), b.result.lost.size());
    for (size_t i = 0; i < a.result.lost.size(); ++i)
        EXPECT_EQ(a.result.lost[i].id, b.result.lost[i].id);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FleetProperty,
                         ::testing::Range<uint64_t>(0, 100));

// The seeded fault plans must collectively exercise every fault
// machinery path, or the invariants above are vacuous.
TEST(FleetPropertyCoverage, SeedsExerciseEveryFaultKind)
{
    int64_t crashes = 0, recoveries = 0, slowdowns = 0;
    int64_t drains = 0, failovers = 0, lost = 0;
    int64_t completed_with_failover = 0;
    for (uint64_t seed = 0; seed < 100; ++seed) {
        FleetSeededRun run = runFleetSeed(seed, true);
        const auto &fm = run.result.metrics;
        crashes += fm.crashes;
        recoveries += fm.recoveries;
        slowdowns += fm.slowdowns;
        drains += fm.drains;
        failovers += fm.failovers;
        lost += fm.requests_lost;
        for (const auto &r : fm.requests)
            completed_with_failover += r.failovers > 0 ? 1 : 0;
    }
    EXPECT_GT(crashes, 0);
    EXPECT_GT(recoveries, 0);
    EXPECT_GT(slowdowns, 0);
    EXPECT_GT(drains, 0);
    EXPECT_GT(failovers, 0);
    // Crash survivors that finished on another replica — the
    // failover path end to end, not just the bookkeeping.
    EXPECT_GT(completed_with_failover, 0);
    (void)lost; // losses depend on retry budgets; not required
}

// The 100 seeds must actually exercise the interesting paged
// machinery somewhere, or the invariants above are vacuous.
TEST(SchedulerPropertyCoverage, SeedsExercisePreemptionAndSharing)
{
    int64_t preemptions = 0;
    int64_t prefix_hits = 0;
    for (uint64_t seed = 0; seed < 100; ++seed) {
        SeededRun run =
            runSeed(seed, serving::KvAdmission::Paged);
        preemptions += run.result.metrics.preemptions;
        prefix_hits += run.result.metrics.prefix_hit_pages;
    }
    EXPECT_GT(preemptions, 0);
    EXPECT_GT(prefix_hits, 0);
}

// ---- RequestQueue queued-input-token counter: the O(1) running
// ---- sum the fleet balancer reads on every pick must equal the
// ---- recomputed sum over queue contents after ANY operation mix
// ---- (push / pushFront / pop / expireBefore / drainAll). ----

TEST(QueueProperty, QueuedInputTokensMatchesContentsAcrossOps)
{
    for (uint64_t seed = 1; seed <= 100; ++seed) {
        std::mt19937_64 rng(seed);
        serving::RequestQueue q(
            seed % 3 == 0 ? 0 : 8 + static_cast<int64_t>(seed % 9));
        double now = 0.0;
        int64_t next_id = 0;

        auto recompute = [&] {
            int64_t sum = 0;
            for (const auto &r : q.snapshot())
                sum += r.input_len;
            return sum;
        };

        for (int round = 0; round < 200; ++round) {
            now += static_cast<double>(rng() % 5);
            switch (rng() % 6) {
            case 0:
            case 1: { // push (sometimes refused at capacity)
                Request r;
                r.id = next_id++;
                r.input_len =
                    1 + static_cast<int64_t>(rng() % 96);
                r.priority = static_cast<int>(rng() % 3);
                if (rng() % 2)
                    r.deadline_ms =
                        now + static_cast<double>(rng() % 10);
                q.push(r);
                break;
            }
            case 2: { // readmission path (capacity-exempt)
                Request r;
                r.id = next_id++;
                r.input_len =
                    1 + static_cast<int64_t>(rng() % 96);
                r.priority = static_cast<int>(rng() % 3);
                q.pushFront(r);
                break;
            }
            case 3:
                if (!q.empty())
                    q.pop();
                break;
            case 4:
                q.expireBefore(now);
                break;
            case 5: // fleet evacuation path
                if (round % 17 == 0)
                    q.drainAll();
                break;
            }
            ASSERT_EQ(q.queuedInputTokens(), recompute())
                << "seed " << seed << " round " << round;
            ASSERT_EQ(q.size(),
                      static_cast<int64_t>(q.snapshot().size()))
                << "seed " << seed << " round " << round;
        }
        // Fully drained queues return to exactly zero demand.
        q.drainAll();
        EXPECT_EQ(q.queuedInputTokens(), 0) << "seed " << seed;
    }
}
