/**
 * @file
 * Randomized differential tests: the leap-ahead batched simulator
 * (sim/simulator.h) against the retained per-firing reference
 * (sim/reference_simulator.h).
 *
 * Both simulators derive firing times from the shared
 * window-anchored expression, so the suite asserts *exact* (bitwise
 * double) equality on cycles, first_output_cycle, per-component
 * firings and finish times, and per-channel push/pop counts — over
 * randomized layered DAGs (mixed rates, non-divisible token
 * interleaves, folded channels, shallow and deep FIFOs), known
 * deadlock fixtures, and timeout fixtures. Peak occupancy is
 * asserted within capacity on both paths (the leap simulator
 * reports an upper bound, so exact equality is not required).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/reference_simulator.h"
#include "sim/simulator.h"

using namespace streamtensor;
using dataflow::Channel;
using dataflow::Component;
using dataflow::ComponentGraph;
using dataflow::ComponentKind;

namespace {

class Rng
{
  public:
    explicit Rng(uint64_t seed) : state_(seed ? seed : 1) {}

    uint64_t
    next()
    {
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        return state_ * 0x2545f4914f6cdd1dull;
    }

    /** Uniform in [0, bound). */
    int64_t pick(int64_t bound) { return next() % bound; }

  private:
    uint64_t state_;
};

ir::ITensorType
tokenType(int64_t n)
{
    return ir::ITensorType(ir::DataType::I8, {1}, {n}, {1},
                           ir::AffineMap::identity(1));
}

int64_t
addComponent(ComponentGraph &g, ComponentKind kind, double delay,
             double total)
{
    Component c;
    c.kind = kind;
    c.name = "c";
    c.initial_delay = delay;
    c.total_cycles = total;
    return g.addComponent(c);
}

void
addChannel(ComponentGraph &g, int64_t src, int64_t dst,
           int64_t tokens, int64_t depth, bool folded = false,
           double link_latency = 0.0, double link_ii_penalty = 0.0)
{
    Channel ch;
    ch.src = src;
    ch.dst = dst;
    ch.type = tokenType(tokens);
    ch.tokens = tokens;
    ch.depth = depth;
    ch.folded = folded;
    ch.inter_die = link_latency > 0.0 || link_ii_penalty > 0.0;
    ch.link_latency = link_latency;
    ch.link_ii_penalty = link_ii_penalty;
    g.addChannel(ch);
}

/** Assert the leap-ahead and reference results agree exactly for
 *  one group (see file comment for what is and is not compared).
 *  Channel stats are indexed group-locally, so capacities are
 *  resolved through the group's channel ids. */
void
expectIdenticalGroup(const ComponentGraph &g, int64_t group,
                     const sim::SimResult &leap,
                     const sim::SimResult &ref)
{
    auto channel_ids = g.groupChannels(group);
    EXPECT_EQ(leap.deadlock, ref.deadlock);
    EXPECT_EQ(leap.timed_out, ref.timed_out);
    EXPECT_EQ(leap.cycles, ref.cycles);
    EXPECT_EQ(leap.first_output_cycle, ref.first_output_cycle);
    EXPECT_EQ(leap.crossing_channels, ref.crossing_channels);
    ASSERT_EQ(leap.components.size(), ref.components.size());
    for (size_t i = 0; i < leap.components.size(); ++i) {
        EXPECT_EQ(leap.components[i].firings,
                  ref.components[i].firings)
            << "component " << i;
        EXPECT_EQ(leap.components[i].finish_time,
                  ref.components[i].finish_time)
            << "component " << i;
    }
    ASSERT_EQ(leap.channels.size(), ref.channels.size());
    ASSERT_EQ(leap.channels.size(), channel_ids.size());
    for (size_t c = 0; c < leap.channels.size(); ++c) {
        EXPECT_EQ(leap.channels[c].pushes, ref.channels[c].pushes)
            << "channel " << c;
        EXPECT_EQ(leap.channels[c].pops, ref.channels[c].pops)
            << "channel " << c;
        const Channel &ch = g.channel(channel_ids[c]);
        int64_t capacity = ch.folded
                               ? g.channelBurst(channel_ids[c])
                               : ch.depth;
        EXPECT_LE(leap.channels[c].max_occupancy, capacity)
            << "channel " << c;
        EXPECT_LE(ref.channels[c].max_occupancy, capacity)
            << "channel " << c;
    }
    EXPECT_EQ(leap.blocked_components, ref.blocked_components);
}

void
runBoth(const ComponentGraph &g, const sim::SimOptions &options = {})
{
    for (int64_t group = 0; group < g.numGroups(); ++group) {
        auto leap = sim::simulateGroup(g, group, options);
        auto ref = sim::simulateGroupReference(g, group, options);
        expectIdenticalGroup(g, group, leap, ref);
    }
}

/** Random layered DAG: every component gets at least one input from
 *  an earlier layer, plus extra reconvergent edges; tokens mix
 *  divisible and jittery interleaves; depths span deadlock-prone
 *  shallow to ample; some channels are folded. With @p with_links,
 *  roughly a third of the channels become inter-die crossings with
 *  random link latency / II penalty (the die-placement cost
 *  model). */
ComponentGraph
randomGraph(Rng &rng, bool with_links = false)
{
    ComponentGraph g;
    int64_t n = 3 + rng.pick(8);
    std::vector<int64_t> ids;
    for (int64_t i = 0; i < n; ++i) {
        double delay = 1.0 + static_cast<double>(rng.pick(200));
        double span = static_cast<double>(16 + rng.pick(2048));
        ComponentKind kind = ComponentKind::Kernel;
        if (i == 0 && rng.pick(3) == 0)
            kind = ComponentKind::LoadDma;
        if (i == n - 1 && rng.pick(2) == 0)
            kind = ComponentKind::StoreDma;
        ids.push_back(addComponent(g, kind, delay, delay + span));
    }
    const int64_t token_choices[] = {1,  2,  3,  5,  7,  8, 12,
                                     16, 24, 31, 48, 64, 96, 128};
    const int64_t depth_choices[] = {1, 2, 2, 3, 4, 8, 16, 64, 256};
    const double latency_choices[] = {1.0, 3.0, 8.0, 50.0, 333.0};
    const double penalty_choices[] = {0.0, 0.0, 1.0, 2.5};
    auto channel = [&](int64_t src, int64_t dst) {
        int64_t tokens = token_choices[rng.pick(14)];
        int64_t depth = depth_choices[rng.pick(9)];
        bool folded = rng.pick(8) == 0;
        double latency = 0.0, penalty = 0.0;
        if (with_links && rng.pick(3) == 0) {
            latency = latency_choices[rng.pick(5)];
            penalty = penalty_choices[rng.pick(4)];
        }
        addChannel(g, src, dst, tokens, depth, folded, latency,
                   penalty);
    };
    for (int64_t i = 1; i < n; ++i)
        channel(ids[rng.pick(i)], ids[i]);
    int64_t extra = rng.pick(n);
    for (int64_t e = 0; e < extra; ++e) {
        int64_t dst = 1 + rng.pick(n - 1);
        channel(ids[rng.pick(dst)], ids[dst]);
    }
    return g;
}

} // namespace

// ---- Randomized graphs (completing, deadlocking, or timing out;
// ---- whichever way they go, the two simulators must agree) ----

class Differential : public ::testing::TestWithParam<int>
{};

TEST_P(Differential, LeapMatchesReference)
{
    Rng rng(0x5eed0000 + GetParam());
    ComponentGraph g = randomGraph(rng);
    sim::SimOptions options;
    options.max_cycles = 2.0e6;
    runBoth(g, options);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Range(0, 100));

// ---- The same contract under the inter-die link model: random
// ---- crossing channels with latency and II penalty. The two
// ---- engines implement the link very differently (time-shifted
// ---- visibility queries vs in-flight arrival/credit queues), so
// ---- exact equality here is the load-bearing guarantee that
// ---- placement-aware cycles are well-defined. ----

class DifferentialLinked : public ::testing::TestWithParam<int>
{};

TEST_P(DifferentialLinked, LeapMatchesReferenceWithLinkCosts)
{
    Rng rng(0x11780000 + GetParam());
    ComponentGraph g = randomGraph(rng, /*with_links=*/true);
    sim::SimOptions options;
    options.max_cycles = 2.0e6;
    runBoth(g, options);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialLinked,
                         ::testing::Range(0, 100));

// ---- Crossing-cost fixtures ----

TEST(SimDifferential, LinkLatencyShiftsChainByExactlyL)
{
    // Ample depths and data-bound consumers (faster pace than the
    // source): the only effect of a single crossing on the chain
    // is a rigid downstream shift by the link latency.
    constexpr double kLatency = 37.0;
    auto build = [&](double latency) {
        ComponentGraph g;
        int64_t a =
            addComponent(g, ComponentKind::Kernel, 1.0, 65.0);
        int64_t b =
            addComponent(g, ComponentKind::Kernel, 0.5, 33.0);
        int64_t s =
            addComponent(g, ComponentKind::StoreDma, 0.25, 17.0);
        addChannel(g, a, b, 64, 1024, false, latency);
        addChannel(g, b, s, 64, 1024);
        return g;
    };
    ComponentGraph base = build(0.0);
    ComponentGraph linked = build(kLatency);
    auto r0 = sim::simulateGroup(base, 0);
    auto r1 = sim::simulateGroup(linked, 0);
    ASSERT_FALSE(r0.deadlock);
    ASSERT_FALSE(r1.deadlock);
    EXPECT_EQ(r0.crossing_channels, 0);
    EXPECT_EQ(r1.crossing_channels, 1);
    EXPECT_GT(r1.cycles, r0.cycles);
    EXPECT_DOUBLE_EQ(r1.cycles, r0.cycles + kLatency);
    EXPECT_DOUBLE_EQ(r1.first_output_cycle,
                     r0.first_output_cycle + kLatency);
    EXPECT_GT(r1.crossing_stall_cycles, 0.0);
    runBoth(linked);
}

TEST(SimDifferential, CreditReturnLatencyBackpressuresProducer)
{
    // A shallow crossing FIFO: the producer must wait for pop
    // credits that return a full link latency late, so the link
    // hurts even when the raw data path is long done.
    auto build = [&](double latency) {
        ComponentGraph g;
        int64_t a =
            addComponent(g, ComponentKind::Kernel, 1.0, 65.0);
        int64_t b =
            addComponent(g, ComponentKind::Kernel, 1.0, 65.0);
        addChannel(g, a, b, 64, 2, false, latency);
        return g;
    };
    auto r0 = sim::simulateGroup(build(0.0), 0);
    ComponentGraph linked = build(100.0);
    auto r1 = sim::simulateGroup(linked, 0);
    ASSERT_FALSE(r0.deadlock);
    ASSERT_FALSE(r1.deadlock);
    EXPECT_GT(r1.cycles, r0.cycles + 100.0);
    runBoth(linked);
}

TEST(SimDifferential, IiPenaltySlowsCrossingEndpoints)
{
    auto build = [&](double penalty) {
        ComponentGraph g;
        int64_t a =
            addComponent(g, ComponentKind::Kernel, 1.0, 129.0);
        int64_t b =
            addComponent(g, ComponentKind::StoreDma, 2.0, 130.0);
        addChannel(g, a, b, 128, 256, false, 0.0, penalty);
        return g;
    };
    auto r0 = sim::simulateGroup(build(0.0), 0);
    ComponentGraph linked = build(2.0);
    auto r1 = sim::simulateGroup(linked, 0);
    ASSERT_FALSE(r1.deadlock);
    // Both endpoints pace 2 cycles slower per firing (within
    // rounding of the per-firing interval arithmetic).
    EXPECT_GT(r1.cycles, r0.cycles + 250.0);
    runBoth(linked);
}

// ---- Known-deadlock fixtures ----

TEST(SimDifferential, BurstLargerThanCapacityDeadlocks)
{
    ComponentGraph g;
    int64_t a = addComponent(g, ComponentKind::Kernel, 1.0, 65.0);
    int64_t b = addComponent(g, ComponentKind::Kernel, 1.0, 65.0);
    int64_t s = addComponent(g, ComponentKind::Kernel, 1.0, 9.0);
    // b needs 16 of a's tokens per firing but capacity is 8.
    addChannel(g, a, b, 64, 8);
    addChannel(g, b, s, 4, 2);
    sim::SimOptions options;
    options.max_cycles = 1e6;
    auto leap = sim::simulateGroup(g, 0, options);
    EXPECT_TRUE(leap.deadlock);
    EXPECT_FALSE(leap.timed_out);
    runBoth(g, options);
}

TEST(SimDifferential, ReconvergentBackpressureDeadlocks)
{
    // Reconvergent pair where the join's burst on the direct edge
    // exceeds that FIFO's depth: the join can never fire, the
    // upstream chain wedges behind it.
    ComponentGraph g;
    int64_t src = addComponent(g, ComponentKind::Kernel, 5.0, 69.0);
    int64_t a = addComponent(g, ComponentKind::Kernel, 2.0, 66.0);
    int64_t join = addComponent(g, ComponentKind::Kernel, 1.0, 65.0);
    int64_t sink = addComponent(g, ComponentKind::Kernel, 1.0, 9.0);
    addChannel(g, src, a, 64, 64);
    addChannel(g, src, join, 64, 8); // join burst is 16 > 8
    addChannel(g, a, join, 64, 64);
    addChannel(g, join, sink, 4, 2);
    sim::SimOptions options;
    options.max_cycles = 1e7;
    auto leap = sim::simulateGroup(g, 0, options);
    EXPECT_TRUE(leap.deadlock);
    EXPECT_FALSE(leap.timed_out);
    EXPECT_FALSE(leap.blocked_components.empty());
    runBoth(g, options);
}

TEST(SimDifferential, FoldedBurstChainCompletes)
{
    ComponentGraph g;
    int64_t a = addComponent(g, ComponentKind::Kernel, 1.0, 65.0);
    int64_t b = addComponent(g, ComponentKind::Kernel, 1.0, 65.0);
    int64_t s = addComponent(g, ComponentKind::StoreDma, 1.0, 9.0);
    addChannel(g, a, b, 64, 2, /*folded=*/true);
    addChannel(g, b, s, 4, 2);
    auto leap = sim::simulateGroup(g, 0);
    EXPECT_FALSE(leap.deadlock);
    runBoth(g);
}

// ---- Timeout fixtures: both report timed_out, not deadlock, and
// ---- agree on everything committed before the cap ----

TEST(SimDifferential, TimeoutAgreesWithReference)
{
    ComponentGraph g;
    int64_t a = addComponent(g, ComponentKind::Kernel, 1.0,
                             1.0 + 4095.0 * 50.0);
    int64_t b = addComponent(g, ComponentKind::Kernel, 2.0,
                             2.0 + 4095.0 * 50.0);
    addChannel(g, a, b, 4096, 16);
    sim::SimOptions options;
    options.max_cycles = 20000.0;
    auto leap = sim::simulateGroup(g, 0, options);
    EXPECT_TRUE(leap.timed_out);
    EXPECT_FALSE(leap.deadlock);
    EXPECT_TRUE(leap.blocked_components.empty());
    runBoth(g, options);
}

// ---- Leap efficiency: a single unblocked pipeline costs
// ---- O(components) heap events, not O(firings) ----

TEST(SimDifferential, UnblockedPipelineEventsLinearInComponents)
{
    constexpr int64_t kComponents = 8;
    constexpr int64_t kTokens = 20000;
    ComponentGraph g;
    std::vector<int64_t> ids;
    for (int64_t i = 0; i < kComponents; ++i) {
        // Equal rates (II = 1), staggered starts, ample depths: a
        // pure steady-state stream.
        double delay = 1.0 + 100.0 * static_cast<double>(i);
        ids.push_back(addComponent(
            g, i + 1 == kComponents ? ComponentKind::StoreDma
                                    : ComponentKind::Kernel,
            delay, delay + static_cast<double>(kTokens - 1)));
    }
    for (int64_t i = 0; i + 1 < kComponents; ++i)
        addChannel(g, ids[i], ids[i + 1], kTokens, kTokens);
    auto leap = sim::simulateGroup(g, 0);
    ASSERT_FALSE(leap.deadlock);
    EXPECT_EQ(leap.components.back().firings, kTokens);
    // One initial event plus at most a few wakes per component.
    EXPECT_LE(leap.events, 4 * kComponents);
    // The reference pays one event per firing.
    auto ref = sim::simulateGroupReference(g, 0);
    EXPECT_GE(ref.events, kComponents * kTokens);
    expectIdenticalGroup(g, 0, leap, ref);
}
