/** @file Unit tests for Algorithm 2 (kernel fusion exploration,
 *  paper §5.2.2). */

#include <gtest/gtest.h>

#include "dse/converter_gen.h"
#include "dse/fusion.h"
#include "support/error.h"

using namespace streamtensor;
using ir::DataType;
using ir::ITensorType;
using ir::TensorType;

namespace {

ITensorType
rowTiles()
{
    return ir::makeTiledITensor(TensorType(DataType::I8, {64, 64}),
                                {16, 16});
}

ITensorType
colTiles()
{
    return ir::makePermutedITensor(
        TensorType(DataType::I8, {64, 64}), {16, 16}, {1, 0});
}

/** Chain of n kernels; every edge needs a whole-tensor converter
 *  (row-major producer, col-major consumer): cost 8 KiB each. */
dse::FusionGraph
chain(int64_t n)
{
    dse::FusionGraph g;
    for (int64_t i = 0; i < n; ++i)
        g.addNode();
    for (int64_t i = 0; i + 1 < n; ++i)
        g.addEdge(i, i + 1, rowTiles(), colTiles());
    return g;
}

} // namespace

TEST(Algorithm2, UnlimitedBudgetFusesEverything)
{
    auto plan = dse::exploreFusion(chain(6), 1 << 30);
    EXPECT_EQ(plan.groups.size(), 1u);
    for (int64_t i = 0; i < 6; ++i)
        EXPECT_EQ(plan.fusion_index[i], 0);
}

TEST(Algorithm2, MatchingTypesAreFreeToFuse)
{
    dse::FusionGraph g;
    for (int64_t i = 0; i < 4; ++i)
        g.addNode();
    for (int64_t i = 0; i + 1 < 4; ++i)
        g.addEdge(i, i + 1, rowTiles(), rowTiles());
    auto plan = dse::exploreFusion(g, 0); // zero budget
    EXPECT_EQ(plan.groups.size(), 1u);
    EXPECT_EQ(plan.totalCost(), 0);
}

TEST(Algorithm2, BudgetSplitsChain)
{
    int64_t edge_cost =
        dse::converterCostBytes(rowTiles(), colTiles());
    ASSERT_GT(edge_cost, 0);
    // Budget for exactly two converters per group.
    auto plan = dse::exploreFusion(chain(7), 2 * edge_cost);
    EXPECT_GT(plan.groups.size(), 1u);
    for (int64_t cost : plan.costs)
        EXPECT_LE(cost, 2 * edge_cost);
}

TEST(Algorithm2, ZeroBudgetIsolatesMismatchedKernels)
{
    auto plan = dse::exploreFusion(chain(5), 0);
    EXPECT_EQ(plan.groups.size(), 5u);
    EXPECT_EQ(plan.totalCost(), 0);
}

TEST(Algorithm2, CostNeverExceedsBudget)
{
    int64_t edge_cost =
        dse::converterCostBytes(rowTiles(), colTiles());
    for (int64_t budget :
         {edge_cost / 2, edge_cost, 3 * edge_cost}) {
        auto plan = dse::exploreFusion(chain(9), budget);
        for (int64_t cost : plan.costs)
            EXPECT_LE(cost, budget);
    }
}

TEST(Algorithm2, DiamondReconvergence)
{
    // 0 -> {1, 2} -> 3 with free types: all fuse into one group.
    dse::FusionGraph g;
    for (int64_t i = 0; i < 4; ++i)
        g.addNode();
    g.addEdge(0, 1, rowTiles(), rowTiles());
    g.addEdge(0, 2, rowTiles(), rowTiles());
    g.addEdge(1, 3, rowTiles(), rowTiles());
    g.addEdge(2, 3, rowTiles(), rowTiles());
    auto plan = dse::exploreFusion(g, 1 << 30);
    EXPECT_EQ(plan.groups.size(), 1u);
    EXPECT_TRUE(plan.sameGroup(0, 3));
    EXPECT_EQ(plan.internalEdges(g).size(), 4u);
}

TEST(Algorithm2, NearestCandidatePreferred)
{
    // 0 and 1 are independent producers feeding 2. Node 1 opens
    // the later group, so 2 fuses with it ("nearest candidate" =
    // max fusion index).
    dse::FusionGraph g;
    for (int64_t i = 0; i < 3; ++i)
        g.addNode();
    g.addEdge(0, 2, rowTiles(), colTiles());
    g.addEdge(1, 2, rowTiles(), colTiles());
    auto plan = dse::exploreFusion(g, 1 << 30);
    EXPECT_EQ(plan.fusion_index[2], plan.fusion_index[1]);
    EXPECT_NE(plan.fusion_index[2], plan.fusion_index[0]);
}

TEST(Algorithm2, TopoOrderRejectsCycles)
{
    dse::FusionGraph g;
    g.addNode();
    g.addNode();
    g.addEdge(0, 1, rowTiles(), rowTiles());
    g.addEdge(1, 0, rowTiles(), rowTiles());
    EXPECT_THROW(g.topoOrder(), FatalError);
}

TEST(Algorithm2, EdgeValidation)
{
    dse::FusionGraph g;
    g.addNode();
    g.addNode();
    EXPECT_THROW(g.addEdge(0, 0, rowTiles(), rowTiles()),
                 FatalError);
    // Mismatched data spaces rejected at edge creation.
    auto small = ir::makeTiledITensor(
        TensorType(DataType::I8, {32, 32}), {16, 16});
    EXPECT_THROW(g.addEdge(0, 1, rowTiles(), small), FatalError);
}

TEST(Algorithm2, InternalEdgesListsOnChipStreams)
{
    int64_t edge_cost =
        dse::converterCostBytes(rowTiles(), colTiles());
    auto g = chain(4);
    auto plan = dse::exploreFusion(g, edge_cost); // 1 cvt/group
    auto internal = plan.internalEdges(g);
    // Edges inside groups plus external ones total the edge count.
    EXPECT_LT(internal.size(), static_cast<size_t>(g.numEdges()));
    for (int64_t e : internal)
        EXPECT_TRUE(plan.sameGroup(g.edge(e).src, g.edge(e).dst));
}
