/** @file Unit + property tests for the token behavior model
 *  (paper §5.3.1-5.3.2, Fig. 8). */

#include <gtest/gtest.h>

#include "token/token_model.h"

using namespace streamtensor::token;

TEST(TokenCurve, CountStaircase)
{
    KernelProfile p{/*initial_delay=*/3.0, /*ii=*/1.0};
    TokenCurve curve(0.0, p, 5);
    EXPECT_EQ(curve.countAt(2.9), 0);
    EXPECT_EQ(curve.countAt(3.0), 1);
    EXPECT_EQ(curve.countAt(4.0), 2);
    EXPECT_EQ(curve.countAt(7.0), 5);
    EXPECT_EQ(curve.countAt(100.0), 5); // clamped at total
}

TEST(TokenCurve, TimeOfToken)
{
    KernelProfile p{2.0, 3.0};
    TokenCurve curve(10.0, p, 4);
    EXPECT_DOUBLE_EQ(curve.timeOfToken(1), 12.0);
    EXPECT_DOUBLE_EQ(curve.timeOfToken(4), 21.0);
    EXPECT_DOUBLE_EQ(curve.finishTime(), 21.0);
}

TEST(KernelProfile, Latency)
{
    KernelProfile p{3.0, 1.0};
    EXPECT_DOUBLE_EQ(p.latency(5), 7.0); // D + (T-1)*II
}

TEST(MaxOccupancy, Figure8aExampleIsThree)
{
    // Source: II=1, D=3; Target: II=2, D=1; delay = D_src = 3;
    // five tokens. The paper reads max FIFO occupancy 3.
    KernelProfile source{3.0, 1.0};
    KernelProfile target{1.0, 2.0};
    EXPECT_EQ(maxOccupancyExact(source, target, 3.0, 5), 3);
    EXPECT_EQ(maxTokensClosedForm(source, target, 3.0, 5), 3);
}

TEST(MaxOccupancy, EqualRatesStayShallow)
{
    KernelProfile source{2.0, 4.0};
    KernelProfile target{2.0, 4.0};
    EXPECT_LE(maxOccupancyExact(source, target, 2.0, 100), 2);
}

TEST(MaxOccupancy, SlowSourceEq2HeadStart)
{
    // Source slower than target: FIFO only holds the head start
    // accumulated before the target begins (Eq. 2).
    KernelProfile source{10.0, 8.0};
    KernelProfile target{2.0, 1.0};
    // Target starts 42 cycles late: source produced
    // ceil((42-10)/8) = 4 tokens by then.
    EXPECT_EQ(maxTokensClosedForm(source, target, 42.0, 100), 4);
    EXPECT_LE(maxOccupancyExact(source, target, 42.0, 100), 5);
}

TEST(MaxOccupancy, FastSourceLargeDelayBuffersAll)
{
    KernelProfile source{1.0, 1.0};
    KernelProfile target{1.0, 1.0};
    // Target starts after the source finished: everything queues.
    EXPECT_EQ(maxOccupancyExact(source, target, 1000.0, 16), 16);
    EXPECT_EQ(maxTokensClosedForm(source, target, 1000.0, 16), 16);
}

TEST(MaxOccupancy, ZeroTokens)
{
    KernelProfile p{1.0, 1.0};
    EXPECT_EQ(maxOccupancyExact(p, p, 0.0, 0), 0);
    EXPECT_EQ(maxTokensClosedForm(p, p, 0.0, 0), 0);
}

TEST(Equalization, Names)
{
    EXPECT_EQ(equalizationName(Equalization::Normal), "normal");
    EXPECT_EQ(equalizationName(Equalization::Conservative),
              "conservative");
}

// ---- Property sweep: closed forms track the exact recurrence ----

struct OccCase
{
    double d_src, ii_src, d_tgt, ii_tgt, delay;
    int64_t tokens;
};

class OccupancyProperty : public ::testing::TestWithParam<int>
{};

TEST_P(OccupancyProperty, ClosedFormWithinOneOfExact)
{
    uint64_t s = 0xfeed + GetParam();
    auto rnd = [&]() {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        return s * 0x2545f4914f6cdd1dull;
    };
    OccCase c;
    c.d_src = 1.0 + rnd() % 50;
    c.ii_src = 1.0 + rnd() % 8;
    c.d_tgt = 1.0 + rnd() % 50;
    c.ii_tgt = 1.0 + rnd() % 8;
    c.delay = c.d_src + rnd() % 100;
    c.tokens = 1 + rnd() % 200;

    KernelProfile src{c.d_src, c.ii_src};
    KernelProfile tgt{c.d_tgt, c.ii_tgt};
    int64_t exact = maxOccupancyExact(src, tgt, c.delay, c.tokens);
    int64_t closed =
        maxTokensClosedForm(src, tgt, c.delay, c.tokens);

    // Both bounded by the stream length and at least one.
    EXPECT_GE(exact, 1);
    EXPECT_LE(exact, c.tokens);
    EXPECT_GE(closed, 1);
    EXPECT_LE(closed, c.tokens);
    // The closed forms upper-bound the exact occupancy (they
    // ignore target-side starvation shifts) and stay within the
    // target's initial-delay backlog of it.
    EXPECT_GE(closed + 1,
              exact - static_cast<int64_t>(c.d_tgt / c.ii_src));
    EXPECT_LE(exact, c.tokens);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OccupancyProperty,
                         ::testing::Range(0, 60));

// Sizing a FIFO at the exact occupancy is by definition enough to
// run without back-pressure: re-running the recurrence with that
// capacity as a stall bound must not change the result.
TEST(MaxOccupancy, ExactIsIdempotentUpperBound)
{
    KernelProfile src{5.0, 2.0};
    KernelProfile tgt{3.0, 5.0};
    int64_t occ = maxOccupancyExact(src, tgt, 5.0, 64);
    // With II_src < II_tgt the backlog grows throughout the
    // source's run: occupancy peaks near the source finish.
    EXPECT_GT(occ, 1);
    EXPECT_LE(occ, 64);
}
