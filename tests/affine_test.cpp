/** @file Unit tests for affine expressions and maps. */

#include <gtest/gtest.h>

#include "ir/affine.h"
#include "support/error.h"

using namespace streamtensor;
using ir::AffineExpr;
using ir::AffineMap;

TEST(AffineExpr, DimBasics)
{
    AffineExpr d = AffineExpr::dim(2);
    EXPECT_TRUE(d.isDim());
    EXPECT_FALSE(d.isConstant());
    EXPECT_EQ(d.dimPos(), 2);
    EXPECT_EQ(d.str(), "d2");
    EXPECT_EQ(d.evaluate({10, 20, 30}), 30);
}

TEST(AffineExpr, ConstantBasics)
{
    AffineExpr c = AffineExpr::constant(7);
    EXPECT_TRUE(c.isConstant());
    EXPECT_EQ(c.constantValue(), 7);
    EXPECT_EQ(c.str(), "7");
    EXPECT_EQ(c.evaluate({1, 2}), 7);
}

TEST(AffineExpr, WrongAccessorPanics)
{
    EXPECT_THROW(AffineExpr::dim(0).constantValue(), PanicError);
    EXPECT_THROW(AffineExpr::constant(1).dimPos(), PanicError);
}

TEST(AffineMap, Identity)
{
    AffineMap map = AffineMap::identity(3);
    EXPECT_TRUE(map.isIdentity());
    EXPECT_TRUE(map.isPermutation());
    EXPECT_EQ(map.apply({1, 2, 3}), (std::vector<int64_t>{1, 2, 3}));
    EXPECT_EQ(map.str(), "(d0,d1,d2)->(d0,d1,d2)");
}

TEST(AffineMap, Transpose)
{
    AffineMap map = AffineMap::fromPermutation({1, 0});
    EXPECT_FALSE(map.isIdentity());
    EXPECT_TRUE(map.isPermutation());
    EXPECT_EQ(map.apply({3, 8}), (std::vector<int64_t>{8, 3}));
    EXPECT_EQ(map.str(), "(d0,d1)->(d1,d0)");
}

TEST(AffineMap, RevisitDimIsNotPermutation)
{
    // Fig. 5(c): (d0,d1,d2)->(d2,d0), d1 is a revisit dim.
    AffineMap map(3, {AffineExpr::dim(2), AffineExpr::dim(0)});
    EXPECT_FALSE(map.isPermutation());
    EXPECT_EQ(map.resultForDim(0), 1);
    EXPECT_EQ(map.resultForDim(1), -1);
    EXPECT_EQ(map.resultForDim(2), 0);
    EXPECT_EQ(map.apply({2, 9, 4}), (std::vector<int64_t>{4, 2}));
}

TEST(AffineMap, ConstantResults)
{
    AffineMap map(1, {AffineExpr::constant(0), AffineExpr::dim(0)});
    EXPECT_EQ(map.apply({5}), (std::vector<int64_t>{0, 5}));
    EXPECT_FALSE(map.isPermutation());
}

TEST(AffineMap, OutOfRangeDimRejected)
{
    EXPECT_THROW(AffineMap(1, {AffineExpr::dim(1)}), FatalError);
}

TEST(AffineMap, ApplyArityChecked)
{
    AffineMap map = AffineMap::identity(2);
    EXPECT_THROW(map.apply({1}), FatalError);
}

TEST(AffineMap, Equality)
{
    EXPECT_EQ(AffineMap::identity(2), AffineMap::identity(2));
    EXPECT_NE(AffineMap::identity(2),
              AffineMap::fromPermutation({1, 0}));
}
