/** @file Unit tests for the op IR: builder, printer, verifier. */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "support/error.h"

#include "testing/fixtures.h"

using namespace streamtensor;
using ir::DataType;
using ir::ITensorType;
using ir::Module;
using ir::OpBuilder;
using ir::OpKind;
using fixtures::tileType;

TEST(Builder, WriteReadRoundTrip)
{
    Module module;
    OpBuilder b(module, module.body());
    ir::Op *empty = b.itensorEmpty(tileType());
    ir::Op *value = b.create(OpKind::Compute, {},
                             {ir::Type(ir::TensorType(
                                 DataType::F32, {2, 2}))});
    ir::Op *write = b.itensorWrite(value->result(),
                                   empty->result());
    EXPECT_EQ(write->result()->type().itensor(), tileType());
    ir::Op *read = b.itensorRead(write->result());
    EXPECT_EQ(read->result()->type().tensor().shape(),
              (std::vector<int64_t>{2, 2}));

    auto verify = ir::verifyModule(module);
    EXPECT_TRUE(verify.ok()) << verify.str();
}

TEST(Builder, UseListsTracked)
{
    Module module;
    OpBuilder b(module, module.body());
    ir::Op *inst = b.itensorInstance(tileType());
    EXPECT_TRUE(inst->result()->users().empty());
    b.itensorFork(inst->result(), 3);
    EXPECT_TRUE(inst->result()->hasSingleUse());
}

TEST(Builder, ForkDuplicatesType)
{
    Module module;
    OpBuilder b(module, module.body());
    ir::Op *inst = b.itensorInstance(tileType());
    ir::Op *fork = b.itensorFork(inst->result(), 2);
    ASSERT_EQ(fork->numResults(), 2);
    EXPECT_EQ(fork->result(0)->type().itensor(), tileType());
    EXPECT_EQ(fork->result(1)->type().itensor(), tileType());
}

TEST(Builder, ConverterRequiresSameDataSpace)
{
    Module module;
    OpBuilder b(module, module.body());
    ir::Op *inst = b.itensorInstance(tileType());
    ITensorType other = ir::makeTiledITensor(
        ir::TensorType(DataType::F32, {16, 16}), {2, 2});
    EXPECT_THROW(b.itensorConverter(inst->result(), other),
                 FatalError);
}

TEST(Builder, StreamOps)
{
    Module module;
    OpBuilder b(module, module.body());
    ir::Op *stream = b.streamCreate(
        ir::StreamType(DataType::I8, {4}, 16));
    ir::Op *value = b.create(
        OpKind::Compute, {},
        {ir::Type(ir::TensorType(DataType::I8, {4}))});
    b.streamWrite(value->result(), stream->result());
    ir::Op *read = b.streamRead(
        stream->result(),
        ir::Type(ir::TensorType(DataType::I8, {4})));
    EXPECT_TRUE(read->result()->type().isTensor());
    auto verify = ir::verifyModule(module);
    EXPECT_TRUE(verify.ok()) << verify.str();
}

TEST(Builder, KernelTaskYieldStructure)
{
    Module module;
    OpBuilder b(module, module.body());
    ir::Op *kernel = b.create(OpKind::Kernel, {}, {}, "k0");
    ir::Region *body = b.addRegion(kernel);
    OpBuilder kb(module, *body);
    ir::Op *task = kb.task({}, {}, "t0");
    OpBuilder tb(module, *task->region());
    tb.loopNest({4, 4}, "loop");
    kb.yield({});

    auto verify = ir::verifyModule(module);
    EXPECT_TRUE(verify.ok()) << verify.str();
}

TEST(Verifier, KernelWithoutYieldFlagged)
{
    Module module;
    OpBuilder b(module, module.body());
    ir::Op *kernel = b.create(OpKind::Kernel, {}, {}, "k0");
    b.addRegion(kernel);
    auto verify = ir::verifyModule(module);
    EXPECT_FALSE(verify.ok());
    EXPECT_NE(verify.str().find("yield"), std::string::npos);
}

TEST(Verifier, WriteShapeMismatchFlagged)
{
    Module module;
    OpBuilder b(module, module.body());
    ir::Op *empty = b.itensorEmpty(tileType());
    ir::Op *bad = b.create(OpKind::Compute, {},
                           {ir::Type(ir::TensorType(
                               DataType::F32, {3, 3}))});
    // Bypass builder convenience to build a raw bad write.
    ir::Op *write =
        b.create(OpKind::ItensorWrite,
                 {bad->result(), empty->result()},
                 {ir::Type(tileType())});
    auto verify = ir::verifyOp(*write);
    EXPECT_FALSE(verify.ok());
    EXPECT_NE(verify.str().find("element shape"),
              std::string::npos);
}

TEST(Printer, RendersOpsAndTypes)
{
    Module module("demo");
    OpBuilder b(module, module.body());
    ir::Op *stream = b.streamCreate(
        ir::StreamType(DataType::I8, {4}, 16));
    (void)stream;
    std::string text = ir::printModule(module);
    EXPECT_NE(text.find("module @demo"), std::string::npos);
    EXPECT_NE(text.find("stream<4xi8, depth:16>"),
              std::string::npos);
}

TEST(Printer, LoopNestAttrsPrinted)
{
    Module module;
    OpBuilder b(module, module.body());
    b.loopNest({2, 8}, "nest");
    std::string text = ir::printModule(module);
    EXPECT_NE(text.find("trips = [2,8]"), std::string::npos);
    EXPECT_NE(text.find("@nest"), std::string::npos);
}

TEST(Module, FreshNamesAreUnique)
{
    Module module;
    EXPECT_NE(module.freshName(), module.freshName());
}
