/** @file Unit tests for the host runtime executor. */

#include <gtest/gtest.h>

#include <thread>

#include "support/error.h"

#include "models/bucketing.h"
#include "runtime/executor.h"

using namespace streamtensor;

namespace {

runtime::LlmExecutor &
gpt2Executor()
{
    static runtime::LlmExecutor executor(models::gpt2Config(),
                                         hls::u55c());
    return executor;
}

} // namespace

TEST(Executor, RunProducesFiniteMetrics)
{
    auto r = gpt2Executor().run(32, 32);
    EXPECT_GT(r.ttft_ms, 0.0);
    EXPECT_GT(r.decode_ms_per_token, 0.0);
    EXPECT_GT(r.tokens_per_s, 0.0);
    EXPECT_GT(r.energy_j, 0.0);
    EXPECT_GT(r.tokens_per_joule, 0.0);
    EXPECT_FALSE(r.deadlock);
}

TEST(Executor, LatencyDecomposes)
{
    auto r = gpt2Executor().run(32, 64);
    EXPECT_NEAR(r.total_latency_ms,
                r.ttft_ms + 64 * r.decode_ms_per_token, 1e-6);
    EXPECT_NEAR(r.tokens_per_s,
                64.0 / (64 * r.decode_ms_per_token) * 1e3, 1e-6);
}

TEST(Executor, TtftScalesWithInputLength)
{
    auto r32 = gpt2Executor().run(32, 32);
    auto r128 = gpt2Executor().run(128, 32);
    // Roughly linear: 4x input within [2.5x, 6x].
    double ratio = r128.ttft_ms / r32.ttft_ms;
    EXPECT_GT(ratio, 2.5);
    EXPECT_LT(ratio, 6.0);
}

TEST(Executor, BlockCacheReusesCompiles)
{
    runtime::LlmExecutor executor(models::gpt2Config(),
                                  hls::u55c());
    const auto &a = executor.block(models::decodeShapes(48));
    const auto &b = executor.block(models::decodeShapes(48));
    EXPECT_EQ(&a, &b);
    const auto &c = executor.block(models::decodeShapes(96));
    EXPECT_NE(&a, &c);
}

TEST(Executor, PowerWithinPlatformEnvelope)
{
    auto r = gpt2Executor().run(64, 64);
    EXPECT_GT(r.avg_power_w,
              hls::u55c().tdp_watts *
                  hls::u55c().idle_power_fraction * 0.99);
    EXPECT_LE(r.avg_power_w, hls::u55c().tdp_watts);
}

TEST(Executor, AllModelsRunDecodeWithoutDeadlock)
{
    for (const auto &cfg : models::allConfigs()) {
        runtime::LlmExecutor executor(cfg, hls::u55c());
        auto r = executor.run(32, 32);
        EXPECT_FALSE(r.deadlock) << cfg.name;
        EXPECT_GT(r.tokens_per_s, 0.0) << cfg.name;
    }
}

TEST(Executor, DeterministicAcrossRuns)
{
    runtime::LlmExecutor a(models::gpt2Config(), hls::u55c());
    runtime::LlmExecutor b(models::gpt2Config(), hls::u55c());
    auto ra = a.run(32, 32);
    auto rb = b.run(32, 32);
    EXPECT_DOUBLE_EQ(ra.total_latency_ms, rb.total_latency_ms);
    EXPECT_DOUBLE_EQ(ra.ttft_ms, rb.ttft_ms);
}

TEST(Executor, RejectsBadRequests)
{
    EXPECT_THROW(gpt2Executor().run(0, 8), FatalError);
    EXPECT_THROW(gpt2Executor().run(8, 0), FatalError);
}

TEST(Executor, CacheKeyedByBlockShapesNotLengthPair)
{
    // Prefill {48, 48} and decode {1, 48} share a kv_len but are
    // distinct shapes and must compile separately.
    runtime::LlmExecutor executor(models::gpt2Config(),
                                  hls::u55c());
    const auto &prefill =
        executor.block(models::prefillShapes(48));
    const auto &decode = executor.block(models::decodeShapes(48));
    EXPECT_NE(&prefill, &decode);
    EXPECT_EQ(executor.compileCount(), 2);
}

TEST(Executor, RequestsInSameBucketCompileExactlyOnce)
{
    // Serving regression: two requests whose lengths land in the
    // same buckets must hit one compiled block. Inputs 9 and 12
    // prefill-bucket to 16 and every decode context (11..15)
    // buckets to 16 too, so the second request adds zero
    // compiles.
    models::BucketPolicy buckets;
    runtime::LlmExecutor executor(models::gpt2Config(),
                                  hls::u55c());
    auto serveOnce = [&](int64_t input_len, int64_t output_len) {
        (void)executor.step(
            {{models::bucketedPrefillShapes(input_len, buckets),
              1}});
        for (int64_t t = 1; t < output_len; ++t)
            (void)executor.step(
                {{models::bucketedDecodeShapes(input_len + t + 1,
                                               buckets),
                  1}});
    };
    serveOnce(9, 3);
    int64_t compiles_after_first = executor.compileCount();
    EXPECT_EQ(compiles_after_first, 2); // one prefill, one decode
    serveOnce(12, 3);
    EXPECT_EQ(executor.compileCount(), compiles_after_first);
}

TEST(Executor, StepCostsBatchedGroups)
{
    runtime::LlmExecutor executor(models::gpt2Config(),
                                  hls::u55c());
    auto single = executor.step({{models::decodeShapes(96), 1}});
    auto batched = executor.step({{models::decodeShapes(96), 4}});
    EXPECT_FALSE(single.deadlock);
    EXPECT_GT(single.step_ms, 0.0);
    // Batching amortises weight streaming: more than one
    // sequence's cost, well under four serial passes.
    EXPECT_GT(batched.step_ms, single.step_ms);
    EXPECT_LT(batched.step_ms, 4.0 * single.step_ms);
}

TEST(Executor, StepSumsShapeGroups)
{
    runtime::LlmExecutor executor(models::gpt2Config(),
                                  hls::u55c());
    auto decode = executor.step({{models::decodeShapes(96), 2}});
    auto prefill =
        executor.step({{models::prefillShapes(32), 1}});
    auto mixed =
        executor.step({{models::decodeShapes(96), 2},
                       {models::prefillShapes(32), 1}});
    EXPECT_GT(mixed.step_ms, decode.step_ms);
    EXPECT_GT(mixed.step_ms, prefill.step_ms);
    // Overhead amortisation makes the combined step cheaper than
    // the two separate steps.
    EXPECT_LT(mixed.step_ms, decode.step_ms + prefill.step_ms);
}

TEST(Executor, StepIsDeterministic)
{
    runtime::LlmExecutor a(models::gpt2Config(), hls::u55c());
    runtime::LlmExecutor b(models::gpt2Config(), hls::u55c());
    std::vector<runtime::StepGroup> groups = {
        {models::decodeShapes(64), 3},
        {models::prefillShapes(32), 1}};
    EXPECT_DOUBLE_EQ(a.step(groups).step_ms,
                     b.step(groups).step_ms);
}

TEST(Executor, StepMergesDuplicateShapeGroups)
{
    runtime::LlmExecutor executor(models::gpt2Config(),
                                  hls::u55c());
    auto split = executor.step({{models::decodeShapes(96), 1},
                                {models::decodeShapes(96), 1}});
    auto merged = executor.step({{models::decodeShapes(96), 2}});
    EXPECT_DOUBLE_EQ(split.step_ms, merged.step_ms);
    EXPECT_EQ(executor.compileCount(), 1);
}

TEST(Executor, StepRejectsMalformedGroups)
{
    runtime::LlmExecutor executor(models::gpt2Config(),
                                  hls::u55c());
    EXPECT_THROW(executor.step({}), FatalError);
    EXPECT_THROW(
        executor.step({{models::decodeShapes(48), 0}}),
        FatalError);
}

TEST(CompiledBlock, BatchedCyclesGrowLinearlyAtSteadyInterval)
{
    runtime::LlmExecutor executor(models::gpt2Config(),
                                  hls::u55c());
    const auto &blk = executor.block(models::decodeShapes(48));
    double b1 = blk.batchedCycles(1);
    double b2 = blk.batchedCycles(2);
    double b3 = blk.batchedCycles(3);
    EXPECT_DOUBLE_EQ(b1, blk.totalCycles());
    EXPECT_GT(b2, b1);
    // Marginal cost of each extra member is one steady interval.
    EXPECT_DOUBLE_EQ(b3 - b2, b2 - b1);
    // The steady interval never exceeds the full fill latency.
    EXPECT_LE(b2 - b1, b1);
    for (const auto &s : blk.sims) {
        double interval = sim::steadyIntervalCycles(s);
        EXPECT_GT(interval, 0.0);
        EXPECT_LE(interval, s.cycles);
    }
    EXPECT_THROW(blk.batchedCycles(0), FatalError);
}

TEST(CompiledBlock, AggregatesGroupCycles)
{
    runtime::LlmExecutor executor(models::gpt2Config(),
                                  hls::u55c());
    const auto &blk = executor.block(models::decodeShapes(48));
    EXPECT_GT(blk.totalCycles(), 0.0);
    EXPECT_FALSE(blk.deadlocked());
    EXPECT_EQ(blk.sims.size(),
              static_cast<size_t>(
                  blk.compile.design.components.numGroups()));
}

TEST(Executor, WarmRaceCompilesOnce)
{
    // Two threads warming the same bucketed shape concurrently
    // must produce exactly one compile: the second caller blocks
    // on the in-flight entry instead of compiling a duplicate
    // (the dedupe documented on block()).
    runtime::LlmExecutor executor(models::gpt2Config(),
                                  hls::u55c());
    auto shapes = models::decodeShapes(64);
    const runtime::CompiledBlock *a = nullptr;
    const runtime::CompiledBlock *b = nullptr;
    std::thread t1([&] { a = &executor.block(shapes); });
    std::thread t2([&] { b = &executor.block(shapes); });
    t1.join();
    t2.join();
    EXPECT_EQ(executor.compileCount(), 1);
    // Both callers see the same cached entry.
    EXPECT_EQ(a, b);
    // A third call is a pure cache hit.
    executor.block(shapes);
    EXPECT_EQ(executor.compileCount(), 1);
}

TEST(Executor, GatedPrefillMatchesUngatedWhenWeightsResident)
{
    // All-zero watermarks (weights resident before the run) gate
    // nothing: the chained per-layer sum equals run().ttft_ms up
    // to summation order.
    runtime::LlmExecutor executor(models::gpt2Config(),
                                  hls::u55c());
    auto run = executor.run(32, 1);
    std::vector<double> warm(
        static_cast<size_t>(executor.config().layers), 0.0);
    double end = executor.gatedPrefillEndMs(32, warm, 0.0);
    EXPECT_NEAR(end, run.ttft_ms, 1e-6 * run.ttft_ms);
}

TEST(Executor, GatedPrefillStallsOnLateWeights)
{
    runtime::LlmExecutor executor(models::gpt2Config(),
                                  hls::u55c());
    auto layers = static_cast<size_t>(executor.config().layers);

    // A far-future uniform watermark pins the result: only layer
    // 0 waits (its successors' weights landed long before their
    // turn), so the pass degenerates to ready + one full prefill.
    std::vector<double> warm(layers, 0.0);
    double warm_end = executor.gatedPrefillEndMs(32, warm, 0.0);
    std::vector<double> late(layers, 1e6);
    double late_end = executor.gatedPrefillEndMs(32, late, 0.0);
    EXPECT_NEAR(late_end, 1e6 + warm_end, 1e-6 * late_end);

    // Gating is monotone in the watermark and never beats warm.
    std::vector<double> partial(layers, 0.0);
    partial.back() = warm_end; // only the last layer streams late
    double partial_end =
        executor.gatedPrefillEndMs(32, partial, 0.0);
    EXPECT_GE(partial_end, warm_end);
    EXPECT_LE(partial_end, late_end);

    EXPECT_THROW(executor.gatedPrefillEndMs(32, {}, 0.0),
                 FatalError);
}
