/** @file Unit tests for the host runtime executor. */

#include <gtest/gtest.h>

#include "support/error.h"

#include "runtime/executor.h"

using namespace streamtensor;

namespace {

runtime::LlmExecutor &
gpt2Executor()
{
    static runtime::LlmExecutor executor(models::gpt2Config(),
                                         hls::u55c());
    return executor;
}

} // namespace

TEST(Executor, RunProducesFiniteMetrics)
{
    auto r = gpt2Executor().run(32, 32);
    EXPECT_GT(r.ttft_ms, 0.0);
    EXPECT_GT(r.decode_ms_per_token, 0.0);
    EXPECT_GT(r.tokens_per_s, 0.0);
    EXPECT_GT(r.energy_j, 0.0);
    EXPECT_GT(r.tokens_per_joule, 0.0);
    EXPECT_FALSE(r.deadlock);
}

TEST(Executor, LatencyDecomposes)
{
    auto r = gpt2Executor().run(32, 64);
    EXPECT_NEAR(r.total_latency_ms,
                r.ttft_ms + 64 * r.decode_ms_per_token, 1e-6);
    EXPECT_NEAR(r.tokens_per_s,
                64.0 / (64 * r.decode_ms_per_token) * 1e3, 1e-6);
}

TEST(Executor, TtftScalesWithInputLength)
{
    auto r32 = gpt2Executor().run(32, 32);
    auto r128 = gpt2Executor().run(128, 32);
    // Roughly linear: 4x input within [2.5x, 6x].
    double ratio = r128.ttft_ms / r32.ttft_ms;
    EXPECT_GT(ratio, 2.5);
    EXPECT_LT(ratio, 6.0);
}

TEST(Executor, BlockCacheReusesCompiles)
{
    runtime::LlmExecutor executor(models::gpt2Config(),
                                  hls::u55c());
    const auto &a = executor.block(models::decodeShapes(48));
    const auto &b = executor.block(models::decodeShapes(48));
    EXPECT_EQ(&a, &b);
    const auto &c = executor.block(models::decodeShapes(96));
    EXPECT_NE(&a, &c);
}

TEST(Executor, PowerWithinPlatformEnvelope)
{
    auto r = gpt2Executor().run(64, 64);
    EXPECT_GT(r.avg_power_w,
              hls::u55c().tdp_watts *
                  hls::u55c().idle_power_fraction * 0.99);
    EXPECT_LE(r.avg_power_w, hls::u55c().tdp_watts);
}

TEST(Executor, AllModelsRunDecodeWithoutDeadlock)
{
    for (const auto &cfg : models::allConfigs()) {
        runtime::LlmExecutor executor(cfg, hls::u55c());
        auto r = executor.run(32, 32);
        EXPECT_FALSE(r.deadlock) << cfg.name;
        EXPECT_GT(r.tokens_per_s, 0.0) << cfg.name;
    }
}

TEST(Executor, DeterministicAcrossRuns)
{
    runtime::LlmExecutor a(models::gpt2Config(), hls::u55c());
    runtime::LlmExecutor b(models::gpt2Config(), hls::u55c());
    auto ra = a.run(32, 32);
    auto rb = b.run(32, 32);
    EXPECT_DOUBLE_EQ(ra.total_latency_ms, rb.total_latency_ms);
    EXPECT_DOUBLE_EQ(ra.ttft_ms, rb.ttft_ms);
}

TEST(Executor, RejectsBadRequests)
{
    EXPECT_THROW(gpt2Executor().run(0, 8), FatalError);
    EXPECT_THROW(gpt2Executor().run(8, 0), FatalError);
}

TEST(CompiledBlock, AggregatesGroupCycles)
{
    runtime::LlmExecutor executor(models::gpt2Config(),
                                  hls::u55c());
    const auto &blk = executor.block(models::decodeShapes(48));
    EXPECT_GT(blk.totalCycles(), 0.0);
    EXPECT_FALSE(blk.deadlocked());
    EXPECT_EQ(blk.sims.size(),
              static_cast<size_t>(
                  blk.compile.design.components.numGroups()));
}
