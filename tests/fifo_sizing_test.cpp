/** @file Unit + property tests for LP-based FIFO sizing
 *  (paper §5.3.4). */

#include <gtest/gtest.h>

#include "support/error.h"
#include "token/fifo_sizing.h"

using namespace streamtensor;
using namespace streamtensor::token;

namespace {

/** Paper Fig. 8(f): kernel0 fans out to kernel1 and kernel2,
 *  kernel1 feeds kernel2. */
FifoSizingProblem
figure8f()
{
    FifoSizingProblem p;
    p.addNode({40.0, 103.0});  // kernel0
    p.addNode({120.0, 183.0}); // kernel1
    p.addNode({20.0, 146.0});  // kernel2
    p.addEdge(0, 1, 64);
    p.addEdge(0, 2, 64);
    p.addEdge(1, 2, 64);
    return p;
}

} // namespace

TEST(FifoSizing, Fig8fDelaysAndObjective)
{
    auto result = sizeFifos(figure8f());
    ASSERT_TRUE(result.used_lp);
    // Paper Fig. 8(f): delay[0][1] >= D[0] = 40, delay[1][2] >=
    // D[1] = 120, and delay[0][2] >= D[0] + D[1] = 160 (kernel2
    // waits for its latest operand): optimum 40 + 160 + 120.
    EXPECT_NEAR(result.objective, 320.0, 1e-6);
    EXPECT_NEAR(result.delays[0], 40.0, 1e-6);
    EXPECT_NEAR(result.delays[1], 160.0, 1e-6);
    EXPECT_NEAR(result.delays[2], 120.0, 1e-6);
}

TEST(FifoSizing, PathConstraintsSatisfied)
{
    auto problem = figure8f();
    auto result = sizeFifos(problem);
    // Every path's delay sum >= the pairwise threshold (Eq. 4/5).
    EXPECT_GE(result.delays[0] + 1e-9, 40.0);
    EXPECT_GE(result.delays[1] + 1e-9, 160.0);
    EXPECT_GE(result.delays[2] + 1e-9, 120.0);
    EXPECT_GE(result.delays[0] + result.delays[2] + 1e-9, 160.0);
}

TEST(FifoSizing, StartTimesAreLongestDPaths)
{
    auto result = sizeFifos(figure8f());
    EXPECT_DOUBLE_EQ(result.start_times[0], 0.0);
    EXPECT_DOUBLE_EQ(result.start_times[1], 40.0);
    EXPECT_DOUBLE_EQ(result.start_times[2], 160.0);
}

TEST(FifoSizing, DepthsAtLeastTwo)
{
    auto result = sizeFifos(figure8f());
    for (int64_t d : result.depths)
        EXPECT_GE(d, 2);
}

TEST(FifoSizing, ConservativeNeverDeeper)
{
    auto problem = figure8f();
    FifoSizingOptions normal;
    FifoSizingOptions conservative;
    conservative.equalization = Equalization::Conservative;
    auto rn = sizeFifos(problem, normal);
    auto rc = sizeFifos(problem, conservative);
    EXPECT_LE(rc.totalDepth(), rn.totalDepth());
}

TEST(FifoSizing, ExactOccupancyOptionWorks)
{
    auto problem = figure8f();
    FifoSizingOptions opts;
    opts.exact_occupancy = true;
    auto result = sizeFifos(problem, opts);
    for (int64_t d : result.depths) {
        EXPECT_GE(d, 2);
        EXPECT_LE(d, 64 + 2);
    }
}

TEST(FifoSizing, PotentialFallbackWhenPathsExplode)
{
    // A ladder graph has exponentially many paths; cap at 4 to
    // force the potential fallback.
    FifoSizingProblem p;
    for (int i = 0; i < 6; ++i)
        p.addNode({10.0, 100.0});
    for (int i = 0; i + 1 < 6; ++i) {
        p.addEdge(i, i + 1, 16);
    }
    p.addEdge(0, 2, 16);
    p.addEdge(2, 4, 16);
    FifoSizingOptions opts;
    opts.max_paths = 4;
    auto result = sizeFifos(p, opts);
    EXPECT_FALSE(result.used_lp);
    // Potentials still satisfy the single-edge constraints.
    for (double d : result.delays)
        EXPECT_GE(d + 1e-9, 10.0);
}

TEST(FifoSizing, RejectsCycles)
{
    FifoSizingProblem p;
    p.addNode({1.0, 10.0});
    p.addNode({1.0, 10.0});
    p.addEdge(0, 1, 4);
    p.addEdge(1, 0, 4);
    EXPECT_THROW(sizeFifos(p), FatalError);
}

TEST(FifoSizing, RejectsBadInputs)
{
    FifoSizingProblem p;
    p.addNode({1.0, 10.0});
    EXPECT_THROW(p.addNode({-1.0, 10.0}), FatalError);
    EXPECT_THROW(p.addNode({1.0, 0.0}), FatalError);
    EXPECT_THROW(p.addEdge(0, 0, 4), FatalError);
    EXPECT_THROW(p.addEdge(0, 5, 4), FatalError);
}

TEST(FifoSizing, EmptyGraph)
{
    FifoSizingProblem p;
    p.addNode({1.0, 10.0});
    auto result = sizeFifos(p);
    EXPECT_TRUE(result.depths.empty());
    EXPECT_EQ(result.objective, 0.0);
}

TEST(FifoSizing, ZeroSkewChainClampsDepthAboveZero)
{
    // A perfectly rate-matched chain with zero initial delays: the
    // LP optimum is all-zero delays (zero-depth channels), but the
    // derived depths must stay >= 2 — a literal depth-0 FIFO would
    // deadlock the handshake on the first token.
    FifoSizingProblem p;
    p.addNode({0.0, 100.0});
    p.addNode({0.0, 100.0});
    p.addNode({0.0, 100.0});
    p.addEdge(0, 1, 16);
    p.addEdge(1, 2, 16);
    auto result = sizeFifos(p);
    EXPECT_NEAR(result.objective, 0.0, 1e-9);
    for (double d : result.delays)
        EXPECT_NEAR(d, 0.0, 1e-9);
    for (int64_t depth : result.depths)
        EXPECT_GE(depth, 2);
}

TEST(FifoSizing, SingleTokenEdgeStillSized)
{
    // Degenerate single-token edge: depth derivation must not
    // underflow to 0 when tokens == 1 and the skew is tiny.
    FifoSizingProblem p;
    p.addNode({1.0, 2.0});
    p.addNode({1.0, 2.0});
    p.addEdge(0, 1, 1);
    auto result = sizeFifos(p);
    ASSERT_EQ(result.depths.size(), 1u);
    EXPECT_GE(result.depths[0], 2);
    EXPECT_GE(result.delays[0] + 1e-9, 1.0);
}

// ---- Crossing-edge pricing (inter-die link model) ----

TEST(FifoSizing, LinkLatencyEntersPathThresholds)
{
    // Fig. 8(f) with the 0->1 edge crossing a die boundary at 50
    // cycles: kernel1's operand lands 50 cycles later, and every
    // path through that edge inherits the delay.
    FifoSizingProblem p;
    p.addNode({40.0, 103.0});
    p.addNode({120.0, 183.0});
    p.addNode({20.0, 146.0});
    p.addEdge(0, 1, 64, /*link_latency=*/50.0);
    p.addEdge(0, 2, 64);
    p.addEdge(1, 2, 64);
    auto result = sizeFifos(p);
    ASSERT_TRUE(result.used_lp);
    EXPECT_DOUBLE_EQ(result.start_times[1], 90.0); // 40 + 50
    EXPECT_DOUBLE_EQ(result.start_times[2], 210.0); // 90 + 120
    // delay[0][1] >= D[0] + L = 90; delay[0][2] >= D[0] + L +
    // D[1] = 210; delay[1][2] >= D[1] = 120.
    EXPECT_GE(result.delays[0] + 1e-9, 90.0);
    EXPECT_GE(result.delays[0] + result.delays[2] + 1e-9, 210.0);
    EXPECT_GE(result.delays[1] + 1e-9, 210.0);
    EXPECT_NEAR(result.objective, 420.0, 1e-6);
}

TEST(FifoSizing, ZeroLinkCostIsBitIdentical)
{
    auto base = sizeFifos(figure8f());
    FifoSizingProblem p;
    p.addNode({40.0, 103.0});
    p.addNode({120.0, 183.0});
    p.addNode({20.0, 146.0});
    p.addEdge(0, 1, 64, 0.0);
    p.addEdge(0, 2, 64, 0.0);
    p.addEdge(1, 2, 64, 0.0);
    auto zero = sizeFifos(p);
    ASSERT_EQ(base.depths.size(), zero.depths.size());
    for (size_t e = 0; e < base.depths.size(); ++e) {
        EXPECT_EQ(base.depths[e], zero.depths[e]);
        EXPECT_EQ(base.delays[e], zero.delays[e]);
    }
    EXPECT_EQ(base.objective, zero.objective);
}

TEST(FifoSizing, LinkLatencyDeepensCrossingFifoMonotonically)
{
    // One producer/consumer pair at equal rates: the crossing FIFO
    // must absorb the round-trip link delay, so depth grows
    // monotonically with the latency and strictly beyond the
    // co-located depth once the link dominates the skew.
    auto depthAt = [](double latency) {
        FifoSizingProblem p;
        p.addNode({10.0, 138.0});
        p.addNode({10.0, 138.0});
        p.addEdge(0, 1, 64, latency);
        auto r = sizeFifos(p);
        return r.depths[0];
    };
    int64_t d0 = depthAt(0.0);
    int64_t prev = d0;
    for (double latency : {4.0, 16.0, 64.0, 256.0}) {
        int64_t d = depthAt(latency);
        EXPECT_GE(d, prev) << latency;
        prev = d;
    }
    EXPECT_GT(prev, d0);
}

TEST(FifoSizing, NodeIiPenaltySlowsEveryEdgeOfTheNode)
{
    // The II penalty is node-level (matching the simulators'
    // component pace model): a crossing kernel paces slower on
    // its co-located edges too. A slow consumer on a fast feed
    // needs a deeper FIFO, so penalising the consumer node must
    // never shrink — and here must grow — the depth of an edge
    // that itself has no link cost.
    auto depthWithPenalty = [](double penalty) {
        FifoSizingProblem p;
        p.addNode({10.0, 74.0});
        NodeTiming slow{10.0, 74.0};
        slow.ii_penalty = penalty;
        p.addNode(slow);
        p.addEdge(0, 1, 64); // co-located edge
        return sizeFifos(p).depths[0];
    };
    int64_t base = depthWithPenalty(0.0);
    int64_t penalised = depthWithPenalty(4.0);
    EXPECT_GE(base, 2);
    EXPECT_GT(penalised, base);
}

// ---- Property sweep: random chains with skip edges ----

class SizingProperty : public ::testing::TestWithParam<int>
{};

TEST_P(SizingProperty, LpNoWorseThanPotentials)
{
    uint64_t s = 0xabcd + GetParam();
    auto rnd = [&]() {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        return s * 0x2545f4914f6cdd1dull;
    };
    int n = 3 + rnd() % 8;
    FifoSizingProblem p;
    for (int i = 0; i < n; ++i) {
        double d = 5.0 + rnd() % 200;
        p.addNode({d, d + 100.0 + rnd() % 1000});
    }
    for (int i = 0; i + 1 < n; ++i)
        p.addEdge(i, i + 1, 8 + rnd() % 64);
    for (int i = 0; i + 2 < n; i += 2)
        if (rnd() % 2)
            p.addEdge(i, i + 2, 8 + rnd() % 64);

    FifoSizingOptions lp_opts;
    auto lp = sizeFifos(p, lp_opts);
    FifoSizingOptions pot_opts;
    pot_opts.max_paths = 0; // force fallback
    auto pot = sizeFifos(p, pot_opts);
    ASSERT_TRUE(lp.used_lp);
    ASSERT_FALSE(pot.used_lp);
    // The LP optimum never exceeds the potential solution.
    EXPECT_LE(lp.objective, pot.objective + 1e-6);
    // Depths from both are valid (>= 2, <= tokens bound).
    for (size_t e = 0; e < lp.depths.size(); ++e) {
        EXPECT_GE(lp.depths[e], 2);
        EXPECT_GE(pot.depths[e], 2);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SizingProperty,
                         ::testing::Range(0, 30));
