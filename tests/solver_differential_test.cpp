/**
 * @file
 * Randomized differential tests: the sparse simplex (solver/lp.h)
 * against the retained dense reference implementation
 * (solver/dense_reference.h), plus warm-start-vs-cold equivalence
 * for both solveLp and solveIlp.
 *
 * Instances mix LE/GE/EQ relations, negative right-hand sides,
 * duplicated rows (degenerate ties), and duplicate variable
 * mentions in sparse rows. The two solvers may visit different
 * bases, so only status and objective are compared (the optimum
 * value is unique; the argmin need not be).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "solver/dense_reference.h"
#include "solver/ilp.h"
#include "solver/lp.h"

using namespace streamtensor::solver;

namespace {

class Rng
{
  public:
    explicit Rng(uint64_t seed) : state_(seed ? seed : 1) {}

    uint64_t
    next()
    {
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        return state_ * 0x2545f4914f6cdd1dull;
    }

    /** Uniform in [0, bound). */
    int64_t pick(int64_t bound) { return next() % bound; }

  private:
    uint64_t state_;
};

Relation
pickRelation(Rng &rng)
{
    switch (rng.pick(4)) {
      case 0: return Relation::EQ;
      case 1: return Relation::LE;
      default: return Relation::GE;
    }
}

/** Random LP with mixed relations, negative rhs, repeated rows
 *  (degenerate ties), and duplicate sparse mentions. */
LpProblem
randomLp(Rng &rng)
{
    int64_t n = 2 + rng.pick(12);
    int64_t m = 1 + rng.pick(20);
    LpProblem lp(n);
    for (int64_t j = 0; j < n; ++j)
        lp.setObjective(j, static_cast<double>(1 + rng.pick(5)));

    std::vector<int64_t> prev_vars;
    std::vector<double> prev_coeffs;
    Relation prev_rel = Relation::GE;
    double prev_rhs = 0.0;
    for (int64_t i = 0; i < m; ++i) {
        if (i > 0 && rng.pick(5) == 0) {
            // Duplicate the previous row verbatim: degenerate ties
            // that exercise the Bland fallback.
            lp.addSparseConstraint(prev_vars, prev_coeffs, prev_rel,
                                   prev_rhs);
            continue;
        }
        int64_t k = 1 + rng.pick(std::min<int64_t>(n, 6));
        std::vector<int64_t> vars;
        std::vector<double> coeffs;
        for (int64_t t = 0; t < k; ++t) {
            vars.push_back(rng.pick(n)); // collisions intended
            coeffs.push_back(
                static_cast<double>(rng.pick(7)) - 3.0);
        }
        Relation rel = pickRelation(rng);
        // Mostly small rhs straddling zero; GE rows biased low to
        // keep a healthy share of feasible instances.
        double rhs = static_cast<double>(rng.pick(41)) - 10.0;
        if (rel == Relation::GE && rng.pick(2))
            rhs = -std::fabs(rhs);
        lp.addSparseConstraint(vars, coeffs, rel, rhs);
        prev_vars = std::move(vars);
        prev_coeffs = std::move(coeffs);
        prev_rel = rel;
        prev_rhs = rhs;
    }
    return lp;
}

void
expectFeasible(const LpProblem &lp, const LpSolution &sol)
{
    for (const auto &c : lp.constraints()) {
        double lhs = c.dot(sol.values);
        double tol = 1e-5 * (1.0 + std::fabs(c.rhs));
        switch (c.rel) {
          case Relation::LE: EXPECT_LE(lhs, c.rhs + tol); break;
          case Relation::GE: EXPECT_GE(lhs, c.rhs - tol); break;
          case Relation::EQ: EXPECT_NEAR(lhs, c.rhs, tol); break;
        }
    }
    for (double v : sol.values)
        EXPECT_GE(v, -1e-7);
}

} // namespace

class SparseVsDense : public ::testing::TestWithParam<int>
{};

TEST_P(SparseVsDense, IdenticalStatusAndObjective)
{
    Rng rng(0xd1ffe000 + GetParam());
    LpProblem lp = randomLp(rng);
    LpSolution sparse = solveLp(lp);
    LpSolution dense = solveLpDenseReference(lp);
    ASSERT_EQ(sparse.status, dense.status)
        << "sparse=" << lpStatusName(sparse.status)
        << " dense=" << lpStatusName(dense.status);
    if (sparse.optimal()) {
        EXPECT_NEAR(sparse.objective, dense.objective,
                    1e-6 * (1.0 + std::fabs(dense.objective)));
        expectFeasible(lp, sparse);
        expectFeasible(lp, dense);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseVsDense,
                         ::testing::Range(0, 200));

class WarmVsColdLp : public ::testing::TestWithParam<int>
{};

TEST_P(WarmVsColdLp, BoundAppendedResolveMatches)
{
    Rng rng(0xaa00 + GetParam());
    LpProblem lp = randomLp(rng);
    LpSolution first = solveLp(lp);
    if (!first.optimal())
        return; // warm starts only arise from an optimal parent.

    // Append a branching-style bound near an optimal value, the
    // exact shape solveIlp generates.
    int64_t var = rng.pick(lp.numVars());
    double v = first.values[var];
    if (rng.pick(2))
        lp.addBound(var, Relation::LE, std::floor(v));
    else
        lp.addBound(var, Relation::GE, std::ceil(v) + 1.0);

    LpOptions warm;
    warm.warm_start = &first.basis;
    LpSolution warmed = solveLp(lp, warm);
    LpSolution cold = solveLp(lp);
    ASSERT_EQ(warmed.status, cold.status)
        << "warm=" << lpStatusName(warmed.status)
        << " cold=" << lpStatusName(cold.status);
    if (cold.optimal()) {
        EXPECT_NEAR(warmed.objective, cold.objective,
                    1e-6 * (1.0 + std::fabs(cold.objective)));
        expectFeasible(lp, warmed);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmVsColdLp,
                         ::testing::Range(0, 100));

namespace {

/** Random bounded ILP: knapsack-like rows over binaries plus a few
 *  general integers with explicit upper bounds. */
IlpProblem
randomIlp(Rng &rng)
{
    int64_t n = 2 + rng.pick(6);
    IlpProblem ilp(n);
    for (int64_t j = 0; j < n; ++j) {
        ilp.lp().setObjective(
            j, static_cast<double>(rng.pick(9)) - 4.0);
        if (rng.pick(3)) {
            ilp.setBinary(j);
        } else {
            ilp.setInteger(j);
            ilp.setUpperBound(
                j, static_cast<double>(2 + rng.pick(6)));
        }
    }
    int64_t m = 1 + rng.pick(4);
    for (int64_t i = 0; i < m; ++i) {
        std::vector<int64_t> vars;
        std::vector<double> coeffs;
        for (int64_t j = 0; j < n; ++j) {
            if (rng.pick(2))
                continue;
            vars.push_back(j);
            coeffs.push_back(static_cast<double>(1 + rng.pick(3)));
        }
        if (vars.empty()) {
            vars.push_back(rng.pick(n));
            coeffs.push_back(1.0);
        }
        ilp.lp().addSparseConstraint(
            vars, coeffs, rng.pick(2) ? Relation::LE : Relation::GE,
            static_cast<double>(rng.pick(10)));
    }
    return ilp;
}

} // namespace

class WarmVsColdIlp : public ::testing::TestWithParam<int>
{};

TEST_P(WarmVsColdIlp, SameOptimum)
{
    Rng rng(0x11b0 + GetParam());
    IlpProblem ilp = randomIlp(rng);

    IlpOptions warm_opts;
    IlpOptions cold_opts;
    cold_opts.warm_start = false;
    IlpSolution warm = solveIlp(ilp, warm_opts);
    IlpSolution cold = solveIlp(ilp, cold_opts);
    ASSERT_EQ(warm.status, cold.status);
    if (!warm.optimal())
        return;
    EXPECT_NEAR(warm.objective, cold.objective,
                1e-6 * (1.0 + std::fabs(cold.objective)));
    // Integrality of the warm-started answer.
    const auto &ints = ilp.integerVars();
    for (int64_t j = 0; j < ilp.numVars(); ++j) {
        if (!ints[j])
            continue;
        EXPECT_NEAR(warm.values[j], std::round(warm.values[j]),
                    1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmVsColdIlp,
                         ::testing::Range(0, 60));

TEST(SparseVsDenseFixed, DegenerateTieStack)
{
    // 30 copies of the same GE row plus its EQ twin: maximal
    // degeneracy, both solvers must agree and terminate.
    LpProblem lp(4);
    for (int j = 0; j < 4; ++j)
        lp.setObjective(j, 1.0);
    for (int i = 0; i < 30; ++i)
        lp.addSparseConstraint({0, 1, 2, 3}, {1.0, 1.0, 1.0, 1.0},
                               Relation::GE, 8.0);
    lp.addSparseConstraint({0, 1, 2, 3}, {1.0, 1.0, 1.0, 1.0},
                           Relation::EQ, 8.0);
    auto sparse = solveLp(lp);
    auto dense = solveLpDenseReference(lp);
    ASSERT_TRUE(sparse.optimal());
    ASSERT_TRUE(dense.optimal());
    EXPECT_NEAR(sparse.objective, dense.objective, 1e-6);
    EXPECT_NEAR(sparse.objective, 8.0, 1e-6);
}

TEST(SparseVsDenseFixed, NegativeRhsEquality)
{
    // -x0 - x1 == -6 with minimisation: normalisation must flip
    // signs identically in both solvers.
    LpProblem lp(2);
    lp.setObjective(0, 2.0);
    lp.setObjective(1, 3.0);
    lp.addSparseConstraint({0, 1}, {-1.0, -1.0}, Relation::EQ,
                           -6.0);
    auto sparse = solveLp(lp);
    auto dense = solveLpDenseReference(lp);
    ASSERT_TRUE(sparse.optimal());
    ASSERT_TRUE(dense.optimal());
    EXPECT_NEAR(sparse.objective, dense.objective, 1e-6);
    EXPECT_NEAR(sparse.objective, 12.0, 1e-6); // all weight on x0
}

