/** @file Differential suite for the fleet's event cores and
 *  parallel stepping: over 100 seeded (trace, fleet-config,
 *  fault-plan) scenarios, the Heap core must reproduce the
 *  LegacyScan oracle bit-for-bit, stepping with 2 or 8 threads
 *  must reproduce serial stepping bit-for-bit, and serving a
 *  TraceGenerator must reproduce serving the materialized vector
 *  of the same generator. "Bit-for-bit" is checked on every
 *  observable: merged request records, per-replica step records,
 *  rejection and loss logs, every aggregate counter, the makespan,
 *  and the streaming latency sketch's quantiles. */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "serving/cost_model.h"
#include "serving/fleet.h"
#include "serving/trace.h"

using namespace streamtensor;
using serving::Request;

namespace {

/** Seed-derived scenario shared by every comparison: varied fleet
 *  shape, balancer, retry budget, deadlines on a fifth of the
 *  seeds, and a dense fault plan (crashes, slowdowns, drains). */
struct Scenario
{
    serving::TraceOptions trace;
    serving::TraceShape shape = serving::TraceShape::Poisson;
    serving::FleetOptions fleet;
};

Scenario
makeScenario(uint64_t seed, bool with_faults)
{
    Scenario s;
    s.shape = seed % 2 == 0 ? serving::TraceShape::Poisson
                            : serving::TraceShape::Bursty;
    s.trace.seed = seed;
    s.trace.num_requests = 32 + static_cast<int64_t>(seed % 33);
    s.trace.mean_interarrival_ms =
        1.0 + static_cast<double>(seed % 5);
    s.trace.min_input_len = 4;
    s.trace.max_input_len = 96;
    s.trace.min_output_len = 1;
    s.trace.max_output_len = 20;
    s.trace.num_priorities = 1 + static_cast<int>(seed % 2);
    if (seed % 3 == 0) {
        s.trace.num_prefix_groups = 2;
        s.trace.shared_prefix_len = 16;
    }
    if (seed % 5 == 0) {
        s.trace.deadline_slack_ms =
            150.0 + 50.0 * static_cast<double>(seed % 4);
    }

    s.fleet.num_replicas = 2 + static_cast<int>(seed % 3);
    s.fleet.replica.max_batch = 2 + static_cast<int64_t>(seed % 5);
    s.fleet.replica.kv_budget_tokens =
        192 + 64 * static_cast<int64_t>(seed % 9);
    s.fleet.replica.max_queue_depth =
        seed % 4 == 0 ? 8 + static_cast<int64_t>(seed % 9) : 0;
    s.fleet.replica.record_steps = true;
    s.fleet.balancer = static_cast<serving::LbPolicy>(seed % 3);
    s.fleet.max_retries = 1 + static_cast<int64_t>(seed % 3);
    s.fleet.retry_backoff_ms = 1.0 + static_cast<double>(seed % 4);
    // A third of the seeds drop records mid-run so the comparison
    // also covers the streaming-sketch path.
    if (seed % 3 == 1) {
        s.fleet.replica.metrics.keep_records =
            serving::MetricsOptions::KeepRecords::Auto;
        s.fleet.replica.metrics.auto_record_limit =
            static_cast<int64_t>(seed % 7);
    }

    if (with_faults) {
        serving::SeededFaultOptions fault_options;
        fault_options.seed = seed * 7 + 1;
        fault_options.num_replicas = s.fleet.num_replicas;
        fault_options.horizon_ms = 400.0;
        fault_options.crash_prob = 0.6;
        fault_options.slow_prob = 0.5;
        fault_options.drain_prob = 0.35;
        s.fleet.faults = serving::seededFaultPlan(fault_options);
        // A quarter of the seeds charge recoveries a weight
        // reload; a sixth also hot-swap a replica mid-run, so the
        // cores are compared across the reload event type too.
        if (seed % 4 == 1)
            s.fleet.recovery_reload_ms =
                20.0 + 10.0 * static_cast<double>(seed % 5);
        if (seed % 6 == 2)
            s.fleet.faults.events.push_back(
                {150.0, static_cast<int>(seed) %
                            s.fleet.num_replicas,
                 serving::FaultKind::Swap, 1.0});
    }
    return s;
}

serving::FleetResult
runScenario(const Scenario &s, serving::FleetEventCore core,
            int64_t step_threads, bool via_generator)
{
    serving::FleetOptions options = s.fleet;
    options.event_core = core;
    options.step_threads = step_threads;
    serving::AnalyticCostModel cost;
    serving::FleetScheduler fleet(options, cost);
    if (via_generator) {
        serving::TraceGenerator gen(s.shape, s.trace);
        return fleet.run(gen);
    }
    return fleet.run(s.shape == serving::TraceShape::Poisson
                         ? serving::poissonTrace(s.trace)
                         : serving::burstyTrace(s.trace));
}

void
expectSameRequests(const std::vector<serving::RequestMetrics> &a,
                   const std::vector<serving::RequestMetrics> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].output_len, b[i].output_len);
        EXPECT_EQ(a[i].preemptions, b[i].preemptions);
        EXPECT_EQ(a[i].failovers, b[i].failovers);
        EXPECT_EQ(a[i].replica, b[i].replica);
        EXPECT_EQ(a[i].arrival_ms, b[i].arrival_ms);
        EXPECT_EQ(a[i].first_token_ms, b[i].first_token_ms);
        EXPECT_EQ(a[i].finish_ms, b[i].finish_ms);
    }
}

/** Every observable of the two results must match exactly —
 *  EXPECT_EQ on doubles deliberately: the contract is
 *  bit-identical, not approximately equal. */
void
expectSameResult(const serving::FleetResult &a,
                 const serving::FleetResult &b)
{
    const serving::FleetMetrics &ma = a.metrics;
    const serving::FleetMetrics &mb = b.metrics;
    EXPECT_EQ(ma.completed, mb.completed);
    EXPECT_EQ(ma.rejected_queue_full, mb.rejected_queue_full);
    EXPECT_EQ(ma.rejected_too_long, mb.rejected_too_long);
    EXPECT_EQ(ma.expired_deadline, mb.expired_deadline);
    EXPECT_EQ(ma.rejected_drained, mb.rejected_drained);
    EXPECT_EQ(ma.deadline_misses, mb.deadline_misses);
    EXPECT_EQ(ma.requests_lost, mb.requests_lost);
    EXPECT_EQ(ma.failovers, mb.failovers);
    EXPECT_EQ(ma.crashes, mb.crashes);
    EXPECT_EQ(ma.recoveries, mb.recoveries);
    EXPECT_EQ(ma.drains, mb.drains);
    EXPECT_EQ(ma.degrades, mb.degrades);
    EXPECT_EQ(ma.swaps, mb.swaps);
    EXPECT_EQ(ma.reloads, mb.reloads);
    EXPECT_EQ(ma.reload_ms_total, mb.reload_ms_total);
    EXPECT_EQ(ma.weight_stall_ms, mb.weight_stall_ms);
    EXPECT_EQ(ma.slowdowns, mb.slowdowns);
    EXPECT_EQ(ma.aborted_steps, mb.aborted_steps);
    EXPECT_EQ(ma.preemptions, mb.preemptions);
    EXPECT_EQ(ma.total_output_tokens, mb.total_output_tokens);
    EXPECT_EQ(ma.steps, mb.steps);
    EXPECT_EQ(ma.makespan_ms, mb.makespan_ms);
    EXPECT_EQ(ma.replica_up_ms, mb.replica_up_ms);
    EXPECT_EQ(ma.records_complete, mb.records_complete);
    EXPECT_EQ(ma.latency_sketch.count(), mb.latency_sketch.count());
    for (double p : {50.0, 90.0, 99.0, 100.0})
        EXPECT_EQ(ma.latency_sketch.quantile(p),
                  mb.latency_sketch.quantile(p));

    expectSameRequests(ma.requests, mb.requests);

    ASSERT_EQ(a.rejected.size(), b.rejected.size());
    for (size_t i = 0; i < a.rejected.size(); ++i) {
        EXPECT_EQ(a.rejected[i].id, b.rejected[i].id);
        EXPECT_EQ(a.rejected[i].reason, b.rejected[i].reason);
        EXPECT_EQ(a.rejected[i].at_ms, b.rejected[i].at_ms);
    }
    ASSERT_EQ(a.lost.size(), b.lost.size());
    for (size_t i = 0; i < a.lost.size(); ++i) {
        EXPECT_EQ(a.lost[i].id, b.lost[i].id);
        EXPECT_EQ(a.lost[i].at_ms, b.lost[i].at_ms);
        EXPECT_EQ(a.lost[i].attempts, b.lost[i].attempts);
    }

    EXPECT_EQ(a.hit_step_limit, b.hit_step_limit);
    ASSERT_EQ(a.replicas.size(), b.replicas.size());
    for (size_t r = 0; r < a.replicas.size(); ++r) {
        const auto &sa = a.replicas[r].steps;
        const auto &sb = b.replicas[r].steps;
        ASSERT_EQ(sa.size(), sb.size());
        for (size_t i = 0; i < sa.size(); ++i) {
            EXPECT_EQ(sa[i].prefill_ids, sb[i].prefill_ids);
            EXPECT_EQ(sa[i].decode_ids, sb[i].decode_ids);
            EXPECT_EQ(sa[i].start_ms, sb[i].start_ms);
            EXPECT_EQ(sa[i].step_ms, sb[i].step_ms);
        }
        expectSameRequests(a.replicas[r].metrics.requests,
                           b.replicas[r].metrics.requests);
    }
}

class FleetDifferential : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(FleetDifferential, HeapMatchesLegacyUnderFaults)
{
    Scenario s = makeScenario(GetParam(), true);
    expectSameResult(
        runScenario(s, serving::FleetEventCore::Heap, 1, false),
        runScenario(s, serving::FleetEventCore::LegacyScan, 1,
                    false));
}

TEST_P(FleetDifferential, HeapMatchesLegacyCalm)
{
    Scenario s = makeScenario(GetParam(), false);
    expectSameResult(
        runScenario(s, serving::FleetEventCore::Heap, 1, false),
        runScenario(s, serving::FleetEventCore::LegacyScan, 1,
                    false));
}

TEST_P(FleetDifferential, ParallelSteppingMatchesSerial)
{
    Scenario s = makeScenario(GetParam(), true);
    serving::FleetResult serial =
        runScenario(s, serving::FleetEventCore::Heap, 1, false);
    expectSameResult(serial,
                     runScenario(s, serving::FleetEventCore::Heap,
                                 2, false));
    expectSameResult(serial,
                     runScenario(s, serving::FleetEventCore::Heap,
                                 8, false));
}

TEST_P(FleetDifferential, GeneratorMatchesVector)
{
    Scenario s = makeScenario(GetParam(), true);
    expectSameResult(
        runScenario(s, serving::FleetEventCore::Heap, 1, false),
        runScenario(s, serving::FleetEventCore::Heap, 1, true));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FleetDifferential,
                         ::testing::Range<uint64_t>(0, 100));

} // namespace
