/** @file Long-trace scale suite (ctest label: `scale`). Runs a
 *  four-replica fleet over a generator-fed Poisson trace large
 *  enough to cross the record-retention cliff and exercise the
 *  heap core's O(log n) path at depth, then checks the streaming
 *  contract: conservation of every request, O(sketch) memory
 *  (records dropped, bounded retained items), and sketch
 *  percentiles within the documented rank error of the exact
 *  record-keeping run. Trace length defaults to 150k requests;
 *  slow jobs (sanitizers) reduce it via ST_SCALE_REQUESTS. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <vector>

#include "serving/cost_model.h"
#include "serving/fleet.h"
#include "serving/trace.h"

using namespace streamtensor;

namespace {

int64_t
scaleRequests()
{
    if (const char *env = std::getenv("ST_SCALE_REQUESTS"))
        return std::max<int64_t>(std::atoll(env), 1000);
    return 150000;
}

serving::TraceOptions
scaleTrace(int64_t n)
{
    serving::TraceOptions trace;
    trace.seed = 42;
    trace.num_requests = n;
    trace.mean_interarrival_ms = 0.5;
    trace.min_input_len = 4;
    trace.max_input_len = 64;
    trace.min_output_len = 1;
    trace.max_output_len = 16;
    return trace;
}

serving::FleetOptions
scaleFleet(serving::MetricsOptions::KeepRecords keep)
{
    serving::FleetOptions options;
    options.num_replicas = 4;
    options.replica.max_batch = 8;
    options.replica.kv_budget_tokens = 4096;
    options.replica.max_steps =
        std::numeric_limits<int64_t>::max();
    options.replica.metrics.keep_records = keep;
    return options;
}

TEST(Scale, StreamingSweepConservesAndBoundsMemory)
{
    int64_t n = scaleRequests();
    serving::TraceGenerator trace(serving::TraceShape::Poisson,
                                  scaleTrace(n));
    serving::AnalyticCostModel cost;
    serving::FleetScheduler fleet(
        scaleFleet(serving::MetricsOptions::KeepRecords::Never),
        cost);
    serving::FleetResult result = fleet.run(trace);
    const serving::FleetMetrics &m = result.metrics;

    // Conservation: every request has exactly one outcome.
    EXPECT_EQ(m.completed + m.requests_lost + m.expired_deadline +
                  m.rejected_queue_full + m.rejected_too_long +
                  m.rejected_drained,
              n);
    EXPECT_FALSE(result.hit_step_limit);
    EXPECT_EQ(m.completed, n); // calm fleet: nothing is shed

    // Streaming regime: no per-request records anywhere, and the
    // sketch retains O(k log(n/k)) items, not O(n).
    EXPECT_FALSE(m.records_complete);
    EXPECT_TRUE(m.requests.empty());
    for (const auto &replica : result.replicas)
        EXPECT_TRUE(replica.metrics.requests.empty());
    EXPECT_EQ(m.latency_sketch.count(), n);
    EXPECT_LT(m.latency_sketch.retainedItems(), 16384);

    // Percentiles answer from the sketch and are ordered.
    double p50 = m.latencyPercentileMs(50.0);
    double p99 = m.latencyPercentileMs(99.0);
    EXPECT_GT(p50, 0.0);
    EXPECT_LE(p50, p99);
    EXPECT_LE(p99, m.latency_sketch.maxValue());
    EXPECT_GT(m.servedRequestsPerSecond(), 0.0);
}

TEST(Scale, SketchMatchesExactWithinRankError)
{
    // Cap the exact (record-keeping) reference run: its memory is
    // O(n) by design, which is the very thing the streaming path
    // exists to avoid.
    int64_t n = std::min<int64_t>(scaleRequests(), 200000);
    serving::AnalyticCostModel cost;

    serving::TraceGenerator streaming_trace(
        serving::TraceShape::Poisson, scaleTrace(n));
    serving::FleetScheduler streaming(
        scaleFleet(serving::MetricsOptions::KeepRecords::Never),
        cost);
    serving::FleetResult sketched = streaming.run(streaming_trace);

    serving::FleetScheduler exact(
        scaleFleet(serving::MetricsOptions::KeepRecords::Always),
        cost);
    serving::FleetResult kept = exact.run(
        serving::poissonTrace(scaleTrace(n)));

    // Same simulation either way — only retention differs.
    ASSERT_EQ(kept.metrics.completed, sketched.metrics.completed);
    ASSERT_TRUE(kept.metrics.records_complete);
    EXPECT_EQ(kept.metrics.makespan_ms,
              sketched.metrics.makespan_ms);

    std::vector<double> latencies;
    latencies.reserve(kept.metrics.requests.size());
    for (const auto &r : kept.metrics.requests)
        latencies.push_back(r.latencyMs());
    std::sort(latencies.begin(), latencies.end());

    auto total = static_cast<double>(latencies.size());
    for (double p : {50.0, 90.0, 99.0, 99.9}) {
        double answer = sketched.metrics.latencyPercentileMs(p);
        // Rank error of the sketch answer vs the exact sample,
        // against the documented 2% contract (quantile_sketch.h).
        double target = std::max(
            std::ceil(p / 100.0 * total), 1.0);
        auto lo = std::lower_bound(latencies.begin(),
                                   latencies.end(), answer) -
                  latencies.begin();
        auto hi = std::upper_bound(latencies.begin(),
                                   latencies.end(), answer) -
                  latencies.begin();
        double err = 0.0;
        if (target < static_cast<double>(lo) + 1.0)
            err = static_cast<double>(lo) + 1.0 - target;
        else if (target > static_cast<double>(hi))
            err = target - static_cast<double>(hi);
        EXPECT_LE(err / total, 0.02) << "p=" << p << " n=" << n;
    }
}

} // namespace
