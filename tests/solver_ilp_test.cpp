/** @file Unit tests for the branch-and-bound ILP solver. */

#include <gtest/gtest.h>

#include "solver/ilp.h"

using namespace streamtensor::solver;

TEST(Ilp, FractionalRelaxationRounds)
{
    // min -x s.t. 2x <= 5, x integer: LP gives 2.5, ILP gives 2.
    IlpProblem ilp(1);
    ilp.lp().setObjective(0, -1.0);
    ilp.lp().addConstraint({2.0}, Relation::LE, 5.0);
    ilp.setInteger(0);
    auto sol = solveIlp(ilp);
    ASSERT_TRUE(sol.optimal());
    EXPECT_DOUBLE_EQ(sol.values[0], 2.0);
    EXPECT_NEAR(sol.objective, -2.0, 1e-6);
}

TEST(Ilp, SmallKnapsack)
{
    // max 10a + 6b + 4c s.t. a+b+c <= 2, binaries.
    IlpProblem ilp(3);
    ilp.lp().setObjective(0, -10.0);
    ilp.lp().setObjective(1, -6.0);
    ilp.lp().setObjective(2, -4.0);
    ilp.lp().addConstraint({1, 1, 1}, Relation::LE, 2.0);
    for (int j = 0; j < 3; ++j)
        ilp.setBinary(j);
    auto sol = solveIlp(ilp);
    ASSERT_TRUE(sol.optimal());
    EXPECT_NEAR(sol.objective, -16.0, 1e-6);
    EXPECT_DOUBLE_EQ(sol.values[0], 1.0);
    EXPECT_DOUBLE_EQ(sol.values[1], 1.0);
    EXPECT_DOUBLE_EQ(sol.values[2], 0.0);
}

TEST(Ilp, AssignmentOneHot)
{
    // 2 tasks x 2 dies; task t on die d costs c[t][d]; exactly one
    // die per task.
    double cost[2][2] = {{1.0, 5.0}, {4.0, 2.0}};
    IlpProblem ilp(4);
    for (int t = 0; t < 2; ++t) {
        for (int d = 0; d < 2; ++d) {
            ilp.setBinary(t * 2 + d);
            ilp.lp().setObjective(t * 2 + d, cost[t][d]);
        }
        ilp.lp().addSparseConstraint({t * 2, t * 2 + 1},
                                     {1.0, 1.0}, Relation::EQ,
                                     1.0);
    }
    auto sol = solveIlp(ilp);
    ASSERT_TRUE(sol.optimal());
    EXPECT_NEAR(sol.objective, 3.0, 1e-6);
    EXPECT_DOUBLE_EQ(sol.values[0], 1.0); // task0 -> die0
    EXPECT_DOUBLE_EQ(sol.values[3], 1.0); // task1 -> die1
}

TEST(Ilp, InfeasibleDetected)
{
    IlpProblem ilp(1);
    ilp.lp().setObjective(0, 1.0);
    ilp.lp().addConstraint({1.0}, Relation::GE, 2.0);
    ilp.lp().addConstraint({1.0}, Relation::LE, 1.0);
    ilp.setInteger(0);
    auto sol = solveIlp(ilp);
    EXPECT_FALSE(sol.optimal());
}

TEST(Ilp, IntegralityGapClosed)
{
    // min x+y s.t. 2x + 2y >= 3, integers: LP 1.5, ILP 2.
    IlpProblem ilp(2);
    ilp.lp().setObjective(0, 1.0);
    ilp.lp().setObjective(1, 1.0);
    ilp.lp().addConstraint({2.0, 2.0}, Relation::GE, 3.0);
    ilp.setInteger(0);
    ilp.setInteger(1);
    auto sol = solveIlp(ilp);
    ASSERT_TRUE(sol.optimal());
    EXPECT_NEAR(sol.objective, 2.0, 1e-6);
}

TEST(Ilp, ContinuousVarsStayContinuous)
{
    // x integer, y continuous: min 2x + y s.t. x + y >= 2.5.
    IlpProblem ilp(2);
    ilp.lp().setObjective(0, 2.0);
    ilp.lp().setObjective(1, 1.0);
    ilp.lp().addConstraint({1.0, 1.0}, Relation::GE, 2.5);
    ilp.setInteger(0);
    auto sol = solveIlp(ilp);
    ASSERT_TRUE(sol.optimal());
    EXPECT_NEAR(sol.objective, 2.5, 1e-6); // x=0, y=2.5
}

TEST(Ilp, InfeasibleFifoDepthBudget)
{
    // Integer FIFO depths with per-edge minimum depths (from the
    // token model) and a total BRAM budget below their sum: the
    // branch-and-bound must prove infeasibility, not hand back a
    // depth vector that would deadlock at runtime.
    IlpProblem ilp(3);
    for (int j = 0; j < 3; ++j) {
        ilp.lp().setObjective(j, 1.0);
        ilp.setInteger(j);
    }
    ilp.lp().addConstraint({1.0, 0.0, 0.0}, Relation::GE, 4.0);
    ilp.lp().addConstraint({0.0, 1.0, 0.0}, Relation::GE, 6.0);
    ilp.lp().addConstraint({0.0, 0.0, 1.0}, Relation::GE, 3.0);
    ilp.lp().addConstraint({1.0, 1.0, 1.0}, Relation::LE, 10.0);
    auto sol = solveIlp(ilp);
    EXPECT_EQ(sol.status, LpStatus::Infeasible);
    EXPECT_FALSE(sol.optimal());
}

TEST(Ilp, ZeroDepthChannelStaysIntegral)
{
    // Rate-matched edges may legitimately get depth 0. The solver
    // must return exact integral zeros (not 1e-9 noise that a
    // later ceil() would inflate to depth 1) alongside a nonzero
    // required depth.
    IlpProblem ilp(2);
    ilp.lp().setObjective(0, 1.0);
    ilp.lp().setObjective(1, 1.0);
    ilp.lp().addConstraint({1.0, 0.0}, Relation::GE, 0.0);
    ilp.lp().addConstraint({0.0, 1.0}, Relation::GE, 5.0);
    ilp.setInteger(0);
    ilp.setInteger(1);
    auto sol = solveIlp(ilp);
    ASSERT_TRUE(sol.optimal());
    EXPECT_DOUBLE_EQ(sol.values[0], 0.0);
    EXPECT_DOUBLE_EQ(sol.values[1], 5.0);
    EXPECT_NEAR(sol.objective, 5.0, 1e-9);
}

TEST(Ilp, FractionalMinDepthRoundsUp)
{
    // A fractional per-edge minimum (e.g. II-derived 2.5 tokens)
    // must round *up* to depth 3 under integrality — rounding down
    // undersizes the FIFO on the deadlock-critical path.
    IlpProblem ilp(1);
    ilp.lp().setObjective(0, 1.0);
    ilp.lp().addConstraint({1.0}, Relation::GE, 2.5);
    ilp.setInteger(0);
    auto sol = solveIlp(ilp);
    ASSERT_TRUE(sol.optimal());
    EXPECT_DOUBLE_EQ(sol.values[0], 3.0);
}

TEST(Ilp, NodeBudgetStillReturnsIncumbent)
{
    IlpProblem ilp(6);
    for (int j = 0; j < 6; ++j) {
        ilp.setBinary(j);
        ilp.lp().setObjective(j, -(1.0 + j));
    }
    std::vector<double> row(6, 1.0);
    ilp.lp().addConstraint(row, Relation::LE, 3.0);
    auto sol = solveIlp(ilp, /*max_nodes=*/16);
    // Either optimal or a feasible incumbent — never values
    // violating integrality.
    if (sol.optimal()) {
        for (double v : sol.values)
            EXPECT_TRUE(v == 0.0 || v == 1.0);
    }
}
