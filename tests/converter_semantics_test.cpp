/** @file Semantic verification of Algorithm 1: the inferred
 *  ping-pong buffer must actually suffice to replay the consumer's
 *  stream order from the producer's stream order.
 *
 *  The invariant: group both streams by the shared-outer-loop
 *  prefix (the loops hoisted above the buffer). Within one prefix
 *  iteration, every tile the consumer reads must (a) be produced
 *  by the source in the same prefix iteration and (b) fit inside
 *  the inferred buffer extent along every data dimension.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "dse/converter_gen.h"
#include "ir/itensor_type.h"

using namespace streamtensor;
using ir::AffineExpr;
using ir::AffineMap;
using ir::DataType;
using ir::ITensorType;
using ir::TensorType;

namespace {

/** Per-token (prefix iteration index, data offset). */
struct TaggedStream
{
    std::vector<int64_t> prefix; // linearized shared-loop index
    std::vector<std::vector<int64_t>> offsets;
};

TaggedStream
tagStream(const ITensorType &t, int64_t shared_prefix)
{
    TaggedStream out;
    std::vector<int64_t> idx(t.iterRank(), 0);
    std::vector<int64_t> vals(t.iterRank(), 0);
    int64_t total = t.numTokens();
    for (int64_t n = 0; n < total; ++n) {
        for (int64_t p = 0; p < t.iterRank(); ++p)
            vals[p] = idx[p] * t.steps()[p];
        int64_t prefix = 0;
        for (int64_t p = 0; p < shared_prefix; ++p)
            prefix = prefix * t.tripCounts()[p] + idx[p];
        out.prefix.push_back(prefix);
        out.offsets.push_back(t.iterMap().apply(vals));
        for (int64_t p = t.iterRank() - 1; p >= 0; --p) {
            if (++idx[p] < t.tripCounts()[p])
                break;
            idx[p] = 0;
        }
    }
    return out;
}

/** Check the converter invariant for a (src, res) pair. */
void
checkConverter(const ITensorType &src, const ITensorType &res)
{
    dse::ConverterSpec spec = dse::inferConverter(src, res);
    auto produced = tagStream(src, spec.before_loop);
    auto consumed = tagStream(res, spec.before_loop);

    // Group tile offsets by prefix iteration.
    std::map<int64_t, std::set<std::vector<int64_t>>> prod_groups;
    for (size_t i = 0; i < produced.offsets.size(); ++i)
        prod_groups[produced.prefix[i]].insert(
            produced.offsets[i]);
    std::map<int64_t, std::set<std::vector<int64_t>>> cons_groups;
    for (size_t i = 0; i < consumed.offsets.size(); ++i)
        cons_groups[consumed.prefix[i]].insert(
            consumed.offsets[i]);

    ASSERT_EQ(prod_groups.size(), cons_groups.size());
    for (const auto &[prefix, tiles] : cons_groups) {
        // (a) Availability: the consumer only reads tiles the
        // producer wrote in the same prefix iteration.
        ASSERT_TRUE(prod_groups.count(prefix));
        for (const auto &tile : tiles)
            EXPECT_TRUE(prod_groups[prefix].count(tile))
                << "consumer reads a tile the producer did not "
                   "write in prefix iteration "
                << prefix;
        // (b) Capacity: the tiles of one prefix iteration fit the
        // inferred buffer extent along every data dim.
        for (int64_t d = 0; d < res.dataRank(); ++d) {
            int64_t lo = INT64_MAX, hi = INT64_MIN;
            for (const auto &tile : tiles) {
                lo = std::min(lo, tile[d]);
                hi = std::max(hi, tile[d] + res.elementSize(d));
            }
            EXPECT_LE(hi - lo, spec.buffer_shape[d])
                << "dim " << d << " span exceeds buffer";
        }
    }
}

} // namespace

TEST(ConverterSemantics, Figure5Case)
{
    ITensorType b(DataType::F32, {4, 2}, {4, 2}, {2, 4},
                  AffineMap(2, {AffineExpr::dim(1),
                                AffineExpr::dim(0)}));
    ITensorType c(DataType::F32, {4, 2}, {4, 2, 2}, {2, 1, 4},
                  AffineMap(3, {AffineExpr::dim(2),
                                AffineExpr::dim(0)}));
    checkConverter(b, c);
}

TEST(ConverterSemantics, RowToColumnMajor)
{
    TensorType tensor(DataType::I8, {64, 64});
    checkConverter(ir::makeTiledITensor(tensor, {16, 16}),
                   ir::makePermutedITensor(tensor, {16, 16},
                                           {1, 0}));
}

TEST(ConverterSemantics, SharedRowStripe)
{
    TensorType tensor(DataType::I8, {64, 64});
    auto producer = ir::makeTiledITensor(tensor, {16, 16});
    ITensorType consumer(
        DataType::I8, {16, 16}, {4, 2, 4}, {16, 1, 16},
        AffineMap(3, {AffineExpr::dim(0), AffineExpr::dim(2)}));
    checkConverter(producer, consumer);
}

TEST(ConverterSemantics, IdentityIsTrivial)
{
    TensorType tensor(DataType::I8, {32, 48});
    auto t = ir::makeTiledITensor(tensor, {8, 16});
    checkConverter(t, t);
}

// Property sweep: random tilings and orders on both sides.
class ConverterSemanticsProperty
    : public ::testing::TestWithParam<int>
{};

TEST_P(ConverterSemanticsProperty, BufferSufficesForReplay)
{
    uint64_t s = 0xace + GetParam();
    auto rnd = [&]() {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        return s * 0x2545f4914f6cdd1dull;
    };
    std::vector<int64_t> tiles{4, 8, 16};
    int64_t t = tiles[rnd() % tiles.size()];
    TensorType tensor(DataType::I8, {32, 32});
    auto src = rnd() % 2
                   ? ir::makeTiledITensor(tensor, {t, t})
                   : ir::makePermutedITensor(tensor, {t, t},
                                             {1, 0});
    // Consumer: same tiles, optionally transposed order or with a
    // revisit loop in the middle.
    ITensorType res = [&]() -> ITensorType {
        switch (rnd() % 3) {
          case 0:
            return ir::makeTiledITensor(tensor, {t, t});
          case 1:
            return ir::makePermutedITensor(tensor, {t, t},
                                           {1, 0});
          default: {
            int64_t trips = 32 / t;
            return ITensorType(
                DataType::I8, {t, t}, {trips, 2, trips},
                {t, 1, t},
                AffineMap(3, {AffineExpr::dim(0),
                              AffineExpr::dim(2)}));
          }
        }
    }();
    checkConverter(src, res);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConverterSemanticsProperty,
                         ::testing::Range(0, 30));
