/** @file Deterministic scheduler test harness: seeded traces,
 *  unit tests for the queue / trace generators / metrics /
 *  bucketing, and step-by-step replay scripts asserting exact
 *  batch composition, admission decisions, and final metrics. All
 *  time is simulated — nothing here (or in src/serving/) reads a
 *  clock, so every assertion is bit-reproducible. */

#include <gtest/gtest.h>

#include <cmath>

#include "models/bucketing.h"
#include "serving/cost_model.h"
#include "serving/fleet.h"
#include "serving/metrics.h"
#include "serving/queue.h"
#include "serving/scheduler.h"
#include "serving/trace.h"
#include "support/error.h"

using namespace streamtensor;
using serving::Request;

namespace {

/** Mirror of AnalyticCostModel's arithmetic (same operation
 *  order), so replay scripts can assert step times with
 *  EXPECT_DOUBLE_EQ. */
double
analyticStepMs(
    const std::vector<std::tuple<int64_t, int64_t, int64_t>>
        &groups,
    serving::AnalyticCostOptions o = {})
{
    double ms = 0.0;
    for (const auto &[seq_len, kv_len, count] : groups) {
        double per_seq = o.per_seq_ms +
                         o.per_query_token_ms *
                             static_cast<double>(seq_len) +
                         o.per_kv_token_ms *
                             static_cast<double>(kv_len);
        ms += o.trigger_ms +
              static_cast<double>(count) * per_seq;
    }
    return ms;
}

Request
makeRequest(int64_t id, double arrival_ms, int64_t input_len,
            int64_t output_len, int priority = 0)
{
    Request r;
    r.id = id;
    r.arrival_ms = arrival_ms;
    r.input_len = input_len;
    r.output_len = output_len;
    r.priority = priority;
    return r;
}

serving::SchedulerOptions
recordingOptions(int64_t max_batch, int64_t kv_budget)
{
    serving::SchedulerOptions options;
    options.max_batch = max_batch;
    options.kv_budget_tokens = kv_budget;
    options.record_steps = true;
    return options;
}

} // namespace

// ---------------------------------------------------------------
// RequestQueue
// ---------------------------------------------------------------

TEST(RequestQueue, FifoWithinOneClass)
{
    serving::RequestQueue q;
    q.push(makeRequest(3, 0.0, 8, 1));
    q.push(makeRequest(1, 1.0, 8, 1));
    q.push(makeRequest(2, 2.0, 8, 1));
    EXPECT_EQ(q.pop().id, 3);
    EXPECT_EQ(q.pop().id, 1);
    EXPECT_EQ(q.pop().id, 2);
    EXPECT_TRUE(q.empty());
}

TEST(RequestQueue, LowerPriorityClassValueServedFirst)
{
    serving::RequestQueue q;
    q.push(makeRequest(0, 0.0, 8, 1, /*priority=*/2));
    q.push(makeRequest(1, 0.0, 8, 1, /*priority=*/0));
    q.push(makeRequest(2, 0.0, 8, 1, /*priority=*/1));
    q.push(makeRequest(3, 0.0, 8, 1, /*priority=*/0));
    EXPECT_EQ(q.front().id, 1);
    EXPECT_EQ(q.pop().id, 1);
    EXPECT_EQ(q.pop().id, 3); // FIFO within class 0
    EXPECT_EQ(q.pop().id, 2);
    EXPECT_EQ(q.pop().id, 0);
}

TEST(RequestQueue, CapacityBoundRefusesPush)
{
    serving::RequestQueue q(/*max_depth=*/2);
    EXPECT_TRUE(q.push(makeRequest(0, 0.0, 8, 1)));
    EXPECT_TRUE(q.push(makeRequest(1, 0.0, 8, 1)));
    EXPECT_FALSE(q.push(makeRequest(2, 0.0, 8, 1)));
    q.pop();
    EXPECT_TRUE(q.push(makeRequest(3, 0.0, 8, 1)));
    EXPECT_EQ(q.size(), 2);
}

TEST(RequestQueue, PushFrontExemptFromCapacityBound)
{
    // pushFront() carries preempted and failed-over work whose
    // admission was already paid for — it must succeed even when
    // the queue sits at capacity, and the overshoot must be
    // attributable to front inserts: size - max_depth <=
    // frontInserts() after every insert.
    serving::RequestQueue q(/*max_depth=*/2);
    EXPECT_TRUE(q.push(makeRequest(0, 0.0, 8, 1)));
    EXPECT_TRUE(q.push(makeRequest(1, 0.0, 8, 1)));
    EXPECT_FALSE(q.push(makeRequest(2, 0.0, 8, 1)));

    q.pushFront(makeRequest(9, 0.0, 8, 1));
    EXPECT_EQ(q.size(), 3);
    EXPECT_EQ(q.frontInserts(), 1);
    q.pushFront(makeRequest(8, 0.0, 8, 1));
    EXPECT_EQ(q.size(), 4);
    EXPECT_EQ(q.frontInserts(), 2);

    // Bounded push stays refused while over capacity; the exempt
    // entries drain ahead of the FIFO tail.
    EXPECT_FALSE(q.push(makeRequest(3, 0.0, 8, 1)));
    EXPECT_EQ(q.pop().id, 8);
    EXPECT_EQ(q.pop().id, 9);
    EXPECT_EQ(q.pop().id, 0);
    EXPECT_EQ(q.pop().id, 1);
    EXPECT_TRUE(q.empty());
}

TEST(RequestQueue, TracksHighWaterDepth)
{
    serving::RequestQueue q;
    for (int64_t i = 0; i < 5; ++i)
        q.push(makeRequest(i, 0.0, 8, 1));
    q.pop();
    q.pop();
    EXPECT_EQ(q.size(), 3);
    EXPECT_EQ(q.maxDepth(), 5);
}

TEST(RequestQueue, EmptyAccessorsThrow)
{
    serving::RequestQueue q;
    EXPECT_THROW(q.front(), FatalError);
    EXPECT_THROW(q.pop(), FatalError);
}

// ---------------------------------------------------------------
// Trace generators
// ---------------------------------------------------------------

TEST(Trace, PoissonIsSeedDeterministic)
{
    serving::TraceOptions options;
    options.num_requests = 40;
    options.seed = 7;
    auto a = serving::poissonTrace(options);
    auto b = serving::poissonTrace(options);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_DOUBLE_EQ(a[i].arrival_ms, b[i].arrival_ms);
        EXPECT_EQ(a[i].input_len, b[i].input_len);
        EXPECT_EQ(a[i].output_len, b[i].output_len);
        EXPECT_EQ(a[i].priority, b[i].priority);
    }
}

TEST(Trace, SeedsProduceDistinctTraces)
{
    serving::TraceOptions options;
    options.num_requests = 16;
    options.seed = 1;
    auto a = serving::poissonTrace(options);
    options.seed = 2;
    auto b = serving::poissonTrace(options);
    bool any_diff = false;
    for (size_t i = 0; i < a.size(); ++i)
        any_diff |= a[i].arrival_ms != b[i].arrival_ms;
    EXPECT_TRUE(any_diff);
}

TEST(Trace, ArrivalsSortedAndLengthsBounded)
{
    serving::TraceOptions options;
    options.num_requests = 64;
    options.seed = 11;
    options.num_priorities = 3;
    for (auto trace : {serving::poissonTrace(options),
                       serving::burstyTrace(options)}) {
        ASSERT_EQ(trace.size(), 64u);
        for (size_t i = 0; i < trace.size(); ++i) {
            const auto &r = trace[i];
            EXPECT_EQ(r.id, static_cast<int64_t>(i));
            if (i > 0) {
                EXPECT_GE(r.arrival_ms, trace[i - 1].arrival_ms);
            }
            EXPECT_GE(r.input_len, options.min_input_len);
            EXPECT_LE(r.input_len, options.max_input_len);
            EXPECT_GE(r.output_len, options.min_output_len);
            EXPECT_LE(r.output_len, options.max_output_len);
            EXPECT_GE(r.priority, 0);
            EXPECT_LT(r.priority, options.num_priorities);
        }
    }
}

TEST(Trace, BurstyHasHigherInterarrivalVariance)
{
    serving::TraceOptions options;
    options.num_requests = 512;
    options.seed = 3;
    options.burst_factor = 16.0;
    auto cv = [](const std::vector<Request> &trace) {
        std::vector<double> gaps;
        for (size_t i = 1; i < trace.size(); ++i)
            gaps.push_back(trace[i].arrival_ms -
                           trace[i - 1].arrival_ms);
        double mean = 0.0, var = 0.0;
        for (double g : gaps)
            mean += g;
        mean /= gaps.size();
        for (double g : gaps)
            var += (g - mean) * (g - mean);
        var /= gaps.size();
        return std::sqrt(var) / mean;
    };
    EXPECT_GT(cv(serving::burstyTrace(options)),
              cv(serving::poissonTrace(options)));
}

TEST(Trace, RejectsMalformedOptions)
{
    serving::TraceOptions options;
    options.num_requests = 0;
    EXPECT_THROW(serving::poissonTrace(options), FatalError);
    options.num_requests = 4;
    options.min_input_len = 10;
    options.max_input_len = 5;
    EXPECT_THROW(serving::poissonTrace(options), FatalError);
    options = {};
    options.burst_duty = 1.5;
    EXPECT_THROW(serving::burstyTrace(options), FatalError);
}

// ---------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------

TEST(Metrics, NearestRankPercentile)
{
    std::vector<double> v;
    for (int i = 1; i <= 100; ++i)
        v.push_back(i);
    EXPECT_DOUBLE_EQ(*serving::percentile(v, 50.0), 50.0);
    EXPECT_DOUBLE_EQ(*serving::percentile(v, 95.0), 95.0);
    EXPECT_DOUBLE_EQ(*serving::percentile(v, 99.0), 99.0);
    EXPECT_DOUBLE_EQ(*serving::percentile(v, 100.0), 100.0);
    EXPECT_DOUBLE_EQ(*serving::percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(*serving::percentile({3.0, 1.0, 2.0}, 50.0),
                     2.0);
    EXPECT_THROW(serving::percentile(v, 101.0), FatalError);
}

TEST(Metrics, PercentileEmptyWindowIsEmptyOptional)
{
    // An empty sample has no percentile — nullopt, not a silent
    // 0.0 that reads like a measured latency.
    EXPECT_FALSE(serving::percentile({}, 50.0).has_value());
    EXPECT_FALSE(serving::percentile({}, 95.0).has_value());
    EXPECT_FALSE(serving::percentile({}, 99.0).has_value());
    EXPECT_FALSE(serving::percentile({}, 0.0).has_value());
    EXPECT_FALSE(serving::percentile({}, 100.0).has_value());
}

TEST(Metrics, PercentileSingleSampleIsThatSample)
{
    // Every rank of a one-element window is the element.
    for (double p : {0.0, 50.0, 95.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(*serving::percentile({7.5}, p), 7.5);
}

TEST(Metrics, EmptyRunPercentileAccessorsAreNaN)
{
    // The ServingMetrics accessors document NaN as their explicit
    // empty-window sentinel (satellite of the std::optional
    // percentile change).
    serving::ServingMetrics metrics;
    EXPECT_TRUE(std::isnan(metrics.ttftP95Ms()));
    EXPECT_TRUE(std::isnan(metrics.latencyPercentileMs(50.0)));
    EXPECT_TRUE(std::isnan(metrics.latencyPercentileMs(99.0)));
}

TEST(Metrics, RequestDerivedQuantities)
{
    serving::RequestMetrics r;
    r.arrival_ms = 10.0;
    r.first_token_ms = 30.0;
    r.finish_ms = 70.0;
    r.output_len = 5;
    EXPECT_DOUBLE_EQ(r.ttftMs(), 20.0);
    EXPECT_DOUBLE_EQ(r.latencyMs(), 60.0);
    EXPECT_DOUBLE_EQ(r.tbtMs(), 10.0);
    r.output_len = 1;
    EXPECT_DOUBLE_EQ(r.tbtMs(), 0.0);
}

// ---------------------------------------------------------------
// Replay scripts: exact step-by-step schedules.
// ---------------------------------------------------------------

TEST(SchedulerReplay, ContinuousBatchingScript)
{
    // R0, R1 arrive together and batch; R2 arrives mid-step and
    // joins as soon as a slot frees (continuous batching).
    serving::AnalyticCostModel cost;
    serving::Scheduler scheduler(recordingOptions(2, 4096), cost);
    auto result = scheduler.run({
        makeRequest(0, 0.0, 10, 2),
        makeRequest(1, 0.0, 20, 2),
        makeRequest(2, 1.0, 10, 1),
    });

    ASSERT_EQ(result.steps.size(), 3u);
    EXPECT_FALSE(result.hit_step_limit);
    EXPECT_TRUE(result.rejected.empty());

    // Step 1: both prefill. Buckets: 10+2 -> 16, 20+2 -> 32.
    const auto &s0 = result.steps[0];
    EXPECT_DOUBLE_EQ(s0.start_ms, 0.0);
    EXPECT_EQ(s0.prefill_ids, (std::vector<int64_t>{0, 1}));
    EXPECT_TRUE(s0.decode_ids.empty());
    EXPECT_EQ(s0.kv_reserved, 16 + 32);
    EXPECT_EQ(s0.queue_depth, 0);
    double step1 = analyticStepMs({{16, 16, 1}, {32, 32, 1}});
    EXPECT_DOUBLE_EQ(s0.step_ms, step1);

    // Step 2: both decode (contexts 12 and 22 -> kv buckets 16 and
    // 32); R2 arrived at 1.0 and waits (batch full).
    const auto &s1 = result.steps[1];
    EXPECT_DOUBLE_EQ(s1.start_ms, step1);
    EXPECT_TRUE(s1.prefill_ids.empty());
    EXPECT_EQ(s1.decode_ids, (std::vector<int64_t>{0, 1}));
    EXPECT_EQ(s1.queue_depth, 1);
    double step2 = analyticStepMs({{1, 16, 1}, {1, 32, 1}});
    EXPECT_DOUBLE_EQ(s1.step_ms, step2);

    // Step 3: R0/R1 finished; R2 prefills alone and, with
    // output_len 1, completes at its prefill.
    const auto &s2 = result.steps[2];
    EXPECT_DOUBLE_EQ(s2.start_ms, step1 + step2);
    EXPECT_EQ(s2.prefill_ids, (std::vector<int64_t>{2}));
    EXPECT_TRUE(s2.decode_ids.empty());
    EXPECT_EQ(s2.kv_reserved, 16);
    double step3 = analyticStepMs({{16, 16, 1}});
    EXPECT_DOUBLE_EQ(s2.step_ms, step3);

    // Final metrics, exactly.
    const auto &m = result.metrics;
    EXPECT_EQ(m.completed, 3);
    EXPECT_EQ(m.steps, 3);
    EXPECT_EQ(m.total_output_tokens, 5);
    EXPECT_EQ(m.total_batched_seqs, 5);
    EXPECT_EQ(m.max_queue_depth, 2);
    EXPECT_DOUBLE_EQ(m.makespan_ms, step1 + step2 + step3);
    EXPECT_DOUBLE_EQ(m.busy_ms, m.makespan_ms);
    EXPECT_DOUBLE_EQ(m.utilization(), 1.0);

    ASSERT_EQ(m.requests.size(), 3u);
    EXPECT_EQ(m.requests[0].id, 0);
    EXPECT_EQ(m.requests[1].id, 1);
    EXPECT_EQ(m.requests[2].id, 2);
    EXPECT_DOUBLE_EQ(m.requests[0].first_token_ms, step1);
    EXPECT_DOUBLE_EQ(m.requests[0].finish_ms, step1 + step2);
    EXPECT_DOUBLE_EQ(m.requests[2].ttftMs(),
                     step1 + step2 + step3 - 1.0);
}

TEST(SchedulerReplay, KvBudgetHeadOfLineAdmission)
{
    // Budget 32: R0 (reserve 16) runs alone because head R1 needs
    // the full budget; R2 (reserve 16) must not jump the blocked
    // head — strict FIFO admission.
    serving::AnalyticCostModel cost;
    serving::Scheduler scheduler(recordingOptions(4, 32), cost);
    auto result = scheduler.run({
        makeRequest(0, 0.0, 10, 2), // bucket(12)  = 16
        makeRequest(1, 0.0, 20, 4), // bucket(24)  = 32
        makeRequest(2, 0.0, 5, 3),  // bucket(8)   = 16
    });

    EXPECT_TRUE(result.rejected.empty());
    ASSERT_GE(result.steps.size(), 3u);

    // R0 prefills alone; both others queued behind the blocked
    // head.
    EXPECT_EQ(result.steps[0].prefill_ids,
              (std::vector<int64_t>{0}));
    EXPECT_EQ(result.steps[0].queue_depth, 2);
    EXPECT_EQ(result.steps[0].kv_reserved, 16);

    // R0 decodes alone (R1 still does not fit: 16 + 32 > 32).
    EXPECT_EQ(result.steps[1].decode_ids,
              (std::vector<int64_t>{0}));
    EXPECT_TRUE(result.steps[1].prefill_ids.empty());

    // R0 retired; R1 admitted alone (32 fills the budget).
    EXPECT_EQ(result.steps[2].prefill_ids,
              (std::vector<int64_t>{1}));
    EXPECT_EQ(result.steps[2].kv_reserved, 32);

    // R2 only enters once R1 has fully finished.
    for (const auto &s : result.steps) {
        EXPECT_LE(s.kv_reserved, 32);
        bool has1 = false, has2 = false;
        for (int64_t id : s.prefill_ids) {
            has1 |= id == 1;
            has2 |= id == 2;
        }
        for (int64_t id : s.decode_ids) {
            has1 |= id == 1;
            has2 |= id == 2;
        }
        EXPECT_FALSE(has1 && has2);
    }
    EXPECT_EQ(result.metrics.completed, 3);
}

TEST(SchedulerReplay, PriorityClassesJumpTheQueue)
{
    // max_batch 1 forces full serialization: class 0 is served
    // before the earlier-arrived class-1 requests, FIFO inside
    // each class.
    serving::AnalyticCostModel cost;
    serving::Scheduler scheduler(recordingOptions(1, 4096), cost);
    auto result = scheduler.run({
        makeRequest(0, 0.0, 8, 1, /*priority=*/1),
        makeRequest(1, 0.0, 8, 1, /*priority=*/1),
        makeRequest(2, 0.0, 8, 1, /*priority=*/0),
    });
    ASSERT_EQ(result.steps.size(), 3u);
    EXPECT_EQ(result.steps[0].prefill_ids,
              (std::vector<int64_t>{2}));
    EXPECT_EQ(result.steps[1].prefill_ids,
              (std::vector<int64_t>{0}));
    EXPECT_EQ(result.steps[2].prefill_ids,
              (std::vector<int64_t>{1}));
}

TEST(SchedulerReplay, QueueFullRejectsArrivals)
{
    serving::AnalyticCostModel cost;
    serving::SchedulerOptions options = recordingOptions(1, 4096);
    options.max_queue_depth = 1;
    serving::Scheduler scheduler(options, cost);
    auto result = scheduler.run({
        makeRequest(0, 0.0, 8, 1),
        makeRequest(1, 0.0, 8, 1),
        makeRequest(2, 0.0, 8, 1),
    });
    ASSERT_EQ(result.rejected.size(), 2u);
    EXPECT_EQ(result.rejected[0].id, 1);
    EXPECT_EQ(result.rejected[1].id, 2);
    for (const auto &r : result.rejected)
        EXPECT_EQ(r.reason, serving::RejectReason::QueueFull);
    EXPECT_EQ(result.metrics.completed, 1);
    EXPECT_EQ(result.metrics.rejected_queue_full, 2);
    EXPECT_EQ(result.metrics.rejected_too_long, 0);
}

TEST(SchedulerReplay, OversizedRequestsRejectedUpFront)
{
    serving::AnalyticCostModel cost;
    // Budget 64 tokens: a 50+50 request buckets to 128 and can
    // never be admitted; a 900+200 one exceeds the bucket ladder.
    serving::Scheduler scheduler(recordingOptions(4, 64), cost);
    auto result = scheduler.run({
        makeRequest(0, 0.0, 10, 2),
        makeRequest(1, 0.0, 50, 50),
        makeRequest(2, 0.0, 900, 200),
    });
    ASSERT_EQ(result.rejected.size(), 2u);
    EXPECT_EQ(result.rejected[0].id, 1);
    EXPECT_EQ(result.rejected[0].reason,
              serving::RejectReason::TooLong);
    EXPECT_EQ(result.rejected[1].id, 2);
    EXPECT_EQ(result.rejected[1].reason,
              serving::RejectReason::TooLong);
    EXPECT_EQ(result.metrics.completed, 1);
    EXPECT_EQ(result.metrics.rejected_too_long, 2);
}

TEST(SchedulerReplay, IdleGapJumpsToNextArrival)
{
    serving::AnalyticCostModel cost;
    serving::Scheduler scheduler(recordingOptions(2, 4096), cost);
    auto result = scheduler.run({
        makeRequest(0, 100.0, 8, 1),
    });
    ASSERT_EQ(result.steps.size(), 1u);
    EXPECT_DOUBLE_EQ(result.steps[0].start_ms, 100.0);
    double step = analyticStepMs({{16, 16, 1}});
    EXPECT_DOUBLE_EQ(result.metrics.makespan_ms, 100.0 + step);
    EXPECT_DOUBLE_EQ(result.metrics.busy_ms, step);
    EXPECT_LT(result.metrics.utilization(), 1.0);
    // Mirror the accumulation (100 + step) - 100 so the equality
    // is exact in floating point.
    EXPECT_DOUBLE_EQ(result.metrics.requests[0].ttftMs(),
                     (100.0 + step) - 100.0);
}

TEST(SchedulerReplay, UnsortedTraceIsServedInArrivalOrder)
{
    serving::AnalyticCostModel cost;
    serving::Scheduler a(recordingOptions(1, 4096), cost);
    serving::Scheduler b(recordingOptions(1, 4096), cost);
    std::vector<Request> sorted = {
        makeRequest(0, 0.0, 8, 1),
        makeRequest(1, 5.0, 8, 1),
        makeRequest(2, 9.0, 8, 1),
    };
    std::vector<Request> shuffled = {sorted[2], sorted[0],
                                     sorted[1]};
    auto ra = a.run(sorted);
    auto rb = b.run(shuffled);
    ASSERT_EQ(ra.steps.size(), rb.steps.size());
    for (size_t i = 0; i < ra.steps.size(); ++i) {
        EXPECT_EQ(ra.steps[i].prefill_ids,
                  rb.steps[i].prefill_ids);
        EXPECT_DOUBLE_EQ(ra.steps[i].start_ms,
                         rb.steps[i].start_ms);
    }
}

TEST(SchedulerReplay, SeededTraceReplaysBitIdentically)
{
    serving::TraceOptions trace_options;
    trace_options.num_requests = 48;
    trace_options.seed = 42;
    trace_options.mean_interarrival_ms = 3.0;
    trace_options.num_priorities = 2;
    auto trace = serving::burstyTrace(trace_options);

    auto runOnce = [&] {
        serving::AnalyticCostModel cost;
        serving::SchedulerOptions options =
            recordingOptions(4, 1024);
        serving::Scheduler scheduler(options, cost);
        return scheduler.run(trace);
    };
    auto a = runOnce();
    auto b = runOnce();

    ASSERT_EQ(a.steps.size(), b.steps.size());
    for (size_t i = 0; i < a.steps.size(); ++i) {
        EXPECT_EQ(a.steps[i].prefill_ids, b.steps[i].prefill_ids);
        EXPECT_EQ(a.steps[i].decode_ids, b.steps[i].decode_ids);
        EXPECT_DOUBLE_EQ(a.steps[i].start_ms,
                         b.steps[i].start_ms);
        EXPECT_DOUBLE_EQ(a.steps[i].step_ms, b.steps[i].step_ms);
        EXPECT_EQ(a.steps[i].kv_reserved, b.steps[i].kv_reserved);
    }
    EXPECT_DOUBLE_EQ(a.metrics.makespan_ms, b.metrics.makespan_ms);
    EXPECT_DOUBLE_EQ(a.metrics.latencyPercentileMs(99.0),
                     b.metrics.latencyPercentileMs(99.0));
    EXPECT_DOUBLE_EQ(a.metrics.ttftMeanMs(), b.metrics.ttftMeanMs());
    EXPECT_EQ(a.metrics.completed, b.metrics.completed);
}

TEST(SchedulerReplay, BatchingBeatsSerialServingOnMakespan)
{
    // The whole point of continuous batching: same trace, larger
    // max_batch, strictly earlier completion.
    serving::TraceOptions trace_options;
    trace_options.num_requests = 32;
    trace_options.seed = 5;
    trace_options.mean_interarrival_ms = 1.0;
    auto trace = serving::poissonTrace(trace_options);

    auto makespan = [&](int64_t max_batch) {
        serving::AnalyticCostModel cost;
        serving::SchedulerOptions options;
        options.max_batch = max_batch;
        options.kv_budget_tokens = 1 << 20;
        serving::Scheduler scheduler(options, cost);
        return scheduler.run(trace).metrics.makespan_ms;
    };
    double serial = makespan(1);
    double batched = makespan(8);
    EXPECT_LT(batched, serial);
}

TEST(Scheduler, RejectsMalformedTracesAndOptions)
{
    serving::AnalyticCostModel cost;
    serving::Scheduler scheduler(recordingOptions(2, 4096), cost);
    EXPECT_THROW(scheduler.run({makeRequest(0, 0.0, 0, 1)}),
                 FatalError);
    EXPECT_THROW(scheduler.run({makeRequest(0, -1.0, 8, 1)}),
                 FatalError);
    EXPECT_THROW(scheduler.run({makeRequest(0, 0.0, 8, 1),
                                makeRequest(0, 1.0, 8, 1)}),
                 FatalError);
    serving::SchedulerOptions bad;
    bad.max_batch = 0;
    EXPECT_THROW(serving::Scheduler(bad, cost), FatalError);
}

TEST(Scheduler, EmptyTraceYieldsEmptyMetrics)
{
    serving::AnalyticCostModel cost;
    serving::Scheduler scheduler(recordingOptions(2, 4096), cost);
    auto result = scheduler.run({});
    EXPECT_EQ(result.metrics.completed, 0);
    EXPECT_EQ(result.metrics.steps, 0);
    EXPECT_DOUBLE_EQ(result.metrics.makespan_ms, 0.0);
    EXPECT_DOUBLE_EQ(result.metrics.requestsPerSecond(), 0.0);
    EXPECT_DOUBLE_EQ(result.metrics.utilization(), 0.0);
}

// ---------------------------------------------------------------
// Paged KV admission: preemption and prefix sharing, scripted.
// ---------------------------------------------------------------

namespace {

Request
makePrefixRequest(int64_t id, double arrival_ms, int64_t input_len,
                  int64_t output_len, int64_t prefix_id,
                  int64_t prefix_len)
{
    Request r = makeRequest(id, arrival_ms, input_len, output_len);
    r.prefix_id = prefix_id;
    r.prefix_len = prefix_len;
    return r;
}

} // namespace

TEST(SchedulerReplay, PagedPreemptionScript)
{
    // Pool of 4 pages (budget 64, page 16). Two identical
    // sequences (input 30, output 4) hold 2 pages each until
    // their 4th step's context (33 tokens) needs a 3rd page:
    // the most recently admitted (R1) is preempted back to the
    // queue, R0 finishes, and R1 readmits with a recompute
    // prefill over its full 33-token context that emits its final
    // token — same token count, preemption cost paid in time.
    serving::AnalyticCostModel cost;
    serving::Scheduler scheduler(recordingOptions(2, 64), cost);
    auto result = scheduler.run({
        makeRequest(0, 0.0, 30, 4),
        makeRequest(1, 0.0, 30, 4),
    });

    ASSERT_EQ(result.steps.size(), 5u);
    EXPECT_TRUE(result.rejected.empty());

    // Steps 1-3: both resident, 2 pages each (contexts 30..32).
    EXPECT_EQ(result.steps[0].prefill_ids,
              (std::vector<int64_t>{0, 1}));
    EXPECT_EQ(result.steps[0].pages_active, 4);
    EXPECT_EQ(result.steps[0].kv_reserved, 64);
    double s0 = analyticStepMs({{32, 32, 2}});
    EXPECT_DOUBLE_EQ(result.steps[0].step_ms, s0);
    double s1 = analyticStepMs({{1, 32, 2}});
    for (size_t i : {1u, 2u}) {
        EXPECT_EQ(result.steps[i].decode_ids,
                  (std::vector<int64_t>{0, 1}));
        EXPECT_TRUE(result.steps[i].preempted_ids.empty());
        EXPECT_DOUBLE_EQ(result.steps[i].step_ms, s1);
    }

    // Step 4: R0's growth to 3 pages evicts R1 (most recently
    // admitted); R1 is not readmitted in the same iteration.
    const auto &s3 = result.steps[3];
    EXPECT_EQ(s3.preempted_ids, (std::vector<int64_t>{1}));
    EXPECT_EQ(s3.decode_ids, (std::vector<int64_t>{0}));
    EXPECT_TRUE(s3.prefill_ids.empty());
    EXPECT_EQ(s3.pages_active, 3);
    EXPECT_EQ(s3.pages_free, 1);
    double s3ms = analyticStepMs({{1, 48, 1}});
    EXPECT_DOUBLE_EQ(s3.step_ms, s3ms);

    // Step 5: R1 readmits and recomputes — a prefill-shaped pass
    // over input + 3 generated = 33 tokens (bucket 48) that also
    // emits its last token.
    const auto &s4 = result.steps[4];
    EXPECT_EQ(s4.prefill_ids, (std::vector<int64_t>{1}));
    EXPECT_TRUE(s4.decode_ids.empty());
    EXPECT_EQ(s4.pages_active, 3);
    double s4ms = analyticStepMs({{48, 48, 1}});
    EXPECT_DOUBLE_EQ(s4.step_ms, s4ms);

    const auto &m = result.metrics;
    EXPECT_EQ(m.completed, 2);
    EXPECT_EQ(m.preemptions, 1);
    EXPECT_EQ(m.total_output_tokens, 8);
    ASSERT_EQ(m.requests.size(), 2u);
    EXPECT_EQ(m.requests[0].id, 0);
    EXPECT_EQ(m.requests[0].preemptions, 0);
    EXPECT_EQ(m.requests[1].id, 1);
    EXPECT_EQ(m.requests[1].preemptions, 1);
    // Preemption never resets the first token: R1's TTFT is still
    // the end of the shared prefill step.
    EXPECT_DOUBLE_EQ(m.requests[1].first_token_ms, s0);
    EXPECT_DOUBLE_EQ(m.requests[1].finish_ms,
                     m.makespan_ms);
    EXPECT_EQ(m.peak_pages_active, 4);
}

TEST(SchedulerReplay, PagedPrefixSharingScript)
{
    // Two concurrent requests share a 32-token prefix (2 full
    // pages): 4 physical pages instead of 6. A third request with
    // the same prefix arrives after both finished and revives the
    // retained prefix pages from cache.
    serving::AnalyticCostModel cost;
    serving::Scheduler scheduler(recordingOptions(2, 256), cost);
    auto result = scheduler.run({
        makePrefixRequest(0, 0.0, 40, 2, /*prefix_id=*/1,
                          /*prefix_len=*/32),
        makePrefixRequest(1, 0.0, 40, 2, 1, 32),
        makePrefixRequest(2, 100.0, 40, 1, 1, 32),
    });

    ASSERT_EQ(result.steps.size(), 3u);
    // Shared prefill: 3 pages each, 2 of them one physical copy.
    EXPECT_EQ(result.steps[0].prefill_ids,
              (std::vector<int64_t>{0, 1}));
    EXPECT_EQ(result.steps[0].pages_active, 4);
    EXPECT_EQ(result.steps[0].kv_reserved, 64);

    // After both retire the prefix pages are retained, not freed:
    // R2's prefill revives them and allocates only its private
    // page.
    const auto &s2 = result.steps[2];
    EXPECT_DOUBLE_EQ(s2.start_ms, 100.0);
    EXPECT_EQ(s2.prefill_ids, (std::vector<int64_t>{2}));
    EXPECT_EQ(s2.pages_active, 3);

    const auto &m = result.metrics;
    EXPECT_EQ(m.completed, 3);
    EXPECT_EQ(m.preemptions, 0);
    // R0 allocates the 2 prefix pages (misses); R1 shares them
    // live (2 hits); R2 revives them from cache (2 more hits).
    EXPECT_EQ(m.prefix_miss_pages, 2);
    EXPECT_EQ(m.prefix_hit_pages, 4);
    EXPECT_DOUBLE_EQ(m.prefixHitRate(), 4.0 / 6.0);
}

TEST(SchedulerReplay, PagedAdmitsWhatReserveBlocks)
{
    // Reserve admission holds bucketLen(input + output - 1) from
    // admission, so a 4-page pool serializes two (30, 40)
    // requests (each reserves 80 > 64/2). Paged admission runs
    // them concurrently until actual pressure builds.
    auto run = [](serving::KvAdmission admission) {
        serving::AnalyticCostModel cost;
        serving::SchedulerOptions options =
            recordingOptions(2, 128);
        options.admission = admission;
        serving::Scheduler scheduler(options, cost);
        return scheduler.run({
            makeRequest(0, 0.0, 30, 40),
            makeRequest(1, 0.0, 30, 40),
        });
    };
    auto paged = run(serving::KvAdmission::Paged);
    auto reserve = run(serving::KvAdmission::Reserve);
    EXPECT_EQ(paged.metrics.completed, 2);
    EXPECT_EQ(reserve.metrics.completed, 2);
    // Reserve: strictly serial (80 + 80 > 128).
    EXPECT_EQ(reserve.steps[0].prefill_ids,
              (std::vector<int64_t>{0}));
    EXPECT_EQ(reserve.steps[0].queue_depth, 1);
    // Paged: both prefill together.
    EXPECT_EQ(paged.steps[0].prefill_ids,
              (std::vector<int64_t>{0, 1}));
    EXPECT_LT(paged.metrics.makespan_ms,
              reserve.metrics.makespan_ms);
}

TEST(SchedulerReplay, RejectionOrderInterleavesReasonsAtOneInstant)
{
    // Five arrivals at t = 0, ingested in one round: TooLong and
    // QueueFull rejections must land in result.rejected in
    // (arrival, id) order — interleaved by id, not grouped by
    // reason or by ingest batching.
    serving::AnalyticCostModel cost;
    serving::SchedulerOptions options = recordingOptions(1, 64);
    options.max_queue_depth = 1;
    serving::Scheduler scheduler(options, cost);
    auto result = scheduler.run({
        makeRequest(0, 0.0, 8, 1),    // admitted
        makeRequest(1, 0.0, 100, 60), // TooLong (10 pages > 4)
        makeRequest(2, 0.0, 8, 1),    // QueueFull
        makeRequest(3, 0.0, 200, 60), // TooLong
        makeRequest(4, 0.0, 8, 1),    // QueueFull
    });
    ASSERT_EQ(result.rejected.size(), 4u);
    EXPECT_EQ(result.rejected[0].id, 1);
    EXPECT_EQ(result.rejected[0].reason,
              serving::RejectReason::TooLong);
    EXPECT_EQ(result.rejected[1].id, 2);
    EXPECT_EQ(result.rejected[1].reason,
              serving::RejectReason::QueueFull);
    EXPECT_EQ(result.rejected[2].id, 3);
    EXPECT_EQ(result.rejected[2].reason,
              serving::RejectReason::TooLong);
    EXPECT_EQ(result.rejected[3].id, 4);
    EXPECT_EQ(result.rejected[3].reason,
              serving::RejectReason::QueueFull);
    for (const auto &r : result.rejected)
        EXPECT_DOUBLE_EQ(r.arrival_ms, 0.0);
    EXPECT_EQ(result.metrics.rejected_too_long, 2);
    EXPECT_EQ(result.metrics.rejected_queue_full, 2);
}

// ---------------------------------------------------------------
// Metrics edge cases (partial runs, degenerate decode windows).
// ---------------------------------------------------------------

TEST(Metrics, TbtMeanSkipsSingleTokenRequests)
{
    serving::ServingMetrics m;
    serving::RequestMetrics multi;
    multi.output_len = 3;
    multi.first_token_ms = 10.0;
    multi.finish_ms = 30.0;
    serving::RequestMetrics single;
    single.output_len = 1;
    single.first_token_ms = 5.0;
    single.finish_ms = 5.0; // no decode window, by construction
    m.requests = {multi, single};
    // 20 ms over 2 gaps; the single-token request contributes
    // neither window nor gaps.
    EXPECT_DOUBLE_EQ(m.tbtMeanMs(), 10.0);
}

TEST(Metrics, TbtMeanRefusesSingleTokenDecodeWindow)
{
    // A single-token request with finish != first token would
    // silently inflate every other request's mean — it is an
    // internal invariant violation, not a user error.
    serving::ServingMetrics m;
    serving::RequestMetrics bad;
    bad.output_len = 1;
    bad.first_token_ms = 5.0;
    bad.finish_ms = 9.0;
    m.requests = {bad};
    EXPECT_THROW(m.tbtMeanMs(), PanicError);
}

TEST(Scheduler, StepLimitSplitsAccountingViews)
{
    // A run cut off by max_steps reports the in-flight sequences
    // it still held; per-request metrics cover completions only,
    // while step aggregates cover every executed step.
    serving::AnalyticCostModel cost;
    serving::SchedulerOptions options = recordingOptions(4, 4096);
    options.max_steps = 3;
    serving::Scheduler scheduler(options, cost);
    std::vector<Request> trace;
    for (int64_t i = 0; i < 10; ++i)
        trace.push_back(makeRequest(i, 0.0, 8, 8));
    auto result = scheduler.run(trace);

    EXPECT_TRUE(result.hit_step_limit);
    const auto &m = result.metrics;
    EXPECT_EQ(m.steps, 3);
    EXPECT_EQ(m.completed, 0); // nobody reached 8 tokens
    EXPECT_TRUE(m.requests.empty());
    EXPECT_EQ(m.in_flight, 4); // the resident batch
    // Step-derived aggregates still cover the in-flight work.
    EXPECT_EQ(m.total_batched_seqs, 12);
    EXPECT_DOUBLE_EQ(m.meanBatchSize(), 4.0);
    double busy = 0.0;
    for (const auto &s : result.steps)
        busy += s.step_ms;
    EXPECT_DOUBLE_EQ(m.busy_ms, busy);
    EXPECT_DOUBLE_EQ(m.utilization(), 1.0);
    // A drained rerun of the same trace reports no in-flight
    // work.
    options.max_steps = 1 << 20;
    serving::Scheduler drained(options, cost);
    EXPECT_EQ(drained.run(trace).metrics.in_flight, 0);
}

// ---------------------------------------------------------------
// Preemption under a bounded queue; drain / deadline / step-limit
// interaction (the doc contract in SchedulerOptions).
// ---------------------------------------------------------------

TEST(SchedulerReplay, PreemptionLandsWhileQueueAtCapacity)
{
    // Regression: the PagedPreemptionScript scenario with a
    // max_queue_depth of 2 that two later arrivals have already
    // filled when R1 is preempted. The preemption re-entry is a
    // front insert exempt from the capacity bound — R1 must land
    // back in the queue (not be dropped or trip the invariant)
    // and nobody gets rejected.
    serving::AnalyticCostModel cost;
    serving::SchedulerOptions options = recordingOptions(2, 64);
    options.max_queue_depth = 2;
    serving::Scheduler scheduler(options, cost);
    auto result = scheduler.run({
        makeRequest(0, 0.0, 30, 4),
        makeRequest(1, 0.0, 30, 4),
        // Arrive mid-run and fill the queue to capacity before
        // the step-4 preemption; small enough to coexist with R1
        // afterwards.
        makeRequest(2, 3.0, 8, 1),
        makeRequest(3, 3.1, 8, 1),
    });

    EXPECT_TRUE(result.rejected.empty());
    ASSERT_EQ(result.steps.size(), 6u);
    const auto &s3 = result.steps[3];
    EXPECT_EQ(s3.preempted_ids, (std::vector<int64_t>{1}));
    // Queue depth at launch exceeds the bound: R2 and R3 at
    // capacity plus the exempt preemption re-entry.
    EXPECT_EQ(s3.queue_depth, 3);
    // R1 re-entered at the front of its class (earlier arrival),
    // so readmission order is R1, then R2, then R3.
    EXPECT_EQ(result.steps[4].prefill_ids,
              (std::vector<int64_t>{1, 2}));
    EXPECT_EQ(result.steps[5].prefill_ids,
              (std::vector<int64_t>{3}));

    const auto &m = result.metrics;
    EXPECT_EQ(m.completed, 4);
    EXPECT_EQ(m.preemptions, 1);
    EXPECT_EQ(m.total_output_tokens, 10);
}

TEST(Scheduler, DrainDeadlineStepLimitInteraction)
{
    // Pins the three stopping mechanisms' documented ordering
    // (SchedulerOptions::drain_at_ms). Unit step cost: one
    // millisecond per resident sequence, so with max_batch = 1
    // the loop iterates at exactly t = 0, 1, 2, 3, 4.
    serving::AnalyticCostOptions unit;
    unit.trigger_ms = 0.0;
    unit.per_seq_ms = 1.0;
    unit.per_query_token_ms = 0.0;
    unit.per_kv_token_ms = 0.0;
    serving::AnalyticCostModel cost(unit);

    serving::SchedulerOptions options = recordingOptions(1, 4096);
    options.drain_at_ms = 2.5; // activates at the t = 3 iteration

    Request r0 = makeRequest(0, 0.0, 8, 4);
    r0.deadline_ms = 2.0; // resident: never expired, counts a miss
    Request r1 = makeRequest(1, 0.0, 8, 2);
    r1.deadline_ms = 1.5; // queued: expires before drain fires
    Request r2 = makeRequest(2, 0.0, 8, 2); // queued: drained
    Request r3 = makeRequest(3, 2.7, 8, 2); // arrives into drain

    serving::Scheduler scheduler(options, cost);
    auto result = scheduler.run({r0, r1, r2, r3});

    // Drain terminated the run cleanly: no step-limit trip, no
    // in-flight work, R0 ran its 4 steps to completion.
    EXPECT_FALSE(result.hit_step_limit);
    const auto &m = result.metrics;
    EXPECT_EQ(m.steps, 4);
    EXPECT_EQ(m.in_flight, 0);
    EXPECT_EQ(m.completed, 1);
    EXPECT_DOUBLE_EQ(m.makespan_ms, 4.0);

    // R0 finished at t = 4 against a deadline of 2: a miss, not
    // an expiry — residents are never evicted by the sweep.
    EXPECT_EQ(m.deadline_misses, 1);
    ASSERT_EQ(m.requests.size(), 1u);
    EXPECT_TRUE(m.requests[0].missedDeadline());

    // Each shed request is counted exactly once, under whichever
    // mechanism tripped first: R1's deadline (swept at t = 2)
    // precedes drain; R2 survives to drain entry at t = 3; R3 is
    // refused at ingest. Rejections land in (arrival, id) order.
    EXPECT_EQ(m.expired_deadline, 1);
    EXPECT_EQ(m.rejected_drained, 2);
    ASSERT_EQ(result.rejected.size(), 3u);
    EXPECT_EQ(result.rejected[0].id, 1);
    EXPECT_EQ(result.rejected[0].reason,
              serving::RejectReason::DeadlineExpired);
    EXPECT_DOUBLE_EQ(result.rejected[0].at_ms, 2.0);
    EXPECT_EQ(result.rejected[1].id, 2);
    EXPECT_EQ(result.rejected[1].reason,
              serving::RejectReason::Drained);
    EXPECT_DOUBLE_EQ(result.rejected[1].at_ms, 3.0);
    EXPECT_EQ(result.rejected[2].id, 3);
    EXPECT_EQ(result.rejected[2].reason,
              serving::RejectReason::Drained);
    EXPECT_DOUBLE_EQ(result.rejected[2].at_ms, 3.0);

    // The step limit sits above both: capped at 2 steps the same
    // run reports in-flight work even though it was draining.
    options.max_steps = 2;
    options.drain_at_ms = 0.5;
    serving::Scheduler capped(options, cost);
    auto cut = capped.run({r0, r1, r2, r3});
    EXPECT_TRUE(cut.hit_step_limit);
    EXPECT_EQ(cut.metrics.steps, 2);
    EXPECT_EQ(cut.metrics.completed, 0);
    EXPECT_EQ(cut.metrics.in_flight, 1);
    // Drain beat both deadlines this time: the whole queue shed
    // as Drained at the t = 1 iteration, before R1's t = 1.5
    // deadline could expire.
    EXPECT_EQ(cut.metrics.rejected_drained, 2);
    EXPECT_EQ(cut.metrics.expired_deadline, 0);
}

// ---- Percentile-cache invalidation (metrics.h): the sorted
// ---- caches key on (record revision, window size), so a query
// ---- between completions — or between fleet merges — must never
// ---- serve a stale distribution. ----

namespace {

serving::RequestMetrics
completedRecord(int64_t id, double arrival_ms,
                double first_token_ms, double finish_ms,
                int64_t output_len)
{
    serving::RequestMetrics r;
    r.id = id;
    r.input_len = 8;
    r.output_len = output_len;
    r.arrival_ms = arrival_ms;
    r.first_token_ms = first_token_ms;
    r.finish_ms = finish_ms;
    return r;
}

} // namespace

TEST(ServingMetricsTest, PercentileCacheSeesLaterCompletions)
{
    serving::ServingMetrics m;
    serving::MetricsOptions keep; // Always
    keep.keep_records = serving::MetricsOptions::KeepRecords::Always;

    m.recordCompletion(completedRecord(0, 0.0, 10.0, 10.0, 1),
                       keep);
    m.recordCompletion(completedRecord(1, 0.0, 20.0, 20.0, 1),
                       keep);
    // Prime both sorted caches.
    EXPECT_DOUBLE_EQ(m.latencyPercentileMs(100.0), 20.0);
    EXPECT_DOUBLE_EQ(m.ttftP95Ms(), 20.0);

    // A later completion with a worse tail must surface on the
    // very next query (query-record-query regression).
    m.recordCompletion(completedRecord(2, 0.0, 90.0, 90.0, 1),
                       keep);
    EXPECT_DOUBLE_EQ(m.latencyPercentileMs(100.0), 90.0);
    EXPECT_DOUBLE_EQ(m.ttftP95Ms(), 90.0);
    EXPECT_DOUBLE_EQ(m.latencyPercentileMs(50.0), 20.0);
}

TEST(FleetMetricsTest, PercentileCacheKeysOnRevisionNotJustSize)
{
    // The fleet merge path mutates `requests` wholesale; the
    // documented contract is that any such mutation bumps
    // record_revision. A same-size content change must re-answer
    // from the updated window — a size-keyed cache would serve
    // the stale sort.
    serving::FleetMetrics fm;
    fm.requests.push_back(
        completedRecord(0, 0.0, 10.0, 10.0, 1));
    fm.requests.push_back(
        completedRecord(1, 0.0, 30.0, 30.0, 1));
    ++fm.record_revision;
    EXPECT_DOUBLE_EQ(fm.latencyPercentileMs(100.0), 30.0);

    fm.requests[1].finish_ms = 500.0; // same size, new content
    fm.requests[1].first_token_ms = 500.0;
    ++fm.record_revision;
    EXPECT_DOUBLE_EQ(fm.latencyPercentileMs(100.0), 500.0);
    EXPECT_DOUBLE_EQ(fm.latencyPercentileMs(0.0), 10.0);
}

// ---- Cold-start weight gating (scheduler.h ColdStartOptions):
// ---- steps launched before the stream finishes stretch by the
// ---- exact residency wait; once it lands, steps match warm
// ---- bit-for-bit. ----

TEST(ServingSchedulerTest, ColdStartGatingExactAgainstWarm)
{
    serving::AnalyticCostModel cost;
    auto base = [] {
        serving::SchedulerOptions o;
        o.max_batch = 2;
        o.kv_budget_tokens = 256;
        o.record_steps = true;
        return o;
    };
    std::vector<Request> trace = {makeRequest(0, 0.0, 8, 3),
                                  makeRequest(1, 0.0, 8, 3)};

    serving::Scheduler warm(base(), cost);
    auto warm_result = warm.run(trace);
    ASSERT_FALSE(warm_result.steps.empty());
    EXPECT_DOUBLE_EQ(warm_result.metrics.weight_stream_ms, 0.0);
    EXPECT_DOUBLE_EQ(warm_result.metrics.weight_stall_ms, 0.0);
    EXPECT_DOUBLE_EQ(
        warm_result.metrics.weightOverlapFraction(), 1.0);
    for (const auto &s : warm_result.steps)
        EXPECT_DOUBLE_EQ(s.weights_wait_ms, 0.0);

    // A handcrafted two-layer plan finishing at t=20: layer 0
    // lands at 10, layer 1 at 20.
    serving::WeightStreamPlan plan;
    plan.model = "handcrafted";
    plan.tier = "test";
    plan.layer_ready_ms = {10.0, 20.0};
    plan.end_ms = 20.0;
    plan.bytes_total = 4096;
    plan.chunks = 2;
    plan.readers = 1;

    auto runCold = [&](bool overlap) {
        auto o = base();
        o.cold_start.plan = plan;
        o.cold_start.overlap = overlap;
        serving::Scheduler cold(o, cost);
        return cold.run(trace);
    };
    auto off = runCold(false);
    auto on = runCold(true);

    // Every step's wait is exactly what the plan's gate derives
    // from the warm step's start and duration — replayed here
    // with the same double arithmetic.
    auto checkWaits = [&](const serving::ServingResult &cold,
                          bool overlap) {
        ASSERT_EQ(cold.steps.size(), warm_result.steps.size());
        double drift = 0.0; // cold start so far delays launches
        double stall = 0.0;
        for (size_t i = 0; i < cold.steps.size(); ++i) {
            const auto &w = warm_result.steps[i];
            const auto &c = cold.steps[i];
            double start = w.start_ms + drift;
            EXPECT_DOUBLE_EQ(c.start_ms, start);
            double wait = 0.0;
            if (start < plan.end_ms) {
                double gated = plan.gatedComputeEndMs(
                    start, w.step_ms, overlap);
                wait = std::max(0.0,
                                gated - (start + w.step_ms));
            }
            EXPECT_DOUBLE_EQ(c.weights_wait_ms, wait);
            EXPECT_DOUBLE_EQ(c.step_ms, w.step_ms + wait);
            drift += wait;
            stall += wait;
        }
        EXPECT_DOUBLE_EQ(cold.metrics.weight_stall_ms, stall);
        EXPECT_DOUBLE_EQ(cold.metrics.weight_stream_ms, 20.0);
        EXPECT_EQ(cold.metrics.weight_bytes_streamed, 4096);
    };
    checkWaits(off, false);
    checkWaits(on, true);

    // Overlap hides part of the stream: strictly less stall and
    // an earlier makespan than overlap-off, never better than
    // warm.
    EXPECT_LT(on.metrics.weight_stall_ms,
              off.metrics.weight_stall_ms);
    EXPECT_LT(on.metrics.makespan_ms, off.metrics.makespan_ms);
    EXPECT_GT(on.metrics.makespan_ms,
              warm_result.metrics.makespan_ms);
    EXPECT_GT(on.metrics.weightOverlapFraction(),
              off.metrics.weightOverlapFraction());

    // Cold-start runs replay bit-identically.
    auto again = runCold(true);
    ASSERT_EQ(again.steps.size(), on.steps.size());
    for (size_t i = 0; i < on.steps.size(); ++i) {
        EXPECT_DOUBLE_EQ(again.steps[i].start_ms,
                         on.steps[i].start_ms);
        EXPECT_DOUBLE_EQ(again.steps[i].step_ms,
                         on.steps[i].step_ms);
        EXPECT_DOUBLE_EQ(again.steps[i].weights_wait_ms,
                         on.steps[i].weights_wait_ms);
    }
}
