/** @file Unit + property tests for the type system (paper §3.1). */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "ir/itensor_type.h"
#include "ir/stream_type.h"
#include "ir/tensor_type.h"
#include "ir/type.h"
#include "support/error.h"

#include "testing/fixtures.h"

using namespace streamtensor;
using ir::AffineExpr;
using ir::AffineMap;
using ir::DataType;
using ir::ITensorType;
using ir::TensorType;

using fixtures::figure5a;
using fixtures::figure5b;
using fixtures::figure5c;

TEST(TensorType, Basics)
{
    TensorType t(DataType::I8, {8, 8});
    EXPECT_EQ(t.rank(), 2);
    EXPECT_EQ(t.numElements(), 64);
    EXPECT_EQ(t.sizeBytes(), 64);
    EXPECT_EQ(t.str(), "tensor<8x8xi8>");
}

TEST(TensorType, SubByteRoundsUp)
{
    TensorType t(DataType::I4, {3});
    EXPECT_EQ(t.sizeBytes(), 2); // 12 bits -> 2 bytes
}

TEST(TensorType, RejectsZeroDims)
{
    EXPECT_THROW(TensorType(DataType::F32, {0, 4}), FatalError);
}

TEST(ITensorType, Figure5aBasics)
{
    ITensorType a = figure5a();
    EXPECT_EQ(a.numTokens(), 16);
    EXPECT_EQ(a.elementCount(), 4);
    EXPECT_EQ(a.revisitFactor(), 1);
    EXPECT_EQ(a.dataShape(), (std::vector<int64_t>{8, 8}));
}

TEST(ITensorType, Figure5bStreamOrder)
{
    ITensorType b = figure5b();
    EXPECT_EQ(b.numTokens(), 8);
    auto offsets = b.streamOffsets();
    ASSERT_EQ(offsets.size(), 8u);
    // Paper: data access indices [0,0], [4,0], [0,2], [4,2], ...
    EXPECT_EQ(offsets[0], (std::vector<int64_t>{0, 0}));
    EXPECT_EQ(offsets[1], (std::vector<int64_t>{4, 0}));
    EXPECT_EQ(offsets[2], (std::vector<int64_t>{0, 2}));
    EXPECT_EQ(offsets[3], (std::vector<int64_t>{4, 2}));
}

TEST(ITensorType, Figure5cRevisit)
{
    ITensorType c = figure5c();
    EXPECT_EQ(c.numTokens(), 16);
    EXPECT_EQ(c.revisitFactor(), 2);
    EXPECT_EQ(c.numUniqueTokens(), 8);
    auto offsets = c.streamOffsets();
    // Paper: [0,0], [4,0], [0,0], [4,0], [0,2], ...
    EXPECT_EQ(offsets[0], (std::vector<int64_t>{0, 0}));
    EXPECT_EQ(offsets[1], (std::vector<int64_t>{4, 0}));
    EXPECT_EQ(offsets[2], (std::vector<int64_t>{0, 0}));
    EXPECT_EQ(offsets[3], (std::vector<int64_t>{4, 0}));
    EXPECT_EQ(offsets[4], (std::vector<int64_t>{0, 2}));
}

TEST(ITensorType, EqualityIsExact)
{
    EXPECT_EQ(figure5b(), figure5b());
    EXPECT_NE(figure5a(), figure5b());
    EXPECT_NE(figure5b(), figure5c());
}

TEST(ITensorType, SameDataSpace)
{
    EXPECT_TRUE(figure5a().sameDataSpace(figure5b()));
    EXPECT_TRUE(figure5b().sameDataSpace(figure5c()));
    ITensorType other(DataType::F32, {2, 2}, {2, 2}, {2, 2},
                      AffineMap::identity(2));
    EXPECT_FALSE(figure5a().sameDataSpace(other));
}

TEST(ITensorType, VerifyRejectsBadStep)
{
    // Mapped loop step must equal the element extent.
    EXPECT_THROW(
        ITensorType(DataType::F32, {2, 2}, {4, 4}, {3, 2},
                    AffineMap::identity(2)),
        FatalError);
}

TEST(ITensorType, VerifyRejectsDoubleBinding)
{
    // One loop cannot drive two data dims.
    EXPECT_THROW(
        ITensorType(DataType::F32, {2, 2}, {4}, {2},
                    AffineMap(1, {AffineExpr::dim(0),
                                  AffineExpr::dim(0)})),
        FatalError);
}

TEST(ITensorType, VerifyRejectsRankMismatch)
{
    EXPECT_THROW(ITensorType(DataType::F32, {2, 2}, {4, 4}, {2},
                             AffineMap::identity(2)),
                 FatalError);
}

TEST(ITensorType, MakeTiledHelper)
{
    TensorType tensor(DataType::I8, {64, 32});
    ITensorType it = ir::makeTiledITensor(tensor, {16, 8});
    EXPECT_EQ(it.numTokens(), 16);
    EXPECT_EQ(it.dataShape(), tensor.shape());
    EXPECT_TRUE(it.iterMap().isIdentity());
    EXPECT_THROW(ir::makeTiledITensor(tensor, {10, 8}), FatalError);
}

TEST(ITensorType, MakePermutedHelper)
{
    TensorType tensor(DataType::I8, {64, 32});
    ITensorType it = ir::makePermutedITensor(tensor, {16, 8},
                                             {1, 0});
    EXPECT_EQ(it.numTokens(), 16);
    EXPECT_EQ(it.dataShape(), tensor.shape());
    // Loop 0 iterates data dim 1 (outer); the inner loop drives
    // data dim 0, so the second token moves along rows.
    auto offsets = it.streamOffsets();
    EXPECT_EQ(offsets[0], (std::vector<int64_t>{0, 0}));
    EXPECT_EQ(offsets[1], (std::vector<int64_t>{16, 0}));
}

TEST(StreamType, Basics)
{
    ir::StreamType s(DataType::I8, {4, 2}, 32);
    EXPECT_EQ(s.lanes(), 8);
    EXPECT_EQ(s.tokenBits(), 64);
    EXPECT_EQ(s.storageBits(), 64 * 32);
    EXPECT_EQ(s.str(), "stream<4x2xi8, depth:32>");
}

TEST(StreamType, FromITensorStripsLayout)
{
    ir::StreamType s = ir::streamTypeFor(figure5b(), 16);
    EXPECT_EQ(s.vectorShape(), (std::vector<int64_t>{4, 2}));
    EXPECT_EQ(s.depth(), 16);
    EXPECT_EQ(s.dtype(), DataType::F32);
}

TEST(MemRefType, PingPongDoubles)
{
    ir::MemRefType m(DataType::I8, {16, 64}, true);
    EXPECT_EQ(m.storageBytes(), 2 * 16 * 64);
    ir::MemRefType single(DataType::I8, {16, 64}, false);
    EXPECT_EQ(single.storageBytes(), 16 * 64);
}

TEST(TypeVariant, Dispatch)
{
    ir::Type t(TensorType(DataType::F32, {4}));
    EXPECT_TRUE(t.isTensor());
    EXPECT_FALSE(t.isITensor());
    EXPECT_THROW(t.itensor(), PanicError);
    ir::Type s(ir::StreamType(DataType::I8, {}, 2));
    EXPECT_TRUE(s.isStream());
    EXPECT_NE(t, s);
}

// ---- Property sweep: tiled itensors cover their data space ----

struct TileCase
{
    int64_t rows, cols, tile_r, tile_c;
};

class TiledCoverage : public ::testing::TestWithParam<TileCase>
{};

TEST_P(TiledCoverage, EveryOffsetInBoundsAndAligned)
{
    auto p = GetParam();
    TensorType tensor(DataType::I8, {p.rows, p.cols});
    ITensorType it =
        ir::makeTiledITensor(tensor, {p.tile_r, p.tile_c});
    EXPECT_EQ(it.numTokens(),
              (p.rows / p.tile_r) * (p.cols / p.tile_c));
    std::set<std::pair<int64_t, int64_t>> seen;
    for (const auto &off : it.streamOffsets()) {
        ASSERT_EQ(off.size(), 2u);
        EXPECT_GE(off[0], 0);
        EXPECT_LE(off[0] + p.tile_r, p.rows);
        EXPECT_EQ(off[0] % p.tile_r, 0);
        EXPECT_EQ(off[1] % p.tile_c, 0);
        seen.insert({off[0], off[1]});
    }
    // Unique tiles tile the space exactly.
    EXPECT_EQ(static_cast<int64_t>(seen.size()),
              it.numUniqueTokens());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TiledCoverage,
    ::testing::Values(TileCase{8, 8, 2, 2}, TileCase{8, 8, 4, 2},
                      TileCase{16, 8, 8, 8}, TileCase{32, 16, 4, 16},
                      TileCase{6, 9, 3, 3}, TileCase{64, 64, 16, 16},
                      TileCase{1, 16, 1, 4}, TileCase{16, 1, 4, 1}));

// Permutation property: permuted stream visits the same tile set.
class PermutedCoverage
    : public ::testing::TestWithParam<std::vector<int64_t>>
{};

TEST_P(PermutedCoverage, SameTileSetAsRowMajor)
{
    auto perm = GetParam();
    TensorType tensor(DataType::I8, {24, 12});
    ITensorType row = ir::makeTiledITensor(tensor, {4, 3});
    ITensorType per =
        ir::makePermutedITensor(tensor, {4, 3}, perm);
    auto a = row.streamOffsets();
    auto b = per.streamOffsets();
    std::set<std::vector<int64_t>> sa(a.begin(), a.end());
    std::set<std::vector<int64_t>> sb(b.begin(), b.end());
    EXPECT_EQ(sa, sb);
    EXPECT_EQ(row.numTokens(), per.numTokens());
}

INSTANTIATE_TEST_SUITE_P(
    Perms, PermutedCoverage,
    ::testing::Values(std::vector<int64_t>{0, 1},
                      std::vector<int64_t>{1, 0}));
