/** @file Unit tests for accelerator materialization, dataflow
 *  passes, and bufferization (paper §4.2-4.3). */

#include <gtest/gtest.h>

#include <map>

#include "dataflow/bufferize.h"
#include "dataflow/fusion_apply.h"
#include "dataflow/passes.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "linalg/builders.h"

using namespace streamtensor;
using ir::DataType;
using ir::TensorType;
using dataflow::ComponentKind;

namespace {

linalg::Graph
mlpGraph()
{
    linalg::Graph g("mlp");
    int64_t x = g.addTensor(TensorType(DataType::I8, {64, 128}),
                            "x", linalg::TensorRole::Input);
    int64_t w1 = g.addTensor(TensorType(DataType::I4, {128, 256}),
                             "w1", linalg::TensorRole::Parameter);
    int64_t h = linalg::matmul(g, x, w1, DataType::I8, "fc1");
    int64_t a =
        linalg::ewiseUnary(g, h, linalg::EwiseFn::Gelu, "gelu");
    int64_t w2 = g.addTensor(TensorType(DataType::I4, {256, 64}),
                             "w2", linalg::TensorRole::Parameter);
    int64_t y = linalg::matmul(g, a, w2, DataType::I8, "fc2");
    g.tensor(y).role = linalg::TensorRole::Output;
    return g;
}

dataflow::AcceleratorDesign
buildMlp(int64_t c_max = 1 << 30)
{
    auto g = mlpGraph();
    dse::TilingOptions opts;
    opts.default_tile_size = 16;
    auto configs = dse::exploreTiling(g, opts);
    return dataflow::buildAccelerator(g, configs, c_max);
}

int64_t
countKind(const dataflow::ComponentGraph &g, ComponentKind kind)
{
    int64_t n = 0;
    for (int64_t i = 0; i < g.numComponents(); ++i)
        if (g.component(i).kind == kind)
            ++n;
    return n;
}

} // namespace

TEST(Materialize, MlpComponentInventory)
{
    auto design = buildMlp();
    const auto &cg = design.components;
    EXPECT_EQ(countKind(cg, ComponentKind::Kernel), 3);
    // Loads: x, w1, w2. Store: fc2 output.
    EXPECT_EQ(countKind(cg, ComponentKind::LoadDma), 3);
    EXPECT_EQ(countKind(cg, ComponentKind::StoreDma), 1);
    // gelu -> fc2 needs a revisit converter; fc1 -> gelu matches.
    EXPECT_EQ(countKind(cg, ComponentKind::Converter), 1);
    EXPECT_EQ(design.plan.groups.size(), 1u);
}

TEST(Materialize, ChannelsCarryMatchingTypes)
{
    auto design = buildMlp();
    const auto &cg = design.components;
    for (int64_t c = 0; c < cg.numChannels(); ++c) {
        const auto &ch = cg.channel(c);
        EXPECT_EQ(ch.tokens, ch.type.numTokens());
        EXPECT_EQ(cg.component(ch.src).group,
                  cg.component(ch.dst).group);
    }
}

TEST(Materialize, GroupTopoOrderIsValid)
{
    auto design = buildMlp();
    const auto &cg = design.components;
    auto order = cg.groupTopoOrder(0);
    std::map<int64_t, size_t> pos;
    for (size_t i = 0; i < order.size(); ++i)
        pos[order[i]] = i;
    for (int64_t c = 0; c < cg.numChannels(); ++c) {
        const auto &ch = cg.channel(c);
        EXPECT_LT(pos.at(ch.src), pos.at(ch.dst));
    }
}

TEST(Materialize, SplitIntoGroupsAddsDmas)
{
    // Tiny budget: every mismatched edge splits; the intermediate
    // tensor then flows через store+load DMA pairs.
    auto fused = buildMlp();
    auto split = buildMlp(/*c_max=*/0);
    EXPECT_GT(split.plan.groups.size(), fused.plan.groups.size());
    EXPECT_GT(countKind(split.components, ComponentKind::StoreDma),
              countKind(fused.components, ComponentKind::StoreDma));
}

TEST(Materialize, ConverterSharedAcrossConsumers)
{
    // One producer fanning out to two consumers with the same
    // mismatched layout: CSE keeps a single converter.
    linalg::Graph g("fanout");
    int64_t x = g.addTensor(TensorType(DataType::I8, {64, 64}),
                            "x", linalg::TensorRole::Input);
    int64_t a =
        linalg::ewiseUnary(g, x, linalg::EwiseFn::Gelu, "a");
    int64_t w = g.addTensor(TensorType(DataType::I4, {64, 64}),
                            "w", linalg::TensorRole::Parameter);
    int64_t y1 = linalg::matmul(g, a, w, DataType::I8, "mm1");
    int64_t y2 = linalg::matmul(g, a, w, DataType::I8, "mm2");
    g.tensor(y1).role = linalg::TensorRole::Output;
    g.tensor(y2).role = linalg::TensorRole::Output;
    auto configs = dse::exploreTiling(g, {});
    auto design = dataflow::buildAccelerator(g, configs, 1 << 30);
    EXPECT_EQ(countKind(design.components, ComponentKind::Converter),
              1);
}

TEST(Passes, FoldRemovesDmaKernelFifos)
{
    // Elementwise kernels stream their input without revisit, so
    // the DMA->kernel pattern matches exactly and folds.
    linalg::Graph g("ew");
    int64_t x = g.addTensor(TensorType(DataType::I8, {64, 64}),
                            "x", linalg::TensorRole::Input);
    int64_t y =
        linalg::ewiseUnary(g, x, linalg::EwiseFn::Gelu, "gelu");
    g.tensor(y).role = linalg::TensorRole::Output;
    auto configs = dse::exploreTiling(g, {});
    auto design = dataflow::buildAccelerator(g, configs, 1 << 30);

    auto stats = dataflow::foldITensors(design.components);
    EXPECT_GT(stats.channels_folded, 0);
    EXPECT_GT(stats.bytes_saved, 0);
    for (int64_t c = 0; c < design.components.numChannels(); ++c) {
        const auto &ch = design.components.channel(c);
        if (!ch.folded)
            continue;
        EXPECT_EQ(design.components.component(ch.src).kind,
                  ComponentKind::LoadDma);
        EXPECT_EQ(ch.type.revisitFactor(), 1);
    }

    // Matmul inputs revisit tiles: those streams must keep their
    // FIFOs (folding is more restrictive than fusion, §4.3.2).
    auto mlp = buildMlp();
    auto mlp_stats = dataflow::foldITensors(mlp.components);
    for (int64_t c = 0; c < mlp.components.numChannels(); ++c) {
        const auto &ch = mlp.components.channel(c);
        if (ch.type.revisitFactor() > 1) {
            EXPECT_FALSE(ch.folded);
        }
    }
    (void)mlp_stats;
}

TEST(Passes, VectorizeWidensDmasToPort)
{
    auto design = buildMlp();
    dataflow::vectorizeITensors(design.components, 512);
    for (int64_t i = 0; i < design.components.numComponents();
         ++i) {
        const auto &c = design.components.component(i);
        if (c.kind != ComponentKind::LoadDma)
            continue;
        EXPECT_GE(c.vector_lanes, 1);
        // 512-bit port: at most 128 i4 lanes or 64 i8 lanes.
        EXPECT_LE(c.vector_lanes, 128);
    }
}

TEST(Passes, ReduceStreamDepthFloorsAtBurst)
{
    auto design = buildMlp();
    for (int64_t c = 0; c < design.components.numChannels(); ++c)
        design.components.channel(c).depth = 4096;
    dataflow::reduceStreamDepth(design.components, 8);
    for (int64_t c = 0; c < design.components.numChannels(); ++c) {
        const auto &ch = design.components.channel(c);
        int64_t burst = design.components.channelBurst(c);
        EXPECT_GE(ch.depth, std::min<int64_t>(8, 2 * burst));
        EXPECT_LE(ch.depth, std::max<int64_t>(8, 2 * burst));
    }
}

TEST(Graph, BurstComputation)
{
    auto design = buildMlp();
    const auto &cg = design.components;
    for (int64_t c = 0; c < cg.numChannels(); ++c) {
        int64_t burst = cg.channelBurst(c);
        EXPECT_GE(burst, 1);
        EXPECT_LE(burst, cg.channel(c).tokens);
    }
}

TEST(Bufferize, ModuleVerifiesAndPrints)
{
    auto design = buildMlp();
    auto module = dataflow::bufferize(design.components);
    auto verify = ir::verifyModule(*module);
    EXPECT_TRUE(verify.ok()) << verify.str();
    std::string text = ir::printModule(*module);
    EXPECT_NE(text.find("kernel @group0"), std::string::npos);
    EXPECT_NE(text.find("stream<"), std::string::npos);
    EXPECT_NE(text.find("task @fc1"), std::string::npos);
    EXPECT_NE(text.find("loop_nest"), std::string::npos);
}

TEST(Bufferize, FoldedChannelsHaveNoStream)
{
    auto design = buildMlp();
    dataflow::foldITensors(design.components);
    auto module = dataflow::bufferize(design.components);
    // Count stream ops: one per unfolded channel.
    int64_t unfolded = 0;
    for (int64_t c = 0; c < design.components.numChannels(); ++c)
        if (!design.components.channel(c).folded)
            ++unfolded;
    std::string text = ir::printModule(*module);
    int64_t streams = 0;
    size_t pos = 0;
    while ((pos = text.find("= stream ", pos)) !=
           std::string::npos) {
        ++streams;
        pos += 1;
    }
    EXPECT_EQ(streams, unfolded);
}

TEST(Stats, MemoryAccounting)
{
    auto design = buildMlp();
    EXPECT_GT(design.original_intermediate_bytes, 0);
    EXPECT_GT(design.components.totalConverterBytes(), 0);
    EXPECT_GT(design.components.totalLocalBufferBytes(), 0);
    EXPECT_GE(design.fusedIntermediateBytes(),
              design.components.totalConverterBytes());
}
