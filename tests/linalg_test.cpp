/** @file Unit tests for the linalg graph and its passes. */

#include <gtest/gtest.h>

#include "linalg/builders.h"
#include "linalg/passes.h"
#include "support/error.h"

using namespace streamtensor;
using ir::DataType;
using ir::TensorType;
using namespace streamtensor::linalg;

namespace {

Graph
mlpGraph()
{
    Graph g("mlp");
    int64_t x = g.addTensor(TensorType(DataType::I8, {8, 16}), "x",
                            TensorRole::Input);
    int64_t w1 = g.addTensor(TensorType(DataType::I4, {16, 32}),
                             "w1", TensorRole::Parameter);
    int64_t h = matmul(g, x, w1, DataType::I8, "fc1");
    int64_t a = ewiseUnary(g, h, EwiseFn::Gelu, "gelu");
    int64_t w2 = g.addTensor(TensorType(DataType::I4, {32, 16}),
                             "w2", TensorRole::Parameter);
    int64_t y = matmul(g, a, w2, DataType::I8, "fc2");
    g.tensor(y).role = TensorRole::Output;
    return g;
}

} // namespace

TEST(Graph, MatmulDomainAndIndexing)
{
    Graph g = mlpGraph();
    const OpInfo &mm = g.op(0);
    EXPECT_EQ(mm.kind, OpKind::MatMul);
    EXPECT_EQ(mm.loop_extents, (std::vector<int64_t>{8, 32, 16}));
    EXPECT_EQ(mm.iterators[2], IteratorKind::Reduction);
    EXPECT_EQ(mm.input_indexing[0].dims,
              (std::vector<int64_t>{0, 2}));
    EXPECT_EQ(mm.input_indexing[1].dims,
              (std::vector<int64_t>{2, 1}));
    EXPECT_EQ(mm.output_indexing.dims,
              (std::vector<int64_t>{0, 1}));
    EXPECT_DOUBLE_EQ(mm.flops(), 2.0 * 8 * 32 * 16);
}

TEST(Graph, TopoOrderRespectsDeps)
{
    Graph g = mlpGraph();
    auto order = g.topoOrder();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_LT(order[0], order[1]);
    EXPECT_LT(order[1], order[2]);
}

TEST(Graph, ProducerConsumerWiring)
{
    Graph g = mlpGraph();
    int64_t h = g.op(0).output;
    EXPECT_EQ(g.tensor(h).producer, 0);
    ASSERT_EQ(g.tensor(h).consumers.size(), 1u);
    EXPECT_EQ(g.tensor(h).consumers[0], 1);
}

TEST(Graph, RejectsDoubleProducer)
{
    Graph g = mlpGraph();
    OpInfo op;
    op.kind = OpKind::Fill;
    op.output = g.op(0).output; // already produced
    op.loop_extents = {8, 32};
    op.iterators.assign(2, IteratorKind::Parallel);
    op.output_indexing.dims = {0, 1};
    EXPECT_THROW(g.addOp(std::move(op)), FatalError);
}

TEST(Graph, IntermediateBytesCountsActivationsOnly)
{
    Graph g = mlpGraph();
    // Only fc1 and gelu outputs are intermediate (block output and
    // params excluded): 8x32 i8 twice.
    EXPECT_EQ(g.intermediateBytes(), 2 * 8 * 32);
}

TEST(Passes, ElementwiseFusionMergesChains)
{
    Graph g("chain");
    int64_t x = g.addTensor(TensorType(DataType::I8, {4, 4}), "x",
                            TensorRole::Input);
    int64_t a = ewiseUnary(g, x, EwiseFn::Gelu, "a");
    int64_t b = ewiseUnary(g, a, EwiseFn::Scale, "b");
    int64_t c = ewiseUnary(g, b, EwiseFn::Add, "c");
    g.tensor(c).role = TensorRole::Output;

    EXPECT_EQ(fuseElementwiseOps(g), 2);
    auto order = g.topoOrder();
    ASSERT_EQ(order.size(), 1u);
    const OpInfo &fused = g.op(order[0]);
    // Payloads applied in producer-to-consumer order.
    ASSERT_EQ(fused.fused_payloads.size(), 2u);
    EXPECT_EQ(fused.fused_payloads[0], EwiseFn::Gelu);
    EXPECT_EQ(fused.fused_payloads[1], EwiseFn::Scale);
    EXPECT_EQ(fused.ewise_fn, EwiseFn::Add);
}

TEST(Passes, ElementwiseFusionStopsAtFanOut)
{
    Graph g("fanout");
    int64_t x = g.addTensor(TensorType(DataType::I8, {4, 4}), "x",
                            TensorRole::Input);
    int64_t a = ewiseUnary(g, x, EwiseFn::Gelu, "a");
    int64_t b = ewiseUnary(g, a, EwiseFn::Scale, "b");
    int64_t c = ewiseUnary(g, a, EwiseFn::Exp, "c");
    g.tensor(b).role = TensorRole::Output;
    g.tensor(c).role = TensorRole::Output;
    // `a` has two consumers; nothing can fuse.
    EXPECT_EQ(fuseElementwiseOps(g), 0);
}

TEST(Passes, FoldUnitExtentDims)
{
    Graph g("unit");
    int64_t x = g.addTensor(TensorType(DataType::I8, {1, 16}), "x",
                            TensorRole::Input);
    int64_t y = ewiseUnary(g, x, EwiseFn::Gelu, "y");
    g.tensor(y).role = TensorRole::Output;
    EXPECT_EQ(foldUnitExtentDims(g), 1);
    const OpInfo &op = g.op(0);
    EXPECT_EQ(op.loop_extents, (std::vector<int64_t>{16}));
    // The dim previously indexed by the dropped loop broadcasts.
    EXPECT_EQ(op.input_indexing[0].dims,
              (std::vector<int64_t>{-1, 0}));
}

TEST(Passes, FuseFillIntoMatmul)
{
    Graph g("fill");
    int64_t x = g.addTensor(TensorType(DataType::I8, {8, 16}), "x",
                            TensorRole::Input);
    int64_t w = g.addTensor(TensorType(DataType::I4, {16, 8}), "w",
                            TensorRole::Parameter);
    int64_t acc =
        fill(g, TensorType(DataType::I8, {8, 8}), "acc");
    int64_t y = matmul(g, x, w, DataType::I8, "mm", acc);
    g.tensor(y).role = TensorRole::Output;

    EXPECT_EQ(g.topoOrder().size(), 2u);
    EXPECT_EQ(fuseFill(g), 1);
    auto order = g.topoOrder();
    ASSERT_EQ(order.size(), 1u);
    EXPECT_EQ(g.op(order[0]).inputs.size(), 2u); // init dropped
}

TEST(Builders, SoftmaxMarksInnerReduction)
{
    Graph g("sm");
    int64_t x = g.addTensor(TensorType(DataType::I8, {4, 32}), "x",
                            TensorRole::Input);
    int64_t y = softmax(g, x, "softmax");
    g.tensor(y).role = TensorRole::Output;
    const OpInfo &op = g.op(0);
    EXPECT_EQ(op.kind, OpKind::Softmax);
    EXPECT_EQ(op.iterators.back(), IteratorKind::Reduction);
    EXPECT_EQ(op.numReductionLoops(), 1);
}

TEST(Builders, BroadcastVectorIndexing)
{
    Graph g("bv");
    int64_t x = g.addTensor(TensorType(DataType::I8, {4, 32}), "x",
                            TensorRole::Input);
    int64_t v = g.addTensor(TensorType(DataType::F32, {32}), "w",
                            TensorRole::Parameter);
    int64_t y = layerNorm(g, x, v, "ln");
    g.tensor(y).role = TensorRole::Output;
    const OpInfo &op = g.op(0);
    ASSERT_EQ(op.input_indexing.size(), 2u);
    EXPECT_EQ(op.input_indexing[1].dims,
              (std::vector<int64_t>{1}));
}

TEST(Builders, TransposeShapes)
{
    Graph g("tr");
    int64_t x = g.addTensor(TensorType(DataType::I8, {4, 8}), "x",
                            TensorRole::Input);
    int64_t y = transpose(g, x, {1, 0}, "t");
    g.tensor(y).role = TensorRole::Output;
    EXPECT_EQ(g.tensor(y).type.shape(),
              (std::vector<int64_t>{8, 4}));
}

TEST(Builders, MatmulShapeChecks)
{
    Graph g("bad");
    int64_t a = g.addTensor(TensorType(DataType::I8, {4, 8}), "a",
                            TensorRole::Input);
    int64_t b = g.addTensor(TensorType(DataType::I8, {9, 4}), "b",
                            TensorRole::Input);
    EXPECT_THROW(matmul(g, a, b, DataType::I8, "mm"), FatalError);
}

TEST(Graph, DumpContainsOpsAndPayloads)
{
    Graph g = mlpGraph();
    std::string text = g.str();
    EXPECT_NE(text.find("matmul"), std::string::npos);
    EXPECT_NE(text.find("elementwise<gelu>"), std::string::npos);
}
