/** @file Unit tests for the vendor-tool substitute: platform,
 *  profiling, resource estimation, RTL-time model, codegen. */

#include <gtest/gtest.h>

#include "dataflow/fusion_apply.h"
#include "dataflow/passes.h"
#include "hls/codegen.h"
#include "hls/platform.h"
#include "hls/profiling.h"
#include "hls/resource.h"
#include "hls/rtl_time.h"
#include "linalg/builders.h"

using namespace streamtensor;
using ir::DataType;
using ir::TensorType;

namespace {

dataflow::AcceleratorDesign
smallDesign()
{
    linalg::Graph g("small");
    int64_t x = g.addTensor(TensorType(DataType::I8, {32, 64}),
                            "x", linalg::TensorRole::Input);
    int64_t w = g.addTensor(TensorType(DataType::I4, {64, 32}),
                            "w", linalg::TensorRole::Parameter);
    int64_t h = linalg::matmul(g, x, w, DataType::I8, "mm");
    int64_t y =
        linalg::ewiseUnary(g, h, linalg::EwiseFn::Gelu, "gelu");
    g.tensor(y).role = linalg::TensorRole::Output;
    auto configs = dse::exploreTiling(g, {});
    return dataflow::buildAccelerator(g, configs, 1 << 30);
}

} // namespace

TEST(Platform, U55cTable6Values)
{
    auto p = hls::u55c();
    EXPECT_EQ(p.name, "AMD U55C");
    EXPECT_DOUBLE_EQ(p.freq_mhz, 250.0);
    EXPECT_DOUBLE_EQ(p.memory_bandwidth_gbps, 460.0);
    EXPECT_DOUBLE_EQ(p.peakInt8Tops(), 24.5);
    EXPECT_DOUBLE_EQ(p.tdp_watts, 150.0);
    EXPECT_EQ(p.onChipBytes(), 41ll * 1024 * 1024);
    EXPECT_GT(p.channelBytesPerCycle(), 0.0);
}

TEST(Platform, U280DiffersInMemoryAndPower)
{
    auto p = hls::u280();
    EXPECT_DOUBLE_EQ(p.memory_capacity_gib, 8.0);
    EXPECT_DOUBLE_EQ(p.tdp_watts, 225.0);
}

TEST(Profiling, FillsDeterministicTimings)
{
    auto design = smallDesign();
    hls::profileComponents(design.components, hls::u55c());
    for (int64_t i = 0; i < design.components.numComponents();
         ++i) {
        const auto &c = design.components.component(i);
        EXPECT_GT(c.total_cycles, 0.0) << c.name;
        EXPECT_GE(c.initial_delay, 0.0);
        EXPECT_LE(c.initial_delay, c.total_cycles);
    }
    // Determinism (paper §5.3.1): a second run is identical.
    auto again = smallDesign();
    hls::profileComponents(again.components, hls::u55c());
    for (int64_t i = 0; i < design.components.numComponents();
         ++i) {
        EXPECT_DOUBLE_EQ(
            design.components.component(i).total_cycles,
            again.components.component(i).total_cycles);
    }
}

TEST(Profiling, KernelCyclesScaleWithUnroll)
{
    auto design = smallDesign();
    hls::profileComponents(design.components, hls::u55c());
    double base = 0;
    for (int64_t i = 0; i < design.components.numComponents();
         ++i) {
        auto &c = design.components.component(i);
        if (c.kind == dataflow::ComponentKind::Kernel &&
            c.name == "mm") {
            base = c.total_cycles;
            c.unroll *= 4;
        }
    }
    hls::profileComponents(design.components, hls::u55c());
    for (int64_t i = 0; i < design.components.numComponents();
         ++i) {
        const auto &c = design.components.component(i);
        if (c.kind == dataflow::ComponentKind::Kernel &&
            c.name == "mm") {
            EXPECT_LT(c.total_cycles, base);
        }
    }
}

TEST(Profiling, ConverterIngestShorterThanEmission)
{
    auto design = smallDesign();
    hls::profileComponents(design.components, hls::u55c());
    for (int64_t i = 0; i < design.components.numComponents();
         ++i) {
        const auto &c = design.components.component(i);
        if (c.kind != dataflow::ComponentKind::Converter)
            continue;
        if (c.ingest_cycles > 0) {
            EXPECT_LE(c.ingest_cycles, c.total_cycles);
        }
    }
}

TEST(Resource, EstimatesArePositiveAndAdditive)
{
    auto design = smallDesign();
    hls::ResourceUsage total;
    for (int64_t i = 0; i < design.components.numComponents();
         ++i) {
        auto usage = hls::estimateComponent(
            design.components.component(i));
        EXPECT_GE(usage.luts, 0);
        total += usage;
    }
    auto group = hls::estimateGroup(design.components, 0);
    EXPECT_GE(group.memory_bytes, total.memory_bytes);
    EXPECT_EQ(group.dsps, total.dsps);
}

TEST(Resource, FitsPlatformDetectsOverflow)
{
    auto design = smallDesign();
    EXPECT_TRUE(
        hls::fitsPlatform(design.components, hls::u55c()));
    hls::FpgaPlatform tiny = hls::u55c();
    tiny.dsp_count = 1;
    EXPECT_FALSE(hls::fitsPlatform(design.components, tiny));
}

TEST(RtlTime, HlsDominatesBreakdown)
{
    auto design = smallDesign();
    auto breakdown = hls::estimateRtlTime(design.components,
                                          100 << 20, 12.0);
    EXPECT_GT(breakdown.hls_seconds,
              breakdown.profiling_seconds);
    EXPECT_GT(breakdown.hls_seconds,
              breakdown.param_packing_seconds);
    EXPECT_DOUBLE_EQ(breakdown.compile_seconds, 12.0);
    EXPECT_NEAR(breakdown.total(),
                breakdown.hls_seconds +
                    breakdown.profiling_seconds +
                    breakdown.param_packing_seconds + 12.0,
                1e-9);
}

TEST(RtlTime, MoreParallelJobsNeverSlower)
{
    auto design = smallDesign();
    hls::RtlTimeModel few;
    few.parallel_jobs = 1;
    hls::RtlTimeModel many;
    many.parallel_jobs = 16;
    auto a = hls::estimateRtlTime(design.components, 0, 0.0, few);
    auto b = hls::estimateRtlTime(design.components, 0, 0.0, many);
    EXPECT_GE(a.hls_seconds, b.hls_seconds);
}

TEST(Codegen, HlsContainsDataflowStructure)
{
    auto design = smallDesign();
    hls::profileComponents(design.components, hls::u55c());
    auto code = hls::generateCode(design.components);
    EXPECT_NE(code.hls_cpp.find("#pragma HLS dataflow"),
              std::string::npos);
    EXPECT_NE(code.hls_cpp.find("hls::stream<"),
              std::string::npos);
    EXPECT_NE(code.hls_cpp.find("group0_top"), std::string::npos);
    EXPECT_NE(code.hls_cpp.find("depth="), std::string::npos);
}

TEST(Codegen, HostSequencesGroups)
{
    auto design = smallDesign();
    auto host = hls::generateHost(design.components);
    EXPECT_NE(host.find("xrt::kernel"), std::string::npos);
    EXPECT_NE(host.find("run.wait()"), std::string::npos);
}

TEST(Codegen, ConnectivityBindsDmasToHbm)
{
    auto design = smallDesign();
    auto cfg = hls::generateConnectivity(design.components);
    EXPECT_NE(cfg.find("[connectivity]"), std::string::npos);
    EXPECT_NE(cfg.find("HBM["), std::string::npos);
    EXPECT_NE(cfg.find("SLR"), std::string::npos);
}
