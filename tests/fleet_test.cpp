/** @file Scripted tests for the fault-tolerant fleet tier: the
 *  fault injector and seeded plans, the load-balancer policies,
 *  and exact-schedule FleetScheduler scenarios — crash-mid-decode
 *  failover (token-exact completion on a survivor), graceful
 *  drain hand-off, retry-budget exhaustion, total-outage parking,
 *  slowdown and link-degradation cost changes. All arithmetic
 *  uses a unit step cost (per_seq_ms = 1, everything else 0) so
 *  every step costs exactly the batch size in milliseconds and
 *  schedules are hand-computable. */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "serving/cost_model.h"
#include "serving/fault.h"
#include "serving/fleet.h"
#include "serving/load_balancer.h"
#include "serving/weights.h"
#include "support/error.h"

using namespace streamtensor;
using serving::FaultEvent;
using serving::FaultKind;
using serving::Request;

namespace {

/** Unit cost: one millisecond per batched sequence per step. */
serving::AnalyticCostOptions
unitCost()
{
    serving::AnalyticCostOptions o;
    o.trigger_ms = 0.0;
    o.per_seq_ms = 1.0;
    o.per_query_token_ms = 0.0;
    o.per_kv_token_ms = 0.0;
    return o;
}

Request
makeRequest(int64_t id, double arrival_ms, int64_t input_len,
            int64_t output_len)
{
    Request r;
    r.id = id;
    r.arrival_ms = arrival_ms;
    r.input_len = input_len;
    r.output_len = output_len;
    return r;
}

serving::FleetOptions
fleetOptions(int num_replicas)
{
    serving::FleetOptions o;
    o.num_replicas = num_replicas;
    o.replica.max_batch = 4;
    o.replica.kv_budget_tokens = 4096;
    o.replica.record_steps = true;
    o.balancer = serving::LbPolicy::LeastKvLoad;
    o.max_retries = 3;
    o.retry_backoff_ms = 2.0;
    o.retry_backoff_factor = 2.0;
    return o;
}

/** Committed step appearances of @p id on replica @p replica. */
int64_t
appearancesOn(const serving::FleetResult &result, size_t replica,
              int64_t id)
{
    int64_t count = 0;
    for (const auto &s : result.replicas[replica].steps) {
        for (int64_t x : s.prefill_ids)
            count += x == id ? 1 : 0;
        for (int64_t x : s.decode_ids)
            count += x == id ? 1 : 0;
    }
    return count;
}

// ---------------------------------------------------------------
// FaultInjector and seeded plans
// ---------------------------------------------------------------

TEST(FaultInjector, OrdersByTimeKeepingAuthoringOrderAtTies)
{
    serving::FaultPlan plan;
    plan.events.push_back({50.0, 1, FaultKind::Recover, 1.0});
    plan.events.push_back({10.0, 0, FaultKind::Crash, 1.0});
    plan.events.push_back({10.0, 1, FaultKind::DrainStart, 1.0});
    serving::FaultInjector injector(std::move(plan));

    EXPECT_FALSE(injector.exhausted());
    EXPECT_DOUBLE_EQ(injector.nextAtMs(), 10.0);
    auto due = injector.drainDue(10.0);
    ASSERT_EQ(due.size(), 2u);
    // Authoring order preserved at the tied instant.
    EXPECT_EQ(due[0].kind, FaultKind::Crash);
    EXPECT_EQ(due[1].kind, FaultKind::DrainStart);
    EXPECT_DOUBLE_EQ(injector.nextAtMs(), 50.0);
    EXPECT_EQ(injector.drainDue(100.0).size(), 1u);
    EXPECT_TRUE(injector.exhausted());
    EXPECT_TRUE(std::isinf(injector.nextAtMs()));
}

TEST(FaultInjector, RejectsMalformedEvents)
{
    {
        serving::FaultPlan plan;
        plan.events.push_back({-1.0, 0, FaultKind::Crash, 1.0});
        EXPECT_THROW(serving::FaultInjector{std::move(plan)},
                     FatalError);
    }
    {
        serving::FaultPlan plan;
        plan.events.push_back(
            {1.0, 0, FaultKind::SlowStart, 0.0});
        EXPECT_THROW(serving::FaultInjector{std::move(plan)},
                     FatalError);
    }
}

TEST(SeededFaultPlan, DeterministicAndInsideTheHorizon)
{
    serving::SeededFaultOptions o;
    o.seed = 42;
    o.num_replicas = 4;
    o.horizon_ms = 500.0;
    o.crash_prob = 1.0;
    o.slow_prob = 1.0;
    o.drain_prob = 1.0;
    o.degrade_prob = 1.0;

    serving::FaultPlan a = serving::seededFaultPlan(o);
    serving::FaultPlan b = serving::seededFaultPlan(o);
    ASSERT_EQ(a.events.size(), b.events.size());
    // Every window enabled: 8 events per replica.
    EXPECT_EQ(a.events.size(), 4u * 8u);
    for (size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.events[i].at_ms, b.events[i].at_ms);
        EXPECT_EQ(a.events[i].replica, b.events[i].replica);
        EXPECT_EQ(a.events[i].kind, b.events[i].kind);
        EXPECT_DOUBLE_EQ(a.events[i].factor, b.events[i].factor);
    }
    for (const auto &e : a.events) {
        EXPECT_GE(e.at_ms, 0.0);
        EXPECT_LE(e.at_ms, o.horizon_ms);
        EXPECT_GE(e.replica, 0);
        EXPECT_LT(e.replica, o.num_replicas);
        if (e.kind == FaultKind::SlowStart) {
            EXPECT_GE(e.factor, o.min_slow_factor);
            EXPECT_LE(e.factor, o.max_slow_factor);
        }
    }

    o.seed = 43;
    serving::FaultPlan c = serving::seededFaultPlan(o);
    bool differs = c.events.size() != a.events.size();
    for (size_t i = 0; !differs && i < a.events.size(); ++i)
        differs = c.events[i].at_ms != a.events[i].at_ms;
    EXPECT_TRUE(differs) << "seed had no effect on the plan";
}

// ---------------------------------------------------------------
// Load balancers
// ---------------------------------------------------------------

TEST(LoadBalancer, RoundRobinRotatesOverEligibleOnly)
{
    auto lb =
        serving::makeLoadBalancer(serving::LbPolicy::RoundRobin);
    std::vector<serving::ReplicaStatus> s(4);
    for (int i = 0; i < 4; ++i)
        s[static_cast<size_t>(i)].id = i;
    s[1].up = false;      // crashed
    s[2].draining = true; // draining
    Request r = makeRequest(0, 0.0, 8, 4);
    EXPECT_EQ(lb->pick(r, s), 0);
    EXPECT_EQ(lb->pick(r, s), 3);
    EXPECT_EQ(lb->pick(r, s), 0);
    s[0].up = false;
    s[3].up = false;
    EXPECT_EQ(lb->pick(r, s), -1);
}

TEST(LoadBalancer, LeastKvLoadBreaksTiesByQueueThenId)
{
    auto lb =
        serving::makeLoadBalancer(serving::LbPolicy::LeastKvLoad);
    std::vector<serving::ReplicaStatus> s(3);
    for (int i = 0; i < 3; ++i)
        s[static_cast<size_t>(i)].id = i;
    s[0].kv_load_tokens = 64;
    s[1].kv_load_tokens = 32;
    s[2].kv_load_tokens = 32;
    s[1].queue_depth = 2;
    s[2].queue_depth = 1;
    Request r = makeRequest(0, 0.0, 8, 4);
    EXPECT_EQ(lb->pick(r, s), 2); // least kv, then queue depth
    s[2].queue_depth = 2;
    EXPECT_EQ(lb->pick(r, s), 1); // full tie: lowest id
    s[1].up = false;
    s[2].up = false;
    EXPECT_EQ(lb->pick(r, s), 0);
}

TEST(LoadBalancer, PrefixAffinityIsStableAndFallsBack)
{
    auto lb = serving::makeLoadBalancer(
        serving::LbPolicy::PrefixAffinity);
    std::vector<serving::ReplicaStatus> s(4);
    for (int i = 0; i < 4; ++i)
        s[static_cast<size_t>(i)].id = i;

    Request shared = makeRequest(0, 0.0, 32, 4);
    shared.prefix_id = 7;
    shared.prefix_len = 16;
    int home = lb->pick(shared, s);
    ASSERT_GE(home, 0);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(lb->pick(shared, s), home)
            << "prefix group wandered";

    // The home replica dies: the group rehashes, together, onto a
    // survivor.
    s[static_cast<size_t>(home)].up = false;
    int fallback = lb->pick(shared, s);
    ASSERT_GE(fallback, 0);
    EXPECT_NE(fallback, home);
    EXPECT_EQ(lb->pick(shared, s), fallback);

    // Prefix-less requests route by load.
    Request plain = makeRequest(1, 0.0, 8, 4);
    s[home].up = true;
    s[0].kv_load_tokens = 100;
    s[1].kv_load_tokens = 100;
    s[2].kv_load_tokens = 1;
    s[3].kv_load_tokens = 100;
    EXPECT_EQ(lb->pick(plain, s), 2);
}

// ---------------------------------------------------------------
// FleetScheduler scripted scenarios
// ---------------------------------------------------------------

/** The acceptance scenario: a replica crashes mid-decode and its
 *  in-flight request finishes on the survivor with exactly
 *  output_len tokens, a recorded failover, and a hand-computed
 *  schedule. Unit cost: steps at [0,1), [1,2), ... */
TEST(Fleet, CrashMidDecodeFailsOverTokenExact)
{
    auto options = fleetOptions(2);
    // Crash replica 0 at t = 3.5 — strictly inside its fourth
    // step [3, 4), which is therefore aborted.
    options.faults.events.push_back(
        {3.5, 0, FaultKind::Crash, 1.0});

    serving::AnalyticCostModel cost(unitCost());
    serving::FleetScheduler fleet(options, cost);
    // LeastKvLoad on an idle fleet ties to replica 0.
    auto result = fleet.run({makeRequest(0, 0.0, 8, 8)});
    const auto &fm = result.metrics;

    EXPECT_EQ(fm.completed, 1);
    EXPECT_EQ(fm.crashes, 1);
    EXPECT_EQ(fm.failovers, 1);
    EXPECT_EQ(fm.aborted_steps, 1);
    EXPECT_EQ(fm.requests_lost, 0);
    EXPECT_DOUBLE_EQ(fm.availability(), 1.0);

    // Replica 0 committed prefill [0,1) + decodes [1,2), [2,3):
    // 3 tokens. The evacuated request waits out one backoff
    // (2 ms), recompute-prefills on replica 1 at [5.5, 6.5), and
    // decodes the remaining 4 tokens — finish at 10.5.
    ASSERT_EQ(result.replicas[0].steps.size(), 3u);
    EXPECT_DOUBLE_EQ(result.replicas[0].steps.back().start_ms +
                         result.replicas[0].steps.back().step_ms,
                     3.0);
    ASSERT_EQ(result.replicas[1].steps.size(), 5u);
    EXPECT_DOUBLE_EQ(result.replicas[1].steps[0].start_ms, 5.5);
    ASSERT_EQ(result.replicas[1].steps[0].prefill_ids.size(), 1u);
    EXPECT_EQ(result.replicas[1].steps[0].prefill_ids[0], 0);

    EXPECT_EQ(appearancesOn(result, 0, 0) +
                  appearancesOn(result, 1, 0),
              8);

    ASSERT_EQ(fm.requests.size(), 1u);
    const auto &done = fm.requests[0];
    EXPECT_EQ(done.replica, 1);
    EXPECT_EQ(done.failovers, 1);
    EXPECT_EQ(done.preemptions, 0);
    // The first token was emitted on replica 0 before the crash;
    // failover re-derives KV, not the already-emitted token.
    EXPECT_DOUBLE_EQ(done.first_token_ms, 1.0);
    EXPECT_DOUBLE_EQ(done.finish_ms, 10.5);
    EXPECT_DOUBLE_EQ(fm.makespan_ms, 10.5);

    // Bit-identical across two executions.
    serving::AnalyticCostModel cost2(unitCost());
    serving::FleetScheduler fleet2(options, cost2);
    auto again = fleet2.run({makeRequest(0, 0.0, 8, 8)});
    ASSERT_EQ(again.metrics.requests.size(), 1u);
    EXPECT_DOUBLE_EQ(again.metrics.requests[0].finish_ms, 10.5);
    ASSERT_EQ(again.replicas[1].steps.size(), 5u);
    for (size_t i = 0; i < 5; ++i) {
        EXPECT_DOUBLE_EQ(again.replicas[1].steps[i].start_ms,
                         result.replicas[1].steps[i].start_ms);
        EXPECT_EQ(again.replicas[1].steps[i].decode_ids,
                  result.replicas[1].steps[i].decode_ids);
    }
}

TEST(Fleet, DrainHandsQueueOverWithoutRetryPenalty)
{
    auto options = fleetOptions(2);
    options.replica.max_batch = 1;
    options.balancer = serving::LbPolicy::RoundRobin;
    // Drain replica 0 at t = 1.5 while it still queues id 2.
    options.faults.events.push_back(
        {1.5, 0, FaultKind::DrainStart, 1.0});

    serving::AnalyticCostModel cost(unitCost());
    serving::FleetScheduler fleet(options, cost);
    // RoundRobin: 0 -> r0, 1 -> r1, 2 -> r0 (queued behind 0).
    auto result = fleet.run({makeRequest(0, 0.0, 8, 4),
                             makeRequest(1, 0.0, 8, 4),
                             makeRequest(2, 0.0, 8, 4)});
    const auto &fm = result.metrics;

    EXPECT_EQ(fm.completed, 3);
    EXPECT_EQ(fm.drains, 1);
    EXPECT_EQ(fm.crashes, 0);
    // Graceful: the hand-off consumed no retry attempt.
    EXPECT_EQ(fm.failovers, 0);
    EXPECT_EQ(fm.requests_lost, 0);
    EXPECT_DOUBLE_EQ(fm.availability(), 1.0);

    std::map<int64_t, int> finished_on;
    for (const auto &r : fm.requests) {
        finished_on[r.id] = r.replica;
        EXPECT_EQ(r.failovers, 0);
    }
    // Residents finish where they ran; the evacuated queue entry
    // finishes on the survivor.
    EXPECT_EQ(finished_on.at(0), 0);
    EXPECT_EQ(finished_on.at(1), 1);
    EXPECT_EQ(finished_on.at(2), 1);
}

TEST(Fleet, RetryExhaustionLosesTheRequest)
{
    auto options = fleetOptions(1);
    options.max_retries = 0; // first evacuation is fatal
    options.faults.events.push_back(
        {1.5, 0, FaultKind::Crash, 1.0});

    serving::AnalyticCostModel cost(unitCost());
    serving::FleetScheduler fleet(options, cost);
    auto result = fleet.run({makeRequest(0, 0.0, 8, 8)});
    const auto &fm = result.metrics;

    EXPECT_EQ(fm.completed, 0);
    EXPECT_EQ(fm.crashes, 1);
    EXPECT_EQ(fm.failovers, 1);
    EXPECT_EQ(fm.requests_lost, 1);
    ASSERT_EQ(result.lost.size(), 1u);
    EXPECT_EQ(result.lost[0].id, 0);
    EXPECT_EQ(result.lost[0].attempts, 1);
    EXPECT_DOUBLE_EQ(result.lost[0].at_ms, 1.5);
    EXPECT_DOUBLE_EQ(fm.availability(), 0.0);
}

TEST(Fleet, TotalOutageParksArrivalsUntilRecovery)
{
    auto options = fleetOptions(1);
    options.faults.events.push_back(
        {1.0, 0, FaultKind::Crash, 1.0});
    options.faults.events.push_back(
        {10.0, 0, FaultKind::Recover, 1.0});

    serving::AnalyticCostModel cost(unitCost());
    serving::FleetScheduler fleet(options, cost);
    // Arrives mid-outage; no replica is eligible until t = 10.
    auto result = fleet.run({makeRequest(0, 2.0, 8, 3)});
    const auto &fm = result.metrics;

    EXPECT_EQ(fm.completed, 1);
    EXPECT_EQ(fm.crashes, 1);
    EXPECT_EQ(fm.recoveries, 1);
    EXPECT_EQ(fm.requests_lost, 0);
    EXPECT_EQ(fm.failovers, 0); // parked, never evacuated
    ASSERT_EQ(fm.requests.size(), 1u);
    // Prefill launches at the recovery instant: [10, 11).
    EXPECT_DOUBLE_EQ(fm.requests[0].first_token_ms, 11.0);
    EXPECT_DOUBLE_EQ(fm.requests[0].finish_ms, 13.0);
    // Availability counts the request served; uptime shows the
    // 9 ms hole: up 1 + 3 of 13.
    EXPECT_DOUBLE_EQ(fm.availability(), 1.0);
    EXPECT_NEAR(fm.uptimeFraction(), 4.0 / 13.0, 1e-12);
}

TEST(Fleet, StrandedRequestsAreLostNotWedged)
{
    auto options = fleetOptions(1);
    options.faults.events.push_back(
        {1.5, 0, FaultKind::Crash, 1.0}); // no recovery, ever

    serving::AnalyticCostModel cost(unitCost());
    serving::FleetScheduler fleet(options, cost);
    auto result = fleet.run(
        {makeRequest(0, 0.0, 8, 8), makeRequest(1, 5.0, 8, 2)});
    const auto &fm = result.metrics;

    // Request 0 was evacuated (one attempt), request 1 arrived
    // into a dead fleet (zero attempts); both strand and are
    // recorded lost instead of hanging the run.
    EXPECT_EQ(fm.completed, 0);
    EXPECT_EQ(fm.requests_lost, 2);
    ASSERT_EQ(result.lost.size(), 2u);
    EXPECT_DOUBLE_EQ(fm.availability(), 0.0);
}

TEST(Fleet, SlowdownScalesOnlyStepsLaunchedInTheWindow)
{
    auto options = fleetOptions(1);
    options.faults.events.push_back(
        {0.5, 0, FaultKind::SlowStart, 3.0});

    serving::AnalyticCostModel cost(unitCost());
    serving::FleetScheduler fleet(options, cost);
    auto result = fleet.run({makeRequest(0, 0.0, 8, 4)});
    const auto &fm = result.metrics;

    EXPECT_EQ(fm.slowdowns, 1);
    ASSERT_EQ(result.replicas[0].steps.size(), 4u);
    // The prefill launched at t = 0 keeps its nominal cost; every
    // decode launches inside the window at 3x.
    EXPECT_DOUBLE_EQ(result.replicas[0].steps[0].step_ms, 1.0);
    for (size_t i = 1; i < 4; ++i)
        EXPECT_DOUBLE_EQ(result.replicas[0].steps[i].step_ms,
                         3.0);
    EXPECT_DOUBLE_EQ(fm.makespan_ms, 10.0);
}

TEST(Fleet, DegradationSwapsTheCostOracle)
{
    auto options = fleetOptions(1);
    options.faults.events.push_back(
        {1.5, 0, FaultKind::DegradeStart, 1.0});
    options.faults.events.push_back(
        {3.0, 0, FaultKind::DegradeEnd, 1.0});

    serving::AnalyticCostModel cost(unitCost());
    auto degraded_options = unitCost();
    degraded_options.per_seq_ms = 2.0; // a halved link
    serving::AnalyticCostModel degraded(degraded_options);
    serving::FleetScheduler fleet(options, cost, &degraded);
    auto result = fleet.run({makeRequest(0, 0.0, 8, 4)});
    const auto &fm = result.metrics;

    EXPECT_EQ(fm.degrades, 1);
    ASSERT_EQ(result.replicas[0].steps.size(), 4u);
    // [0,1) and [1,2) nominal; [2,4) costed by the degraded
    // model; DegradeEnd at 3.0 restores the oracle before the
    // final launch at 4.0.
    EXPECT_DOUBLE_EQ(result.replicas[0].steps[0].step_ms, 1.0);
    EXPECT_DOUBLE_EQ(result.replicas[0].steps[1].step_ms, 1.0);
    EXPECT_DOUBLE_EQ(result.replicas[0].steps[2].step_ms, 2.0);
    EXPECT_DOUBLE_EQ(result.replicas[0].steps[3].step_ms, 1.0);
    EXPECT_DOUBLE_EQ(fm.makespan_ms, 5.0);

    // Without a degraded oracle the window is a no-op.
    serving::AnalyticCostModel cost2(unitCost());
    serving::FleetScheduler plain(options, cost2);
    auto calm = plain.run({makeRequest(0, 0.0, 8, 4)});
    EXPECT_EQ(calm.metrics.degrades, 0);
    EXPECT_DOUBLE_EQ(calm.metrics.makespan_ms, 4.0);
}

TEST(Fleet, ArrivalAtCrashInstantRoutesToSurvivor)
{
    auto options = fleetOptions(2);
    options.faults.events.push_back(
        {2.0, 0, FaultKind::Crash, 1.0});

    serving::AnalyticCostModel cost(unitCost());
    serving::FleetScheduler fleet(options, cost);
    // Faults fire before arrivals at an equal instant, so the
    // t = 2 arrival must see replica 0 down.
    auto result = fleet.run({makeRequest(0, 2.0, 8, 2)});
    ASSERT_EQ(result.metrics.requests.size(), 1u);
    EXPECT_EQ(result.metrics.requests[0].replica, 1);
    EXPECT_EQ(result.metrics.crashes, 1);
    EXPECT_EQ(result.metrics.failovers, 0);
}

TEST(Fleet, ReplicaQueueFullStillRejects)
{
    auto options = fleetOptions(1);
    options.replica.max_batch = 1;
    options.replica.max_queue_depth = 1;

    serving::AnalyticCostModel cost(unitCost());
    serving::FleetScheduler fleet(options, cost);
    // id 0 resident by t = 0.5, id 1 queued, id 2 over capacity.
    auto result = fleet.run({makeRequest(0, 0.0, 8, 4),
                             makeRequest(1, 0.5, 8, 4),
                             makeRequest(2, 0.6, 8, 4)});
    EXPECT_EQ(result.metrics.completed, 2);
    EXPECT_EQ(result.metrics.rejected_queue_full, 1);
    ASSERT_EQ(result.rejected.size(), 1u);
    EXPECT_EQ(result.rejected[0].id, 2);
    EXPECT_EQ(result.rejected[0].reason,
              serving::RejectReason::QueueFull);
}

TEST(Fleet, RejectsFaultPlanNamingUnknownReplica)
{
    auto options = fleetOptions(2);
    options.faults.events.push_back(
        {1.0, 5, FaultKind::Crash, 1.0});
    serving::AnalyticCostModel cost(unitCost());
    EXPECT_THROW(serving::FleetScheduler(options, cost),
                 FatalError);
}

} // namespace

TEST(Fleet, RecoveryReloadDefersEligibility)
{
    // Replica 0 crashes at t=4 and recovers at t=10 with a 20 ms
    // weight-reload window: it must take no step before t=30,
    // and the window counts as down time.
    serving::AnalyticCostModel cost(unitCost());
    auto options = fleetOptions(2);
    options.recovery_reload_ms = 20.0;
    options.faults.events.push_back(
        {4.0, 0, FaultKind::Crash, 1.0});
    options.faults.events.push_back(
        {10.0, 0, FaultKind::Recover, 1.0});

    // Arrivals keep coming through the outage and past the
    // reload end, so the rejoined replica has work to attract.
    std::vector<Request> trace;
    for (int64_t i = 0; i < 24; ++i)
        trace.push_back(
            makeRequest(i, 4.0 * static_cast<double>(i), 4, 40));

    serving::FleetScheduler fleet(options, cost);
    auto result = fleet.run(trace);
    const auto &fm = result.metrics;

    EXPECT_EQ(fm.crashes, 1);
    EXPECT_EQ(fm.recoveries, 1);
    EXPECT_EQ(fm.reloads, 1);
    EXPECT_DOUBLE_EQ(fm.reload_ms_total, 20.0);
    EXPECT_EQ(fm.completed, 24);

    // No step on replica 0 starts inside [4, 30).
    for (const auto &s : result.replicas[0].steps)
        EXPECT_TRUE(s.start_ms < 4.0 || s.start_ms >= 30.0)
            << s.start_ms;
    // It does rejoin: work launches at (or after) reload end.
    bool stepped_after = false;
    for (const auto &s : result.replicas[0].steps)
        stepped_after = stepped_after || s.start_ms >= 30.0;
    EXPECT_TRUE(stepped_after);

    // Down time spans crash -> reload end, not crash -> recover.
    EXPECT_LE(fm.replica_up_ms[0], fm.makespan_ms - 26.0);

    // A zero-window fleet (the default) recovers at t=10 exactly
    // as before the reload feature existed — strictly more up
    // time, no reloads charged.
    auto instant = options;
    instant.recovery_reload_ms = 0.0;
    serving::AnalyticCostModel cost2(unitCost());
    serving::FleetScheduler fleet2(instant, cost2);
    auto result2 = fleet2.run(trace);
    EXPECT_EQ(result2.metrics.reloads, 0);
    EXPECT_DOUBLE_EQ(result2.metrics.reload_ms_total, 0.0);
    bool stepped_in_window = false;
    for (const auto &s : result2.replicas[0].steps)
        stepped_in_window =
            stepped_in_window ||
            (s.start_ms >= 10.0 && s.start_ms < 30.0);
    EXPECT_TRUE(stepped_in_window);
}

TEST(Fleet, RecoveryReloadScalesWithStorageTier)
{
    // The reload window is derived from a real artifact stream:
    // slower tiers keep the recovering replica out longer, which
    // shows up directly in fleet up-time.
    auto artifact = serving::ModelArtifact::fromConfig(
        models::gpt2Config());
    auto runWithTier =
        [&](const serving::StorageTierProfile &tier) {
            serving::WeightStreamOptions so;
            so.tier = tier;
            double reload_ms = serving::WeightStreamer(so)
                                   .plan(artifact)
                                   .streamMs();
            serving::AnalyticCostModel cost(unitCost());
            auto options = fleetOptions(2);
            options.recovery_reload_ms = reload_ms;
            options.faults.events.push_back(
                {4.0, 0, FaultKind::Crash, 1.0});
            options.faults.events.push_back(
                {8.0, 0, FaultKind::Recover, 1.0});
            std::vector<Request> trace;
            for (int64_t i = 0; i < 16; ++i)
                trace.push_back(makeRequest(i, 0.0, 4, 200));
            serving::FleetScheduler fleet(options, cost);
            return fleet.run(trace);
        };
    auto gp3 = runWithTier(serving::gp3Tier());
    auto io2 = runWithTier(serving::io2Tier());
    auto s3 = runWithTier(serving::s3Tier());

    EXPECT_GT(gp3.metrics.reload_ms_total,
              io2.metrics.reload_ms_total);
    EXPECT_GT(s3.metrics.reload_ms_total,
              gp3.metrics.reload_ms_total);
    EXPECT_GT(io2.metrics.replica_up_ms[0],
              gp3.metrics.replica_up_ms[0]);
}

TEST(Fleet, HotSwapReStreamsUnderLiveTraffic)
{
    // Scripted hot swap: replica 0 is gracefully evacuated at
    // t=10, charged the swap reload window, and rejoins
    // automatically — no Recover event, no retry attempts
    // consumed, and the fleet keeps serving on replica 1
    // throughout.
    serving::AnalyticCostModel cost(unitCost());
    auto options = fleetOptions(2);
    options.swap_reload_ms = 25.0;
    options.faults.events.push_back(
        {10.0, 0, FaultKind::Swap, 1.0});

    // Live traffic before, during, and after the swap window.
    std::vector<Request> trace;
    for (int64_t i = 0; i < 24; ++i)
        trace.push_back(
            makeRequest(i, 3.0 * static_cast<double>(i), 4, 30));

    auto run = [&]() {
        serving::AnalyticCostModel c(unitCost());
        serving::FleetScheduler fleet(options, c);
        return fleet.run(trace);
    };
    auto result = run();
    const auto &fm = result.metrics;

    EXPECT_EQ(fm.swaps, 1);
    EXPECT_EQ(fm.crashes, 0);
    EXPECT_EQ(fm.recoveries, 0);
    EXPECT_EQ(fm.reloads, 1);
    EXPECT_DOUBLE_EQ(fm.reload_ms_total, 25.0);

    // Graceful: evacuated requests consume no retry attempt and
    // nothing is lost — every request completes in full.
    EXPECT_EQ(fm.failovers, 0);
    EXPECT_EQ(fm.requests_lost, 0);
    EXPECT_EQ(fm.completed, 24);
    EXPECT_DOUBLE_EQ(fm.availability(), 1.0);
    for (const auto &r : fm.requests)
        EXPECT_EQ(r.failovers, 0);

    // No step on replica 0 inside the swap window [10, 35); it
    // rejoins after, with no Recover event in the plan.
    for (const auto &s : result.replicas[0].steps)
        EXPECT_TRUE(s.start_ms < 10.0 || s.start_ms >= 35.0)
            << s.start_ms;
    bool rejoined = false;
    for (const auto &s : result.replicas[0].steps)
        rejoined = rejoined || s.start_ms >= 35.0;
    EXPECT_TRUE(rejoined);
    // Replica 1 served straight through the swap window.
    bool served_during = false;
    for (const auto &s : result.replicas[1].steps)
        served_during = served_during ||
                        (s.start_ms >= 10.0 && s.start_ms < 35.0);
    EXPECT_TRUE(served_during);

    // Swapping a down replica is a tolerant no-op.
    auto down_first = options;
    down_first.faults.events.clear();
    down_first.faults.events.push_back(
        {8.0, 0, FaultKind::Crash, 1.0});
    down_first.faults.events.push_back(
        {10.0, 0, FaultKind::Swap, 1.0});
    serving::AnalyticCostModel c3(unitCost());
    serving::FleetScheduler fleet3(down_first, c3);
    auto result3 = fleet3.run(trace);
    EXPECT_EQ(result3.metrics.swaps, 0);
    EXPECT_EQ(result3.metrics.reloads, 0);

    // The swap scenario replays bit-identically.
    auto again = run();
    EXPECT_DOUBLE_EQ(again.metrics.makespan_ms, fm.makespan_ms);
    ASSERT_EQ(again.replicas.size(), result.replicas.size());
    for (size_t r = 0; r < result.replicas.size(); ++r) {
        const auto &a = result.replicas[r].steps;
        const auto &b = again.replicas[r].steps;
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i) {
            EXPECT_DOUBLE_EQ(a[i].start_ms, b[i].start_ms);
            EXPECT_DOUBLE_EQ(a[i].step_ms, b[i].step_ms);
            EXPECT_EQ(a[i].prefill_ids, b[i].prefill_ids);
            EXPECT_EQ(a[i].decode_ids, b[i].decode_ids);
        }
    }
}

TEST(Fleet, SwapReloadDefaultsToRecoveryWindow)
{
    // swap_reload_ms < 0 falls back to recovery_reload_ms.
    serving::AnalyticCostModel cost(unitCost());
    auto options = fleetOptions(2);
    options.recovery_reload_ms = 12.0;
    options.faults.events.push_back(
        {5.0, 0, FaultKind::Swap, 1.0});
    std::vector<Request> trace = {makeRequest(0, 0.0, 4, 40),
                                  makeRequest(1, 0.0, 4, 40)};
    serving::FleetScheduler fleet(options, cost);
    auto result = fleet.run(trace);
    EXPECT_EQ(result.metrics.swaps, 1);
    EXPECT_DOUBLE_EQ(result.metrics.reload_ms_total, 12.0);

    serving::FleetOptions bad = fleetOptions(1);
    bad.recovery_reload_ms = -1.0;
    serving::AnalyticCostModel c2(unitCost());
    EXPECT_THROW(serving::FleetScheduler(bad, c2), FatalError);
}
