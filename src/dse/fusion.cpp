#include "dse/fusion.h"

#include <algorithm>
#include <map>

#include "dse/converter_gen.h"
#include "support/error.h"

namespace streamtensor {
namespace dse {

int64_t
FusionGraph::addNode()
{
    return num_nodes_++;
}

int64_t
FusionGraph::addEdge(int64_t src, int64_t dst,
                     ir::ITensorType producer_type,
                     ir::ITensorType consumer_type)
{
    ST_CHECK(src >= 0 && src < num_nodes_, "edge src out of range");
    ST_CHECK(dst >= 0 && dst < num_nodes_, "edge dst out of range");
    ST_CHECK(src != dst, "self edges are not allowed");
    ST_CHECK(producer_type.sameDataSpace(consumer_type),
             "edge endpoint types must share a data space");
    edges_.push_back({src, dst, std::move(producer_type),
                      std::move(consumer_type)});
    return numEdges() - 1;
}

const FusionGraph::Edge &
FusionGraph::edge(int64_t i) const
{
    ST_ASSERT(i >= 0 && i < numEdges(), "edge id out of range");
    return edges_[i];
}

std::vector<int64_t>
FusionGraph::topoOrder() const
{
    std::vector<int64_t> indeg(num_nodes_, 0);
    std::vector<std::vector<int64_t>> succ(num_nodes_);
    for (const auto &e : edges_) {
        succ[e.src].push_back(e.dst);
        ++indeg[e.dst];
    }
    // Stable order: lowest id first, matching creation order so
    // "nearest candidate" behaves deterministically.
    std::vector<int64_t> order, ready;
    for (int64_t i = 0; i < num_nodes_; ++i)
        if (indeg[i] == 0)
            ready.push_back(i);
    while (!ready.empty()) {
        auto it = std::min_element(ready.begin(), ready.end());
        int64_t u = *it;
        ready.erase(it);
        order.push_back(u);
        for (int64_t v : succ[u])
            if (--indeg[v] == 0)
                ready.push_back(v);
    }
    ST_CHECK(static_cast<int64_t>(order.size()) == num_nodes_,
             "fusion graph must be a DAG");
    return order;
}

int64_t
FusionPlan::totalCost() const
{
    int64_t total = 0;
    for (int64_t c : costs)
        total += c;
    return total;
}

bool
FusionPlan::sameGroup(int64_t u, int64_t v) const
{
    ST_ASSERT(u >= 0 && u < static_cast<int64_t>(fusion_index.size()),
              "node out of range");
    ST_ASSERT(v >= 0 && v < static_cast<int64_t>(fusion_index.size()),
              "node out of range");
    return fusion_index[u] == fusion_index[v];
}

std::vector<int64_t>
FusionPlan::internalEdges(const FusionGraph &g) const
{
    std::vector<int64_t> out;
    for (int64_t e = 0; e < g.numEdges(); ++e)
        if (sameGroup(g.edge(e).src, g.edge(e).dst))
            out.push_back(e);
    return out;
}

FusionPlan
exploreFusion(const FusionGraph &graph, int64_t c_max)
{
    FusionPlan plan;
    plan.fusion_index.assign(graph.numNodes(), -1);

    // Predecessor edge lists for candidate gathering.
    std::vector<std::vector<int64_t>> pred_edges(graph.numNodes());
    for (int64_t e = 0; e < graph.numEdges(); ++e)
        pred_edges[graph.edge(e).dst].push_back(e);

    for (int64_t n : graph.topoOrder()) {
        // Gather fusion candidates: group index -> added cost
        // (Algorithm 2 lines 3-6). Multiple edges from the same
        // group accumulate.
        std::map<int64_t, int64_t> cand;
        for (int64_t e : pred_edges[n]) {
            const auto &edge = graph.edge(e);
            int64_t cost = converterCostBytes(edge.producer_type,
                                              edge.consumer_type);
            int64_t g = plan.fusion_index[edge.src];
            cand[g] += cost;
        }

        // Fuse with the nearest candidate (max group index, i.e.
        // the most recently opened group; lines 7-9).
        int64_t f_idx = static_cast<int64_t>(plan.groups.size());
        int64_t f_cost = 0;
        if (!cand.empty()) {
            f_idx = cand.rbegin()->first;
            f_cost = cand.rbegin()->second;
        }

        if (f_idx == static_cast<int64_t>(plan.groups.size()) ||
            f_cost + plan.costs[f_idx] > c_max) {
            // Open a fresh group (lines 10-11).
            plan.groups.push_back({n});
            plan.costs.push_back(0);
            plan.fusion_index[n] =
                static_cast<int64_t>(plan.groups.size()) - 1;
        } else {
            // Join the candidate group (lines 12-14).
            plan.groups[f_idx].push_back(n);
            plan.costs[f_idx] += f_cost;
            plan.fusion_index[n] = f_idx;
        }
    }
    return plan;
}

} // namespace dse
} // namespace streamtensor
