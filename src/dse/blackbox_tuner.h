/**
 * @file
 * Black-box hyperparameter tuner — the Optuna substitute
 * (paper §5.1: tiling-space hyperparameters are explored through a
 * black-box optimizer with feedback from kernel fusion).
 *
 * Implements seeded random search with elitist mutation: half of
 * the proposals perturb the best-known configuration by one
 * parameter, the rest sample uniformly. Deterministic for a fixed
 * seed.
 */

#ifndef STREAMTENSOR_DSE_BLACKBOX_TUNER_H
#define STREAMTENSOR_DSE_BLACKBOX_TUNER_H

#include <cstdint>
#include <string>
#include <vector>

namespace streamtensor {
namespace dse {

/** Ask/tell black-box tuner over categorical integer parameters. */
class BlackboxTuner
{
  public:
    explicit BlackboxTuner(uint64_t seed = 0x5eed);

    /** Register a parameter with candidate values; returns its
     *  index. */
    int64_t addParam(std::string name, std::vector<int64_t> choices);

    int64_t numParams() const
    {
        return static_cast<int64_t>(params_.size());
    }

    /** Propose a configuration (one value per parameter). */
    std::vector<int64_t> ask();

    /** Report the score of a configuration; lower is better. */
    void tell(const std::vector<int64_t> &config, double score);

    /** Best configuration so far; fatal when none reported. */
    const std::vector<int64_t> &best() const;
    double bestScore() const;
    int64_t numTrials() const { return trials_; }

  private:
    struct Param
    {
        std::string name;
        std::vector<int64_t> choices;
    };

    uint64_t nextRandom();

    std::vector<Param> params_;
    std::vector<int64_t> best_;
    double best_score_ = 0.0;
    bool has_best_ = false;
    int64_t trials_ = 0;
    uint64_t state_;
};

} // namespace dse
} // namespace streamtensor

#endif // STREAMTENSOR_DSE_BLACKBOX_TUNER_H
