/**
 * @file
 * Kernel fusion space exploration — paper Algorithm 2 (§5.2.2).
 *
 * Kernels are fused greedily in topological order: each kernel
 * joins the nearest (most recently created) fusion group among its
 * predecessors, provided the group's accumulated converter memory
 * cost stays within C_max (the on-chip memory of one FPGA).
 * Mismatched producer/consumer itensor types price in the layout
 * converter from Algorithm 1; matching types stream for free.
 */

#ifndef STREAMTENSOR_DSE_FUSION_H
#define STREAMTENSOR_DSE_FUSION_H

#include <cstdint>
#include <vector>

#include "ir/itensor_type.h"

namespace streamtensor {
namespace dse {

/** A kernel graph annotated with boundary itensor types. */
class FusionGraph
{
  public:
    /** One streaming edge between kernels. */
    struct Edge
    {
        int64_t src;
        int64_t dst;
        ir::ITensorType producer_type;
        ir::ITensorType consumer_type;
    };

    /** Add a kernel node; returns its id. */
    int64_t addNode();

    /** Add an edge with the boundary types on both ends. */
    int64_t addEdge(int64_t src, int64_t dst,
                    ir::ITensorType producer_type,
                    ir::ITensorType consumer_type);

    int64_t numNodes() const { return num_nodes_; }
    int64_t numEdges() const
    {
        return static_cast<int64_t>(edges_.size());
    }
    const Edge &edge(int64_t i) const;
    const std::vector<Edge> &edges() const { return edges_; }

    /** Topological order of nodes; fatal on cycles. */
    std::vector<int64_t> topoOrder() const;

  private:
    int64_t num_nodes_ = 0;
    std::vector<Edge> edges_;
};

/** Output of Algorithm 2. */
struct FusionPlan
{
    /** F: members of each fused group. */
    std::vector<std::vector<int64_t>> groups;

    /** C: accumulated converter memory cost per group (bytes). */
    std::vector<int64_t> costs;

    /** M: group index of every node. */
    std::vector<int64_t> fusion_index;

    /** Total converter bytes across groups. */
    int64_t totalCost() const;

    /** True when nodes u and v landed in the same group. */
    bool sameGroup(int64_t u, int64_t v) const;

    /** Edges of @p g whose endpoints are in the same group (these
     *  become on-chip streams; the rest go through external
     *  memory). */
    std::vector<int64_t> internalEdges(const FusionGraph &g) const;
};

/**
 * Run Algorithm 2 with the fused-group memory budget @p c_max
 * (bytes). Always succeeds: a kernel that fits nowhere opens its
 * own group.
 */
FusionPlan exploreFusion(const FusionGraph &graph, int64_t c_max);

} // namespace dse
} // namespace streamtensor

#endif // STREAMTENSOR_DSE_FUSION_H
