/**
 * @file
 * Linalg tiling space exploration (paper §5.1): naive tiling with
 * a global default tile size, intensity-driven unrolling through a
 * max-heap over kernel latencies, heuristic loop permutation
 * (reduction loops outward), and vectorization-factor inference.
 */

#ifndef STREAMTENSOR_DSE_TILING_SPACE_H
#define STREAMTENSOR_DSE_TILING_SPACE_H

#include <cstdint>
#include <map>
#include <vector>

#include "linalg/graph.h"

namespace streamtensor {
namespace dse {

/** Chosen tiling configuration for one op. */
struct TileConfig
{
    /** Tile extent per loop (divides the loop extent). */
    std::vector<int64_t> tile_sizes;

    /** Loop order after permutation: position i runs original loop
     *  permutation[i]. */
    std::vector<int64_t> permutation;

    /** Parallel lanes inside the kernel (unroll factor). */
    int64_t unroll = 1;

    /** Stream/DMA vectorization lanes. */
    int64_t vector_lanes = 1;

    /** Inter-tile trip counts implied by tile_sizes. */
    std::vector<int64_t>
    interTileTrips(const linalg::OpInfo &op) const;
};

/** How the overall unroll budget is split across kernels. */
enum class UnrollStrategy
{
    /** Greedy doubling of the longest-latency kernel (paper §5.1's
     *  max-heap formulation). */
    Heap,

    /** Exact makespan-minimising allocation over power-of-two
     *  unroll levels, solved as an ILP (one-hot level selection,
     *  budget row, makespan variable). Falls back to Heap when the
     *  instance is too large for exact search. */
    Ilp,
};

/** Hyperparameters of the tiling space (tuned by the black-box
 *  optimizer with fusion feedback, paper §5.1). */
struct TilingOptions
{
    int64_t default_tile_size = 16;

    /** Total unroll budget across kernels; sized against the
     *  platform's DSP pool (U55C: 9024 DSPs). */
    int64_t overall_unroll_size = 8192;
    int64_t max_unroll_per_kernel = 2048;

    UnrollStrategy unroll_strategy = UnrollStrategy::Heap;

    /** Ilp strategy bails to Heap past this many one-hot binaries
     *  (branch-and-bound stays exact but worst-case exponential). */
    int64_t max_ilp_unroll_vars = 64;
};

/**
 * Estimated kernel latency in cycles under a config: iteration
 * points divided by unroll (II=1 pipelining assumed; the hls
 * module refines this later).
 */
double estimateLatency(const linalg::OpInfo &op,
                       const TileConfig &config);

/**
 * Explore the tiling space of every live op in @p g. Returns a map
 * from op id to its chosen configuration.
 */
std::map<int64_t, TileConfig>
exploreTiling(const linalg::Graph &g, const TilingOptions &options);

} // namespace dse
} // namespace streamtensor

#endif // STREAMTENSOR_DSE_TILING_SPACE_H
