/**
 * @file
 * Stream layout converter generation — paper Algorithm 1
 * (§5.2.1).
 *
 * Given mismatched producer/consumer itensor types over the same
 * data space, infer the minimal ping-pong buffer that converts the
 * stream layout on-the-fly, and the loop level (`beforeLoop`) at
 * which the buffer is inserted so that shared outer loops reuse it.
 *
 * Fidelity note (see DESIGN.md): we implement the semantics of the
 * paper's worked example (Fig. 5 -> 8x2 buffer) and prose: a data
 * dim is reducible iff element sizes agree, both maps bind it to
 * the same loop position with identical trip/step, and the shared
 * loops form an outer prefix of both loop nests.
 */

#ifndef STREAMTENSOR_DSE_CONVERTER_GEN_H
#define STREAMTENSOR_DSE_CONVERTER_GEN_H

#include <cstdint>
#include <vector>

#include "ir/itensor_type.h"
#include "ir/type.h"

namespace streamtensor {
namespace dse {

/** Result of Algorithm 1. */
struct ConverterSpec
{
    /** Ping-pong buffer shape over the data dims: reduced dims
     *  shrink to the element size, the rest keep full extent. */
    std::vector<int64_t> buffer_shape;

    /** Number of shared outer loops hoisted above the buffer. */
    int64_t before_loop = 0;

    /** How many times the buffer is reused (= product of shared
     *  outer loop trip counts). */
    int64_t reuse_factor = 1;

    /** Scalar element type of the buffer. */
    ir::DataType dtype = ir::DataType::F32;

    /** Physical storage in bytes, ping-pong included. */
    int64_t bufferBytes() const;

    /** The buffer as an on-chip memref type. */
    ir::MemRefType bufferType() const;
};

/**
 * Infer the converter between @p src (producer layout) and @p res
 * (consumer layout). Requires matching data spaces; throws
 * FatalError otherwise. When the types match exactly the returned
 * buffer is a single element slot (degenerate pass-through); the
 * caller should skip converter insertion in that case.
 */
ConverterSpec inferConverter(const ir::ITensorType &src,
                             const ir::ITensorType &res);

/** Convenience: converter buffer bytes, or 0 when types match. */
int64_t converterCostBytes(const ir::ITensorType &src,
                           const ir::ITensorType &res);

} // namespace dse
} // namespace streamtensor

#endif // STREAMTENSOR_DSE_CONVERTER_GEN_H
