#include "dse/tiling_space.h"

#include <algorithm>
#include <queue>

#include "support/error.h"
#include "support/math_util.h"

namespace streamtensor {
namespace dse {

std::vector<int64_t>
TileConfig::interTileTrips(const linalg::OpInfo &op) const
{
    ST_CHECK(tile_sizes.size() == op.loop_extents.size(),
             "tile config rank mismatch");
    std::vector<int64_t> trips;
    trips.reserve(tile_sizes.size());
    for (size_t i = 0; i < tile_sizes.size(); ++i)
        trips.push_back(op.loop_extents[i] / tile_sizes[i]);
    return trips;
}

double
estimateLatency(const linalg::OpInfo &op, const TileConfig &config)
{
    double points = static_cast<double>(op.numPoints());
    return points / static_cast<double>(config.unroll);
}

std::map<int64_t, TileConfig>
exploreTiling(const linalg::Graph &g, const TilingOptions &options)
{
    std::map<int64_t, TileConfig> configs;
    std::vector<int64_t> live = g.topoOrder();

    // --- Naive tiling: default_tile_size across all dims, snapped
    // to the largest divisor of each extent (paper §5.1).
    for (int64_t id : live) {
        const linalg::OpInfo &op = g.op(id);
        TileConfig cfg;
        for (int64_t extent : op.loop_extents) {
            cfg.tile_sizes.push_back(largestDivisorUpTo(
                extent, options.default_tile_size));
        }

        // --- Heuristic permutation: reduction loops outward,
        // parallel loops innermost (reduces pipeline II).
        for (size_t l = 0; l < op.iterators.size(); ++l)
            if (op.iterators[l] == linalg::IteratorKind::Reduction)
                cfg.permutation.push_back(static_cast<int64_t>(l));
        for (size_t l = 0; l < op.iterators.size(); ++l)
            if (op.iterators[l] == linalg::IteratorKind::Parallel)
                cfg.permutation.push_back(static_cast<int64_t>(l));

        configs[id] = std::move(cfg);
    }

    // --- Intensity-driven unrolling: repeatedly double the unroll
    // of the kernel with the longest latency until the overall
    // unroll budget is spent (max-heap, paper §5.1).
    struct HeapEntry
    {
        double latency;
        int64_t id;
        bool operator<(const HeapEntry &o) const
        {
            return latency < o.latency;
        }
    };
    std::priority_queue<HeapEntry> heap;
    int64_t budget = options.overall_unroll_size;
    int64_t spent = 0;
    for (int64_t id : live) {
        spent += 1; // every kernel starts at unroll 1.
        heap.push({estimateLatency(g.op(id), configs[id]), id});
    }
    while (!heap.empty() && spent < budget) {
        HeapEntry top = heap.top();
        heap.pop();
        TileConfig &cfg = configs[top.id];
        const linalg::OpInfo &op = g.op(top.id);
        // Unroll may span several tiles in flight (multi-tile
        // systolic parallelism) but never exceeds the op's total
        // iteration points.
        int64_t next = cfg.unroll * 2;
        if (next > options.max_unroll_per_kernel ||
            next > op.numPoints()) {
            continue; // saturated; drop from the heap.
        }
        if (spent - cfg.unroll + next > budget)
            continue;
        spent += next - cfg.unroll;
        cfg.unroll = next;
        heap.push({estimateLatency(op, cfg), top.id});
    }

    // --- Vectorization inference: stream lanes follow the unroll
    // factor, capped by the token size (the output tile: product
    // of parallel-loop tile extents) so a token always carries
    // whole lanes.
    for (int64_t id : live) {
        TileConfig &cfg = configs[id];
        const linalg::OpInfo &op = g.op(id);
        int64_t token_elems = 1;
        for (size_t l = 0; l < op.iterators.size(); ++l)
            if (op.iterators[l] == linalg::IteratorKind::Parallel)
                token_elems *= cfg.tile_sizes[l];
        int64_t lanes = std::min<int64_t>(cfg.unroll, token_elems);
        lanes = largestDivisorUpTo(token_elems, lanes);
        cfg.vector_lanes = std::max<int64_t>(lanes, 1);
    }
    return configs;
}

} // namespace dse
} // namespace streamtensor
