#include "dse/tiling_space.h"

#include <algorithm>
#include <queue>

#include "solver/ilp.h"
#include "support/error.h"
#include "support/math_util.h"

namespace streamtensor {
namespace dse {

namespace {

/** Greedy doubling allocation (paper §5.1's max-heap). */
void
allocateUnrollHeap(const linalg::Graph &g,
                   const std::vector<int64_t> &live,
                   std::map<int64_t, TileConfig> &configs,
                   const TilingOptions &options)
{
    struct HeapEntry
    {
        double latency;
        int64_t id;
        bool operator<(const HeapEntry &o) const
        {
            return latency < o.latency;
        }
    };
    std::priority_queue<HeapEntry> heap;
    int64_t budget = options.overall_unroll_size;
    int64_t spent = 0;
    for (int64_t id : live) {
        spent += 1; // every kernel starts at unroll 1.
        heap.push({estimateLatency(g.op(id), configs[id]), id});
    }
    while (!heap.empty() && spent < budget) {
        HeapEntry top = heap.top();
        heap.pop();
        TileConfig &cfg = configs[top.id];
        const linalg::OpInfo &op = g.op(top.id);
        // Unroll may span several tiles in flight (multi-tile
        // systolic parallelism) but never exceeds the op's total
        // iteration points.
        int64_t next = cfg.unroll * 2;
        if (next > options.max_unroll_per_kernel ||
            next > op.numPoints()) {
            continue; // saturated; drop from the heap.
        }
        if (spent - cfg.unroll + next > budget)
            continue;
        spent += next - cfg.unroll;
        cfg.unroll = next;
        heap.push({estimateLatency(op, cfg), top.id});
    }
}

/**
 * Exact allocation over power-of-two levels: binaries x[i][l]
 * one-hot select kernel i's unroll level, a budget row caps the
 * total, and a continuous makespan variable z dominates every
 * kernel's latency. Minimising z makes branch-and-bound close the
 * gap the greedy doubling can leave on skewed latency mixes.
 * Returns false (leaving @p configs untouched) when the instance
 * exceeds the options' binary-variable cap or the solve fails.
 */
bool
allocateUnrollIlp(const linalg::Graph &g,
                  const std::vector<int64_t> &live,
                  std::map<int64_t, TileConfig> &configs,
                  const TilingOptions &options)
{
    struct KernelLevels
    {
        int64_t id;
        std::vector<int64_t> unrolls;
        std::vector<double> latencies;
    };
    std::vector<KernelLevels> kernels;
    int64_t num_binaries = 0;
    double max_latency = 1.0;
    for (int64_t id : live) {
        const linalg::OpInfo &op = g.op(id);
        KernelLevels k;
        k.id = id;
        for (int64_t u = 1; u <= options.max_unroll_per_kernel &&
                            u <= op.numPoints() &&
                            u <= options.overall_unroll_size;
             u *= 2) {
            k.unrolls.push_back(u);
            double lat = estimateLatency(op, {{}, {}, u, 1});
            k.latencies.push_back(lat);
            max_latency = std::max(max_latency, lat);
        }
        num_binaries += static_cast<int64_t>(k.unrolls.size());
        kernels.push_back(std::move(k));
    }
    if (kernels.empty() ||
        num_binaries > options.max_ilp_unroll_vars)
        return false;

    // Variables: the one-hot binaries first, then makespan z.
    int64_t zvar = num_binaries;
    solver::IlpProblem ilp(num_binaries + 1);
    ilp.lp().setObjective(zvar, 1.0);

    int64_t base = 0;
    std::vector<int64_t> bases;
    for (const KernelLevels &k : kernels) {
        bases.push_back(base);
        int64_t levels = static_cast<int64_t>(k.unrolls.size());
        std::vector<int64_t> vars;
        std::vector<double> ones(levels, 1.0);
        for (int64_t l = 0; l < levels; ++l) {
            ilp.setBinary(base + l);
            vars.push_back(base + l);
        }
        ilp.lp().addSparseConstraint(vars, ones,
                                     solver::Relation::EQ, 1.0);
        // z - sum_l (lat[l]/max_latency) x[l] >= 0.
        std::vector<int64_t> zvars{zvar};
        std::vector<double> zcoeffs{1.0};
        for (int64_t l = 0; l < levels; ++l) {
            zvars.push_back(base + l);
            zcoeffs.push_back(-k.latencies[l] / max_latency);
        }
        ilp.lp().addSparseConstraint(zvars, zcoeffs,
                                     solver::Relation::GE, 0.0);
        base += levels;
    }
    // Budget row: sum of selected unrolls.
    {
        std::vector<int64_t> vars;
        std::vector<double> coeffs;
        for (size_t i = 0; i < kernels.size(); ++i) {
            for (size_t l = 0; l < kernels[i].unrolls.size(); ++l) {
                vars.push_back(bases[i] + static_cast<int64_t>(l));
                coeffs.push_back(
                    static_cast<double>(kernels[i].unrolls[l]));
            }
        }
        ilp.lp().addSparseConstraint(
            vars, coeffs, solver::Relation::LE,
            static_cast<double>(options.overall_unroll_size));
    }

    solver::IlpOptions ilp_options;
    ilp_options.max_nodes = 20000;
    solver::IlpSolution sol = solveIlp(ilp, ilp_options);
    if (!sol.optimal())
        return false;
    for (size_t i = 0; i < kernels.size(); ++i) {
        for (size_t l = 0; l < kernels[i].unrolls.size(); ++l) {
            if (sol.values[bases[i] + static_cast<int64_t>(l)] >
                0.5) {
                configs[kernels[i].id].unroll =
                    kernels[i].unrolls[l];
                break;
            }
        }
    }
    return true;
}

} // namespace

std::vector<int64_t>
TileConfig::interTileTrips(const linalg::OpInfo &op) const
{
    ST_CHECK(tile_sizes.size() == op.loop_extents.size(),
             "tile config rank mismatch");
    std::vector<int64_t> trips;
    trips.reserve(tile_sizes.size());
    for (size_t i = 0; i < tile_sizes.size(); ++i)
        trips.push_back(op.loop_extents[i] / tile_sizes[i]);
    return trips;
}

double
estimateLatency(const linalg::OpInfo &op, const TileConfig &config)
{
    double points = static_cast<double>(op.numPoints());
    return points / static_cast<double>(config.unroll);
}

std::map<int64_t, TileConfig>
exploreTiling(const linalg::Graph &g, const TilingOptions &options)
{
    std::map<int64_t, TileConfig> configs;
    std::vector<int64_t> live = g.topoOrder();

    // --- Naive tiling: default_tile_size across all dims, snapped
    // to the largest divisor of each extent (paper §5.1).
    for (int64_t id : live) {
        const linalg::OpInfo &op = g.op(id);
        TileConfig cfg;
        for (int64_t extent : op.loop_extents) {
            cfg.tile_sizes.push_back(largestDivisorUpTo(
                extent, options.default_tile_size));
        }

        // --- Heuristic permutation: reduction loops outward,
        // parallel loops innermost (reduces pipeline II).
        for (size_t l = 0; l < op.iterators.size(); ++l)
            if (op.iterators[l] == linalg::IteratorKind::Reduction)
                cfg.permutation.push_back(static_cast<int64_t>(l));
        for (size_t l = 0; l < op.iterators.size(); ++l)
            if (op.iterators[l] == linalg::IteratorKind::Parallel)
                cfg.permutation.push_back(static_cast<int64_t>(l));

        configs[id] = std::move(cfg);
    }

    // --- Intensity-driven unrolling: split the overall unroll
    // budget across kernels, either greedily (max-heap doubling,
    // paper §5.1) or via the makespan ILP. The ILP answer is only
    // kept when it beats the heap's: branch-and-bound may return a
    // node-capped incumbent that is merely feasible.
    if (options.unroll_strategy == UnrollStrategy::Ilp) {
        auto makespan = [&](const std::map<int64_t, TileConfig> &c) {
            double worst = 0.0;
            for (const auto &[id, cfg] : c)
                worst = std::max(worst,
                                 estimateLatency(g.op(id), cfg));
            return worst;
        };
        auto heap_configs = configs;
        allocateUnrollHeap(g, live, heap_configs, options);
        if (!allocateUnrollIlp(g, live, configs, options) ||
            makespan(configs) > makespan(heap_configs))
            configs = std::move(heap_configs);
    } else {
        allocateUnrollHeap(g, live, configs, options);
    }

    // --- Vectorization inference: stream lanes follow the unroll
    // factor, capped by the token size (the output tile: product
    // of parallel-loop tile extents) so a token always carries
    // whole lanes.
    for (int64_t id : live) {
        TileConfig &cfg = configs[id];
        const linalg::OpInfo &op = g.op(id);
        int64_t token_elems = 1;
        for (size_t l = 0; l < op.iterators.size(); ++l)
            if (op.iterators[l] == linalg::IteratorKind::Parallel)
                token_elems *= cfg.tile_sizes[l];
        int64_t lanes = std::min<int64_t>(cfg.unroll, token_elems);
        lanes = largestDivisorUpTo(token_elems, lanes);
        cfg.vector_lanes = std::max<int64_t>(lanes, 1);
    }
    return configs;
}

} // namespace dse
} // namespace streamtensor
