#include "dse/blackbox_tuner.h"

#include "support/error.h"

namespace streamtensor {
namespace dse {

BlackboxTuner::BlackboxTuner(uint64_t seed)
    : state_(seed ? seed : 0x9e3779b97f4a7c15ull)
{}

int64_t
BlackboxTuner::addParam(std::string name,
                        std::vector<int64_t> choices)
{
    ST_CHECK(!choices.empty(), "parameter needs >= 1 choices");
    params_.push_back({std::move(name), std::move(choices)});
    return numParams() - 1;
}

uint64_t
BlackboxTuner::nextRandom()
{
    // xorshift64*.
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dull;
}

std::vector<int64_t>
BlackboxTuner::ask()
{
    ST_CHECK(numParams() > 0, "tuner has no parameters");
    std::vector<int64_t> config(numParams());
    bool mutate = has_best_ && (nextRandom() & 1);
    for (int64_t p = 0; p < numParams(); ++p) {
        const auto &choices = params_[p].choices;
        if (mutate) {
            config[p] = best_[p];
        } else {
            config[p] = choices[nextRandom() % choices.size()];
        }
    }
    if (mutate) {
        int64_t p = nextRandom() % numParams();
        const auto &choices = params_[p].choices;
        config[p] = choices[nextRandom() % choices.size()];
    }
    return config;
}

void
BlackboxTuner::tell(const std::vector<int64_t> &config, double score)
{
    ST_CHECK(static_cast<int64_t>(config.size()) == numParams(),
             "config arity mismatch");
    ++trials_;
    if (!has_best_ || score < best_score_) {
        best_ = config;
        best_score_ = score;
        has_best_ = true;
    }
}

const std::vector<int64_t> &
BlackboxTuner::best() const
{
    ST_CHECK(has_best_, "no trials reported yet");
    return best_;
}

double
BlackboxTuner::bestScore() const
{
    ST_CHECK(has_best_, "no trials reported yet");
    return best_score_;
}

} // namespace dse
} // namespace streamtensor
