#include "dse/converter_gen.h"

#include <algorithm>
#include <set>

#include "support/error.h"
#include "support/math_util.h"

namespace streamtensor {
namespace dse {

int64_t
ConverterSpec::bufferBytes() const
{
    int64_t elems = product(buffer_shape);
    return 2 * ceilDiv(elems * ir::bitWidth(dtype), 8);
}

ir::MemRefType
ConverterSpec::bufferType() const
{
    return ir::MemRefType(dtype, buffer_shape, /*ping_pong=*/true);
}

ConverterSpec
inferConverter(const ir::ITensorType &src, const ir::ITensorType &res)
{
    ST_CHECK(src.sameDataSpace(res),
             "converter requires identical data spaces");

    ConverterSpec spec;
    spec.dtype = src.dtype();
    std::vector<int64_t> data_shape = src.dataShape();
    int64_t rank = src.dataRank();

    // Step 1 (Algorithm 1 lines 3-11): find reducible data dims.
    // A dim is reducible when source and result stream it with the
    // same element extent from the same loop position with equal
    // trip/step, so iterating that loop produces the same slice
    // sequence on both sides.
    std::vector<int64_t> shared_loop(rank, -1);
    for (int64_t dim = 0; dim < rank; ++dim) {
        if (src.elementSize(dim) != res.elementSize(dim))
            continue;
        const ir::AffineExpr &se = src.iterMap().result(dim);
        const ir::AffineExpr &re = res.iterMap().result(dim);
        if (!se.isDim() || !re.isDim())
            continue;
        int64_t p = se.dimPos();
        if (re.dimPos() != p)
            continue;
        if (p >= src.iterRank() || p >= res.iterRank())
            continue;
        if (src.tripCounts()[p] != res.tripCounts()[p] ||
            src.steps()[p] != res.steps()[p]) {
            continue;
        }
        shared_loop[dim] = p;
    }

    // Step 2 (lines 12-14): shared loops must form an outer prefix
    // of the loop nests — a shared loop with an unshared parent
    // cannot be hoisted above the buffer.
    std::set<int64_t> shared;
    for (int64_t dim = 0; dim < rank; ++dim)
        if (shared_loop[dim] >= 0)
            shared.insert(shared_loop[dim]);
    int64_t prefix = 0;
    while (shared.count(prefix))
        ++prefix;
    for (int64_t dim = 0; dim < rank; ++dim)
        if (shared_loop[dim] >= prefix)
            shared_loop[dim] = -1;

    // Step 3 (line 15): reduced dims buffer one element extent;
    // all other dims buffer the full data extent.
    spec.buffer_shape.resize(rank);
    for (int64_t dim = 0; dim < rank; ++dim) {
        spec.buffer_shape[dim] = shared_loop[dim] >= 0
                                     ? src.elementSize(dim)
                                     : data_shape[dim];
    }
    spec.before_loop = prefix;
    spec.reuse_factor = 1;
    for (int64_t p = 0; p < prefix; ++p)
        spec.reuse_factor *= src.tripCounts()[p];
    return spec;
}

int64_t
converterCostBytes(const ir::ITensorType &src,
                   const ir::ITensorType &res)
{
    if (src == res)
        return 0;
    return inferConverter(src, res).bufferBytes();
}

} // namespace dse
} // namespace streamtensor
