/**
 * @file
 * Minimal leveled logging for StreamTensor.
 *
 * Status messages never stop the flow (gem5 inform()/warn()
 * semantics). The global level defaults to Warn so that library
 * consumers are quiet by default; benches raise it to Info.
 */

#ifndef STREAMTENSOR_SUPPORT_LOGGING_H
#define STREAMTENSOR_SUPPORT_LOGGING_H

#include <string>

namespace streamtensor {

/** Severity of a log message. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Silent = 3 };

/** Set the global log level. Messages below it are dropped. */
void setLogLevel(LogLevel level);

/** Current global log level. */
LogLevel logLevel();

/** Informative message the user should know but not worry about. */
void inform(const std::string &msg);

/** Functionality may be degraded; a good place to look after odd
 *  behaviour. */
void warn(const std::string &msg);

/** Verbose diagnostic output. */
void debug(const std::string &msg);

/** Fixed-point decimal rendering for log interpolation:
 *  formatFixed(0.41724, 2) == "0.42". std::to_string(double)
 *  always prints six decimals; status messages want a stable,
 *  short form. */
std::string formatFixed(double value, int decimals = 2);

} // namespace streamtensor

#endif // STREAMTENSOR_SUPPORT_LOGGING_H
