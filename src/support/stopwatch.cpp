#include "support/stopwatch.h"

namespace streamtensor {

void
Stopwatch::restart()
{
    start_ = std::chrono::steady_clock::now();
}

double
Stopwatch::elapsedSeconds() const
{
    auto now = std::chrono::steady_clock::now();
    std::chrono::duration<double> d = now - start_;
    return d.count();
}

} // namespace streamtensor
