/**
 * @file
 * Small integer-math helpers used across StreamTensor.
 */

#ifndef STREAMTENSOR_SUPPORT_MATH_UTIL_H
#define STREAMTENSOR_SUPPORT_MATH_UTIL_H

#include <cstdint>
#include <numeric>
#include <vector>

#include "support/error.h"

namespace streamtensor {

/** Ceiling division for non-negative integers. */
constexpr int64_t
ceilDiv(int64_t a, int64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p a up to the nearest multiple of @p align. */
constexpr int64_t
alignTo(int64_t a, int64_t align)
{
    return ceilDiv(a, align) * align;
}

/** True if @p a is a power of two (0 is not). */
constexpr bool
isPowerOf2(int64_t a)
{
    return a > 0 && (a & (a - 1)) == 0;
}

/** Product of all elements; 1 for an empty range. */
inline int64_t
product(const std::vector<int64_t> &v)
{
    int64_t p = 1;
    for (int64_t x : v)
        p *= x;
    return p;
}

/** Largest divisor of @p n that is <= @p bound (bound >= 1). */
inline int64_t
largestDivisorUpTo(int64_t n, int64_t bound)
{
    ST_ASSERT(n >= 1 && bound >= 1, "domain");
    for (int64_t d = std::min(n, bound); d >= 1; --d)
        if (n % d == 0)
            return d;
    return 1;
}

} // namespace streamtensor

#endif // STREAMTENSOR_SUPPORT_MATH_UTIL_H
