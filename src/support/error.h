/**
 * @file
 * Error-handling primitives for StreamTensor.
 *
 * Follows the gem5 fatal()/panic() distinction, adapted to a library
 * setting: instead of terminating the process, both raise typed
 * exceptions so that embedders (and tests) can observe failures.
 *
 *  - fatal / FatalError: the *user* did something unsupported (bad
 *    model configuration, infeasible constraint, invalid type).
 *  - panic / PanicError: an internal invariant was violated, i.e. a
 *    StreamTensor bug.
 */

#ifndef STREAMTENSOR_SUPPORT_ERROR_H
#define STREAMTENSOR_SUPPORT_ERROR_H

#include <stdexcept>
#include <string>

namespace streamtensor {

/** Raised on unrecoverable user errors (bad input or configuration). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Raised on internal invariant violations (StreamTensor bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

namespace detail {

/** Format "<file>:<line>: <msg>" and throw E. */
[[noreturn]] void throwFatal(const char *file, int line,
                             const std::string &msg);
[[noreturn]] void throwPanic(const char *file, int line,
                             const std::string &msg);

} // namespace detail

} // namespace streamtensor

/** Abort the current operation due to a user-caused error. */
#define ST_FATAL(msg)                                                  \
    ::streamtensor::detail::throwFatal(__FILE__, __LINE__, (msg))

/** Abort the current operation due to an internal bug. */
#define ST_PANIC(msg)                                                  \
    ::streamtensor::detail::throwPanic(__FILE__, __LINE__, (msg))

/** Check an internal invariant; panics with the condition text. */
#define ST_ASSERT(cond, msg)                                           \
    do {                                                               \
        if (!(cond)) {                                                 \
            ::streamtensor::detail::throwPanic(                        \
                __FILE__, __LINE__,                                    \
                std::string("assertion `" #cond "` failed: ") + (msg));\
        }                                                              \
    } while (false)

/** Check a user-facing precondition; throws FatalError when false. */
#define ST_CHECK(cond, msg)                                            \
    do {                                                               \
        if (!(cond)) {                                                 \
            ::streamtensor::detail::throwFatal(                        \
                __FILE__, __LINE__, (msg));                            \
        }                                                              \
    } while (false)

#endif // STREAMTENSOR_SUPPORT_ERROR_H
