/**
 * @file
 * A sorted-vector flat map from sparse int64 ids to dense indices.
 * Replaces node-per-entry tree maps on lookup-heavy paths (the
 * simulator resolves every channel endpoint through one; die
 * partitioning indexes group members).
 */

#ifndef STREAMTENSOR_SUPPORT_FLAT_INDEX_H
#define STREAMTENSOR_SUPPORT_FLAT_INDEX_H

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "support/error.h"

namespace streamtensor {
namespace support {

/** Build-then-query flat map: add() all pairs, seal() once, at(). */
class FlatIndex
{
  public:
    /** The common sparse-id -> dense-position remap: key @p ids[i]
     *  maps to i, sealed and ready to query. One shared helper for
     *  the build/seal dance the FIFO-sizing LP, die partitioning,
     *  and the simulators all perform on group member lists. */
    static FlatIndex
    positionsOf(const std::vector<int64_t> &ids)
    {
        FlatIndex idx;
        idx.reserve(ids.size());
        for (size_t i = 0; i < ids.size(); ++i)
            idx.add(ids[i], static_cast<int64_t>(i));
        idx.seal();
        return idx;
    }

    void reserve(size_t n) { entries_.reserve(n); }

    void
    add(int64_t key, int64_t value)
    {
        entries_.emplace_back(key, value);
    }

    void seal() { std::sort(entries_.begin(), entries_.end()); }

    /** Dense index of @p key; fatal when absent (callers only look
     *  up ids they indexed). */
    int64_t
    at(int64_t key) const
    {
        auto it = std::lower_bound(
            entries_.begin(), entries_.end(),
            std::make_pair(key,
                           std::numeric_limits<int64_t>::min()));
        ST_ASSERT(it != entries_.end() && it->first == key,
                  "FlatIndex: unknown key");
        return it->second;
    }

  private:
    std::vector<std::pair<int64_t, int64_t>> entries_;
};

} // namespace support
} // namespace streamtensor

#endif // STREAMTENSOR_SUPPORT_FLAT_INDEX_H
