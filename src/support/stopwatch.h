/**
 * @file
 * Wall-clock stopwatch used for compile-time breakdowns (Fig. 10c).
 */

#ifndef STREAMTENSOR_SUPPORT_STOPWATCH_H
#define STREAMTENSOR_SUPPORT_STOPWATCH_H

#include <chrono>

namespace streamtensor {

/** A restartable wall-clock stopwatch with second resolution. */
class Stopwatch
{
  public:
    Stopwatch() { restart(); }

    /** Reset the start point to now. */
    void restart();

    /** Seconds elapsed since construction or the last restart(). */
    double elapsedSeconds() const;

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace streamtensor

#endif // STREAMTENSOR_SUPPORT_STOPWATCH_H
