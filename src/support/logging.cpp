#include "support/logging.h"

#include <cstdio>

namespace streamtensor {

namespace {

LogLevel global_level = LogLevel::Warn;

void
emit(LogLevel level, const char *tag, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(global_level))
        return;
    std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

} // namespace

void
setLogLevel(LogLevel level)
{
    global_level = level;
}

LogLevel
logLevel()
{
    return global_level;
}

void
inform(const std::string &msg)
{
    emit(LogLevel::Info, "info", msg);
}

void
warn(const std::string &msg)
{
    emit(LogLevel::Warn, "warn", msg);
}

void
debug(const std::string &msg)
{
    emit(LogLevel::Debug, "debug", msg);
}

std::string
formatFixed(double value, int decimals)
{
    if (decimals < 0)
        decimals = 0;
    char buf[64];
    int n = std::snprintf(buf, sizeof(buf), "%.*f", decimals,
                          value);
    if (n < 0)
        return "";
    if (n < static_cast<int>(sizeof(buf)))
        return std::string(buf, n);
    // Rare wide values (huge magnitudes or decimals counts):
    // re-render into an exactly-sized string instead of
    // truncating digits.
    std::string s(static_cast<size_t>(n) + 1, '\0');
    std::snprintf(s.data(), s.size(), "%.*f", decimals, value);
    s.resize(static_cast<size_t>(n));
    return s;
}

} // namespace streamtensor
