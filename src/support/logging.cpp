#include "support/logging.h"

#include <cstdio>

namespace streamtensor {

namespace {

LogLevel global_level = LogLevel::Warn;

void
emit(LogLevel level, const char *tag, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(global_level))
        return;
    std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

} // namespace

void
setLogLevel(LogLevel level)
{
    global_level = level;
}

LogLevel
logLevel()
{
    return global_level;
}

void
inform(const std::string &msg)
{
    emit(LogLevel::Info, "info", msg);
}

void
warn(const std::string &msg)
{
    emit(LogLevel::Warn, "warn", msg);
}

void
debug(const std::string &msg)
{
    emit(LogLevel::Debug, "debug", msg);
}

} // namespace streamtensor
