/**
 * @file
 * A small process-wide thread pool for coarse, independent tasks:
 * the simulator fans fused groups across it (sim::simulateAll) and
 * the runtime executor reuses the same pool to compile + simulate
 * the prefill and decode block shapes concurrently.
 *
 * Deliberately minimal: one parallel-for style job at a time
 * (concurrent top-level submitters serialize), the caller
 * participates in the job, and a nested run() issued from inside a
 * worker executes inline — so pool users can freely call other pool
 * users without deadlock.
 */

#ifndef STREAMTENSOR_SUPPORT_THREAD_POOL_H
#define STREAMTENSOR_SUPPORT_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace streamtensor {
namespace support {

class ThreadPool
{
  public:
    /** @p threads is the total parallelism including the calling
     *  thread; 0 picks the hardware concurrency clamped to [1, 8]
     *  (a *small* pool: tasks here are coarse). */
    explicit ThreadPool(int64_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallelism (workers plus the calling thread). */
    int64_t
    parallelism() const
    {
        return static_cast<int64_t>(workers_.size()) + 1;
    }

    /** Run fn(0) .. fn(n-1) across the pool and block until all
     *  completed. The first exception thrown by any item is
     *  rethrown here (remaining items may be skipped). */
    void run(int64_t n, const std::function<void(int64_t)> &fn);

    /** The process-wide pool shared by the simulator and the
     *  runtime executor. */
    static ThreadPool &shared();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::mutex mutex_;              ///< guards job fields
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    std::mutex submit_mutex_;       ///< serializes top-level jobs
    const std::function<void(int64_t)> *job_fn_ = nullptr;
    int64_t job_n_ = 0;
    std::atomic<int64_t> job_next_{0};
    int64_t job_running_ = 0;
    std::exception_ptr job_error_;
    uint64_t job_generation_ = 0;
    bool stop_ = false;
};

} // namespace support
} // namespace streamtensor

#endif // STREAMTENSOR_SUPPORT_THREAD_POOL_H
