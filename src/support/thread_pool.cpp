#include "support/thread_pool.h"

#include <algorithm>

namespace streamtensor {
namespace support {

namespace {

/** Set while a thread runs job items — pool workers permanently,
 *  the submitting caller while it participates in its own job.
 *  Nested run() calls from either execute inline instead of
 *  re-entering the pool (the single-job design would self-lock
 *  submit_mutex_ otherwise). */
thread_local bool t_in_worker = false;

/** Scope guard: marks the calling thread as in-job. */
struct InWorkerScope
{
    bool prev;
    InWorkerScope() : prev(t_in_worker) { t_in_worker = true; }
    ~InWorkerScope() { t_in_worker = prev; }
};

} // namespace

ThreadPool::ThreadPool(int64_t threads)
{
    if (threads <= 0) {
        int64_t hw = static_cast<int64_t>(
            std::thread::hardware_concurrency());
        threads = std::min<int64_t>(std::max<int64_t>(hw, 1), 8);
    }
    for (int64_t i = 0; i + 1 < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    t_in_worker = true;
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_cv_.wait(lock, [&] {
            return stop_ || job_generation_ != seen;
        });
        if (stop_)
            return;
        seen = job_generation_;
        const std::function<void(int64_t)> *fn = job_fn_;
        if (!fn)
            continue; // job already fully claimed and retired
        int64_t n = job_n_;
        ++job_running_;
        lock.unlock();
        for (;;) {
            int64_t idx = job_next_.fetch_add(1);
            if (idx >= n)
                break;
            try {
                (*fn)(idx);
            } catch (...) {
                std::lock_guard<std::mutex> elock(mutex_);
                if (!job_error_)
                    job_error_ = std::current_exception();
                job_next_.store(n); // skip remaining items
            }
        }
        lock.lock();
        if (--job_running_ == 0)
            done_cv_.notify_all();
    }
}

void
ThreadPool::run(int64_t n, const std::function<void(int64_t)> &fn)
{
    if (n <= 0)
        return;
    if (n == 1 || workers_.empty() || t_in_worker) {
        for (int64_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::lock_guard<std::mutex> submit(submit_mutex_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_fn_ = &fn;
        job_n_ = n;
        job_next_.store(0);
        job_error_ = nullptr;
        ++job_generation_;
    }
    work_cv_.notify_all();
    // The caller participates in its own job; items it claims may
    // themselves call run(), which must execute inline (see
    // InWorkerScope).
    {
        InWorkerScope in_job;
        for (;;) {
            int64_t idx = job_next_.fetch_add(1);
            if (idx >= n)
                break;
            try {
                fn(idx);
            } catch (...) {
                std::lock_guard<std::mutex> elock(mutex_);
                if (!job_error_)
                    job_error_ = std::current_exception();
                job_next_.store(n);
            }
        }
    }
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return job_running_ == 0; });
    job_fn_ = nullptr;
    if (job_error_) {
        std::exception_ptr err = job_error_;
        job_error_ = nullptr;
        std::rethrow_exception(err);
    }
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool(0);
    return pool;
}

} // namespace support
} // namespace streamtensor
