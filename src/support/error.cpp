#include "support/error.h"

#include <sstream>

namespace streamtensor {
namespace detail {

namespace {

std::string
decorate(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << file << ":" << line << ": " << msg;
    return os.str();
}

} // namespace

void
throwFatal(const char *file, int line, const std::string &msg)
{
    throw FatalError(decorate(file, line, msg));
}

void
throwPanic(const char *file, int line, const std::string &msg)
{
    throw PanicError(decorate(file, line, msg));
}

} // namespace detail
} // namespace streamtensor
