#include "partition/die_partition.h"

#include <algorithm>

#include "hls/resource.h"
#include "support/flat_index.h"
#include "solver/ilp.h"
#include "support/error.h"

namespace streamtensor {
namespace partition {

namespace {

/** Greedy fallback: walk the topological order, filling die 0,
 *  then die 1, ... whenever the running resource share exceeds an
 *  even split. Keeps chains contiguous, which minimises crossings
 *  for pipeline-shaped graphs. */
PartitionResult
greedyPartition(dataflow::ComponentGraph &g, int64_t group,
                const hls::FpgaPlatform &platform)
{
    PartitionResult result;
    result.used_ilp = false;
    result.die_of.assign(g.numComponents(), 0);

    auto order = g.groupTopoOrder(group);
    double total_luts = 0.0;
    for (int64_t id : order)
        total_luts += hls::estimateComponent(g.component(id)).luts;
    double per_die = total_luts /
                     static_cast<double>(platform.num_dies);

    double acc = 0.0;
    int64_t die = 0;
    for (int64_t id : order) {
        acc += hls::estimateComponent(g.component(id)).luts;
        g.component(id).die = die;
        result.die_of[id] = die;
        if (acc > per_die * (die + 1) &&
            die + 1 < platform.num_dies) {
            ++die;
        }
    }
    for (int64_t ch : g.groupChannels(group)) {
        const auto &c = g.channel(ch);
        if (g.component(c.src).die != g.component(c.dst).die)
            ++result.crossings;
    }
    return result;
}

} // namespace

PartitionResult
partitionGroup(dataflow::ComponentGraph &g, int64_t group,
               const hls::FpgaPlatform &platform,
               const PartitionOptions &options)
{
    auto members = g.groupComponents(group);
    int64_t n = static_cast<int64_t>(members.size());
    int64_t dies = platform.num_dies;
    if (n == 0) {
        return PartitionResult{{}, 0, false};
    }
    if (dies <= 1 || n > options.max_ilp_components)
        return greedyPartition(g, group, platform);

    // Dense index of members (sorted-vector lookup) and the
    // group's internal channels.
    support::FlatIndex idx;
    idx.reserve(members.size());
    for (int64_t i = 0; i < n; ++i)
        idx.add(members[i], i);
    idx.seal();
    auto channels = g.groupChannels(group);
    int64_t m = static_cast<int64_t>(channels.size());

    // Variables: x[i][d] (n*dies binaries, task i on die d), then
    // y[e][d] (m*dies crossing indicators), then one imbalance
    // variable z.
    auto xvar = [&](int64_t i, int64_t d) { return i * dies + d; };
    auto yvar = [&](int64_t e, int64_t d) {
        return n * dies + e * dies + d;
    };
    int64_t zvar = n * dies + m * dies;
    solver::IlpProblem ilp(zvar + 1);

    for (int64_t i = 0; i < n; ++i)
        for (int64_t d = 0; d < dies; ++d)
            ilp.setBinary(xvar(i, d));

    // Exactly one die per task.
    for (int64_t i = 0; i < n; ++i) {
        std::vector<int64_t> vars;
        std::vector<double> ones(dies, 1.0);
        for (int64_t d = 0; d < dies; ++d)
            vars.push_back(xvar(i, d));
        ilp.lp().addSparseConstraint(vars, ones,
                                     solver::Relation::EQ, 1.0);
    }

    // Crossing linearisation: y[e][d] >= x[src][d] - x[dst][d]
    // and y[e][d] >= x[dst][d] - x[src][d]. The sum over d of
    // y[e][d] is 0 when co-located and 2 when split.
    for (int64_t e = 0; e < m; ++e) {
        const auto &ch = g.channel(channels[e]);
        int64_t si = idx.at(ch.src), di = idx.at(ch.dst);
        for (int64_t d = 0; d < dies; ++d) {
            ilp.lp().addSparseConstraint(
                {yvar(e, d), xvar(si, d), xvar(di, d)},
                {1.0, -1.0, 1.0}, solver::Relation::GE, 0.0);
            ilp.lp().addSparseConstraint(
                {yvar(e, d), xvar(di, d), xvar(si, d)},
                {1.0, -1.0, 1.0}, solver::Relation::GE, 0.0);
        }
    }

    // Imbalance: z >= luts(die d) - total/dies for every die.
    std::vector<double> luts(n, 0.0);
    double total_luts = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        luts[i] = hls::estimateComponent(
                      g.component(members[i]))
                      .luts;
        total_luts += luts[i];
    }
    for (int64_t d = 0; d < dies; ++d) {
        std::vector<int64_t> vars{zvar};
        std::vector<double> coeffs{1.0};
        for (int64_t i = 0; i < n; ++i) {
            vars.push_back(xvar(i, d));
            coeffs.push_back(-luts[i]);
        }
        ilp.lp().addSparseConstraint(vars, coeffs,
                                     solver::Relation::GE,
                                     -total_luts / dies);
    }

    // Objective: crossings + weighted imbalance (normalised).
    for (int64_t e = 0; e < m; ++e)
        for (int64_t d = 0; d < dies; ++d)
            ilp.lp().setObjective(yvar(e, d), 0.5);
    double z_scale = options.imbalance_weight /
                     std::max(total_luts / dies, 1.0);
    ilp.lp().setObjective(zvar, z_scale);

    solver::IlpSolution sol = solveIlp(ilp, options.max_ilp_nodes);
    if (!sol.optimal())
        return greedyPartition(g, group, platform);

    PartitionResult result;
    result.used_ilp = true;
    result.die_of.assign(g.numComponents(), 0);
    for (int64_t i = 0; i < n; ++i) {
        for (int64_t d = 0; d < dies; ++d) {
            if (sol.values[xvar(i, d)] > 0.5) {
                g.component(members[i]).die = d;
                result.die_of[members[i]] = d;
            }
        }
    }
    for (int64_t ch : channels) {
        const auto &c = g.channel(ch);
        if (g.component(c.src).die != g.component(c.dst).die)
            ++result.crossings;
    }
    return result;
}

} // namespace partition
} // namespace streamtensor
