#include "partition/die_partition.h"

#include <algorithm>

#include "hls/resource.h"
#include "solver/ilp.h"
#include "support/error.h"
#include "support/flat_index.h"
#include "support/logging.h"

namespace streamtensor {
namespace partition {

namespace {

/** Shared epilogue of every partitioner path: tally per-die LUTs,
 *  then stamp each group channel with the crossing flag and the
 *  platform's inter-die link cost (cleared when co-located, so
 *  re-partitioning never leaves stale link costs behind). */
void
finishPartition(dataflow::ComponentGraph &g, int64_t group,
                const hls::FpgaPlatform &platform,
                PartitionResult &result)
{
    result.crossings = 0;
    result.die_luts.assign(platform.num_dies > 0
                               ? platform.num_dies
                               : 1,
                           0.0);
    for (int64_t id : g.groupComponents(group)) {
        const dataflow::Component &c = g.component(id);
        ST_ASSERT(c.die >= 0 && c.die <
                      static_cast<int64_t>(result.die_luts.size()),
                  "partition: die out of range");
        result.die_luts[c.die] += hls::estimateComponent(c).luts;
    }
    for (int64_t ch_id : g.groupChannels(group)) {
        dataflow::Channel &ch = g.channel(ch_id);
        bool crosses =
            g.component(ch.src).die != g.component(ch.dst).die;
        ch.inter_die = crosses;
        ch.link_latency =
            crosses ? platform.inter_die_latency_cycles : 0.0;
        ch.link_ii_penalty =
            crosses ? platform.inter_die_ii_penalty : 0.0;
        if (crosses)
            ++result.crossings;
    }
}

/** Greedy fallback: walk the topological order, filling die 0,
 *  then die 1, ... whenever the running resource share exceeds an
 *  even split. Keeps chains contiguous, which minimises crossings
 *  for pipeline-shaped graphs. */
PartitionResult
greedyPartition(dataflow::ComponentGraph &g, int64_t group,
                const hls::FpgaPlatform &platform)
{
    PartitionResult result;
    result.used_ilp = false;
    result.die_of.assign(g.numComponents(), 0);

    auto order = g.groupTopoOrder(group);
    double total_luts = 0.0;
    for (int64_t id : order)
        total_luts += hls::estimateComponent(g.component(id)).luts;
    double per_die = total_luts /
                     static_cast<double>(platform.num_dies);

    double acc = 0.0;
    int64_t die = 0;
    for (int64_t id : order) {
        acc += hls::estimateComponent(g.component(id)).luts;
        g.component(id).die = die;
        result.die_of[id] = die;
        if (acc > per_die * (die + 1) &&
            die + 1 < platform.num_dies) {
            ++die;
        }
    }
    finishPartition(g, group, platform, result);
    return result;
}

} // namespace

PartitionResult
partitionGroup(dataflow::ComponentGraph &g, int64_t group,
               const hls::FpgaPlatform &platform,
               const PartitionOptions &options)
{
    auto members = g.groupComponents(group);
    int64_t n = static_cast<int64_t>(members.size());
    int64_t dies = platform.num_dies;
    if (n == 0) {
        PartitionResult empty;
        empty.crossings = 0;
        empty.used_ilp = false;
        empty.die_luts.assign(dies > 0 ? dies : 1, 0.0);
        return empty;
    }
    if (dies <= 1 ||
        options.strategy == PartitionStrategy::Greedy ||
        n > options.max_ilp_components)
        return greedyPartition(g, group, platform);

    // Prime with the greedy assignment: it is already applied to
    // the graph, its objective becomes the branch-and-bound
    // cutoff (subtrees that cannot beat it are pruned at the
    // root), and it is the answer whenever the ILP finds nothing
    // strictly better within its node budget.
    PartitionResult greedy = greedyPartition(g, group, platform);

    // Dense index of members (sorted-vector lookup) and the
    // group's internal channels.
    support::FlatIndex idx = support::FlatIndex::positionsOf(members);
    auto channels = g.groupChannels(group);
    int64_t m = static_cast<int64_t>(channels.size());

    // Variables: x[i][d] (n*dies binaries, task i on die d), then
    // y[e][d] (m*dies crossing indicators), then one imbalance
    // variable z.
    auto xvar = [&](int64_t i, int64_t d) { return i * dies + d; };
    auto yvar = [&](int64_t e, int64_t d) {
        return n * dies + e * dies + d;
    };
    int64_t zvar = n * dies + m * dies;
    solver::IlpProblem ilp(zvar + 1);

    for (int64_t i = 0; i < n; ++i)
        for (int64_t d = 0; d < dies; ++d)
            ilp.setBinary(xvar(i, d));

    // Exactly one die per task.
    for (int64_t i = 0; i < n; ++i) {
        std::vector<int64_t> vars;
        std::vector<double> ones(dies, 1.0);
        for (int64_t d = 0; d < dies; ++d)
            vars.push_back(xvar(i, d));
        ilp.lp().addSparseConstraint(vars, ones,
                                     solver::Relation::EQ, 1.0);
    }

    // Crossing linearisation: y[e][d] >= x[src][d] - x[dst][d]
    // and y[e][d] >= x[dst][d] - x[src][d]. The sum over d of
    // y[e][d] is 0 when co-located and 2 when split.
    for (int64_t e = 0; e < m; ++e) {
        const auto &ch = g.channel(channels[e]);
        int64_t si = idx.at(ch.src), di = idx.at(ch.dst);
        for (int64_t d = 0; d < dies; ++d) {
            ilp.lp().addSparseConstraint(
                {yvar(e, d), xvar(si, d), xvar(di, d)},
                {1.0, -1.0, 1.0}, solver::Relation::GE, 0.0);
            ilp.lp().addSparseConstraint(
                {yvar(e, d), xvar(di, d), xvar(si, d)},
                {1.0, -1.0, 1.0}, solver::Relation::GE, 0.0);
        }
    }

    // Imbalance: z >= luts(die d) - total/dies for every die; and
    // per-die capacity: luts(die d) must fit the die's even slice
    // of the fabric. Capacity rows only enter the ILP when they
    // can bind — when the whole group no longer fits one die —
    // because every assignment of a one-die-sized group satisfies
    // them trivially and the slack rows only stall the B&B. Also
    // skipped when even a perfect split could not fit (the greedy
    // fallback then at least returns an assignment).
    std::vector<double> luts(n, 0.0);
    double total_luts = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        luts[i] = hls::estimateComponent(
                      g.component(members[i]))
                      .luts;
        total_luts += luts[i];
    }
    double die_capacity =
        static_cast<double>(platform.dieResources().luts);
    bool enforce_capacity =
        options.enforce_die_capacity &&
        total_luts > die_capacity &&
        total_luts <= die_capacity * static_cast<double>(dies);
    for (int64_t d = 0; d < dies; ++d) {
        std::vector<int64_t> vars{zvar};
        std::vector<double> coeffs{1.0};
        for (int64_t i = 0; i < n; ++i) {
            vars.push_back(xvar(i, d));
            coeffs.push_back(-luts[i]);
        }
        ilp.lp().addSparseConstraint(vars, coeffs,
                                     solver::Relation::GE,
                                     -total_luts / dies);
        if (enforce_capacity) {
            // Scaled to units of one die capacity so the row's
            // coefficients stay O(1) next to the 0/1 assignment
            // columns (raw LUT counts destabilise the pivoting).
            std::vector<int64_t> cap_vars(vars.begin() + 1,
                                          vars.end());
            std::vector<double> cap_coeffs(n, 0.0);
            for (int64_t i = 0; i < n; ++i)
                cap_coeffs[i] = luts[i] / die_capacity;
            ilp.lp().addSparseConstraint(cap_vars, cap_coeffs,
                                         solver::Relation::LE,
                                         1.0);
        }
    }

    // Objective: crossings + weighted imbalance (normalised).
    for (int64_t e = 0; e < m; ++e)
        for (int64_t d = 0; d < dies; ++d)
            ilp.lp().setObjective(yvar(e, d), 0.5);
    double z_scale = options.imbalance_weight /
                     std::max(total_luts / dies, 1.0);
    ilp.lp().setObjective(zvar, z_scale);

    // The greedy assignment's objective value, in the ILP's own
    // terms (a split edge's crossing indicators sum to 2 x 0.5;
    // the optimal z is the max die load's excess over the even
    // share). It primes the branch-and-bound as a cutoff — but
    // only when greedy itself satisfies any enforced capacity:
    // a capacity-violating incumbent could prune away every
    // feasible (necessarily more-crossing) placement.
    double max_die_luts = *std::max_element(
        greedy.die_luts.begin(), greedy.die_luts.end());
    bool greedy_fits =
        !enforce_capacity || max_die_luts <= die_capacity;
    solver::IlpOptions ilp_options;
    ilp_options.max_nodes = options.max_ilp_nodes;
    if (greedy_fits) {
        ilp_options.cutoff =
            static_cast<double>(greedy.crossings) +
            z_scale * (max_die_luts - total_luts / dies);
    }
    solver::IlpSolution sol = solveIlp(ilp, ilp_options);
    if (!sol.optimal()) {
        if (enforce_capacity && !greedy_fits)
            warn("die partition: capacity enforcement requested "
                 "but the ILP found no assignment within the "
                 "node budget; returning the capacity-unaware "
                 "greedy placement");
        return greedy; // nothing strictly better found
    }

    PartitionResult result;
    result.used_ilp = true;
    result.die_of.assign(g.numComponents(), 0);
    for (int64_t i = 0; i < n; ++i) {
        for (int64_t d = 0; d < dies; ++d) {
            if (sol.values[xvar(i, d)] > 0.5) {
                g.component(members[i]).die = d;
                result.die_of[members[i]] = d;
            }
        }
    }
    finishPartition(g, group, platform, result);
    return result;
}

} // namespace partition
} // namespace streamtensor
