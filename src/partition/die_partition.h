/**
 * @file
 * Multi-die graph partitioning (paper §5.3 item 2): assign each
 * task of a fused group to an SLR die, minimising inter-die
 * FIFO crossings and resource imbalance, subject to one-die-per-
 * task assignment and per-die resource capacity.
 *
 * Solved with ILP (binary assignment variables, crossing
 * indicators linearised, per-die LUT capacity rows) for small
 * groups; a greedy topological-wavefront fallback handles large
 * groups or ILP node-budget exhaustion.
 *
 * Placement is load-bearing: besides writing each component's
 * `die`, partitioning stamps every crossing channel with the
 * platform's inter-die link model (`Channel::inter_die`,
 * `link_latency`, `link_ii_penalty`), which FIFO sizing prices
 * and both simulators execute. Different placements therefore
 * produce different predicted cycles, not just different
 * crossing counts.
 */

#ifndef STREAMTENSOR_PARTITION_DIE_PARTITION_H
#define STREAMTENSOR_PARTITION_DIE_PARTITION_H

#include <cstdint>
#include <vector>

#include "dataflow/graph.h"
#include "hls/platform.h"

namespace streamtensor {
namespace partition {

/** Partitioning outcome for one group. */
struct PartitionResult
{
    /** die[id] for every component of the group (indexed by
     *  component id). */
    std::vector<int64_t> die_of;

    /** Channels crossing a die boundary. */
    int64_t crossings = 0;

    /** True when the ILP produced the assignment (else greedy). */
    bool used_ilp = true;

    /** LUTs placed on each die (size = platform num_dies). */
    std::vector<double> die_luts;
};

/** Which partitioner to run. */
enum class PartitionStrategy {
    /** ILP within the size guard, greedy fallback beyond it. */
    Auto,
    /** Always the greedy topological wavefront (baselines and
     *  the ILP-vs-greedy differential suite). */
    Greedy,
};

/** Options for the partitioner. */
struct PartitionOptions
{
    PartitionStrategy strategy = PartitionStrategy::Auto;

    /** Groups with more components than this go straight to the
     *  greedy fallback (ILP size guard). */
    int64_t max_ilp_components = 24;

    /** Branch-and-bound node budget. */
    int64_t max_ilp_nodes = 20000;

    /** Weight of the resource-imbalance term vs crossings. */
    double imbalance_weight = 0.25;

    /** Add hard per-die LUT capacity rows
     *  (FpgaPlatform::dieResources) to the ILP. Off by default:
     *  capacity rows make the relaxation much weaker (the
     *  branch-and-bound routinely exhausts its node budget and
     *  falls back to greedy), so they are reserved for floorplan
     *  studies where the balance term alone is not enough. The
     *  imbalance objective keeps default placements near the even
     *  split either way, and PartitionResult::die_luts reports
     *  the realised per-die load for validation. */
    bool enforce_die_capacity = false;
};

/**
 * Partition one fused group of @p g across the platform's dies,
 * writing each component's `die` field and stamping the group's
 * channels with the platform's inter-die link cost. Returns the
 * result summary.
 */
PartitionResult
partitionGroup(dataflow::ComponentGraph &g, int64_t group,
               const hls::FpgaPlatform &platform,
               const PartitionOptions &options = {});

} // namespace partition
} // namespace streamtensor

#endif // STREAMTENSOR_PARTITION_DIE_PARTITION_H
