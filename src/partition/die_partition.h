/**
 * @file
 * Multi-die graph partitioning (paper §5.3 item 2): assign each
 * task of a fused group to an SLR die, minimising inter-die
 * FIFO crossings and resource imbalance, subject to one-die-per-
 * task assignment and per-die resource capacity.
 *
 * Solved with ILP (binary assignment variables, crossing
 * indicators linearised) for small groups; a greedy
 * topological-wavefront fallback handles large groups or ILP
 * node-budget exhaustion.
 */

#ifndef STREAMTENSOR_PARTITION_DIE_PARTITION_H
#define STREAMTENSOR_PARTITION_DIE_PARTITION_H

#include <cstdint>
#include <vector>

#include "dataflow/graph.h"
#include "hls/platform.h"

namespace streamtensor {
namespace partition {

/** Partitioning outcome for one group. */
struct PartitionResult
{
    /** die[id] for every component of the group (indexed by
     *  component id). */
    std::vector<int64_t> die_of;

    /** Channels crossing a die boundary. */
    int64_t crossings = 0;

    /** True when the ILP produced the assignment (else greedy). */
    bool used_ilp = true;
};

/** Options for the partitioner. */
struct PartitionOptions
{
    /** Groups with more components than this go straight to the
     *  greedy fallback (ILP size guard). */
    int64_t max_ilp_components = 24;

    /** Branch-and-bound node budget. */
    int64_t max_ilp_nodes = 20000;

    /** Weight of the resource-imbalance term vs crossings. */
    double imbalance_weight = 0.25;
};

/**
 * Partition one fused group of @p g across the platform's dies,
 * writing each component's `die` field. Returns the result
 * summary.
 */
PartitionResult
partitionGroup(dataflow::ComponentGraph &g, int64_t group,
               const hls::FpgaPlatform &platform,
               const PartitionOptions &options = {});

} // namespace partition
} // namespace streamtensor

#endif // STREAMTENSOR_PARTITION_DIE_PARTITION_H
