/**
 * @file
 * On-chip memory allocation (paper §5.3 item 3): place each buffer
 * into LUTRAM, BRAM, or URAM, prioritised by size — small buffers
 * burn LUTRAM, medium fit BRAM blocks, large ones go to URAM —
 * while tracking per-resource capacity.
 */

#ifndef STREAMTENSOR_PARTITION_MEMORY_ALLOC_H
#define STREAMTENSOR_PARTITION_MEMORY_ALLOC_H

#include <cstdint>
#include <string>
#include <vector>

#include "dataflow/graph.h"
#include "hls/platform.h"
#include "ir/type.h"

namespace streamtensor {
namespace partition {

/** One placed buffer. */
struct BufferPlacement
{
    std::string name;
    int64_t bytes = 0;
    ir::MemoryKind kind = ir::MemoryKind::Auto;
};

/** Allocation outcome. */
struct MemoryAllocation
{
    std::vector<BufferPlacement> placements;
    int64_t lutram_bytes = 0;
    int64_t bram_bytes = 0;
    int64_t uram_bytes = 0;

    /** True when every buffer found a home within capacity. */
    bool feasible = true;

    /** Total allocated bytes. */
    int64_t totalBytes() const
    {
        return lutram_bytes + bram_bytes + uram_bytes;
    }
};

/** Thresholds steering placement. */
struct MemoryAllocOptions
{
    /** Buffers at or below this size prefer LUTRAM. */
    int64_t lutram_threshold_bytes = 1024;

    /** Buffers above this size prefer URAM. */
    int64_t uram_threshold_bytes = 18 * 1024;
};

/**
 * Allocate every buffer of @p g (kernel/DMA local buffers,
 * converter ping-pongs, FIFOs) on @p platform. Larger buffers are
 * placed first so URAM is not fragmented by small ones.
 */
MemoryAllocation
allocateMemory(const dataflow::ComponentGraph &g,
               const hls::FpgaPlatform &platform,
               const MemoryAllocOptions &options = {});

} // namespace partition
} // namespace streamtensor

#endif // STREAMTENSOR_PARTITION_MEMORY_ALLOC_H
