#include "partition/memory_alloc.h"

#include <algorithm>

#include "support/math_util.h"

namespace streamtensor {
namespace partition {

MemoryAllocation
allocateMemory(const dataflow::ComponentGraph &g,
               const hls::FpgaPlatform &platform,
               const MemoryAllocOptions &options)
{
    // Collect all buffers.
    std::vector<BufferPlacement> buffers;
    for (int64_t id = 0; id < g.numComponents(); ++id) {
        const dataflow::Component &c = g.component(id);
        if (c.local_buffer_bytes > 0) {
            buffers.push_back(
                {c.name + "_buf", c.local_buffer_bytes,
                 ir::MemoryKind::Auto});
        }
        if (c.kind == dataflow::ComponentKind::Converter) {
            buffers.push_back(
                {c.name + "_pingpong", c.converter.bufferBytes(),
                 ir::MemoryKind::Auto});
        }
    }
    for (int64_t ch = 0; ch < g.numChannels(); ++ch) {
        const dataflow::Channel &c = g.channel(ch);
        if (c.folded)
            continue;
        buffers.push_back({"fifo" + std::to_string(ch),
                           ceilDiv(c.storageBits(), 8),
                           ir::MemoryKind::Auto});
    }

    // Largest first: URAM candidates claim their blocks before
    // smaller buffers fragment anything.
    std::sort(buffers.begin(), buffers.end(),
              [](const BufferPlacement &a, const BufferPlacement &b)
              { return a.bytes > b.bytes; });

    MemoryAllocation alloc;
    int64_t lutram_cap = platform.lutram_kib * 1024;
    int64_t bram_cap = platform.bram_kib * 1024;
    int64_t uram_cap = platform.uram_kib * 1024;

    auto try_place = [&](BufferPlacement &b,
                         ir::MemoryKind kind) -> bool {
        switch (kind) {
          case ir::MemoryKind::LUTRAM:
            if (alloc.lutram_bytes + b.bytes > lutram_cap)
                return false;
            alloc.lutram_bytes += b.bytes;
            break;
          case ir::MemoryKind::BRAM:
            if (alloc.bram_bytes + b.bytes > bram_cap)
                return false;
            alloc.bram_bytes += b.bytes;
            break;
          case ir::MemoryKind::URAM:
            if (alloc.uram_bytes + b.bytes > uram_cap)
                return false;
            alloc.uram_bytes += b.bytes;
            break;
          default:
            return false;
        }
        b.kind = kind;
        return true;
    };

    for (auto &b : buffers) {
        bool placed = false;
        if (b.bytes <= options.lutram_threshold_bytes) {
            placed = try_place(b, ir::MemoryKind::LUTRAM) ||
                     try_place(b, ir::MemoryKind::BRAM) ||
                     try_place(b, ir::MemoryKind::URAM);
        } else if (b.bytes <= options.uram_threshold_bytes) {
            placed = try_place(b, ir::MemoryKind::BRAM) ||
                     try_place(b, ir::MemoryKind::URAM) ||
                     try_place(b, ir::MemoryKind::LUTRAM);
        } else {
            placed = try_place(b, ir::MemoryKind::URAM) ||
                     try_place(b, ir::MemoryKind::BRAM);
        }
        if (!placed)
            alloc.feasible = false;
        alloc.placements.push_back(b);
    }
    return alloc;
}

} // namespace partition
} // namespace streamtensor
