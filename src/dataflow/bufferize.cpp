#include "dataflow/bufferize.h"

#include <map>

#include "ir/builder.h"
#include "support/error.h"

namespace streamtensor {
namespace dataflow {

std::unique_ptr<ir::Module>
bufferize(const ComponentGraph &g)
{
    auto module = std::make_unique<ir::Module>("accelerator");
    ir::OpBuilder top(*module, module->body());

    for (int64_t group = 0; group < g.numGroups(); ++group) {
        ir::Op *kernel = top.create(ir::OpKind::Kernel, {}, {},
                                    "group" + std::to_string(group));
        ir::Region *body = top.addRegion(kernel);
        ir::OpBuilder b(*module, *body);

        // Streams for every live channel of this group.
        std::map<int64_t, ir::Value *> stream_of;
        for (int64_t ch_id : g.groupChannels(group)) {
            const Channel &ch = g.channel(ch_id);
            if (ch.folded)
                continue;
            ir::Op *s = b.streamCreate(
                ir::streamTypeFor(ch.type, ch.depth));
            stream_of[ch_id] = s->result();
        }

        // One task per component.
        for (int64_t id : g.groupTopoOrder(group)) {
            const Component &c = g.component(id);
            ir::Op *task = b.task({}, {}, c.name);
            task->setAttr("kind",
                          std::string(componentKindName(c.kind)));
            task->setAttr("lanes", c.vector_lanes);
            ir::OpBuilder tb(*module, *task->region());

            if (c.kind == ComponentKind::Converter) {
                tb.bufferCreate(c.converter.bufferType());
            }

            // Materialized loop nest: iterate the dominant stream
            // layout of the component.
            std::vector<int64_t> trips;
            auto outs = g.outChannels(id);
            auto ins = g.inChannels(id);
            if (!outs.empty()) {
                trips = g.channel(outs.front()).type.tripCounts();
            } else if (!ins.empty()) {
                trips = g.channel(ins.front()).type.tripCounts();
            }
            if (trips.empty())
                trips = {1};
            ir::Op *loop = tb.loopNest(trips, c.name + "_loop");
            ir::OpBuilder lb(*module, *loop->region());

            for (int64_t ch_id : ins) {
                auto it = stream_of.find(ch_id);
                if (it == stream_of.end())
                    continue; // folded channel
                const Channel &ch = g.channel(ch_id);
                ir::TensorType elem(ch.type.dtype(),
                                    ch.type.elementShape());
                lb.streamRead(it->second, ir::Type(elem));
            }
            if (c.kind == ComponentKind::Kernel) {
                ir::Op *compute =
                    lb.create(ir::OpKind::Compute, {}, {}, c.name);
                compute->setAttr("unroll", c.unroll);
                compute->setAttr(
                    "points_per_token",
                    static_cast<int64_t>(c.points_per_token));
            } else if (c.kind == ComponentKind::LoadDma ||
                       c.kind == ComponentKind::StoreDma) {
                ir::Op *dma =
                    lb.create(ir::OpKind::Dma, {}, {}, c.name);
                dma->setAttr("tensor", c.tensor_id);
            }
            for (int64_t ch_id : outs) {
                auto it = stream_of.find(ch_id);
                if (it == stream_of.end())
                    continue;
                const Channel &ch = g.channel(ch_id);
                ir::TensorType elem(ch.type.dtype(),
                                    ch.type.elementShape());
                // A placeholder value written into the stream.
                ir::Op *value = lb.create(ir::OpKind::Compute, {},
                                          {ir::Type(elem)},
                                          c.name + "_tok");
                lb.streamWrite(value->result(), it->second);
            }
        }
        b.yield({});
    }
    return module;
}

} // namespace dataflow
} // namespace streamtensor
