#include "dataflow/passes.h"

#include <algorithm>

#include "support/error.h"
#include "support/math_util.h"

namespace streamtensor {
namespace dataflow {

FoldStats
foldITensors(ComponentGraph &g)
{
    FoldStats stats;
    for (int64_t c = 0; c < g.numChannels(); ++c) {
        Channel &ch = g.channel(c);
        if (ch.folded)
            continue;
        Component &src = g.component(ch.src);
        Component &dst = g.component(ch.dst);
        if (src.kind != ComponentKind::LoadDma ||
            dst.kind != ComponentKind::Kernel) {
            continue;
        }
        // Exact-pattern requirement: folding replays nothing, so
        // revisiting streams must keep their FIFO.
        if (ch.type.revisitFactor() != 1)
            continue;
        int64_t elem_bytes =
            2 * ceilDiv(ch.type.elementCount() *
                            ir::bitWidth(ch.type.dtype()),
                        8);
        if (dst.local_buffer_bytes < elem_bytes)
            continue;
        ch.folded = true;
        dst.local_buffer_bytes -= elem_bytes;
        stats.bytes_saved += elem_bytes;
        ++stats.channels_folded;
    }
    return stats;
}

int64_t
vectorizeITensors(ComponentGraph &g, int64_t memory_port_bits)
{
    int64_t changed = 0;
    for (int64_t id = 0; id < g.numComponents(); ++id) {
        Component &c = g.component(id);
        int64_t lanes = c.vector_lanes;
        if (c.kind == ComponentKind::LoadDma ||
            c.kind == ComponentKind::StoreDma) {
            // Widen to the memory port: group scalars into one
            // external word (paper §4.2 pack & widen).
            ir::DataType dtype = ir::DataType::F32;
            int64_t elem_count = 1;
            auto channels = c.kind == ComponentKind::LoadDma
                                ? g.outChannels(id)
                                : g.inChannels(id);
            if (!channels.empty()) {
                const Channel &ch = g.channel(channels.front());
                dtype = ch.type.dtype();
                elem_count = ch.type.elementCount();
            }
            lanes = std::min<int64_t>(
                memory_port_bits / ir::bitWidth(dtype),
                elem_count);
            lanes = std::max<int64_t>(lanes, 1);
        } else if (c.kind == ComponentKind::Converter) {
            // Converters adopt the consumer kernel's lanes so the
            // FIFO bandwidth matches kernel parallelism.
            for (int64_t ch_id : g.outChannels(id)) {
                const Channel &ch = g.channel(ch_id);
                lanes = std::max<int64_t>(
                    lanes, g.component(ch.dst).vector_lanes);
            }
        }
        if (lanes != c.vector_lanes) {
            c.vector_lanes = lanes;
            ++changed;
        }
    }
    return changed;
}

int64_t
reduceStreamDepth(ComponentGraph &g, int64_t max_depth)
{
    ST_CHECK(max_depth >= 2, "max FIFO depth must be >= 2");
    int64_t clamped = 0;
    for (int64_t c = 0; c < g.numChannels(); ++c) {
        Channel &ch = g.channel(c);
        // Never shrink below the consumer's per-firing burst
        // (double-buffered), or the consumer could never fire.
        int64_t floor_depth = 2 * g.channelBurst(c);
        int64_t target = std::max(
            std::min(ch.depth, max_depth), floor_depth);
        if (target != ch.depth) {
            ch.depth = target;
            ++clamped;
        }
    }
    return clamped;
}

} // namespace dataflow
} // namespace streamtensor
