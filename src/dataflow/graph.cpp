#include "dataflow/graph.h"

#include <algorithm>
#include <sstream>

#include "support/error.h"

namespace streamtensor {
namespace dataflow {

std::string
componentKindName(ComponentKind kind)
{
    switch (kind) {
      case ComponentKind::LoadDma: return "load_dma";
      case ComponentKind::StoreDma: return "store_dma";
      case ComponentKind::Kernel: return "kernel";
      case ComponentKind::Converter: return "converter";
    }
    ST_PANIC("unknown ComponentKind");
}

int64_t
Channel::storageBits() const
{
    return type.tokenBits() * depth;
}

int64_t
ComponentGraph::addComponent(Component c)
{
    components_.push_back(std::move(c));
    return numComponents() - 1;
}

int64_t
ComponentGraph::addChannel(Channel ch)
{
    ST_CHECK(ch.src >= 0 && ch.src < numComponents(),
             "channel src out of range");
    ST_CHECK(ch.dst >= 0 && ch.dst < numComponents(),
             "channel dst out of range");
    ST_CHECK(ch.src != ch.dst, "channel endpoints must differ");
    ST_CHECK(components_[ch.src].group == components_[ch.dst].group,
             "channels connect components of the same group");
    ST_CHECK(ch.tokens >= 1, "channel must carry >= 1 tokens");
    channels_.push_back(std::move(ch));
    return numChannels() - 1;
}

Component &
ComponentGraph::component(int64_t id)
{
    ST_ASSERT(id >= 0 && id < numComponents(),
              "component id out of range");
    return components_[id];
}

const Component &
ComponentGraph::component(int64_t id) const
{
    ST_ASSERT(id >= 0 && id < numComponents(),
              "component id out of range");
    return components_[id];
}

Channel &
ComponentGraph::channel(int64_t id)
{
    ST_ASSERT(id >= 0 && id < numChannels(),
              "channel id out of range");
    return channels_[id];
}

const Channel &
ComponentGraph::channel(int64_t id) const
{
    ST_ASSERT(id >= 0 && id < numChannels(),
              "channel id out of range");
    return channels_[id];
}

int64_t
ComponentGraph::numGroups() const
{
    int64_t max_group = -1;
    for (const auto &c : components_)
        max_group = std::max(max_group, c.group);
    return max_group + 1;
}

std::vector<int64_t>
ComponentGraph::groupComponents(int64_t group) const
{
    std::vector<int64_t> out;
    for (int64_t i = 0; i < numComponents(); ++i)
        if (components_[i].group == group)
            out.push_back(i);
    return out;
}

std::vector<int64_t>
ComponentGraph::groupChannels(int64_t group) const
{
    std::vector<int64_t> out;
    for (int64_t i = 0; i < numChannels(); ++i)
        if (components_[channels_[i].src].group == group)
            out.push_back(i);
    return out;
}

std::vector<int64_t>
ComponentGraph::groupTopoOrder(int64_t group) const
{
    std::vector<int64_t> members = groupComponents(group);
    std::vector<int64_t> indeg(numComponents(), 0);
    for (const auto &ch : channels_)
        if (components_[ch.src].group == group)
            ++indeg[ch.dst];
    std::vector<int64_t> ready, order;
    for (int64_t id : members)
        if (indeg[id] == 0)
            ready.push_back(id);
    while (!ready.empty()) {
        auto it = std::min_element(ready.begin(), ready.end());
        int64_t u = *it;
        ready.erase(it);
        order.push_back(u);
        for (const auto &ch : channels_) {
            if (ch.src != u)
                continue;
            if (--indeg[ch.dst] == 0)
                ready.push_back(ch.dst);
        }
    }
    ST_CHECK(order.size() == members.size(),
             "group component graph must be a DAG");
    return order;
}

std::vector<int64_t>
ComponentGraph::inChannels(int64_t id) const
{
    std::vector<int64_t> out;
    for (int64_t i = 0; i < numChannels(); ++i)
        if (channels_[i].dst == id)
            out.push_back(i);
    return out;
}

std::vector<int64_t>
ComponentGraph::outChannels(int64_t id) const
{
    std::vector<int64_t> out;
    for (int64_t i = 0; i < numChannels(); ++i)
        if (channels_[i].src == id)
            out.push_back(i);
    return out;
}

int64_t
ComponentGraph::componentFirings(int64_t id) const
{
    int64_t tokens = 0;
    for (int64_t ch : outChannels(id))
        tokens = std::max(tokens, channels_[ch].tokens);
    if (tokens == 0) {
        for (int64_t ch : inChannels(id))
            tokens = std::max(tokens, channels_[ch].tokens);
    }
    return std::max<int64_t>(tokens, 1);
}

int64_t
ComponentGraph::channelBurst(int64_t ch) const
{
    const Channel &c = channel(ch);
    int64_t firings = componentFirings(c.dst);
    return std::max<int64_t>((c.tokens + firings - 1) / firings, 1);
}

int64_t
ComponentGraph::totalConverterBytes() const
{
    int64_t total = 0;
    for (const auto &c : components_)
        if (c.kind == ComponentKind::Converter)
            total += c.converter.bufferBytes();
    return total;
}

int64_t
ComponentGraph::totalFifoBits() const
{
    int64_t total = 0;
    for (const auto &ch : channels_)
        if (!ch.folded)
            total += ch.storageBits();
    return total;
}

int64_t
ComponentGraph::totalLocalBufferBytes() const
{
    int64_t total = 0;
    for (const auto &c : components_)
        total += c.local_buffer_bytes;
    return total;
}

std::string
ComponentGraph::str() const
{
    std::ostringstream os;
    for (int64_t g = 0; g < numGroups(); ++g) {
        os << "group " << g << " {\n";
        for (int64_t id : groupComponents(g)) {
            const Component &c = components_[id];
            os << "  #" << id << " "
               << componentKindName(c.kind) << " @" << c.name;
            if (c.kind == ComponentKind::Converter) {
                os << " buffer="
                   << c.converter.bufferType().str();
            }
            os << "\n";
        }
        for (int64_t ch_id : groupChannels(g)) {
            const Channel &ch = channels_[ch_id];
            os << "  #" << ch.src << " -> #" << ch.dst
               << " tokens=" << ch.tokens << " depth=" << ch.depth
               << (ch.folded ? " folded" : "") << " "
               << ch.type.str() << "\n";
        }
        os << "}\n";
    }
    return os.str();
}

} // namespace dataflow
} // namespace streamtensor
