/**
 * @file
 * Bufferization (paper §3.1.3 and Fig. 4 "Bufferization"): lower
 * the component graph into the stream-level op IR. Every channel
 * becomes a hardware stream op with its sized depth; every
 * component becomes a task containing its materialized loop nest
 * with stream reads/writes; converters also own their ping-pong
 * buffer op. The resulting module is verifiable and printable.
 */

#ifndef STREAMTENSOR_DATAFLOW_BUFFERIZE_H
#define STREAMTENSOR_DATAFLOW_BUFFERIZE_H

#include <memory>

#include "dataflow/graph.h"
#include "ir/op.h"

namespace streamtensor {
namespace dataflow {

/**
 * Emit the stream-level IR module for @p g. One kernel op per
 * fused group, one task per component, one stream op per unfolded
 * channel.
 */
std::unique_ptr<ir::Module> bufferize(const ComponentGraph &g);

} // namespace dataflow
} // namespace streamtensor

#endif // STREAMTENSOR_DATAFLOW_BUFFERIZE_H
