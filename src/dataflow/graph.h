/**
 * @file
 * The dataflow component graph: the compiler's representation of
 * one stream-based accelerator after kernel fusion (paper Fig. 1b):
 * kernels, stream layout converters, DMAs, and the FIFO channels
 * between them. Groups correspond to fused kernels (one accelerator
 * configuration each); groups execute sequentially on one device or
 * spatially across devices.
 */

#ifndef STREAMTENSOR_DATAFLOW_GRAPH_H
#define STREAMTENSOR_DATAFLOW_GRAPH_H

#include <cstdint>
#include <string>
#include <vector>

#include "dse/converter_gen.h"
#include "dse/tiling_space.h"
#include "ir/itensor_type.h"

namespace streamtensor {
namespace dataflow {

/** On-chip component kinds (paper Fig. 1b). */
enum class ComponentKind {
    LoadDma,  ///< external memory -> stream
    StoreDma, ///< stream -> external memory
    Kernel,   ///< computation kernel
    Converter ///< stream layout converter (ping-pong buffer)
};

/** Printable mnemonic. */
std::string componentKindName(ComponentKind kind);

/** One on-chip component. */
struct Component
{
    ComponentKind kind = ComponentKind::Kernel;
    std::string name;

    /** Fused accelerator group (fusion index). */
    int64_t group = 0;

    /** Originating linalg op (Kernel) or moved tensor (DMA). */
    int64_t linalg_op = -1;
    int64_t tensor_id = -1;

    /** Kernel configuration. */
    dse::TileConfig tile;
    double flops = 0.0;
    int64_t unroll = 1;

    /** Iteration points computed per output token. */
    int64_t points_per_token = 1;

    /** Total iteration points over one execution. */
    int64_t total_points = 1;

    /** Converter payload (Converter only). */
    dse::ConverterSpec converter;

    /** Local ping-pong buffers in bytes (kernels and DMAs). */
    int64_t local_buffer_bytes = 0;

    /** Stream/memory port widening lanes. */
    int64_t vector_lanes = 1;

    /** Profiled timing (filled by the hls model). */
    double initial_delay = 0.0;
    double total_cycles = 0.0;

    /** Input-ingestion span; <= 0 means same as total_cycles.
     *  Converters ingest at stream rate while re-emitting
     *  multi-pass, so their ingestion is much shorter. */
    double ingest_cycles = -1.0;

    /** Die assignment (filled by partitioning). */
    int64_t die = 0;
};

/** One FIFO channel between two components. */
struct Channel
{
    int64_t src = -1;
    int64_t dst = -1;
    int64_t src_port = 0;
    int64_t dst_port = 0;

    /** Stream layout carried by this FIFO. */
    ir::ITensorType type;

    /** Tokens transferred per accelerator execution. */
    int64_t tokens = 1;

    /** FIFO depth in tokens (filled by FIFO sizing). */
    int64_t depth = 2;

    /** Folded away by itensor folding (producer and consumer
     *  buffers merged; the sim treats it as a depth-1 direct
     *  handshake). */
    bool folded = false;

    /** Crossing a die boundary (written by die partitioning).
     *  Crossing FIFOs carry the platform's inter-die link cost:
     *  tokens arrive link_latency cycles after the push, pop
     *  credits return link_latency cycles after the pop, and each
     *  endpoint's firing interval grows by link_ii_penalty. FIFO
     *  sizing prices crossing edges with these values and both
     *  simulators model them. */
    bool inter_die = false;
    double link_latency = 0.0;
    double link_ii_penalty = 0.0;

    /** FIFO storage in bits given its depth. */
    int64_t storageBits() const;
};

/** The component graph of one compiled model (all groups). */
class ComponentGraph
{
  public:
    /** Add a component; returns its id. */
    int64_t addComponent(Component c);

    /** Add a channel; returns its id. */
    int64_t addChannel(Channel ch);

    int64_t numComponents() const
    {
        return static_cast<int64_t>(components_.size());
    }
    int64_t numChannels() const
    {
        return static_cast<int64_t>(channels_.size());
    }

    Component &component(int64_t id);
    const Component &component(int64_t id) const;
    Channel &channel(int64_t id);
    const Channel &channel(int64_t id) const;

    /** Number of fusion groups (max group id + 1). */
    int64_t numGroups() const;

    /** Component ids of one group, in insertion order. */
    std::vector<int64_t> groupComponents(int64_t group) const;

    /** Channel ids internal to one group. */
    std::vector<int64_t> groupChannels(int64_t group) const;

    /** Topological order of one group's components. */
    std::vector<int64_t> groupTopoOrder(int64_t group) const;

    /** Channels entering/leaving component @p id. */
    std::vector<int64_t> inChannels(int64_t id) const;
    std::vector<int64_t> outChannels(int64_t id) const;

    /** Firings of a component per execution: one per token on its
     *  widest output channel (sinks fire per input token). */
    int64_t componentFirings(int64_t id) const;

    /** Tokens channel @p ch moves per consumer firing (burst). */
    int64_t channelBurst(int64_t ch) const;

    /** Total converter ping-pong bytes across all groups. */
    int64_t totalConverterBytes() const;

    /** Total FIFO storage in bits. */
    int64_t totalFifoBits() const;

    /** Total kernel/DMA local buffer bytes. */
    int64_t totalLocalBufferBytes() const;

    /** Human-readable dump. */
    std::string str() const;

  private:
    std::vector<Component> components_;
    std::vector<Channel> channels_;
};

} // namespace dataflow
} // namespace streamtensor

#endif // STREAMTENSOR_DATAFLOW_GRAPH_H
