/**
 * @file
 * Dataflow-level optimization passes over the component graph
 * (paper §4.3): itensor folding, itensor vectorization, and stream
 * depth reduction.
 */

#ifndef STREAMTENSOR_DATAFLOW_PASSES_H
#define STREAMTENSOR_DATAFLOW_PASSES_H

#include <cstdint>

#include "dataflow/graph.h"

namespace streamtensor {
namespace dataflow {

/** Result of the folding pass. */
struct FoldStats
{
    int64_t channels_folded = 0;
    int64_t bytes_saved = 0;
};

/**
 * Iterative tensor folding (paper §4.3.2, Fig. 7b-c): a load-DMA
 * and its consuming kernel hold two local buffers connected by a
 * FIFO; when the access patterns match exactly (no revisit on the
 * stream), the FIFO is eliminated and the buffers merge,
 * shortening the pipeline and saving memory.
 */
FoldStats foldITensors(ComponentGraph &g);

/**
 * Iterative tensor vectorization (paper §4.3.3, Fig. 7c-d): align
 * FIFO and memory-port widths with kernel parallelism. DMAs widen
 * to the external port width (512-bit HBM words); converters adopt
 * their consumer kernel's lanes. Returns the number of components
 * whose lanes changed.
 */
int64_t vectorizeITensors(ComponentGraph &g,
                          int64_t memory_port_bits = 512);

/**
 * Clamp every FIFO depth to @p max_depth (the reduce_stream_depth
 * pass guarding against pathological LP outputs on resource-tight
 * devices). Returns the number of channels clamped.
 */
int64_t reduceStreamDepth(ComponentGraph &g, int64_t max_depth);

} // namespace dataflow
} // namespace streamtensor

#endif // STREAMTENSOR_DATAFLOW_PASSES_H
