/**
 * @file
 * Linalg-to-dataflow conversion (paper §4.1, Fig. 6a-c).
 *
 * Every tiled linalg op becomes a dataflow kernel whose boundary
 * itensor types are inferred from the tiled loop nest:
 *  - inter-tile trip counts and step sizes define the iteration
 *    space (parallel loops outer, reduction loops innermost so the
 *    output emits once per output tile);
 *  - the operand indexing maps define the iteration map: tensor
 *    dims bound to loops become dim expressions, broadcast dims
 *    become constants, and loops not indexing the operand become
 *    revisit dims;
 *  - tile extents define the element shape.
 */

#ifndef STREAMTENSOR_DATAFLOW_CONVERSION_H
#define STREAMTENSOR_DATAFLOW_CONVERSION_H

#include <cstdint>
#include <map>
#include <vector>

#include "dse/tiling_space.h"
#include "ir/itensor_type.h"
#include "linalg/graph.h"

namespace streamtensor {
namespace dataflow {

/** A dataflow kernel converted from one tiled linalg op. */
struct KernelSpec
{
    int64_t op_id = -1;
    dse::TileConfig tile;

    /** Boundary stream layout per linalg input operand. */
    std::vector<ir::ITensorType> input_types;

    /** Boundary stream layout of the output operand. */
    ir::ITensorType output_type;

    /** Iteration points per output token (intra-tile work,
     *  including reduction revisits). */
    int64_t points_per_token = 1;

    /** Total iteration points of one execution. */
    int64_t total_points = 1;

    /** Local ping-pong tile buffers in bytes (one per operand). */
    int64_t local_buffer_bytes = 0;
};

/**
 * Infer the boundary itensor of operand @p operand (or the output
 * when operand == -1) of the tiled op. Exposed for testing.
 */
ir::ITensorType
inferBoundaryIT(const linalg::Graph &g, const linalg::OpInfo &op,
                const dse::TileConfig &config, int64_t operand);

/** Convert every live op of @p g using the chosen tile configs. */
std::vector<KernelSpec>
convertToKernels(const linalg::Graph &g,
                 const std::map<int64_t, dse::TileConfig> &configs);

} // namespace dataflow
} // namespace streamtensor

#endif // STREAMTENSOR_DATAFLOW_CONVERSION_H
