#include "dataflow/conversion.h"

#include <algorithm>

#include "support/error.h"
#include "support/math_util.h"

namespace streamtensor {
namespace dataflow {

namespace {

/** Inter-tile loop order: parallel loops (original order) outer,
 *  reduction loops innermost, so outputs emit once per output tile
 *  after reductions complete. */
std::vector<int64_t>
interTileLoopOrder(const linalg::OpInfo &op)
{
    std::vector<int64_t> order;
    for (size_t l = 0; l < op.iterators.size(); ++l)
        if (op.iterators[l] == linalg::IteratorKind::Parallel)
            order.push_back(static_cast<int64_t>(l));
    for (size_t l = 0; l < op.iterators.size(); ++l)
        if (op.iterators[l] == linalg::IteratorKind::Reduction)
            order.push_back(static_cast<int64_t>(l));
    return order;
}

} // namespace

ir::ITensorType
inferBoundaryIT(const linalg::Graph &g, const linalg::OpInfo &op,
                const dse::TileConfig &config, int64_t operand)
{
    bool is_output = operand < 0;
    const linalg::IndexingMap &map =
        is_output ? op.output_indexing
                  : op.input_indexing[operand];
    int64_t tensor_id =
        is_output ? op.output : op.inputs[operand];
    const ir::TensorType &tensor = g.tensor(tensor_id).type;

    std::vector<int64_t> order = interTileLoopOrder(op);

    // Output streams iterate only the loops indexing the output;
    // inputs iterate the full nest (unmapped loops = revisits).
    std::vector<int64_t> included;
    if (is_output) {
        for (int64_t l : order) {
            bool used = std::find(map.dims.begin(), map.dims.end(),
                                  l) != map.dims.end();
            if (used)
                included.push_back(l);
        }
        ST_CHECK(!included.empty(),
                 "output must be indexed by at least one loop");
    } else {
        included = order;
    }

    // Position of each original loop in the included list.
    std::vector<int64_t> pos(op.loop_extents.size(), -1);
    for (size_t i = 0; i < included.size(); ++i)
        pos[included[i]] = static_cast<int64_t>(i);

    // Element shape: tile extent for mapped dims, full extent for
    // broadcast dims.
    std::vector<int64_t> element_shape(tensor.rank());
    for (int64_t d = 0; d < tensor.rank(); ++d) {
        int64_t l = map.dims[d];
        element_shape[d] =
            l >= 0 ? config.tile_sizes[l] : tensor.dim(d);
    }

    // Iteration space: inter-tile trips; steps are the tile extent
    // for mapped loops and 1 for revisit loops.
    std::vector<int64_t> trips, steps;
    std::vector<bool> mapped(op.loop_extents.size(), false);
    for (int64_t d = 0; d < tensor.rank(); ++d)
        if (map.dims[d] >= 0)
            mapped[map.dims[d]] = true;
    for (int64_t l : included) {
        trips.push_back(op.loop_extents[l] / config.tile_sizes[l]);
        steps.push_back(mapped[l] ? config.tile_sizes[l] : 1);
    }

    // Iteration map: tensor dim d follows its loop's position, or
    // is a constant 0 for broadcast dims.
    std::vector<ir::AffineExpr> results;
    results.reserve(tensor.rank());
    for (int64_t d = 0; d < tensor.rank(); ++d) {
        int64_t l = map.dims[d];
        if (l < 0) {
            results.push_back(ir::AffineExpr::constant(0));
            continue;
        }
        ST_CHECK(pos[l] >= 0,
                 "operand indexed by a loop outside its space");
        results.push_back(ir::AffineExpr::dim(pos[l]));
    }
    ir::AffineMap iter_map(static_cast<int64_t>(included.size()),
                           std::move(results));
    return ir::ITensorType(tensor.dtype(), element_shape, trips,
                           steps, std::move(iter_map));
}

std::vector<KernelSpec>
convertToKernels(const linalg::Graph &g,
                 const std::map<int64_t, dse::TileConfig> &configs)
{
    std::vector<KernelSpec> kernels;
    for (int64_t id : g.topoOrder()) {
        auto it = configs.find(id);
        ST_CHECK(it != configs.end(),
                 "missing tile config for op " + std::to_string(id));
        const linalg::OpInfo &op = g.op(id);
        const dse::TileConfig &cfg = it->second;

        KernelSpec spec;
        spec.op_id = id;
        spec.tile = cfg;
        for (size_t i = 0; i < op.inputs.size(); ++i) {
            spec.input_types.push_back(inferBoundaryIT(
                g, op, cfg, static_cast<int64_t>(i)));
        }
        spec.output_type = inferBoundaryIT(g, op, cfg, -1);

        spec.total_points = op.numPoints();
        int64_t out_tokens = spec.output_type.numTokens();
        spec.points_per_token =
            ceilDiv(spec.total_points, out_tokens);

        // Local tile buffers: one ping-pong buffer per operand.
        int64_t bytes = 0;
        for (const auto &t : spec.input_types) {
            bytes += 2 * ceilDiv(t.elementCount() *
                                     ir::bitWidth(t.dtype()),
                                 8);
        }
        bytes += 2 * ceilDiv(spec.output_type.elementCount() *
                                 ir::bitWidth(
                                     spec.output_type.dtype()),
                             8);
        spec.local_buffer_bytes = bytes;
        kernels.push_back(std::move(spec));
    }
    return kernels;
}

} // namespace dataflow
} // namespace streamtensor
