/**
 * @file
 * Stream-based kernel fusion application (paper §4.2, Fig. 6c-d):
 * builds the fusion space from converted kernels, runs Algorithm 2,
 * and materializes the resulting accelerator as a component graph
 * with converters on mismatched internal edges and DMAs on every
 * external-memory boundary. Redundant converters feeding multiple
 * consumers are shared (the CSE of paper §4.3.1).
 */

#ifndef STREAMTENSOR_DATAFLOW_FUSION_APPLY_H
#define STREAMTENSOR_DATAFLOW_FUSION_APPLY_H

#include <cstdint>
#include <map>
#include <vector>

#include "dataflow/conversion.h"
#include "dataflow/graph.h"
#include "dse/fusion.h"

namespace streamtensor {
namespace dataflow {

/** A fully fused accelerator design for one model graph. */
struct AcceleratorDesign
{
    std::vector<KernelSpec> kernels;
    dse::FusionPlan plan;
    ComponentGraph components;

    /** linalg op id -> Kernel component id. */
    std::map<int64_t, int64_t> kernel_component;

    /** Intermediate-result bytes if every inter-kernel tensor were
     *  buffered on chip (the pre-fusion baseline of Fig. 10a). */
    int64_t original_intermediate_bytes = 0;

    /** On-chip bytes actually used for inter-kernel communication
     *  after fusion: converter ping-pong buffers plus FIFOs. */
    int64_t fusedIntermediateBytes() const;
};

/**
 * Convert, fuse (budget @p c_max bytes per fused group), and
 * materialize the accelerator for @p g under tile @p configs.
 */
AcceleratorDesign
buildAccelerator(const linalg::Graph &g,
                 const std::map<int64_t, dse::TileConfig> &configs,
                 int64_t c_max);

} // namespace dataflow
} // namespace streamtensor

#endif // STREAMTENSOR_DATAFLOW_FUSION_APPLY_H
