#include "dataflow/fusion_apply.h"

#include <algorithm>

#include "support/error.h"
#include "support/math_util.h"

namespace streamtensor {
namespace dataflow {

namespace {

/** Ping-pong buffer bytes for one streamed element of @p t. */
int64_t
elementBufferBytes(const ir::ITensorType &t)
{
    return 2 * ceilDiv(t.elementCount() * ir::bitWidth(t.dtype()), 8);
}

} // namespace

int64_t
AcceleratorDesign::fusedIntermediateBytes() const
{
    // Count only inter-kernel communication: converter ping-pongs
    // plus FIFOs between kernels/converters. DMA streams move
    // inputs/weights, not intermediate results (Fig. 10a metric).
    int64_t fifo_bits = 0;
    for (int64_t ch = 0; ch < components.numChannels(); ++ch) {
        const Channel &c = components.channel(ch);
        if (c.folded)
            continue;
        auto skind = components.component(c.src).kind;
        auto dkind = components.component(c.dst).kind;
        if (skind == ComponentKind::LoadDma ||
            skind == ComponentKind::StoreDma ||
            dkind == ComponentKind::LoadDma ||
            dkind == ComponentKind::StoreDma) {
            continue;
        }
        fifo_bits += c.storageBits();
    }
    return components.totalConverterBytes() +
           ceilDiv(fifo_bits, 8);
}

AcceleratorDesign
buildAccelerator(const linalg::Graph &g,
                 const std::map<int64_t, dse::TileConfig> &configs,
                 int64_t c_max)
{
    AcceleratorDesign design;
    design.kernels = convertToKernels(g, configs);
    design.original_intermediate_bytes = g.intermediateBytes();

    // Kernel index by linalg op id.
    std::map<int64_t, int64_t> kernel_index;
    for (size_t k = 0; k < design.kernels.size(); ++k)
        kernel_index[design.kernels[k].op_id] =
            static_cast<int64_t>(k);

    // --- Fusion space (Algorithm 2 input): one node per kernel,
    // one edge per producer->consumer tensor flow.
    dse::FusionGraph fusion_graph;
    for (size_t k = 0; k < design.kernels.size(); ++k)
        fusion_graph.addNode();
    for (size_t k = 0; k < design.kernels.size(); ++k) {
        const KernelSpec &spec = design.kernels[k];
        const linalg::OpInfo &op = g.op(spec.op_id);
        for (size_t i = 0; i < op.inputs.size(); ++i) {
            int64_t producer = g.tensor(op.inputs[i]).producer;
            if (producer < 0 || g.isErased(producer))
                continue;
            fusion_graph.addEdge(
                kernel_index.at(producer),
                static_cast<int64_t>(k),
                design.kernels[kernel_index.at(producer)]
                    .output_type,
                spec.input_types[i]);
        }
    }
    design.plan = exploreFusion(fusion_graph, c_max);

    // --- Materialize components.
    ComponentGraph &cg = design.components;

    // Kernel components first.
    for (size_t k = 0; k < design.kernels.size(); ++k) {
        const KernelSpec &spec = design.kernels[k];
        const linalg::OpInfo &op = g.op(spec.op_id);
        Component c;
        c.kind = ComponentKind::Kernel;
        c.name = op.name.empty()
                     ? linalg::opKindName(op.kind)
                     : op.name;
        c.group = design.plan.fusion_index[k];
        c.linalg_op = spec.op_id;
        c.tile = spec.tile;
        c.flops = op.flops();
        c.unroll = spec.tile.unroll;
        c.points_per_token = spec.points_per_token;
        c.total_points = spec.total_points;
        c.local_buffer_bytes = spec.local_buffer_bytes;
        c.vector_lanes = spec.tile.vector_lanes;
        design.kernel_component[spec.op_id] = cg.addComponent(c);
    }

    // Shared converters: (producer op, consumer type string) -> id.
    std::map<std::pair<int64_t, std::string>, int64_t> converters;
    // Store DMAs created for cross-group/outputs: tensor id -> id.
    std::map<int64_t, int64_t> store_dmas;

    auto addLoadDma = [&](int64_t tensor_id, int64_t group,
                          const ir::ITensorType &type) {
        Component dma;
        dma.kind = ComponentKind::LoadDma;
        dma.name = "load_" + g.tensor(tensor_id).name;
        dma.group = group;
        dma.tensor_id = tensor_id;
        dma.local_buffer_bytes = elementBufferBytes(type);
        dma.total_points = type.numTokens() * type.elementCount();
        dma.points_per_token = type.elementCount();
        return cg.addComponent(dma);
    };

    auto addStoreDma = [&](int64_t tensor_id, int64_t group,
                           const ir::ITensorType &type) {
        Component dma;
        dma.kind = ComponentKind::StoreDma;
        dma.name = "store_" + g.tensor(tensor_id).name;
        dma.group = group;
        dma.tensor_id = tensor_id;
        dma.local_buffer_bytes = elementBufferBytes(type);
        dma.total_points = type.numTokens() * type.elementCount();
        dma.points_per_token = type.elementCount();
        return cg.addComponent(dma);
    };

    // Wire kernel inputs.
    for (size_t k = 0; k < design.kernels.size(); ++k) {
        const KernelSpec &spec = design.kernels[k];
        const linalg::OpInfo &op = g.op(spec.op_id);
        int64_t kernel_id = design.kernel_component.at(spec.op_id);
        int64_t group = design.plan.fusion_index[k];

        for (size_t i = 0; i < op.inputs.size(); ++i) {
            int64_t tensor_id = op.inputs[i];
            const ir::ITensorType &want = spec.input_types[i];
            int64_t producer = g.tensor(tensor_id).producer;
            bool internal =
                producer >= 0 && !g.isErased(producer) &&
                design.plan.sameGroup(kernel_index.at(producer),
                                      static_cast<int64_t>(k));

            if (!internal) {
                // External source: model input, parameter, cache,
                // or a tensor produced by another group via
                // external memory.
                int64_t dma = addLoadDma(tensor_id, group, want);
                Channel ch;
                ch.src = dma;
                ch.dst = kernel_id;
                ch.dst_port = static_cast<int64_t>(i);
                ch.type = want;
                ch.tokens = want.numTokens();
                cg.addChannel(ch);
                continue;
            }

            int64_t pk = kernel_index.at(producer);
            int64_t producer_id =
                design.kernel_component.at(producer);
            const ir::ITensorType &have =
                design.kernels[pk].output_type;
            if (have == want) {
                Channel ch;
                ch.src = producer_id;
                ch.dst = kernel_id;
                ch.dst_port = static_cast<int64_t>(i);
                ch.type = want;
                ch.tokens = want.numTokens();
                cg.addChannel(ch);
                continue;
            }

            // Mismatched layouts: insert (or reuse) a converter.
            auto key = std::make_pair(producer, want.str());
            auto it = converters.find(key);
            int64_t conv_id;
            if (it != converters.end()) {
                conv_id = it->second;
            } else {
                Component conv;
                conv.kind = ComponentKind::Converter;
                conv.name = "cvt_" + g.tensor(tensor_id).name;
                conv.group = group;
                conv.converter = dse::inferConverter(have, want);
                conv.local_buffer_bytes = 0; // counted as converter
                conv.total_points =
                    want.numTokens() * want.elementCount();
                conv.points_per_token = want.elementCount();
                conv_id = cg.addComponent(conv);
                converters[key] = conv_id;
                Channel in;
                in.src = producer_id;
                in.dst = conv_id;
                in.type = have;
                in.tokens = have.numTokens();
                cg.addChannel(in);
            }
            Channel out;
            out.src = conv_id;
            out.dst = kernel_id;
            out.dst_port = static_cast<int64_t>(i);
            out.type = want;
            out.tokens = want.numTokens();
            cg.addChannel(out);
        }
    }

    // Wire kernel outputs that leave the chip: model outputs and
    // tensors consumed by other groups.
    for (size_t k = 0; k < design.kernels.size(); ++k) {
        const KernelSpec &spec = design.kernels[k];
        const linalg::OpInfo &op = g.op(spec.op_id);
        int64_t tensor_id = op.output;
        const linalg::TensorInfo &tensor = g.tensor(tensor_id);
        bool needs_store =
            tensor.role == linalg::TensorRole::Output;
        for (int64_t c : tensor.consumers) {
            if (g.isErased(c))
                continue;
            if (!design.plan.sameGroup(kernel_index.at(c),
                                       static_cast<int64_t>(k)))
                needs_store = true;
        }
        if (!needs_store)
            continue;
        if (store_dmas.count(tensor_id))
            continue;
        int64_t group = design.plan.fusion_index[k];
        int64_t dma = addStoreDma(tensor_id, group,
                                  spec.output_type);
        store_dmas[tensor_id] = dma;
        Channel ch;
        ch.src = design.kernel_component.at(spec.op_id);
        ch.dst = dma;
        ch.type = spec.output_type;
        ch.tokens = spec.output_type.numTokens();
        cg.addChannel(ch);
    }
    return design;
}

} // namespace dataflow
} // namespace streamtensor
