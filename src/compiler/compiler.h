/**
 * @file
 * The StreamTensor compiler: the full pipeline of paper Fig. 4 as
 * an ordered sequence of *named stages* — Linalg optimization,
 * Linalg tiling, Linalg-to-dataflow + kernel fusion, dataflow
 * optimization, HLS profiling, die partitioning, FIFO sizing,
 * memory allocation, bufferization, and code generation — each
 * recording its wall clock into the StageTimes surface (the
 * Fig. 10c breakdown).
 *
 * Die partitioning runs *before* FIFO sizing so placement is
 * load-bearing: the partitioner stamps crossing channels with the
 * platform's inter-die link cost, the sizing LP prices those edges
 * with the extra latency (no-stall depths absorb the link delay),
 * and the simulators execute the same link model — so ILP and
 * greedy placements produce measurably different cycles.
 *
 * The stage list is data (compiler::Pipeline), so experiments can
 * reorder, drop, or wrap stages without forking the driver.
 */

#ifndef STREAMTENSOR_COMPILER_COMPILER_H
#define STREAMTENSOR_COMPILER_COMPILER_H

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dataflow/bufferize.h"
#include "dataflow/fusion_apply.h"
#include "dataflow/passes.h"
#include "dse/tiling_space.h"
#include "hls/codegen.h"
#include "hls/platform.h"
#include "hls/profiling.h"
#include "partition/die_partition.h"
#include "partition/memory_alloc.h"
#include "token/fifo_sizing.h"

namespace streamtensor {
namespace compiler {

/** User-visible compiler options. */
struct CompileOptions
{
    dse::TilingOptions tiling;

    /** Max on-chip bytes per fused group; <= 0 means "use the
     *  platform's on-chip memory". */
    int64_t c_max = 0;

    /** FIFO sizing strategy; Auto switches to Conservative when
     *  the fused design's on-chip pressure crosses
     *  conservative_threshold (the paper's Llama case, §6.2). */
    token::Equalization equalization = token::Equalization::Normal;
    bool auto_conservative = true;
    double conservative_threshold = 0.40;

    /** Initial cap on generated FIFO depths; the compiler lowers
     *  it further (reduce_stream_depth) whenever the memory
     *  allocator reports an over-budget design. Deep FIFOs are
     *  intentional: weight streams prefetch into URAM while
     *  upstream kernels compute. */
    int64_t max_fifo_depth = 65536;

    /** Use the exact occupancy recurrence for FIFO depths. */
    bool exact_occupancy = false;

    /** Skip die partitioning (single-SLR targets). */
    bool partition_dies = true;

    /** Die-partitioner knobs (strategy, ILP guards, imbalance
     *  weight). */
    partition::PartitionOptions partition;
};

/** Per-stage wall-clock seconds (Fig. 10c stages). */
struct StageTimes
{
    std::vector<std::pair<std::string, double>> stages;

    double total() const;
    double get(const std::string &name) const;
};

/** Everything the compiler produces. */
struct CompileResult
{
    dataflow::AcceleratorDesign design;
    std::vector<token::FifoSizingResult> sizing; ///< per group
    std::vector<partition::PartitionResult> partitions;
    partition::MemoryAllocation memory;
    std::unique_ptr<ir::Module> module;
    hls::GeneratedCode code;
    StageTimes times;

    /** The equalization strategy actually used. */
    token::Equalization used_equalization =
        token::Equalization::Normal;

    /** Linalg pass statistics. */
    int64_t elementwise_fused = 0;
    int64_t unit_dims_folded = 0;
    int64_t fills_fused = 0;

    /** Dataflow pass statistics. */
    dataflow::FoldStats fold_stats;
    int64_t vectorized_components = 0;
    int64_t clamped_fifos = 0;

    /** Inter-die channel crossings across all partitioned
     *  groups. */
    int64_t totalCrossings() const;
};

/** Mutable state threaded through the stage pipeline. The graph
 *  is consumed (mutated) by the Linalg stages; tile_configs bridge
 *  tiling and fusion; everything user-visible accumulates in
 *  result. */
struct StageContext
{
    StageContext(linalg::Graph g, const hls::FpgaPlatform &p,
                 const CompileOptions &o)
        : graph(std::move(g)), platform(p), options(o)
    {}

    linalg::Graph graph;
    const hls::FpgaPlatform &platform;
    const CompileOptions &options;
    std::map<int64_t, dse::TileConfig> tile_configs;
    CompileResult result;
};

/** An ordered, reorderable list of named compile stages. run()
 *  executes them in order, recording per-stage wall clock under
 *  each stage's name (the StageTimes surface). */
class Pipeline
{
  public:
    using StageFn = std::function<void(StageContext &)>;

    struct Stage
    {
        std::string name;
        StageFn run;
    };

    /** Append a stage. Names must be unique. */
    Pipeline &add(std::string name, StageFn fn);

    /** Insert a stage immediately before @p anchor (fatal when
     *  the anchor is absent). */
    Pipeline &insertBefore(const std::string &anchor,
                           std::string name, StageFn fn);

    /** Drop a stage; returns false when absent. */
    bool remove(const std::string &name);

    /** Index of @p name, -1 when absent. */
    int64_t find(const std::string &name) const;

    const std::vector<Stage> &stages() const { return stages_; }

    /** Run every stage in order on @p ctx. */
    void run(StageContext &ctx) const;

  private:
    std::vector<Stage> stages_;
};

/** The default stage order: Linalg_Opt, Linalg_Tiling,
 *  Kernel_Fusion, Dataflow_Opt, HLS_Opt, Die_Partition,
 *  Fifo_Sizing, Memory_Alloc, Bufferization, Code_Gen. */
Pipeline defaultPipeline();

/** Compile @p graph for @p platform through the default pipeline.
 *  The graph is consumed (mutated by the Linalg passes). */
CompileResult compile(linalg::Graph graph,
                      const hls::FpgaPlatform &platform,
                      const CompileOptions &options = {});

/** Compile through a caller-assembled pipeline (stage reorder /
 *  ablation experiments). */
CompileResult compileWith(const Pipeline &pipeline,
                          linalg::Graph graph,
                          const hls::FpgaPlatform &platform,
                          const CompileOptions &options = {});

} // namespace compiler
} // namespace streamtensor

#endif // STREAMTENSOR_COMPILER_COMPILER_H
