/**
 * @file
 * The StreamTensor compiler facade: runs the full pipeline of
 * paper Fig. 4 — Linalg optimization, Linalg tiling, Linalg to
 * dataflow + kernel fusion, dataflow optimization, resource
 * allocation (FIFO sizing LP, die partitioning, memory
 * allocation), bufferization, and code generation — recording
 * per-stage wall clock for the Fig. 10c breakdown.
 */

#ifndef STREAMTENSOR_COMPILER_COMPILER_H
#define STREAMTENSOR_COMPILER_COMPILER_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dataflow/bufferize.h"
#include "dataflow/fusion_apply.h"
#include "dataflow/passes.h"
#include "dse/tiling_space.h"
#include "hls/codegen.h"
#include "hls/platform.h"
#include "hls/profiling.h"
#include "partition/die_partition.h"
#include "partition/memory_alloc.h"
#include "token/fifo_sizing.h"

namespace streamtensor {
namespace compiler {

/** User-visible compiler options. */
struct CompileOptions
{
    dse::TilingOptions tiling;

    /** Max on-chip bytes per fused group; <= 0 means "use the
     *  platform's on-chip memory". */
    int64_t c_max = 0;

    /** FIFO sizing strategy; Auto switches to Conservative when
     *  the fused design's on-chip pressure crosses
     *  conservative_threshold (the paper's Llama case, §6.2). */
    token::Equalization equalization = token::Equalization::Normal;
    bool auto_conservative = true;
    double conservative_threshold = 0.40;

    /** Initial cap on generated FIFO depths; the compiler lowers
     *  it further (reduce_stream_depth) whenever the memory
     *  allocator reports an over-budget design. Deep FIFOs are
     *  intentional: weight streams prefetch into URAM while
     *  upstream kernels compute. */
    int64_t max_fifo_depth = 65536;

    /** Use the exact occupancy recurrence for FIFO depths. */
    bool exact_occupancy = false;

    /** Skip die partitioning (single-SLR targets). */
    bool partition_dies = true;
};

/** Per-stage wall-clock seconds (Fig. 10c stages). */
struct StageTimes
{
    std::vector<std::pair<std::string, double>> stages;

    double total() const;
    double get(const std::string &name) const;
};

/** Everything the compiler produces. */
struct CompileResult
{
    dataflow::AcceleratorDesign design;
    std::vector<token::FifoSizingResult> sizing; ///< per group
    std::vector<partition::PartitionResult> partitions;
    partition::MemoryAllocation memory;
    std::unique_ptr<ir::Module> module;
    hls::GeneratedCode code;
    StageTimes times;

    /** The equalization strategy actually used. */
    token::Equalization used_equalization =
        token::Equalization::Normal;

    /** Linalg pass statistics. */
    int64_t elementwise_fused = 0;
    int64_t unit_dims_folded = 0;
    int64_t fills_fused = 0;

    /** Dataflow pass statistics. */
    dataflow::FoldStats fold_stats;
    int64_t vectorized_components = 0;
    int64_t clamped_fifos = 0;
};

/** Compile @p graph for @p platform. The graph is consumed
 *  (mutated by the Linalg passes). */
CompileResult compile(linalg::Graph graph,
                      const hls::FpgaPlatform &platform,
                      const CompileOptions &options = {});

} // namespace compiler
} // namespace streamtensor

#endif // STREAMTENSOR_COMPILER_COMPILER_H
