#include "compiler/compiler.h"

#include <algorithm>

#include "ir/verifier.h"
#include "linalg/passes.h"
#include "support/error.h"
#include "support/flat_index.h"
#include "support/logging.h"
#include "support/stopwatch.h"

namespace streamtensor {
namespace compiler {

double
StageTimes::total() const
{
    double t = 0.0;
    for (const auto &[name, seconds] : stages)
        t += seconds;
    return t;
}

double
StageTimes::get(const std::string &name) const
{
    for (const auto &[stage, seconds] : stages)
        if (stage == name)
            return seconds;
    return 0.0;
}

int64_t
CompileResult::totalCrossings() const
{
    int64_t crossings = 0;
    for (const auto &p : partitions)
        crossings += p.crossings;
    return crossings;
}

Pipeline &
Pipeline::add(std::string name, StageFn fn)
{
    ST_CHECK(find(name) < 0,
             "pipeline stage names must be unique: " + name);
    stages_.push_back({std::move(name), std::move(fn)});
    return *this;
}

Pipeline &
Pipeline::insertBefore(const std::string &anchor, std::string name,
                       StageFn fn)
{
    ST_CHECK(find(name) < 0,
             "pipeline stage names must be unique: " + name);
    int64_t pos = find(anchor);
    ST_CHECK(pos >= 0, "no pipeline stage named " + anchor);
    stages_.insert(stages_.begin() + pos,
                   {std::move(name), std::move(fn)});
    return *this;
}

bool
Pipeline::remove(const std::string &name)
{
    int64_t pos = find(name);
    if (pos < 0)
        return false;
    stages_.erase(stages_.begin() + pos);
    return true;
}

int64_t
Pipeline::find(const std::string &name) const
{
    for (size_t i = 0; i < stages_.size(); ++i)
        if (stages_[i].name == name)
            return static_cast<int64_t>(i);
    return -1;
}

void
Pipeline::run(StageContext &ctx) const
{
    Stopwatch watch;
    for (const Stage &stage : stages_) {
        stage.run(ctx);
        ctx.result.times.stages.emplace_back(
            stage.name, watch.elapsedSeconds());
        watch.restart();
    }
}

namespace {

// --- Linalg optimization (elementwise fusion, unit-dim folding,
// fill fusion).
void
stageLinalgOpt(StageContext &ctx)
{
    ctx.result.elementwise_fused =
        linalg::fuseElementwiseOps(ctx.graph);
    ctx.result.fills_fused = linalg::fuseFill(ctx.graph);
    ctx.result.unit_dims_folded =
        linalg::foldUnitExtentDims(ctx.graph);
}

// --- Linalg tiling space exploration.
void
stageLinalgTiling(StageContext &ctx)
{
    ctx.tile_configs =
        dse::exploreTiling(ctx.graph, ctx.options.tiling);
}

// --- Linalg to dataflow conversion + kernel fusion (Algorithm 1
// inside Algorithm 2).
void
stageKernelFusion(StageContext &ctx)
{
    int64_t c_max = ctx.options.c_max > 0
                        ? ctx.options.c_max
                        : ctx.platform.onChipBytes();
    ctx.result.design = dataflow::buildAccelerator(
        ctx.graph, ctx.tile_configs, c_max);
}

// --- Dataflow optimization: itensor folding + vectorization.
void
stageDataflowOpt(StageContext &ctx)
{
    ctx.result.fold_stats =
        dataflow::foldITensors(ctx.result.design.components);
    ctx.result.vectorized_components =
        dataflow::vectorizeITensors(ctx.result.design.components);
}

// --- Vendor profiling (HLS model) feeding resource alloc.
void
stageHlsOpt(StageContext &ctx)
{
    hls::profileComponents(ctx.result.design.components,
                           ctx.platform);
}

// --- Die partitioning. Runs *before* FIFO sizing so placement
// feeds the cost model: crossing channels get the platform's
// inter-die link latency / II penalty stamped on them, which the
// sizing LP prices and the simulators execute.
void
stageDiePartition(StageContext &ctx)
{
    if (!ctx.options.partition_dies)
        return;
    dataflow::ComponentGraph &cg = ctx.result.design.components;
    for (int64_t group = 0; group < cg.numGroups(); ++group) {
        ctx.result.partitions.push_back(partition::partitionGroup(
            cg, group, ctx.platform, ctx.options.partition));
    }
}

// --- FIFO sizing: equalization choice + per-group LP, pricing
// crossing edges with the inter-die link cost so no-stall depths
// absorb the link delay.
void
stageFifoSizing(StageContext &ctx)
{
    const CompileOptions &options = ctx.options;
    CompileResult &result = ctx.result;
    token::Equalization eq = options.equalization;
    if (options.auto_conservative) {
        double pressure =
            static_cast<double>(
                result.design.fusedIntermediateBytes() +
                result.design.components.totalLocalBufferBytes()) /
            static_cast<double>(ctx.platform.onChipBytes());
        if (pressure > options.conservative_threshold) {
            eq = token::Equalization::Conservative;
            inform("memory pressure " + formatFixed(pressure) +
                   " > threshold; using conservative FIFO sizing");
        }
    }
    result.used_equalization = eq;

    dataflow::ComponentGraph &cg = result.design.components;
    for (int64_t group = 0; group < cg.numGroups(); ++group) {
        token::FifoSizingProblem problem;
        auto members = cg.groupComponents(group);
        // Sparse component id -> LP node: the shared dense-remap
        // helper (node ids are assigned in member order below, so
        // position == node id).
        support::FlatIndex dense =
            support::FlatIndex::positionsOf(members);
        // Node-level II penalties, the same max-over-channels rule
        // the simulators apply in buildGroupSpec: a crossing
        // endpoint paces slower on every edge it touches,
        // including co-located and folded ones.
        std::vector<double> ii_penalty(members.size(), 0.0);
        for (int64_t ch_id : cg.groupChannels(group)) {
            const dataflow::Channel &ch = cg.channel(ch_id);
            if (ch.link_ii_penalty <= 0.0)
                continue;
            for (int64_t endpoint : {ch.src, ch.dst}) {
                double &p = ii_penalty[dense.at(endpoint)];
                p = std::max(p, ch.link_ii_penalty);
            }
        }
        for (size_t i = 0; i < members.size(); ++i) {
            const dataflow::Component &c =
                cg.component(members[i]);
            token::NodeTiming timing{c.initial_delay,
                                     c.total_cycles,
                                     c.ingest_cycles};
            timing.ii_penalty = ii_penalty[i];
            problem.addNode(timing);
        }
        std::vector<int64_t> edge_channels;
        for (int64_t ch_id : cg.groupChannels(group)) {
            const dataflow::Channel &ch = cg.channel(ch_id);
            if (ch.folded)
                continue;
            problem.addEdge(dense.at(ch.src), dense.at(ch.dst),
                            ch.tokens, ch.link_latency);
            edge_channels.push_back(ch_id);
        }
        token::FifoSizingOptions sizing_options;
        sizing_options.equalization = eq;
        sizing_options.exact_occupancy = options.exact_occupancy;
        token::FifoSizingResult sized =
            token::sizeFifos(problem, sizing_options);
        for (size_t e = 0; e < edge_channels.size(); ++e) {
            dataflow::Channel &ch =
                cg.channel(edge_channels[e]);
            ch.depth = sized.depths[e];
            // A converter re-emits from its ping-pong banks, so
            // back-pressure stalls its emission loop without any
            // cascade: its output FIFO only needs the consumer's
            // burst (restored by reduceStreamDepth below).
            if (cg.component(ch.src).kind ==
                dataflow::ComponentKind::Converter) {
                ch.depth = std::min<int64_t>(ch.depth, 4);
            }
        }
        result.sizing.push_back(std::move(sized));
    }
}

// --- Memory allocation, guarding resources: when the LP's
// no-stall depths exceed the on-chip budget, progressively tighten
// the depth cap (the reduce_stream_depth pass), trading stalls for
// memory.
void
stageMemoryAlloc(StageContext &ctx)
{
    dataflow::ComponentGraph &cg = ctx.result.design.components;
    int64_t depth_cap = ctx.options.max_fifo_depth;
    while (true) {
        ctx.result.clamped_fifos =
            dataflow::reduceStreamDepth(cg, depth_cap);
        ctx.result.memory =
            partition::allocateMemory(cg, ctx.platform);
        if (ctx.result.memory.feasible || depth_cap <= 4)
            break;
        depth_cap = std::max<int64_t>(depth_cap / 4, 4);
        inform("FIFO memory over budget; reducing depth cap to " +
               std::to_string(depth_cap));
    }
}

// --- Bufferization: lower to stream-level IR and verify.
void
stageBufferization(StageContext &ctx)
{
    ctx.result.module =
        dataflow::bufferize(ctx.result.design.components);
    ir::VerifyResult verify = ir::verifyModule(*ctx.result.module);
    if (!verify.ok())
        ST_PANIC("bufferized module failed verification:\n" +
                 verify.str());
}

// --- Code generation: HLS C++, host runtime, connectivity.
void
stageCodeGen(StageContext &ctx)
{
    ctx.result.code =
        hls::generateCode(ctx.result.design.components);
}

} // namespace

Pipeline
defaultPipeline()
{
    Pipeline p;
    p.add("Linalg_Opt", stageLinalgOpt)
        .add("Linalg_Tiling", stageLinalgTiling)
        .add("Kernel_Fusion", stageKernelFusion)
        .add("Dataflow_Opt", stageDataflowOpt)
        .add("HLS_Opt", stageHlsOpt)
        .add("Die_Partition", stageDiePartition)
        .add("Fifo_Sizing", stageFifoSizing)
        .add("Memory_Alloc", stageMemoryAlloc)
        .add("Bufferization", stageBufferization)
        .add("Code_Gen", stageCodeGen);
    return p;
}

CompileResult
compile(linalg::Graph graph, const hls::FpgaPlatform &platform,
        const CompileOptions &options)
{
    return compileWith(defaultPipeline(), std::move(graph),
                       platform, options);
}

CompileResult
compileWith(const Pipeline &pipeline, linalg::Graph graph,
            const hls::FpgaPlatform &platform,
            const CompileOptions &options)
{
    StageContext ctx(std::move(graph), platform, options);
    pipeline.run(ctx);
    return std::move(ctx.result);
}

} // namespace compiler
} // namespace streamtensor
