#include "compiler/compiler.h"

#include <algorithm>

#include "ir/verifier.h"
#include "linalg/passes.h"
#include "support/error.h"
#include "support/flat_index.h"
#include "support/logging.h"
#include "support/stopwatch.h"

namespace streamtensor {
namespace compiler {

double
StageTimes::total() const
{
    double t = 0.0;
    for (const auto &[name, seconds] : stages)
        t += seconds;
    return t;
}

double
StageTimes::get(const std::string &name) const
{
    for (const auto &[stage, seconds] : stages)
        if (stage == name)
            return seconds;
    return 0.0;
}

CompileResult
compile(linalg::Graph graph, const hls::FpgaPlatform &platform,
        const CompileOptions &options)
{
    CompileResult result;
    Stopwatch watch;
    auto record = [&](const std::string &stage) {
        result.times.stages.emplace_back(stage,
                                         watch.elapsedSeconds());
        watch.restart();
    };

    // --- Linalg optimization (elementwise fusion, unit-dim
    // folding, fill fusion).
    result.elementwise_fused = linalg::fuseElementwiseOps(graph);
    result.fills_fused = linalg::fuseFill(graph);
    result.unit_dims_folded = linalg::foldUnitExtentDims(graph);
    record("Linalg_Opt");

    // --- Linalg tiling space exploration.
    auto tile_configs = dse::exploreTiling(graph, options.tiling);
    record("Linalg_Tiling");

    // --- Linalg to dataflow conversion + kernel fusion
    // (Algorithm 1 inside Algorithm 2).
    int64_t c_max = options.c_max > 0 ? options.c_max
                                      : platform.onChipBytes();
    result.design = dataflow::buildAccelerator(graph, tile_configs,
                                               c_max);
    record("Kernel_Fusion");

    // --- Dataflow optimization: itensor folding + vectorization.
    result.fold_stats = dataflow::foldITensors(
        result.design.components);
    result.vectorized_components = dataflow::vectorizeITensors(
        result.design.components);
    record("Dataflow_Opt");

    // --- Vendor profiling (HLS model) feeding resource alloc.
    hls::profileComponents(result.design.components, platform);
    record("HLS_Opt");

    // --- Resource allocation: equalization choice, per-group FIFO
    // sizing LP, die partitioning, memory allocation.
    token::Equalization eq = options.equalization;
    if (options.auto_conservative) {
        double pressure =
            static_cast<double>(
                result.design.fusedIntermediateBytes() +
                result.design.components.totalLocalBufferBytes()) /
            static_cast<double>(platform.onChipBytes());
        if (pressure > options.conservative_threshold) {
            eq = token::Equalization::Conservative;
            inform("memory pressure " + std::to_string(pressure) +
                   " > threshold; using conservative FIFO sizing");
        }
    }
    result.used_equalization = eq;

    dataflow::ComponentGraph &cg = result.design.components;
    for (int64_t group = 0; group < cg.numGroups(); ++group) {
        token::FifoSizingProblem problem;
        auto members = cg.groupComponents(group);
        // Sparse component id -> LP node: sorted-vector flat map,
        // same migration die_partition and sim already got.
        support::FlatIndex dense;
        dense.reserve(members.size());
        for (int64_t id : members) {
            const dataflow::Component &c = cg.component(id);
            dense.add(id, problem.addNode({c.initial_delay,
                                           c.total_cycles,
                                           c.ingest_cycles}));
        }
        dense.seal();
        std::vector<int64_t> edge_channels;
        for (int64_t ch_id : cg.groupChannels(group)) {
            const dataflow::Channel &ch = cg.channel(ch_id);
            if (ch.folded)
                continue;
            problem.addEdge(dense.at(ch.src), dense.at(ch.dst),
                            ch.tokens);
            edge_channels.push_back(ch_id);
        }
        token::FifoSizingOptions sizing_options;
        sizing_options.equalization = eq;
        sizing_options.exact_occupancy = options.exact_occupancy;
        token::FifoSizingResult sized =
            token::sizeFifos(problem, sizing_options);
        for (size_t e = 0; e < edge_channels.size(); ++e) {
            dataflow::Channel &ch =
                cg.channel(edge_channels[e]);
            ch.depth = sized.depths[e];
            // A converter re-emits from its ping-pong banks, so
            // back-pressure stalls its emission loop without any
            // cascade: its output FIFO only needs the consumer's
            // burst (restored by reduceStreamDepth below).
            if (cg.component(ch.src).kind ==
                dataflow::ComponentKind::Converter) {
                ch.depth = std::min<int64_t>(ch.depth, 4);
            }
        }
        result.sizing.push_back(std::move(sized));
    }

    // Guard resources: when the LP's no-stall depths exceed the
    // on-chip budget, progressively tighten the depth cap (the
    // reduce_stream_depth pass), trading stalls for memory.
    int64_t depth_cap = options.max_fifo_depth;
    while (true) {
        result.clamped_fifos =
            dataflow::reduceStreamDepth(cg, depth_cap);
        result.memory = partition::allocateMemory(cg, platform);
        if (result.memory.feasible || depth_cap <= 4)
            break;
        depth_cap = std::max<int64_t>(depth_cap / 4, 4);
        inform("FIFO memory over budget; reducing depth cap to " +
               std::to_string(depth_cap));
    }

    if (options.partition_dies) {
        for (int64_t group = 0; group < cg.numGroups(); ++group) {
            result.partitions.push_back(
                partition::partitionGroup(cg, group, platform));
        }
    }
    record("Resource_Alloc");

    // --- Bufferization: lower to stream-level IR and verify.
    result.module = dataflow::bufferize(cg);
    ir::VerifyResult verify = ir::verifyModule(*result.module);
    if (!verify.ok())
        ST_PANIC("bufferized module failed verification:\n" +
                 verify.str());
    record("Bufferization");

    // --- Code generation: HLS C++, host runtime, connectivity.
    result.code = hls::generateCode(cg);
    record("Code_Gen");
    return result;
}

} // namespace compiler
} // namespace streamtensor
