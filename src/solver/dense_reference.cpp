#include "solver/dense_reference.h"

#include <cmath>
#include <limits>

#include "support/error.h"

namespace streamtensor {
namespace solver {

namespace {

constexpr double kEps = 1e-9;

/**
 * Dense simplex tableau. Columns: structural vars, slack vars,
 * artificial vars, RHS. Runs Bland's rule pivoting to guarantee
 * termination. This is the pre-sparse-rewrite implementation kept
 * as a correctness oracle.
 */
class DenseTableau
{
  public:
    DenseTableau(const LpProblem &problem)
        : n_(problem.numVars()), m_(problem.numConstraints())
    {
        // Count slacks (one per inequality) and artificials.
        num_slack_ = 0;
        for (const auto &c : problem.constraints())
            if (c.rel != Relation::EQ)
                ++num_slack_;

        // Normalize rows to b >= 0, then decide artificials: a row
        // needs an artificial unless its slack can serve as the
        // initial basic variable (slack coefficient +1).
        rows_.assign(m_, {});
        rhs_.assign(m_, 0.0);
        basis_.assign(m_, -1);

        std::vector<double> slack_sign(m_, 0.0);
        std::vector<int64_t> slack_col(m_, -1);
        int64_t next_slack = 0;
        num_art_ = 0;
        for (int64_t i = 0; i < m_; ++i) {
            const SparseRow &c = problem.constraint(i);
            double sign = c.rhs < 0 ? -1.0 : 1.0;
            rows_[i].assign(n_, 0.0);
            for (int64_t k = 0; k < c.nnz(); ++k)
                rows_[i][c.index[k]] += sign * c.value[k];
            rhs_[i] = c.rhs * sign;
            Relation rel = c.rel;
            if (sign < 0) {
                if (rel == Relation::LE)
                    rel = Relation::GE;
                else if (rel == Relation::GE)
                    rel = Relation::LE;
            }
            if (rel != Relation::EQ) {
                slack_col[i] = n_ + next_slack++;
                slack_sign[i] = rel == Relation::LE ? 1.0 : -1.0;
            }
            if (rel == Relation::EQ || slack_sign[i] < 0)
                ++num_art_;
        }

        total_ = n_ + num_slack_ + num_art_;
        for (int64_t i = 0; i < m_; ++i)
            rows_[i].resize(total_, 0.0);

        int64_t next_art = 0;
        for (int64_t i = 0; i < m_; ++i) {
            if (slack_col[i] >= 0)
                rows_[i][slack_col[i]] = slack_sign[i];
            if (slack_col[i] >= 0 && slack_sign[i] > 0) {
                basis_[i] = slack_col[i];
            } else {
                int64_t art = n_ + num_slack_ + next_art++;
                rows_[i][art] = 1.0;
                basis_[i] = art;
            }
        }
    }

    /** Minimise sum of artificial variables. */
    bool
    phase1()
    {
        if (num_art_ == 0)
            return true;
        // cost row: sum of artificial columns.
        cost_.assign(total_, 0.0);
        cost_rhs_ = 0.0;
        for (int64_t a = n_ + num_slack_; a < total_; ++a)
            cost_[a] = 1.0;
        priceOut();
        iterate();
        // Scale-aware feasibility test: long pivot chains on
        // large right-hand sides accumulate rounding error.
        double scale = 1.0;
        for (int64_t i = 0; i < m_; ++i)
            scale = std::max(scale, std::fabs(rhs_[i]));
        if (cost_rhs_ < -1e-7 * scale)
            return false; // sum of artificials > 0 -> infeasible.
        // Pivot remaining artificial basics out where possible.
        for (int64_t i = 0; i < m_; ++i) {
            if (basis_[i] < n_ + num_slack_)
                continue;
            int64_t col = -1;
            for (int64_t j = 0; j < n_ + num_slack_; ++j) {
                if (std::fabs(rows_[i][j]) > kEps) {
                    col = j;
                    break;
                }
            }
            if (col >= 0)
                pivot(i, col);
            // Else the row is redundant; the artificial stays basic
            // at value 0, which is harmless.
        }
        return true;
    }

    /** Minimise the real objective. Returns false when unbounded. */
    bool
    phase2(const std::vector<double> &objective)
    {
        cost_.assign(total_, 0.0);
        cost_rhs_ = 0.0;
        for (int64_t j = 0; j < n_; ++j)
            cost_[j] = objective[j];
        // Forbid re-entry of artificials.
        for (int64_t a = n_ + num_slack_; a < total_; ++a)
            cost_[a] = std::numeric_limits<double>::quiet_NaN();
        blocked_from_ = n_ + num_slack_;
        priceOut();
        return iterate();
    }

    /** Extract structural variable values. */
    std::vector<double>
    solution() const
    {
        std::vector<double> x(n_, 0.0);
        for (int64_t i = 0; i < m_; ++i)
            if (basis_[i] < n_)
                x[basis_[i]] = rhs_[i];
        return x;
    }

  private:
    /** Make the cost row consistent with the current basis. */
    void
    priceOut()
    {
        for (int64_t i = 0; i < m_; ++i) {
            int64_t b = basis_[i];
            double c = columnCost(b);
            if (std::fabs(c) < kEps)
                continue;
            for (int64_t j = 0; j < total_; ++j)
                cost_[j] = columnCost(j) - c * rows_[i][j];
            cost_rhs_ -= c * rhs_[i];
        }
        // Clean NaN markers introduced by blocked columns.
        for (int64_t j = 0; j < total_; ++j)
            if (std::isnan(cost_[j]))
                cost_[j] = 0.0;
    }

    double
    columnCost(int64_t j) const
    {
        double c = cost_[j];
        return std::isnan(c) ? 0.0 : c;
    }

    /** Bland's-rule simplex loop. Returns false when unbounded. */
    bool
    iterate()
    {
        while (true) {
            // Entering: lowest-index column with negative cost.
            int64_t enter = -1;
            for (int64_t j = 0; j < total_; ++j) {
                if (j >= blocked_from_)
                    break;
                if (cost_[j] < -kEps) {
                    enter = j;
                    break;
                }
            }
            if (enter < 0)
                return true;
            // Leaving: min ratio, ties by lowest basis index.
            int64_t leave = -1;
            double best = 0.0;
            for (int64_t i = 0; i < m_; ++i) {
                if (rows_[i][enter] <= kEps)
                    continue;
                double ratio = rhs_[i] / rows_[i][enter];
                if (leave < 0 || ratio < best - kEps ||
                    (ratio < best + kEps &&
                     basis_[i] < basis_[leave])) {
                    leave = i;
                    best = ratio;
                }
            }
            if (leave < 0)
                return false; // unbounded
            pivot(leave, enter);
        }
    }

    void
    pivot(int64_t row, int64_t col)
    {
        double p = rows_[row][col];
        ST_ASSERT(std::fabs(p) > kEps, "zero pivot");
        for (int64_t j = 0; j < total_; ++j)
            rows_[row][j] /= p;
        rhs_[row] /= p;
        for (int64_t i = 0; i < m_; ++i) {
            if (i == row)
                continue;
            double f = rows_[i][col];
            if (std::fabs(f) < kEps)
                continue;
            for (int64_t j = 0; j < total_; ++j)
                rows_[i][j] -= f * rows_[row][j];
            rhs_[i] -= f * rhs_[row];
            if (rhs_[i] < 0 && rhs_[i] > -kEps)
                rhs_[i] = 0;
        }
        double f = cost_[col];
        if (!std::isnan(f) && std::fabs(f) > kEps) {
            for (int64_t j = 0; j < total_; ++j) {
                if (!std::isnan(cost_[j]))
                    cost_[j] -= f * rows_[row][j];
            }
            cost_rhs_ -= f * rhs_[row];
        }
        basis_[row] = col;
    }

    int64_t n_, m_;
    int64_t num_slack_ = 0, num_art_ = 0, total_ = 0;
    int64_t blocked_from_ = std::numeric_limits<int64_t>::max();
    std::vector<std::vector<double>> rows_;
    std::vector<double> rhs_;
    std::vector<double> cost_;
    double cost_rhs_ = 0.0;
    std::vector<int64_t> basis_;
};

} // namespace

LpSolution
solveLpDenseReference(const LpProblem &problem)
{
    LpSolution solution;
    DenseTableau tab(problem);
    if (!tab.phase1()) {
        solution.status = LpStatus::Infeasible;
        return solution;
    }
    if (!tab.phase2(problem.objective())) {
        solution.status = LpStatus::Unbounded;
        return solution;
    }
    solution.status = LpStatus::Optimal;
    solution.values = tab.solution();
    solution.objective = 0.0;
    for (int64_t j = 0; j < problem.numVars(); ++j)
        solution.objective += problem.objective()[j] *
                              solution.values[j];
    return solution;
}

} // namespace solver
} // namespace streamtensor
