/**
 * @file
 * A sparse two-phase simplex linear-programming solver.
 *
 * StreamTensor needs exact LP optima for the FIFO sizing problem
 * (paper §5.3.4, Eq. 3-5) and the die-partitioning relaxations.
 * Both instance families are structurally sparse: one variable per
 * dataflow edge, a handful of nonzeros per path or linearisation
 * row. Constraints are therefore stored as index/value pairs
 * end-to-end and the tableau exploits column sparsity, so solver
 * cost tracks the nonzero count rather than the variable-count x
 * constraint-count area.
 *
 * All variables are non-negative; constraints may be <=, >=, or ==.
 * The objective is always minimised. Pricing is Dantzig
 * (most-negative reduced cost) with a stall-detection fallback to
 * Bland's rule, so termination stays guaranteed on degenerate
 * instances. Solves can be warm-started from a previous basis,
 * which branch-and-bound uses to turn child-node solves into a few
 * dual repair pivots.
 */

#ifndef STREAMTENSOR_SOLVER_LP_H
#define STREAMTENSOR_SOLVER_LP_H

#include <cstdint>
#include <string>
#include <vector>

namespace streamtensor {
namespace solver {

/** Constraint relation. */
enum class Relation { LE, GE, EQ };

/**
 * One sparse constraint row: sum value[k] * x[index[k]] (rel) rhs.
 * Indices are sorted and unique; duplicate variable mentions passed
 * to the builders accumulate into a single entry (see
 * LpProblem::addSparseConstraint).
 */
struct SparseRow
{
    std::vector<int64_t> index;
    std::vector<double> value;
    Relation rel = Relation::LE;
    double rhs = 0.0;

    int64_t nnz() const { return static_cast<int64_t>(index.size()); }

    /** Coefficient of @p var; 0 when absent from the row. */
    double coeff(int64_t var) const;

    /** Row activity coeffs . x under the assignment @p x. */
    double dot(const std::vector<double> &x) const;
};

/** Outcome of an LP solve. */
enum class LpStatus { Optimal, Infeasible, Unbounded };

/** Printable status name. */
std::string lpStatusName(LpStatus status);

/**
 * A basis snapshot keyed by stable column ids: structural variable
 * j maps to id j, the slack of constraint row i maps to
 * numVars + i. Entries of -1 carry no information (an artificial
 * was basic in that row). Ids stay valid for any problem that
 * extends the producing one with additional trailing constraints —
 * the property branch-and-bound warm starts rely on.
 */
struct SimplexBasis
{
    std::vector<int64_t> basic;

    bool empty() const { return basic.empty(); }
};

/** A linear program: minimise objective . x subject to constraints,
 *  x >= 0. Constraints are held sparsely; the dense addConstraint
 *  is a thin adapter that drops zero coefficients on entry. */
class LpProblem
{
  public:
    explicit LpProblem(int64_t num_vars);

    int64_t numVars() const { return num_vars_; }
    int64_t numConstraints() const
    {
        return static_cast<int64_t>(constraints_.size());
    }

    /** Set the objective coefficient of variable @p var. */
    void setObjective(int64_t var, double coeff);
    const std::vector<double> &objective() const { return objective_; }

    /** Add a dense constraint row (adapter: zeros are dropped). */
    void addConstraint(const std::vector<double> &coeffs, Relation rel,
                       double rhs);

    /**
     * Add a sparse constraint: sum coeffs[i]*x[vars[i]] rel rhs.
     * Repeated indices in @p vars accumulate: addSparseConstraint
     * ({v, v}, {a, b}, ...) contributes a single (a + b) coefficient
     * on x[v], exactly as if the mentions had been summed densely.
     */
    void addSparseConstraint(const std::vector<int64_t> &vars,
                             const std::vector<double> &coeffs,
                             Relation rel, double rhs);

    /** Add the single-variable bound x[var] rel rhs. */
    void addBound(int64_t var, Relation rel, double rhs);

    /** Remove the most recently added constraint (branch-and-bound
     *  push/pop of branching bounds). */
    void popConstraint();

    const SparseRow &constraint(int64_t i) const;
    const std::vector<SparseRow> &constraints() const
    {
        return constraints_;
    }

  private:
    int64_t num_vars_;
    std::vector<double> objective_;
    std::vector<SparseRow> constraints_;
};

/** LP solve result. */
struct LpSolution
{
    LpStatus status = LpStatus::Infeasible;
    double objective = 0.0;
    std::vector<double> values;

    /** Final basis (filled on Optimal); feed it back through
     *  LpOptions::warm_start to resume after adding constraints. */
    SimplexBasis basis;

    /** Simplex pivots performed (diagnostics). */
    int64_t pivots = 0;

    bool optimal() const { return status == LpStatus::Optimal; }
};

/** Solve-time knobs. */
struct LpOptions
{
    /** Start from this basis: it is crash-installed, then primal
     *  infeasibility from newly added constraints is repaired with
     *  dual simplex pivots. Falls back to a cold solve whenever the
     *  basis cannot be installed cleanly. */
    const SimplexBasis *warm_start = nullptr;

    /** Pivots without objective improvement before pricing drops
     *  from Dantzig to Bland's rule (anti-cycling guarantee). */
    int64_t stall_pivots = 64;
};

/**
 * Solve with two-phase sparse simplex. Dantzig pricing with a
 * Bland fallback after stall_pivots degenerate pivots, so it
 * cannot cycle. Suitable for the small/medium instances
 * StreamTensor generates.
 */
LpSolution solveLp(const LpProblem &problem,
                   const LpOptions &options = {});

} // namespace solver
} // namespace streamtensor

#endif // STREAMTENSOR_SOLVER_LP_H
