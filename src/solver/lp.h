/**
 * @file
 * A dense two-phase simplex linear-programming solver.
 *
 * StreamTensor needs exact LP optima for the FIFO sizing problem
 * (paper §5.3.4, Eq. 3-5) whose instances are small (one variable
 * per dataflow edge). All variables are non-negative; constraints
 * may be <=, >=, or ==. The objective is always minimised.
 */

#ifndef STREAMTENSOR_SOLVER_LP_H
#define STREAMTENSOR_SOLVER_LP_H

#include <cstdint>
#include <string>
#include <vector>

namespace streamtensor {
namespace solver {

/** Constraint relation. */
enum class Relation { LE, GE, EQ };

/** One linear constraint: coeffs . x (rel) rhs. */
struct Constraint
{
    std::vector<double> coeffs;
    Relation rel;
    double rhs;
};

/** Outcome of an LP solve. */
enum class LpStatus { Optimal, Infeasible, Unbounded };

/** Printable status name. */
std::string lpStatusName(LpStatus status);

/** A linear program: minimise objective . x subject to constraints,
 *  x >= 0. */
class LpProblem
{
  public:
    explicit LpProblem(int64_t num_vars);

    int64_t numVars() const { return num_vars_; }
    int64_t numConstraints() const
    {
        return static_cast<int64_t>(constraints_.size());
    }

    /** Set the objective coefficient of variable @p var. */
    void setObjective(int64_t var, double coeff);
    const std::vector<double> &objective() const { return objective_; }

    /** Add a dense constraint row. */
    void addConstraint(std::vector<double> coeffs, Relation rel,
                       double rhs);

    /** Add a sparse constraint: sum coeff[i]*x[vars[i]] rel rhs. */
    void addSparseConstraint(const std::vector<int64_t> &vars,
                             const std::vector<double> &coeffs,
                             Relation rel, double rhs);

    const std::vector<Constraint> &constraints() const
    {
        return constraints_;
    }

  private:
    int64_t num_vars_;
    std::vector<double> objective_;
    std::vector<Constraint> constraints_;
};

/** LP solve result. */
struct LpSolution
{
    LpStatus status = LpStatus::Infeasible;
    double objective = 0.0;
    std::vector<double> values;

    bool optimal() const { return status == LpStatus::Optimal; }
};

/**
 * Solve with two-phase dense simplex (Bland's rule, so it cannot
 * cycle). Suitable for the small/medium instances StreamTensor
 * generates.
 */
LpSolution solveLp(const LpProblem &problem);

} // namespace solver
} // namespace streamtensor

#endif // STREAMTENSOR_SOLVER_LP_H
