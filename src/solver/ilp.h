/**
 * @file
 * Integer linear programming via branch-and-bound on the simplex
 * relaxation. Used by the multi-die graph-partitioning problem
 * (paper §5.3, "Graph partitioning ... formulated and solved using
 * Integer Linear Programming").
 */

#ifndef STREAMTENSOR_SOLVER_ILP_H
#define STREAMTENSOR_SOLVER_ILP_H

#include <cstdint>
#include <vector>

#include "solver/lp.h"

namespace streamtensor {
namespace solver {

/** An ILP: an LP plus integrality flags and optional upper bounds. */
class IlpProblem
{
  public:
    explicit IlpProblem(int64_t num_vars);

    LpProblem &lp() { return lp_; }
    const LpProblem &lp() const { return lp_; }
    int64_t numVars() const { return lp_.numVars(); }

    /** Mark variable @p var integer-valued. */
    void setInteger(int64_t var);

    /** Mark variable @p var binary (integer in [0, 1]). */
    void setBinary(int64_t var);

    /** Add an upper bound x[var] <= bound. */
    void setUpperBound(int64_t var, double bound);

    const std::vector<bool> &integerVars() const { return integer_; }

  private:
    LpProblem lp_;
    std::vector<bool> integer_;
};

/** ILP solve result. */
struct IlpSolution
{
    LpStatus status = LpStatus::Infeasible;
    double objective = 0.0;
    std::vector<double> values;
    int64_t nodes_explored = 0;

    bool optimal() const { return status == LpStatus::Optimal; }
};

/**
 * Solve with depth-first branch-and-bound (most-fractional
 * branching). @p max_nodes caps the search; when hit, the best
 * incumbent found so far is returned (still marked Optimal if one
 * exists, since partitioning only needs a good feasible point).
 */
IlpSolution solveIlp(const IlpProblem &problem,
                     int64_t max_nodes = 200000);

} // namespace solver
} // namespace streamtensor

#endif // STREAMTENSOR_SOLVER_ILP_H
