/**
 * @file
 * Integer linear programming via branch-and-bound on the simplex
 * relaxation. Used by the multi-die graph-partitioning problem
 * (paper §5.3, "Graph partitioning ... formulated and solved using
 * Integer Linear Programming") and the ILP unroll allocator in the
 * DSE layer.
 *
 * Node solves are warm-started: each branch-and-bound node threads
 * its parent's optimal basis into the child LP, so most node
 * solves reduce to a handful of dual repair pivots instead of a
 * cold two-phase solve. Branching bounds are pushed and popped on
 * a single shared relaxation instead of copying the problem per
 * node.
 */

#ifndef STREAMTENSOR_SOLVER_ILP_H
#define STREAMTENSOR_SOLVER_ILP_H

#include <cstdint>
#include <limits>
#include <vector>

#include "solver/lp.h"

namespace streamtensor {
namespace solver {

/** An ILP: an LP plus integrality flags and optional upper bounds. */
class IlpProblem
{
  public:
    explicit IlpProblem(int64_t num_vars);

    LpProblem &lp() { return lp_; }
    const LpProblem &lp() const { return lp_; }
    int64_t numVars() const { return lp_.numVars(); }

    /** Mark variable @p var integer-valued. */
    void setInteger(int64_t var);

    /** Mark variable @p var binary (integer in [0, 1]). */
    void setBinary(int64_t var);

    /** Add an upper bound x[var] <= bound. */
    void setUpperBound(int64_t var, double bound);

    const std::vector<bool> &integerVars() const { return integer_; }

  private:
    LpProblem lp_;
    std::vector<bool> integer_;
};

/** ILP solve result. */
struct IlpSolution
{
    LpStatus status = LpStatus::Infeasible;
    double objective = 0.0;
    std::vector<double> values;
    int64_t nodes_explored = 0;

    /** Total simplex pivots across all node solves (diagnostics;
     *  warm starts shrink this dramatically). */
    int64_t lp_pivots = 0;

    bool optimal() const { return status == LpStatus::Optimal; }
};

/** Branch-and-bound knobs. */
struct IlpOptions
{
    /** Node cap; when hit, the best incumbent found so far is
     *  returned (still marked Optimal if one exists, since
     *  partitioning only needs a good feasible point). */
    int64_t max_nodes = 200000;

    /** Thread each parent node's optimal basis into its children
     *  (dual-repair warm starts). Disable to benchmark or debug
     *  against cold node solves. */
    bool warm_start = true;

    /** Objective cutoff: subtrees whose relaxation cannot beat
     *  this are pruned, and only strictly better integral points
     *  are accepted. Callers with a known feasible incumbent (die
     *  partitioning primes with the greedy assignment) pass its
     *  objective here; when nothing beats it the solve returns
     *  non-optimal and the caller keeps the incumbent. */
    double cutoff = std::numeric_limits<double>::infinity();
};

/**
 * Solve with depth-first branch-and-bound (most-fractional
 * branching) over a shared push/pop relaxation.
 */
IlpSolution solveIlp(const IlpProblem &problem,
                     const IlpOptions &options);

/** Convenience overload: default options with @p max_nodes. */
IlpSolution solveIlp(const IlpProblem &problem,
                     int64_t max_nodes = 200000);

} // namespace solver
} // namespace streamtensor

#endif // STREAMTENSOR_SOLVER_ILP_H
