/**
 * @file
 * The original dense two-phase tableau simplex, retained verbatim
 * as a differential-testing oracle for the sparse solver in
 * solver/lp.h. Bland's rule throughout, vector-of-vectors tableau,
 * no warm starts — slow but simple enough to trust. Not used on
 * any compile path.
 */

#ifndef STREAMTENSOR_SOLVER_DENSE_REFERENCE_H
#define STREAMTENSOR_SOLVER_DENSE_REFERENCE_H

#include "solver/lp.h"

namespace streamtensor {
namespace solver {

/** Solve @p problem with the dense reference simplex. The returned
 *  solution carries no basis (warm starts are unsupported). */
LpSolution solveLpDenseReference(const LpProblem &problem);

} // namespace solver
} // namespace streamtensor

#endif // STREAMTENSOR_SOLVER_DENSE_REFERENCE_H
