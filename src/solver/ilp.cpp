#include "solver/ilp.h"

#include <cmath>
#include <limits>

#include "support/error.h"

namespace streamtensor {
namespace solver {

namespace {

constexpr double kIntEps = 1e-6;

struct SearchState
{
    const IlpProblem *problem;
    double best_obj = std::numeric_limits<double>::infinity();
    std::vector<double> best_values;
    int64_t nodes = 0;
    int64_t max_nodes = 0;
    int64_t pivots = 0;
    bool warm_start = true;
};

/** Index of the most fractional integer variable, or -1. */
int64_t
pickBranchVar(const IlpProblem &problem,
              const std::vector<double> &x)
{
    int64_t best = -1;
    double best_frac = kIntEps;
    const auto &ints = problem.integerVars();
    for (int64_t j = 0; j < problem.numVars(); ++j) {
        if (!ints[j])
            continue;
        double f = x[j] - std::floor(x[j]);
        double dist = std::min(f, 1.0 - f);
        if (dist > best_frac) {
            best_frac = dist;
            best = j;
        }
    }
    return best;
}

/**
 * Depth-first search over a shared relaxation: branching bounds
 * are pushed before recursing and popped after, and each node
 * hands its optimal basis to both children so their solves start
 * as dual repairs of one appended bound row.
 */
void
branchAndBound(SearchState &state, LpProblem &relaxation,
               const SimplexBasis *parent_basis)
{
    if (state.nodes++ >= state.max_nodes)
        return;
    LpOptions lp_options;
    if (state.warm_start && parent_basis && !parent_basis->empty())
        lp_options.warm_start = parent_basis;
    LpSolution sol = solveLp(relaxation, lp_options);
    state.pivots += sol.pivots;
    if (lp_options.warm_start && !sol.optimal()) {
        // Never prune a subtree on a warm-started non-optimal
        // verdict alone; confirm with a cold solve.
        sol = solveLp(relaxation);
        state.pivots += sol.pivots;
    }
    if (!sol.optimal())
        return;
    if (sol.objective >= state.best_obj - 1e-9)
        return; // bound: cannot improve the incumbent.
    int64_t var = pickBranchVar(*state.problem, sol.values);
    if (var < 0) {
        // Integral solution.
        state.best_obj = sol.objective;
        state.best_values = sol.values;
        return;
    }
    double v = sol.values[var];
    SimplexBasis basis = std::move(sol.basis);
    // Down branch: x <= floor(v).
    relaxation.addBound(var, Relation::LE, std::floor(v));
    branchAndBound(state, relaxation, &basis);
    relaxation.popConstraint();
    // Up branch: x >= ceil(v).
    relaxation.addBound(var, Relation::GE, std::ceil(v));
    branchAndBound(state, relaxation, &basis);
    relaxation.popConstraint();
}

} // namespace

IlpProblem::IlpProblem(int64_t num_vars)
    : lp_(num_vars), integer_(num_vars, false)
{}

void
IlpProblem::setInteger(int64_t var)
{
    ST_ASSERT(var >= 0 && var < numVars(), "integer var range");
    integer_[var] = true;
}

void
IlpProblem::setBinary(int64_t var)
{
    setInteger(var);
    setUpperBound(var, 1.0);
}

void
IlpProblem::setUpperBound(int64_t var, double bound)
{
    lp_.addBound(var, Relation::LE, bound);
}

IlpSolution
solveIlp(const IlpProblem &problem, const IlpOptions &options)
{
    SearchState state;
    state.problem = &problem;
    state.max_nodes = options.max_nodes;
    state.warm_start = options.warm_start;
    state.best_obj = options.cutoff;
    LpProblem relaxation = problem.lp();
    branchAndBound(state, relaxation, nullptr);

    IlpSolution out;
    out.nodes_explored = state.nodes;
    out.lp_pivots = state.pivots;
    if (!state.best_values.empty()) {
        out.status = LpStatus::Optimal;
        out.objective = state.best_obj;
        out.values = std::move(state.best_values);
        // Snap near-integers exactly.
        const auto &ints = problem.integerVars();
        for (int64_t j = 0; j < problem.numVars(); ++j)
            if (ints[j])
                out.values[j] = std::round(out.values[j]);
    }
    return out;
}

IlpSolution
solveIlp(const IlpProblem &problem, int64_t max_nodes)
{
    IlpOptions options;
    options.max_nodes = max_nodes;
    return solveIlp(problem, options);
}

} // namespace solver
} // namespace streamtensor
