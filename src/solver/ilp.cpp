#include "solver/ilp.h"

#include <cmath>
#include <limits>

#include "support/error.h"

namespace streamtensor {
namespace solver {

namespace {

constexpr double kIntEps = 1e-6;

struct SearchState
{
    const IlpProblem *problem;
    double best_obj = std::numeric_limits<double>::infinity();
    std::vector<double> best_values;
    int64_t nodes = 0;
    int64_t max_nodes = 0;
};

/** Index of the most fractional integer variable, or -1. */
int64_t
pickBranchVar(const IlpProblem &problem,
              const std::vector<double> &x)
{
    int64_t best = -1;
    double best_frac = kIntEps;
    const auto &ints = problem.integerVars();
    for (int64_t j = 0; j < problem.numVars(); ++j) {
        if (!ints[j])
            continue;
        double f = x[j] - std::floor(x[j]);
        double dist = std::min(f, 1.0 - f);
        if (dist > best_frac) {
            best_frac = dist;
            best = j;
        }
    }
    return best;
}

void
branchAndBound(SearchState &state, LpProblem relaxation)
{
    if (state.nodes++ >= state.max_nodes)
        return;
    LpSolution sol = solveLp(relaxation);
    if (!sol.optimal())
        return;
    if (sol.objective >= state.best_obj - 1e-9)
        return; // bound: cannot improve the incumbent.
    int64_t var = pickBranchVar(*state.problem, sol.values);
    if (var < 0) {
        // Integral solution.
        state.best_obj = sol.objective;
        state.best_values = sol.values;
        return;
    }
    double v = sol.values[var];
    // Down branch: x <= floor(v).
    {
        LpProblem down = relaxation;
        std::vector<double> row(down.numVars(), 0.0);
        row[var] = 1.0;
        down.addConstraint(row, Relation::LE, std::floor(v));
        branchAndBound(state, std::move(down));
    }
    // Up branch: x >= ceil(v).
    {
        LpProblem up = relaxation;
        std::vector<double> row(up.numVars(), 0.0);
        row[var] = 1.0;
        up.addConstraint(row, Relation::GE, std::ceil(v));
        branchAndBound(state, std::move(up));
    }
}

} // namespace

IlpProblem::IlpProblem(int64_t num_vars)
    : lp_(num_vars), integer_(num_vars, false)
{}

void
IlpProblem::setInteger(int64_t var)
{
    ST_ASSERT(var >= 0 && var < numVars(), "integer var range");
    integer_[var] = true;
}

void
IlpProblem::setBinary(int64_t var)
{
    setInteger(var);
    setUpperBound(var, 1.0);
}

void
IlpProblem::setUpperBound(int64_t var, double bound)
{
    std::vector<double> row(numVars(), 0.0);
    row[var] = 1.0;
    lp_.addConstraint(std::move(row), Relation::LE, bound);
}

IlpSolution
solveIlp(const IlpProblem &problem, int64_t max_nodes)
{
    SearchState state;
    state.problem = &problem;
    state.max_nodes = max_nodes;
    branchAndBound(state, problem.lp());

    IlpSolution out;
    out.nodes_explored = state.nodes;
    if (!state.best_values.empty()) {
        out.status = LpStatus::Optimal;
        out.objective = state.best_obj;
        out.values = std::move(state.best_values);
        // Snap near-integers exactly.
        const auto &ints = problem.integerVars();
        for (int64_t j = 0; j < problem.numVars(); ++j)
            if (ints[j])
                out.values[j] = std::round(out.values[j]);
    }
    return out;
}

} // namespace solver
} // namespace streamtensor
