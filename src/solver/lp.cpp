#include "solver/lp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.h"
#include "support/logging.h"

namespace streamtensor {
namespace solver {

namespace {

constexpr double kEps = 1e-9;
constexpr double kPivotTol = 1e-7;

/**
 * Sparse simplex tableau.
 *
 * Storage is one contiguous row-major buffer: m_ rows of
 * stride_ = total_ + 1 doubles, the last entry of each row being
 * its right-hand side. Columns: structural vars, slack vars,
 * artificial vars.
 *
 * Alongside the buffer sits a column-nonzero structure: for every
 * column j, cols_[j] lists the rows that may hold a nonzero there
 * (a superset — entries that were eliminated to zero linger until
 * the list is consulted). The invariant "a(i, j) != 0 implies i in
 * cols_[j]" is maintained through pivoting by recording fill-in,
 * so the ratio test and row elimination touch only candidate rows
 * instead of the full column, and elimination touches only the
 * pivot row's nonzero columns instead of the full row.
 *
 * Pricing is Dantzig (most negative reduced cost); after
 * stall_pivots consecutive pivots without objective improvement it
 * falls back to Bland's rule (lowest eligible index, min-ratio
 * ties broken by lowest basis index), which cannot cycle. Any
 * strict improvement switches back to Dantzig.
 */
class Tableau
{
  public:
    enum class Phase2Result { Optimal, Unbounded, Infeasible, NeedCold };

    /**
     * @p dual_start builds the tableau for a dual-simplex phase-1:
     * every row is oriented so its slack enters the basis with
     * coefficient +1 regardless of rhs sign (GE rows are negated
     * wholesale), leaving no artificials but possibly negative
     * right-hand sides for phase2's dual repair. Only legal for
     * inequality-only problems whose phase-2 cost row starts dual
     * feasible (objective >= 0); the caller checks that.
     */
    Tableau(const LpProblem &problem, int64_t stall_pivots,
            bool dual_start = false)
        : n_(problem.numVars()), m_(problem.numConstraints()),
          stall_pivots_(std::max<int64_t>(stall_pivots, 1))
    {
        // Count slacks (one per inequality) and artificials: a row
        // needs an artificial unless its slack can serve as the
        // initial basic variable (slack coefficient +1 after the
        // b >= 0 normalisation — or after GE negation when
        // dual-starting).
        std::vector<double> row_sign(m_, 1.0);
        std::vector<double> slack_sign(m_, 0.0);
        num_slack_ = 0;
        num_art_ = 0;
        for (int64_t i = 0; i < m_; ++i) {
            const SparseRow &c = problem.constraint(i);
            Relation r = c.rel;
            if (dual_start) {
                ST_ASSERT(r != Relation::EQ,
                          "dual start needs inequality rows");
                row_sign[i] = r == Relation::GE ? -1.0 : 1.0;
                slack_sign[i] = 1.0;
                ++num_slack_;
                continue;
            }
            row_sign[i] = c.rhs < 0 ? -1.0 : 1.0;
            if (row_sign[i] < 0) {
                if (r == Relation::LE)
                    r = Relation::GE;
                else if (r == Relation::GE)
                    r = Relation::LE;
            }
            if (r != Relation::EQ) {
                slack_sign[i] = r == Relation::LE ? 1.0 : -1.0;
                ++num_slack_;
            }
            if (r == Relation::EQ || slack_sign[i] < 0)
                ++num_art_;
        }

        total_ = n_ + num_slack_ + num_art_;
        stride_ = total_ + 1;
        a_.assign(m_ * stride_, 0.0);
        basis_.assign(m_, -1);
        slack_col_of_row_.assign(m_, -1);
        slack_row_.assign(num_slack_, -1);
        // The column-nonzero structure pays for itself once the
        // tableau outgrows the cache-friendly regime; tiny
        // instances (branch-and-bound leaves, unit tests) are
        // faster with straight contiguous scans.
        use_cols_ = m_ * total_ >= 4096;
        if (use_cols_) {
            cols_.assign(total_, {});
            in_col_.assign(m_ * total_, 0);
        }
        cost_.assign(total_, 0.0);
        blocked_from_ = total_;

        int64_t next_slack = 0, next_art = 0;
        for (int64_t i = 0; i < m_; ++i) {
            const SparseRow &c = problem.constraint(i);
            double sign = row_sign[i];
            for (int64_t k = 0; k < c.nnz(); ++k) {
                int64_t j = c.index[k];
                ST_CHECK(j >= 0 && j < n_, "constraint var range");
                setEntry(i, j, sign * c.value[k]);
            }
            at(i, total_) = sign * c.rhs;
            if (slack_sign[i] != 0.0) {
                int64_t s = n_ + next_slack;
                slack_col_of_row_[i] = s;
                slack_row_[next_slack] = i;
                ++next_slack;
                setEntry(i, s, slack_sign[i]);
            }
            if (slack_sign[i] > 0) {
                basis_[i] = slack_col_of_row_[i];
            } else {
                int64_t art = n_ + num_slack_ + next_art++;
                setEntry(i, art, 1.0);
                basis_[i] = art;
            }
        }
    }

    /**
     * Crash-install a warm basis: pivot each surviving basic
     * variable in, preferring large pivot magnitudes. Returns true
     * when the install is clean — no artificial remains basic in a
     * row with meaningfully nonzero rhs — in which case phase 1
     * can be skipped (rhs negativity, if any, is repaired by dual
     * pivots in phase 2). A false return means the caller should
     * discard this tableau and solve cold: crash pivots may have
     * driven rhs negative, which phase 1's primal loop cannot
     * start from.
     */
    bool
    installWarmBasis(const SimplexBasis &warm)
    {
        std::vector<char> desired(total_, 0);
        std::vector<int64_t> want;
        want.reserve(warm.basic.size());
        for (int64_t id : warm.basic) {
            int64_t col = -1;
            if (id >= 0 && id < n_) {
                col = id;
            } else if (id >= n_ && id < n_ + m_) {
                col = slack_col_of_row_[id - n_]; // -1 on EQ rows
            }
            if (col >= 0 && !desired[col]) {
                desired[col] = 1;
                want.push_back(col);
            }
        }
        std::vector<char> is_basic(total_, 0);
        for (int64_t i = 0; i < m_; ++i)
            is_basic[basis_[i]] = 1;
        for (int64_t col : want) {
            if (is_basic[col])
                continue;
            int64_t brow = -1;
            double bmag = kPivotTol;
            forEachCandidateRow(col, [&](int64_t i) {
                // Never evict a row already holding a desired var.
                if (desired[basis_[i]])
                    return;
                double mag = std::fabs(at(i, col));
                if (mag > bmag) {
                    bmag = mag;
                    brow = i;
                }
            });
            if (brow < 0)
                continue; // cannot install this variable
            is_basic[basis_[brow]] = 0;
            pivot(brow, col);
            is_basic[col] = 1;
        }
        // Re-establish phase 1's end invariant: an artificial may
        // stay basic only at value 0 in a row that is zero across
        // every real column (then no later pivot can move it).
        // Otherwise phase 2 could silently drive the artificial
        // positive and return an infeasible point as Optimal, so
        // pivot it out or declare the install unclean.
        for (int64_t i = 0; i < m_; ++i) {
            if (basis_[i] < n_ + num_slack_)
                continue;
            if (std::fabs(at(i, total_)) > kPivotTol)
                return false;
            // Residues <= kEps are skipped by the elimination
            // guard in pivot(), so a row left un-pivoted here is
            // inert.
            for (int64_t j = 0; j < n_ + num_slack_; ++j) {
                if (std::fabs(at(i, j)) > kEps) {
                    pivot(i, j);
                    break;
                }
            }
        }
        return true;
    }

    /** Minimise the sum of artificial variables. Returns false
     *  when that sum stays positive (the LP is infeasible). */
    bool
    phase1()
    {
        if (num_art_ == 0)
            return true;
        cost_.assign(total_, 0.0);
        cost_rhs_ = 0.0;
        for (int64_t a = n_ + num_slack_; a < total_; ++a)
            cost_[a] = 1.0;
        blocked_from_ = total_;
        priceOut();
        resetPricing();
        iterate();
        // Scale-aware feasibility test: long pivot chains on large
        // right-hand sides accumulate rounding error.
        if (cost_rhs_ < -kPivotTol * rhsScale())
            return false; // sum of artificials > 0 -> infeasible.
        // Pivot remaining artificial basics out where possible.
        for (int64_t i = 0; i < m_; ++i) {
            if (basis_[i] < n_ + num_slack_)
                continue;
            for (int64_t j = 0; j < n_ + num_slack_; ++j) {
                if (std::fabs(at(i, j)) > kEps) {
                    pivot(i, j);
                    break;
                }
            }
            // Else the row is redundant; the artificial stays
            // basic at value 0, which is harmless.
        }
        return true;
    }

    /**
     * Minimise the real objective. A primal-infeasible start (the
     * warm-start and dual-start paths) is first repaired with dual
     * simplex pivots; NeedCold reports a start this tableau cannot
     * recover from, and the caller falls back to a cold solve.
     */
    Phase2Result
    phase2(const std::vector<double> &objective)
    {
        cost_.assign(total_, 0.0);
        cost_rhs_ = 0.0;
        for (int64_t j = 0; j < n_; ++j)
            cost_[j] = objective[j];
        // Forbid (re-)entry of artificial columns.
        blocked_from_ = n_ + num_slack_;
        priceOut();
        resetPricing();

        double tol = kPivotTol * rhsScale();
        if (worstRhs() < -tol) {
            // Dual simplex needs a dual-feasible cost row.
            for (int64_t j = 0; j < blocked_from_; ++j)
                if (cost_[j] < -kPivotTol)
                    return Phase2Result::NeedCold;
            switch (dualIterate(tol)) {
              case DualResult::Repaired: break;
              case DualResult::Infeasible:
                return Phase2Result::Infeasible;
              case DualResult::GiveUp:
                return Phase2Result::NeedCold;
            }
        }
        return iterate() ? Phase2Result::Optimal
                         : Phase2Result::Unbounded;
    }

    /** Extract structural variable values. */
    std::vector<double>
    solution() const
    {
        std::vector<double> x(n_, 0.0);
        for (int64_t i = 0; i < m_; ++i)
            if (basis_[i] < n_)
                x[basis_[i]] = at(i, total_);
        return x;
    }

    /** Current basis in stable ids (see SimplexBasis). */
    SimplexBasis
    basisSnapshot() const
    {
        SimplexBasis basis;
        basis.basic.reserve(m_);
        for (int64_t i = 0; i < m_; ++i) {
            int64_t col = basis_[i];
            if (col < n_)
                basis.basic.push_back(col);
            else if (col < n_ + num_slack_)
                basis.basic.push_back(n_ + slack_row_[col - n_]);
            else
                basis.basic.push_back(-1);
        }
        return basis;
    }

    int64_t pivots() const { return pivots_; }

  private:
    double &at(int64_t i, int64_t j) { return a_[i * stride_ + j]; }
    double at(int64_t i, int64_t j) const
    {
        return a_[i * stride_ + j];
    }

    /** Write a matrix entry, recording column membership. */
    void
    setEntry(int64_t i, int64_t j, double v)
    {
        at(i, j) += v;
        noteNonzero(i, j);
    }

    void
    noteNonzero(int64_t i, int64_t j)
    {
        if (!use_cols_)
            return;
        uint8_t &flag = in_col_[i * total_ + j];
        if (!flag) {
            flag = 1;
            cols_[j].push_back(static_cast<int32_t>(i));
        }
    }

    /** Visit rows that may hold a nonzero in column @p col: the
     *  column candidate list when maintained, every row otherwise. */
    template <typename Fn>
    void
    forEachCandidateRow(int64_t col, Fn &&fn) const
    {
        if (use_cols_) {
            for (int32_t i : cols_[col])
                fn(i);
        } else {
            for (int64_t i = 0; i < m_; ++i)
                fn(i);
        }
    }

    double
    rhsScale() const
    {
        double scale = 1.0;
        for (int64_t i = 0; i < m_; ++i)
            scale = std::max(scale, std::fabs(at(i, total_)));
        return scale;
    }

    double
    worstRhs() const
    {
        double worst = 0.0;
        for (int64_t i = 0; i < m_; ++i)
            worst = std::min(worst, at(i, total_));
        return worst;
    }

    /** Make the cost row consistent with the current basis. */
    void
    priceOut()
    {
        for (int64_t i = 0; i < m_; ++i) {
            double c = cost_[basis_[i]];
            if (std::fabs(c) < kEps)
                continue;
            const double *row = &a_[i * stride_];
            for (int64_t j = 0; j < total_; ++j)
                cost_[j] -= c * row[j];
            cost_rhs_ -= c * row[total_];
            cost_[basis_[i]] = 0.0;
        }
    }

    void
    resetPricing()
    {
        bland_mode_ = false;
        since_improve_ = 0;
        best_obj_ = std::numeric_limits<double>::infinity();
    }

    /** Entering column under the current pricing mode, or -1 at
     *  optimality. */
    int64_t
    chooseEntering() const
    {
        int64_t enter = -1;
        if (bland_mode_) {
            for (int64_t j = 0; j < blocked_from_; ++j) {
                if (cost_[j] < -kEps)
                    return j;
            }
            return -1;
        }
        double best = -kEps;
        for (int64_t j = 0; j < blocked_from_; ++j) {
            if (cost_[j] < best) {
                best = cost_[j];
                enter = j;
            }
        }
        return enter;
    }

    /** Primal simplex loop. Returns false when unbounded. */
    bool
    iterate()
    {
        while (true) {
            int64_t enter = chooseEntering();
            if (enter < 0)
                return true;
            // Leaving: min ratio over candidate rows, ties by
            // lowest basis index (Bland anti-cycling tie-break).
            int64_t leave = -1;
            double best = 0.0;
            forEachCandidateRow(enter, [&](int64_t i) {
                double a = at(i, enter);
                if (a <= kEps)
                    return;
                double ratio = at(i, total_) / a;
                if (leave < 0 || ratio < best - kEps ||
                    (ratio < best + kEps &&
                     basis_[i] < basis_[leave])) {
                    leave = i;
                    best = ratio;
                }
            });
            if (leave < 0)
                return false; // unbounded
            pivot(leave, enter);
            trackStall();
        }
    }

    /** Dantzig -> Bland stall bookkeeping, evaluated per pivot. */
    void
    trackStall()
    {
        double obj = -cost_rhs_;
        if (obj < best_obj_ - kEps * (1.0 + std::fabs(best_obj_))) {
            best_obj_ = obj;
            since_improve_ = 0;
            bland_mode_ = false;
            return;
        }
        if (++since_improve_ >= stall_pivots_)
            bland_mode_ = true;
    }

    enum class DualResult { Repaired, Infeasible, GiveUp };

    /**
     * Dual simplex repair: drive negative right-hand sides out
     * while preserving dual feasibility. Used after a warm-started
     * basis meets constraints appended since it was optimal.
     */
    DualResult
    dualIterate(double tol)
    {
        int64_t cap = 4 * (m_ + total_) + 64;
        while (true) {
            int64_t leave = -1;
            double worst = -tol;
            for (int64_t i = 0; i < m_; ++i) {
                if (at(i, total_) < worst) {
                    worst = at(i, total_);
                    leave = i;
                }
            }
            if (leave < 0)
                return DualResult::Repaired;
            if (--cap < 0)
                return DualResult::GiveUp;
            const double *row = &a_[leave * stride_];
            int64_t enter = -1;
            double best = 0.0;
            for (int64_t j = 0; j < blocked_from_; ++j) {
                double a = row[j];
                if (a >= -kPivotTol)
                    continue;
                double ratio = std::max(cost_[j], 0.0) / -a;
                if (enter < 0 || ratio < best - kEps) {
                    enter = j;
                    best = ratio;
                }
            }
            if (enter < 0) {
                // All eligible entries non-negative: a Farkas row,
                // unless only a blocked artificial column could
                // have entered (then punt to a cold solve).
                for (int64_t j = blocked_from_; j < total_; ++j)
                    if (row[j] < -kPivotTol)
                        return DualResult::GiveUp;
                return DualResult::Infeasible;
            }
            pivot(leave, enter);
        }
    }

    void
    pivot(int64_t row, int64_t col)
    {
        double *prow = &a_[row * stride_];
        double p = prow[col];
        ST_ASSERT(std::fabs(p) > kEps, "zero pivot");

        // Gather the pivot row's nonzero columns once; elimination
        // below touches only these.
        prow_cols_.clear();
        for (int64_t j = 0; j < total_; ++j)
            if (std::fabs(prow[j]) > kEps)
                prow_cols_.push_back(j);

        for (int64_t j : prow_cols_)
            prow[j] /= p;
        prow[col] = 1.0;
        prow[total_] /= p;

        forEachCandidateRow(col, [&](int64_t i) {
            if (i == row)
                return;
            double *irow = &a_[i * stride_];
            double f = irow[col];
            if (std::fabs(f) < kEps)
                return;
            for (int64_t j : prow_cols_) {
                irow[j] -= f * prow[j];
                noteNonzero(i, j);
            }
            irow[col] = 0.0;
            irow[total_] -= f * prow[total_];
            if (irow[total_] < 0 && irow[total_] > -kEps)
                irow[total_] = 0;
        });

        double f = cost_[col];
        if (std::fabs(f) > kEps) {
            for (int64_t j : prow_cols_)
                cost_[j] -= f * prow[j];
            cost_rhs_ -= f * prow[total_];
            cost_[col] = 0.0;
        }
        basis_[row] = col;
        ++pivots_;
    }

    int64_t n_, m_;
    int64_t num_slack_ = 0, num_art_ = 0, total_ = 0, stride_ = 0;
    int64_t blocked_from_ = 0;
    int64_t stall_pivots_;
    std::vector<double> a_; ///< m_ rows x stride_ (last col = rhs)
    std::vector<double> cost_;
    double cost_rhs_ = 0.0;
    std::vector<int64_t> basis_;
    std::vector<int64_t> slack_col_of_row_; ///< row -> slack col | -1
    std::vector<int64_t> slack_row_;        ///< packed slack -> row
    bool use_cols_ = false; ///< maintain the column structure?
    std::vector<std::vector<int32_t>> cols_; ///< column candidates
    std::vector<uint8_t> in_col_;            ///< membership bitmap
    std::vector<int64_t> prow_cols_;         ///< pivot-row scratch
    int64_t pivots_ = 0;
    bool bland_mode_ = false;
    int64_t since_improve_ = 0;
    double best_obj_ = std::numeric_limits<double>::infinity();
};

LpSolution
finishOptimal(const LpProblem &problem, Tableau &tab)
{
    LpSolution solution;
    solution.status = LpStatus::Optimal;
    solution.values = tab.solution();
    solution.basis = tab.basisSnapshot();
    solution.pivots = tab.pivots();
    solution.objective = 0.0;
    for (int64_t j = 0; j < problem.numVars(); ++j)
        solution.objective +=
            problem.objective()[j] * solution.values[j];
    return solution;
}

} // namespace

double
SparseRow::coeff(int64_t var) const
{
    auto it = std::lower_bound(index.begin(), index.end(), var);
    if (it == index.end() || *it != var)
        return 0.0;
    return value[it - index.begin()];
}

double
SparseRow::dot(const std::vector<double> &x) const
{
    double acc = 0.0;
    for (size_t k = 0; k < index.size(); ++k)
        acc += value[k] * x[index[k]];
    return acc;
}

std::string
lpStatusName(LpStatus status)
{
    switch (status) {
      case LpStatus::Optimal: return "optimal";
      case LpStatus::Infeasible: return "infeasible";
      case LpStatus::Unbounded: return "unbounded";
    }
    ST_PANIC("unknown LpStatus");
}

LpProblem::LpProblem(int64_t num_vars)
    : num_vars_(num_vars), objective_(num_vars, 0.0)
{
    ST_CHECK(num_vars >= 1, "LP needs at least one variable");
}

void
LpProblem::setObjective(int64_t var, double coeff)
{
    ST_ASSERT(var >= 0 && var < num_vars_, "objective var range");
    objective_[var] = coeff;
}

void
LpProblem::addConstraint(const std::vector<double> &coeffs,
                         Relation rel, double rhs)
{
    ST_CHECK(static_cast<int64_t>(coeffs.size()) == num_vars_,
             "constraint width must equal numVars");
    SparseRow row;
    row.rel = rel;
    row.rhs = rhs;
    for (int64_t j = 0; j < num_vars_; ++j) {
        if (coeffs[j] != 0.0) {
            row.index.push_back(j);
            row.value.push_back(coeffs[j]);
        }
    }
    constraints_.push_back(std::move(row));
}

void
LpProblem::addSparseConstraint(const std::vector<int64_t> &vars,
                               const std::vector<double> &coeffs,
                               Relation rel, double rhs)
{
    ST_CHECK(vars.size() == coeffs.size(),
             "sparse constraint arity mismatch");
    SparseRow row;
    row.rel = rel;
    row.rhs = rhs;
    // Sort mentions by variable, accumulating duplicates so that
    // repeated indices sum exactly as they would densely.
    std::vector<int64_t> order(vars.size());
    for (size_t k = 0; k < vars.size(); ++k) {
        ST_ASSERT(vars[k] >= 0 && vars[k] < num_vars_,
                  "sparse var range");
        order[k] = static_cast<int64_t>(k);
    }
    std::sort(order.begin(), order.end(),
              [&](int64_t a, int64_t b) { return vars[a] < vars[b]; });
    row.index.reserve(vars.size());
    row.value.reserve(vars.size());
    for (int64_t k : order) {
        if (!row.index.empty() && row.index.back() == vars[k]) {
            row.value.back() += coeffs[k];
        } else {
            row.index.push_back(vars[k]);
            row.value.push_back(coeffs[k]);
        }
    }
    constraints_.push_back(std::move(row));
}

void
LpProblem::addBound(int64_t var, Relation rel, double rhs)
{
    ST_ASSERT(var >= 0 && var < num_vars_, "bound var range");
    SparseRow row;
    row.index.push_back(var);
    row.value.push_back(1.0);
    row.rel = rel;
    row.rhs = rhs;
    constraints_.push_back(std::move(row));
}

void
LpProblem::popConstraint()
{
    ST_CHECK(!constraints_.empty(), "no constraint to pop");
    constraints_.pop_back();
}

const SparseRow &
LpProblem::constraint(int64_t i) const
{
    ST_ASSERT(i >= 0 && i < numConstraints(),
              "constraint id out of range");
    return constraints_[i];
}

LpSolution
solveLp(const LpProblem &problem, const LpOptions &options)
{
    LpSolution solution;
    if (options.warm_start && !options.warm_start->empty()) {
        Tableau tab(problem, options.stall_pivots);
        if (tab.installWarmBasis(*options.warm_start)) {
            switch (tab.phase2(problem.objective())) {
              case Tableau::Phase2Result::Optimal:
                return finishOptimal(problem, tab);
              case Tableau::Phase2Result::Unbounded:
                solution.status = LpStatus::Unbounded;
                solution.pivots = tab.pivots();
                return solution;
              case Tableau::Phase2Result::Infeasible:
                solution.status = LpStatus::Infeasible;
                solution.pivots = tab.pivots();
                return solution;
              case Tableau::Phase2Result::NeedCold:
                break; // fall through to the cold solve
            }
        }
        // Unclean install: discard the mutated tableau and start
        // over; crash pivots may have left rhs unusable for a
        // primal phase 1.
    }

    // Inequality-only problems with a non-negative objective start
    // dual feasible from the all-slack basis: skip phase 1 (and
    // its artificial columns) entirely and let phase 2's dual
    // repair drive out any negative rhs.
    bool dual_start = true;
    for (const SparseRow &c : problem.constraints()) {
        if (c.rel == Relation::EQ) {
            dual_start = false;
            break;
        }
    }
    if (dual_start) {
        for (double c : problem.objective()) {
            if (c < 0.0) {
                dual_start = false;
                break;
            }
        }
    }
    if (dual_start) {
        Tableau tab(problem, options.stall_pivots,
                    /*dual_start=*/true);
        switch (tab.phase2(problem.objective())) {
          case Tableau::Phase2Result::Optimal:
            return finishOptimal(problem, tab);
          case Tableau::Phase2Result::Unbounded:
            solution.status = LpStatus::Unbounded;
            solution.pivots = tab.pivots();
            return solution;
          case Tableau::Phase2Result::Infeasible:
            solution.status = LpStatus::Infeasible;
            solution.pivots = tab.pivots();
            return solution;
          case Tableau::Phase2Result::NeedCold:
            break; // dual repair stalled; use the classic path
        }
    }

    Tableau tab(problem, options.stall_pivots);
    if (!tab.phase1()) {
        solution.status = LpStatus::Infeasible;
        solution.pivots = tab.pivots();
        return solution;
    }
    switch (tab.phase2(problem.objective())) {
      case Tableau::Phase2Result::Optimal:
        return finishOptimal(problem, tab);
      case Tableau::Phase2Result::Unbounded:
        solution.status = LpStatus::Unbounded;
        break;
      case Tableau::Phase2Result::Infeasible:
        solution.status = LpStatus::Infeasible;
        break;
      case Tableau::Phase2Result::NeedCold:
        // Phase 1 left a primal-feasible basis, so this indicates
        // numerical trouble; report infeasible loudly rather than
        // return a wrong optimum.
        warn("solveLp: post-phase-1 dual repair failed; "
             "reporting infeasible");
        solution.status = LpStatus::Infeasible;
        break;
    }
    solution.pivots = tab.pivots();
    return solution;
}

} // namespace solver
} // namespace streamtensor
