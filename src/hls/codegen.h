/**
 * @file
 * Code generation (paper Fig. 4 final stages): emits the HLS C++
 * for each fused accelerator group, the host runtime C++, and the
 * Vitis link connectivity configuration mapping DMAs to HBM
 * pseudo-channels.
 */

#ifndef STREAMTENSOR_HLS_CODEGEN_H
#define STREAMTENSOR_HLS_CODEGEN_H

#include <string>

#include "dataflow/graph.h"

namespace streamtensor {
namespace hls {

/** Generated source artifacts. */
struct GeneratedCode
{
    std::string hls_cpp;      ///< device-side dataflow C++
    std::string host_cpp;     ///< host runtime C++
    std::string connectivity; ///< vitis link .cfg
};

/** Emit all artifacts for the component graph. */
GeneratedCode generateCode(const dataflow::ComponentGraph &g);

/** Emit only the device-side HLS C++ of one group. */
std::string generateGroupHls(const dataflow::ComponentGraph &g,
                             int64_t group);

/** Emit the host runtime that sequences group executions. */
std::string generateHost(const dataflow::ComponentGraph &g);

/** Emit the HBM connectivity configuration. */
std::string generateConnectivity(const dataflow::ComponentGraph &g);

} // namespace hls
} // namespace streamtensor

#endif // STREAMTENSOR_HLS_CODEGEN_H
