/**
 * @file
 * FPGA platform descriptions (paper Table 6). The default target
 * is the AMD Alveo U55C used in the paper's evaluation.
 */

#ifndef STREAMTENSOR_HLS_PLATFORM_H
#define STREAMTENSOR_HLS_PLATFORM_H

#include <cstdint>
#include <string>

namespace streamtensor {
namespace hls {

/** An FPGA platform (Table 6 columns). */
struct FpgaPlatform
{
    std::string name;

    /** Clock frequency in MHz. */
    double freq_mhz = 250.0;

    /** Off-chip (HBM/DDR) bandwidth in GB/s. */
    double memory_bandwidth_gbps = 460.0;

    /** Off-chip memory capacity in GiB. */
    double memory_capacity_gib = 16.0;

    /** Independent DMA memory ports. The HBM2 stacks expose 32
     *  pseudo-channels on U55C/U280; the link configuration gangs
     *  two per DMA port for bandwidth-critical weight streams. */
    int64_t memory_channels = 16;

    /** Fraction of a channel's peak usable after burst overheads. */
    double burst_efficiency = 0.90;

    /** Memory access latency in nanoseconds (hidden by the DMA's
     *  ping-pong buffer after the first burst). */
    double memory_latency_ns = 250.0;

    /** Total on-chip memory in MiB (BRAM + URAM). */
    double on_chip_memory_mib = 41.0;

    /** On-chip memory breakdown in KiB. */
    int64_t lutram_kib = 3000;
    int64_t bram_kib = 9072;   ///< 2016 x 36Kb blocks
    int64_t uram_kib = 34560;  ///< 960 x 288Kb blocks

    /** Compute fabric. */
    int64_t dsp_count = 9024;
    int64_t lut_count = 1303680;

    /** Peak INT8 TOPS (Table 6 reports 24.5 for U55C). */
    double peak_int8_tops = 24.5;

    double peakInt8Tops() const { return peak_int8_tops; }

    /** SLR dies for graph partitioning. */
    int64_t num_dies = 3;

    /** Inter-die link model: a FIFO whose endpoints land on
     *  different dies pays this many extra cycles of latency each
     *  way (data forward across the SLR gap, pop credit back), and
     *  each endpoint's per-firing interval grows by the II
     *  penalty (the SLL register handshake). Defaults to 0 so
     *  placement is cost-free unless a target opts in — SLR hops
     *  through dedicated laguna/SLL registers typically cost a
     *  handful of cycles at 250 MHz. */
    double inter_die_latency_cycles = 0.0;
    double inter_die_ii_penalty = 0.0;

    /** Even per-die slice of the fabric: the capacity view the
     *  partitioner budgets each SLR against. */
    struct DieResources
    {
        int64_t luts = 0;
        int64_t dsps = 0;
        int64_t bram_kib = 0;
        int64_t uram_kib = 0;
    };
    DieResources dieResources() const;

    /** Thermal design power in watts. */
    double tdp_watts = 150.0;

    /** Idle fraction of TDP drawn when the accelerator is
     *  configured but inactive (board static power, fans, HBM
     *  refresh; U55C boards idle near half their 150 W TDP once
     *  a large design is programmed). */
    double idle_power_fraction = 0.50;

    /** Host-side overhead per accelerator invocation in
     *  microseconds (XRT kernel trigger + sync). */
    double invocation_overhead_us = 110.0;

    /** On-chip memory budget in bytes (the fusion C_max). */
    int64_t onChipBytes() const;

    /** Per-channel effective bandwidth in bytes per cycle. */
    double channelBytesPerCycle() const;
};

/** The paper's evaluation platform: AMD Alveo U55C, Vitis 2024.1. */
FpgaPlatform u55c();

/** The Allo/DFX baseline platform: AMD Alveo U280. */
FpgaPlatform u280();

} // namespace hls
} // namespace streamtensor

#endif // STREAMTENSOR_HLS_PLATFORM_H
