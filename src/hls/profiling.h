/**
 * @file
 * Vendor-tool profiling substitute (paper §5.3.1: "StreamTensor
 * automatically invokes vendor tools like HLS to profile these
 * metrics for each kernel in the middle of the flow").
 *
 * Fills every component's initial delay and total cycle count from
 * an analytic model of the scheduled RTL:
 *  - kernels pipeline their intra-tile loop nest at II=1 across
 *    `unroll` lanes, so a token costs points_per_token / unroll
 *    cycles plus a fixed pipeline fill;
 *  - DMAs stream at their HBM pseudo-channel rate;
 *  - converters forward at their vector lane width and must fill
 *    one ping buffer before the first output token.
 */

#ifndef STREAMTENSOR_HLS_PROFILING_H
#define STREAMTENSOR_HLS_PROFILING_H

#include "dataflow/graph.h"
#include "hls/platform.h"

namespace streamtensor {
namespace hls {

/** Tunable constants of the scheduling model. */
struct ProfilingModel
{
    /** Pipeline fill depth of a kernel datapath in cycles. */
    double kernel_pipeline_depth = 24.0;

    /** Fixed control overhead of a task in cycles. */
    double task_overhead_cycles = 12.0;

    /** Fraction of the nominal unroll lanes that retire work per
     *  cycle once II inflation on reductions, load imbalance and
     *  inter-tile pipeline drains are accounted (calibrated so
     *  the achieved TOPS fraction matches on-board reality; see
     *  EXPERIMENTS.md). */
    double compute_efficiency = 0.25;
};

/**
 * Profile every component of @p g in place (initial_delay and
 * total_cycles). Deterministic, so downstream FIFO sizing stays
 * valid for the final design (paper §5.3.1).
 */
void profileComponents(dataflow::ComponentGraph &g,
                       const FpgaPlatform &platform,
                       const ProfilingModel &model = {});

/** Tokens a component emits per execution (max over out edges,
 *  or its input token count for sinks). */
int64_t componentTokens(const dataflow::ComponentGraph &g,
                        int64_t id);

} // namespace hls
} // namespace streamtensor

#endif // STREAMTENSOR_HLS_PROFILING_H
