/**
 * @file
 * RTL-generation time model (paper Fig. 10b): estimates how long
 * the vendor flow (HLS synthesis, downstream profiling) and
 * parameter packing would take for a compiled design. The real
 * flow is gated on Vitis; this deterministic model reproduces the
 * breakdown's shape: HLS dominates, profiling is second,
 * StreamTensor compilation and packing are small.
 */

#ifndef STREAMTENSOR_HLS_RTL_TIME_H
#define STREAMTENSOR_HLS_RTL_TIME_H

#include <cstdint>

#include "dataflow/graph.h"

namespace streamtensor {
namespace hls {

/** Estimated seconds per stage of RTL generation. */
struct RtlTimeBreakdown
{
    double hls_seconds = 0.0;       ///< parallel C++->RTL synthesis
    double profiling_seconds = 0.0; ///< parallel QoR profiling
    double param_packing_seconds = 0.0;
    double compile_seconds = 0.0;   ///< StreamTensor itself

    double total() const
    {
        return hls_seconds + profiling_seconds +
               param_packing_seconds + compile_seconds;
    }
};

/** Tunable constants of the vendor-time model. */
struct RtlTimeModel
{
    /** Fixed per-kernel HLS cost in seconds. */
    double hls_base_seconds = 120.0;

    /** HLS scheduling blowup factor per doubling of the unroll
     *  (synthesis scales with datapath structure, not lanes). */
    double hls_log_lane_factor = 0.6;

    /** Parallel synthesis jobs. */
    int64_t parallel_jobs = 8;

    /** Profiling costs a fraction of synthesis. */
    double profiling_fraction = 0.22;

    /** Host packing throughput in MB/s. */
    double packing_mbps = 160.0;
};

/**
 * Estimate the vendor-flow breakdown for @p g given the measured
 * StreamTensor compile time @p compile_seconds and the model's
 * packed parameter volume @p param_bytes.
 */
RtlTimeBreakdown
estimateRtlTime(const dataflow::ComponentGraph &g,
                int64_t param_bytes, double compile_seconds,
                const RtlTimeModel &model = {});

} // namespace hls
} // namespace streamtensor

#endif // STREAMTENSOR_HLS_RTL_TIME_H
