#include "hls/platform.h"

namespace streamtensor {
namespace hls {

int64_t
FpgaPlatform::onChipBytes() const
{
    return static_cast<int64_t>(on_chip_memory_mib * 1024.0 *
                                1024.0);
}

FpgaPlatform::DieResources
FpgaPlatform::dieResources() const
{
    DieResources r;
    int64_t dies = num_dies > 0 ? num_dies : 1;
    r.luts = lut_count / dies;
    r.dsps = dsp_count / dies;
    r.bram_kib = bram_kib / dies;
    r.uram_kib = uram_kib / dies;
    return r;
}

double
FpgaPlatform::channelBytesPerCycle() const
{
    double channel_gbps =
        memory_bandwidth_gbps / memory_channels * burst_efficiency;
    return channel_gbps * 1e9 / (freq_mhz * 1e6);
}

FpgaPlatform
u55c()
{
    FpgaPlatform p;
    p.name = "AMD U55C";
    p.freq_mhz = 250.0;
    p.memory_bandwidth_gbps = 460.0;
    p.memory_capacity_gib = 16.0;
    p.on_chip_memory_mib = 41.0;
    p.tdp_watts = 150.0;
    p.num_dies = 3;
    return p;
}

FpgaPlatform
u280()
{
    FpgaPlatform p;
    p.name = "AMD U280";
    p.freq_mhz = 250.0;
    p.memory_bandwidth_gbps = 460.0;
    p.memory_capacity_gib = 8.0;
    p.on_chip_memory_mib = 41.0;
    p.tdp_watts = 225.0;
    p.num_dies = 3;
    return p;
}

} // namespace hls
} // namespace streamtensor
