#include "hls/rtl_time.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/math_util.h"

namespace streamtensor {
namespace hls {

RtlTimeBreakdown
estimateRtlTime(const dataflow::ComponentGraph &g,
                int64_t param_bytes, double compile_seconds,
                const RtlTimeModel &model)
{
    RtlTimeBreakdown breakdown;

    // Per-kernel synthesis times, scheduled over parallel jobs
    // (longest-processing-time list scheduling).
    std::vector<double> kernel_times;
    for (int64_t id = 0; id < g.numComponents(); ++id) {
        const dataflow::Component &c = g.component(id);
        double t = 0.0;
        switch (c.kind) {
          case dataflow::ComponentKind::Kernel:
            t = model.hls_base_seconds *
                (1.0 + model.hls_log_lane_factor *
                           std::log2(1.0 + c.unroll));
            break;
          case dataflow::ComponentKind::Converter:
            t = 0.45 * model.hls_base_seconds;
            break;
          case dataflow::ComponentKind::LoadDma:
          case dataflow::ComponentKind::StoreDma:
            t = 0.30 * model.hls_base_seconds;
            break;
        }
        kernel_times.push_back(t);
    }
    std::sort(kernel_times.rbegin(), kernel_times.rend());
    std::vector<double> jobs(
        std::max<int64_t>(model.parallel_jobs, 1), 0.0);
    for (double t : kernel_times) {
        auto it = std::min_element(jobs.begin(), jobs.end());
        *it += t;
    }
    breakdown.hls_seconds =
        *std::max_element(jobs.begin(), jobs.end());
    breakdown.profiling_seconds =
        breakdown.hls_seconds * model.profiling_fraction;
    breakdown.param_packing_seconds =
        static_cast<double>(param_bytes) /
        (model.packing_mbps * 1e6);
    breakdown.compile_seconds = compile_seconds;
    return breakdown;
}

} // namespace hls
} // namespace streamtensor
