/**
 * @file
 * Resource estimation for components: DSP/LUT usage of kernels and
 * the on-chip memory footprint of buffers and FIFOs. Feeds the
 * multi-die partitioner and the memory allocator.
 */

#ifndef STREAMTENSOR_HLS_RESOURCE_H
#define STREAMTENSOR_HLS_RESOURCE_H

#include <cstdint>

#include "dataflow/graph.h"
#include "hls/platform.h"

namespace streamtensor {
namespace hls {

/** Resource usage of one component or one aggregate. */
struct ResourceUsage
{
    int64_t dsps = 0;
    int64_t luts = 0;
    int64_t memory_bytes = 0;

    ResourceUsage &operator+=(const ResourceUsage &o);
};

/** Estimate one component's usage (FIFOs accounted separately). */
ResourceUsage estimateComponent(const dataflow::Component &c);

/** Aggregate usage of one fused group including its FIFOs. */
ResourceUsage estimateGroup(const dataflow::ComponentGraph &g,
                            int64_t group);

/** True when every group fits the platform's budgets. */
bool fitsPlatform(const dataflow::ComponentGraph &g,
                  const FpgaPlatform &platform);

} // namespace hls
} // namespace streamtensor

#endif // STREAMTENSOR_HLS_RESOURCE_H
