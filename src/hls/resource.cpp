#include "hls/resource.h"

#include "support/math_util.h"

namespace streamtensor {
namespace hls {

ResourceUsage &
ResourceUsage::operator+=(const ResourceUsage &o)
{
    dsps += o.dsps;
    luts += o.luts;
    memory_bytes += o.memory_bytes;
    return *this;
}

ResourceUsage
estimateComponent(const dataflow::Component &c)
{
    ResourceUsage usage;
    switch (c.kind) {
      case dataflow::ComponentKind::Kernel:
        // One packed INT8 MAC lane per DSP; control in LUTs.
        usage.dsps = c.unroll;
        usage.luts = 600 + 180 * c.unroll;
        usage.memory_bytes = c.local_buffer_bytes;
        break;
      case dataflow::ComponentKind::LoadDma:
      case dataflow::ComponentKind::StoreDma:
        usage.luts = 1200 + 4 * c.vector_lanes;
        usage.memory_bytes = c.local_buffer_bytes;
        break;
      case dataflow::ComponentKind::Converter:
        usage.luts = 800 + 4 * c.vector_lanes;
        usage.memory_bytes = c.converter.bufferBytes();
        break;
    }
    return usage;
}

ResourceUsage
estimateGroup(const dataflow::ComponentGraph &g, int64_t group)
{
    ResourceUsage usage;
    for (int64_t id : g.groupComponents(group))
        usage += estimateComponent(g.component(id));
    for (int64_t ch : g.groupChannels(group)) {
        if (g.channel(ch).folded)
            continue;
        usage.memory_bytes +=
            ceilDiv(g.channel(ch).storageBits(), 8);
    }
    return usage;
}

bool
fitsPlatform(const dataflow::ComponentGraph &g,
             const FpgaPlatform &platform)
{
    for (int64_t group = 0; group < g.numGroups(); ++group) {
        ResourceUsage usage = estimateGroup(g, group);
        if (usage.dsps > platform.dsp_count)
            return false;
        if (usage.luts > platform.lut_count)
            return false;
        if (usage.memory_bytes > platform.onChipBytes())
            return false;
    }
    return true;
}

} // namespace hls
} // namespace streamtensor
