#include "hls/profiling.h"

#include <algorithm>

#include "support/error.h"
#include "support/math_util.h"

namespace streamtensor {
namespace hls {

int64_t
componentTokens(const dataflow::ComponentGraph &g, int64_t id)
{
    int64_t tokens = 0;
    for (int64_t ch : g.outChannels(id))
        tokens = std::max(tokens, g.channel(ch).tokens);
    if (tokens == 0) {
        for (int64_t ch : g.inChannels(id))
            tokens = std::max(tokens, g.channel(ch).tokens);
    }
    return std::max<int64_t>(tokens, 1);
}

void
profileComponents(dataflow::ComponentGraph &g,
                  const FpgaPlatform &platform,
                  const ProfilingModel &model)
{
    double mem_latency_cycles =
        platform.memory_latency_ns * platform.freq_mhz * 1e6 / 1e9;
    double channel_bpc = platform.channelBytesPerCycle();

    for (int64_t id = 0; id < g.numComponents(); ++id) {
        dataflow::Component &c = g.component(id);
        int64_t tokens = componentTokens(g, id);

        switch (c.kind) {
          case dataflow::ComponentKind::Kernel: {
            // Pipelined loop nest: `unroll` lanes retire one
            // iteration point per cycle each.
            double ii = std::max(
                1.0, static_cast<double>(c.points_per_token) /
                         (static_cast<double>(c.unroll) *
                          model.compute_efficiency));
            c.initial_delay = model.kernel_pipeline_depth +
                              model.task_overhead_cycles + ii;
            c.total_cycles = c.initial_delay + (tokens - 1) * ii;
            break;
          }
          case dataflow::ComponentKind::LoadDma:
          case dataflow::ComponentKind::StoreDma: {
            // One HBM pseudo-channel per DMA: the token rate is
            // bounded by the channel bandwidth.
            int64_t token_bytes = 1;
            auto chans = c.kind == dataflow::ComponentKind::LoadDma
                             ? g.outChannels(id)
                             : g.inChannels(id);
            if (!chans.empty()) {
                const auto &t = g.channel(chans.front()).type;
                token_bytes = ceilDiv(
                    t.elementCount() * ir::bitWidth(t.dtype()), 8);
            }
            double ii =
                std::max(1.0, static_cast<double>(token_bytes) /
                                  channel_bpc);
            c.initial_delay = mem_latency_cycles +
                              model.task_overhead_cycles + ii;
            c.total_cycles = c.initial_delay + (tokens - 1) * ii;
            break;
          }
          case dataflow::ComponentKind::Converter: {
            // Forward one element per `lanes` scalars per cycle;
            // the first output waits for the ping buffer fill.
            int64_t elem = std::max<int64_t>(c.points_per_token, 1);
            double ii = std::max(
                1.0, static_cast<double>(elem) /
                         static_cast<double>(c.vector_lanes));
            int64_t buf_elems = 1;
            for (int64_t d : c.converter.buffer_shape)
                buf_elems *= d;
            double fill =
                static_cast<double>(buf_elems) /
                static_cast<double>(std::max<int64_t>(
                    c.vector_lanes, 1));
            c.initial_delay = model.task_overhead_cycles + fill;
            c.total_cycles = c.initial_delay + (tokens - 1) * ii;
            // Unique input tokens stream once into the ping bank;
            // re-emission happens from the banks, so the ingest
            // span is the stream-rate pass over the inputs.
            int64_t in_tokens = 0;
            for (int64_t ch : g.inChannels(id)) {
                in_tokens = std::max(in_tokens,
                                     g.channel(ch).tokens);
            }
            if (in_tokens > 0) {
                c.ingest_cycles =
                    c.initial_delay + (in_tokens - 1) * ii;
            }
            break;
          }
        }
        ST_ASSERT(c.total_cycles > 0, "profiled cycles must be > 0");
    }
}

} // namespace hls
} // namespace streamtensor
