/**
 * @file
 * Sequence-length bucketing for the serving layer. The executor
 * compiles one accelerator design per block shape, so a server
 * that honoured every request's exact lengths would blow up the
 * compile cache (and, on real hardware, the bitstream library).
 * Buckets quantise lengths onto a small geometric ladder: requests
 * whose (padded) lengths land in the same bucket share one
 * compiled block, at the cost of simulating a few wasted padding
 * tokens.
 *
 * Ladder construction is pure integer math so every platform
 * derives the identical bucket set.
 */

#ifndef STREAMTENSOR_MODELS_BUCKETING_H
#define STREAMTENSOR_MODELS_BUCKETING_H

#include <cstdint>
#include <vector>

#include "models/block_builder.h"

namespace streamtensor {
namespace models {

/** Geometric bucket ladder: min_len, then each boundary grows by
 *  growth_num/growth_den and is aligned up, clamped at max_len. */
struct BucketPolicy
{
    int64_t min_len = 16;

    /** Growth ratio as a rational (default 3/2) so the ladder is
     *  integer-deterministic across platforms. */
    int64_t growth_num = 3;
    int64_t growth_den = 2;

    /** Every boundary is rounded up to a multiple of this. */
    int64_t align = 16;

    /** Largest bucket (model context limit). */
    int64_t max_len = 1024;
};

/** All bucket boundaries of @p policy, ascending, ending at
 *  max_len. */
std::vector<int64_t> bucketBoundaries(const BucketPolicy &policy);

/** Smallest bucket boundary >= @p len. Fails if @p len exceeds
 *  policy.max_len (the request can never be served). */
int64_t bucketLen(int64_t len, const BucketPolicy &policy);

/** Prefill shapes with the input length rounded to its bucket. */
BlockShapes bucketedPrefillShapes(int64_t input_len,
                                  const BucketPolicy &policy);

/** Decode shapes with the context length rounded to its bucket. */
BlockShapes bucketedDecodeShapes(int64_t kv_len,
                                 const BucketPolicy &policy);

} // namespace models
} // namespace streamtensor

#endif // STREAMTENSOR_MODELS_BUCKETING_H
