#include "models/llm_config.h"

#include "support/error.h"
#include "support/math_util.h"

namespace streamtensor {
namespace models {

int64_t
LlmConfig::blockParams() const
{
    int64_t q_dim = heads * head_dim;
    int64_t kv_dim = kv_heads * head_dim;
    int64_t attn = hidden * q_dim          // Wq
                   + 2 * hidden * kv_dim   // Wk, Wv
                   + q_dim * hidden;       // Wo
    int64_t ffn;
    if (activation == Activation::Silu) {
        ffn = 3 * hidden * ffn_hidden; // gate, up, down
    } else {
        ffn = 2 * hidden * ffn_hidden; // fc1, fc2
    }
    int64_t norms = 2 * hidden;
    return attn + ffn + norms;
}

int64_t
LlmConfig::blockParamBytes() const
{
    return ceilDiv(blockParams() * ir::bitWidth(weight_dtype), 8);
}

double
LlmConfig::blockFlops(int64_t seq_len, int64_t kv_len) const
{
    double s = static_cast<double>(seq_len);
    double l = static_cast<double>(kv_len);
    int64_t q_dim = heads * head_dim;
    int64_t kv_dim = kv_heads * head_dim;
    double proj = 2.0 * s *
                  (hidden * q_dim + 2.0 * hidden * kv_dim +
                   q_dim * hidden);
    double attn = 2.0 * s * l * heads * head_dim * 2.0;
    double ffn = activation == Activation::Silu
                     ? 2.0 * s * 3.0 * hidden * ffn_hidden
                     : 2.0 * s * 2.0 * hidden * ffn_hidden;
    return proj + attn + ffn;
}

LlmConfig
gpt2Config()
{
    LlmConfig c;
    c.name = "GPT-2";
    c.layers = 24;
    c.hidden = 1024;
    c.ffn_hidden = 4096;
    c.heads = 16;
    c.kv_heads = 16;
    c.head_dim = 64;
    c.activation = Activation::Gelu;
    c.norm = NormKind::LayerNorm;
    c.rope = false;
    return c;
}

LlmConfig
qwenConfig()
{
    LlmConfig c;
    c.name = "Qwen";
    c.layers = 24;
    c.hidden = 896;
    c.ffn_hidden = 4864;
    c.heads = 14;
    c.kv_heads = 2;
    c.head_dim = 64;
    c.activation = Activation::Silu;
    c.norm = NormKind::RMSNorm;
    c.rope = true;
    return c;
}

LlmConfig
llamaConfig()
{
    LlmConfig c;
    c.name = "Llama";
    c.layers = 22;
    c.hidden = 2048;
    c.ffn_hidden = 5632;
    c.heads = 32;
    c.kv_heads = 4;
    c.head_dim = 64;
    c.activation = Activation::Silu;
    c.norm = NormKind::RMSNorm;
    c.rope = true;
    return c;
}

LlmConfig
gemmaConfig()
{
    LlmConfig c;
    c.name = "Gemma";
    c.layers = 26;
    c.hidden = 1152;
    c.ffn_hidden = 6912;
    c.heads = 4;
    c.kv_heads = 1;
    c.head_dim = 256;
    c.activation = Activation::Gelu;
    c.norm = NormKind::RMSNorm;
    c.rope = true;
    return c;
}

std::vector<LlmConfig>
allConfigs()
{
    return {gpt2Config(), qwenConfig(), llamaConfig(),
            gemmaConfig()};
}

} // namespace models
} // namespace streamtensor
