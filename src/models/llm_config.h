/**
 * @file
 * LLM configurations evaluated in the paper (Table 7), collected
 * from the Hugging Face model cards: GPT-2 (medium), Qwen2.5-0.5B,
 * Llama-3.2-1B, and Gemma-3-1B. Weights are W4 and activations A8
 * to match the paper's quantization (Table 6).
 */

#ifndef STREAMTENSOR_MODELS_LLM_CONFIG_H
#define STREAMTENSOR_MODELS_LLM_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/data_type.h"

namespace streamtensor {
namespace models {

/** FFN activation function. */
enum class Activation { Gelu, Silu };

/** Normalisation kind. */
enum class NormKind { LayerNorm, RMSNorm };

/** One model configuration (Table 7 row set). */
struct LlmConfig
{
    std::string name;
    int64_t layers = 0;
    int64_t hidden = 0;
    int64_t ffn_hidden = 0;
    int64_t heads = 0;
    int64_t kv_heads = 0; ///< == heads for MHA
    int64_t head_dim = 0;
    Activation activation = Activation::Gelu;
    NormKind norm = NormKind::LayerNorm;
    bool rope = false;
    int64_t max_seq = 1024;

    ir::DataType weight_dtype = ir::DataType::I4;
    ir::DataType act_dtype = ir::DataType::I8;

    /** GQA group size = heads / kv_heads. */
    int64_t groupSize() const { return heads / kv_heads; }

    /** Weight parameters of one transformer block. */
    int64_t blockParams() const;

    /** Packed weight bytes of one block (W4). */
    int64_t blockParamBytes() const;

    /** Packed weight bytes of the whole model's blocks. */
    int64_t totalParamBytes() const
    {
        return blockParamBytes() * layers;
    }

    /** Arithmetic work of one block at the given shapes. */
    double blockFlops(int64_t seq_len, int64_t kv_len) const;
};

/** GPT-2 (355M class: 24 x 1024, FFN 4096, 16 heads, GELU). */
LlmConfig gpt2Config();

/** Qwen2.5-0.5B (24 x 896, FFN 4864, 14 heads / 2 KV, SiLU). */
LlmConfig qwenConfig();

/** Llama-3.2-1B (22 x 2048, FFN 5632, 32 heads / 4 KV, SiLU). */
LlmConfig llamaConfig();

/** Gemma-3-1B (26 x 1152, FFN 6912, 4 heads / 1 KV, GELU). */
LlmConfig gemmaConfig();

/** All four evaluated models in paper order. */
std::vector<LlmConfig> allConfigs();

} // namespace models
} // namespace streamtensor

#endif // STREAMTENSOR_MODELS_LLM_CONFIG_H
