#include "models/bucketing.h"

#include <algorithm>

#include "support/error.h"
#include "support/math_util.h"

namespace streamtensor {
namespace models {

namespace {

void
checkPolicy(const BucketPolicy &policy)
{
    ST_CHECK(policy.min_len >= 1 && policy.align >= 1 &&
                 policy.growth_num > policy.growth_den &&
                 policy.growth_den >= 1 &&
                 policy.max_len >= policy.min_len,
             "malformed bucket policy");
}

int64_t
firstBoundary(const BucketPolicy &policy)
{
    return std::min(alignTo(policy.min_len, policy.align),
                    policy.max_len);
}

/** The ladder boundary after @p b: grow by the policy ratio (at
 *  least one step), align up, clamp at max_len. */
int64_t
nextBoundary(int64_t b, const BucketPolicy &policy)
{
    int64_t grown = b * policy.growth_num / policy.growth_den;
    return std::min(
        alignTo(std::max(grown, b + 1), policy.align),
        policy.max_len);
}

} // namespace

std::vector<int64_t>
bucketBoundaries(const BucketPolicy &policy)
{
    checkPolicy(policy);
    std::vector<int64_t> boundaries;
    for (int64_t b = firstBoundary(policy); b < policy.max_len;
         b = nextBoundary(b, policy))
        boundaries.push_back(b);
    boundaries.push_back(policy.max_len);
    return boundaries;
}

int64_t
bucketLen(int64_t len, const BucketPolicy &policy)
{
    checkPolicy(policy);
    ST_CHECK(len >= 1, "length must be positive");
    ST_CHECK(len <= policy.max_len,
             "length exceeds the largest bucket");
    int64_t b = firstBoundary(policy);
    while (b < len)
        b = nextBoundary(b, policy);
    return b;
}

BlockShapes
bucketedPrefillShapes(int64_t input_len, const BucketPolicy &policy)
{
    return prefillShapes(bucketLen(input_len, policy));
}

BlockShapes
bucketedDecodeShapes(int64_t kv_len, const BucketPolicy &policy)
{
    return decodeShapes(bucketLen(kv_len, policy));
}

} // namespace models
} // namespace streamtensor
