#include "models/block_builder.h"

#include "linalg/builders.h"
#include "support/error.h"

namespace streamtensor {
namespace models {

namespace {

using linalg::Graph;
using linalg::IndexingMap;
using linalg::IteratorKind;
using linalg::OpInfo;

/** Generic contraction helper. */
int64_t
addContraction(Graph &g, const std::string &name,
               std::vector<int64_t> extents,
               std::vector<IteratorKind> iterators,
               std::vector<int64_t> inputs,
               std::vector<IndexingMap> input_indexing,
               ir::TensorType out_type, IndexingMap out_indexing)
{
    int64_t out = g.addTensor(std::move(out_type), name);
    OpInfo op;
    op.kind = linalg::OpKind::MatMul;
    op.name = name;
    op.inputs = std::move(inputs);
    op.output = out;
    op.loop_extents = std::move(extents);
    op.iterators = std::move(iterators);
    op.input_indexing = std::move(input_indexing);
    op.output_indexing = std::move(out_indexing);
    op.flops_per_point = 2.0;
    g.addOp(std::move(op));
    return out;
}

constexpr auto P = IteratorKind::Parallel;
constexpr auto R = IteratorKind::Reduction;

} // namespace

BlockShapes
prefillShapes(int64_t input_len)
{
    return BlockShapes{input_len, input_len};
}

BlockShapes
decodeShapes(int64_t kv_len)
{
    return BlockShapes{1, kv_len};
}

linalg::Graph
buildTransformerBlock(const LlmConfig &config,
                      const BlockShapes &shapes)
{
    ST_CHECK(shapes.seq_len >= 1 && shapes.kv_len >= 1,
             "block shapes must be positive");
    int64_t s = shapes.seq_len;
    int64_t l = shapes.kv_len;
    int64_t h = config.hidden;
    int64_t f = config.ffn_hidden;
    int64_t kvh = config.kv_heads;
    int64_t grp = config.groupSize();
    int64_t hd = config.head_dim;
    ir::DataType act = config.act_dtype;
    ir::DataType wt = config.weight_dtype;

    Graph g(config.name + "_block_s" + std::to_string(s) + "_l" +
            std::to_string(l));

    using ir::TensorType;
    using linalg::TensorRole;

    int64_t x = g.addTensor(TensorType(act, {s, h}), "x",
                            TensorRole::Input);
    int64_t w_norm1 = g.addTensor(TensorType(ir::DataType::F32, {h}),
                                  "w_norm1", TensorRole::Parameter);
    int64_t w_norm2 = g.addTensor(TensorType(ir::DataType::F32, {h}),
                                  "w_norm2", TensorRole::Parameter);

    // ---- Attention ----
    int64_t h1 =
        config.norm == NormKind::LayerNorm
            ? linalg::layerNorm(g, x, w_norm1, "norm1")
            : linalg::rmsNorm(g, x, w_norm1, "norm1");

    int64_t wq = g.addTensor(TensorType(wt, {h, kvh, grp, hd}),
                             "wq", TensorRole::Parameter);
    int64_t wk = g.addTensor(TensorType(wt, {h, kvh, hd}), "wk",
                             TensorRole::Parameter);
    int64_t wv = g.addTensor(TensorType(wt, {h, kvh, hd}), "wv",
                             TensorRole::Parameter);

    // q[kvh, grp, s, hd] = sum_h x[s, h] * wq[h, kvh, grp, hd]
    int64_t q = addContraction(
        g, "q_proj", {kvh, grp, s, hd, h}, {P, P, P, P, R},
        {h1, wq},
        {IndexingMap{{2, 4}}, IndexingMap{{4, 0, 1, 3}}},
        TensorType(act, {kvh, grp, s, hd}),
        IndexingMap{{0, 1, 2, 3}});

    // k_new[kvh, s, hd] = sum_h x[s, h] * wk[h, kvh, hd]
    int64_t k_new = addContraction(
        g, "k_proj", {kvh, s, hd, h}, {P, P, P, R}, {h1, wk},
        {IndexingMap{{1, 3}}, IndexingMap{{3, 0, 2}}},
        TensorType(act, {kvh, s, hd}), IndexingMap{{0, 1, 2}});
    int64_t v_new = addContraction(
        g, "v_proj", {kvh, s, hd, h}, {P, P, P, R}, {h1, wv},
        {IndexingMap{{1, 3}}, IndexingMap{{3, 0, 2}}},
        TensorType(act, {kvh, s, hd}), IndexingMap{{0, 1, 2}});

    if (config.rope) {
        q = linalg::rope(g, q, "rope_q");
        k_new = linalg::rope(g, k_new, "rope_k");
    }

    // KV caches hold the full context (past + current).
    int64_t k_cache = g.addTensor(TensorType(act, {kvh, l, hd}),
                                  "k_cache", TensorRole::KvCache);
    int64_t v_cache = g.addTensor(TensorType(act, {kvh, l, hd}),
                                  "v_cache", TensorRole::KvCache);

    // scores[kvh, grp, s, l] = sum_hd q * k_cache
    int64_t scores = addContraction(
        g, "qk", {kvh, grp, s, l, hd}, {P, P, P, P, R},
        {q, k_cache},
        {IndexingMap{{0, 1, 2, 4}}, IndexingMap{{0, 3, 4}}},
        TensorType(act, {kvh, grp, s, l}),
        IndexingMap{{0, 1, 2, 3}});

    int64_t probs = linalg::softmax(g, scores, "softmax");

    // attn[kvh, grp, s, hd] = sum_l probs * v_cache
    int64_t attn = addContraction(
        g, "pv", {kvh, grp, s, hd, l}, {P, P, P, P, R},
        {probs, v_cache},
        {IndexingMap{{0, 1, 2, 4}}, IndexingMap{{0, 4, 3}}},
        TensorType(act, {kvh, grp, s, hd}),
        IndexingMap{{0, 1, 2, 3}});

    // o[s, h] = sum_{kvh, grp, hd} attn * wo
    int64_t wo = g.addTensor(TensorType(wt, {kvh, grp, hd, h}),
                             "wo", TensorRole::Parameter);
    int64_t o = addContraction(
        g, "o_proj", {s, h, kvh, grp, hd}, {P, P, R, R, R},
        {attn, wo},
        {IndexingMap{{2, 3, 0, 4}}, IndexingMap{{2, 3, 4, 1}}},
        TensorType(act, {s, h}), IndexingMap{{0, 1}});

    int64_t x2 = linalg::ewiseBinary(g, x, o, linalg::EwiseFn::Add,
                                     "residual1");

    // ---- FFN ----
    int64_t h2 =
        config.norm == NormKind::LayerNorm
            ? linalg::layerNorm(g, x2, w_norm2, "norm2")
            : linalg::rmsNorm(g, x2, w_norm2, "norm2");

    int64_t ffn_out;
    if (config.activation == Activation::Silu) {
        int64_t wg = g.addTensor(TensorType(wt, {h, f}), "w_gate",
                                 TensorRole::Parameter);
        int64_t wu = g.addTensor(TensorType(wt, {h, f}), "w_up",
                                 TensorRole::Parameter);
        int64_t wd = g.addTensor(TensorType(wt, {f, h}), "w_down",
                                 TensorRole::Parameter);
        int64_t gate = linalg::matmul(g, h2, wg, act, "gate_proj");
        int64_t up = linalg::matmul(g, h2, wu, act, "up_proj");
        int64_t gact =
            linalg::ewiseUnary(g, gate, linalg::EwiseFn::Silu,
                               "silu");
        int64_t prod = linalg::ewiseBinary(
            g, gact, up, linalg::EwiseFn::Mul, "gate_mul");
        ffn_out = linalg::matmul(g, prod, wd, act, "down_proj");
    } else {
        int64_t w1 = g.addTensor(TensorType(wt, {h, f}), "w_fc1",
                                 TensorRole::Parameter);
        int64_t w2 = g.addTensor(TensorType(wt, {f, h}), "w_fc2",
                                 TensorRole::Parameter);
        int64_t f1 = linalg::matmul(g, h2, w1, act, "fc1");
        int64_t a =
            linalg::ewiseUnary(g, f1, linalg::EwiseFn::Gelu,
                               "gelu");
        ffn_out = linalg::matmul(g, a, w2, act, "fc2");
    }

    int64_t out = linalg::ewiseBinary(
        g, x2, ffn_out, linalg::EwiseFn::Add, "residual2");

    g.tensor(out).role = TensorRole::Output;
    g.tensor(out).name = "block_out";
    g.tensor(k_new).role = TensorRole::Output;
    g.tensor(v_new).role = TensorRole::Output;
    return g;
}

} // namespace models
} // namespace streamtensor
