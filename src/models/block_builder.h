/**
 * @file
 * Transformer-block graph builders. One linalg graph per block:
 * pre-norm attention with GQA and optional RoPE, KV-cache
 * attention, residuals, and a GELU or SiLU(gated) FFN — the
 * workloads the paper fuses onto a single FPGA (§6.1-6.2).
 *
 * GQA is expressed without reshape ops by shaping the head
 * dimension as (kv_heads, group): Q is [kv_heads, group, S, hd]
 * while K/V are [kv_heads, L, hd]; the group loop simply does not
 * index K/V (an affine-friendly broadcast).
 */

#ifndef STREAMTENSOR_MODELS_BLOCK_BUILDER_H
#define STREAMTENSOR_MODELS_BLOCK_BUILDER_H

#include <cstdint>
#include <tuple>

#include "linalg/graph.h"
#include "models/llm_config.h"

namespace streamtensor {
namespace models {

/** Which inference phase the block graph represents. */
enum class Phase { Prefill, Decode };

/** Shapes for one block instantiation. Totally ordered so shapes
 *  can key compile caches and deterministic batch-group maps. */
struct BlockShapes
{
    /** Query tokens processed per execution (input length for
     *  prefill, 1 for decode). */
    int64_t seq_len = 1;

    /** Attention context length (cache + current tokens). */
    int64_t kv_len = 32;
};

inline bool
operator<(const BlockShapes &a, const BlockShapes &b)
{
    return std::tie(a.seq_len, a.kv_len) <
           std::tie(b.seq_len, b.kv_len);
}

inline bool
operator==(const BlockShapes &a, const BlockShapes &b)
{
    return a.seq_len == b.seq_len && a.kv_len == b.kv_len;
}

inline bool
operator!=(const BlockShapes &a, const BlockShapes &b)
{
    return !(a == b);
}

/**
 * Build the linalg graph of one transformer block of @p config at
 * @p shapes. Weight tensors carry TensorRole::Parameter, the
 * hidden-state input TensorRole::Input, KV caches
 * TensorRole::KvCache, and the block output (plus fresh K/V rows)
 * TensorRole::Output.
 */
linalg::Graph buildTransformerBlock(const LlmConfig &config,
                                    const BlockShapes &shapes);

/** Convenience: prefill shapes (seq = kv = input length). */
BlockShapes prefillShapes(int64_t input_len);

/** Convenience: decode shapes at context length @p kv_len. */
BlockShapes decodeShapes(int64_t kv_len);

} // namespace models
} // namespace streamtensor

#endif // STREAMTENSOR_MODELS_BLOCK_BUILDER_H
