#include "linalg/graph.h"

#include <algorithm>
#include <sstream>

#include "support/error.h"
#include "support/math_util.h"

namespace streamtensor {
namespace linalg {

std::string
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::MatMul: return "matmul";
      case OpKind::BatchMatMul: return "batch_matmul";
      case OpKind::Elementwise: return "elementwise";
      case OpKind::Softmax: return "softmax";
      case OpKind::LayerNorm: return "layer_norm";
      case OpKind::RMSNorm: return "rms_norm";
      case OpKind::Rope: return "rope";
      case OpKind::Transpose: return "transpose";
      case OpKind::Fill: return "fill";
      case OpKind::Pack: return "pack";
      case OpKind::Unpack: return "unpack";
    }
    ST_PANIC("unknown linalg OpKind");
}

std::string
ewiseFnName(EwiseFn fn)
{
    switch (fn) {
      case EwiseFn::Add: return "add";
      case EwiseFn::Sub: return "sub";
      case EwiseFn::Mul: return "mul";
      case EwiseFn::Div: return "div";
      case EwiseFn::Gelu: return "gelu";
      case EwiseFn::Silu: return "silu";
      case EwiseFn::Exp: return "exp";
      case EwiseFn::Scale: return "scale";
      case EwiseFn::Residual: return "residual";
    }
    ST_PANIC("unknown EwiseFn");
}

int64_t
OpInfo::numPoints() const
{
    return product(loop_extents);
}

double
OpInfo::flops() const
{
    return static_cast<double>(numPoints()) *
           (flops_per_point +
            static_cast<double>(fused_payloads.size()));
}

int64_t
OpInfo::numReductionLoops() const
{
    return std::count(iterators.begin(), iterators.end(),
                      IteratorKind::Reduction);
}

int64_t
Graph::addTensor(ir::TensorType type, std::string name,
                 TensorRole role)
{
    TensorInfo info;
    info.type = std::move(type);
    info.name = std::move(name);
    info.role = role;
    tensors_.push_back(std::move(info));
    return numTensors() - 1;
}

int64_t
Graph::addOp(OpInfo op)
{
    ST_CHECK(op.loop_extents.size() == op.iterators.size(),
             "op loop extents and iterator kinds must align");
    ST_CHECK(op.input_indexing.size() == op.inputs.size(),
             "op needs one indexing map per input");
    for (int64_t t : op.inputs)
        ST_CHECK(t >= 0 && t < numTensors(), "op input out of range");
    ST_CHECK(op.output >= 0 && op.output < numTensors(),
             "op output out of range");

    auto check_map = [&](const IndexingMap &map, int64_t tensor_id) {
        const auto &shape = tensors_[tensor_id].type.shape();
        ST_CHECK(map.dims.size() == shape.size(),
                 "indexing rank must match tensor rank");
        for (size_t d = 0; d < map.dims.size(); ++d) {
            int64_t l = map.dims[d];
            if (l < 0)
                continue; // broadcast
            ST_CHECK(l < static_cast<int64_t>(op.loop_extents.size()),
                     "indexing references loop out of range");
            ST_CHECK(op.loop_extents[l] == shape[d],
                     "loop extent must equal indexed tensor extent");
        }
    };
    for (size_t i = 0; i < op.inputs.size(); ++i)
        check_map(op.input_indexing[i], op.inputs[i]);
    check_map(op.output_indexing, op.output);

    int64_t id = numOps();
    for (int64_t t : op.inputs)
        tensors_[t].consumers.push_back(id);
    ST_CHECK(tensors_[op.output].producer < 0,
             "tensor already has a producer");
    tensors_[op.output].producer = id;
    ops_.push_back(std::move(op));
    erased_.push_back(false);
    return id;
}

const TensorInfo &
Graph::tensor(int64_t id) const
{
    ST_ASSERT(id >= 0 && id < numTensors(), "tensor id out of range");
    return tensors_[id];
}

TensorInfo &
Graph::tensor(int64_t id)
{
    ST_ASSERT(id >= 0 && id < numTensors(), "tensor id out of range");
    return tensors_[id];
}

const OpInfo &
Graph::op(int64_t id) const
{
    ST_ASSERT(id >= 0 && id < numOps(), "op id out of range");
    return ops_[id];
}

OpInfo &
Graph::op(int64_t id)
{
    ST_ASSERT(id >= 0 && id < numOps(), "op id out of range");
    return ops_[id];
}

std::vector<int64_t>
Graph::topoOrder() const
{
    std::vector<int64_t> indeg(numOps(), 0);
    for (int64_t i = 0; i < numOps(); ++i) {
        if (erased_[i])
            continue;
        for (int64_t t : ops_[i].inputs) {
            int64_t p = tensors_[t].producer;
            if (p >= 0 && !erased_[p])
                ++indeg[i];
        }
    }
    std::vector<int64_t> ready, order;
    for (int64_t i = 0; i < numOps(); ++i)
        if (!erased_[i] && indeg[i] == 0)
            ready.push_back(i);
    while (!ready.empty()) {
        int64_t u = ready.back();
        ready.pop_back();
        order.push_back(u);
        int64_t out = ops_[u].output;
        for (int64_t c : tensors_[out].consumers) {
            if (erased_[c])
                continue;
            if (--indeg[c] == 0)
                ready.push_back(c);
        }
    }
    int64_t live = 0;
    for (int64_t i = 0; i < numOps(); ++i)
        if (!erased_[i])
            ++live;
    ST_CHECK(static_cast<int64_t>(order.size()) == live,
             "linalg graph must be acyclic");
    return order;
}

void
Graph::eraseOp(int64_t id)
{
    ST_ASSERT(id >= 0 && id < numOps(), "op id out of range");
    erased_[id] = true;
}

bool
Graph::isErased(int64_t id) const
{
    ST_ASSERT(id >= 0 && id < numOps(), "op id out of range");
    return erased_[id];
}

std::vector<int64_t>
Graph::inputTensors() const
{
    std::vector<int64_t> out;
    for (int64_t i = 0; i < numTensors(); ++i)
        if (tensors_[i].role == TensorRole::Input)
            out.push_back(i);
    return out;
}

std::vector<int64_t>
Graph::outputTensors() const
{
    std::vector<int64_t> out;
    for (int64_t i = 0; i < numTensors(); ++i)
        if (tensors_[i].role == TensorRole::Output)
            out.push_back(i);
    return out;
}

int64_t
Graph::intermediateBytes() const
{
    int64_t total = 0;
    for (int64_t i = 0; i < numTensors(); ++i) {
        const TensorInfo &t = tensors_[i];
        if (t.role != TensorRole::Activation)
            continue;
        int64_t p = t.producer;
        if (p < 0 || erased_[p])
            continue;
        bool consumed = false;
        for (int64_t c : t.consumers)
            if (!erased_[c])
                consumed = true;
        if (consumed)
            total += t.type.sizeBytes();
    }
    return total;
}

std::string
Graph::str() const
{
    std::ostringstream os;
    os << "linalg.graph @" << name_ << " {\n";
    for (int64_t id : topoOrder()) {
        const OpInfo &o = ops_[id];
        os << "  %" << tensors_[o.output].name << " = "
           << opKindName(o.kind);
        if (o.kind == OpKind::Elementwise) {
            os << "<" << ewiseFnName(o.ewise_fn);
            for (EwiseFn f : o.fused_payloads)
                os << "+" << ewiseFnName(f);
            os << ">";
        }
        os << "(";
        for (size_t i = 0; i < o.inputs.size(); ++i) {
            if (i)
                os << ", ";
            os << "%" << tensors_[o.inputs[i]].name;
        }
        os << ") : " << tensors_[o.output].type.str() << "\n";
    }
    os << "}\n";
    return os.str();
}

} // namespace linalg
} // namespace streamtensor
