/**
 * @file
 * Structured linear-algebra graph IR — StreamTensor's front-end
 * after Torch-MLIR import (paper Fig. 4, "Linalg" stage).
 *
 * Each op is a perfectly-nested iteration domain (loop extents +
 * iterator kinds) with per-operand indexing, mirroring MLIR's
 * linalg.generic. Named builders (matmul, softmax, ...) live in
 * builders.h; Linalg-level optimizations (elementwise fusion,
 * unit-dim folding, fill fusion) live in passes.h.
 */

#ifndef STREAMTENSOR_LINALG_GRAPH_H
#define STREAMTENSOR_LINALG_GRAPH_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/tensor_type.h"

namespace streamtensor {
namespace linalg {

/** Loop iterator kinds. */
enum class IteratorKind { Parallel, Reduction };

/** Structured op kinds used by the LLM workloads. */
enum class OpKind {
    MatMul,      ///< C[m,n] += A[m,k] * B[k,n]
    BatchMatMul, ///< C[b,m,n] += A[b,m,k] * B[b,k,n]
    Elementwise, ///< generic map over parallel dims (add/mul/act.)
    Softmax,     ///< softmax over the innermost dim
    LayerNorm,   ///< mean/var normalisation over innermost dim
    RMSNorm,     ///< RMS normalisation over innermost dim
    Rope,        ///< rotary positional embedding
    Transpose,   ///< data permutation
    Fill,        ///< fill output with a constant
    Pack,        ///< host-side tiled-layout packing
    Unpack,      ///< inverse of Pack
};

/** Printable mnemonic. */
std::string opKindName(OpKind kind);

/** Elementwise payload functions. */
enum class EwiseFn {
    Add,
    Sub,
    Mul,
    Div,
    Gelu,
    Silu,
    Exp,
    Scale,
    Residual,
};

/** Printable mnemonic. */
std::string ewiseFnName(EwiseFn fn);

/** How a tensor participates in the graph. */
enum class TensorRole {
    Activation, ///< intermediate result
    Parameter,  ///< pre-trained weight (packed offline)
    Input,      ///< model input
    Output,     ///< model output
    KvCache,    ///< attention cache (dynamic length)
};

/** A logical tensor in the graph. */
struct TensorInfo
{
    ir::TensorType type;
    std::string name;
    TensorRole role = TensorRole::Activation;
    int64_t producer = -1; ///< op id or -1
    std::vector<int64_t> consumers;
};

/**
 * Per-operand indexing: operand dim d is indexed by loop
 * `dims[d]`, or broadcast when dims[d] == -1.
 */
struct IndexingMap
{
    std::vector<int64_t> dims;
};

/** One structured op. */
struct OpInfo
{
    OpKind kind = OpKind::Elementwise;
    EwiseFn ewise_fn = EwiseFn::Add; ///< payload when Elementwise
    std::string name;
    std::vector<int64_t> inputs;  ///< tensor ids
    int64_t output = -1;          ///< tensor id
    std::vector<int64_t> loop_extents;
    std::vector<IteratorKind> iterators;
    std::vector<IndexingMap> input_indexing;
    IndexingMap output_indexing;

    /** Arithmetic ops per iteration point (2 for MAC). */
    double flops_per_point = 1.0;

    /** Payloads merged into this op by elementwise fusion. */
    std::vector<EwiseFn> fused_payloads;

    /** Total iteration points. */
    int64_t numPoints() const;

    /** Total arithmetic work. */
    double flops() const;

    /** Count of reduction loops. */
    int64_t numReductionLoops() const;
};

/** The tensor-op graph. */
class Graph
{
  public:
    explicit Graph(std::string name = "graph")
        : name_(std::move(name))
    {}

    const std::string &name() const { return name_; }

    /** Add a tensor; returns its id. */
    int64_t addTensor(ir::TensorType type, std::string name,
                      TensorRole role = TensorRole::Activation);

    /** Add an op; returns its id. Validates indexing ranks. */
    int64_t addOp(OpInfo op);

    int64_t numTensors() const
    {
        return static_cast<int64_t>(tensors_.size());
    }
    int64_t numOps() const
    {
        return static_cast<int64_t>(ops_.size());
    }

    const TensorInfo &tensor(int64_t id) const;
    TensorInfo &tensor(int64_t id);
    const OpInfo &op(int64_t id) const;
    OpInfo &op(int64_t id);

    /** Ids of live ops in topological order. */
    std::vector<int64_t> topoOrder() const;

    /** Mark an op deleted (after fusion rewires around it). */
    void eraseOp(int64_t id);
    bool isErased(int64_t id) const;

    /** Tensors with TensorRole::Input. */
    std::vector<int64_t> inputTensors() const;

    /** Tensors with TensorRole::Output. */
    std::vector<int64_t> outputTensors() const;

    /** Sum of activation bytes flowing between live ops — the
     *  "intermediate results" metric of paper Fig. 10a. */
    int64_t intermediateBytes() const;

    /** Human-readable dump. */
    std::string str() const;

  private:
    std::string name_;
    std::vector<TensorInfo> tensors_;
    std::vector<OpInfo> ops_;
    std::vector<bool> erased_;
};

} // namespace linalg
} // namespace streamtensor

#endif // STREAMTENSOR_LINALG_GRAPH_H
