/**
 * @file
 * Named-op builders for the linalg graph: each creates the output
 * tensor and a structured op with the right iteration domain and
 * indexing, mirroring MLIR named linalg ops.
 */

#ifndef STREAMTENSOR_LINALG_BUILDERS_H
#define STREAMTENSOR_LINALG_BUILDERS_H

#include <string>

#include "linalg/graph.h"

namespace streamtensor {
namespace linalg {

/** C[m,n] = sum_k A[m,k] * B[k,n]; returns C's tensor id.
 *  When @p init >= 0 it is consumed as the accumulator produced by
 *  a fill op (exercised by the fuse-fill pass). @p out_dtype lets
 *  quantized matmuls accumulate wide and emit requantized. */
int64_t matmul(Graph &g, int64_t a, int64_t b,
               ir::DataType out_dtype, const std::string &name,
               int64_t init = -1);

/** C[b,m,n] = sum_k A[b,m,k] * B[b,k,n]. */
int64_t batchMatmul(Graph &g, int64_t a, int64_t b,
                    ir::DataType out_dtype, const std::string &name);

/** Zero/constant-filled tensor of the given type. */
int64_t fill(Graph &g, ir::TensorType type, const std::string &name);

/** Unary elementwise map. */
int64_t ewiseUnary(Graph &g, int64_t x, EwiseFn fn,
                   const std::string &name);

/** Binary elementwise map; shapes must match exactly. */
int64_t ewiseBinary(Graph &g, int64_t a, int64_t b, EwiseFn fn,
                    const std::string &name);

/** Binary elementwise with the second operand broadcast along all
 *  but the last dim (bias/scale vectors). */
int64_t ewiseBroadcast(Graph &g, int64_t a, int64_t vec, EwiseFn fn,
                       const std::string &name);

/** Softmax over the innermost dim. */
int64_t softmax(Graph &g, int64_t x, const std::string &name);

/** LayerNorm over the innermost dim with a weight vector. */
int64_t layerNorm(Graph &g, int64_t x, int64_t weight,
                  const std::string &name);

/** RMSNorm over the innermost dim with a weight vector. */
int64_t rmsNorm(Graph &g, int64_t x, int64_t weight,
                const std::string &name);

/** Rotary positional embedding (elementwise rotation pairs). */
int64_t rope(Graph &g, int64_t x, const std::string &name);

/** Transpose with the given permutation of data dims. */
int64_t transpose(Graph &g, int64_t x,
                  const std::vector<int64_t> &perm,
                  const std::string &name);

/** The figure-5-flavoured two-layer MLP pipeline used across the
 *  compiler tests, the e2e ILP-vs-greedy golden, and
 *  examples/die_placement_lab: i8 input [rows, in] through an
 *  i4-weight matmul to [rows, hidden], gelu, and a second matmul
 *  back to [rows, out]. One shared builder keeps the golden cycle
 *  values and the README's crossings-vs-cycles table anchored to
 *  the same graph. */
Graph mlpPipeline(int64_t rows = 64, int64_t in = 128,
                  int64_t hidden = 256, int64_t out = 64);

} // namespace linalg
} // namespace streamtensor

#endif // STREAMTENSOR_LINALG_BUILDERS_H
