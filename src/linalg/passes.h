/**
 * @file
 * Linalg-level optimization passes (paper Fig. 4 "Linalg
 * Optimization" stage): elementwise-op fusion, unit-extent dim
 * folding, and fill fusion.
 */

#ifndef STREAMTENSOR_LINALG_PASSES_H
#define STREAMTENSOR_LINALG_PASSES_H

#include <cstdint>

#include "linalg/graph.h"

namespace streamtensor {
namespace linalg {

/**
 * Merge producer elementwise ops into their single consumer when
 * both are elementwise over identical domains with identity
 * indexing. Returns the number of ops fused away.
 */
int64_t fuseElementwiseOps(Graph &g);

/**
 * Drop extent-1 loops from every op's iteration domain, rewiring
 * indexing maps (dims indexed by a dropped loop become broadcast).
 * Returns the number of loops removed.
 */
int64_t foldUnitExtentDims(Graph &g);

/**
 * Absorb fill ops into the matmul accumulators they initialise
 * (linalg fill fusion). Returns the number of fills absorbed.
 */
int64_t fuseFill(Graph &g);

} // namespace linalg
} // namespace streamtensor

#endif // STREAMTENSOR_LINALG_PASSES_H
