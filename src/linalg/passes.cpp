#include "linalg/passes.h"

#include <algorithm>

#include "support/error.h"

namespace streamtensor {
namespace linalg {

namespace {

bool
isIdentityIndexing(const IndexingMap &map)
{
    for (size_t i = 0; i < map.dims.size(); ++i)
        if (map.dims[i] != static_cast<int64_t>(i))
            return false;
    return true;
}

/** Live consumers of the op's output tensor. */
std::vector<int64_t>
liveConsumers(const Graph &g, int64_t op_id)
{
    std::vector<int64_t> out;
    int64_t t = g.op(op_id).output;
    for (int64_t c : g.tensor(t).consumers)
        if (!g.isErased(c))
            out.push_back(c);
    return out;
}

} // namespace

int64_t
fuseElementwiseOps(Graph &g)
{
    int64_t fused = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (int64_t id : g.topoOrder()) {
            const OpInfo &producer = g.op(id);
            if (producer.kind != OpKind::Elementwise)
                continue;
            if (!isIdentityIndexing(producer.output_indexing))
                continue;
            auto consumers = liveConsumers(g, id);
            if (consumers.size() != 1)
                continue;
            int64_t cid = consumers[0];
            OpInfo &consumer = g.op(cid);
            if (consumer.kind != OpKind::Elementwise)
                continue;
            if (consumer.loop_extents != producer.loop_extents)
                continue;
            // Locate the consumed operand; it must use identity
            // indexing so the domains align point-for-point.
            int64_t slot = -1;
            for (size_t i = 0; i < consumer.inputs.size(); ++i) {
                if (consumer.inputs[i] == producer.output) {
                    slot = static_cast<int64_t>(i);
                    break;
                }
            }
            ST_ASSERT(slot >= 0, "consumer does not use producer");
            if (!isIdentityIndexing(consumer.input_indexing[slot]))
                continue;
            // Splice the producer's payload (applied first) and
            // inputs into the consumer.
            std::vector<EwiseFn> payloads = producer.fused_payloads;
            payloads.push_back(producer.ewise_fn);
            payloads.insert(payloads.end(),
                            consumer.fused_payloads.begin(),
                            consumer.fused_payloads.end());
            consumer.fused_payloads = std::move(payloads);
            consumer.inputs.erase(consumer.inputs.begin() + slot);
            consumer.input_indexing.erase(
                consumer.input_indexing.begin() + slot);
            for (size_t i = 0; i < producer.inputs.size(); ++i) {
                consumer.inputs.push_back(producer.inputs[i]);
                consumer.input_indexing.push_back(
                    producer.input_indexing[i]);
                g.tensor(producer.inputs[i])
                    .consumers.push_back(cid);
            }
            g.eraseOp(id);
            ++fused;
            changed = true;
        }
    }
    return fused;
}

int64_t
foldUnitExtentDims(Graph &g)
{
    int64_t folded = 0;
    for (int64_t id : g.topoOrder()) {
        OpInfo &op = g.op(id);
        std::vector<int64_t> remap(op.loop_extents.size(), -1);
        std::vector<int64_t> extents;
        std::vector<IteratorKind> iters;
        for (size_t l = 0; l < op.loop_extents.size(); ++l) {
            if (op.loop_extents[l] == 1) {
                ++folded;
                continue;
            }
            remap[l] = static_cast<int64_t>(extents.size());
            extents.push_back(op.loop_extents[l]);
            iters.push_back(op.iterators[l]);
        }
        if (extents.size() == op.loop_extents.size())
            continue;
        // Keep at least one loop so the op still has a domain.
        if (extents.empty()) {
            extents.push_back(1);
            iters.push_back(IteratorKind::Parallel);
        }
        auto rewrite = [&](IndexingMap &map) {
            for (int64_t &d : map.dims)
                if (d >= 0)
                    d = remap[d];
        };
        for (auto &map : op.input_indexing)
            rewrite(map);
        rewrite(op.output_indexing);
        op.loop_extents = std::move(extents);
        op.iterators = std::move(iters);
    }
    return folded;
}

int64_t
fuseFill(Graph &g)
{
    int64_t absorbed = 0;
    for (int64_t id : g.topoOrder()) {
        const OpInfo &op = g.op(id);
        if (op.kind != OpKind::Fill)
            continue;
        auto consumers = liveConsumers(g, id);
        if (consumers.size() != 1)
            continue;
        OpInfo &consumer = g.op(consumers[0]);
        if (consumer.kind != OpKind::MatMul &&
            consumer.kind != OpKind::BatchMatMul) {
            continue;
        }
        // Drop the init operand; the matmul initialises its own
        // accumulator in hardware.
        for (size_t i = 0; i < consumer.inputs.size(); ++i) {
            if (consumer.inputs[i] == op.output) {
                consumer.inputs.erase(consumer.inputs.begin() + i);
                consumer.input_indexing.erase(
                    consumer.input_indexing.begin() + i);
                break;
            }
        }
        g.eraseOp(id);
        ++absorbed;
    }
    return absorbed;
}

} // namespace linalg
} // namespace streamtensor
