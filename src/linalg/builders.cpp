#include "linalg/builders.h"

#include "support/error.h"

namespace streamtensor {
namespace linalg {

namespace {

IndexingMap
identityMap(int64_t rank)
{
    IndexingMap map;
    for (int64_t i = 0; i < rank; ++i)
        map.dims.push_back(i);
    return map;
}

double
ewiseCost(EwiseFn fn)
{
    switch (fn) {
      case EwiseFn::Gelu: return 8.0;
      case EwiseFn::Silu: return 6.0;
      case EwiseFn::Exp: return 4.0;
      case EwiseFn::Div: return 4.0;
      default: return 1.0;
    }
}

} // namespace

int64_t
matmul(Graph &g, int64_t a, int64_t b, ir::DataType out_dtype,
       const std::string &name, int64_t init)
{
    const ir::TensorType ta = g.tensor(a).type;
    const ir::TensorType tb = g.tensor(b).type;
    ST_CHECK(ta.rank() == 2 && tb.rank() == 2,
             "matmul operands must be rank 2");
    ST_CHECK(ta.dim(1) == tb.dim(0),
             "matmul contraction dims must match");
    int64_t m = ta.dim(0), k = ta.dim(1), n = tb.dim(1);
    int64_t out = g.addTensor(ir::TensorType(out_dtype, {m, n}),
                              name);
    OpInfo op;
    op.kind = OpKind::MatMul;
    op.name = name;
    op.inputs = {a, b};
    op.input_indexing = {IndexingMap{{0, 2}}, IndexingMap{{2, 1}}};
    if (init >= 0) {
        ST_CHECK(g.tensor(init).type.shape() ==
                     std::vector<int64_t>({m, n}),
                 "matmul init shape must match output");
        op.inputs.push_back(init);
        op.input_indexing.push_back(IndexingMap{{0, 1}});
    }
    op.output = out;
    op.loop_extents = {m, n, k};
    op.iterators = {IteratorKind::Parallel, IteratorKind::Parallel,
                    IteratorKind::Reduction};
    op.output_indexing = IndexingMap{{0, 1}};
    op.flops_per_point = 2.0;
    g.addOp(std::move(op));
    return out;
}

int64_t
batchMatmul(Graph &g, int64_t a, int64_t b, ir::DataType out_dtype,
            const std::string &name)
{
    const ir::TensorType ta = g.tensor(a).type;
    const ir::TensorType tb = g.tensor(b).type;
    ST_CHECK(ta.rank() == 3 && tb.rank() == 3,
             "batch_matmul operands must be rank 3");
    ST_CHECK(ta.dim(0) == tb.dim(0), "batch dims must match");
    ST_CHECK(ta.dim(2) == tb.dim(1),
             "batch_matmul contraction dims must match");
    int64_t bsz = ta.dim(0), m = ta.dim(1), k = ta.dim(2),
            n = tb.dim(2);
    int64_t out =
        g.addTensor(ir::TensorType(out_dtype, {bsz, m, n}), name);
    OpInfo op;
    op.kind = OpKind::BatchMatMul;
    op.name = name;
    op.inputs = {a, b};
    op.output = out;
    op.loop_extents = {bsz, m, n, k};
    op.iterators = {IteratorKind::Parallel, IteratorKind::Parallel,
                    IteratorKind::Parallel, IteratorKind::Reduction};
    op.input_indexing = {IndexingMap{{0, 1, 3}},
                         IndexingMap{{0, 3, 2}}};
    op.output_indexing = IndexingMap{{0, 1, 2}};
    op.flops_per_point = 2.0;
    g.addOp(std::move(op));
    return out;
}

int64_t
fill(Graph &g, ir::TensorType type, const std::string &name)
{
    int64_t rank = type.rank();
    int64_t out = g.addTensor(type, name);
    OpInfo op;
    op.kind = OpKind::Fill;
    op.name = name;
    op.output = out;
    op.loop_extents = type.shape();
    op.iterators.assign(rank, IteratorKind::Parallel);
    op.output_indexing = identityMap(rank);
    op.flops_per_point = 0.0;
    g.addOp(std::move(op));
    return out;
}

int64_t
ewiseUnary(Graph &g, int64_t x, EwiseFn fn, const std::string &name)
{
    const ir::TensorType tx = g.tensor(x).type;
    int64_t out = g.addTensor(tx, name);
    OpInfo op;
    op.kind = OpKind::Elementwise;
    op.ewise_fn = fn;
    op.name = name;
    op.inputs = {x};
    op.output = out;
    op.loop_extents = tx.shape();
    op.iterators.assign(tx.rank(), IteratorKind::Parallel);
    op.input_indexing = {identityMap(tx.rank())};
    op.output_indexing = identityMap(tx.rank());
    op.flops_per_point = ewiseCost(fn);
    g.addOp(std::move(op));
    return out;
}

int64_t
ewiseBinary(Graph &g, int64_t a, int64_t b, EwiseFn fn,
            const std::string &name)
{
    const ir::TensorType ta = g.tensor(a).type;
    const ir::TensorType tb = g.tensor(b).type;
    ST_CHECK(ta.shape() == tb.shape(),
             "ewise binary operands must have equal shapes");
    int64_t out = g.addTensor(ta, name);
    OpInfo op;
    op.kind = OpKind::Elementwise;
    op.ewise_fn = fn;
    op.name = name;
    op.inputs = {a, b};
    op.output = out;
    op.loop_extents = ta.shape();
    op.iterators.assign(ta.rank(), IteratorKind::Parallel);
    op.input_indexing = {identityMap(ta.rank()),
                         identityMap(ta.rank())};
    op.output_indexing = identityMap(ta.rank());
    op.flops_per_point = ewiseCost(fn);
    g.addOp(std::move(op));
    return out;
}

int64_t
ewiseBroadcast(Graph &g, int64_t a, int64_t vec, EwiseFn fn,
               const std::string &name)
{
    const ir::TensorType ta = g.tensor(a).type;
    const ir::TensorType tv = g.tensor(vec).type;
    ST_CHECK(tv.rank() == 1 &&
                 tv.dim(0) == ta.dim(ta.rank() - 1),
             "broadcast vector must match the innermost dim");
    int64_t out = g.addTensor(ta, name);
    OpInfo op;
    op.kind = OpKind::Elementwise;
    op.ewise_fn = fn;
    op.name = name;
    op.inputs = {a, vec};
    op.output = out;
    op.loop_extents = ta.shape();
    op.iterators.assign(ta.rank(), IteratorKind::Parallel);
    op.input_indexing = {identityMap(ta.rank()),
                         IndexingMap{{ta.rank() - 1}}};
    op.output_indexing = identityMap(ta.rank());
    op.flops_per_point = ewiseCost(fn);
    g.addOp(std::move(op));
    return out;
}

namespace {

int64_t
innerReduceOp(Graph &g, int64_t x, int64_t weight, OpKind kind,
              double cost, const std::string &name)
{
    const ir::TensorType tx = g.tensor(x).type;
    int64_t out = g.addTensor(tx, name);
    OpInfo op;
    op.kind = kind;
    op.name = name;
    op.inputs = {x};
    op.input_indexing = {identityMap(tx.rank())};
    if (weight >= 0) {
        const ir::TensorType tw = g.tensor(weight).type;
        ST_CHECK(tw.rank() == 1 &&
                     tw.dim(0) == tx.dim(tx.rank() - 1),
                 "norm weight must match the innermost dim");
        op.inputs.push_back(weight);
        op.input_indexing.push_back(IndexingMap{{tx.rank() - 1}});
    }
    op.output = out;
    op.loop_extents = tx.shape();
    op.iterators.assign(tx.rank(), IteratorKind::Parallel);
    op.iterators.back() = IteratorKind::Reduction;
    op.output_indexing = identityMap(tx.rank());
    op.flops_per_point = cost;
    g.addOp(std::move(op));
    return out;
}

} // namespace

int64_t
softmax(Graph &g, int64_t x, const std::string &name)
{
    return innerReduceOp(g, x, -1, OpKind::Softmax, 5.0, name);
}

int64_t
layerNorm(Graph &g, int64_t x, int64_t weight,
          const std::string &name)
{
    return innerReduceOp(g, x, weight, OpKind::LayerNorm, 6.0, name);
}

int64_t
rmsNorm(Graph &g, int64_t x, int64_t weight, const std::string &name)
{
    return innerReduceOp(g, x, weight, OpKind::RMSNorm, 4.0, name);
}

int64_t
rope(Graph &g, int64_t x, const std::string &name)
{
    const ir::TensorType tx = g.tensor(x).type;
    int64_t out = g.addTensor(tx, name);
    OpInfo op;
    op.kind = OpKind::Rope;
    op.name = name;
    op.inputs = {x};
    op.output = out;
    op.loop_extents = tx.shape();
    op.iterators.assign(tx.rank(), IteratorKind::Parallel);
    op.input_indexing = {identityMap(tx.rank())};
    op.output_indexing = identityMap(tx.rank());
    op.flops_per_point = 4.0;
    g.addOp(std::move(op));
    return out;
}

int64_t
transpose(Graph &g, int64_t x, const std::vector<int64_t> &perm,
          const std::string &name)
{
    const ir::TensorType tx = g.tensor(x).type;
    ST_CHECK(static_cast<int64_t>(perm.size()) == tx.rank(),
             "transpose perm rank mismatch");
    std::vector<int64_t> out_shape;
    for (int64_t p : perm)
        out_shape.push_back(tx.dim(p));
    int64_t out =
        g.addTensor(ir::TensorType(tx.dtype(), out_shape), name);
    OpInfo op;
    op.kind = OpKind::Transpose;
    op.name = name;
    op.inputs = {x};
    op.output = out;
    op.loop_extents = out_shape;
    op.iterators.assign(tx.rank(), IteratorKind::Parallel);
    // Output dim i is loop i; input dim perm[i] is loop i, i.e.
    // input dim d is indexed by loop invPerm[d].
    IndexingMap in_map;
    in_map.dims.assign(tx.rank(), -1);
    for (int64_t i = 0; i < tx.rank(); ++i)
        in_map.dims[perm[i]] = i;
    op.input_indexing = {in_map};
    op.output_indexing = identityMap(tx.rank());
    op.flops_per_point = 0.0;
    g.addOp(std::move(op));
    return out;
}

Graph
mlpPipeline(int64_t rows, int64_t in, int64_t hidden, int64_t out)
{
    Graph g("fig5_pipeline");
    int64_t x = g.addTensor(
        ir::TensorType(ir::DataType::I8, {rows, in}), "x",
        TensorRole::Input);
    int64_t w1 = g.addTensor(
        ir::TensorType(ir::DataType::I4, {in, hidden}), "w1",
        TensorRole::Parameter);
    int64_t h = matmul(g, x, w1, ir::DataType::I8, "fc1");
    int64_t a = ewiseUnary(g, h, EwiseFn::Gelu, "gelu");
    int64_t w2 = g.addTensor(
        ir::TensorType(ir::DataType::I4, {hidden, out}), "w2",
        TensorRole::Parameter);
    int64_t y = matmul(g, a, w2, ir::DataType::I8, "fc2");
    g.tensor(y).role = TensorRole::Output;
    return g;
}

} // namespace linalg
} // namespace streamtensor
