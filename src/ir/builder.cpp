#include "ir/builder.h"

#include "support/error.h"

namespace streamtensor {
namespace ir {

Op *
OpBuilder::create(OpKind kind, const std::vector<Value *> &operands,
                  const std::vector<Type> &result_types,
                  std::string label)
{
    // Op's constructor is private; build through a keyed helper.
    std::unique_ptr<Op> op(new Op(kind, std::move(label)));
    op->parent_ = region_;
    for (Value *v : operands) {
        ST_ASSERT(v != nullptr, "null operand");
        op->operands_.push_back(v);
        v->users_.push_back(op.get());
    }
    for (const Type &t : result_types) {
        auto val = std::make_unique<Value>(t, module_.freshName());
        val->defining_op_ = op.get();
        op->results_.push_back(std::move(val));
    }
    Op *raw = op.get();
    region_->ops_.push_back(std::move(op));
    return raw;
}

Region *
OpBuilder::addRegion(Op *op)
{
    op->regions_.push_back(std::make_unique<Region>(op));
    return op->regions_.back().get();
}

Op *
OpBuilder::itensorEmpty(const ITensorType &type)
{
    return create(OpKind::ItensorEmpty, {}, {Type(type)});
}

Op *
OpBuilder::itensorInstance(const ITensorType &type)
{
    return create(OpKind::ItensorInstance, {}, {Type(type)});
}

Op *
OpBuilder::itensorWrite(Value *value, Value *dest)
{
    ST_CHECK(dest->type().isITensor(),
             "itensor_write dest must be an itensor");
    return create(OpKind::ItensorWrite, {value, dest},
                  {dest->type()});
}

Op *
OpBuilder::itensorRead(Value *source)
{
    ST_CHECK(source->type().isITensor(),
             "itensor_read source must be an itensor");
    const ITensorType &it = source->type().itensor();
    TensorType elem(it.dtype(), it.elementShape());
    return create(OpKind::ItensorRead, {source}, {Type(elem)});
}

Op *
OpBuilder::itensorConverter(Value *source, const ITensorType &result)
{
    ST_CHECK(source->type().isITensor(),
             "itensor_converter source must be an itensor");
    ST_CHECK(source->type().itensor().sameDataSpace(result),
             "itensor_converter requires matching data spaces");
    return create(OpKind::ItensorConverter, {source}, {Type(result)});
}

Op *
OpBuilder::itensorFork(Value *source, int64_t n)
{
    ST_CHECK(source->type().isITensor(),
             "itensor_fork source must be an itensor");
    std::vector<Type> types(n, source->type());
    return create(OpKind::ItensorFork, {source}, types);
}

Op *
OpBuilder::kernel(const std::vector<Value *> &sources,
                  const std::vector<Type> &result_types,
                  std::string label)
{
    for (Value *v : sources)
        ST_CHECK(v->type().isTensor(),
                 "kernel sources must be tensors");
    for (const Type &t : result_types)
        ST_CHECK(t.isTensor(), "kernel results must be tensors");
    Op *op = create(OpKind::Kernel, sources, result_types,
                    std::move(label));
    addRegion(op);
    return op;
}

Op *
OpBuilder::task(const std::vector<Value *> &inits,
                const std::vector<Type> &result_types,
                std::string label)
{
    Op *op = create(OpKind::Task, inits, result_types,
                    std::move(label));
    addRegion(op);
    return op;
}

Op *
OpBuilder::yield(const std::vector<Value *> &outputs)
{
    return create(OpKind::Yield, outputs, {});
}

Op *
OpBuilder::streamCreate(const StreamType &type)
{
    return create(OpKind::StreamCreate, {}, {Type(type)});
}

Op *
OpBuilder::streamRead(Value *stream, const Type &value_type)
{
    ST_CHECK(stream->type().isStream(),
             "stream_read source must be a stream");
    return create(OpKind::StreamRead, {stream}, {value_type});
}

Op *
OpBuilder::streamWrite(Value *value, Value *stream)
{
    ST_CHECK(stream->type().isStream(),
             "stream_write dest must be a stream");
    return create(OpKind::StreamWrite, {value, stream}, {});
}

Op *
OpBuilder::bufferCreate(const MemRefType &type)
{
    return create(OpKind::BufferCreate, {}, {Type(type)});
}

Op *
OpBuilder::loopNest(const std::vector<int64_t> &trips,
                    std::string label)
{
    Op *op = create(OpKind::LoopNest, {}, {}, std::move(label));
    op->setAttr("trips", trips);
    addRegion(op);
    return op;
}

} // namespace ir
} // namespace streamtensor
