#include "ir/tensor_type.h"

#include <sstream>

#include "support/error.h"
#include "support/math_util.h"

namespace streamtensor {
namespace ir {

TensorType::TensorType(DataType dtype, std::vector<int64_t> shape)
    : dtype_(dtype), shape_(std::move(shape))
{
    for (int64_t d : shape_)
        ST_CHECK(d >= 1, "tensor dims must be >= 1");
}

int64_t
TensorType::dim(int64_t i) const
{
    ST_ASSERT(i >= 0 && i < rank(), "dim index out of range");
    return shape_[i];
}

int64_t
TensorType::numElements() const
{
    return product(shape_);
}

int64_t
TensorType::sizeBytes() const
{
    return ceilDiv(numElements() * bitWidth(dtype_), 8);
}

bool
TensorType::operator==(const TensorType &o) const
{
    return dtype_ == o.dtype_ && shape_ == o.shape_;
}

std::string
TensorType::str() const
{
    std::ostringstream os;
    os << "tensor<";
    for (int64_t d : shape_)
        os << d << "x";
    os << dataTypeName(dtype_) << ">";
    return os.str();
}

} // namespace ir
} // namespace streamtensor
