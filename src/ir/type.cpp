#include "ir/type.h"

#include <sstream>

#include "support/error.h"
#include "support/math_util.h"

namespace streamtensor {
namespace ir {

std::string
memoryKindName(MemoryKind kind)
{
    switch (kind) {
      case MemoryKind::LUTRAM: return "lutram";
      case MemoryKind::BRAM: return "bram";
      case MemoryKind::URAM: return "uram";
      case MemoryKind::Auto: return "auto";
    }
    ST_PANIC("unknown MemoryKind");
}

MemRefType::MemRefType(DataType dtype, std::vector<int64_t> shape,
                       bool ping_pong, MemoryKind kind)
    : dtype_(dtype), shape_(std::move(shape)), ping_pong_(ping_pong),
      kind_(kind)
{
    for (int64_t d : shape_)
        ST_CHECK(d >= 1, "memref dims must be >= 1");
}

int64_t
MemRefType::numElements() const
{
    return product(shape_);
}

int64_t
MemRefType::storageBytes() const
{
    int64_t banks = ping_pong_ ? 2 : 1;
    return banks * ceilDiv(numElements() * bitWidth(dtype_), 8);
}

bool
MemRefType::operator==(const MemRefType &o) const
{
    return dtype_ == o.dtype_ && shape_ == o.shape_ &&
           ping_pong_ == o.ping_pong_ && kind_ == o.kind_;
}

std::string
MemRefType::str() const
{
    std::ostringstream os;
    os << "memref<";
    for (int64_t d : shape_)
        os << d << "x";
    os << dataTypeName(dtype_);
    if (ping_pong_)
        os << ", ping_pong";
    if (kind_ != MemoryKind::Auto)
        os << ", " << memoryKindName(kind_);
    os << ">";
    return os.str();
}

bool
Type::isTensor() const
{
    return std::holds_alternative<TensorType>(storage_);
}

bool
Type::isITensor() const
{
    return std::holds_alternative<ITensorType>(storage_);
}

bool
Type::isStream() const
{
    return std::holds_alternative<StreamType>(storage_);
}

bool
Type::isMemRef() const
{
    return std::holds_alternative<MemRefType>(storage_);
}

const TensorType &
Type::tensor() const
{
    ST_ASSERT(isTensor(), "type is not a tensor");
    return std::get<TensorType>(storage_);
}

const ITensorType &
Type::itensor() const
{
    ST_ASSERT(isITensor(), "type is not an itensor");
    return std::get<ITensorType>(storage_);
}

const StreamType &
Type::stream() const
{
    ST_ASSERT(isStream(), "type is not a stream");
    return std::get<StreamType>(storage_);
}

const MemRefType &
Type::memref() const
{
    ST_ASSERT(isMemRef(), "type is not a memref");
    return std::get<MemRefType>(storage_);
}

std::string
Type::str() const
{
    if (isTensor())
        return tensor().str();
    if (isITensor())
        return itensor().str();
    if (isStream())
        return stream().str();
    return memref().str();
}

} // namespace ir
} // namespace streamtensor
