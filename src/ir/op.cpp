#include "ir/op.h"

#include <sstream>

#include "support/error.h"

namespace streamtensor {
namespace ir {

std::string
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::ItensorEmpty: return "itensor_empty";
      case OpKind::ItensorInstance: return "itensor_instance";
      case OpKind::ItensorRead: return "itensor_read";
      case OpKind::ItensorWrite: return "itensor_write";
      case OpKind::ItensorCast: return "itensor_cast";
      case OpKind::ItensorReassociate: return "itensor_reassociate";
      case OpKind::ItensorConverter: return "itensor_converter";
      case OpKind::ItensorChunk: return "itensor_chunk";
      case OpKind::ItensorConcat: return "itensor_concat";
      case OpKind::ItensorFork: return "itensor_fork";
      case OpKind::ItensorJoin: return "itensor_join";
      case OpKind::ItensorToStream: return "itensor_to_stream";
      case OpKind::StreamToItensor: return "stream_to_itensor";
      case OpKind::StreamCreate: return "stream";
      case OpKind::StreamRead: return "stream_read";
      case OpKind::StreamWrite: return "stream_write";
      case OpKind::StreamCast: return "stream_cast";
      case OpKind::BufferCreate: return "buffer";
      case OpKind::Kernel: return "kernel";
      case OpKind::Task: return "task";
      case OpKind::Yield: return "yield";
      case OpKind::LoopNest: return "loop_nest";
      case OpKind::Compute: return "compute";
      case OpKind::TensorPack: return "tensor.pack";
      case OpKind::TensorUnpack: return "tensor.unpack";
      case OpKind::TensorWiden: return "tensor_ext.widen";
      case OpKind::TensorUnwiden: return "tensor_ext.unwiden";
      case OpKind::Dma: return "dma";
    }
    ST_PANIC("unknown OpKind");
}

Value *
Region::addArgument(Type type, std::string name)
{
    args_.push_back(
        std::make_unique<Value>(std::move(type), std::move(name)));
    return args_.back().get();
}

Value *
Region::argument(int64_t i) const
{
    ST_ASSERT(i >= 0 && i < static_cast<int64_t>(args_.size()),
              "region argument index out of range");
    return args_[i].get();
}

Op *
Region::terminator() const
{
    return ops_.empty() ? nullptr : ops_.back().get();
}

Value *
Op::operand(int64_t i) const
{
    ST_ASSERT(i >= 0 && i < numOperands(),
              "operand index out of range");
    return operands_[i];
}

Value *
Op::result(int64_t i) const
{
    ST_ASSERT(i >= 0 && i < numResults(), "result index out of range");
    return results_[i].get();
}

bool
Op::hasAttr(const std::string &key) const
{
    return attrs_.count(key) > 0;
}

void
Op::setAttr(const std::string &key, Attribute value)
{
    attrs_[key] = std::move(value);
}

int64_t
Op::intAttr(const std::string &key) const
{
    auto it = attrs_.find(key);
    ST_ASSERT(it != attrs_.end(), "missing attribute: " + key);
    return std::get<int64_t>(it->second);
}

double
Op::doubleAttr(const std::string &key) const
{
    auto it = attrs_.find(key);
    ST_ASSERT(it != attrs_.end(), "missing attribute: " + key);
    return std::get<double>(it->second);
}

const std::string &
Op::strAttr(const std::string &key) const
{
    auto it = attrs_.find(key);
    ST_ASSERT(it != attrs_.end(), "missing attribute: " + key);
    return std::get<std::string>(it->second);
}

const std::vector<int64_t> &
Op::intsAttr(const std::string &key) const
{
    auto it = attrs_.find(key);
    ST_ASSERT(it != attrs_.end(), "missing attribute: " + key);
    return std::get<std::vector<int64_t>>(it->second);
}

Region *
Op::region(int64_t i) const
{
    ST_ASSERT(i >= 0 && i < numRegions(), "region index out of range");
    return regions_[i].get();
}

std::string
Module::freshName()
{
    std::ostringstream os;
    os << "%" << next_value_++;
    return os.str();
}

} // namespace ir
} // namespace streamtensor
