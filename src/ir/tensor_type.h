/**
 * @file
 * Memory-mapped tensor type: a data type plus a static shape.
 */

#ifndef STREAMTENSOR_IR_TENSOR_TYPE_H
#define STREAMTENSOR_IR_TENSOR_TYPE_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/data_type.h"

namespace streamtensor {
namespace ir {

/**
 * A traditional memory-mapped tensor type (cf. paper §3.1.1):
 * elements addressed by offsets, no streaming order implied.
 */
class TensorType
{
  public:
    TensorType() : dtype_(DataType::F32) {}
    TensorType(DataType dtype, std::vector<int64_t> shape);

    DataType dtype() const { return dtype_; }
    const std::vector<int64_t> &shape() const { return shape_; }
    int64_t rank() const
    {
        return static_cast<int64_t>(shape_.size());
    }
    int64_t dim(int64_t i) const;

    /** Total number of scalar elements. */
    int64_t numElements() const;

    /** Total storage in bytes (sub-byte types round per-tensor). */
    int64_t sizeBytes() const;

    bool operator==(const TensorType &o) const;
    bool operator!=(const TensorType &o) const { return !(*this == o); }

    /** Render as "tensor<8x8xf32>". */
    std::string str() const;

  private:
    DataType dtype_;
    std::vector<int64_t> shape_;
};

} // namespace ir
} // namespace streamtensor

#endif // STREAMTENSOR_IR_TENSOR_TYPE_H
