#include "ir/printer.h"

#include <sstream>

namespace streamtensor {
namespace ir {

namespace {

void printOpImpl(std::ostringstream &os, const Op &op, int indent);

std::string
attrStr(const Attribute &attr)
{
    std::ostringstream os;
    if (std::holds_alternative<int64_t>(attr)) {
        os << std::get<int64_t>(attr);
    } else if (std::holds_alternative<double>(attr)) {
        os << std::get<double>(attr);
    } else if (std::holds_alternative<std::string>(attr)) {
        os << '"' << std::get<std::string>(attr) << '"';
    } else {
        const auto &v = std::get<std::vector<int64_t>>(attr);
        os << "[";
        for (size_t i = 0; i < v.size(); ++i) {
            if (i)
                os << ",";
            os << v[i];
        }
        os << "]";
    }
    return os.str();
}

void
printRegion(std::ostringstream &os, const Region &region, int indent)
{
    std::string pad(indent * 2, ' ');
    os << "{";
    if (!region.arguments().empty()) {
        os << " (";
        for (size_t i = 0; i < region.arguments().size(); ++i) {
            if (i)
                os << ", ";
            const auto &arg = region.arguments()[i];
            os << arg->name() << " : " << arg->type().str();
        }
        os << ")";
    }
    os << "\n";
    for (const auto &inner : region.ops())
        printOpImpl(os, *inner, indent + 1);
    os << pad << "}";
}

void
printOpImpl(std::ostringstream &os, const Op &op, int indent)
{
    std::string pad(indent * 2, ' ');
    os << pad;
    if (op.numResults() > 0) {
        for (int64_t i = 0; i < op.numResults(); ++i) {
            if (i)
                os << ", ";
            os << op.result(i)->name();
        }
        os << " = ";
    }
    os << opKindName(op.kind());
    if (!op.label().empty())
        os << " @" << op.label();
    if (op.numOperands() > 0) {
        os << "(";
        for (int64_t i = 0; i < op.numOperands(); ++i) {
            if (i)
                os << ", ";
            os << op.operand(i)->name();
        }
        os << ")";
    }
    if (!op.attrs().empty()) {
        os << " {";
        bool first = true;
        for (const auto &[key, value] : op.attrs()) {
            if (!first)
                os << ", ";
            first = false;
            os << key << " = " << attrStr(value);
        }
        os << "}";
    }
    for (int64_t i = 0; i < op.numRegions(); ++i) {
        os << " ";
        printRegion(os, *op.region(i), indent);
    }
    if (op.numResults() > 0) {
        os << " : ";
        for (int64_t i = 0; i < op.numResults(); ++i) {
            if (i)
                os << ", ";
            os << op.result(i)->type().str();
        }
    }
    os << "\n";
}

} // namespace

std::string
printModule(const Module &module)
{
    std::ostringstream os;
    os << "module @" << module.name() << " {\n";
    for (const auto &op : module.body().ops())
        printOpImpl(os, *op, 1);
    os << "}\n";
    return os.str();
}

std::string
printOp(const Op &op, int indent)
{
    std::ostringstream os;
    printOpImpl(os, op, indent);
    return os.str();
}

} // namespace ir
} // namespace streamtensor
