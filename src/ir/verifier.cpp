#include "ir/verifier.h"

#include <sstream>

namespace streamtensor {
namespace ir {

namespace {

/** Collects diagnostics while walking the IR. */
class Verifier
{
  public:
    VerifyResult takeResult() { return std::move(result_); }

    void
    error(const Op &op, const std::string &msg)
    {
        std::ostringstream os;
        os << opKindName(op.kind());
        if (!op.label().empty())
            os << " @" << op.label();
        os << ": " << msg;
        result_.diagnostics.push_back(os.str());
    }

    void
    verify(const Op &op)
    {
        switch (op.kind()) {
          case OpKind::ItensorEmpty:
          case OpKind::ItensorInstance:
            checkCounts(op, 0, 1);
            checkResultITensor(op);
            break;
          case OpKind::ItensorRead:
            verifyRead(op);
            break;
          case OpKind::ItensorWrite:
            verifyWrite(op);
            break;
          case OpKind::ItensorCast:
            checkCounts(op, 1, 1);
            checkOperandITensor(op, 0);
            checkResultITensor(op);
            break;
          case OpKind::ItensorReassociate:
            verifyReassociate(op);
            break;
          case OpKind::ItensorConverter:
            verifyConverter(op);
            break;
          case OpKind::ItensorChunk:
          case OpKind::ItensorConcat:
            verifyChunkConcat(op);
            break;
          case OpKind::ItensorFork:
            verifyFork(op);
            break;
          case OpKind::ItensorJoin:
            verifyJoin(op);
            break;
          case OpKind::ItensorToStream:
            checkCounts(op, 1, 1);
            checkOperandITensor(op, 0);
            if (!op.result()->type().isStream())
                error(op, "result must be a stream");
            break;
          case OpKind::StreamToItensor:
            checkCounts(op, 1, 1);
            if (!op.operand(0)->type().isStream())
                error(op, "operand must be a stream");
            checkResultITensor(op);
            break;
          case OpKind::StreamCreate:
            checkCounts(op, 0, 1);
            if (!op.result()->type().isStream())
                error(op, "result must be a stream");
            break;
          case OpKind::StreamRead:
            checkCounts(op, 1, 1);
            if (!op.operand(0)->type().isStream())
                error(op, "source must be a stream");
            break;
          case OpKind::StreamWrite:
            checkCounts(op, 2, 0);
            if (!op.operand(1)->type().isStream())
                error(op, "dest must be a stream");
            break;
          case OpKind::StreamCast:
            checkCounts(op, 1, 1);
            break;
          case OpKind::BufferCreate:
            checkCounts(op, 0, 1);
            if (!op.result()->type().isMemRef())
                error(op, "result must be a memref");
            break;
          case OpKind::Kernel:
            verifyKernel(op);
            break;
          case OpKind::Task:
            verifyTask(op);
            break;
          case OpKind::Yield:
            verifyYield(op);
            break;
          case OpKind::LoopNest:
            if (!op.hasAttr("trips"))
                error(op, "loop_nest requires a trips attribute");
            break;
          default:
            break;
        }
        for (int64_t i = 0; i < op.numRegions(); ++i)
            for (const auto &inner : op.region(i)->ops())
                verify(*inner);
    }

  private:
    void
    checkCounts(const Op &op, int64_t operands, int64_t results)
    {
        if (op.numOperands() != operands)
            error(op, "expected " + std::to_string(operands) +
                          " operands");
        if (op.numResults() != results)
            error(op, "expected " + std::to_string(results) +
                          " results");
    }

    bool
    checkOperandITensor(const Op &op, int64_t i)
    {
        if (i >= op.numOperands() ||
            !op.operand(i)->type().isITensor()) {
            error(op, "operand " + std::to_string(i) +
                          " must be an itensor");
            return false;
        }
        return true;
    }

    bool
    checkResultITensor(const Op &op)
    {
        if (op.numResults() < 1 ||
            !op.result()->type().isITensor()) {
            error(op, "result must be an itensor");
            return false;
        }
        return true;
    }

    void
    verifyRead(const Op &op)
    {
        // source(itensor) [+ optional init] -> value.
        if (op.numOperands() < 1 || op.numOperands() > 2) {
            error(op, "expected source (+ optional init) operands");
            return;
        }
        if (!checkOperandITensor(op, 0) || op.numResults() != 1)
            return;
        const ITensorType &src = op.operand(0)->type().itensor();
        const Type &value = op.result()->type();
        if (value.isTensor() &&
            value.tensor().shape() != src.elementShape()) {
            error(op, "read value shape must equal element shape");
        }
    }

    void
    verifyWrite(const Op &op)
    {
        // value + dest(itensor) -> result(itensor, same type).
        if (op.numOperands() != 2 || op.numResults() != 1) {
            error(op, "expected (value, dest) -> result");
            return;
        }
        if (!checkOperandITensor(op, 1) || !checkResultITensor(op))
            return;
        const ITensorType &dest = op.operand(1)->type().itensor();
        const ITensorType &res = op.result()->type().itensor();
        if (!(dest == res))
            error(op, "result type must match dest type "
                      "(destination-carried)");
        const Type &value = op.operand(0)->type();
        if (value.isTensor() &&
            value.tensor().shape() != dest.elementShape()) {
            error(op, "written value shape must equal element shape");
        }
    }

    void
    verifyReassociate(const Op &op)
    {
        checkCounts(op, 1, 1);
        if (!checkOperandITensor(op, 0) || !checkResultITensor(op))
            return;
        const ITensorType &src = op.operand(0)->type().itensor();
        const ITensorType &res = op.result()->type().itensor();
        if (src.dataTensorType().numElements() !=
            res.dataTensorType().numElements()) {
            error(op, "reassociation must preserve element count");
        }
    }

    void
    verifyConverter(const Op &op)
    {
        checkCounts(op, 1, 1);
        if (!checkOperandITensor(op, 0) || !checkResultITensor(op))
            return;
        const ITensorType &src = op.operand(0)->type().itensor();
        const ITensorType &res = op.result()->type().itensor();
        if (!src.sameDataSpace(res))
            error(op, "converter requires identical data spaces");
    }

    void
    verifyChunkConcat(const Op &op)
    {
        bool chunk = op.kind() == OpKind::ItensorChunk;
        int64_t many = chunk ? op.numResults() : op.numOperands();
        if (many < 1)
            error(op, "needs at least one variadic side entry");
        if ((chunk && op.numOperands() != 1) ||
            (!chunk && op.numResults() != 1)) {
            error(op, "single side must have exactly one value");
        }
    }

    void
    verifyFork(const Op &op)
    {
        if (op.numOperands() != 1 || op.numResults() < 1) {
            error(op, "fork expects one source, >= 1 results");
            return;
        }
        if (!checkOperandITensor(op, 0))
            return;
        for (int64_t i = 0; i < op.numResults(); ++i) {
            if (!op.result(i)->type().isITensor() ||
                op.result(i)->type().itensor() !=
                    op.operand(0)->type().itensor()) {
                error(op, "fork results must duplicate source type");
            }
        }
    }

    void
    verifyJoin(const Op &op)
    {
        if (op.numOperands() < 1 || op.numResults() != 1)
            error(op, "join expects >= 1 sources, one result");
    }

    void
    verifyKernel(const Op &op)
    {
        for (int64_t i = 0; i < op.numOperands(); ++i)
            if (!op.operand(i)->type().isTensor())
                error(op, "kernel sources must be tensors");
        for (int64_t i = 0; i < op.numResults(); ++i)
            if (!op.result(i)->type().isTensor())
                error(op, "kernel results must be tensors");
        if (op.numRegions() != 1) {
            error(op, "kernel must have exactly one region");
            return;
        }
        // Boundary: region args must be itensors (implicit DMAs).
        for (const auto &arg : op.region()->arguments())
            if (!arg->type().isITensor())
                error(op, "kernel region args must be itensors");
        const Op *term = op.region()->terminator();
        if (!term || term->kind() != OpKind::Yield)
            error(op, "kernel region must end with yield");
    }

    void
    verifyTask(const Op &op)
    {
        if (op.numRegions() != 1)
            error(op, "task must have exactly one region");
        for (int64_t i = 0; i < op.numOperands(); ++i) {
            const Type &t = op.operand(i)->type();
            if (!t.isITensor() && !t.isTensor() && !t.isStream() &&
                !t.isMemRef()) {
                error(op, "task operands must be itensor/tensor/"
                          "stream/memref");
            }
        }
    }

    void
    verifyYield(const Op &op)
    {
        const Region *region = op.parentRegion();
        if (!region || !region->parentOp())
            return;
        const Op *parent = region->parentOp();
        if (parent->kind() != OpKind::Kernel &&
            parent->kind() != OpKind::Task &&
            parent->kind() != OpKind::LoopNest) {
            error(op, "yield only terminates kernel/task/loop");
        }
    }

    VerifyResult result_;
};

} // namespace

std::string
VerifyResult::str() const
{
    std::ostringstream os;
    for (size_t i = 0; i < diagnostics.size(); ++i) {
        if (i)
            os << "\n";
        os << diagnostics[i];
    }
    return os.str();
}

VerifyResult
verifyOp(const Op &op)
{
    Verifier v;
    v.verify(op);
    return v.takeResult();
}

VerifyResult
verifyModule(const Module &module)
{
    Verifier v;
    for (const auto &op : module.body().ops())
        v.verify(*op);
    return v.takeResult();
}

} // namespace ir
} // namespace streamtensor
