#include "ir/affine.h"

#include <sstream>

#include "support/error.h"

namespace streamtensor {
namespace ir {

AffineExpr
AffineExpr::dim(int64_t pos)
{
    ST_ASSERT(pos >= 0, "dim position must be non-negative");
    return AffineExpr(Kind::Dim, pos);
}

AffineExpr
AffineExpr::constant(int64_t value)
{
    return AffineExpr(Kind::Constant, value);
}

int64_t
AffineExpr::dimPos() const
{
    ST_ASSERT(isDim(), "not a dim expression");
    return value_;
}

int64_t
AffineExpr::constantValue() const
{
    ST_ASSERT(isConstant(), "not a constant expression");
    return value_;
}

int64_t
AffineExpr::evaluate(const std::vector<int64_t> &dims) const
{
    if (isConstant())
        return value_;
    ST_ASSERT(value_ < static_cast<int64_t>(dims.size()),
              "dim position out of range");
    return dims[value_];
}

bool
AffineExpr::operator==(const AffineExpr &o) const
{
    return kind_ == o.kind_ && value_ == o.value_;
}

std::string
AffineExpr::str() const
{
    std::ostringstream os;
    if (isDim())
        os << "d" << value_;
    else
        os << value_;
    return os.str();
}

AffineMap::AffineMap(int64_t num_dims, std::vector<AffineExpr> results)
    : num_dims_(num_dims), results_(std::move(results))
{
    for (const auto &e : results_) {
        if (e.isDim()) {
            ST_CHECK(e.dimPos() < num_dims_,
                     "affine map references dim beyond numDims");
        }
    }
}

AffineMap
AffineMap::identity(int64_t n)
{
    std::vector<AffineExpr> results;
    results.reserve(n);
    for (int64_t i = 0; i < n; ++i)
        results.push_back(AffineExpr::dim(i));
    return AffineMap(n, std::move(results));
}

AffineMap
AffineMap::fromPermutation(const std::vector<int64_t> &perm)
{
    std::vector<AffineExpr> results;
    results.reserve(perm.size());
    for (int64_t p : perm)
        results.push_back(AffineExpr::dim(p));
    return AffineMap(static_cast<int64_t>(perm.size()),
                     std::move(results));
}

const AffineExpr &
AffineMap::result(int64_t i) const
{
    ST_ASSERT(i >= 0 && i < numResults(), "result index out of range");
    return results_[i];
}

bool
AffineMap::isIdentity() const
{
    if (num_dims_ != numResults())
        return false;
    for (int64_t i = 0; i < numResults(); ++i)
        if (!results_[i].isDim() || results_[i].dimPos() != i)
            return false;
    return true;
}

bool
AffineMap::isPermutation() const
{
    if (num_dims_ != numResults())
        return false;
    std::vector<bool> seen(num_dims_, false);
    for (const auto &e : results_) {
        if (!e.isDim())
            return false;
        if (seen[e.dimPos()])
            return false;
        seen[e.dimPos()] = true;
    }
    return true;
}

int64_t
AffineMap::resultForDim(int64_t pos) const
{
    for (int64_t i = 0; i < numResults(); ++i)
        if (results_[i].isDim() && results_[i].dimPos() == pos)
            return i;
    return -1;
}

std::vector<int64_t>
AffineMap::apply(const std::vector<int64_t> &dims) const
{
    ST_CHECK(static_cast<int64_t>(dims.size()) == num_dims_,
             "affine map applied to wrong number of dims");
    std::vector<int64_t> out;
    out.reserve(results_.size());
    for (const auto &e : results_)
        out.push_back(e.evaluate(dims));
    return out;
}

bool
AffineMap::operator==(const AffineMap &o) const
{
    return num_dims_ == o.num_dims_ && results_ == o.results_;
}

std::string
AffineMap::str() const
{
    std::ostringstream os;
    os << "(";
    for (int64_t i = 0; i < num_dims_; ++i) {
        if (i)
            os << ",";
        os << "d" << i;
    }
    os << ")->(";
    for (int64_t i = 0; i < numResults(); ++i) {
        if (i)
            os << ",";
        os << results_[i].str();
    }
    os << ")";
    return os.str();
}

} // namespace ir
} // namespace streamtensor
