/**
 * @file
 * The stream type: a hardware FIFO carrying fixed-width tokens
 * (paper §3.1.3). Lowered from itensor during bufferization; only
 * the token type and the FIFO depth survive, the layout is dropped.
 */

#ifndef STREAMTENSOR_IR_STREAM_TYPE_H
#define STREAMTENSOR_IR_STREAM_TYPE_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/data_type.h"

namespace streamtensor {
namespace ir {

class ITensorType;

/** A FIFO of vectorised tokens with a fixed depth. */
class StreamType
{
  public:
    StreamType() = default;

    /**
     * @param dtype scalar type of the token lanes
     * @param vector_shape lanes per token ({} = scalar token)
     * @param depth FIFO depth in tokens
     */
    StreamType(DataType dtype, std::vector<int64_t> vector_shape,
               int64_t depth);

    DataType dtype() const { return dtype_; }
    const std::vector<int64_t> &vectorShape() const
    {
        return vector_shape_;
    }
    int64_t depth() const { return depth_; }

    /** Scalar lanes per token. */
    int64_t lanes() const;

    /** Bits per token. */
    int64_t tokenBits() const;

    /** Total FIFO storage in bits. */
    int64_t storageBits() const { return tokenBits() * depth_; }

    bool operator==(const StreamType &o) const;
    bool operator!=(const StreamType &o) const { return !(*this == o); }

    /** Render as "stream<4x2xi8, depth:32>". */
    std::string str() const;

  private:
    DataType dtype_ = DataType::F32;
    std::vector<int64_t> vector_shape_;
    int64_t depth_ = 2;
};

/**
 * Bufferize an itensor into a stream type with depth @p depth: the
 * token vector shape is the itensor element shape and the layout is
 * stripped (paper §3.1.3).
 */
StreamType streamTypeFor(const ITensorType &itensor, int64_t depth);

} // namespace ir
} // namespace streamtensor

#endif // STREAMTENSOR_IR_STREAM_TYPE_H
