/**
 * @file
 * The unified Type used by IR values: one of Tensor, ITensor,
 * Stream, or MemRef (on-chip buffer).
 */

#ifndef STREAMTENSOR_IR_TYPE_H
#define STREAMTENSOR_IR_TYPE_H

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "ir/itensor_type.h"
#include "ir/stream_type.h"
#include "ir/tensor_type.h"

namespace streamtensor {
namespace ir {

/** On-chip memory kinds an FPGA buffer may be placed into. */
enum class MemoryKind { LUTRAM, BRAM, URAM, Auto };

/** Printable name for a MemoryKind. */
std::string memoryKindName(MemoryKind kind);

/**
 * An on-chip buffer type (lowered from tensor instances). Ping-pong
 * buffers double the physical storage.
 */
class MemRefType
{
  public:
    MemRefType() = default;
    MemRefType(DataType dtype, std::vector<int64_t> shape,
               bool ping_pong, MemoryKind kind = MemoryKind::Auto);

    DataType dtype() const { return dtype_; }
    const std::vector<int64_t> &shape() const { return shape_; }
    bool isPingPong() const { return ping_pong_; }
    MemoryKind memoryKind() const { return kind_; }

    /** Logical elements of one bank. */
    int64_t numElements() const;

    /** Physical storage in bytes (x2 for ping-pong). */
    int64_t storageBytes() const;

    bool operator==(const MemRefType &o) const;
    bool operator!=(const MemRefType &o) const { return !(*this == o); }

    /** Render as "memref<16x64xi8, ping_pong, bram>". */
    std::string str() const;

  private:
    DataType dtype_ = DataType::F32;
    std::vector<int64_t> shape_;
    bool ping_pong_ = false;
    MemoryKind kind_ = MemoryKind::Auto;
};

/** A value type: tensor | itensor | stream | memref. */
class Type
{
  public:
    Type() : storage_(TensorType()) {}
    Type(TensorType t) : storage_(std::move(t)) {}
    Type(ITensorType t) : storage_(std::move(t)) {}
    Type(StreamType t) : storage_(std::move(t)) {}
    Type(MemRefType t) : storage_(std::move(t)) {}

    bool isTensor() const;
    bool isITensor() const;
    bool isStream() const;
    bool isMemRef() const;

    const TensorType &tensor() const;
    const ITensorType &itensor() const;
    const StreamType &stream() const;
    const MemRefType &memref() const;

    bool operator==(const Type &o) const
    {
        return storage_ == o.storage_;
    }
    bool operator!=(const Type &o) const { return !(*this == o); }

    std::string str() const;

  private:
    std::variant<TensorType, ITensorType, StreamType, MemRefType>
        storage_;
};

} // namespace ir
} // namespace streamtensor

#endif // STREAMTENSOR_IR_TYPE_H
