#include "ir/data_type.h"

#include "support/error.h"

namespace streamtensor {
namespace ir {

int64_t
bitWidth(DataType t)
{
    switch (t) {
      case DataType::I4: return 4;
      case DataType::I8: return 8;
      case DataType::I16: return 16;
      case DataType::I32: return 32;
      case DataType::F16: return 16;
      case DataType::BF16: return 16;
      case DataType::F32: return 32;
    }
    ST_PANIC("unknown DataType");
}

double
byteWidth(DataType t)
{
    return bitWidth(t) / 8.0;
}

std::string
dataTypeName(DataType t)
{
    switch (t) {
      case DataType::I4: return "i4";
      case DataType::I8: return "i8";
      case DataType::I16: return "i16";
      case DataType::I32: return "i32";
      case DataType::F16: return "f16";
      case DataType::BF16: return "bf16";
      case DataType::F32: return "f32";
    }
    ST_PANIC("unknown DataType");
}

bool
isInteger(DataType t)
{
    switch (t) {
      case DataType::I4:
      case DataType::I8:
      case DataType::I16:
      case DataType::I32:
        return true;
      default:
        return false;
    }
}

} // namespace ir
} // namespace streamtensor
