#include "ir/stream_type.h"

#include <sstream>

#include "ir/itensor_type.h"
#include "support/error.h"
#include "support/math_util.h"

namespace streamtensor {
namespace ir {

StreamType::StreamType(DataType dtype,
                       std::vector<int64_t> vector_shape,
                       int64_t depth)
    : dtype_(dtype), vector_shape_(std::move(vector_shape)),
      depth_(depth)
{
    ST_CHECK(depth_ >= 1, "stream depth must be >= 1");
    for (int64_t v : vector_shape_)
        ST_CHECK(v >= 1, "stream vector dims must be >= 1");
}

int64_t
StreamType::lanes() const
{
    return product(vector_shape_);
}

int64_t
StreamType::tokenBits() const
{
    return lanes() * bitWidth(dtype_);
}

bool
StreamType::operator==(const StreamType &o) const
{
    return dtype_ == o.dtype_ && vector_shape_ == o.vector_shape_ &&
           depth_ == o.depth_;
}

std::string
StreamType::str() const
{
    std::ostringstream os;
    os << "stream<";
    for (int64_t v : vector_shape_)
        os << v << "x";
    os << dataTypeName(dtype_) << ", depth:" << depth_ << ">";
    return os.str();
}

StreamType
streamTypeFor(const ITensorType &itensor, int64_t depth)
{
    return StreamType(itensor.dtype(), itensor.elementShape(), depth);
}

} // namespace ir
} // namespace streamtensor
