/**
 * @file
 * Scalar element types supported by StreamTensor.
 *
 * Includes the quantized types used by the paper's evaluation
 * (W4A8: int4 weights, int8 activations) and the float types used
 * by baselines (FP16 for DFX).
 */

#ifndef STREAMTENSOR_IR_DATA_TYPE_H
#define STREAMTENSOR_IR_DATA_TYPE_H

#include <cstdint>
#include <string>

namespace streamtensor {
namespace ir {

/** Scalar element type. */
enum class DataType {
    I4,
    I8,
    I16,
    I32,
    F16,
    BF16,
    F32,
};

/** Width of @p t in bits (int4 is 4). */
int64_t bitWidth(DataType t);

/** Width of @p t in bytes, rounded up for sub-byte types. */
double byteWidth(DataType t);

/** Printable name, e.g. "i8" or "f32". */
std::string dataTypeName(DataType t);

/** True for the integer (quantized) types. */
bool isInteger(DataType t);

} // namespace ir
} // namespace streamtensor

#endif // STREAMTENSOR_IR_DATA_TYPE_H
