/**
 * @file
 * Minimal affine expressions and maps for itensor iteration maps.
 *
 * The paper's iteration maps only ever bind a data dimension to a
 * single iteration dimension (e.g. (d0,d1,d2)->(d2,d0)) or to a
 * constant; a full affine algebra is unnecessary. Each map result is
 * therefore either a dimension reference or an integer constant.
 */

#ifndef STREAMTENSOR_IR_AFFINE_H
#define STREAMTENSOR_IR_AFFINE_H

#include <cstdint>
#include <string>
#include <vector>

namespace streamtensor {
namespace ir {

/** One result expression of an AffineMap: a dim ref or a constant. */
class AffineExpr
{
  public:
    enum class Kind { Dim, Constant };

    /** Build a reference to iteration dimension @p pos. */
    static AffineExpr dim(int64_t pos);

    /** Build an integer constant expression. */
    static AffineExpr constant(int64_t value);

    Kind kind() const { return kind_; }
    bool isDim() const { return kind_ == Kind::Dim; }
    bool isConstant() const { return kind_ == Kind::Constant; }

    /** Position of the referenced dim; panics on constants. */
    int64_t dimPos() const;

    /** Constant value; panics on dim refs. */
    int64_t constantValue() const;

    /** Evaluate against concrete dim values. */
    int64_t evaluate(const std::vector<int64_t> &dims) const;

    bool operator==(const AffineExpr &o) const;
    bool operator!=(const AffineExpr &o) const { return !(*this == o); }

    /** Render as "d2" or "7". */
    std::string str() const;

  private:
    AffineExpr(Kind kind, int64_t value) : kind_(kind), value_(value) {}

    Kind kind_;
    int64_t value_;
};

/**
 * An affine map from an iteration space to a data space, e.g.
 * (d0,d1,d2) -> (d2,d0). Results reference input dims or constants.
 */
class AffineMap
{
  public:
    AffineMap() : num_dims_(0) {}
    AffineMap(int64_t num_dims, std::vector<AffineExpr> results);

    /** The identity map on @p n dims. */
    static AffineMap identity(int64_t n);

    /**
     * Map whose result i is d(perm[i]); e.g. perm={1,0} builds the
     * transposing map (d0,d1)->(d1,d0).
     */
    static AffineMap fromPermutation(const std::vector<int64_t> &perm);

    int64_t numDims() const { return num_dims_; }
    int64_t numResults() const
    {
        return static_cast<int64_t>(results_.size());
    }
    const AffineExpr &result(int64_t i) const;
    const std::vector<AffineExpr> &results() const { return results_; }

    /** True when numDims == numResults and results are the identity. */
    bool isIdentity() const;

    /**
     * True when every input dim is referenced by exactly one result
     * (a bijection between iteration and data dims).
     */
    bool isPermutation() const;

    /**
     * Result index bound to iteration dim @p pos, or -1 when the dim
     * is unmapped (a revisit dim).
     */
    int64_t resultForDim(int64_t pos) const;

    /** Apply the map to concrete iteration-index values. */
    std::vector<int64_t>
    apply(const std::vector<int64_t> &dims) const;

    bool operator==(const AffineMap &o) const;
    bool operator!=(const AffineMap &o) const { return !(*this == o); }

    /** Render as "(d0,d1)->(d1,d0)". */
    std::string str() const;

  private:
    int64_t num_dims_;
    std::vector<AffineExpr> results_;
};

} // namespace ir
} // namespace streamtensor

#endif // STREAMTENSOR_IR_AFFINE_H
