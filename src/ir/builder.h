/**
 * @file
 * OpBuilder: the only way to create ops, keeping def-use chains and
 * region parenting consistent.
 */

#ifndef STREAMTENSOR_IR_BUILDER_H
#define STREAMTENSOR_IR_BUILDER_H

#include <string>
#include <vector>

#include "ir/op.h"

namespace streamtensor {
namespace ir {

/** Builds ops at the end of a target region. */
class OpBuilder
{
  public:
    OpBuilder(Module &module, Region &region)
        : module_(module), region_(&region)
    {}

    Module &module() { return module_; }
    Region &insertionRegion() { return *region_; }

    /** Redirect subsequent ops into @p region. */
    void setInsertionRegion(Region &region) { region_ = &region; }

    /**
     * Create an op of @p kind with @p operands and one result per
     * entry of @p result_types. Result names are fresh SSA names.
     */
    Op *create(OpKind kind, const std::vector<Value *> &operands,
               const std::vector<Type> &result_types,
               std::string label = "");

    /** Create a region attached to @p op and return it. */
    Region *addRegion(Op *op);

    // ----- Convenience wrappers for common ops -----

    /** itensor_empty: a placeholder destination itensor. */
    Op *itensorEmpty(const ITensorType &type);

    /** itensor_instance: an itensor that lowers to a FIFO. */
    Op *itensorInstance(const ITensorType &type);

    /** itensor_write value into dest; returns the updated itensor. */
    Op *itensorWrite(Value *value, Value *dest);

    /** itensor_read from source, producing one element tensor. */
    Op *itensorRead(Value *source);

    /** itensor_converter from source to the given result type. */
    Op *itensorConverter(Value *source, const ITensorType &result);

    /** itensor_fork into n duplicated streams. */
    Op *itensorFork(Value *source, int64_t n);

    /** kernel with a region; boundary converts tensor<->itensor. */
    Op *kernel(const std::vector<Value *> &sources,
               const std::vector<Type> &result_types,
               std::string label);

    /** task with a region (transparent boundary). */
    Op *task(const std::vector<Value *> &inits,
             const std::vector<Type> &result_types, std::string label);

    /** yield region results. */
    Op *yield(const std::vector<Value *> &outputs);

    /** stream(): create a FIFO value of the given stream type. */
    Op *streamCreate(const StreamType &type);

    /** stream_read from a FIFO. */
    Op *streamRead(Value *stream, const Type &value_type);

    /** stream_write value into a FIFO. */
    Op *streamWrite(Value *value, Value *stream);

    /** buffer(): a ping-pong on-chip buffer of memref type. */
    Op *bufferCreate(const MemRefType &type);

    /** loop_nest carrying trip counts; owns one body region. */
    Op *loopNest(const std::vector<int64_t> &trips, std::string label);

  private:
    Module &module_;
    Region *region_;
};

} // namespace ir
} // namespace streamtensor

#endif // STREAMTENSOR_IR_BUILDER_H
