/**
 * @file
 * Textual printer for the StreamTensor IR: renders modules,
 * regions, and ops in an MLIR-like syntax for debugging, golden
 * tests, and the generated-code reports.
 */

#ifndef STREAMTENSOR_IR_PRINTER_H
#define STREAMTENSOR_IR_PRINTER_H

#include <string>

#include "ir/op.h"

namespace streamtensor {
namespace ir {

/** Print the whole module. */
std::string printModule(const Module &module);

/** Print one op (and its regions) at the given indent level. */
std::string printOp(const Op &op, int indent = 0);

} // namespace ir
} // namespace streamtensor

#endif // STREAMTENSOR_IR_PRINTER_H
