/**
 * @file
 * IR verifier: structural and type checks for every op kind
 * (paper §3.1: "dedicated type and operation verifiers ... ensure
 * the IR's validity after any transformation pass").
 */

#ifndef STREAMTENSOR_IR_VERIFIER_H
#define STREAMTENSOR_IR_VERIFIER_H

#include <string>
#include <vector>

#include "ir/op.h"

namespace streamtensor {
namespace ir {

/** Result of verification: empty diagnostics == valid. */
struct VerifyResult
{
    std::vector<std::string> diagnostics;

    bool ok() const { return diagnostics.empty(); }

    /** All diagnostics joined by newlines. */
    std::string str() const;
};

/** Verify one op (recursing into regions). */
VerifyResult verifyOp(const Op &op);

/** Verify all ops of a module. */
VerifyResult verifyModule(const Module &module);

} // namespace ir
} // namespace streamtensor

#endif // STREAMTENSOR_IR_VERIFIER_H
