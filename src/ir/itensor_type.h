/**
 * @file
 * The iterative tensor (itensor) type — the paper's central
 * abstraction (§3.1.2).
 *
 * An itensor describes a *stream* of identical tensor slices
 * (elements) cut out of an underlying data space:
 *
 *  - elementShape: the shape of one streamed slice (one token);
 *  - iteration space: tripCounts[i] iterations with step steps[i]
 *    per iteration dimension, producing iteration indices
 *    idx[i] * steps[i];
 *  - iterMap: affine map from iteration indices to data-space
 *    offsets. Iteration dims absent from the map are *revisit*
 *    dims: stepping them re-streams the data covered by the inner
 *    dims.
 *
 * Two kernels can stream to each other without conversion iff their
 * itensor types match exactly; otherwise a layout converter with an
 * analytically-sized ping-pong buffer is required (Algorithm 1,
 * implemented in dse/converter_gen).
 */

#ifndef STREAMTENSOR_IR_ITENSOR_TYPE_H
#define STREAMTENSOR_IR_ITENSOR_TYPE_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/affine.h"
#include "ir/data_type.h"
#include "ir/tensor_type.h"

namespace streamtensor {
namespace ir {

/** Stream-layout-aware tensor type (paper Fig. 5). */
class ITensorType
{
  public:
    ITensorType() = default;

    /**
     * @param dtype scalar element type
     * @param element_shape shape of one streamed slice (token)
     * @param trip_counts iteration-space trip counts, outer first
     * @param steps iteration-space step sizes, outer first
     * @param iter_map map from iteration dims to data dims
     */
    ITensorType(DataType dtype,
                std::vector<int64_t> element_shape,
                std::vector<int64_t> trip_counts,
                std::vector<int64_t> steps,
                AffineMap iter_map);

    DataType dtype() const { return dtype_; }
    const std::vector<int64_t> &elementShape() const
    {
        return element_shape_;
    }
    const std::vector<int64_t> &tripCounts() const
    {
        return trip_counts_;
    }
    const std::vector<int64_t> &steps() const { return steps_; }
    const AffineMap &iterMap() const { return iter_map_; }

    /** Number of iteration (loop) dimensions. */
    int64_t iterRank() const
    {
        return static_cast<int64_t>(trip_counts_.size());
    }

    /** Number of data dimensions (map results). */
    int64_t dataRank() const { return iter_map_.numResults(); }

    /** Extent of one element (token) along data dim @p d. */
    int64_t elementSize(int64_t d) const;

    /** Scalars per token. */
    int64_t elementCount() const;

    /** Bits per token. */
    int64_t tokenBits() const;

    /** Total number of tokens streamed = prod(tripCounts). */
    int64_t numTokens() const;

    /**
     * How many times each data element is re-streamed: the product
     * of trip counts of revisit (unmapped) iteration dims.
     */
    int64_t revisitFactor() const;

    /**
     * Reconstruct the underlying data-space shape. Data dim d bound
     * to loop p has extent steps[p] * tripCounts[p]; const-mapped
     * dims have extent elementShape[d].
     */
    std::vector<int64_t> dataShape() const;

    /** The memory-mapped tensor type of the full data space. */
    TensorType dataTensorType() const;

    /** Unique tokens (numTokens / revisitFactor). */
    int64_t numUniqueTokens() const;

    /**
     * Validate well-formedness; throws FatalError with a diagnostic
     * when the type is inconsistent (see DESIGN.md invariants).
     */
    void verify() const;

    /**
     * Enumerate the data-space offset of every streamed token in
     * stream order (row-major iteration-space order). Intended for
     * tests and the simulator's order checking; cost is
     * numTokens() x dataRank().
     */
    std::vector<std::vector<int64_t>> streamOffsets() const;

    /**
     * Exact type match: the condition for direct FIFO connection
     * between producer and consumer (paper Fig. 5 Case1).
     */
    bool operator==(const ITensorType &o) const;
    bool operator!=(const ITensorType &o) const
    {
        return !(*this == o);
    }

    /**
     * True when this and @p o describe the same underlying data
     * space (same dtype and data shape) — the precondition for
     * inserting a layout converter between mismatched streams.
     */
    bool sameDataSpace(const ITensorType &o) const;

    /** Render as itensor<4x2xf32, space:[4,2]*[2,4], (d0,d1)->(d1,d0)>. */
    std::string str() const;

  private:
    DataType dtype_ = DataType::F32;
    std::vector<int64_t> element_shape_;
    std::vector<int64_t> trip_counts_;
    std::vector<int64_t> steps_;
    AffineMap iter_map_;
};

/**
 * Build the canonical row-major itensor for streaming a full tensor
 * in tiles of @p tile_shape (identity iteration map). Tile extents
 * must divide the tensor extents.
 */
ITensorType makeTiledITensor(const TensorType &tensor,
                             const std::vector<int64_t> &tile_shape);

/**
 * Build a tiled itensor whose loop order is permuted by @p perm
 * (perm[i] = data dim iterated by loop i) and that carries
 * @p revisit_trips extra revisit loops appended outermost-first at
 * loop positions given by @p revisit_pos.
 */
ITensorType
makePermutedITensor(const TensorType &tensor,
                    const std::vector<int64_t> &tile_shape,
                    const std::vector<int64_t> &perm);

} // namespace ir
} // namespace streamtensor

#endif // STREAMTENSOR_IR_ITENSOR_TYPE_H
