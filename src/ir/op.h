/**
 * @file
 * A compact op/region IR hosting the paper's operation set:
 * itensor ops (Table 1), stream/buffer ops (Table 2), and structure
 * ops (Table 3), plus the auxiliary ops produced by materialization
 * (loop nests, DMAs, pack/widen).
 *
 * The IR is a tree of regions: a Module owns a top region holding
 * kernel ops; kernels hold graphs of task ops; tasks hold loop
 * nests and behavioural ops. Values are SSA-like: each is defined
 * by exactly one op (or is a region argument) and tracks its users.
 */

#ifndef STREAMTENSOR_IR_OP_H
#define STREAMTENSOR_IR_OP_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "ir/type.h"

namespace streamtensor {
namespace ir {

class Op;
class Region;
class Module;

/** All operation kinds in the StreamTensor IR. */
enum class OpKind {
    // Iterative tensor operations (paper Table 1).
    ItensorEmpty,
    ItensorInstance,
    ItensorRead,
    ItensorWrite,
    ItensorCast,
    ItensorReassociate,
    ItensorConverter,
    ItensorChunk,
    ItensorConcat,
    ItensorFork,
    ItensorJoin,
    // Stream and buffer operations (paper Table 2).
    ItensorToStream,
    StreamToItensor,
    StreamCreate,
    StreamRead,
    StreamWrite,
    StreamCast,
    BufferCreate,
    // Structure operations (paper Table 3).
    Kernel,
    Task,
    Yield,
    // Auxiliary operations used by materialized dataflow bodies.
    LoopNest,
    Compute,
    TensorPack,
    TensorUnpack,
    TensorWiden,
    TensorUnwiden,
    Dma,
};

/** Printable mnemonic, e.g. "itensor_write". */
std::string opKindName(OpKind kind);

/** Attribute payload attached to ops. */
using Attribute =
    std::variant<int64_t, double, std::string, std::vector<int64_t>>;

/** An SSA value: result of an op or a region argument. */
class Value
{
  public:
    Value(Type type, std::string name)
        : type_(std::move(type)), name_(std::move(name))
    {}

    const Type &type() const { return type_; }
    const std::string &name() const { return name_; }

    /** Defining op; nullptr for region arguments. */
    Op *definingOp() const { return defining_op_; }

    /** Ops currently using this value as an operand. */
    const std::vector<Op *> &users() const { return users_; }
    bool hasSingleUse() const { return users_.size() == 1; }

  private:
    friend class Op;
    friend class Region;
    friend class OpBuilder;

    Type type_;
    std::string name_;
    Op *defining_op_ = nullptr;
    std::vector<Op *> users_;
};

/** A region: an ordered list of ops plus entry arguments. */
class Region
{
  public:
    explicit Region(Op *parent) : parent_op_(parent) {}

    Op *parentOp() const { return parent_op_; }

    /** Append an entry argument of the given type. */
    Value *addArgument(Type type, std::string name);

    const std::vector<std::unique_ptr<Value>> &arguments() const
    {
        return args_;
    }
    Value *argument(int64_t i) const;

    const std::vector<std::unique_ptr<Op>> &ops() const
    {
        return ops_;
    }
    bool empty() const { return ops_.empty(); }

    /** Terminator (last op) or nullptr when empty. */
    Op *terminator() const;

  private:
    friend class Op;
    friend class OpBuilder;

    Op *parent_op_;
    std::vector<std::unique_ptr<Value>> args_;
    std::vector<std::unique_ptr<Op>> ops_;
};

/** An operation: kind, operands, results, attributes, regions. */
class Op
{
  public:
    OpKind kind() const { return kind_; }
    const std::string &label() const { return label_; }
    void setLabel(std::string label) { label_ = std::move(label); }

    Region *parentRegion() const { return parent_; }

    // Operands.
    int64_t numOperands() const
    {
        return static_cast<int64_t>(operands_.size());
    }
    Value *operand(int64_t i) const;
    const std::vector<Value *> &operands() const { return operands_; }

    // Results.
    int64_t numResults() const
    {
        return static_cast<int64_t>(results_.size());
    }
    Value *result(int64_t i = 0) const;

    // Attributes.
    bool hasAttr(const std::string &key) const;
    void setAttr(const std::string &key, Attribute value);
    int64_t intAttr(const std::string &key) const;
    double doubleAttr(const std::string &key) const;
    const std::string &strAttr(const std::string &key) const;
    const std::vector<int64_t> &intsAttr(const std::string &key) const;
    const std::map<std::string, Attribute> &attrs() const
    {
        return attrs_;
    }

    // Regions.
    int64_t numRegions() const
    {
        return static_cast<int64_t>(regions_.size());
    }
    Region *region(int64_t i = 0) const;

  private:
    friend class OpBuilder;

    Op(OpKind kind, std::string label) : kind_(kind),
        label_(std::move(label))
    {}

    OpKind kind_;
    std::string label_;
    Region *parent_ = nullptr;
    std::vector<Value *> operands_;
    std::vector<std::unique_ptr<Value>> results_;
    std::vector<std::unique_ptr<Region>> regions_;
    std::map<std::string, Attribute> attrs_;
};

/** A module: the top-level region plus a value-name allocator. */
class Module
{
  public:
    explicit Module(std::string name = "module")
        : name_(std::move(name)), body_(nullptr)
    {}

    const std::string &name() const { return name_; }
    Region &body() { return body_; }
    const Region &body() const { return body_; }

    /** Allocate a fresh SSA value name ("%0", "%1", ...). */
    std::string freshName();

  private:
    std::string name_;
    Region body_;
    int64_t next_value_ = 0;
};

} // namespace ir
} // namespace streamtensor

#endif // STREAMTENSOR_IR_OP_H
