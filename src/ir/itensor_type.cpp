#include "ir/itensor_type.h"

#include <sstream>

#include "support/error.h"
#include "support/math_util.h"

namespace streamtensor {
namespace ir {

ITensorType::ITensorType(DataType dtype,
                         std::vector<int64_t> element_shape,
                         std::vector<int64_t> trip_counts,
                         std::vector<int64_t> steps,
                         AffineMap iter_map)
    : dtype_(dtype),
      element_shape_(std::move(element_shape)),
      trip_counts_(std::move(trip_counts)),
      steps_(std::move(steps)),
      iter_map_(std::move(iter_map))
{
    verify();
}

int64_t
ITensorType::elementSize(int64_t d) const
{
    ST_ASSERT(d >= 0 && d < dataRank(), "data dim out of range");
    return element_shape_[d];
}

int64_t
ITensorType::elementCount() const
{
    return product(element_shape_);
}

int64_t
ITensorType::tokenBits() const
{
    return elementCount() * bitWidth(dtype_);
}

int64_t
ITensorType::numTokens() const
{
    return product(trip_counts_);
}

int64_t
ITensorType::revisitFactor() const
{
    int64_t f = 1;
    for (int64_t p = 0; p < iterRank(); ++p)
        if (iter_map_.resultForDim(p) < 0)
            f *= trip_counts_[p];
    return f;
}

std::vector<int64_t>
ITensorType::dataShape() const
{
    std::vector<int64_t> shape(dataRank());
    for (int64_t d = 0; d < dataRank(); ++d) {
        const AffineExpr &e = iter_map_.result(d);
        if (e.isDim()) {
            int64_t p = e.dimPos();
            shape[d] = steps_[p] * trip_counts_[p];
        } else {
            shape[d] = element_shape_[d];
        }
    }
    return shape;
}

TensorType
ITensorType::dataTensorType() const
{
    return TensorType(dtype_, dataShape());
}

int64_t
ITensorType::numUniqueTokens() const
{
    return numTokens() / revisitFactor();
}

void
ITensorType::verify() const
{
    ST_CHECK(static_cast<int64_t>(trip_counts_.size()) ==
                 static_cast<int64_t>(steps_.size()),
             "itensor: tripCounts and steps must have equal rank");
    ST_CHECK(iter_map_.numDims() == iterRank(),
             "itensor: iterMap dim count must equal iteration rank");
    ST_CHECK(iter_map_.numResults() ==
                 static_cast<int64_t>(element_shape_.size()),
             "itensor: iterMap result count must equal element rank");
    for (int64_t t : trip_counts_)
        ST_CHECK(t >= 1, "itensor: trip counts must be >= 1");
    for (int64_t s : steps_)
        ST_CHECK(s >= 1, "itensor: steps must be >= 1");
    for (int64_t e : element_shape_)
        ST_CHECK(e >= 1, "itensor: element dims must be >= 1");

    // Each iteration dim may feed at most one data dim (injective).
    std::vector<int64_t> uses(iterRank(), 0);
    for (int64_t d = 0; d < dataRank(); ++d) {
        const AffineExpr &e = iter_map_.result(d);
        if (e.isConstant()) {
            ST_CHECK(e.constantValue() == 0,
                     "itensor: constant map results must be 0");
            continue;
        }
        int64_t p = e.dimPos();
        ST_CHECK(p < iterRank(), "itensor: map dim out of range");
        ST_CHECK(++uses[p] <= 1,
                 "itensor: iteration dim bound to multiple data dims");
        // Contiguous tiling: the step along a mapped loop must equal
        // the element extent of the data dim it scans, so that
        // consecutive iterations neither overlap nor leave gaps.
        ST_CHECK(steps_[p] == element_shape_[d],
                 "itensor: step of mapped loop must equal element "
                 "extent (contiguous tiling)");
    }
}

std::vector<std::vector<int64_t>>
ITensorType::streamOffsets() const
{
    std::vector<std::vector<int64_t>> out;
    out.reserve(numTokens());
    std::vector<int64_t> idx(iterRank(), 0);
    std::vector<int64_t> iter_vals(iterRank(), 0);
    int64_t total = numTokens();
    for (int64_t n = 0; n < total; ++n) {
        for (int64_t p = 0; p < iterRank(); ++p)
            iter_vals[p] = idx[p] * steps_[p];
        out.push_back(iter_map_.apply(iter_vals));
        // Row-major increment (innermost dim last).
        for (int64_t p = iterRank() - 1; p >= 0; --p) {
            if (++idx[p] < trip_counts_[p])
                break;
            idx[p] = 0;
        }
    }
    return out;
}

bool
ITensorType::operator==(const ITensorType &o) const
{
    return dtype_ == o.dtype_ && element_shape_ == o.element_shape_ &&
           trip_counts_ == o.trip_counts_ && steps_ == o.steps_ &&
           iter_map_ == o.iter_map_;
}

bool
ITensorType::sameDataSpace(const ITensorType &o) const
{
    return dtype_ == o.dtype_ && dataShape() == o.dataShape();
}

std::string
ITensorType::str() const
{
    std::ostringstream os;
    os << "itensor<";
    for (int64_t e : element_shape_)
        os << e << "x";
    os << dataTypeName(dtype_) << ", space:[";
    for (size_t i = 0; i < trip_counts_.size(); ++i) {
        if (i)
            os << ",";
        os << trip_counts_[i];
    }
    os << "]*[";
    for (size_t i = 0; i < steps_.size(); ++i) {
        if (i)
            os << ",";
        os << steps_[i];
    }
    os << "], " << iter_map_.str() << ">";
    return os.str();
}

ITensorType
makeTiledITensor(const TensorType &tensor,
                 const std::vector<int64_t> &tile_shape)
{
    ST_CHECK(tensor.rank() ==
                 static_cast<int64_t>(tile_shape.size()),
             "tile rank must match tensor rank");
    std::vector<int64_t> trips, steps;
    for (int64_t d = 0; d < tensor.rank(); ++d) {
        ST_CHECK(tile_shape[d] >= 1 &&
                     tensor.dim(d) % tile_shape[d] == 0,
                 "tile extent must divide tensor extent");
        trips.push_back(tensor.dim(d) / tile_shape[d]);
        steps.push_back(tile_shape[d]);
    }
    return ITensorType(tensor.dtype(), tile_shape, trips, steps,
                       AffineMap::identity(tensor.rank()));
}

ITensorType
makePermutedITensor(const TensorType &tensor,
                    const std::vector<int64_t> &tile_shape,
                    const std::vector<int64_t> &perm)
{
    ST_CHECK(perm.size() == tile_shape.size(),
             "perm rank must match tile rank");
    // Loop i iterates data dim perm[i]; thus data dim d is produced
    // by the loop at position invPerm[d].
    int64_t rank = tensor.rank();
    std::vector<int64_t> trips(rank), steps(rank);
    std::vector<AffineExpr> results;
    std::vector<int64_t> inv(rank, -1);
    for (int64_t i = 0; i < rank; ++i) {
        int64_t d = perm[i];
        ST_CHECK(d >= 0 && d < rank && inv[d] < 0,
                 "perm must be a permutation of data dims");
        inv[d] = i;
        ST_CHECK(tensor.dim(d) % tile_shape[d] == 0,
                 "tile extent must divide tensor extent");
        trips[i] = tensor.dim(d) / tile_shape[d];
        steps[i] = tile_shape[d];
    }
    results.reserve(rank);
    for (int64_t d = 0; d < rank; ++d)
        results.push_back(AffineExpr::dim(inv[d]));
    return ITensorType(tensor.dtype(), tile_shape, trips, steps,
                       AffineMap(rank, std::move(results)));
}

} // namespace ir
} // namespace streamtensor
