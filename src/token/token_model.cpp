#include "token/token_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.h"

namespace streamtensor {
namespace token {

double
KernelProfile::latency(int64_t tokens) const
{
    ST_ASSERT(tokens >= 1, "latency needs >= 1 tokens");
    return initial_delay + (tokens - 1) * ii;
}

TokenCurve::TokenCurve(double start, const KernelProfile &profile,
                       int64_t total)
    : start_(start), delay_(profile.initial_delay), ii_(profile.ii),
      total_(total)
{
    ST_CHECK(total_ >= 0, "token total must be >= 0");
    ST_CHECK(ii_ > 0, "II must be positive");
}

int64_t
TokenCurve::countAt(double t) const
{
    double first = start_ + delay_;
    if (t < first - 1e-12)
        return 0;
    int64_t k = static_cast<int64_t>(
                    std::floor((t - first) / ii_ + 1e-9)) + 1;
    return std::min(k, total_);
}

double
TokenCurve::timeOfToken(int64_t k) const
{
    ST_ASSERT(k >= 1 && k <= total_, "token index out of range");
    return start_ + delay_ + (k - 1) * ii_;
}

double
TokenCurve::finishTime() const
{
    if (total_ == 0)
        return start_ + delay_;
    return timeOfToken(total_);
}

int64_t
maxOccupancyExact(const KernelProfile &source,
                  const KernelProfile &target, double delay,
                  int64_t tokens)
{
    ST_CHECK(tokens >= 0, "token count must be >= 0");
    if (tokens == 0)
        return 0;
    TokenCurve produced(0.0, source, tokens);

    // Pull times: the target's k-th pull happens at the later of
    // (a) its own schedule (start + D + (k-1)*II, pushed back by
    // earlier starvation) and (b) the token's production time.
    int64_t max_occ = 0;
    double prev_pull = -std::numeric_limits<double>::infinity();
    double schedule = delay + target.initial_delay;
    for (int64_t k = 1; k <= tokens; ++k) {
        double ready = produced.timeOfToken(k);
        double pull = std::max(schedule, ready);
        if (prev_pull > -std::numeric_limits<double>::infinity())
            pull = std::max(pull, prev_pull + target.ii);
        prev_pull = pull;
        // Occupancy just before this pull: tokens produced strictly
        // before `pull` minus the k-1 already pulled. A token
        // produced exactly at the pull instant passes through.
        int64_t avail = produced.countAt(pull - 1e-9);
        max_occ = std::max(max_occ, avail - (k - 1));
    }
    return std::max<int64_t>(max_occ, 1);
}

int64_t
maxTokensClosedForm(const KernelProfile &source,
                    const KernelProfile &target, double delay,
                    int64_t tokens)
{
    ST_CHECK(tokens >= 0, "token count must be >= 0");
    if (tokens == 0)
        return 0;
    double l = source.latency(tokens);
    int64_t result;
    if (source.ii < target.ii) {
        // Eq. 1: source throughput greater than target's. Tokens
        // the target manages to drain while the source is still
        // producing reduce the peak.
        double drained = std::floor((l - delay) / target.ii);
        result = tokens -
                 static_cast<int64_t>(std::max(0.0, drained));
    } else {
        // Eq. 2: source is the bottleneck; the FIFO only holds the
        // head start accumulated before the target begins.
        double head = std::ceil((delay - source.initial_delay) /
                                source.ii);
        result = static_cast<int64_t>(std::max(0.0, head));
    }
    result = std::min<int64_t>(result, tokens);
    return std::max<int64_t>(result, 1);
}

std::string
equalizationName(Equalization strategy)
{
    switch (strategy) {
      case Equalization::Normal: return "normal";
      case Equalization::Conservative: return "conservative";
    }
    ST_PANIC("unknown Equalization");
}

} // namespace token
} // namespace streamtensor
