/**
 * @file
 * LP-based FIFO sizing (paper §5.3.4).
 *
 * Given the dataflow DAG of fused kernels with profiled initial
 * delays and total execution cycles, determine per-edge `delay`
 * values minimising Eq. 3 subject to the path constraints Eq. 4/5,
 * then derive each FIFO's depth from the token behavior model.
 * Correct depths prevent both deadlock (undersized FIFOs on
 * reconvergent paths) and throughput loss from back-pressure
 * stalls.
 *
 * Kernels are multi-rate: the same kernel may exchange different
 * token counts on different edges, so its per-edge II is derived
 * as total_cycles / edge_tokens.
 */

#ifndef STREAMTENSOR_TOKEN_FIFO_SIZING_H
#define STREAMTENSOR_TOKEN_FIFO_SIZING_H

#include <cstdint>
#include <vector>

#include "token/token_model.h"

namespace streamtensor {
namespace token {

/** Profiled timing of one dataflow node. */
struct NodeTiming
{
    /** Cycles from execution start to the first output token. */
    double initial_delay = 0.0;

    /** Cycles for one full execution of the node. */
    double total_cycles = 1.0;

    /** Cycles over which the node ingests its inputs; <= 0 means
     *  "same as total_cycles". Layout converters ingest at stream
     *  rate into the ping bank while re-emitting multi-pass from
     *  the pong bank, so their ingestion span is much shorter than
     *  their emission span. */
    double ingest_cycles = -1.0;

    /** Extra cycles per token of an inter-die endpoint (the link
     *  handshake). Node-level, matching the simulators: a kernel
     *  with any crossing channel paces slower on ALL its edges,
     *  so pricing it per crossing edge only would undersize the
     *  kernel's co-located FIFOs. Callers set it to the max
     *  link_ii_penalty over the node's channels. */
    double ii_penalty = 0.0;

    double ingestCycles() const
    {
        return ingest_cycles > 0 ? ingest_cycles : total_cycles;
    }
};

/** A dataflow graph instance for FIFO sizing. */
class FifoSizingProblem
{
  public:
    /** One edge (FIFO) carrying @p tokens tokens per execution. */
    struct Edge
    {
        int64_t src;
        int64_t dst;
        int64_t tokens;

        /** Inter-die link latency of a crossing edge (0 when the
         *  endpoints are co-located): delays both the data
         *  (push -> consumer visibility) and the pop credit
         *  (pop -> producer visibility). Crossing edges are
         *  priced with it so the no-stall depths absorb the link
         *  delay. The II penalty of a crossing lives on the
         *  *nodes* (NodeTiming::ii_penalty), matching the
         *  simulators' component-level pace model. */
        double link_latency = 0.0;
    };

    /** Add a kernel node; returns its id. */
    int64_t addNode(const NodeTiming &timing);

    /** Add a FIFO edge; returns its id. Must form a DAG. */
    int64_t addEdge(int64_t src, int64_t dst, int64_t tokens,
                    double link_latency = 0.0);

    int64_t numNodes() const
    {
        return static_cast<int64_t>(nodes_.size());
    }
    int64_t numEdges() const
    {
        return static_cast<int64_t>(edges_.size());
    }
    const NodeTiming &node(int64_t i) const;
    const Edge &edge(int64_t i) const;

  private:
    std::vector<NodeTiming> nodes_;
    std::vector<Edge> edges_;
};

/** FIFO sizing output. */
struct FifoSizingResult
{
    /** Optimal delay per edge (cycles). */
    std::vector<double> delays;

    /** FIFO depth per edge (tokens). */
    std::vector<int64_t> depths;

    /** Implied kernel start times (longest D-path). */
    std::vector<double> start_times;

    /** LP objective: sum of delays. */
    double objective = 0.0;

    /** False when the path-enumeration LP was skipped (too many
     *  paths) and the potential-based closed form was used. */
    bool used_lp = true;

    /** Sum of all FIFO depths (tokens). */
    int64_t totalDepth() const;
};

/** Options controlling sizing. */
struct FifoSizingOptions
{
    Equalization equalization = Equalization::Normal;

    /** Use the exact occupancy recurrence instead of the paper's
     *  closed forms when deriving depths from delays. */
    bool exact_occupancy = false;

    /** Cap on enumerated path constraints before falling back to
     *  the potential formulation (the dense simplex is quadratic
     *  in the constraint count; the potential solution satisfies
     *  the same constraints and matches the LP optimum on the
     *  paper's Fig. 8f example). */
    int64_t max_paths = 400;
};

/**
 * Solve the sizing problem. Throws FatalError when the graph is
 * not a DAG.
 */
FifoSizingResult sizeFifos(const FifoSizingProblem &problem,
                           const FifoSizingOptions &options = {});

} // namespace token
} // namespace streamtensor

#endif // STREAMTENSOR_TOKEN_FIFO_SIZING_H
