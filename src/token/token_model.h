/**
 * @file
 * Piecewise-linear token production/consumption model
 * (paper §5.3.1-5.3.3, Fig. 8).
 *
 * A kernel that streams T tokens is characterised by its initial
 * delay D (cycles from execution start to the first output token)
 * and its pipeline II (cycles between consecutive tokens). The
 * cumulative token count over time is then a clamped staircase
 * that the paper models as a piecewise linear function. The
 * maximum occupancy of the FIFO between a Source and a Target
 * follows analytically from the two curves and the `delay` between
 * their execution starts (Eq. 1 and Eq. 2).
 */

#ifndef STREAMTENSOR_TOKEN_TOKEN_MODEL_H
#define STREAMTENSOR_TOKEN_TOKEN_MODEL_H

#include <cstdint>
#include <string>

namespace streamtensor {
namespace token {

/** Profiled streaming behaviour of one kernel (from hls model). */
struct KernelProfile
{
    /** Cycles from execution start to the first output token (D). */
    double initial_delay = 0.0;

    /** Cycles between consecutive tokens (pipeline II). */
    double ii = 1.0;

    /** Latency L of a full execution producing @p tokens tokens:
     *  L = D + (T - 1) * II. */
    double latency(int64_t tokens) const;
};

/**
 * Cumulative token-count curve: the number of tokens that have
 * crossed a point by time t, given the producing kernel starts at
 * @p start and emits @p total tokens.
 */
class TokenCurve
{
  public:
    TokenCurve(double start, const KernelProfile &profile,
               int64_t total);

    /** Tokens produced by (inclusive) time @p t. */
    int64_t countAt(double t) const;

    /** Time at which the k-th token (1-based) is produced. */
    double timeOfToken(int64_t k) const;

    /** Time the last token is produced. */
    double finishTime() const;

    double start() const { return start_; }
    double ii() const { return ii_; }
    int64_t total() const { return total_; }

  private:
    double start_;
    double delay_;
    double ii_;
    int64_t total_;
};

/**
 * Exact maximum FIFO occupancy between a source kernel (starting
 * at time 0) and a target kernel (starting at time @p delay),
 * connected by a FIFO carrying @p tokens tokens. The target pulls
 * its k-th token no earlier than the source pushed it and no
 * faster than its own II allows; this token-by-token recurrence
 * reproduces Fig. 8(a) exactly, including target starvation
 * (Fig. 8(e)).
 */
int64_t maxOccupancyExact(const KernelProfile &source,
                          const KernelProfile &target, double delay,
                          int64_t tokens);

/**
 * Paper closed forms. When the source throughput exceeds the
 * target's (II_src < II_tgt), Eq. 1 applies:
 *   max_tokens = min(T, T - floor((L - delay) / II_tgt))
 * otherwise Eq. 2:
 *   max_tokens = min(T, ceil((delay - D) / II_src))
 * The result is clamped to >= 1 (a FIFO always holds one token in
 * flight).
 */
int64_t maxTokensClosedForm(const KernelProfile &source,
                            const KernelProfile &target, double delay,
                            int64_t tokens);

/** FIFO-depth equalization strategies (paper §5.3.3). */
enum class Equalization {
    /** Kernels run at their profiled throughput. */
    Normal,
    /** All IIs scaled up to the slowest kernel's throughput,
     *  minimising FIFO sizes at a possible latency cost. */
    Conservative,
};

/** Printable name. */
std::string equalizationName(Equalization strategy);

} // namespace token
} // namespace streamtensor

#endif // STREAMTENSOR_TOKEN_TOKEN_MODEL_H
