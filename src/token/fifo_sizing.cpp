#include "token/fifo_sizing.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "solver/lp.h"
#include "support/error.h"
#include "support/logging.h"

namespace streamtensor {
namespace token {

namespace {

/** Topological order of the edge list; fatal on cycles. */
std::vector<int64_t>
topoSort(int64_t n, const std::vector<FifoSizingProblem::Edge> &edges)
{
    std::vector<int64_t> indeg(n, 0);
    std::vector<std::vector<int64_t>> succ(n);
    for (const auto &e : edges) {
        succ[e.src].push_back(e.dst);
        ++indeg[e.dst];
    }
    std::vector<int64_t> order;
    std::vector<int64_t> ready;
    for (int64_t i = 0; i < n; ++i)
        if (indeg[i] == 0)
            ready.push_back(i);
    while (!ready.empty()) {
        int64_t u = ready.back();
        ready.pop_back();
        order.push_back(u);
        for (int64_t v : succ[u])
            if (--indeg[v] == 0)
                ready.push_back(v);
    }
    ST_CHECK(static_cast<int64_t>(order.size()) == n,
             "FIFO sizing graph must be a DAG");
    return order;
}

/**
 * Enumerate all paths (as edge-id lists) in the DAG, up to
 * @p max_paths; returns false when the cap is hit.
 */
bool
enumeratePaths(int64_t n,
               const std::vector<FifoSizingProblem::Edge> &edges,
               int64_t max_paths,
               std::vector<std::vector<int64_t>> &paths)
{
    std::vector<std::vector<int64_t>> out_edges(n);
    for (int64_t e = 0; e < static_cast<int64_t>(edges.size()); ++e)
        out_edges[edges[e].src].push_back(e);

    std::vector<int64_t> stack;
    struct Frame
    {
        int64_t node;
        size_t next;
    };
    for (int64_t start = 0; start < n; ++start) {
        std::vector<Frame> dfs{{start, 0}};
        stack.clear();
        while (!dfs.empty()) {
            Frame &f = dfs.back();
            if (f.next < out_edges[f.node].size()) {
                int64_t e = out_edges[f.node][f.next++];
                stack.push_back(e);
                paths.push_back(stack);
                if (static_cast<int64_t>(paths.size()) > max_paths)
                    return false;
                dfs.push_back({edges[e].dst, 0});
            } else {
                dfs.pop_back();
                if (!stack.empty())
                    stack.pop_back();
            }
        }
    }
    return true;
}

} // namespace

int64_t
FifoSizingProblem::addNode(const NodeTiming &timing)
{
    ST_CHECK(timing.total_cycles > 0,
             "node total cycles must be positive");
    ST_CHECK(timing.initial_delay >= 0,
             "node initial delay must be >= 0");
    ST_CHECK(timing.ii_penalty >= 0,
             "node II penalty must be >= 0");
    nodes_.push_back(timing);
    return numNodes() - 1;
}

int64_t
FifoSizingProblem::addEdge(int64_t src, int64_t dst, int64_t tokens,
                           double link_latency)
{
    ST_CHECK(src >= 0 && src < numNodes(), "edge src out of range");
    ST_CHECK(dst >= 0 && dst < numNodes(), "edge dst out of range");
    ST_CHECK(src != dst, "self edges are not allowed");
    ST_CHECK(tokens >= 1, "edges must carry >= 1 tokens");
    ST_CHECK(link_latency >= 0.0, "link latency must be >= 0");
    edges_.push_back({src, dst, tokens, link_latency});
    return numEdges() - 1;
}

const NodeTiming &
FifoSizingProblem::node(int64_t i) const
{
    ST_ASSERT(i >= 0 && i < numNodes(), "node id out of range");
    return nodes_[i];
}

const FifoSizingProblem::Edge &
FifoSizingProblem::edge(int64_t i) const
{
    ST_ASSERT(i >= 0 && i < numEdges(), "edge id out of range");
    return edges_[i];
}

int64_t
FifoSizingResult::totalDepth() const
{
    int64_t total = 0;
    for (int64_t d : depths)
        total += d;
    return total;
}

FifoSizingResult
sizeFifos(const FifoSizingProblem &problem,
          const FifoSizingOptions &options)
{
    int64_t n = problem.numNodes();
    int64_t m = problem.numEdges();
    FifoSizingResult result;
    result.start_times.assign(n, 0.0);
    if (m == 0)
        return result;

    // Equalised timings (paper §5.3.3): Conservative stretches
    // every kernel's execution to the slowest one's, matching all
    // throughputs and shrinking curve gaps.
    std::vector<NodeTiming> timing;
    timing.reserve(n);
    double max_cycles = 0.0;
    for (int64_t i = 0; i < n; ++i)
        max_cycles = std::max(max_cycles,
                              problem.node(i).total_cycles);
    for (int64_t i = 0; i < n; ++i) {
        NodeTiming t = problem.node(i);
        if (options.equalization == Equalization::Conservative) {
            double ratio = max_cycles / t.total_cycles;
            if (t.ingest_cycles > 0)
                t.ingest_cycles *= ratio;
            t.total_cycles = max_cycles;
        }
        timing.push_back(t);
    }

    std::vector<FifoSizingProblem::Edge> edges;
    edges.reserve(m);
    for (int64_t e = 0; e < m; ++e)
        edges.push_back(problem.edge(e));

    // Kernel start-time lower bounds: longest D-weighted path.
    // A crossing edge's first token lands link_latency cycles
    // after the producer emits it, so the link delay accumulates
    // along paths exactly like an initial delay.
    std::vector<int64_t> order = topoSort(n, edges);
    for (int64_t u : order) {
        for (const auto &e : edges) {
            if (e.src != u)
                continue;
            double cand = result.start_times[u] +
                          timing[u].initial_delay +
                          e.link_latency;
            result.start_times[e.dst] =
                std::max(result.start_times[e.dst], cand);
        }
    }

    // Pairwise thresholds (Eq. 5): threshold(u, v) is the maximum
    // accumulated D (plus inter-die link latency) over ALL u->v
    // paths; a consumer cannot start before its latest-arriving
    // operand (paper Fig. 8f: delay[0][2] >= D[0] + D[1]).
    std::vector<std::vector<double>> threshold(
        n, std::vector<double>(n, -1.0));
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        int64_t u = *it;
        for (const auto &e : edges) {
            if (e.src != u)
                continue;
            double d = timing[u].initial_delay + e.link_latency;
            threshold[u][e.dst] =
                std::max(threshold[u][e.dst], d);
            for (int64_t v = 0; v < n; ++v) {
                if (threshold[e.dst][v] >= 0.0) {
                    threshold[u][v] = std::max(
                        threshold[u][v],
                        d + threshold[e.dst][v]);
                }
            }
        }
    }

    // Enumerate path constraints (Eq. 4): every u->v path's delay
    // sum must reach the pairwise threshold.
    std::vector<std::vector<int64_t>> paths;
    bool enumerated =
        enumeratePaths(n, edges, options.max_paths, paths);

    result.delays.assign(m, 0.0);
    if (enumerated) {
        solver::LpProblem lp(m);
        for (int64_t e = 0; e < m; ++e)
            lp.setObjective(e, 1.0);
        // Path rows go straight into the solver's sparse storage;
        // nothing is densified even when m is large.
        std::vector<double> ones;
        for (const auto &path : paths) {
            int64_t u = edges[path.front()].src;
            int64_t v = edges[path.back()].dst;
            ones.assign(path.size(), 1.0);
            lp.addSparseConstraint(path, ones, solver::Relation::GE,
                                   threshold[u][v]);
        }
        solver::LpSolution sol = solveLp(lp);
        if (sol.optimal()) {
            result.delays = sol.values;
            result.objective = sol.objective;
            result.used_lp = true;
        } else {
            warn("FIFO sizing LP not optimal (" +
                 solver::lpStatusName(sol.status) +
                 "); falling back to potentials");
            enumerated = false;
        }
    }
    if (!enumerated) {
        // Potential fallback: delay(i,j) = start(j) - start(i),
        // which satisfies every path constraint by telescoping.
        result.used_lp = false;
        result.objective = 0.0;
        for (int64_t e = 0; e < m; ++e) {
            const auto &ed = edges[e];
            double d = result.start_times[ed.dst] -
                       result.start_times[ed.src];
            d = std::max(d, timing[ed.src].initial_delay +
                                ed.link_latency);
            result.delays[e] = d;
            result.objective += d;
        }
    }

    // Derive depths from delays via the token behavior model. The
    // per-edge IIs follow from each endpoint's total cycles and
    // the edge's token count (multi-rate kernels).
    result.depths.assign(m, 0);
    for (int64_t e = 0; e < m; ++e) {
        const auto &ed = edges[e];
        double delay = std::max(result.delays[e],
                                timing[ed.src].initial_delay +
                                    ed.link_latency);
        // Node-level II penalty: a crossing endpoint paces slower
        // on every edge it touches (the simulators fold the max
        // penalty into the component's II), co-located or not.
        KernelProfile src;
        src.initial_delay = timing[ed.src].initial_delay;
        src.ii = std::max(
            (timing[ed.src].total_cycles - src.initial_delay) /
                std::max<int64_t>(ed.tokens, 1),
            1e-6);
        src.ii += timing[ed.src].ii_penalty;
        KernelProfile dst;
        dst.initial_delay = timing[ed.dst].initial_delay;
        dst.ii = std::max(
            (timing[ed.dst].ingestCycles() - dst.initial_delay) /
                std::max<int64_t>(ed.tokens, 1),
            1e-6);
        dst.ii += timing[ed.dst].ii_penalty;
        // A crossing FIFO holds every token until the pop's
        // credit crosses back, so the pop curve the producer sees
        // is the consumer's shifted by another link_latency:
        // derive the no-stall depth at delay + link_latency.
        double occupancy_delay = delay + ed.link_latency;
        int64_t depth;
        if (options.exact_occupancy) {
            depth = maxOccupancyExact(src, dst, occupancy_delay,
                                      ed.tokens);
        } else {
            depth = maxTokensClosedForm(src, dst, occupancy_delay,
                                        ed.tokens);
        }
        // Hardware FIFOs need at least depth 2 to decouple
        // producer and consumer handshakes.
        result.depths[e] = std::max<int64_t>(depth, 2);
    }
    return result;
}

} // namespace token
} // namespace streamtensor
