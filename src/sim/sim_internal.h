/**
 * @file
 * Shared substrate of the two simulators: the flat per-group spec
 * (dense component/channel tables built once per group) and the
 * token-interleave closed forms with their integer inverses.
 *
 * Both simulateGroup (leap-ahead) and simulateGroupReference
 * (per-firing oracle) are built on this header so that they derive
 * firings, IIs, capacities and -- critically -- firing *times* from
 * the same expressions. Times are always produced by fireTimeAt();
 * as long as both simulators feed it the same anchors, the doubles
 * they compute are bit-identical, which is what lets the
 * differential suite assert exact equality on cycles and
 * finish times.
 */

#ifndef STREAMTENSOR_SIM_SIM_INTERNAL_H
#define STREAMTENSOR_SIM_SIM_INTERNAL_H

#include <cstdint>
#include <vector>

#include "dataflow/graph.h"
#include "support/flat_index.h"
#include "support/math_util.h"

namespace streamtensor {
namespace sim {
namespace detail {

/** Hoisted per-channel constants: everything the inner loops need,
 *  resolved once per group instead of through g.channel() per
 *  examination. */
struct ChannelSpec
{
    int64_t tokens = 0;   ///< tokens moved per accelerator run
    int64_t capacity = 2; ///< FIFO depth (folded: consumer burst)
    int64_t src = -1;     ///< producer, dense component index
    int64_t dst = -1;     ///< consumer, dense component index

    /** Inter-die link latency in cycles: a push becomes visible
     *  to the consumer `latency` cycles after the firing, and a
     *  pop's credit reaches the producer `latency` cycles after
     *  the pop. 0 for co-located channels (today's semantics,
     *  bit for bit). */
    double latency = 0.0;

    /** True when the channel crosses a die boundary (stall
     *  attribution and crossing counts). */
    bool inter_die = false;
};

/** Hoisted per-component constants. */
struct ComponentSpec
{
    int64_t id = -1; ///< graph component id
    int64_t firings = 1;
    double ii = 1.0; ///< pace, inclusive of ii_penalty
    double initial_delay = 0.0;
    bool is_store = false;

    /** Largest inter-die II penalty over the component's channels
     *  (already folded into ii; kept for reporting). */
    double ii_penalty = 0.0;

    std::vector<int64_t> in_channels;  ///< dense channel indices
    std::vector<int64_t> out_channels;
};

/** One fused group, flattened for simulation. */
struct GroupSpec
{
    std::vector<ComponentSpec> comps;
    std::vector<ChannelSpec> chans;
};

/** Target cumulative tokens on a channel after an endpoint fires
 *  k of its @p firings: uniform interleave of the channel's tokens
 *  across the endpoint's firings. k == -1 means "none yet". */
inline int64_t
cumulativeTokens(int64_t k, int64_t firings, int64_t tokens)
{
    if (k < 0)
        return 0;
    return ceilDiv((k + 1) * tokens, firings);
}

/** Largest firing j in [-1, firings-1] whose cumulative tokens stay
 *  within @p budget (inverse of cumulativeTokens from above). */
inline int64_t
lastFiringWithin(int64_t budget, int64_t firings, int64_t tokens)
{
    if (budget <= 0)
        return -1;
    if (budget >= tokens)
        return firings - 1;
    // cum(j) <= budget  <=>  ceil((j+1)*T/F) <= budget; start from
    // the real-division estimate and fix up (cum is a stair, the
    // estimate is within a step of the answer).
    int64_t j = budget * firings / tokens;
    if (j > firings - 1)
        j = firings - 1;
    while (j >= 0 && cumulativeTokens(j, firings, tokens) > budget)
        --j;
    while (j + 1 <= firings - 1 &&
           cumulativeTokens(j + 1, firings, tokens) <= budget)
        ++j;
    return j;
}

/** Smallest firing j in [0, firings] whose cumulative tokens reach
 *  @p need (j == firings when the need exceeds the channel total;
 *  need <= 0 returns -1: already satisfied). */
inline int64_t
firstFiringReaching(int64_t need, int64_t firings, int64_t tokens)
{
    if (need <= 0)
        return -1;
    if (need > tokens)
        return firings;
    return lastFiringWithin(need - 1, firings, tokens) + 1;
}

/** Canonical firing-time formula. BOTH simulators compute every
 *  firing time through this expression so the resulting doubles are
 *  bit-identical: a window anchored at (@p anchor, @p anchor_fired)
 *  places firing @p j at anchor + (j - anchor_fired) * ii. */
inline double
fireTimeAt(double anchor, int64_t anchor_fired, int64_t j, double ii)
{
    return anchor + static_cast<double>(j - anchor_fired) * ii;
}

/** Build the flat spec of one fused group. */
inline GroupSpec
buildGroupSpec(const dataflow::ComponentGraph &g, int64_t group)
{
    GroupSpec spec;
    auto member_ids = g.groupComponents(group);
    auto channel_ids = g.groupChannels(group);

    // Dense indices: sorted-vector flat lookup instead of a
    // node-per-entry tree map (every channel endpoint resolves
    // through this).
    support::FlatIndex comp_index =
        support::FlatIndex::positionsOf(member_ids);

    spec.comps.resize(member_ids.size());
    spec.chans.resize(channel_ids.size());
    for (size_t c = 0; c < channel_ids.size(); ++c) {
        const dataflow::Channel &ch = g.channel(channel_ids[c]);
        ChannelSpec &cs = spec.chans[c];
        cs.tokens = ch.tokens;
        // A folded channel is the merged producer/consumer buffer:
        // it holds exactly one consumer burst (the shared tile).
        cs.capacity =
            ch.folded ? g.channelBurst(channel_ids[c]) : ch.depth;
        cs.src = comp_index.at(ch.src);
        cs.dst = comp_index.at(ch.dst);
        cs.latency = ch.link_latency;
        cs.inter_die = ch.inter_die;
        spec.comps[cs.src].out_channels.push_back(
            static_cast<int64_t>(c));
        spec.comps[cs.dst].in_channels.push_back(
            static_cast<int64_t>(c));
    }
    for (size_t i = 0; i < member_ids.size(); ++i) {
        const dataflow::Component &c = g.component(member_ids[i]);
        ComponentSpec &s = spec.comps[i];
        s.id = member_ids[i];
        s.initial_delay = c.initial_delay;
        s.is_store = c.kind == dataflow::ComponentKind::StoreDma;
        // Firings: one per token on the widest out channel; sinks
        // fire per input token.
        int64_t t = 0;
        for (int64_t ci : s.out_channels)
            t = std::max(t, spec.chans[ci].tokens);
        if (t == 0) {
            for (int64_t ci : s.in_channels)
                t = std::max(t, spec.chans[ci].tokens);
        }
        s.firings = std::max<int64_t>(t, 1);
        double span =
            std::max(c.total_cycles - c.initial_delay, 0.0);
        s.ii = s.firings > 1
                   ? span / static_cast<double>(s.firings - 1)
                   : span;
        s.ii = std::max(s.ii, 1e-9);
    }
    // Die-crossing II penalty: every firing of a component that
    // pushes or pops across a die boundary pays the link handshake
    // on top of its profiled pace. Applied here, in the shared
    // spec builder, so both simulators see the identical double
    // (x + 0.0 == x keeps the zero-cost model bit-identical).
    for (size_t c = 0; c < channel_ids.size(); ++c) {
        double penalty =
            g.channel(channel_ids[c]).link_ii_penalty;
        if (penalty <= 0.0)
            continue;
        ComponentSpec &src = spec.comps[spec.chans[c].src];
        ComponentSpec &dst = spec.comps[spec.chans[c].dst];
        src.ii_penalty = std::max(src.ii_penalty, penalty);
        dst.ii_penalty = std::max(dst.ii_penalty, penalty);
    }
    for (ComponentSpec &s : spec.comps)
        s.ii += s.ii_penalty;
    return spec;
}

} // namespace detail
} // namespace sim
} // namespace streamtensor

#endif // STREAMTENSOR_SIM_SIM_INTERNAL_H
