/**
 * @file
 * Leap-ahead batched discrete-event simulator.
 *
 * The classic loop (kept as sim/reference_simulator.cpp) pops one
 * heap event per firing per component: prefill-scale graphs pay
 * O(total tokens * log n). This implementation advances by *batch
 * commitment* instead. When a component is processed at time t it
 * commits the longest run of k consecutive firings that are
 * provably feasible at its own pace t, t+II, ..., t+(k-1)*II, then
 * reschedules itself at t + k*II. Feasibility of the whole run is
 * established in closed form from the cumulativeTokens inverses:
 * with counterpart channel state frozen at the run's start, both
 * the input-occupancy and output-headroom conditions become integer
 * stair inequalities whose crossing points are computed directly,
 * so a segment of thousands of firings costs O(channels) work.
 *
 * Exactness rests on the commitment discipline: a batch may rely
 * only on channel pushes/pops *already committed* (by earlier
 * events) with firing times derived from the shared window-anchored
 * expression (sim_internal.h). Commitments are unconditional, so a
 * blocked component's wake-up time — the time its counterpart's
 * n-th committed firing satisfies its need — is exact, and a
 * component whose need outruns every commitment registers as the
 * channel's (unique) waiting endpoint and is re-examined when the
 * counterpart commits again. The general epoch-stamped registration
 * degenerates to one boolean per channel side because every channel
 * has exactly one producer and one consumer. Firing times therefore
 * reproduce the reference event order bit-for-bit, which the
 * differential suite (tests/sim_differential_test.cpp) asserts.
 *
 * Inter-die channels shift visibility in time rather than changing
 * the firing expressions: a crossing push is visible to the
 * consumer latency cycles after the producer's fire time, and a
 * crossing pop's credit reaches the producer latency cycles after
 * the consumer's fire time. Visibility queries therefore evaluate
 * the counterpart's committed schedule at tau - latency — which can
 * predate the counterpart's current window anchor, so re-anchoring
 * retires the old window into a per-component history instead of
 * forgetting it. Wake times add the latency to the exact
 * counterpart fire time. With latency 0 every expression reduces to
 * the previous code (x - 0.0 == x), keeping the zero-cost model
 * bit-identical.
 */

#include "sim/simulator.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "sim/sim_internal.h"
#include "support/error.h"
#include "support/thread_pool.h"

namespace streamtensor {
namespace sim {

namespace {

using detail::ChannelSpec;
using detail::ComponentSpec;
using detail::cumulativeTokens;
using detail::firstFiringReaching;
using detail::fireTimeAt;
using detail::GroupSpec;
using detail::lastFiringWithin;

/** Mutable per-component state. */
struct CompRt
{
    int64_t fired = 0; ///< committed firings
    /** Current pace window: committed firing j >= anchor_fired ran
     *  at fireTimeAt(anchor, anchor_fired, j, ii); firings before
     *  anchor_fired all ran at times <= anchor. */
    double anchor = 0.0;
    int64_t anchor_fired = 0;
    double finish_time = 0.0;
    double blocked_since = -1.0;
    bool blocked_on_crossing = false;
    bool in_queue = false;

    /** Retired pace windows, oldest first: (anchor, anchor_fired)
     *  pairs whose firings [anchor_fired, next anchor_fired) ran
     *  at fireTimeAt of that window. Appended on re-anchor (one
     *  entry per blocking episode that committed firings), so the
     *  history is bounded by heap events. Inter-die latency makes
     *  counterpart visibility queries reach `latency` cycles into
     *  the past — past the current window's anchor — and the
     *  history keeps those queries exact. Anchors are strictly
     *  increasing and windows tile [0, current anchor_fired). */
    std::vector<std::pair<double, int64_t>> windows;
};

/** Mutable per-channel state: committed cumulative token counts
 *  plus the (unique) blocked endpoints. */
struct ChanRt
{
    int64_t pushed = 0;
    int64_t popped = 0;
    bool cons_waiting = false; ///< consumer blocked for data
    bool prod_waiting = false; ///< producer blocked for space
    ChannelStats stats;
};

class LeapSim
{
  public:
    LeapSim(const GroupSpec &spec, const SimOptions &options)
        : spec_(spec), options_(options), comps_(spec.comps.size()),
          chans_(spec.chans.size())
    {}

    SimResult run();

  private:
    using Event = std::pair<double, int64_t>; // time, comp index

    bool
    done(int64_t i) const
    {
        return comps_[i].fired >= spec_.comps[i].firings;
    }

    /** In-window delivery count helper: last firing of a window
     *  anchored at (@p anchor, 0) whose *delivery* time (fire
     *  time + @p lat) is <= tau, where @p w firings exist.
     *  Estimates from real division, then fixes up against the
     *  canonical time expression so the count agrees exactly with
     *  the reference engine, which compares fireTime + lat <= tau
     *  — the comparison MUST happen in that addition domain
     *  (fireTime <= tau - lat is not FP-equivalent). Returns m in
     *  [-1, w-1]; the caller adds the window's base count. */
    int64_t
    windowCountAt(double anchor, int64_t w, double ii, double tau,
                  double lat) const
    {
        double rel = (tau - lat - anchor) / ii;
        int64_t m;
        if (!(rel < static_cast<double>(w - 1)))
            m = w - 1;
        else if (rel < 0.0)
            m = -1;
        else
            m = static_cast<int64_t>(rel);
        while (m + 1 <= w - 1 &&
               fireTimeAt(anchor, 0, m + 1, ii) + lat <= tau)
            ++m;
        while (m >= 0 && fireTimeAt(anchor, 0, m, ii) + lat > tau)
            --m;
        return m;
    }

    /** Committed firings of component @p i delivered by @p tau:
     *  fire time + @p lat <= tau (lat = 0 for co-located
     *  channels, where x + 0.0 == x keeps the old semantics bit
     *  for bit). Latency-free queries always have tau >= the
     *  component's current anchor (events are processed in time
     *  order); a crossing channel's delivery horizon tau - lat
     *  can land before it, in which case the retired-window
     *  history resolves the exact count. */
    int64_t
    committedCountAt(int64_t i, double tau, double lat) const
    {
        const CompRt &s = comps_[i];
        if (tau < s.anchor + lat)
            return historicCountAt(i, tau, lat);
        int64_t w = s.fired - s.anchor_fired;
        if (w <= 0)
            return s.fired; // whole history predates the window
        double ii = spec_.comps[i].ii;
        return s.anchor_fired +
               windowCountAt(s.anchor, w, ii, tau, lat) + 1;
    }

    /** Delivered-by-tau count when the horizon precedes the
     *  current window's anchor: binary-search the retired windows
     *  (window k's firings all precede window k+1's anchor, and
     *  x <= y implies x + lat <= y + lat, so the per-window
     *  anchor+lat keys stay sorted). */
    int64_t
    historicCountAt(int64_t i, double tau, double lat) const
    {
        const CompRt &s = comps_[i];
        const auto &h = s.windows;
        auto it = std::upper_bound(
            h.begin(), h.end(), tau,
            [lat](double v, const std::pair<double, int64_t> &w) {
                return v < w.first + lat;
            });
        if (it == h.begin())
            return 0; // before the first committed delivery
        --it;
        int64_t f_lo = it->second;
        int64_t f_hi = (it + 1 == h.end()) ? s.anchor_fired
                                           : (it + 1)->second;
        int64_t w = f_hi - f_lo; // > 0: empty windows not retired
        double ii = spec_.comps[i].ii;
        return f_lo + windowCountAt(it->first, w, ii, tau, lat) + 1;
    }

    /** Exact fire time of committed firing @p n of component
     *  @p i (n < fired), reconstructed from the window that
     *  committed it — the same fireTimeAt doubles the reference
     *  engine produced at its events. */
    double
    fireTimeOf(int64_t i, int64_t n) const
    {
        const CompRt &s = comps_[i];
        double ii = spec_.comps[i].ii;
        if (n >= s.anchor_fired)
            return fireTimeAt(s.anchor, s.anchor_fired, n, ii);
        const auto &h = s.windows;
        auto it = std::upper_bound(
            h.begin(), h.end(), n,
            [](int64_t v, const std::pair<double, int64_t> &w) {
                return v < w.second;
            });
        ST_ASSERT(it != h.begin(),
                  "sim: firing predates all windows");
        --it;
        return fireTimeAt(it->first, it->second, n, ii);
    }

    /** Channel tokens pushed by committed firings *and visible to
     *  the consumer by @p tau*: a crossing push lands latency
     *  cycles after the firing. */
    int64_t
    pushedAt(int64_t c, double tau) const
    {
        const ChannelSpec &ch = spec_.chans[c];
        int64_t n = committedCountAt(ch.src, tau, ch.latency);
        return cumulativeTokens(n - 1, spec_.comps[ch.src].firings,
                                ch.tokens);
    }

    /** Channel tokens popped by committed firings *whose credit
     *  has reached the producer by @p tau* (crossing pops return
     *  their credit latency cycles late). */
    int64_t
    poppedAt(int64_t c, double tau) const
    {
        const ChannelSpec &ch = spec_.chans[c];
        int64_t n = committedCountAt(ch.dst, tau, ch.latency);
        return cumulativeTokens(n - 1, spec_.comps[ch.dst].firings,
                                ch.tokens);
    }

    /** Exact feasibility of firing @p j of component @p i at time
     *  @p tau against all committed counterpart schedules. */
    bool
    feasibleAt(int64_t i, int64_t j, double tau) const
    {
        const ComponentSpec &cs = spec_.comps[i];
        for (int64_t c : cs.in_channels) {
            if (pushedAt(c, tau) <
                cumulativeTokens(j, cs.firings,
                                 spec_.chans[c].tokens))
                return false;
        }
        for (int64_t c : cs.out_channels) {
            if (cumulativeTokens(j, cs.firings,
                                 spec_.chans[c].tokens) >
                spec_.chans[c].capacity + poppedAt(c, tau))
                return false;
        }
        return true;
    }

    /** Largest firing of @p i whose pace time stays within
     *  max_cycles (the reference stops at the first event beyond
     *  the cap, so batches must not leap across it). */
    int64_t
    timeCapFiring(int64_t i) const
    {
        const CompRt &s = comps_[i];
        const ComponentSpec &cs = spec_.comps[i];
        int64_t last = cs.firings - 1;
        if (fireTimeAt(s.anchor, s.anchor_fired, last, cs.ii) <=
            options_.max_cycles)
            return last;
        int64_t lo = s.fired, hi = last;
        while (lo < hi) {
            int64_t mid = lo + (hi - lo + 1) / 2;
            if (fireTimeAt(s.anchor, s.anchor_fired, mid, cs.ii) <=
                options_.max_cycles)
                lo = mid;
            else
                hi = mid - 1;
        }
        return lo;
    }

    void
    schedule(int64_t i, double when)
    {
        if (comps_[i].in_queue)
            return;
        queue_.push({when, i});
        comps_[i].in_queue = true;
    }

    /** Component @p i cannot fire at @p t: compute its exact
     *  wake-up from committed counterpart schedules, or register it
     *  as a channel waiter when its need outruns every
     *  commitment. Crossing channels satisfy the need only when
     *  the firing's data (or credit) lands, latency cycles after
     *  the counterpart's fire time. */
    void
    block(int64_t i, double t)
    {
        CompRt &s = comps_[i];
        const ComponentSpec &cs = spec_.comps[i];
        if (s.blocked_since < 0.0)
            s.blocked_since = t;
        int64_t f0 = s.fired;
        double wake_t = t;
        bool covered = true;
        for (int64_t c : cs.in_channels) {
            const ChannelSpec &ch = spec_.chans[c];
            int64_t need =
                cumulativeTokens(f0, cs.firings, ch.tokens);
            if (pushedAt(c, t) >= need)
                continue; // not a blocking channel
            s.blocked_on_crossing |= ch.inter_die;
            const CompRt &p = comps_[ch.src];
            int64_t pf = spec_.comps[ch.src].firings;
            int64_t n = firstFiringReaching(need, pf, ch.tokens);
            if (n < p.fired) {
                double avail =
                    fireTimeOf(ch.src, n) + ch.latency;
                wake_t = std::max(wake_t, avail);
            } else {
                chans_[c].cons_waiting = true;
                covered = false;
            }
        }
        for (int64_t c : cs.out_channels) {
            const ChannelSpec &ch = spec_.chans[c];
            int64_t need_pops =
                cumulativeTokens(f0, cs.firings, ch.tokens) -
                ch.capacity;
            if (need_pops <= 0 || poppedAt(c, t) >= need_pops)
                continue;
            s.blocked_on_crossing |= ch.inter_die;
            const CompRt &x = comps_[ch.dst];
            int64_t xf = spec_.comps[ch.dst].firings;
            int64_t n =
                firstFiringReaching(need_pops, xf, ch.tokens);
            if (n < x.fired) {
                double avail =
                    fireTimeOf(ch.dst, n) + ch.latency;
                wake_t = std::max(wake_t, avail);
            } else {
                chans_[c].prod_waiting = true;
                covered = false;
            }
        }
        if (covered) {
            ST_ASSERT(wake_t > t,
                      "sim: blocked component has no future wake");
            schedule(i, wake_t);
        }
    }

    /** After the producer of @p c committed more firings: wake the
     *  waiting consumer at the exact time its need is met (arrival
     *  = fire time + link latency), or keep it registered when
     *  still uncovered. */
    void
    wakeConsumer(int64_t c, double now)
    {
        const ChannelSpec &ch = spec_.chans[c];
        int64_t x = ch.dst;
        int64_t need = cumulativeTokens(
            comps_[x].fired, spec_.comps[x].firings, ch.tokens);
        const CompRt &p = comps_[ch.src];
        int64_t n = firstFiringReaching(
            need, spec_.comps[ch.src].firings, ch.tokens);
        if (n >= p.fired)
            return; // still uncovered: stay registered
        chans_[c].cons_waiting = false;
        double avail = fireTimeOf(ch.src, n) + ch.latency;
        schedule(x, std::max(avail, now));
    }

    /** After the consumer of @p c committed more firings: wake the
     *  space-waiting producer symmetrically (credit return pays
     *  the link latency too). */
    void
    wakeProducer(int64_t c, double now)
    {
        const ChannelSpec &ch = spec_.chans[c];
        int64_t p = ch.src;
        int64_t need_pops =
            cumulativeTokens(comps_[p].fired,
                             spec_.comps[p].firings, ch.tokens) -
            ch.capacity;
        if (need_pops <= 0)
            need_pops = 1;
        const CompRt &x = comps_[ch.dst];
        int64_t n = firstFiringReaching(
            need_pops, spec_.comps[ch.dst].firings, ch.tokens);
        if (n >= x.fired)
            return; // still uncovered: stay registered
        chans_[c].prod_waiting = false;
        double avail = fireTimeOf(ch.dst, n) + ch.latency;
        schedule(p, std::max(avail, now));
    }

    void process(double t, int64_t i);

    const GroupSpec &spec_;
    const SimOptions &options_;
    std::vector<CompRt> comps_;
    std::vector<ChanRt> chans_;
    std::priority_queue<Event, std::vector<Event>,
                        std::greater<Event>>
        queue_;
    SimResult result_;
    double now_ = 0.0;
    int64_t live_ = 0;
    bool first_output_seen_ = false;

    /** Scratch (per process() call, capacity reused). */
    std::vector<int64_t> frozen_pops_;
    std::vector<int64_t> occ_bound_;
};

void
LeapSim::process(double t, int64_t i)
{
    CompRt &s = comps_[i];
    const ComponentSpec &cs = spec_.comps[i];

    // A firing at its predicted pace extends the current window; an
    // off-pace event (a wake after a stall) re-anchors it, retiring
    // the old window into the history (crossing-channel visibility
    // queries reach latency cycles into the past). Either way
    // firing fired happens at exactly t if it happens now.
    if (t != fireTimeAt(s.anchor, s.anchor_fired, s.fired, cs.ii)) {
        if (s.fired > s.anchor_fired)
            s.windows.emplace_back(s.anchor, s.anchor_fired);
        s.anchor = t;
        s.anchor_fired = s.fired;
    }

    int64_t f0 = s.fired;
    if (!feasibleAt(i, f0, t)) {
        block(i, t);
        return;
    }
    if (s.blocked_since >= 0.0) {
        result_.components[i].stall_cycles += t - s.blocked_since;
        if (s.blocked_on_crossing)
            result_.crossing_stall_cycles += t - s.blocked_since;
        s.blocked_since = -1.0;
        s.blocked_on_crossing = false;
    }

    // ---- Find the batch [f0, j_end]: the longest on-pace run
    // whose every firing is feasible. Each loop turn either jumps
    // a whole segment (counterpart state frozen at tau: both stair
    // conditions invert in closed form, and with frozen state they
    // are monotone in j, so the segment needs no per-firing checks)
    // or extends by one exactly-verified firing that picks up
    // counterpart progress committed inside the window.
    int64_t jcap = timeCapFiring(i);
    size_t n_out = cs.out_channels.size();
    frozen_pops_.assign(n_out, 0);
    occ_bound_.assign(n_out, 0);
    int64_t j = f0;
    for (;;) {
        double tau = fireTimeAt(s.anchor, s.anchor_fired, j, cs.ii);
        int64_t lim = jcap;
        for (int64_t c : cs.in_channels) {
            lim = std::min(
                lim, lastFiringWithin(pushedAt(c, tau), cs.firings,
                                      spec_.chans[c].tokens));
        }
        for (size_t oi = 0; oi < n_out; ++oi) {
            int64_t c = cs.out_channels[oi];
            int64_t pops = poppedAt(c, tau);
            frozen_pops_[oi] = pops;
            lim = std::min(
                lim, lastFiringWithin(spec_.chans[c].capacity + pops,
                                      cs.firings,
                                      spec_.chans[c].tokens));
        }
        ST_ASSERT(lim >= j, "sim: frozen limit below feasible j");
        // Peak-occupancy bound for the segment: pushes grow through
        // lim while pops stay frozen, so the segment peak is at its
        // end; feasibility keeps it within capacity.
        for (size_t oi = 0; oi < n_out; ++oi) {
            int64_t c = cs.out_channels[oi];
            int64_t occ = cumulativeTokens(lim, cs.firings,
                                           spec_.chans[c].tokens) -
                          frozen_pops_[oi];
            occ_bound_[oi] = std::max(occ_bound_[oi], occ);
        }
        if (lim >= jcap) {
            j = jcap;
            break;
        }
        if (lim > j) {
            j = lim;
            continue;
        }
        double tau_next =
            fireTimeAt(s.anchor, s.anchor_fired, j + 1, cs.ii);
        if (!feasibleAt(i, j + 1, tau_next))
            break;
        j = j + 1;
        if (j >= jcap) {
            for (size_t oi = 0; oi < n_out; ++oi) {
                int64_t c = cs.out_channels[oi];
                int64_t occ =
                    cumulativeTokens(j, cs.firings,
                                     spec_.chans[c].tokens) -
                    poppedAt(c, tau_next);
                occ_bound_[oi] = std::max(occ_bound_[oi], occ);
            }
            break;
        }
    }
    int64_t j_end = j;
    double tau_end =
        fireTimeAt(s.anchor, s.anchor_fired, j_end, cs.ii);

    // ---- Commit the batch: advance the window *first* (the wake
    // computations below read this component's committed schedule),
    // then bulk-update channel state and wake the unique waiting
    // endpoints at their exact enabling times.
    s.fired = j_end + 1;
    s.finish_time = tau_end;
    result_.components[i].firings = s.fired;
    result_.components[i].finish_time = tau_end;
    for (size_t ci = 0; ci < cs.in_channels.size(); ++ci) {
        int64_t c = cs.in_channels[ci];
        ChanRt &cr = chans_[c];
        int64_t target = cumulativeTokens(j_end, cs.firings,
                                          spec_.chans[c].tokens);
        cr.stats.pops += target - cr.popped;
        cr.popped = target;
        if (cr.prod_waiting)
            wakeProducer(c, t);
    }
    for (size_t oi = 0; oi < n_out; ++oi) {
        int64_t c = cs.out_channels[oi];
        ChanRt &cr = chans_[c];
        int64_t target = cumulativeTokens(j_end, cs.firings,
                                          spec_.chans[c].tokens);
        cr.stats.pushes += target - cr.pushed;
        cr.pushed = target;
        cr.stats.max_occupancy =
            std::max(cr.stats.max_occupancy, occ_bound_[oi]);
        if (cr.cons_waiting)
            wakeConsumer(c, t);
    }

    // First token reaching a store DMA marks group TTFT.
    if (cs.is_store && !first_output_seen_ && f0 == 0) {
        result_.first_output_cycle = t;
        first_output_seen_ = true;
    }

    if (done(i)) {
        --live_;
        return;
    }
    schedule(i, fireTimeAt(s.anchor, s.anchor_fired, s.fired,
                           cs.ii));
}

SimResult
LeapSim::run()
{
    result_.components.resize(comps_.size());
    result_.channels.resize(chans_.size());
    for (const ChannelSpec &ch : spec_.chans)
        if (ch.inter_die)
            ++result_.crossing_channels;
    live_ = static_cast<int64_t>(comps_.size());
    for (size_t i = 0; i < comps_.size(); ++i) {
        comps_[i].anchor = spec_.comps[i].initial_delay;
        schedule(static_cast<int64_t>(i),
                 spec_.comps[i].initial_delay);
    }

    while (!queue_.empty()) {
        auto [t, i] = queue_.top();
        queue_.pop();
        comps_[i].in_queue = false;
        now_ = std::max(now_, t);
        if (now_ > options_.max_cycles) {
            result_.timed_out = true;
            break;
        }
        if (done(i))
            continue;
        ++result_.events;
        process(t, i);
    }

    if (live_ > 0 && !result_.timed_out) {
        result_.deadlock = true;
        for (size_t i = 0; i < comps_.size(); ++i)
            if (!done(static_cast<int64_t>(i)))
                result_.blocked_components.push_back(
                    spec_.comps[i].id);
    }
    for (size_t c = 0; c < chans_.size(); ++c)
        result_.channels[c] = chans_[c].stats;
    for (const auto &cstat : result_.components)
        result_.cycles = std::max(result_.cycles, cstat.finish_time);
    if (!first_output_seen_)
        result_.first_output_cycle = result_.cycles;
    return std::move(result_);
}

} // namespace

SimResult
simulateGroup(const dataflow::ComponentGraph &g, int64_t group,
              const SimOptions &options)
{
    GroupSpec spec = detail::buildGroupSpec(g, group);
    LeapSim sim(spec, options);
    return sim.run();
}

double
steadyIntervalCycles(const SimResult &r)
{
    // The bottleneck process is busy (initial delay + firings at
    // its II) for finish_time - stall_cycles; back-to-back reruns
    // of the group pipeline behind it at exactly that interval.
    double interval = 0.0;
    for (const auto &c : r.components)
        interval =
            std::max(interval, c.finish_time - c.stall_cycles);
    if (interval <= 0.0)
        return r.cycles;
    return std::min(interval, r.cycles);
}

double
batchedCycles(const SimResult &r, int64_t batch)
{
    ST_CHECK(batch >= 1, "batch must be positive");
    return r.cycles + static_cast<double>(batch - 1) *
                          steadyIntervalCycles(r);
}

std::vector<SimResult>
simulateAll(const dataflow::ComponentGraph &g,
            const SimOptions &options)
{
    int64_t groups = g.numGroups();
    std::vector<SimResult> results(groups);
    auto simulate_one = [&](int64_t group) {
        results[group] = simulateGroup(g, group, options);
    };
    if (groups <= 1 || options.threads == 1) {
        for (int64_t group = 0; group < groups; ++group)
            simulate_one(group);
    } else if (options.threads <= 0) {
        support::ThreadPool::shared().run(groups, simulate_one);
    } else {
        support::ThreadPool pool(options.threads);
        pool.run(groups, simulate_one);
    }
    return results;
}

} // namespace sim
} // namespace streamtensor
