#include "sim/simulator.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "support/error.h"
#include "support/flat_index.h"
#include "support/math_util.h"

namespace streamtensor {
namespace sim {

namespace {

/** Simulation state of one FIFO channel. */
struct ChannelState
{
    int64_t occupancy = 0;
    int64_t capacity = 2;
    ChannelStats stats;
};

/** Simulation state of one component process. */
struct ComponentState
{
    int64_t id = -1;
    int64_t firings_total = 0;
    int64_t fired = 0;
    double ii = 1.0;
    double initial_delay = 0.0;
    double ready_time = 0.0;  ///< own pipeline availability
    double blocked_since = -1.0;
    bool in_queue = false;
    std::vector<int64_t> in_channels;   ///< dense channel indices
    std::vector<int64_t> out_channels;
    std::vector<int64_t> consumed; ///< per in channel
    std::vector<int64_t> produced; ///< per out channel
    /** Channels this component currently sits in a waiter list of;
     *  keeps re-examinations from pushing duplicates. */
    std::vector<int64_t> waiting_on;

    bool done() const { return fired >= firings_total; }
};

/** Target cumulative tokens on a channel after firing k of n. */
int64_t
cumulativeTokens(int64_t k, int64_t firings, int64_t tokens)
{
    // ceil((k+1) * tokens / firings): uniform interleave of the
    // channel's tokens across the component's firings.
    return ceilDiv((k + 1) * tokens, firings);
}

} // namespace

SimResult
simulateGroup(const dataflow::ComponentGraph &g, int64_t group,
              const SimOptions &options)
{
    auto member_ids = g.groupComponents(group);
    auto channel_ids = g.groupChannels(group);

    // Dense indices: sorted-vector flat lookup instead of a
    // node-per-entry tree map (the simulator resolves every
    // channel endpoint through this).
    support::FlatIndex comp_index;
    comp_index.reserve(member_ids.size());
    for (size_t i = 0; i < member_ids.size(); ++i)
        comp_index.add(member_ids[i], static_cast<int64_t>(i));
    comp_index.seal();

    std::vector<ChannelState> channels(channel_ids.size());
    for (size_t c = 0; c < channel_ids.size(); ++c) {
        const dataflow::Channel &ch = g.channel(channel_ids[c]);
        // A folded channel is the merged producer/consumer buffer:
        // it holds exactly one consumer burst (the shared tile).
        channels[c].capacity =
            ch.folded ? g.channelBurst(channel_ids[c]) : ch.depth;
    }

    std::vector<ComponentState> comps(member_ids.size());
    for (size_t i = 0; i < member_ids.size(); ++i) {
        const dataflow::Component &c = g.component(member_ids[i]);
        ComponentState &s = comps[i];
        s.id = member_ids[i];
        s.initial_delay = c.initial_delay;
        s.ready_time = c.initial_delay;
    }
    for (size_t c = 0; c < channel_ids.size(); ++c) {
        const dataflow::Channel &ch = g.channel(channel_ids[c]);
        comps[comp_index.at(ch.src)].out_channels.push_back(
            static_cast<int64_t>(c));
        comps[comp_index.at(ch.dst)].in_channels.push_back(
            static_cast<int64_t>(c));
    }
    for (auto &s : comps) {
        // Firings: one per token on the widest out channel; sinks
        // fire per input token.
        int64_t t = 0;
        for (int64_t c : s.out_channels)
            t = std::max(t, g.channel(channel_ids[c]).tokens);
        if (t == 0) {
            for (int64_t c : s.in_channels)
                t = std::max(t, g.channel(channel_ids[c]).tokens);
        }
        s.firings_total = std::max<int64_t>(t, 1);
        const dataflow::Component &c = g.component(s.id);
        double span =
            std::max(c.total_cycles - c.initial_delay, 0.0);
        s.ii = s.firings_total > 1
                   ? span / static_cast<double>(s.firings_total - 1)
                   : span;
        s.ii = std::max(s.ii, 1e-9);
        s.consumed.assign(s.in_channels.size(), 0);
        s.produced.assign(s.out_channels.size(), 0);
    }

    // Waiters: components blocked on a channel (for data or for
    // space).
    std::vector<std::vector<int64_t>> data_waiters(channels.size());
    std::vector<std::vector<int64_t>> space_waiters(channels.size());

    using Event = std::pair<double, int64_t>; // time, comp index
    std::priority_queue<Event, std::vector<Event>,
                        std::greater<Event>>
        queue;
    for (size_t i = 0; i < comps.size(); ++i) {
        queue.push({comps[i].ready_time, static_cast<int64_t>(i)});
        comps[i].in_queue = true;
    }

    SimResult result;
    result.components.resize(comps.size());
    result.channels.resize(channels.size());
    double now = 0.0;
    int64_t live = static_cast<int64_t>(comps.size());
    bool first_output_seen = false;

    auto wake = [&](int64_t i, double t) {
        ComponentState &s = comps[i];
        if (s.in_queue || s.done())
            return;
        if (s.blocked_since >= 0.0) {
            result.components[i].stall_cycles +=
                std::max(t, s.blocked_since) - s.blocked_since;
            s.blocked_since = -1.0;
        }
        queue.push({std::max(t, s.ready_time), i});
        s.in_queue = true;
    };

    // A component blocked across several channels registers once
    // per channel, not once per re-examination: waiting_on tracks
    // live registrations and draining a list clears them.
    auto registerWaiter = [&](std::vector<std::vector<int64_t>> &lists,
                              int64_t c, int64_t i) {
        auto &on = comps[i].waiting_on;
        if (std::find(on.begin(), on.end(), c) == on.end()) {
            on.push_back(c);
            lists[c].push_back(i);
        }
    };
    auto drainWaiters = [&](std::vector<std::vector<int64_t>> &lists,
                            int64_t c, double t) {
        auto waiters = std::move(lists[c]);
        lists[c].clear();
        for (int64_t w : waiters) {
            auto &on = comps[w].waiting_on;
            on.erase(std::remove(on.begin(), on.end(), c),
                     on.end());
            wake(w, t);
        }
    };

    while (!queue.empty()) {
        auto [t, i] = queue.top();
        queue.pop();
        ComponentState &s = comps[i];
        s.in_queue = false;
        now = std::max(now, t);
        if (now > options.max_cycles) {
            result.deadlock = true;
            break;
        }
        if (s.done())
            continue;

        // Check input availability and output space for firing k.
        int64_t k = s.fired;
        bool blocked = false;
        for (size_t ci = 0; ci < s.in_channels.size(); ++ci) {
            int64_t c = s.in_channels[ci];
            int64_t tokens = g.channel(channel_ids[c]).tokens;
            int64_t need =
                cumulativeTokens(k, s.firings_total, tokens) -
                s.consumed[ci];
            if (channels[c].occupancy < need) {
                registerWaiter(data_waiters, c, i);
                blocked = true;
            }
        }
        for (size_t ci = 0; ci < s.out_channels.size(); ++ci) {
            int64_t c = s.out_channels[ci];
            int64_t tokens = g.channel(channel_ids[c]).tokens;
            int64_t put =
                cumulativeTokens(k, s.firings_total, tokens) -
                s.produced[ci];
            if (channels[c].occupancy + put >
                channels[c].capacity) {
                registerWaiter(space_waiters, c, i);
                blocked = true;
            }
        }
        if (blocked) {
            if (s.blocked_since < 0.0)
                s.blocked_since = t;
            continue;
        }

        // Fire: consume, produce, advance.
        for (size_t ci = 0; ci < s.in_channels.size(); ++ci) {
            int64_t c = s.in_channels[ci];
            int64_t tokens = g.channel(channel_ids[c]).tokens;
            int64_t need =
                cumulativeTokens(k, s.firings_total, tokens) -
                s.consumed[ci];
            if (need <= 0)
                continue;
            channels[c].occupancy -= need;
            s.consumed[ci] += need;
            channels[c].stats.pops += need;
            drainWaiters(space_waiters, c, t);
        }
        for (size_t ci = 0; ci < s.out_channels.size(); ++ci) {
            int64_t c = s.out_channels[ci];
            int64_t tokens = g.channel(channel_ids[c]).tokens;
            int64_t put =
                cumulativeTokens(k, s.firings_total, tokens) -
                s.produced[ci];
            if (put <= 0)
                continue;
            channels[c].occupancy += put;
            s.produced[ci] += put;
            channels[c].stats.pushes += put;
            channels[c].stats.max_occupancy =
                std::max(channels[c].stats.max_occupancy,
                         channels[c].occupancy);
            drainWaiters(data_waiters, c, t);
        }

        // First token reaching a store DMA marks group TTFT.
        if (!first_output_seen &&
            g.component(s.id).kind ==
                dataflow::ComponentKind::StoreDma) {
            result.first_output_cycle = t;
            first_output_seen = true;
        }

        s.fired += 1;
        result.components[i].firings = s.fired;
        result.components[i].finish_time = t;
        if (s.done()) {
            --live;
            continue;
        }
        s.ready_time = t + s.ii;
        queue.push({s.ready_time, i});
        s.in_queue = true;
    }

    if (live > 0 && !result.deadlock) {
        result.deadlock = true;
    }
    if (result.deadlock) {
        for (size_t i = 0; i < comps.size(); ++i)
            if (!comps[i].done())
                result.blocked_components.push_back(comps[i].id);
    }
    for (size_t c = 0; c < channels.size(); ++c)
        result.channels[c] = channels[c].stats;
    for (const auto &cs : result.components)
        result.cycles = std::max(result.cycles, cs.finish_time);
    if (!first_output_seen)
        result.first_output_cycle = result.cycles;
    return result;
}

std::vector<SimResult>
simulateAll(const dataflow::ComponentGraph &g,
            const SimOptions &options)
{
    std::vector<SimResult> results;
    for (int64_t group = 0; group < g.numGroups(); ++group)
        results.push_back(simulateGroup(g, group, options));
    return results;
}

} // namespace sim
} // namespace streamtensor
