#include "sim/reference_simulator.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "sim/sim_internal.h"
#include "support/error.h"

namespace streamtensor {
namespace sim {

namespace {

using detail::ChannelSpec;
using detail::ComponentSpec;
using detail::cumulativeTokens;
using detail::fireTimeAt;
using detail::GroupSpec;

/** Simulation state of one FIFO channel. */
struct ChannelState
{
    int64_t occupancy = 0;
    ChannelStats stats;
};

/** Simulation state of one component process. */
struct ComponentState
{
    int64_t fired = 0;
    /** Window anchor: firing j >= anchor_fired is paced at
     *  fireTimeAt(anchor, anchor_fired, j, ii); re-anchored when a
     *  firing lands off its predicted time (i.e. after a stall). */
    double anchor = 0.0;
    int64_t anchor_fired = 0;
    double ready_time = 0.0; ///< own pipeline availability
    double blocked_since = -1.0;
    bool in_queue = false;
    std::vector<int64_t> consumed; ///< per in channel
    std::vector<int64_t> produced; ///< per out channel
    /** Channels this component currently sits in a waiter list of;
     *  keeps re-examinations from pushing duplicates. */
    std::vector<int64_t> waiting_on;
};

} // namespace

SimResult
simulateGroupReference(const dataflow::ComponentGraph &g,
                       int64_t group, const SimOptions &options)
{
    GroupSpec spec = detail::buildGroupSpec(g, group);

    std::vector<ChannelState> channels(spec.chans.size());
    std::vector<ComponentState> comps(spec.comps.size());
    for (size_t i = 0; i < comps.size(); ++i) {
        const ComponentSpec &cs = spec.comps[i];
        ComponentState &s = comps[i];
        s.anchor = cs.initial_delay;
        s.ready_time = cs.initial_delay;
        s.consumed.assign(cs.in_channels.size(), 0);
        s.produced.assign(cs.out_channels.size(), 0);
    }

    // Waiters: components blocked on a channel (for data or for
    // space).
    std::vector<std::vector<int64_t>> data_waiters(channels.size());
    std::vector<std::vector<int64_t>> space_waiters(channels.size());

    using Event = std::pair<double, int64_t>; // time, comp index
    std::priority_queue<Event, std::vector<Event>,
                        std::greater<Event>>
        queue;
    for (size_t i = 0; i < comps.size(); ++i) {
        queue.push({comps[i].ready_time, static_cast<int64_t>(i)});
        comps[i].in_queue = true;
    }

    SimResult result;
    result.components.resize(comps.size());
    result.channels.resize(channels.size());
    double now = 0.0;
    int64_t live = static_cast<int64_t>(comps.size());
    bool first_output_seen = false;

    auto done = [&](int64_t i) {
        return comps[i].fired >= spec.comps[i].firings;
    };

    auto wake = [&](int64_t i, double t) {
        ComponentState &s = comps[i];
        if (s.in_queue || done(i))
            return;
        if (s.blocked_since >= 0.0) {
            result.components[i].stall_cycles +=
                std::max(t, s.blocked_since) - s.blocked_since;
            s.blocked_since = -1.0;
        }
        queue.push({std::max(t, s.ready_time), i});
        s.in_queue = true;
    };

    // A component blocked across several channels registers once
    // per channel, not once per re-examination: waiting_on tracks
    // live registrations and draining a list clears them.
    auto registerWaiter = [&](std::vector<std::vector<int64_t>> &lists,
                              int64_t c, int64_t i) {
        auto &on = comps[i].waiting_on;
        if (std::find(on.begin(), on.end(), c) == on.end()) {
            on.push_back(c);
            lists[c].push_back(i);
        }
    };
    auto drainWaiters = [&](std::vector<std::vector<int64_t>> &lists,
                            int64_t c, double t) {
        auto waiters = std::move(lists[c]);
        lists[c].clear();
        for (int64_t w : waiters) {
            auto &on = comps[w].waiting_on;
            on.erase(std::remove(on.begin(), on.end(), c),
                     on.end());
            wake(w, t);
        }
    };

    while (!queue.empty()) {
        auto [t, i] = queue.top();
        queue.pop();
        ComponentState &s = comps[i];
        const ComponentSpec &cs = spec.comps[i];
        s.in_queue = false;
        now = std::max(now, t);
        if (now > options.max_cycles) {
            result.timed_out = true;
            break;
        }
        if (done(i))
            continue;
        ++result.events;

        // Check input availability and output space for firing k.
        int64_t k = s.fired;
        bool blocked = false;
        for (size_t ci = 0; ci < cs.in_channels.size(); ++ci) {
            int64_t c = cs.in_channels[ci];
            int64_t need =
                cumulativeTokens(k, cs.firings,
                                 spec.chans[c].tokens) -
                s.consumed[ci];
            if (channels[c].occupancy < need) {
                registerWaiter(data_waiters, c, i);
                blocked = true;
            }
        }
        for (size_t ci = 0; ci < cs.out_channels.size(); ++ci) {
            int64_t c = cs.out_channels[ci];
            int64_t put =
                cumulativeTokens(k, cs.firings,
                                 spec.chans[c].tokens) -
                s.produced[ci];
            if (channels[c].occupancy + put >
                spec.chans[c].capacity) {
                registerWaiter(space_waiters, c, i);
                blocked = true;
            }
        }
        if (blocked) {
            if (s.blocked_since < 0.0)
                s.blocked_since = t;
            continue;
        }

        // Fire: consume, produce, advance.
        for (size_t ci = 0; ci < cs.in_channels.size(); ++ci) {
            int64_t c = cs.in_channels[ci];
            int64_t need =
                cumulativeTokens(k, cs.firings,
                                 spec.chans[c].tokens) -
                s.consumed[ci];
            if (need <= 0)
                continue;
            channels[c].occupancy -= need;
            s.consumed[ci] += need;
            channels[c].stats.pops += need;
            drainWaiters(space_waiters, c, t);
        }
        for (size_t ci = 0; ci < cs.out_channels.size(); ++ci) {
            int64_t c = cs.out_channels[ci];
            int64_t put =
                cumulativeTokens(k, cs.firings,
                                 spec.chans[c].tokens) -
                s.produced[ci];
            if (put <= 0)
                continue;
            channels[c].occupancy += put;
            s.produced[ci] += put;
            channels[c].stats.pushes += put;
            channels[c].stats.max_occupancy =
                std::max(channels[c].stats.max_occupancy,
                         channels[c].occupancy);
            drainWaiters(data_waiters, c, t);
        }

        // First token reaching a store DMA marks group TTFT.
        if (!first_output_seen && cs.is_store) {
            result.first_output_cycle = t;
            first_output_seen = true;
        }

        // A firing at its predicted pace extends the current
        // window; a delayed (stalled) firing re-anchors it.
        if (t != fireTimeAt(s.anchor, s.anchor_fired, s.fired,
                            cs.ii)) {
            s.anchor = t;
            s.anchor_fired = s.fired;
        }
        s.fired += 1;
        result.components[i].firings = s.fired;
        result.components[i].finish_time = t;
        if (done(i)) {
            --live;
            continue;
        }
        s.ready_time =
            fireTimeAt(s.anchor, s.anchor_fired, s.fired, cs.ii);
        queue.push({s.ready_time, i});
        s.in_queue = true;
    }

    if (live > 0 && !result.timed_out) {
        result.deadlock = true;
        for (size_t i = 0; i < comps.size(); ++i)
            if (!done(static_cast<int64_t>(i)))
                result.blocked_components.push_back(
                    spec.comps[i].id);
    }
    for (size_t c = 0; c < channels.size(); ++c)
        result.channels[c] = channels[c].stats;
    for (const auto &cstat : result.components)
        result.cycles = std::max(result.cycles, cstat.finish_time);
    if (!first_output_seen)
        result.first_output_cycle = result.cycles;
    return result;
}

} // namespace sim
} // namespace streamtensor
