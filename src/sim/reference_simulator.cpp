#include "sim/reference_simulator.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "sim/sim_internal.h"
#include "support/error.h"

namespace streamtensor {
namespace sim {

namespace {

using detail::ChannelSpec;
using detail::ComponentSpec;
using detail::cumulativeTokens;
using detail::fireTimeAt;
using detail::GroupSpec;

/** Simulation state of one FIFO channel, split into the two die
 *  views an inter-die link decouples: the producer sees pushed
 *  minus credited (pop credits return link-latency cycles after
 *  the pop), the consumer sees arrived minus popped (pushes land
 *  link-latency cycles after the firing). Co-located channels
 *  (latency 0) keep both views equal at every examination, which
 *  reduces to the old single-occupancy code bit for bit. */
struct ChannelState
{
    int64_t pushed = 0;   ///< tokens pushed (producer side)
    int64_t arrived = 0;  ///< tokens landed on the consumer side
    int64_t popped = 0;   ///< tokens popped
    int64_t credited = 0; ///< pop credits back at the producer
    /** In-flight (time, count) queues, drained lazily at
     *  examinations; arrival/credit times are nondecreasing
     *  because pushes/pops happen in event order. Empty for
     *  latency-0 channels. */
    std::vector<std::pair<double, int64_t>> pending_arrivals;
    std::vector<std::pair<double, int64_t>> pending_credits;
    size_t arrival_head = 0;
    size_t credit_head = 0;
    ChannelStats stats;
};

/** Simulation state of one component process. */
struct ComponentState
{
    int64_t fired = 0;
    /** Window anchor: firing j >= anchor_fired is paced at
     *  fireTimeAt(anchor, anchor_fired, j, ii); re-anchored when a
     *  firing lands off its predicted time (i.e. after a stall). */
    double anchor = 0.0;
    int64_t anchor_fired = 0;
    double ready_time = 0.0; ///< own pipeline availability
    double blocked_since = -1.0;
    bool blocked_on_crossing = false;
    bool in_queue = false;
    std::vector<int64_t> consumed; ///< per in channel
    std::vector<int64_t> produced; ///< per out channel
    /** Channels this component currently sits in a waiter list of;
     *  keeps re-examinations from pushing duplicates. */
    std::vector<int64_t> waiting_on;
};

} // namespace

SimResult
simulateGroupReference(const dataflow::ComponentGraph &g,
                       int64_t group, const SimOptions &options)
{
    GroupSpec spec = detail::buildGroupSpec(g, group);

    std::vector<ChannelState> channels(spec.chans.size());
    std::vector<ComponentState> comps(spec.comps.size());
    for (size_t i = 0; i < comps.size(); ++i) {
        const ComponentSpec &cs = spec.comps[i];
        ComponentState &s = comps[i];
        s.anchor = cs.initial_delay;
        s.ready_time = cs.initial_delay;
        s.consumed.assign(cs.in_channels.size(), 0);
        s.produced.assign(cs.out_channels.size(), 0);
    }

    // Waiters: components blocked on a channel (for data or for
    // space).
    std::vector<std::vector<int64_t>> data_waiters(channels.size());
    std::vector<std::vector<int64_t>> space_waiters(channels.size());

    using Event = std::pair<double, int64_t>; // time, comp index
    std::priority_queue<Event, std::vector<Event>,
                        std::greater<Event>>
        queue;
    for (size_t i = 0; i < comps.size(); ++i) {
        queue.push({comps[i].ready_time, static_cast<int64_t>(i)});
        comps[i].in_queue = true;
    }

    SimResult result;
    result.components.resize(comps.size());
    result.channels.resize(channels.size());
    for (const ChannelSpec &ch : spec.chans)
        if (ch.inter_die)
            ++result.crossing_channels;
    double now = 0.0;
    int64_t live = static_cast<int64_t>(comps.size());
    bool first_output_seen = false;

    auto done = [&](int64_t i) {
        return comps[i].fired >= spec.comps[i].firings;
    };

    auto wake = [&](int64_t i, double t) {
        ComponentState &s = comps[i];
        if (s.in_queue || done(i))
            return;
        if (s.blocked_since >= 0.0) {
            double credit =
                std::max(t, s.blocked_since) - s.blocked_since;
            result.components[i].stall_cycles += credit;
            if (s.blocked_on_crossing)
                result.crossing_stall_cycles += credit;
            s.blocked_since = -1.0;
            s.blocked_on_crossing = false;
        }
        queue.push({std::max(t, s.ready_time), i});
        s.in_queue = true;
    };

    // Lazy delivery: move in-flight tokens/credits whose link
    // transit completed by @p t into the visible counters. The
    // drained prefix is compacted away once it dominates the
    // vector, keeping a crossing channel's state proportional to
    // the tokens actually in flight rather than to every push of
    // the run.
    auto compact = [](std::vector<std::pair<double, int64_t>> &q,
                      size_t &head) {
        if (head >= 64 && head * 2 >= q.size()) {
            q.erase(q.begin(), q.begin() + head);
            head = 0;
        }
    };
    auto drainArrivals = [&](ChannelState &c, double t) {
        while (c.arrival_head < c.pending_arrivals.size() &&
               c.pending_arrivals[c.arrival_head].first <= t) {
            c.arrived += c.pending_arrivals[c.arrival_head].second;
            ++c.arrival_head;
        }
        compact(c.pending_arrivals, c.arrival_head);
    };
    auto drainCredits = [&](ChannelState &c, double t) {
        while (c.credit_head < c.pending_credits.size() &&
               c.pending_credits[c.credit_head].first <= t) {
            c.credited += c.pending_credits[c.credit_head].second;
            ++c.credit_head;
        }
        compact(c.pending_credits, c.credit_head);
    };

    /** Earliest pending-arrival time by which the channel's
     *  consumer-visible tokens reach arrived + @p deficit; < 0
     *  when the in-flight tokens cannot cover it. */
    auto arrivalCovering = [&](const ChannelState &c,
                               int64_t deficit) {
        int64_t extra = 0;
        for (size_t k = c.arrival_head;
             k < c.pending_arrivals.size(); ++k) {
            extra += c.pending_arrivals[k].second;
            if (extra >= deficit)
                return c.pending_arrivals[k].first;
        }
        return -1.0;
    };
    auto creditCovering = [&](const ChannelState &c,
                              int64_t deficit) {
        int64_t extra = 0;
        for (size_t k = c.credit_head;
             k < c.pending_credits.size(); ++k) {
            extra += c.pending_credits[k].second;
            if (extra >= deficit)
                return c.pending_credits[k].first;
        }
        return -1.0;
    };

    // A component blocked across several channels registers once
    // per channel, not once per re-examination: waiting_on tracks
    // live registrations and draining a list clears them.
    auto registerWaiter = [&](std::vector<std::vector<int64_t>> &lists,
                              int64_t c, int64_t i) {
        auto &on = comps[i].waiting_on;
        if (std::find(on.begin(), on.end(), c) == on.end()) {
            on.push_back(c);
            lists[c].push_back(i);
        }
    };
    auto drainWaiters = [&](std::vector<std::vector<int64_t>> &lists,
                            int64_t c, double t) {
        auto waiters = std::move(lists[c]);
        lists[c].clear();
        for (int64_t w : waiters) {
            auto &on = comps[w].waiting_on;
            on.erase(std::remove(on.begin(), on.end(), c),
                     on.end());
            wake(w, t);
        }
    };

    while (!queue.empty()) {
        auto [t, i] = queue.top();
        queue.pop();
        ComponentState &s = comps[i];
        const ComponentSpec &cs = spec.comps[i];
        s.in_queue = false;
        now = std::max(now, t);
        if (now > options.max_cycles) {
            result.timed_out = true;
            break;
        }
        if (done(i))
            continue;
        ++result.events;

        // Check input availability and output space for firing k.
        // Crossing channels satisfy the checks only with tokens
        // (credits) whose link transit completed by t; pending
        // in-flight entries that will cover the deficit give the
        // exact self-wake time, mirroring the leap engine's
        // covered-block path.
        int64_t k = s.fired;
        bool blocked = false;
        bool covered = true;
        double wake_t = t;
        for (size_t ci = 0; ci < cs.in_channels.size(); ++ci) {
            int64_t c = cs.in_channels[ci];
            ChannelState &chan = channels[c];
            drainArrivals(chan, t);
            int64_t need =
                cumulativeTokens(k, cs.firings,
                                 spec.chans[c].tokens) -
                s.consumed[ci];
            int64_t avail = chan.arrived - chan.popped;
            if (avail < need) {
                blocked = true;
                s.blocked_on_crossing |= spec.chans[c].inter_die;
                double ta = arrivalCovering(chan, need - avail);
                if (ta >= 0.0) {
                    wake_t = std::max(wake_t, ta);
                } else {
                    registerWaiter(data_waiters, c, i);
                    covered = false;
                }
            }
        }
        for (size_t ci = 0; ci < cs.out_channels.size(); ++ci) {
            int64_t c = cs.out_channels[ci];
            ChannelState &chan = channels[c];
            drainCredits(chan, t);
            int64_t put =
                cumulativeTokens(k, cs.firings,
                                 spec.chans[c].tokens) -
                s.produced[ci];
            int64_t over = chan.pushed + put - chan.credited -
                           spec.chans[c].capacity;
            if (over > 0) {
                blocked = true;
                s.blocked_on_crossing |= spec.chans[c].inter_die;
                double ta = creditCovering(chan, over);
                if (ta >= 0.0) {
                    wake_t = std::max(wake_t, ta);
                } else {
                    registerWaiter(space_waiters, c, i);
                    covered = false;
                }
            }
        }
        if (blocked) {
            if (s.blocked_since < 0.0)
                s.blocked_since = t;
            if (covered)
                wake(i, wake_t); // in-flight entries cover the need
            continue;
        }

        // Fire: consume, produce, advance. Crossing pops return
        // their credit (and crossing pushes land) latency cycles
        // from now, so waiters are woken at the delivery time.
        for (size_t ci = 0; ci < cs.in_channels.size(); ++ci) {
            int64_t c = cs.in_channels[ci];
            const ChannelSpec &cspec = spec.chans[c];
            int64_t need =
                cumulativeTokens(k, cs.firings, cspec.tokens) -
                s.consumed[ci];
            if (need <= 0)
                continue;
            ChannelState &chan = channels[c];
            chan.popped += need;
            s.consumed[ci] += need;
            chan.stats.pops += need;
            if (cspec.latency > 0.0) {
                chan.pending_credits.emplace_back(
                    t + cspec.latency, need);
            } else {
                chan.credited += need;
            }
            drainWaiters(space_waiters, c, t + cspec.latency);
        }
        for (size_t ci = 0; ci < cs.out_channels.size(); ++ci) {
            int64_t c = cs.out_channels[ci];
            const ChannelSpec &cspec = spec.chans[c];
            int64_t put =
                cumulativeTokens(k, cs.firings, cspec.tokens) -
                s.produced[ci];
            if (put <= 0)
                continue;
            ChannelState &chan = channels[c];
            chan.pushed += put;
            s.produced[ci] += put;
            chan.stats.pushes += put;
            if (cspec.latency > 0.0) {
                chan.pending_arrivals.emplace_back(
                    t + cspec.latency, put);
            } else {
                chan.arrived += put;
            }
            // Peak of the producer-side view: what the capacity
            // check constrains.
            chan.stats.max_occupancy =
                std::max(chan.stats.max_occupancy,
                         chan.pushed - chan.credited);
            drainWaiters(data_waiters, c, t + cspec.latency);
        }

        // First token reaching a store DMA marks group TTFT.
        if (!first_output_seen && cs.is_store) {
            result.first_output_cycle = t;
            first_output_seen = true;
        }

        // A firing at its predicted pace extends the current
        // window; a delayed (stalled) firing re-anchors it.
        if (t != fireTimeAt(s.anchor, s.anchor_fired, s.fired,
                            cs.ii)) {
            s.anchor = t;
            s.anchor_fired = s.fired;
        }
        s.fired += 1;
        result.components[i].firings = s.fired;
        result.components[i].finish_time = t;
        if (done(i)) {
            --live;
            continue;
        }
        s.ready_time =
            fireTimeAt(s.anchor, s.anchor_fired, s.fired, cs.ii);
        queue.push({s.ready_time, i});
        s.in_queue = true;
    }

    if (live > 0 && !result.timed_out) {
        result.deadlock = true;
        for (size_t i = 0; i < comps.size(); ++i)
            if (!done(static_cast<int64_t>(i)))
                result.blocked_components.push_back(
                    spec.comps[i].id);
    }
    for (size_t c = 0; c < channels.size(); ++c)
        result.channels[c] = channels[c].stats;
    for (const auto &cstat : result.components)
        result.cycles = std::max(result.cycles, cstat.finish_time);
    if (!first_output_seen)
        result.first_output_cycle = result.cycles;
    return result;
}

} // namespace sim
} // namespace streamtensor
