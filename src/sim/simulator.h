/**
 * @file
 * Cycle-level dataflow accelerator simulator — the on-board
 * measurement substitute.
 *
 * Executes one fused group's component graph at token granularity:
 * every component is a process that fires once per output token,
 * blocking on empty input FIFOs and full output FIFOs
 * (back-pressure), with its pace set by the profiled initial delay
 * and II. Reproduces the overlapped schedule of paper Fig. 1(c)
 * and the token dynamics of Fig. 8, detects deadlocks caused by
 * undersized FIFOs on reconvergent paths, and reports per-FIFO
 * peak occupancy so LP sizing can be validated against observed
 * behaviour. Channels crossing a die boundary (die partitioning's
 * Channel::inter_die) execute the platform's link model: pushes
 * become visible to the consumer link_latency cycles late, pop
 * credits return to the producer link_latency cycles late, and
 * crossing endpoints pace at II + link_ii_penalty — so placement
 * changes predicted cycles, not just crossing counts.
 *
 * The production simulator (this header) advances by *leap-ahead
 * batched firing*: whenever a component's input occupancies and
 * output headroom admit k consecutive firings at its own pace --
 * computable in closed form from cumulativeTokens inverses, channel
 * capacities, and the committed firing schedules of its channel
 * counterparts -- it commits all k in one heap event and reschedules
 * itself at t + k*II. Steady-state streaming (the paper's dominant
 * regime) therefore costs events proportional to the number of
 * *blocking episodes*, not the number of firings. The retired
 * per-firing implementation is kept verbatim as
 * sim/reference_simulator.h and pitted against this one in a
 * randomized differential suite; both derive firing times from the
 * same window-anchored expression, so cycles, finish times, firings
 * and channel push/pop counts agree bit-for-bit.
 */

#ifndef STREAMTENSOR_SIM_SIMULATOR_H
#define STREAMTENSOR_SIM_SIMULATOR_H

#include <cstdint>
#include <vector>

#include "dataflow/graph.h"

namespace streamtensor {
namespace sim {

/** Per-component simulation stats. */
struct ComponentStats
{
    double finish_time = 0.0;
    int64_t firings = 0;
    double stall_cycles = 0.0;
};

/** Per-channel simulation stats. */
struct ChannelStats
{
    /** Peak occupancy. The leap-ahead simulator reports a tight
     *  upper bound (pops committed after a producer's batch can
     *  retroactively lower the true interleaved peak); the bound
     *  never exceeds the channel capacity. */
    int64_t max_occupancy = 0;
    int64_t pushes = 0;
    int64_t pops = 0;
};

/** Result of simulating one group. */
struct SimResult
{
    /** True deadlock: no component can ever make progress again
     *  (undersized FIFOs on reconvergent paths). */
    bool deadlock = false;

    /** The simulation was cut off at SimOptions::max_cycles while
     *  components could still make progress. Distinct from
     *  deadlock: a timed-out group is merely slow (or max_cycles is
     *  merely tight), not wedged. */
    bool timed_out = false;

    double cycles = 0.0;

    /** Cycle at which the group produced its first output token
     *  into a store DMA (time-to-first-token inside the group). */
    double first_output_cycle = 0.0;

    /** Heap events processed. The leap-ahead simulator completes an
     *  unblocked pipeline in O(components) events; the per-firing
     *  reference pays O(total firings). */
    int64_t events = 0;

    /** Channels of this group crossing a die boundary
     *  (Channel::inter_die, written by die partitioning). */
    int64_t crossing_channels = 0;

    /** Stall cycles of blocking episodes that involved at least
     *  one inter-die channel (attribution: an episode blocked on
     *  both a local and a crossing FIFO counts fully). The two
     *  engines account episodes at slightly different boundaries,
     *  so this is reporting, not part of the bit-exact
     *  differential contract. */
    double crossing_stall_cycles = 0.0;

    std::vector<ComponentStats> components;
    std::vector<ChannelStats> channels;

    /** Components still blocked when a deadlock was declared.
     *  Populated only for real deadlocks, never on timeout. */
    std::vector<int64_t> blocked_components;
};

/** Simulation controls. */
struct SimOptions
{
    /** Abort (as timed_out) beyond this many cycles. */
    double max_cycles = 4.0e12;

    /** Worker threads for simulateAll's per-group parallelism:
     *  0 = the process-wide pool shared with the runtime executor,
     *  1 = sequential, n > 1 = a dedicated pool of n threads.
     *  Groups are independent, so results are identical (bitwise)
     *  for every setting. */
    int64_t threads = 0;
};

/** Simulate one fused group of @p g. */
SimResult simulateGroup(const dataflow::ComponentGraph &g,
                        int64_t group, const SimOptions &options = {});

/** Simulate every group; returns per-group results. Independent
 *  groups run in parallel on the shared thread pool (see
 *  SimOptions::threads). */
std::vector<SimResult>
simulateAll(const dataflow::ComponentGraph &g,
            const SimOptions &options = {});

/** Steady-state rerun interval of a simulated group in cycles:
 *  the busy time (initial delay + firings at its II, i.e.
 *  finish_time - stall_cycles) of the bottleneck component.
 *  Back-to-back reruns of the group pipeline behind that
 *  component at exactly this pace; always in (0, cycles]. */
double steadyIntervalCycles(const SimResult &r);

/** Batch-cost query for the serving layer: cycles for @p batch
 *  back-to-back runs of the same group pipeline (weights stay
 *  resident, consecutive runs overlap in the pipeline). The first
 *  run pays the full fill latency, each further run one steady
 *  interval: cycles + (batch - 1) * steadyIntervalCycles. */
double batchedCycles(const SimResult &r, int64_t batch);

} // namespace sim
} // namespace streamtensor

#endif // STREAMTENSOR_SIM_SIMULATOR_H
