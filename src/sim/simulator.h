/**
 * @file
 * Cycle-level dataflow accelerator simulator — the on-board
 * measurement substitute.
 *
 * Executes one fused group's component graph at token granularity:
 * every component is a process that fires once per output token,
 * blocking on empty input FIFOs and full output FIFOs
 * (back-pressure), with its pace set by the profiled initial delay
 * and II. Reproduces the overlapped schedule of paper Fig. 1(c)
 * and the token dynamics of Fig. 8, detects deadlocks caused by
 * undersized FIFOs on reconvergent paths, and reports per-FIFO
 * peak occupancy so LP sizing can be validated against observed
 * behaviour.
 */

#ifndef STREAMTENSOR_SIM_SIMULATOR_H
#define STREAMTENSOR_SIM_SIMULATOR_H

#include <cstdint>
#include <vector>

#include "dataflow/graph.h"

namespace streamtensor {
namespace sim {

/** Per-component simulation stats. */
struct ComponentStats
{
    double finish_time = 0.0;
    int64_t firings = 0;
    double stall_cycles = 0.0;
};

/** Per-channel simulation stats. */
struct ChannelStats
{
    int64_t max_occupancy = 0;
    int64_t pushes = 0;
    int64_t pops = 0;
};

/** Result of simulating one group. */
struct SimResult
{
    bool deadlock = false;
    double cycles = 0.0;

    /** Cycle at which the group produced its first output token
     *  into a store DMA (time-to-first-token inside the group). */
    double first_output_cycle = 0.0;

    std::vector<ComponentStats> components;
    std::vector<ChannelStats> channels;

    /** Components still blocked when a deadlock was declared. */
    std::vector<int64_t> blocked_components;
};

/** Simulation controls. */
struct SimOptions
{
    /** Abort (as deadlock) beyond this many cycles. */
    double max_cycles = 4.0e12;
};

/** Simulate one fused group of @p g. */
SimResult simulateGroup(const dataflow::ComponentGraph &g,
                        int64_t group, const SimOptions &options = {});

/** Simulate every group sequentially; returns per-group results. */
std::vector<SimResult>
simulateAll(const dataflow::ComponentGraph &g,
            const SimOptions &options = {});

} // namespace sim
} // namespace streamtensor

#endif // STREAMTENSOR_SIM_SIMULATOR_H
