/**
 * @file
 * The original per-firing discrete-event simulator, retained as a
 * differential-testing oracle for the leap-ahead implementation in
 * sim/simulator.h. One heap event per firing per component, waiter
 * lists drained on every push/pop -- slow but simple enough to
 * trust. Not used on any compile or runtime path.
 *
 * The only deviations from the retired production loop are shared
 * with the new simulator so the two stay bit-comparable: firing
 * times come from the window-anchored expression in
 * sim/sim_internal.h (fireTimeAt), exceeding max_cycles reports
 * timed_out instead of deadlock, and processed events are counted.
 */

#ifndef STREAMTENSOR_SIM_REFERENCE_SIMULATOR_H
#define STREAMTENSOR_SIM_REFERENCE_SIMULATOR_H

#include "sim/simulator.h"

namespace streamtensor {
namespace sim {

/** Simulate one fused group of @p g, one event per firing. */
SimResult
simulateGroupReference(const dataflow::ComponentGraph &g,
                       int64_t group,
                       const SimOptions &options = {});

} // namespace sim
} // namespace streamtensor

#endif // STREAMTENSOR_SIM_REFERENCE_SIMULATOR_H
