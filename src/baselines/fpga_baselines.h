/**
 * @file
 * FPGA baseline models: Allo [15] and DFX [29] (paper Table 4).
 *
 * Substitution note (DESIGN.md): the paper lifts these numbers
 * from the baselines' publications. We model their architectures
 * analytically on the U280 platform:
 *  - Allo: a manually fused W4A8 dataflow design; decoding is
 *    bound by streaming each layer's weights through a manually
 *    provisioned (and under-utilised) set of HBM ports plus a
 *    fixed per-layer control overhead; prefill runs at twice the
 *    decode rate thanks to its spatial matmul arrays.
 *  - DFX: an FP16 overlay appliance; weights are 4x larger than
 *    W4, and the prompt is processed token-serially, so TTFT
 *    scales with the input at the decode rate.
 */

#ifndef STREAMTENSOR_BASELINES_FPGA_BASELINES_H
#define STREAMTENSOR_BASELINES_FPGA_BASELINES_H

#include <cstdint>
#include <string>

#include "models/llm_config.h"

namespace streamtensor {
namespace baselines {

/** Parameters of one analytic FPGA baseline. */
struct FpgaBaselineSpec
{
    std::string name;

    /** Bytes per weight parameter (0.5 = W4, 2.0 = FP16). */
    double weight_bytes_per_param = 0.5;

    /** Effective aggregate weight-streaming bandwidth in GB/s. */
    double effective_bandwidth_gbps = 55.0;

    /** Fixed per-layer control overhead in microseconds. */
    double layer_overhead_us = 90.0;

    /** Prefill speedup over decode (spatial parallelism). */
    double prefill_speedup = 2.0;

    /** Board power in watts while running. */
    double active_power_w = 100.0;
};

/** Allo [15] on U280 (W4A8, manual dataflow). */
FpgaBaselineSpec alloSpec();

/** DFX [29] on U280 (FP16 overlay). */
FpgaBaselineSpec dfxSpec();

/** End-to-end request performance. */
struct FpgaBaselinePerf
{
    double ttft_ms = 0.0;
    double decode_ms_per_token = 0.0;
    double total_latency_ms = 0.0;
    double tokens_per_s = 0.0;
    double energy_j = 0.0;
    double tokens_per_joule = 0.0;
};

/** Evaluate a baseline on one request. */
FpgaBaselinePerf
evaluateFpgaBaseline(const FpgaBaselineSpec &spec,
                     const models::LlmConfig &config,
                     int64_t input_len, int64_t output_len);

} // namespace baselines
} // namespace streamtensor

#endif // STREAMTENSOR_BASELINES_FPGA_BASELINES_H
