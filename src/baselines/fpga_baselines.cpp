#include "baselines/fpga_baselines.h"

#include "support/error.h"

namespace streamtensor {
namespace baselines {

FpgaBaselineSpec
alloSpec()
{
    FpgaBaselineSpec s;
    s.name = "Allo";
    s.weight_bytes_per_param = 0.5; // W4A8
    s.effective_bandwidth_gbps = 55.0;
    s.layer_overhead_us = 90.0;
    s.prefill_speedup = 1.92;
    s.active_power_w = 105.0;
    return s;
}

FpgaBaselineSpec
dfxSpec()
{
    FpgaBaselineSpec s;
    s.name = "DFX";
    s.weight_bytes_per_param = 2.0; // FP16
    s.effective_bandwidth_gbps = 130.0;
    s.layer_overhead_us = 30.0;
    s.prefill_speedup = 1.0; // token-serial prompt processing
    s.active_power_w = 110.0;
    return s;
}

FpgaBaselinePerf
evaluateFpgaBaseline(const FpgaBaselineSpec &spec,
                     const models::LlmConfig &config,
                     int64_t input_len, int64_t output_len)
{
    ST_CHECK(input_len >= 1 && output_len >= 1,
             "request lengths must be positive");

    // One decoded token streams every layer's weights once.
    double weight_bytes = static_cast<double>(config.blockParams()) *
                          spec.weight_bytes_per_param;
    double per_layer_ms =
        weight_bytes / (spec.effective_bandwidth_gbps * 1e9) * 1e3 +
        spec.layer_overhead_us / 1e3;
    double decode_ms = per_layer_ms * config.layers;

    FpgaBaselinePerf perf;
    perf.decode_ms_per_token = decode_ms;
    perf.ttft_ms = input_len * decode_ms / spec.prefill_speedup;
    perf.total_latency_ms =
        perf.ttft_ms + output_len * decode_ms;
    perf.tokens_per_s = 1e3 / decode_ms;
    perf.energy_j =
        spec.active_power_w * perf.total_latency_ms / 1e3;
    perf.tokens_per_joule = output_len / perf.energy_j;
    return perf;
}

} // namespace baselines
} // namespace streamtensor
