/**
 * @file
 * GPU baseline performance models (paper Table 5/6 and Fig. 9).
 *
 * Substitution note (DESIGN.md): the paper measures A100 and
 * 2080Ti boards running Hugging Face eager-mode inference. We
 * model them with a per-op roofline: every layer launches a fixed
 * number of kernels, each paying max(compute, memory) time plus a
 * launch overhead. Small-model GPU decoding is launch-overhead
 * bound, which reproduces the paper's flat TTFT across input
 * lengths and the decode-speed gap to dataflow accelerators.
 */

#ifndef STREAMTENSOR_BASELINES_GPU_MODEL_H
#define STREAMTENSOR_BASELINES_GPU_MODEL_H

#include <cstdint>
#include <string>

#include "models/llm_config.h"

namespace streamtensor {
namespace baselines {

/** GPU platform parameters (Table 6 + calibration constants). */
struct GpuSpec
{
    std::string name;
    double peak_int8_tops = 624.0;
    double bandwidth_gbps = 1935.0;
    double tdp_watts = 300.0;

    /** Fraction of peak compute achieved on small-batch matmuls. */
    double compute_efficiency = 0.35;

    /** Fraction of peak bandwidth achieved on streaming reads. */
    double bandwidth_efficiency = 0.60;

    /** Framework kernels launched per transformer layer. */
    double ops_per_layer = 25.0;

    /** Launch + dispatch overhead per kernel in microseconds. */
    double op_overhead_us = 14.0;

    /** Extra per-context-token decode cost in microseconds per
     *  layer beyond @p context_threshold (cache-pressure knee). */
    double context_slope_us = 0.0;
    int64_t context_threshold = 0;

    /** Activation bytes per weight (W8A8 = 1 byte weights). */
    double weight_bytes_per_param = 1.0;

    /** Power model: idle fraction of TDP plus dynamic share. */
    double idle_power_fraction = 0.30;
    double dynamic_power_fraction = 0.55;
};

/** NVIDIA A100 (80GB HBM). */
GpuSpec a100();

/** NVIDIA GeForce RTX 2080 Ti (11GB GDDR6). */
GpuSpec rtx2080ti();

/** End-to-end performance of one (input, output) request. */
struct GpuPerf
{
    double ttft_ms = 0.0;
    double decode_ms_per_token = 0.0;
    double total_latency_ms = 0.0;
    double tokens_per_s = 0.0;
    double avg_power_w = 0.0;
    double energy_j = 0.0;
    double tokens_per_joule = 0.0;
};

/** Evaluate @p config on @p gpu for one request. */
GpuPerf evaluateGpu(const GpuSpec &gpu,
                    const models::LlmConfig &config,
                    int64_t input_len, int64_t output_len);

} // namespace baselines
} // namespace streamtensor

#endif // STREAMTENSOR_BASELINES_GPU_MODEL_H
