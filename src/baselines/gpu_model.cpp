#include "baselines/gpu_model.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace streamtensor {
namespace baselines {

GpuSpec
a100()
{
    GpuSpec g;
    g.name = "A100";
    g.peak_int8_tops = 624.0;
    g.bandwidth_gbps = 1935.0;
    g.tdp_watts = 300.0;
    g.compute_efficiency = 0.38;
    g.bandwidth_efficiency = 0.62;
    g.ops_per_layer = 25.0;
    g.op_overhead_us = 14.0;
    g.context_slope_us = 0.004;
    g.context_threshold = 0;
    g.idle_power_fraction = 0.30;
    g.dynamic_power_fraction = 0.55;
    return g;
}

GpuSpec
rtx2080ti()
{
    GpuSpec g;
    g.name = "2080Ti";
    g.peak_int8_tops = 215.2;
    g.bandwidth_gbps = 616.0;
    g.tdp_watts = 250.0;
    g.compute_efficiency = 0.30;
    g.bandwidth_efficiency = 0.55;
    g.ops_per_layer = 25.0;
    g.op_overhead_us = 24.0;
    // GDDR cache pressure: per-layer decode cost grows with
    // context beyond ~160 tokens (the paper's 2080Ti speed halves
    // from [64:64] to [128:128]).
    g.context_slope_us = 4.0;
    g.context_threshold = 160;
    g.idle_power_fraction = 0.28;
    g.dynamic_power_fraction = 0.55;
    return g;
}

namespace {

/** Time for one forward pass at (seq, context) in milliseconds. */
double
forwardMs(const GpuSpec &gpu, const models::LlmConfig &config,
          int64_t seq_len, int64_t kv_len)
{
    double flops =
        config.blockFlops(seq_len, kv_len) * config.layers;
    double weight_bytes = static_cast<double>(config.blockParams()) *
                          gpu.weight_bytes_per_param *
                          config.layers;
    double kv_bytes = 2.0 * config.kv_heads * config.head_dim *
                      static_cast<double>(kv_len) * config.layers;
    double compute_ms = flops /
                        (gpu.peak_int8_tops * 1e12 *
                         gpu.compute_efficiency) *
                        1e3;
    double memory_ms = (weight_bytes + kv_bytes) /
                       (gpu.bandwidth_gbps * 1e9 *
                        gpu.bandwidth_efficiency) *
                       1e3;
    double launch_ms = gpu.ops_per_layer * gpu.op_overhead_us *
                       config.layers / 1e3;
    double context_ms = 0.0;
    if (kv_len > gpu.context_threshold) {
        context_ms = (kv_len - gpu.context_threshold) *
                     gpu.context_slope_us * config.layers / 1e3;
    }
    return std::max(compute_ms, memory_ms) + launch_ms +
           context_ms;
}

} // namespace

GpuPerf
evaluateGpu(const GpuSpec &gpu, const models::LlmConfig &config,
            int64_t input_len, int64_t output_len)
{
    ST_CHECK(input_len >= 1 && output_len >= 1,
             "request lengths must be positive");
    GpuPerf perf;
    perf.ttft_ms = forwardMs(gpu, config, input_len, input_len);

    // Decode at the average context length of the run.
    double decode_total = 0.0;
    for (int64_t i = 0; i < output_len; ++i)
        decode_total +=
            forwardMs(gpu, config, 1, input_len + i + 1);
    perf.decode_ms_per_token = decode_total / output_len;
    perf.total_latency_ms = perf.ttft_ms + decode_total;
    perf.tokens_per_s = output_len / decode_total * 1e3;

    // Energy: idle floor plus a dynamic share scaled by how
    // compute-bound the run is (decoding barely loads the SMs).
    double flops = config.blockFlops(1, input_len + output_len) *
                   config.layers * output_len;
    double util = flops /
                  (gpu.peak_int8_tops * 1e12 *
                   (decode_total / 1e3));
    util = std::clamp(util, 0.05, 1.0);
    perf.avg_power_w =
        gpu.tdp_watts * (gpu.idle_power_fraction +
                         gpu.dynamic_power_fraction * util);
    perf.energy_j = perf.avg_power_w * perf.total_latency_ms / 1e3;
    perf.tokens_per_joule = output_len / perf.energy_j;
    return perf;
}

} // namespace baselines
} // namespace streamtensor
