#include "serving/kv_pool.h"

#include <algorithm>

#include "support/error.h"

namespace streamtensor {
namespace serving {

namespace {

/** splitmix64 finalizer — the usual strong 64-bit mixer. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Key of the @p page_index'th page of prefix @p prefix_id — the
 *  simulator's stand-in for hashing the page's token content (all
 *  requests naming the same prefix share those tokens by
 *  definition). Never returns the 0 sentinel. */
uint64_t
pageKey(int64_t prefix_id, int64_t page_index)
{
    uint64_t key =
        mix64(mix64(static_cast<uint64_t>(prefix_id)) ^
              static_cast<uint64_t>(page_index));
    return key == 0 ? 1 : key;
}

} // namespace

KvPool::KvPool(KvPoolOptions options) : options_(options)
{
    ST_CHECK(options_.page_tokens >= 1, "pages need token slots");
    ST_CHECK(options_.total_pages >= 1, "pool needs pages");
    pages_.resize(static_cast<size_t>(options_.total_pages));
    free_.reserve(pages_.size());
    // LIFO stack: page 0 pops first.
    for (int64_t p = options_.total_pages - 1; p >= 0; --p)
        free_.push_back(static_cast<int32_t>(p));
}

int64_t
KvPool::pagesFor(int64_t tokens) const
{
    ST_CHECK(tokens >= 0, "token count domain");
    return (tokens + options_.page_tokens - 1) /
           options_.page_tokens;
}

void
KvPool::bind(int64_t seq_id, int64_t prefix_id, int64_t prefix_len)
{
    ST_CHECK(prefix_id >= 0 && prefix_len >= 0,
             "prefix domain");
    ST_CHECK(prefix_id != 0 || prefix_len == 0,
             "prefix length without a prefix id");
    Seq seq;
    seq.prefix_id = prefix_id;
    seq.prefix_len = prefix_len;
    ST_CHECK(seqs_.emplace(seq_id, std::move(seq)).second,
             "sequence already bound");
}

int64_t
KvPool::missingPages(int64_t seq_id, int64_t tokens) const
{
    auto it = seqs_.find(seq_id);
    ST_CHECK(it != seqs_.end(), "sequence not bound");
    const Seq &seq = it->second;
    int64_t held = static_cast<int64_t>(seq.pages.size());
    int64_t want = pagesFor(tokens);
    int64_t full_prefix =
        seq.prefix_id ? seq.prefix_len / options_.page_tokens : 0;
    int64_t missing = 0;
    for (int64_t pos = held; pos < want; ++pos) {
        if (pos < full_prefix &&
            prefix_table_.count(pageKey(seq.prefix_id, pos)))
            continue; // shared: no fresh allocation
        ++missing;
    }
    return missing;
}

int32_t
KvPool::allocPage()
{
    if (!free_.empty()) {
        int32_t page = free_.back();
        free_.pop_back();
        return page;
    }
    ST_ASSERT(!cached_lru_.empty(), "allocPage without capacity");
    auto oldest = cached_lru_.begin();
    int32_t page = oldest->second;
    cached_lru_.erase(oldest);
    Page &p = pages_[static_cast<size_t>(page)];
    ST_ASSERT(p.cached && p.ref == 0 && p.key != 0,
              "retained page state corrupt");
    prefix_table_.erase(p.key);
    p.cached = false;
    p.key = 0;
    ++stats_.evicted_cached_pages;
    return page;
}

bool
KvPool::grow(int64_t seq_id, int64_t tokens)
{
    auto it = seqs_.find(seq_id);
    ST_CHECK(it != seqs_.end(), "sequence not bound");
    Seq &seq = it->second;
    int64_t held = static_cast<int64_t>(seq.pages.size());
    int64_t want = pagesFor(tokens);
    if (want <= held)
        return true;
    ST_CHECK(want <= options_.total_pages,
             "sequence larger than the whole pool");

    int64_t full_prefix =
        seq.prefix_id ? seq.prefix_len / options_.page_tokens : 0;

    // Plan (lookup only): count fresh allocations and the retained
    // pages this growth revives — revived pages must not also be
    // counted as reclaimable capacity.
    int64_t allocs = 0;
    int64_t cached_revives = 0;
    for (int64_t pos = held; pos < want; ++pos) {
        if (pos < full_prefix) {
            auto hit =
                prefix_table_.find(pageKey(seq.prefix_id, pos));
            if (hit != prefix_table_.end()) {
                if (pages_[static_cast<size_t>(hit->second)]
                        .cached)
                    ++cached_revives;
                continue;
            }
        }
        ++allocs;
    }
    if (allocs > freePages() + cachedPages() - cached_revives)
        return false;

    // Commit, page positions ascending. Revive hits first so the
    // eviction path below can never reclaim a page this very
    // growth references.
    for (int64_t pos = held; pos < want; ++pos) {
        if (pos < full_prefix) {
            uint64_t key = pageKey(seq.prefix_id, pos);
            auto hit = prefix_table_.find(key);
            if (hit != prefix_table_.end()) {
                Page &p =
                    pages_[static_cast<size_t>(hit->second)];
                if (p.cached) {
                    // Revive from the retained cache.
                    for (auto lru = cached_lru_.begin();;
                         ++lru) {
                        ST_ASSERT(lru != cached_lru_.end(),
                                  "cached page missing from LRU");
                        if (lru->second == hit->second) {
                            cached_lru_.erase(lru);
                            break;
                        }
                    }
                    p.cached = false;
                }
                if (p.ref == 0)
                    ++active_pages_;
                ++p.ref;
                ++stats_.prefix_hit_pages;
                seq.pages.push_back(hit->second);
                continue;
            }
        }
        int32_t page = allocPage();
        Page &p = pages_[static_cast<size_t>(page)];
        ST_ASSERT(p.ref == 0 && !p.cached && p.key == 0,
                  "allocated page state corrupt");
        p.ref = 1;
        ++active_pages_;
        if (pos < full_prefix) {
            p.key = pageKey(seq.prefix_id, pos);
            prefix_table_.emplace(p.key, page);
            ++stats_.prefix_miss_pages;
        }
        seq.pages.push_back(page);
    }
    stats_.peak_active_pages =
        std::max(stats_.peak_active_pages, active_pages_);
    return true;
}

void
KvPool::release(int64_t seq_id)
{
    auto it = seqs_.find(seq_id);
    ST_CHECK(it != seqs_.end(), "sequence not bound");
    for (int32_t page : it->second.pages) {
        Page &p = pages_[static_cast<size_t>(page)];
        ST_ASSERT(p.ref > 0, "releasing an unreferenced page");
        if (--p.ref == 0) {
            --active_pages_;
            if (p.key != 0) {
                // Retain for prefix reuse, reclaimable
                // oldest-release-first.
                p.cached = true;
                cached_lru_.emplace(tick_++, page);
            } else {
                free_.push_back(page);
            }
        }
    }
    seqs_.erase(it);
}

int64_t
KvPool::heldPages(int64_t seq_id) const
{
    auto it = seqs_.find(seq_id);
    return it == seqs_.end()
               ? 0
               : static_cast<int64_t>(it->second.pages.size());
}

int64_t
KvPool::refCount(int64_t page) const
{
    ST_CHECK(page >= 0 && page < options_.total_pages,
             "page id domain");
    return pages_[static_cast<size_t>(page)].ref;
}

void
KvPool::validate() const
{
    std::vector<int64_t> refs(pages_.size(), 0);
    for (const auto &[id, seq] : seqs_) {
        (void)id;
        for (int32_t page : seq.pages)
            ++refs[static_cast<size_t>(page)];
    }
    int64_t active = 0;
    for (size_t p = 0; p < pages_.size(); ++p) {
        ST_ASSERT(refs[p] == pages_[p].ref,
                  "page refcount drifted from bindings");
        if (pages_[p].ref > 0) {
            ++active;
            ST_ASSERT(!pages_[p].cached,
                      "active page marked cached");
        }
    }
    ST_ASSERT(active == active_pages_,
              "active-page counter drifted");
    for (const auto &[tick, page] : cached_lru_) {
        (void)tick;
        const Page &p = pages_[static_cast<size_t>(page)];
        ST_ASSERT(p.cached && p.ref == 0 && p.key != 0,
                  "retained page state corrupt");
        auto hit = prefix_table_.find(p.key);
        ST_ASSERT(hit != prefix_table_.end() &&
                      hit->second == page,
                  "retained page missing from prefix table");
    }
    for (int32_t page : free_) {
        const Page &p = pages_[static_cast<size_t>(page)];
        ST_ASSERT(p.ref == 0 && !p.cached && p.key == 0,
                  "free page state corrupt");
    }
    ST_ASSERT(active_pages_ + cachedPages() + freePages() ==
                  options_.total_pages,
              "page conservation violated");
    ST_ASSERT(static_cast<int64_t>(prefix_table_.size()) <=
                  options_.total_pages,
              "prefix table larger than the pool");
}

} // namespace serving
} // namespace streamtensor
