/**
 * @file
 * Storage-tier performance profiles for weight streaming: the
 * storage→HBM leg the serving tier charges when a replica cold
 * starts, recovers from a crash, or hot-swaps its model artifact.
 *
 * A tier is four numbers — aggregate sustained bandwidth, a
 * per-stream bandwidth ceiling, an operation-rate (IOPS) cap, and
 * a first-byte latency floor — which together reproduce the shape
 * of real model-streamer measurements: a block device saturates
 * with few readers (per-stream ceiling near the aggregate), while
 * an object store has high per-request latency and a low
 * per-stream ceiling, so it only approaches its aggregate
 * bandwidth under heavy read concurrency.
 *
 * The presets are styled on published GP3 / IO2 / S3 loader
 * benchmarks (SNIPPETS.md): GP3 at 1,000 MiB/s and 16k IOPS, IO2
 * at 4,000 MiB/s and 100k IOPS, S3-class object storage with
 * ~tens-of-ms first-byte latency and per-stream throughput two
 * orders below its aggregate.
 *
 * Everything here is a deterministic pure function — the
 * WeightStreamer (weights.h) turns these profiles into simulated
 * chunk completion times on the discrete-event clock; no wall
 * clock is involved anywhere.
 */

#ifndef STREAMTENSOR_SERVING_STORAGE_TIER_H
#define STREAMTENSOR_SERVING_STORAGE_TIER_H

#include <cstdint>
#include <string>
#include <vector>

namespace streamtensor {
namespace serving {

/** Performance envelope of one storage tier. All rates must be
 *  positive; latency must be non-negative
 *  (validateStorageTier). */
struct StorageTierProfile
{
    std::string name;

    /** Sustained throughput across all concurrent readers. */
    double aggregate_mib_s = 1000.0;

    /** Single-stream throughput ceiling: one reader can never go
     *  faster than this, no matter how idle the tier is. */
    double per_reader_mib_s = 250.0;

    /** Read-operation rate cap across all readers (each chunk is
     *  one operation). */
    double iops = 16000.0;

    /** Latency from issuing a read to its first byte. */
    double first_byte_ms = 0.5;
};

/** Panic unless the profile's rates are positive and its latency
 *  non-negative. */
void validateStorageTier(const StorageTierProfile &tier);

/** gp3-class network SSD: 1,000 MiB/s, 16k IOPS. Saturates with a
 *  handful of readers. */
StorageTierProfile gp3Tier();

/** io2-class provisioned SSD: 4,000 MiB/s, 100k IOPS, the fastest
 *  preset. */
StorageTierProfile io2Tier();

/** S3-class object storage: high first-byte latency and a low
 *  per-stream ceiling — aggregate bandwidth is only reachable
 *  under heavy read concurrency. */
StorageTierProfile s3Tier();

/** The three presets in {gp3, io2, s3} order (bench/lab sweeps). */
std::vector<StorageTierProfile> allTiers();

/** Simulated service time of one chunked read when @p readers
 *  concurrent streams share the tier: the larger of the transfer
 *  time (first-byte latency plus bytes over the effective
 *  per-reader bandwidth, which is the per-stream ceiling or the
 *  reader's fair share of the aggregate, whichever is smaller) and
 *  the IOPS floor (with every reader issuing back-to-back
 *  operations, each sustains iops / readers op/s). Deterministic;
 *  strictly positive for a non-empty chunk. */
double chunkServiceMs(const StorageTierProfile &tier,
                      int64_t chunk_bytes, int64_t readers);

} // namespace serving
} // namespace streamtensor

#endif // STREAMTENSOR_SERVING_STORAGE_TIER_H
