/**
 * @file
 * ReplicaEngine: the per-replica core of the serving scheduler,
 * factored out of Scheduler::run so one executor-backed engine can
 * serve two masters —
 *
 *  - the single-replica Scheduler, which drives it run-to-
 *    completion over a trace (behaviour bit-identical to the
 *    pre-refactor monolithic loop; the replay and golden suites
 *    pin this), and
 *  - the fleet tier (fleet.h), which interleaves N engines on one
 *    simulated clock and needs incremental control: launch a step,
 *    complete it later, crash a replica mid-step, evacuate its
 *    work, slow it down, swap its cost model while a link is
 *    degraded.
 *
 * The engine is a state machine over one replica's queue, paged KV
 * pool (or reserved budget), and resident batch:
 *
 *     offer/readmit -> [queue] -> launchStep -> busy -> completeStep
 *                        ^  |                    |
 *                        |  +-- expireDeadlines  +-- crash() abandons
 *                        +----- preemption            the in-flight step
 *
 * All step accounting (metrics, step records, token advancement)
 * commits at completeStep(); a crash between launch and completion
 * abandons the in-flight step — its simulated work is lost, which
 * is exactly what a mid-decode hardware failure costs. Evacuated
 * sequences carry a ResumeState so a surviving replica readmits
 * them through the existing preemption-readmission path: one
 * recompute prefill over the accumulated context, then decoding
 * continues — a completed request always emits exactly output_len
 * tokens no matter how many times it moved.
 */

#ifndef STREAMTENSOR_SERVING_REPLICA_H
#define STREAMTENSOR_SERVING_REPLICA_H

#include <cstdint>
#include <map>
#include <vector>

#include "serving/kv_pool.h"
#include "serving/queue.h"
#include "serving/scheduler.h"

namespace streamtensor {
namespace serving {

/** Progress carried across a preemption or a replica failover,
 *  restored on readmission. The generated tokens themselves are
 *  kept (they are known text); only their KV pages were dropped,
 *  so the readmitted sequence recomputes KV with one
 *  prefill-shaped pass over its full context and continues
 *  decoding. */
struct ResumeState
{
    int64_t generated = 0;
    bool ever_prefilled = false;
    double first_token_ms = 0.0;
    int64_t preemptions = 0;

    /** Times the request already moved replicas (fleet tier). */
    int64_t failovers = 0;
};

/** One sequence evacuated from a crashed or draining replica:
 *  the original request plus everything needed to resume it
 *  elsewhere. */
struct EvacuatedSeq
{
    Request req;
    ResumeState state;
};

/** Sort @p trace into (arrival, id) service order and validate it
 *  (positive lengths, non-negative arrivals/deadlines, well-formed
 *  prefixes, unique ids). Shared by Scheduler and FleetScheduler. */
void sortAndValidateTrace(std::vector<Request> &trace);

/** Domain-check @p options (batch room, KV budget, page geometry,
 *  queue depth, step limit). Shared by Scheduler, ReplicaEngine
 *  and FleetScheduler constructors. */
void validateSchedulerOptions(const SchedulerOptions &options);

class ReplicaEngine
{
  public:
    /** @p options is copied; @p cost must outlive the engine (it
     *  may later be swapped via setCost, e.g. for a degraded-link
     *  cost model). */
    ReplicaEngine(const SchedulerOptions &options,
                  StepCostModel &cost, int replica_id = 0);

    int replicaId() const { return replica_id_; }
    const SchedulerOptions &options() const { return options_; }

    // ---- State queries -----------------------------------------

    /** A step is in flight (launched, not yet completed). */
    bool busy() const { return busy_; }

    /** Simulated end of the in-flight step. busy() only. */
    double stepEndMs() const;

    /** Resident sequences or queued requests exist. */
    bool hasWork() const
    {
        return !active_.empty() || !queue_.empty();
    }

    int64_t activeCount() const
    {
        return static_cast<int64_t>(active_.size());
    }
    int64_t queueDepth() const { return queue_.size(); }

    /** KV load signal for load balancing: resident occupancy
     *  (active pages × page_tokens under Paged admission, reserved
     *  tokens under Reserve) plus the queued requests' prefill
     *  demand. Counting backlog demand matters — resident KV alone
     *  rewards the replica whose batch holds small contexts with
     *  every new arrival while its queue grows without bound. */
    int64_t kvLoadTokens() const;

    bool draining() const { return draining_; }

    /** The engine's KV pool (tests; Paged admission only). */
    const KvPool &pool() const { return pool_; }

    // ---- Request intake ----------------------------------------

    /** True when the request could ever run to completion on this
     *  engine's geometry (bucket ladder + KV capacity). Identical
     *  across engines sharing SchedulerOptions. */
    bool servable(const Request &r) const;

    /** Ingest an arrival: queue it, or record the rejection
     *  (TooLong, Drained, DeadlineExpired, QueueFull — checked in
     *  that order) in result(). */
    void offer(const Request &r, double now);

    /** Readmit a preempted or failed-over request at the front of
     *  its priority class, capacity-exempt, with its resume
     *  state. */
    void readmit(const Request &r, const ResumeState &state);

    /** Shed every queued request whose deadline has passed,
     *  recording DeadlineExpired rejections. Resident sequences
     *  are never expired. */
    void expireDeadlines(double now);

    // ---- Step loop ---------------------------------------------

    /** Grow/preempt (Paged), admit from the queue head (unless
     *  draining), group by bucketed shapes and cost one step
     *  starting at @p now. Returns false when there is nothing to
     *  run (no work, or draining with an empty batch). The engine
     *  is busy() until completeStep(). */
    bool launchStep(double now);

    /** Commit the in-flight step: metrics, step record, one output
     *  token per resident sequence, retire finished sequences. */
    void completeStep();

    // ---- Faults ------------------------------------------------

    /** Hard-fail the replica: abandon any in-flight step (its
     *  simulated work is lost — the caller decides whether that
     *  counts as an aborted step), evacuate every resident and
     *  queued request with resume state, and drop all KV — the
     *  pool is rebuilt empty (retained prefix pages die with the
     *  replica) while its cumulative stats are preserved. Returns
     *  residents in admission order, then queued requests in pop
     *  order. The engine is immediately reusable — recovery timing
     *  is the caller's decision. */
    std::vector<EvacuatedSeq> crash();

    /** Evacuate only the queue (graceful drain hand-off): resident
     *  sequences keep running to completion. */
    std::vector<EvacuatedSeq> evacuateQueue();

    /** Enter/leave drain mode: while draining, launchStep admits
     *  nothing from the queue and offer() rejects arrivals as
     *  Drained; residents run to completion. */
    void setDraining(bool draining) { draining_ = draining; }

    /** Record every queued request as a Drained rejection (the
     *  single-replica drain path; the fleet evacuates instead). */
    void shedQueueAsDrained(double now);

    /** Step-cost multiplier for a degraded (slowed) replica; must
     *  be positive. 1.0 = nominal. */
    void setSlowFactor(double factor);

    /** Swap the cost oracle (inter-die link degradation: steps are
     *  costed by a model built on the degraded platform while the
     *  fault holds). @p cost must outlive the engine. */
    void setCost(StepCostModel &cost) { cost_ = &cost; }

    // ---- Results -----------------------------------------------

    /** The engine's accumulated result (metrics, step records,
     *  rejections). Call finalize() first at end of run. */
    ServingResult &result() { return result_; }
    const ServingResult &result() const { return result_; }

    /** Stamp end-of-run aggregates (completed, in_flight,
     *  makespan, queue high-water, pool stats). */
    void finalize(double makespan_ms);

  private:
    /** One sequence resident in the batch. */
    struct ActiveSeq
    {
        Request req;
        int64_t kv_reserved = 0; ///< Reserve admission only
        int64_t generated = 0;

        /** False while the next step must run a prefill-shaped
         *  pass: the first prefill, or the recompute prefill after
         *  a preemption or failover. */
        bool prefilled = false;

        /** True once the first output token was emitted
         *  (preemption clears prefilled but never this). */
        bool ever_prefilled = false;

        double first_token_ms = 0.0;
        int64_t preemptions = 0;
        int64_t failovers = 0;

        /** Monotone admission counter; preemption victim order. */
        int64_t admit_tick = 0;
    };

    int64_t reservedKv(const Request &r) const;
    void reject(const Request &r, RejectReason reason,
                double at_ms);
    ResumeState takeResumeState(const Request &r);

    SchedulerOptions options_;
    StepCostModel *cost_;
    int replica_id_;
    bool paged_;

    RequestQueue queue_;
    std::vector<ActiveSeq> active_; // admission order
    std::map<int64_t, ResumeState> resume_state_;
    KvPool pool_;
    int64_t kv_in_use_ = 0; // Reserve admission only
    int64_t admit_ticks_ = 0;

    bool draining_ = false;
    double slow_factor_ = 1.0;

    // In-flight step (busy_ == true).
    bool busy_ = false;
    double step_start_ms_ = 0.0;
    double step_ms_ = 0.0;
    StepRecord pending_record_;
    int64_t pending_batch_ = 0;
    int64_t pending_pages_active_ = 0;

    // Pool stats accumulated across crash-rebuilds.
    KvPoolStats pool_stats_base_;
    int64_t peak_pages_active_base_ = 0;

    ServingResult result_;
};

} // namespace serving
} // namespace streamtensor

#endif // STREAMTENSOR_SERVING_REPLICA_H
