/**
 * @file
 * Deterministic streaming quantile sketch (KLL-style compactor)
 * for million-request serving sweeps, where storing a
 * RequestMetrics record per completed request — and copy-sorting
 * the whole vector on every percentile query — costs gigabytes
 * and O(n log n) per query.
 *
 * **Structure.** Values land in a level-0 buffer of capacity k.
 * A full level sorts itself and promotes every other element to
 * the next level (whose items each represent 2× the weight),
 * alternating between the even- and odd-indexed halves on
 * successive compactions of that level. The classic KLL sketch
 * flips a random coin per compaction; this one flips a
 * *deterministic* per-level parity counter instead, because the
 * serving layer's replay contract (bit-identical reruns on every
 * platform, no RNG outside the trace generators) outranks the
 * randomized worst-case guarantee. The alternation cancels the
 * systematic rank bias a fixed parity would accumulate.
 *
 * **Cost.** O(k log(n/k)) retained doubles for n inserts —
 * ~50 KB at the default k=512 for a 10M-value stream — with O(1)
 * amortized add(), and O(r log r) per quantile query over the
 * r = retainedItems() summary. Exact min/max are tracked on the
 * side so the tails never drift outside the observed range.
 *
 * **Accuracy.** With deterministic alternation the guarantee is
 * empirical rather than probabilistic: the additive rank error of
 * a compaction at level L is at most 2^(L-1), giving a worst-case
 * normalized rank error around log2(n/k)/k. At k=512 the
 * 100-seed differential suite (quantile_sketch_test.cpp) pins the
 * observed error below 1% of n across exponential, uniform,
 * bimodal, and adversarially sorted streams up to n=200k; the
 * documented contract asserted there is **rank error <= 2% of
 * n**. Callers needing exact percentiles keep per-request records
 * instead (MetricsOptions::keep_records).
 *
 * **Merging.** merge() concatenates per-level summaries and
 * re-compacts overflow, so per-replica sketches combine into one
 * fleet-wide sketch (FleetMetrics) with the same error contract
 * in the merged stream size. Merge order is fixed (replica id) by
 * the fleet, keeping merged estimates bit-identical across runs.
 */

#ifndef STREAMTENSOR_SERVING_QUANTILE_SKETCH_H
#define STREAMTENSOR_SERVING_QUANTILE_SKETCH_H

#include <cstdint>
#include <optional>
#include <vector>

namespace streamtensor {
namespace serving {

class QuantileSketch
{
  public:
    /** @p k is the per-level buffer capacity (>= 8); the default
     *  is the serving layer's documented 512 (see the accuracy
     *  note above). */
    explicit QuantileSketch(int64_t k = 512);

    /** Insert one value. O(1) amortized; triggers at most a
     *  cascade of level compactions. */
    void add(double value);

    /** Fold @p other into this sketch (order-sensitive only in
     *  bit-exactness, not in the error contract — callers merge
     *  in a fixed order to stay deterministic). */
    void merge(const QuantileSketch &other);

    /** Values inserted (exact, unweighted). */
    int64_t count() const { return count_; }

    bool empty() const { return count_ == 0; }

    /** Exact extremes of the inserted stream. Sketch must be
     *  non-empty. */
    double minValue() const;
    double maxValue() const;

    /** Nearest-rank quantile estimate for p in [0, 100] over the
     *  weighted summary (the same convention as percentile():
     *  smallest retained value whose cumulative weight covers
     *  ceil(p/100 * W)). p = 0 and p = 100 answer from the
     *  exactly tracked extremes (compaction may have dropped the
     *  retained copies). std::nullopt on an empty sketch,
     *  mirroring percentile()'s empty-window contract. */
    std::optional<double> quantile(double p) const;

    /** Doubles currently retained across all levels (memory /
     *  test introspection). */
    int64_t retainedItems() const;

  private:
    void compactLevel(size_t level);

    int64_t k_;
    int64_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;

    /** levels_[L] holds items of weight 2^L, unsorted at level 0
     *  between compactions. */
    std::vector<std::vector<double>> levels_;

    /** Per-level compaction parity: even count keeps even-indexed
     *  survivors, odd keeps odd-indexed. */
    std::vector<int64_t> compactions_;
};

} // namespace serving
} // namespace streamtensor

#endif // STREAMTENSOR_SERVING_QUANTILE_SKETCH_H
