#include "serving/quantile_sketch.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace streamtensor {
namespace serving {

QuantileSketch::QuantileSketch(int64_t k) : k_(k)
{
    ST_CHECK(k >= 8, "QuantileSketch capacity must be >= 8");
    levels_.emplace_back();
    levels_.front().reserve(static_cast<size_t>(k_));
    compactions_.push_back(0);
}

void
QuantileSketch::add(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    levels_.front().push_back(value);
    // Compact cascades: promoting half of level L may overflow
    // level L+1, which compacts in turn. Each level holds at most
    // k_ + k_/2 items transiently (its own k_ plus one promotion).
    for (size_t level = 0; level < levels_.size(); ++level)
        if (static_cast<int64_t>(levels_[level].size()) >= k_)
            compactLevel(level);
}

void
QuantileSketch::compactLevel(size_t level)
{
    if (level + 1 == levels_.size()) {
        levels_.emplace_back();
        levels_.back().reserve(static_cast<size_t>(k_));
        compactions_.push_back(0);
    }
    auto &buf = levels_[level];
    std::sort(buf.begin(), buf.end());
    // Deterministic stand-in for KLL's random coin: alternate the
    // surviving parity per level so successive compactions cancel
    // each other's rank bias instead of compounding it.
    size_t start =
        static_cast<size_t>(compactions_[level] & 1) ? 1 : 0;
    ++compactions_[level];
    auto &up = levels_[level + 1];
    for (size_t i = start; i < buf.size(); i += 2)
        up.push_back(buf[i]);
    buf.clear();
}

void
QuantileSketch::merge(const QuantileSketch &other)
{
    ST_CHECK(k_ == other.k_,
             "cannot merge sketches of different capacity");
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    while (levels_.size() < other.levels_.size()) {
        levels_.emplace_back();
        levels_.back().reserve(static_cast<size_t>(k_));
        compactions_.push_back(0);
    }
    for (size_t level = 0; level < other.levels_.size(); ++level)
        levels_[level].insert(levels_[level].end(),
                              other.levels_[level].begin(),
                              other.levels_[level].end());
    for (size_t level = 0; level < levels_.size(); ++level)
        while (static_cast<int64_t>(levels_[level].size()) >= k_)
            compactLevel(level);
}

double
QuantileSketch::minValue() const
{
    ST_CHECK(count_ > 0, "minValue() on an empty sketch");
    return min_;
}

double
QuantileSketch::maxValue() const
{
    ST_CHECK(count_ > 0, "maxValue() on an empty sketch");
    return max_;
}

std::optional<double>
QuantileSketch::quantile(double p) const
{
    ST_CHECK(p >= 0.0 && p <= 100.0, "quantile domain");
    if (count_ == 0)
        return std::nullopt;
    // The extremes are tracked exactly; compaction may have
    // dropped the retained copies, so answer from the scalars.
    if (p == 0.0)
        return min_;
    if (p == 100.0)
        return max_;
    // Gather the weighted summary, sort by value, and walk the
    // cumulative weight to the nearest-rank target — the same
    // ceil(p/100 * n) convention percentile() uses on exact
    // records, applied to total retained weight.
    std::vector<std::pair<double, int64_t>> items;
    items.reserve(static_cast<size_t>(retainedItems()));
    int64_t total_weight = 0;
    for (size_t level = 0; level < levels_.size(); ++level) {
        int64_t weight = int64_t{1} << level;
        for (double v : levels_[level]) {
            items.emplace_back(v, weight);
            total_weight += weight;
        }
    }
    std::sort(items.begin(), items.end());
    int64_t target = static_cast<int64_t>(std::ceil(
        p / 100.0 * static_cast<double>(total_weight)));
    target = std::max<int64_t>(target, 1);
    int64_t cumulative = 0;
    for (const auto &[value, weight] : items) {
        cumulative += weight;
        if (cumulative >= target)
            return std::clamp(value, min_, max_);
    }
    return max_;
}

int64_t
QuantileSketch::retainedItems() const
{
    int64_t retained = 0;
    for (const auto &level : levels_)
        retained += static_cast<int64_t>(level.size());
    return retained;
}

} // namespace serving
} // namespace streamtensor
